package ckprivacy_test

import (
	"reflect"
	"testing"

	"ckprivacy"
)

// TestPublicParallelAPI exercises the exported parallel surface end to end
// on a small table: worker-budgeted problems, the policy grid, and the
// parallel figure sweeps must agree with their serial counterparts.
func TestPublicParallelAPI(t *testing.T) {
	tab, err := ckprivacy.SyntheticAdult(ckprivacy.AdultConfig{N: 800, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	serial, err := ckprivacy.NewProblem(tab, ckprivacy.AdultHierarchies(), ckprivacy.AdultQI())
	if err != nil {
		t.Fatal(err)
	}
	par, err := ckprivacy.NewProblem(tab, ckprivacy.AdultHierarchies(), ckprivacy.AdultQI(),
		ckprivacy.WithWorkers(0))
	if err != nil {
		t.Fatal(err)
	}
	if par.Workers() < 1 {
		t.Fatalf("Workers() = %d", par.Workers())
	}
	crit := ckprivacy.CKSafety{C: 0.9, K: 2, Engine: ckprivacy.NewEngine()}
	sN, sStats, err := serial.MinimalSafe(crit)
	if err != nil {
		t.Fatal(err)
	}
	pN, pStats, err := par.MinimalSafe(crit)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sN, pN) || sStats != pStats {
		t.Errorf("parallel MinimalSafe diverged: %v/%+v vs %v/%+v", pN, pStats, sN, sStats)
	}
	if pStats.Evaluated > sStats.Evaluated {
		t.Errorf("parallel evaluated %d > serial %d", pStats.Evaluated, sStats.Evaluated)
	}

	grid, err := ckprivacy.RunSafetyGrid(tab, ckprivacy.GridConfig{
		Cs: []float64{0.8}, Ks: []int{1, 2}, Workers: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Cells) != 1 || len(grid.Cells[0]) != 2 {
		t.Fatalf("grid shape %dx%d", len(grid.Cells), len(grid.Cells[0]))
	}

	f5s, err := ckprivacy.RunFig5Config(tab, ckprivacy.Fig5Config{MaxK: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	f5p, err := ckprivacy.RunFig5Config(tab, ckprivacy.Fig5Config{MaxK: 4, Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f5s, f5p) {
		t.Error("parallel Fig5 diverged from serial")
	}
}
