module ckprivacy

go 1.24
