package ckprivacy_test

import (
	"fmt"
	"math/big"

	"ckprivacy"
)

// The paper's Figure 3 release: two buckets of five patients.
func fig3Example() *ckprivacy.Bucketization {
	return ckprivacy.FromValues(
		[]string{"flu", "flu", "lung-cancer", "lung-cancer", "mumps"},
		[]string{"flu", "flu", "breast-cancer", "ovarian-cancer", "heart-disease"},
	)
}

func ExampleMaxDisclosure() {
	bz := fig3Example()
	for k := 0; k <= 2; k++ {
		d, err := ckprivacy.MaxDisclosure(bz, k)
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("k=%d: %.4f\n", k, d)
	}
	// Output:
	// k=0: 0.4000
	// k=1: 0.6667
	// k=2: 1.0000
}

func ExampleEngine_Witness() {
	engine := ckprivacy.NewEngine()
	w, err := engine.Witness(fig3Example(), 1, ckprivacy.DisclosureOptions{}, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("disclosure %.4f targeting %s\n", w.Disclosure, w.Target)
	fmt.Println("knowledge:", w.Implications[0])
	// Output:
	// disclosure 0.6667 targeting t[0]=flu
	// knowledge: t[0]=lung-cancer -> t[0]=flu
}

func ExampleEngine_IsCKSafeExact() {
	engine := ckprivacy.NewEngine()
	bz := fig3Example()
	// The exact maximum at k=1 is 2/3; a strict threshold exactly there is
	// unsafe, one epsilon above is safe.
	at, _ := engine.IsCKSafeExact(bz, big.NewRat(2, 3), 1)
	above, _ := engine.IsCKSafeExact(bz, big.NewRat(667, 1000), 1)
	fmt.Println(at, above)
	// Output: false true
}

func ExampleEngine_TargetedMaxDisclosure() {
	engine := ckprivacy.NewEngine()
	// Worst case specifically for mumps in the male bucket.
	d, err := engine.TargetedMaxDisclosure(fig3Example(), 0, "mumps", 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%.4f\n", d)
	// Output: 0.3333
}

func ExampleParseConjunction() {
	phi, err := ckprivacy.ParseConjunction("t[Hannah]=flu -> t[Charlie]=flu; t[Ed]=mumps -> t[Ed]=flu")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(len(phi), "implications")
	fmt.Println(phi[0])
	// Output:
	// 2 implications
	// t[Hannah]=flu -> t[Charlie]=flu
}

func ExampleUniverse_Express() {
	// Theorem 3: any predicate over tables is a conjunction of basic
	// implications.
	u := ckprivacy.Universe{Persons: []string{"p", "q"}, Values: []string{"a", "b"}}
	phi, err := u.Express(func(w ckprivacy.Assignment) bool { return w["p"] != w["q"] })
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("models:", u.Models(phi))
	// Output: models: 2
}

// streamSchema is a tiny two-column schema for the append examples.
func streamSchema() (*ckprivacy.Schema, ckprivacy.Hierarchies) {
	s, err := ckprivacy.NewSchema([]ckprivacy.Attribute{
		{Name: "Age", Kind: ckprivacy.Numeric, Min: 0, Max: 99},
		{Name: "Disease", Kind: ckprivacy.Categorical,
			Domain: []string{"flu", "mumps", "gout"}},
	}, "Disease")
	if err != nil {
		panic(err)
	}
	age, err := ckprivacy.NewIntervalHierarchy("Age", []int{1, 10, 0})
	if err != nil {
		panic(err)
	}
	return s, ckprivacy.Hierarchies{"Age": age}
}

func ExampleEncodedTable_Append() {
	s, hs := streamSchema()
	tab := ckprivacy.NewTable(s)
	tab.MustAppend(ckprivacy.Row{"23", "flu"})
	tab.MustAppend(ckprivacy.Row{"27", "mumps"})

	// Encode once; the encoded view is an append-only master.
	enc := ckprivacy.EncodeTable(tab)
	chs, err := ckprivacy.CompileHierarchies(enc, hs)
	if err != nil {
		fmt.Println(err)
		return
	}
	before, _ := ckprivacy.BucketizeEncoded(enc, chs, ckprivacy.Levels{"Age": 1})

	// Stream two more rows in: dictionaries and code columns grow in
	// place, and the delta names every new dictionary code.
	delta, err := enc.Append([]ckprivacy.Row{{"24", "flu"}, {"61", "gout"}})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("appended rows [%d, %d), new Disease codes: %d\n",
		delta.Start, delta.Rows, delta.NewValueCount(1))

	// The Age column gained dictionary codes, so its compiled hierarchy
	// must be extended over the grown domain (copy-on-write: snapshots of
	// the old state keep the original).
	if delta.NewValueCount(0) > 0 {
		ext, err := chs["Age"].Extend(hs["Age"], enc.Dicts[0].Values())
		if err != nil {
			fmt.Println(err)
			return
		}
		chs["Age"] = ext
	}

	// Patch the old bucketization with just the appended rows — the
	// result is byte-identical to rebucketizing the grown table.
	after, err := ckprivacy.ExtendBucketization(before, enc, chs, ckprivacy.Levels{"Age": 1}, delta.Start)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, b := range after.Buckets {
		fmt.Printf("%s: %d tuples\n", b.Key, b.Size())
	}
	// Output:
	// appended rows [2, 4), new Disease codes: 1
	// 20-29: 3 tuples
	// 60-69: 1 tuples
}

func ExampleProblem_Append() {
	s, hs := streamSchema()
	tab := ckprivacy.NewTable(s)
	for _, r := range []ckprivacy.Row{{"23", "flu"}, {"27", "mumps"}, {"31", "flu"}} {
		tab.MustAppend(r)
	}
	p, err := ckprivacy.NewProblem(tab, hs, []string{"Age"})
	if err != nil {
		fmt.Println(err)
		return
	}

	// Pin version 1: this snapshot keeps answering over the original
	// three rows no matter how the problem grows.
	snap := p.Snapshot()

	res, err := p.Append([]ckprivacy.Row{{"24", "gout"}, {"65", "flu"}})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("version %d, rows %d\n", res.Version, res.Rows)
	fmt.Printf("pinned snapshot: version %d, rows %d\n", snap.Version(), snap.Rows())

	// Searches on the problem use the current version; searches on the
	// snapshot use the pinned one.
	node, ok, _, err := p.ChainSearch(p.CKSafety(0.9, 1))
	if err != nil || !ok {
		fmt.Println(ok, err)
		return
	}
	fmt.Println("safe node on v2:", node)
	// Output:
	// version 2, rows 5
	// pinned snapshot: version 1, rows 3
	// safe node on v2: [2]
}

func ExampleNegationMaxDisclosure() {
	bz := fig3Example()
	d, err := ckprivacy.NegationMaxDisclosure(bz, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%.4f\n", d) // the ℓ-diversity adversary
	// Output: 0.6667
}
