package ckprivacy_test

import (
	"fmt"
	"math/big"

	"ckprivacy"
)

// The paper's Figure 3 release: two buckets of five patients.
func fig3Example() *ckprivacy.Bucketization {
	return ckprivacy.FromValues(
		[]string{"flu", "flu", "lung-cancer", "lung-cancer", "mumps"},
		[]string{"flu", "flu", "breast-cancer", "ovarian-cancer", "heart-disease"},
	)
}

func ExampleMaxDisclosure() {
	bz := fig3Example()
	for k := 0; k <= 2; k++ {
		d, err := ckprivacy.MaxDisclosure(bz, k)
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("k=%d: %.4f\n", k, d)
	}
	// Output:
	// k=0: 0.4000
	// k=1: 0.6667
	// k=2: 1.0000
}

func ExampleEngine_Witness() {
	engine := ckprivacy.NewEngine()
	w, err := engine.Witness(fig3Example(), 1, ckprivacy.DisclosureOptions{}, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("disclosure %.4f targeting %s\n", w.Disclosure, w.Target)
	fmt.Println("knowledge:", w.Implications[0])
	// Output:
	// disclosure 0.6667 targeting t[0]=flu
	// knowledge: t[0]=lung-cancer -> t[0]=flu
}

func ExampleEngine_IsCKSafeExact() {
	engine := ckprivacy.NewEngine()
	bz := fig3Example()
	// The exact maximum at k=1 is 2/3; a strict threshold exactly there is
	// unsafe, one epsilon above is safe.
	at, _ := engine.IsCKSafeExact(bz, big.NewRat(2, 3), 1)
	above, _ := engine.IsCKSafeExact(bz, big.NewRat(667, 1000), 1)
	fmt.Println(at, above)
	// Output: false true
}

func ExampleEngine_TargetedMaxDisclosure() {
	engine := ckprivacy.NewEngine()
	// Worst case specifically for mumps in the male bucket.
	d, err := engine.TargetedMaxDisclosure(fig3Example(), 0, "mumps", 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%.4f\n", d)
	// Output: 0.3333
}

func ExampleParseConjunction() {
	phi, err := ckprivacy.ParseConjunction("t[Hannah]=flu -> t[Charlie]=flu; t[Ed]=mumps -> t[Ed]=flu")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(len(phi), "implications")
	fmt.Println(phi[0])
	// Output:
	// 2 implications
	// t[Hannah]=flu -> t[Charlie]=flu
}

func ExampleUniverse_Express() {
	// Theorem 3: any predicate over tables is a conjunction of basic
	// implications.
	u := ckprivacy.Universe{Persons: []string{"p", "q"}, Values: []string{"a", "b"}}
	phi, err := u.Express(func(w ckprivacy.Assignment) bool { return w["p"] != w["q"] })
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("models:", u.Models(phi))
	// Output: models: 2
}

func ExampleNegationMaxDisclosure() {
	bz := fig3Example()
	d, err := ckprivacy.NegationMaxDisclosure(bz, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%.4f\n", d) // the ℓ-diversity adversary
	// Output: 0.6667
}
