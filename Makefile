# CI and humans run the same commands: the workflow in
# .github/workflows/ci.yml calls the same go invocations these targets do.

GO ?= go

.PHONY: all build vet vet-ck fmt fmt-check test race bench bench-json bench-compare examples serve lint docs-check loadtest loadtest-restart loadtest-replica fuzz-smoke loadtest-race

all: build vet fmt-check test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## vet-ck runs the repo's own invariant analyzers (internal/tools/ckvet):
## maporder, errenvelope, atomicwrite, snapshotmut, poolleak. These
## enforce the contracts ordinary tests cannot economically cover —
## deterministic map-iteration output, envelope-only error responses,
## atomic snapshot publication, pinned immutability, and sync.Pool
## hygiene. Suppressions require a //ckvet:ignore <analyzer> <reason>
## comment; see `go run ./internal/tools/ckvet -list`.
vet-ck:
	$(GO) run ./internal/tools/ckvet ./...

## fmt rewrites files in place; fmt-check (used by CI) only reports.
fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## lint mirrors the CI lint job exactly: pinned tool versions fetched on
## demand by `go run` (no separate install step, no version drift between
## local runs and CI). staticcheck reads staticcheck.conf at the repo
## root, which enables the non-default ST and QF groups; the pins were
## last audited 2026-08 against that widened check set.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

lint:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

## docs-check keeps the prose honest (mirrors the CI docs job): every
## relative markdown link in README.md + docs/ must resolve, and every
## exported symbol of the public package and internal/server must carry a
## doc comment. The same tool output gates CI, so broken links and bare
## exported names fail the build, not a reviewer's patience.
docs-check:
	$(GO) run ./internal/tools/docscheck

## examples builds and smoke-runs every examples/* program (mirrors the CI
## examples job; sizes scaled down to stay fast).
examples:
	$(GO) build ./examples/...
	@set -eu; for d in examples/*/; do \
		name="$$(basename "$$d")"; \
		case "$$name" in \
			adult)     args="-n 2000" ;; \
			incognito) args="-n 1000" ;; \
			*)         args="" ;; \
		esac; \
		echo "==> go run ./$$d $$args"; \
		$(GO) run "./$$d" $$args > /dev/null; \
	done

## serve runs the resident disclosure-auditing daemon with the hospital
## example preloaded.
serve:
	$(GO) run ./cmd/ckprivacyd -preload hospital

## loadtest drives an in-process daemon with the mixed scale workload
## (register/append/disclosure/check/anonymize) and prints per-op p50/p99
## latency plus append rows/s. Point LOADTEST_ARGS at a live daemon with
## `-url http://host:8344`, or raise the scale with `-rows 1000000`.
LOADTEST_ARGS ?= -rows 100000 -ops 400 -clients 4 -shards 0

loadtest:
	$(GO) run ./cmd/ckprivacy loadtest $(LOADTEST_ARGS)

## loadtest-restart is the kill-and-restart durability smoke: the workload
## runs against an in-process daemon persisting to a scratch -data-dir,
## the daemon is hard-stopped without draining (the moral equivalent of
## kill -9), and a fresh daemon must recover the dataset and serve
## identical version/rows/releases and disclosure numbers.
LOADTEST_RESTART_ARGS ?= -rows 20000 -ops 100 -clients 2 -shards 0

loadtest-restart:
	@dir=$$(mktemp -d); \
	$(GO) run ./cmd/ckprivacy loadtest $(LOADTEST_RESTART_ARGS) -data-dir $$dir -restart; \
	status=$$?; rm -rf $$dir; exit $$status

## loadtest-replica is the replication smoke: the workload runs against a
## durable in-process leader while an in-process read-only follower tails
## its WAL over the replication endpoints; the read half of the mix
## (disclosure/check/info) is served by the follower live, and after the
## workload the follower must be caught up with zero record lag and
## answer identically to the leader.
LOADTEST_REPLICA_ARGS ?= -rows 20000 -ops 100 -clients 2 -shards 0

loadtest-replica:
	@dir=$$(mktemp -d); \
	$(GO) run ./cmd/ckprivacy loadtest $(LOADTEST_REPLICA_ARGS) -data-dir $$dir -replica; \
	status=$$?; rm -rf $$dir; exit $$status

## fuzz-smoke gives each store decoder fuzz target a short budget
## (mirrors the CI fuzz job): long enough to catch a regression in the
## snapshot/WAL hardening, short enough for every push. Raise
## FUZZ_TIME for a real session.
FUZZ_TIME ?= 20s

fuzz-smoke:
	$(GO) test ./internal/store/ -run '^$$' -fuzz FuzzSnapshotOpen -fuzztime $(FUZZ_TIME)
	$(GO) test ./internal/store/ -run '^$$' -fuzz FuzzWALReplay -fuzztime $(FUZZ_TIME)

## loadtest-race is the loadtest smoke under the race detector (mirrors
## the CI race job): small enough to stay fast, concurrent enough to
## give the detector real interleavings.
LOADTEST_RACE_ARGS ?= -rows 20000 -ops 100 -clients 4 -shards 0

loadtest-race:
	$(GO) run -race ./cmd/ckprivacy loadtest $(LOADTEST_RACE_ARGS)

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

## bench-json mirrors the CI bench job: one iteration of everything,
## emitted as a test2json stream for the perf trajectory.
bench-json:
	$(GO) test -bench=. -benchtime=1x -run='^$$' -json ./... | tee BENCH_local.json

## bench-compare tracks the bucketization trajectory across PRs with
## benchstat: each run rewrites BENCH_compare_new.txt with BENCH_COUNT
## fresh samples; promote a baseline with
## `mv BENCH_compare_new.txt BENCH_compare_old.txt` before changing code,
## then re-run to see the delta. BENCH_PATTERN narrows the
## sweep (default: the columnar-substrate benchmarks). benchstat is
## fetched on demand via `go run` like the lint tools; x/perf publishes no
## semver tags, so the version floats unless BENCHSTAT_VERSION is pinned
## to a pseudo-version.
BENCH_PATTERN ?= BenchmarkBucketize|BenchmarkEncodeTable|BenchmarkLatticeSweep|BenchmarkGridPlanned|BenchmarkAppendSmall|BenchmarkFollowerCatchup
BENCHSTAT_VERSION ?= latest
BENCH_COUNT ?= 6

bench-compare:
	$(GO) test -bench='$(BENCH_PATTERN)' -benchmem -count=$(BENCH_COUNT) -run='^$$' . ./internal/replica/ | tee BENCH_compare_new.txt
	@if [ -f BENCH_compare_old.txt ]; then \
		$(GO) run golang.org/x/perf/cmd/benchstat@$(BENCHSTAT_VERSION) BENCH_compare_old.txt BENCH_compare_new.txt; \
	else \
		echo "no BENCH_compare_old.txt baseline; run 'mv BENCH_compare_new.txt BENCH_compare_old.txt' to set one"; \
	fi
