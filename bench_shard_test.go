package ckprivacy_test

import (
	"fmt"
	"runtime"
	"testing"

	"ckprivacy"
	"ckprivacy/internal/synth"
)

// ---------------------------------------------------------------------------
// Sharded-scan benchmarks: the row-sharded bucketization against the serial
// encoded scan on ACS-style synthetic tables at 100k and 1M rows. Results
// are byte-identical at every shard count (the parity tests in
// internal/bucket prove it); these measure the throughput side. rows/s
// feeds the CI bench JSON artifact.
// ---------------------------------------------------------------------------

// BenchmarkBucketizeSharded scans each table size serially (shards=1) and
// with one shard per CPU core; on multi-core hosts an 8-shard variant is
// added when it differs from both.
func BenchmarkBucketizeSharded(b *testing.B) {
	shardCounts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		shardCounts = append(shardCounts, n)
		if n != 8 {
			shardCounts = append(shardCounts, 8)
		}
	}
	for _, rows := range []int{100_000, 1_000_000} {
		bundle, err := synth.Bundle(synth.Config{Rows: rows, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		enc, chs, ok := bundle.Encoded()
		if !ok {
			b.Fatal("synthetic hierarchies failed to compile")
		}
		for _, shards := range shardCounts {
			b.Run(fmt.Sprintf("rows=%d/shards=%d", rows, shards), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					bz, err := ckprivacy.BucketizeEncodedSharded(enc, chs, bundle.DefaultLevels, shards)
					if err != nil {
						b.Fatal(err)
					}
					sinkI = len(bz.Buckets)
				}
				reportRowsPerSec(b, float64(rows))
			})
		}
	}
}
