// Package logic implements the paper's background-knowledge language:
// atoms t_p[S] = s (Definition 1), basic implications
// (∧ A_i) → (∨ B_j) (Definition 2), simple implications A → B
// (Definition 7), conjunctions of k basic implications (the language
// L^k_basic of Definition 4), and the constructive completeness result
// (Theorem 3).
package logic

import (
	"fmt"
	"sort"
	"strings"
)

// Atom is the formula t_p[S] = s: person p's sensitive value is s.
type Atom struct {
	Person string
	Value  string
}

// String renders the atom in the package's concrete syntax.
func (a Atom) String() string { return fmt.Sprintf("t[%s]=%s", a.Person, a.Value) }

// Assignment maps each person to a sensitive value; it denotes one possible
// underlying table (a "world").
type Assignment map[string]string

// Eval reports whether the atom holds in the world.
func (a Atom) Eval(w Assignment) bool { return w[a.Person] == a.Value }

// BasicImplication is (∧ Ante) → (∨ Cons) with at least one atom on each
// side — the paper's basic unit of knowledge.
type BasicImplication struct {
	Ante []Atom
	Cons []Atom
}

// Validate enforces Definition 2's m ≥ 1, n ≥ 1.
func (b BasicImplication) Validate() error {
	if len(b.Ante) == 0 {
		return fmt.Errorf("logic: basic implication needs at least one antecedent atom")
	}
	if len(b.Cons) == 0 {
		return fmt.Errorf("logic: basic implication needs at least one consequent atom")
	}
	return nil
}

// Eval reports whether the implication holds in the world.
func (b BasicImplication) Eval(w Assignment) bool {
	for _, a := range b.Ante {
		if !a.Eval(w) {
			return true // antecedent false: implication vacuously true
		}
	}
	for _, c := range b.Cons {
		if c.Eval(w) {
			return true
		}
	}
	return false
}

// String renders the implication, e.g. "t[Hannah]=flu -> t[Charlie]=flu".
func (b BasicImplication) String() string {
	ante := make([]string, len(b.Ante))
	for i, a := range b.Ante {
		ante[i] = a.String()
	}
	cons := make([]string, len(b.Cons))
	for i, c := range b.Cons {
		cons[i] = c.String()
	}
	return strings.Join(ante, " & ") + " -> " + strings.Join(cons, " | ")
}

// SimpleImplication is A → B for single atoms A, B (Definition 7). Theorem 9
// shows worst-case disclosure is always attained by simple implications.
type SimpleImplication struct {
	Ante Atom
	Cons Atom
}

// Basic widens a simple implication to a BasicImplication.
func (s SimpleImplication) Basic() BasicImplication {
	return BasicImplication{Ante: []Atom{s.Ante}, Cons: []Atom{s.Cons}}
}

// Eval reports whether the implication holds in the world.
func (s SimpleImplication) Eval(w Assignment) bool { return !s.Ante.Eval(w) || s.Cons.Eval(w) }

// String renders the implication.
func (s SimpleImplication) String() string { return s.Basic().String() }

// Conjunction is a conjunction of basic implications; a Conjunction of
// length k is a sentence of L^k_basic.
type Conjunction []BasicImplication

// Eval reports whether every conjunct holds in the world.
func (c Conjunction) Eval(w Assignment) bool {
	for _, b := range c {
		if !b.Eval(w) {
			return false
		}
	}
	return true
}

// Validate validates every conjunct.
func (c Conjunction) Validate() error {
	for i, b := range c {
		if err := b.Validate(); err != nil {
			return fmt.Errorf("logic: conjunct %d: %w", i, err)
		}
	}
	return nil
}

// String renders the conjunction with "; " between conjuncts.
func (c Conjunction) String() string {
	parts := make([]string, len(c))
	for i, b := range c {
		parts[i] = b.String()
	}
	return strings.Join(parts, "; ")
}

// Simple converts simple implications to a Conjunction.
func Simple(imps ...SimpleImplication) Conjunction {
	c := make(Conjunction, len(imps))
	for i, s := range imps {
		c[i] = s.Basic()
	}
	return c
}

// Negation encodes ¬(t_p[S] = s) as the basic implication
// (t_p[S]=s) → (t_p[S]=other) for any other ≠ s (§2.2 of the paper: sound
// because each tuple has exactly one sensitive value).
func Negation(person, value, other string) (BasicImplication, error) {
	if other == value {
		return BasicImplication{}, fmt.Errorf("logic: negation of %q needs a different witness value", value)
	}
	a := Atom{Person: person, Value: value}
	return BasicImplication{Ante: []Atom{a}, Cons: []Atom{{Person: person, Value: other}}}, nil
}

// Negations encodes a set of negated atoms, choosing witness values from the
// given domain automatically.
func Negations(atoms []Atom, domain []string) (Conjunction, error) {
	if len(domain) < 2 {
		return nil, fmt.Errorf("logic: negations need a domain with at least two values")
	}
	out := make(Conjunction, 0, len(atoms))
	for _, a := range atoms {
		other := domain[0]
		if other == a.Value {
			other = domain[1]
		}
		n, err := Negation(a.Person, a.Value, other)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

// Persons returns the sorted set of persons mentioned by the conjunction.
func (c Conjunction) Persons() []string {
	set := map[string]bool{}
	for _, b := range c {
		for _, a := range b.Ante {
			set[a.Person] = true
		}
		for _, a := range b.Cons {
			set[a.Person] = true
		}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
