package logic

import (
	"fmt"
	"strings"
)

// The concrete syntax, mirroring the paper's notation:
//
//	atom         := "t[" person "]=" value
//	implication  := atom { "&" atom } "->" atom { "|" atom }
//	conjunction  := implication { ";" implication }
//
// Whitespace around tokens is ignored. Person and value strings may contain
// anything except the delimiter characters '[', ']', '&', '|', ';' and "->".

// ParseAtom parses "t[p]=v".
func ParseAtom(s string) (Atom, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "t[") {
		return Atom{}, fmt.Errorf("logic: atom %q must start with \"t[\"", s)
	}
	rest := s[len("t["):]
	close := strings.Index(rest, "]")
	if close < 0 {
		return Atom{}, fmt.Errorf("logic: atom %q missing \"]\"", s)
	}
	person := rest[:close]
	if person == "" {
		return Atom{}, fmt.Errorf("logic: atom %q has empty person", s)
	}
	rest = rest[close+1:]
	if !strings.HasPrefix(rest, "=") {
		return Atom{}, fmt.Errorf("logic: atom %q missing \"=\"", s)
	}
	value := strings.TrimSpace(rest[1:])
	if value == "" {
		return Atom{}, fmt.Errorf("logic: atom %q has empty value", s)
	}
	return Atom{Person: person, Value: value}, nil
}

// ParseImplication parses one basic implication.
func ParseImplication(s string) (BasicImplication, error) {
	parts := strings.SplitN(s, "->", 2)
	if len(parts) != 2 {
		return BasicImplication{}, fmt.Errorf("logic: implication %q missing \"->\"", s)
	}
	var b BasicImplication
	for _, as := range strings.Split(parts[0], "&") {
		a, err := ParseAtom(as)
		if err != nil {
			return BasicImplication{}, err
		}
		b.Ante = append(b.Ante, a)
	}
	for _, cs := range strings.Split(parts[1], "|") {
		c, err := ParseAtom(cs)
		if err != nil {
			return BasicImplication{}, err
		}
		b.Cons = append(b.Cons, c)
	}
	return b, b.Validate()
}

// ParseConjunction parses a ";"- or newline-separated conjunction of basic
// implications. Empty segments are skipped, so trailing separators are
// harmless.
func ParseConjunction(s string) (Conjunction, error) {
	var out Conjunction
	seps := func(r rune) bool { return r == ';' || r == '\n' }
	for _, seg := range strings.FieldsFunc(s, seps) {
		if strings.TrimSpace(seg) == "" {
			continue
		}
		b, err := ParseImplication(seg)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}
