package logic

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// The concrete syntax, mirroring the paper's notation:
//
//	atom         := "t[" person "]=" value
//	implication  := atom { "&" atom } "->" atom { "|" atom }
//	conjunction  := implication { ";" implication }
//
// Whitespace around tokens is ignored. Person and value strings may contain
// anything except the delimiter characters '[', ']', '&', '|', ';' and "->".

// SyntaxError is a parse error carrying the byte offset (into the original
// input string) at which the problem was detected, so callers — the HTTP
// API in particular — can point clients at the offending token.
type SyntaxError struct {
	// Offset is the 0-based byte offset into the parsed string.
	Offset int
	// Msg describes what went wrong at Offset.
	Msg string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("logic: syntax error at byte %d: %s", e.Offset, e.Msg)
}

func syntaxErr(offset int, format string, args ...any) error {
	return &SyntaxError{Offset: offset, Msg: fmt.Sprintf(format, args...)}
}

// skipSpace returns the offset of the first non-space byte of s at or after
// i (len(s) if none).
func skipSpace(s string, i int) int {
	for i < len(s) {
		r, size := utf8.DecodeRuneInString(s[i:])
		if !unicode.IsSpace(r) {
			break
		}
		i += size
	}
	return i
}

// ParseAtom parses "t[p]=v".
func ParseAtom(s string) (Atom, error) {
	return parseAtomAt(s, 0)
}

// parseAtomAt parses an atom from the segment s whose first byte sits at
// byte offset base of the original input; error offsets are reported
// relative to that original input.
func parseAtomAt(s string, base int) (Atom, error) {
	start := skipSpace(s, 0)
	rest := strings.TrimSpace(s)
	if !strings.HasPrefix(rest, "t[") {
		return Atom{}, syntaxErr(base+start, "atom %q must start with %q", rest, "t[")
	}
	body := rest[len("t["):]
	close := strings.Index(body, "]")
	if close < 0 {
		return Atom{}, syntaxErr(base+start+len(rest), "atom %q missing %q", rest, "]")
	}
	person := body[:close]
	if person == "" {
		return Atom{}, syntaxErr(base+start+len("t["), "atom %q has empty person", rest)
	}
	body = body[close+1:]
	if !strings.HasPrefix(body, "=") {
		return Atom{}, syntaxErr(base+start+len("t[")+close+1, "atom %q missing %q", rest, "=")
	}
	value := strings.TrimSpace(body[1:])
	if value == "" {
		return Atom{}, syntaxErr(base+start+len(rest), "atom %q has empty value", rest)
	}
	return Atom{Person: person, Value: value}, nil
}

// ParseImplication parses one basic implication.
func ParseImplication(s string) (BasicImplication, error) {
	return parseImplicationAt(s, 0)
}

// parseImplicationAt parses a basic implication from the segment s starting
// at byte offset base of the original input.
func parseImplicationAt(s string, base int) (BasicImplication, error) {
	arrow := strings.Index(s, "->")
	if arrow < 0 {
		return BasicImplication{}, syntaxErr(base+skipSpace(s, 0), "implication %q missing %q", strings.TrimSpace(s), "->")
	}
	var b BasicImplication
	off := 0
	for _, as := range strings.Split(s[:arrow], "&") {
		a, err := parseAtomAt(as, base+off)
		if err != nil {
			return BasicImplication{}, err
		}
		b.Ante = append(b.Ante, a)
		off += len(as) + len("&")
	}
	off = arrow + len("->")
	for _, cs := range strings.Split(s[arrow+len("->"):], "|") {
		c, err := parseAtomAt(cs, base+off)
		if err != nil {
			return BasicImplication{}, err
		}
		b.Cons = append(b.Cons, c)
		off += len(cs) + len("|")
	}
	if err := b.Validate(); err != nil {
		return BasicImplication{}, syntaxErr(base+skipSpace(s, 0), "%v", err)
	}
	return b, nil
}

// ParseConjunction parses a ";"- or newline-separated conjunction of basic
// implications. Empty segments are skipped, so trailing separators are
// harmless. Errors carry the byte offset into s of the offending token.
func ParseConjunction(s string) (Conjunction, error) {
	var out Conjunction
	start := 0
	for {
		end := len(s)
		if rel := strings.IndexAny(s[start:], ";\n"); rel >= 0 {
			end = start + rel
		}
		if seg := s[start:end]; strings.TrimSpace(seg) != "" {
			b, err := parseImplicationAt(seg, start)
			if err != nil {
				return nil, err
			}
			out = append(out, b)
		}
		if end == len(s) {
			break
		}
		start = end + 1
	}
	return out, nil
}
