package logic

import (
	"strings"
	"testing"
)

// FuzzParseImplication checks that the parser never panics and that
// anything it accepts round-trips through String.
func FuzzParseImplication(f *testing.F) {
	seeds := []string{
		"t[Ed]=flu -> t[Ed]=mumps",
		"t[H]=flu & t[I]=flu -> t[C]=flu | t[C]=mumps",
		"t[a]=b->t[c]=d",
		" t[ p ]=v -> t[q]=w ",
		"->",
		"t[]=x -> t[y]=z",
		"t[x]=-> t[y]=z",
		"t[x]=a -> ",
		strings.Repeat("t[x]=a & ", 50) + "t[x]=a -> t[y]=b",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		b, err := ParseImplication(s)
		if err != nil {
			return
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("parser accepted invalid implication %q: %v", s, err)
		}
		again, err := ParseImplication(b.String())
		if err != nil {
			t.Fatalf("round trip of %q failed to parse %q: %v", s, b.String(), err)
		}
		if again.String() != b.String() {
			t.Fatalf("round trip of %q not stable: %q vs %q", s, b.String(), again.String())
		}
	})
}

// FuzzParseConjunction checks the multi-implication entry point.
func FuzzParseConjunction(f *testing.F) {
	f.Add("t[a]=b -> t[c]=d; t[e]=f -> t[g]=h")
	f.Add(";;;\n\n;")
	f.Add("t[a]=b -> t[c]=d\nt[e]=f -> t[g]=h\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParseConjunction(s)
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("parser accepted invalid conjunction %q: %v", s, err)
		}
		again, err := ParseConjunction(c.String())
		if err != nil || again.String() != c.String() {
			t.Fatalf("round trip of %q failed: %q, %v", s, c.String(), err)
		}
	})
}

// FuzzParseAtom checks the atom parser.
func FuzzParseAtom(f *testing.F) {
	f.Add("t[Ed]=flu")
	f.Add("t[=]")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseAtom(s)
		if err != nil {
			return
		}
		if a.Person == "" || a.Value == "" {
			t.Fatalf("parser accepted empty components from %q: %+v", s, a)
		}
	})
}
