package logic

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAtomEvalString(t *testing.T) {
	a := Atom{Person: "Ed", Value: "flu"}
	if a.String() != "t[Ed]=flu" {
		t.Errorf("String = %q", a.String())
	}
	if !a.Eval(Assignment{"Ed": "flu"}) {
		t.Error("Eval true case failed")
	}
	if a.Eval(Assignment{"Ed": "mumps"}) {
		t.Error("Eval false case failed")
	}
	if a.Eval(Assignment{}) {
		t.Error("Eval on missing person should be false")
	}
}

func TestBasicImplicationEval(t *testing.T) {
	b := BasicImplication{
		Ante: []Atom{{Person: "H", Value: "flu"}, {Person: "I", Value: "flu"}},
		Cons: []Atom{{Person: "C", Value: "flu"}, {Person: "C", Value: "mumps"}},
	}
	cases := []struct {
		w    Assignment
		want bool
	}{
		{Assignment{"H": "flu", "I": "flu", "C": "flu"}, true},     // ante true, cons true
		{Assignment{"H": "flu", "I": "flu", "C": "mumps"}, true},   // second disjunct
		{Assignment{"H": "flu", "I": "flu", "C": "cancer"}, false}, // ante true, cons false
		{Assignment{"H": "cold", "I": "flu", "C": "cancer"}, true}, // ante false
	}
	for i, c := range cases {
		if got := b.Eval(c.w); got != c.want {
			t.Errorf("case %d: Eval = %v, want %v", i, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (BasicImplication{}).Validate(); err == nil {
		t.Error("empty implication validated")
	}
	if err := (BasicImplication{Ante: []Atom{{Person: "p", Value: "v"}}}).Validate(); err == nil {
		t.Error("implication without consequent validated")
	}
	if err := (BasicImplication{Cons: []Atom{{Person: "p", Value: "v"}}}).Validate(); err == nil {
		t.Error("implication without antecedent validated")
	}
	c := Conjunction{{Ante: []Atom{{Person: "p", Value: "v"}}, Cons: []Atom{{Person: "p", Value: "w"}}}, {}}
	if err := c.Validate(); err == nil {
		t.Error("conjunction with invalid conjunct validated")
	}
}

func TestSimpleImplication(t *testing.T) {
	s := SimpleImplication{Ante: Atom{"H", "flu"}, Cons: Atom{"C", "flu"}}
	if s.String() != "t[H]=flu -> t[C]=flu" {
		t.Errorf("String = %q", s.String())
	}
	if !s.Eval(Assignment{"H": "cold"}) {
		t.Error("vacuous case failed")
	}
	if s.Eval(Assignment{"H": "flu", "C": "cold"}) {
		t.Error("violated case passed")
	}
	b := s.Basic()
	if len(b.Ante) != 1 || len(b.Cons) != 1 {
		t.Error("Basic() shape wrong")
	}
	conj := Simple(s, s)
	if len(conj) != 2 {
		t.Error("Simple() length wrong")
	}
}

func TestConjunctionEvalAndString(t *testing.T) {
	c := Conjunction{
		{Ante: []Atom{{"H", "flu"}}, Cons: []Atom{{"C", "flu"}}},
		{Ante: []Atom{{"E", "flu"}}, Cons: []Atom{{"E", "mumps"}}}, // ¬(E=flu)
	}
	if !c.Eval(Assignment{"H": "x", "E": "cold"}) {
		t.Error("conjunction should hold")
	}
	if c.Eval(Assignment{"H": "flu", "C": "cold", "E": "cold"}) {
		t.Error("violated first conjunct")
	}
	if c.Eval(Assignment{"H": "x", "E": "flu"}) {
		t.Error("violated negation conjunct")
	}
	want := "t[H]=flu -> t[C]=flu; t[E]=flu -> t[E]=mumps"
	if c.String() != want {
		t.Errorf("String = %q, want %q", c.String(), want)
	}
	if (Conjunction{}).Eval(Assignment{}) != true {
		t.Error("empty conjunction should be true")
	}
}

func TestNegationSemantics(t *testing.T) {
	// ¬(Ed=flu) encoded as (Ed=flu)→(Ed=ovarian) must hold exactly when
	// Ed's value differs from flu, in any world.
	n, err := Negation("Ed", "flu", "ovarian")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"flu", "ovarian", "mumps"} {
		got := n.Eval(Assignment{"Ed": v})
		want := v != "flu"
		if got != want {
			t.Errorf("world Ed=%s: Eval = %v, want %v", v, got, want)
		}
	}
	if _, err := Negation("Ed", "flu", "flu"); err == nil {
		t.Error("same-value negation accepted")
	}
}

func TestNegations(t *testing.T) {
	atoms := []Atom{{"Ed", "flu"}, {"Ed", "a"}}
	c, err := Negations(atoms, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 2 {
		t.Fatalf("len = %d", len(c))
	}
	// The witness for ¬(Ed=a) must not be a itself.
	if c[1].Cons[0].Value == "a" {
		t.Error("witness equals negated value")
	}
	if !c.Eval(Assignment{"Ed": "b"}) {
		t.Error("Ed=b should satisfy both negations")
	}
	if c.Eval(Assignment{"Ed": "flu"}) {
		t.Error("Ed=flu should violate the first negation")
	}
	if _, err := Negations(atoms, []string{"only"}); err == nil {
		t.Error("single-value domain accepted")
	}
}

func TestPersons(t *testing.T) {
	c := Conjunction{
		{Ante: []Atom{{"Zoe", "x"}}, Cons: []Atom{{"Al", "y"}}},
		{Ante: []Atom{{"Al", "x"}}, Cons: []Atom{{"Mia", "y"}}},
	}
	got := c.Persons()
	want := []string{"Al", "Mia", "Zoe"}
	if len(got) != len(want) {
		t.Fatalf("Persons = %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Persons = %v, want %v", got, want)
		}
	}
}

func TestParseAtom(t *testing.T) {
	good := map[string]Atom{
		"t[Ed]=flu":          {"Ed", "flu"},
		"  t[Ed]=flu  ":      {"Ed", "flu"},
		"t[p 1]=lung cancer": {"p 1", "lung cancer"},
	}
	for in, want := range good {
		got, err := ParseAtom(in)
		if err != nil || got != want {
			t.Errorf("ParseAtom(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	bad := []string{"", "Ed=flu", "t[Ed=flu", "t[]=flu", "t[Ed]flu", "t[Ed]="}
	for _, in := range bad {
		if _, err := ParseAtom(in); err == nil {
			t.Errorf("ParseAtom(%q) succeeded", in)
		}
	}
}

func TestParseImplication(t *testing.T) {
	b, err := ParseImplication("t[H]=flu & t[I]=flu -> t[C]=flu | t[C]=mumps")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Ante) != 2 || len(b.Cons) != 2 {
		t.Fatalf("shape = %d -> %d", len(b.Ante), len(b.Cons))
	}
	if b.Ante[1] != (Atom{"I", "flu"}) || b.Cons[1] != (Atom{"C", "mumps"}) {
		t.Errorf("parsed = %v", b)
	}
	bad := []string{
		"t[H]=flu",                  // no arrow
		"-> t[C]=flu",               // empty antecedent atom
		"t[H]=flu -> ",              // empty consequent atom
		"t[H]=flu & -> t[C]=flu",    // malformed antecedent list
		"t[H]=flu -> t[C]=flu | zz", // malformed consequent atom
	}
	for _, in := range bad {
		if _, err := ParseImplication(in); err == nil {
			t.Errorf("ParseImplication(%q) succeeded", in)
		}
	}
}

func TestParseConjunction(t *testing.T) {
	c, err := ParseConjunction("t[H]=flu -> t[C]=flu; t[E]=flu -> t[E]=mumps;\n t[A]=x -> t[B]=y\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 3 {
		t.Fatalf("len = %d", len(c))
	}
	if _, err := ParseConjunction("t[H]=flu -> t[C]=flu; junk"); err == nil {
		t.Error("junk segment accepted")
	}
	empty, err := ParseConjunction("  ;\n ; ")
	if err != nil || len(empty) != 0 {
		t.Errorf("blank conjunction = %v, %v", empty, err)
	}
}

// TestParseRoundTrip property-checks String/Parse inverse on generated
// implications.
func TestParseRoundTrip(t *testing.T) {
	persons := []string{"Al", "Bea", "Cy", "Dee"}
	values := []string{"flu", "mumps", "cancer"}
	f := func(raw []uint8) bool {
		if len(raw) < 4 {
			return true
		}
		mkAtom := func(i int) Atom {
			return Atom{
				Person: persons[int(raw[i%len(raw)])%len(persons)],
				Value:  values[int(raw[(i+1)%len(raw)])%len(values)],
			}
		}
		na := 1 + int(raw[0])%3
		nc := 1 + int(raw[1])%3
		var b BasicImplication
		for i := 0; i < na; i++ {
			b.Ante = append(b.Ante, mkAtom(i+2))
		}
		for i := 0; i < nc; i++ {
			b.Cons = append(b.Cons, mkAtom(i+na+2))
		}
		got, err := ParseImplication(b.String())
		if err != nil {
			return false
		}
		return got.String() == b.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestNegationExpressiveness checks the paper's §2.2 claim used throughout:
// the negation encoding has exactly the models of ¬(t_p=s) within worlds
// that assign p some value.
func TestNegationExpressiveness(t *testing.T) {
	u := Universe{Persons: []string{"p"}, Values: []string{"a", "b", "c"}}
	n, err := Negation("p", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	models := u.Models(Conjunction{n})
	if models != 2 {
		t.Errorf("negation has %d models, want 2", models)
	}
}

func TestStringContainsArrow(t *testing.T) {
	b := BasicImplication{Ante: []Atom{{"p", "v"}}, Cons: []Atom{{"q", "w"}}}
	if !strings.Contains(b.String(), "->") {
		t.Error("String missing arrow")
	}
}
