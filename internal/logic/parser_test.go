package logic

import (
	"errors"
	"strings"
	"testing"
)

// offsetOf asserts err is a *SyntaxError and returns its offset.
func offsetOf(t *testing.T, err error) int {
	t.Helper()
	if err == nil {
		t.Fatal("expected a parse error")
	}
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("error %v (%T) is not a *SyntaxError", err, err)
	}
	return se.Offset
}

func TestParseAtomOffsets(t *testing.T) {
	cases := []struct {
		in     string
		offset int
	}{
		{"x[Ed]=flu", 0},   // not an atom at all
		{"  x[Ed]=flu", 2}, // leading space skipped
		{"t[Ed=flu", 8},    // "]" never closes: end of token
		{"t[]=flu", 2},     // empty person: just after "t["
		{"t[Ed]flu", 5},    // missing "=": just after "]"
		{"t[Ed]=", 6},      // empty value: end of token
		{"t[Ed]=   ", 6},   // ditto with trailing space trimmed
		{strings.Repeat(" ", 5) + "junk", 5},
	}
	for _, c := range cases {
		_, err := ParseAtom(c.in)
		if got := offsetOf(t, err); got != c.offset {
			t.Errorf("ParseAtom(%q) offset = %d, want %d (err: %v)", c.in, got, c.offset, err)
		}
	}
}

func TestParseImplicationOffsets(t *testing.T) {
	cases := []struct {
		in     string
		offset int
	}{
		{"t[A]=x  t[B]=y", 0},                 // missing "->": start of implication
		{"  no arrow here", 2},                // ditto, leading space skipped
		{"t[A]=x -> junk", 10},                // bad consequent atom
		{"t[A]=x -> t[B]=y | zz", 19},         // bad second consequent
		{"t[A]=x & t[=y -> t[B]=y", 13},       // unclosed second antecedent: end of its token
		{"t[A]=x -> t[B]=y | t[C]", 23},       // missing "=" at end
		{"junk -> t[B]=y", 0},                 // bad first antecedent
		{"t[A]=x -> t[B]=y|t[C]=z| x[D]", 25}, // offset past unpadded atoms
	}
	for _, c := range cases {
		_, err := ParseImplication(c.in)
		if got := offsetOf(t, err); got != c.offset {
			t.Errorf("ParseImplication(%q) offset = %d, want %d (err: %v)", c.in, got, c.offset, err)
		}
	}
}

func TestParseConjunctionOffsets(t *testing.T) {
	cases := []struct {
		in     string
		offset int
	}{
		{"t[A]=x -> t[B]=y; junk", 18},              // error in second segment
		{"t[A]=x -> t[B]=y\nt[C]=z -> bogus", 27},   // newline separator
		{"bad; t[A]=x -> t[B]=y", 0},                // error in first segment
		{"t[A]=x -> t[B]=y; ; t[C]=z -> t[]=w", 32}, // empty segment skipped, offset global
	}
	for _, c := range cases {
		_, err := ParseConjunction(c.in)
		if got := offsetOf(t, err); got != c.offset {
			t.Errorf("ParseConjunction(%q) offset = %d, want %d (err: %v)", c.in, got, c.offset, err)
		}
	}
}

// TestParseOffsetWithinBounds property-checks that every reported offset
// stays inside (or exactly at the end of) the input.
func TestParseOffsetWithinBounds(t *testing.T) {
	bad := []string{
		"", ";", "a;b;c", "t[", "->", "t[A]=x ->", "-> t[B]=y",
		"t[A]=x -> t[B]=y;;;zz", "  \n ; x",
	}
	for _, in := range bad {
		if _, err := ParseConjunction(in); err != nil {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Errorf("ParseConjunction(%q): %T is not a SyntaxError", in, err)
				continue
			}
			if se.Offset < 0 || se.Offset > len(in) {
				t.Errorf("ParseConjunction(%q) offset %d outside [0, %d]", in, se.Offset, len(in))
			}
			if !strings.Contains(se.Error(), "at byte") {
				t.Errorf("error %q does not mention the byte offset", se.Error())
			}
		}
	}
}

// TestParseOffsetsMultiByteUTF8 pins the byte offsets (not rune counts)
// reported on inputs containing multi-byte UTF-8 — person and value
// strings are arbitrary text, so clients slicing their input at Offset
// must land on a byte boundary the parser actually meant.
func TestParseOffsetsMultiByteUTF8(t *testing.T) {
	atomCases := []struct {
		in     string
		offset int
	}{
		// "Ω" is 2 bytes; the junk atom starts after 2 ASCII spaces.
		{"  Ωjunk", 2},
		// U+00A0 (NBSP) is 2 bytes of leading unicode whitespace.
		{" junk", 2},
		// Missing "=": offset must count Ω as 2 bytes, landing on 'f'.
		{"t[Ωed]flu", 7},
		// Empty value after a person with a 2-byte "ü": end of token.
		{"t[München]=", 12},
	}
	for _, c := range atomCases {
		_, err := ParseAtom(c.in)
		if got := offsetOf(t, err); got != c.offset {
			t.Errorf("ParseAtom(%q) offset = %d, want %d (err: %v)", c.in, got, c.offset, err)
		}
	}

	// Bad consequent after an antecedent holding "é" (2 bytes): the offset
	// points at the 'z' of "zut", byte 20.
	_, err := ParseImplication("t[André]=grippe -> zut")
	if got := offsetOf(t, err); got != 20 {
		t.Errorf("implication offset = %d, want 20 (err: %v)", got, err)
	}

	// Error in the second conjunct after a first conjunct full of
	// multi-byte text ("Ω" and Cyrillic "флу"): global byte offset 24.
	in := "t[Ω]=флу -> t[B]=y; junk"
	_, err = ParseConjunction(in)
	if got := offsetOf(t, err); got != 24 {
		t.Errorf("ParseConjunction(%q) offset = %d, want 24 (err: %v)", in, got, err)
	} else if in[got] != 'j' {
		t.Errorf("offset %d points at byte %q, want 'j'", got, in[got])
	}

	// Property: offsets on arbitrary multi-byte garbage stay in bounds.
	for _, in := range []string{"Ω", "  日本語", "t[日本]=語 ->", "-> ", "t[é]=x -> t[ü]"} {
		if _, err := ParseConjunction(in); err != nil {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Errorf("ParseConjunction(%q): %T is not a SyntaxError", in, err)
				continue
			}
			if se.Offset < 0 || se.Offset > len(in) {
				t.Errorf("ParseConjunction(%q) offset %d outside [0, %d]", in, se.Offset, len(in))
			}
		}
	}
}
