package logic

import (
	"testing"
	"testing/quick"
)

func TestUniverseEnumWorlds(t *testing.T) {
	u := Universe{Persons: []string{"p", "q"}, Values: []string{"a", "b", "c"}}
	count := 0
	seen := map[string]bool{}
	u.EnumWorlds(func(w Assignment) bool {
		count++
		seen[w["p"]+"/"+w["q"]] = true
		return true
	})
	if count != 9 || len(seen) != 9 {
		t.Errorf("enumerated %d worlds, %d distinct; want 9", count, len(seen))
	}
	// Early stop.
	count = 0
	u.EnumWorlds(func(w Assignment) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop enumerated %d", count)
	}
}

func TestWorldCount(t *testing.T) {
	u := Universe{Persons: []string{"a", "b", "c"}, Values: []string{"x", "y"}}
	n, err := u.WorldCount(1000)
	if err != nil || n != 8 {
		t.Errorf("WorldCount = %d, %v", n, err)
	}
	big := Universe{Persons: make([]string, 64), Values: []string{"x", "y"}}
	if _, err := big.WorldCount(1 << 20); err == nil {
		t.Error("oversized universe accepted")
	}
}

// TestExpressExactness is the executable form of Theorem 3: for an
// arbitrary predicate over a small universe, the constructed conjunction of
// basic implications has exactly the predicate's models.
func TestExpressExactness(t *testing.T) {
	u := Universe{Persons: []string{"p", "q"}, Values: []string{"a", "b", "c"}}

	preds := map[string]func(Assignment) bool{
		"same value":    func(w Assignment) bool { return w["p"] == w["q"] },
		"p is a":        func(w Assignment) bool { return w["p"] == "a" },
		"not both b":    func(w Assignment) bool { return !(w["p"] == "b" && w["q"] == "b") },
		"everything":    func(w Assignment) bool { return true },
		"exactly one a": func(w Assignment) bool { return (w["p"] == "a") != (w["q"] == "a") },
	}
	for name, pred := range preds {
		t.Run(name, func(t *testing.T) {
			c, err := u.Express(pred)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Validate(); err != nil {
				t.Fatalf("constructed conjunction invalid: %v", err)
			}
			// Models of the conjunction == models of the predicate.
			u.EnumWorlds(func(w Assignment) bool {
				if c.Eval(w) != pred(w) {
					t.Errorf("world %v: conjunction %v, predicate %v", w, c.Eval(w), pred(w))
				}
				return true
			})
		})
	}
}

func TestExpressPredicateArity(t *testing.T) {
	// Single person: negation encoding path.
	u := Universe{Persons: []string{"p"}, Values: []string{"a", "b", "c"}}
	c, err := u.Express(func(w Assignment) bool { return w["p"] != "b" })
	if err != nil {
		t.Fatal(err)
	}
	if got := u.Models(c); got != 2 {
		t.Errorf("models = %d, want 2", got)
	}
}

func TestExpressErrors(t *testing.T) {
	if _, err := (Universe{}).Express(func(Assignment) bool { return true }); err == nil {
		t.Error("empty universe accepted")
	}
	one := Universe{Persons: []string{"p"}, Values: []string{"only"}}
	if _, err := one.Express(func(Assignment) bool { return false }); err == nil {
		t.Error("single-value exclusion accepted")
	}
	u := Universe{Persons: []string{"p"}, Values: []string{"a", "b"}}
	if _, err := u.Express(func(Assignment) bool { return false }); err == nil {
		t.Error("unsatisfiable predicate accepted")
	}
	huge := Universe{Persons: make([]string, 40), Values: []string{"a", "b", "c"}}
	for i := range huge.Persons {
		huge.Persons[i] = string(rune('A' + i))
	}
	if _, err := huge.Express(func(Assignment) bool { return true }); err == nil {
		t.Error("oversized universe accepted")
	}
}

// TestExpressRandomPredicates property-checks Theorem 3 on random
// predicates: any subset of worlds that is expressible (non-empty) is
// expressed exactly.
func TestExpressRandomPredicates(t *testing.T) {
	u := Universe{Persons: []string{"p", "q"}, Values: []string{"a", "b"}}
	f := func(mask uint8) bool {
		m := mask % 16
		if m == 0 {
			return true // unsatisfiable: Express correctly refuses
		}
		idx := func(w Assignment) int {
			i := 0
			if w["p"] == "b" {
				i |= 1
			}
			if w["q"] == "b" {
				i |= 2
			}
			return i
		}
		pred := func(w Assignment) bool { return m&(1<<idx(w)) != 0 }
		c, err := u.Express(pred)
		if err != nil {
			return false
		}
		ok := true
		u.EnumWorlds(func(w Assignment) bool {
			if c.Eval(w) != pred(w) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestExpressSizeBound documents the construction's size: one implication
// per excluded world (the exponential blow-up the paper acknowledges for
// arbitrary DNF properties).
func TestExpressSizeBound(t *testing.T) {
	u := Universe{Persons: []string{"p", "q"}, Values: []string{"a", "b", "c"}}
	pred := func(w Assignment) bool { return w["p"] == w["q"] } // excludes 6 of 9
	c, err := u.Express(pred)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 6 {
		t.Errorf("conjunction has %d implications, want 6", len(c))
	}
}
