package logic

import "fmt"

// Universe is a finite set of persons and a finite sensitive domain; its
// worlds are all |Values|^|Persons| assignments. It is the setting of the
// paper's Theorem 3 (completeness): with full identification information,
// any predicate on tables is expressible as a finite conjunction of basic
// implications.
type Universe struct {
	Persons []string
	Values  []string
}

// WorldCount returns |Values|^|Persons| or an error when it would overflow
// the enumeration budget.
func (u Universe) WorldCount(limit int) (int, error) {
	count := 1
	for range u.Persons {
		if count > limit/max(len(u.Values), 1) {
			return 0, fmt.Errorf("logic: universe has more than %d worlds", limit)
		}
		count *= len(u.Values)
	}
	return count, nil
}

// EnumWorlds calls yield for every assignment; it stops early if yield
// returns false. The assignment passed to yield is reused between calls and
// must not be retained.
func (u Universe) EnumWorlds(yield func(Assignment) bool) {
	w := make(Assignment, len(u.Persons))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(u.Persons) {
			return yield(w)
		}
		for _, v := range u.Values {
			w[u.Persons[i]] = v
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
}

// maxExpressWorlds bounds the enumeration in Express.
const maxExpressWorlds = 1 << 20

// Express implements Theorem 3 constructively: it returns a conjunction of
// basic implications whose models (within the universe) are exactly the
// worlds satisfying pred.
//
// Construction: for each world w excluded by pred, emit one basic
// implication equivalent to ¬w. With persons p_0..p_{m-1},
//
//	(t_{p_0}=w(p_0) ∧ … ∧ t_{p_{m-2}}=w(p_{m-2})) → (∨_{s≠w(p_{m-1})} t_{p_{m-1}}=s)
//
// is violated exactly at w: its antecedent pins the first m-1 coordinates
// and its consequent fails only when the last coordinate equals w(p_{m-1}).
// For m = 1 the antecedent is t_{p_0}=w(p_0) itself, which is the negation
// encoding of §2.2.
//
// Express fails when the universe has a single value but pred excludes its
// only world (an empty consequent disjunction is not a basic implication),
// and when every world is excluded (no consistent knowledge expresses an
// unsatisfiable predicate about an inhabited universe — conjunctions of
// basic implications are satisfiable by construction when |Values| ≥ 2).
func (u Universe) Express(pred func(Assignment) bool) (Conjunction, error) {
	if len(u.Persons) == 0 {
		return nil, fmt.Errorf("logic: universe has no persons")
	}
	if _, err := u.WorldCount(maxExpressWorlds); err != nil {
		return nil, err
	}
	var out Conjunction
	excluded := 0
	total := 0
	u.EnumWorlds(func(w Assignment) bool {
		total++
		if pred(w) {
			return true
		}
		excluded++
		imp, err := u.excludeWorld(w)
		if err != nil {
			out = nil
			return false
		}
		out = append(out, imp)
		return true
	})
	if excluded > 0 && out == nil {
		return nil, fmt.Errorf("logic: cannot express exclusion with a single-value domain")
	}
	if excluded == total {
		return nil, fmt.Errorf("logic: predicate excludes every world; not expressible as consistent knowledge")
	}
	return out, nil
}

// excludeWorld builds the single basic implication equivalent to ¬w.
func (u Universe) excludeWorld(w Assignment) (BasicImplication, error) {
	m := len(u.Persons)
	last := u.Persons[m-1]
	var cons []Atom
	for _, s := range u.Values {
		if s != w[last] {
			cons = append(cons, Atom{Person: last, Value: s})
		}
	}
	if len(cons) == 0 {
		return BasicImplication{}, fmt.Errorf("logic: single-value domain")
	}
	var ante []Atom
	if m == 1 {
		ante = []Atom{{Person: last, Value: w[last]}}
	} else {
		for _, p := range u.Persons[:m-1] {
			ante = append(ante, Atom{Person: p, Value: w[p]})
		}
	}
	return BasicImplication{Ante: ante, Cons: cons}, nil
}

// Models returns how many worlds of the universe satisfy the formula; used
// to verify Express in tests and demos.
func (u Universe) Models(c Conjunction) int {
	n := 0
	u.EnumWorlds(func(w Assignment) bool {
		if c.Eval(w) {
			n++
		}
		return true
	})
	return n
}
