package experiments

import (
	"fmt"
	"io"
	"sort"

	"ckprivacy/internal/anonymize"
	"ckprivacy/internal/core"
	"ckprivacy/internal/dataset/adult"
	"ckprivacy/internal/lattice"
	"ckprivacy/internal/parallel"
	"ckprivacy/internal/table"
)

// DefaultFig6Ks are the series the paper plots in Figure 6.
var DefaultFig6Ks = []int{1, 3, 5, 7, 9, 11}

// Fig6Point is one anonymized table (lattice node): its minimum bucket
// entropy h and its maximum disclosure per k.
type Fig6Point struct {
	Node       lattice.Node
	Buckets    int
	MinEntropy float64
	// Disclosure maps k to the table's maximum disclosure w.r.t. L^k_basic.
	Disclosure map[int]float64
	// Negation, when the sweep was run with Fig6Config.Negation, maps k to
	// the maximum disclosure against k negated atoms — the "analogous
	// graph for negation statements" the paper reports plotting but does
	// not show (§4).
	Negation map[int]float64
}

// Fig6Config parameterizes the sweep.
type Fig6Config struct {
	// Ks are the knowledge bounds; nil means DefaultFig6Ks.
	Ks []int
	// Negation additionally computes the negated-atom disclosure per node.
	Negation bool
	// Workers bounds the goroutines sweeping lattice nodes; values below 1
	// mean one worker per CPU core. The result is identical at every worker
	// count — nodes are gathered by lattice position before the final
	// entropy sort.
	Workers int
	// Engine, when non-nil, supplies the MINIMIZE1 memo the sweep shares
	// across nodes — letting callers bound its bytes (core.EngineConfig) or
	// inspect hit rates afterwards. Nil uses a fresh default-bounded engine.
	Engine *core.Engine
}

// Fig6Result holds the full sweep over all 72 generalizations of the Adult
// quasi-identifiers.
type Fig6Result struct {
	Ks []int
	// Points is sorted by increasing MinEntropy.
	Points []Fig6Point
}

// RunFig6 reproduces Figure 6: for every node of the 6×3×2×2 lattice it
// computes the minimum sensitive-attribute entropy over buckets and the
// maximum disclosure for each k. The paper's plotted quantity
// w(T(h), k) — the least maximum disclosure among tables with minimum
// entropy h — is recovered by Envelope.
func RunFig6(tab *table.Table, ks []int) (*Fig6Result, error) {
	return RunFig6Config(tab, Fig6Config{Ks: ks})
}

// RunFig6Config is RunFig6 with the full configuration.
func RunFig6Config(tab *table.Table, cfg Fig6Config) (*Fig6Result, error) {
	ks := cfg.Ks
	if len(ks) == 0 {
		ks = DefaultFig6Ks
	}
	for _, k := range ks {
		if k < 0 {
			return nil, fmt.Errorf("experiments: negative k %d", k)
		}
	}
	p, err := anonymize.NewProblem(tab, adult.Hierarchies(), adult.QuasiIdentifiers())
	if err != nil {
		return nil, fmt.Errorf("experiments: fig6: %w", err)
	}
	engine := cfg.Engine
	if engine == nil {
		engine = core.NewEngine()
	}
	res := &Fig6Result{Ks: append([]int(nil), ks...)}
	// Sweep the 72 generalizations on all workers: every node's bucketize +
	// max-disclosure chain is independent (the engine's MINIMIZE1 memo and
	// the problem's bucketization cache are concurrency-safe and shared, so
	// repeated histograms across nodes are still computed once). Points land
	// in lattice order before the entropy sort, keeping the result identical
	// to the serial sweep.
	nodes := p.Space().All()
	snap := p.Snapshot()
	if p.Encoding().Enabled {
		// Materialize the whole lattice as one planned sweep first: one base
		// scan at the bottom, everything else coarsened along the derivation
		// DAG through pooled arenas. The per-node loop below then only ever
		// hits the cache; results are byte-identical to bucketizing each
		// node independently.
		if err := snap.MaterializeNodes(nodes); err != nil {
			return nil, fmt.Errorf("experiments: fig6 sweep: %w", err)
		}
	}
	res.Points = make([]Fig6Point, len(nodes))
	err = parallel.ForEach(cfg.Workers, len(nodes), func(i int) error {
		node := nodes[i]
		bz, err := snap.Bucketize(node)
		if err != nil {
			return fmt.Errorf("experiments: fig6 at %v: %w", node, err)
		}
		pt := Fig6Point{
			Node:       node,
			Buckets:    len(bz.Buckets),
			MinEntropy: bz.MinEntropy(),
			Disclosure: make(map[int]float64, len(ks)),
		}
		if cfg.Negation {
			pt.Negation = make(map[int]float64, len(ks))
		}
		for _, k := range ks {
			d, err := engine.MaxDisclosure(bz, k)
			if err != nil {
				return fmt.Errorf("experiments: fig6 at %v k=%d: %w", node, k, err)
			}
			pt.Disclosure[k] = d
			if cfg.Negation {
				nd, err := core.NegationMaxDisclosure(bz, k)
				if err != nil {
					return fmt.Errorf("experiments: fig6 negation at %v k=%d: %w", node, k, err)
				}
				pt.Negation[k] = nd
			}
		}
		res.Points[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.SliceStable(res.Points, func(i, j int) bool {
		return res.Points[i].MinEntropy < res.Points[j].MinEntropy
	})
	return res, nil
}

// EnvelopePoint is one (h, w(T(h), k)) pair.
type EnvelopePoint struct {
	MinEntropy float64
	Disclosure float64
}

// Envelope returns, for each distinct minimum-entropy value h, the least
// maximum disclosure among tables whose minimum entropy equals h — the
// paper's w(T(h), k) series.
func (r *Fig6Result) Envelope(k int) []EnvelopePoint {
	return r.envelope(k, func(pt Fig6Point) map[int]float64 { return pt.Disclosure })
}

// NegationEnvelope is Envelope over the negated-atom disclosures; it
// returns nil unless the sweep ran with Fig6Config.Negation.
func (r *Fig6Result) NegationEnvelope(k int) []EnvelopePoint {
	return r.envelope(k, func(pt Fig6Point) map[int]float64 { return pt.Negation })
}

func (r *Fig6Result) envelope(k int, series func(Fig6Point) map[int]float64) []EnvelopePoint {
	var out []EnvelopePoint
	for _, pt := range r.Points {
		d, ok := series(pt)[k]
		if !ok {
			continue
		}
		if n := len(out); n > 0 && out[n-1].MinEntropy == pt.MinEntropy {
			if d < out[n-1].Disclosure {
				out[n-1].Disclosure = d
			}
			continue
		}
		out = append(out, EnvelopePoint{MinEntropy: pt.MinEntropy, Disclosure: d})
	}
	return out
}

// Render writes one row per distinct entropy value with the envelope
// disclosure for every k series.
func (r *Fig6Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Figure 6: min entropy vs least max disclosure (%d tables)\n\n", len(r.Points)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%10s", "minH"); err != nil {
		return err
	}
	for _, k := range r.Ks {
		if _, err := fmt.Fprintf(w, "  %8s", fmt.Sprintf("k=%d", k)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	envs := make(map[int][]EnvelopePoint, len(r.Ks))
	for _, k := range r.Ks {
		envs[k] = r.Envelope(k)
	}
	if len(r.Ks) == 0 {
		return nil
	}
	for i, pt := range envs[r.Ks[0]] {
		if _, err := fmt.Fprintf(w, "%10.4f", pt.MinEntropy); err != nil {
			return err
		}
		for _, k := range r.Ks {
			if _, err := fmt.Fprintf(w, "  %8.4f", envs[k][i].Disclosure); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits minEntropy plus one disclosure column per k.
func (r *Fig6Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprint(w, "min_entropy"); err != nil {
		return err
	}
	for _, k := range r.Ks {
		if _, err := fmt.Fprintf(w, ",k%d", k); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, pt := range r.Points {
		if _, err := fmt.Fprintf(w, "%g", pt.MinEntropy); err != nil {
			return err
		}
		for _, k := range r.Ks {
			if _, err := fmt.Fprintf(w, ",%g", pt.Disclosure[k]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
