package experiments

import (
	"fmt"
	"io"
	"math"
)

// This file renders Figures 5 and 6 as standalone SVG line charts so the
// harness regenerates the paper's artifacts as figures, not just tables.
// Only the standard library is used; the output is deliberately simple
// (axes, ticks, polylines, legend).

const (
	svgW, svgH                         = 640, 440
	padLeft, padRight, padTop, padBott = 60, 20, 30, 50
)

var svgColors = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

type svgSeries struct {
	name string
	xs   []float64
	ys   []float64
}

// renderSVG writes a complete SVG document with the given series, axis
// labels and title. Y is always the [0,1] disclosure axis.
func renderSVG(w io.Writer, title, xlabel string, xmin, xmax float64, series []svgSeries) error {
	if xmax <= xmin {
		return fmt.Errorf("experiments: empty x range [%g, %g]", xmin, xmax)
	}
	plotW := float64(svgW - padLeft - padRight)
	plotH := float64(svgH - padTop - padBott)
	px := func(x float64) float64 { return padLeft + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return padTop + (1-y)*plotH }

	var b []byte
	out := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	out(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		svgW, svgH, svgW, svgH)
	out(`<rect width="%d" height="%d" fill="white"/>`+"\n", svgW, svgH)
	out(`<text x="%d" y="18" font-family="sans-serif" font-size="14" text-anchor="middle">%s</text>`+"\n",
		svgW/2, title)

	// Axes.
	out(`<line x1="%d" y1="%g" x2="%d" y2="%g" stroke="black"/>`+"\n",
		padLeft, py(0), svgW-padRight, py(0))
	out(`<line x1="%d" y1="%g" x2="%d" y2="%g" stroke="black"/>`+"\n",
		padLeft, py(0), padLeft, py(1))
	// Y ticks at 0, .2, ..., 1.
	for t := 0; t <= 5; t++ {
		y := float64(t) / 5
		out(`<line x1="%d" y1="%g" x2="%d" y2="%g" stroke="#cccccc"/>`+"\n",
			padLeft, py(y), svgW-padRight, py(y))
		out(`<text x="%d" y="%g" font-family="sans-serif" font-size="11" text-anchor="end">%.1f</text>`+"\n",
			padLeft-6, py(y)+4, y)
	}
	// X ticks: 6 evenly spaced.
	for t := 0; t <= 5; t++ {
		x := xmin + (xmax-xmin)*float64(t)/5
		out(`<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
			px(x), py(0), px(x), py(0)+5)
		out(`<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="middle">%.3g</text>`+"\n",
			px(x), py(0)+18, x)
	}
	out(`<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		svgW/2, svgH-12, xlabel)
	out(`<text x="16" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">max disclosure</text>`+"\n",
		svgH/2, svgH/2)

	for si, s := range series {
		color := svgColors[si%len(svgColors)]
		points := ""
		for i := range s.xs {
			y := s.ys[i]
			if math.IsNaN(y) {
				continue
			}
			points += fmt.Sprintf("%.2f,%.2f ", px(s.xs[i]), py(y))
		}
		out(`<polyline fill="none" stroke="%s" stroke-width="1.5" points="%s"/>`+"\n", color, points)
		// Legend entry.
		ly := padTop + 14 + 16*si
		out(`<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			svgW-150, ly, svgW-125, ly, color)
		out(`<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			svgW-120, ly+4, s.name)
	}
	out("</svg>\n")
	_, err := w.Write(b)
	return err
}

// WriteSVG renders Figure 5 as an SVG chart.
func (r *Fig5Result) WriteSVG(w io.Writer) error {
	if len(r.Ks) == 0 {
		return fmt.Errorf("experiments: empty figure 5 result")
	}
	xs := make([]float64, len(r.Ks))
	for i, k := range r.Ks {
		xs[i] = float64(k)
	}
	return renderSVG(w,
		"Figure 5: disclosure vs pieces of background knowledge",
		"number of conjuncts (k)",
		xs[0], xs[len(xs)-1],
		[]svgSeries{
			{name: "implication", xs: xs, ys: r.Implication},
			{name: "negation", xs: xs, ys: r.Negation},
		})
}

// WriteSVG renders Figure 6's envelopes as an SVG chart, one series per k.
func (r *Fig6Result) WriteSVG(w io.Writer) error {
	if len(r.Points) == 0 || len(r.Ks) == 0 {
		return fmt.Errorf("experiments: empty figure 6 result")
	}
	var series []svgSeries
	xmin, xmax := math.Inf(1), math.Inf(-1)
	for _, k := range r.Ks {
		env := r.Envelope(k)
		s := svgSeries{name: fmt.Sprintf("k = %d", k)}
		for _, pt := range env {
			s.xs = append(s.xs, pt.MinEntropy)
			s.ys = append(s.ys, pt.Disclosure)
			xmin = math.Min(xmin, pt.MinEntropy)
			xmax = math.Max(xmax, pt.MinEntropy)
		}
		series = append(series, s)
	}
	return renderSVG(w,
		"Figure 6: min entropy vs least max disclosure",
		"min bucket entropy (nats)",
		xmin, xmax, series)
}
