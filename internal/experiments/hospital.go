package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"ckprivacy/internal/bucket"
	"ckprivacy/internal/hierarchy"
	"ckprivacy/internal/table"
	"ckprivacy/internal/worlds"
)

// Hospital is the paper's running example: the Figure 1 table of ten
// patients, the hierarchies producing the Figure 2/3 partition, and the
// person names used in the worked probability computations.
type Hospital struct {
	Table       *table.Table
	Names       []string
	Hierarchies hierarchy.Set
}

// HospitalExample constructs the Figure 1 data.
func HospitalExample() *Hospital {
	s, err := table.NewSchema([]table.Attribute{
		{Name: "Zip", Kind: table.Numeric, Min: 0, Max: 99999},
		{Name: "Age", Kind: table.Numeric, Min: 0, Max: 120},
		{Name: "Sex", Kind: table.Categorical, Domain: []string{"M", "F"}},
		{Name: "Disease", Kind: table.Categorical, Domain: []string{
			"flu", "lung-cancer", "mumps", "breast-cancer", "ovarian-cancer", "heart-disease",
		}},
	}, "Disease")
	if err != nil {
		panic(err) // static fixture
	}
	t := table.New(s)
	rows := []struct {
		name string
		row  table.Row
	}{
		{"Bob", table.Row{"14850", "23", "M", "flu"}},
		{"Charlie", table.Row{"14850", "24", "M", "flu"}},
		{"Dave", table.Row{"14850", "25", "M", "lung-cancer"}},
		{"Ed", table.Row{"14850", "27", "M", "lung-cancer"}},
		{"Frank", table.Row{"14853", "29", "M", "mumps"}},
		{"Gloria", table.Row{"14850", "21", "F", "flu"}},
		{"Hannah", table.Row{"14850", "22", "F", "flu"}},
		{"Irma", table.Row{"14853", "24", "F", "breast-cancer"}},
		{"Jessica", table.Row{"14853", "26", "F", "ovarian-cancer"}},
		{"Karen", table.Row{"14853", "28", "F", "heart-disease"}},
	}
	names := make([]string, 0, len(rows))
	for _, r := range rows {
		t.MustAppend(r.row)
		names = append(names, r.name)
	}
	return &Hospital{
		Table: t,
		Names: names,
		Hierarchies: hierarchy.Set{
			"Zip": hierarchy.MustInterval("Zip", []int{1, 10, 0}),
			"Age": hierarchy.MustInterval("Age", []int{1, 10, 0}),
			"Sex": hierarchy.NewSuppression("Sex", []string{"M", "F"}),
		},
	}
}

// Name maps a tuple id to the paper's person name.
func (h *Hospital) Name(id int) string { return h.Names[id] }

// Bucketize produces the Figure 2/3 partition: Zip and Age generalized one
// level, Sex kept.
func (h *Hospital) Bucketize() (*bucket.Bucketization, error) {
	return bucketizeEncoded(h.Table, h.Hierarchies, bucket.Levels{"Zip": 1, "Age": 1})
}

// Instance converts the Figure 2/3 bucketization into a random-worlds
// instance with the paper's person names, for exact probability queries.
func (h *Hospital) Instance() (worlds.Instance, error) {
	bz, err := h.Bucketize()
	if err != nil {
		return worlds.Instance{}, err
	}
	return worlds.FromBucketization(bz, h.Name)
}

// RenderFigure1 writes the original table.
func (h *Hospital) RenderFigure1(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Figure 1: original table\n%-8s %-6s %-4s %-4s %s\n",
		"Name", "Zip", "Age", "Sex", "Disease"); err != nil {
		return err
	}
	for i, row := range h.Table.Rows {
		if _, err := fmt.Fprintf(w, "%-8s %-6s %-4s %-4s %s\n",
			h.Names[i], row[0], row[1], row[2], row[3]); err != nil {
			return err
		}
	}
	return nil
}

// RenderFigure3 writes the published bucketization: non-sensitive values in
// the clear, names masked, sensitive values permuted within buckets using
// the given seed.
func (h *Hospital) RenderFigure3(w io.Writer, seed int64) error {
	bz, err := h.Bucketize()
	if err != nil {
		return err
	}
	rows, err := bz.Publish(rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "Figure 3: bucketized table (sensitive values permuted per bucket)\n%-16s %-6s %-4s %-4s %s\n",
		"Bucket", "Zip", "Age", "Sex", "Disease"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-16s %-6s %-4s %-4s %s\n", r[0], r[1], r[2], r[3], r[4]); err != nil {
			return err
		}
	}
	return nil
}
