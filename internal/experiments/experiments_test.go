package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"ckprivacy/internal/core"
	"ckprivacy/internal/dataset/adult"
	"ckprivacy/internal/logic"
	"ckprivacy/internal/table"
)

const eps = 1e-9

func smallAdult(t *testing.T) *table.Table {
	t.Helper()
	tab, err := adult.Generate(adult.Config{N: 4000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestRunFig5Shape(t *testing.T) {
	tab := smallAdult(t)
	res, err := RunFig5(tab, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ks) != 14 || len(res.Implication) != 14 || len(res.Negation) != 14 {
		t.Fatalf("lengths = %d/%d/%d", len(res.Ks), len(res.Implication), len(res.Negation))
	}
	// The Figure 5 generalization keeps only width-20 Age intervals; ages
	// 17..90 span intervals [0,20) [20,40) [40,60) [60,80) [80,100).
	if res.Buckets < 4 || res.Buckets > 5 {
		t.Errorf("buckets = %d, want 4..5", res.Buckets)
	}
	for i := range res.Ks {
		impl, neg := res.Implication[i], res.Negation[i]
		if impl < 0 || impl > 1 || neg < 0 || neg > 1 {
			t.Fatalf("k=%d out of range: %v %v", i, impl, neg)
		}
		// Paper: "the maximum disclosure for k negated atoms is always
		// smaller than the maximum disclosure for k implications".
		if neg > impl+eps {
			t.Errorf("k=%d: negation %v exceeds implication %v", i, neg, impl)
		}
		if i > 0 {
			if impl < res.Implication[i-1]-eps || neg < res.Negation[i-1]-eps {
				t.Errorf("curves not monotone at k=%d", i)
			}
		}
	}
	// Same starting point with no knowledge.
	if math.Abs(res.Implication[0]-res.Negation[0]) > eps {
		t.Errorf("k=0 points differ: %v vs %v", res.Implication[0], res.Negation[0])
	}
	// Paper: disclosure certainly reaches 1 at k = 13 (14 values).
	if res.Implication[13] != 1 || res.Negation[13] != 1 {
		t.Errorf("k=13 disclosure = %v / %v, want 1 / 1", res.Implication[13], res.Negation[13])
	}
}

func TestRunFig5DefaultsAndErrors(t *testing.T) {
	tab := smallAdult(t)
	res, err := RunFig5(tab, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ks) != 13 { // default maxK = 12
		t.Errorf("default Ks length = %d, want 13", len(res.Ks))
	}
	if _, err := RunFig5(tab, -2); err == nil {
		t.Error("negative maxK accepted")
	}
}

func TestFig5Render(t *testing.T) {
	tab := smallAdult(t)
	res, err := RunFig5(tab, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 5") || !strings.Contains(out, "implication") {
		t.Errorf("render output missing headings:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got < 7 {
		t.Errorf("render has %d lines", got)
	}
	buf.Reset()
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 || lines[0] != "k,implication,negation" {
		t.Errorf("csv = %q", buf.String())
	}
}

func TestRunFig6Shape(t *testing.T) {
	tab := smallAdult(t)
	res, err := RunFig6(tab, []int{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 72 {
		t.Fatalf("points = %d, want 72 (the full lattice)", len(res.Points))
	}
	for i, pt := range res.Points {
		if i > 0 && pt.MinEntropy < res.Points[i-1].MinEntropy {
			t.Fatal("points not sorted by entropy")
		}
		d1, d5 := pt.Disclosure[1], pt.Disclosure[5]
		if d1 < 0 || d1 > 1 || d5 < 0 || d5 > 1 {
			t.Fatalf("node %v: disclosure out of range", pt.Node)
		}
		// More knowledge can only disclose more.
		if d5 < d1-eps {
			t.Errorf("node %v: k=5 (%v) below k=1 (%v)", pt.Node, d5, d1)
		}
	}
	// The fully generalized node (one bucket over 4000 tuples) must have
	// the highest entropy and, for k=1, low disclosure; ground nodes have
	// singleton buckets and disclosure 1.
	top := res.Points[len(res.Points)-1]
	if top.Buckets != 1 {
		t.Errorf("highest-entropy point has %d buckets", top.Buckets)
	}
	bottomFound := false
	for _, pt := range res.Points {
		if pt.Node.Height() == 0 { // the ground partition
			bottomFound = true
			if pt.Buckets < 200 {
				t.Errorf("ground node has only %d buckets", pt.Buckets)
			}
			// The ground partition has singleton buckets, so everything
			// is disclosed even with k=0-level knowledge.
			if pt.Disclosure[1] != 1 {
				t.Errorf("ground node has disclosure %v", pt.Disclosure[1])
			}
		}
	}
	if !bottomFound {
		t.Error("ground node missing from sweep")
	}
	// Directional claim of Figure 6: disclosure falls as min-entropy rises.
	// Compare the mean over the lowest and highest entropy thirds.
	third := len(res.Points) / 3
	lo, hi := 0.0, 0.0
	for i := 0; i < third; i++ {
		lo += res.Points[i].Disclosure[1]
		hi += res.Points[len(res.Points)-1-i].Disclosure[1]
	}
	if hi >= lo {
		t.Errorf("high-entropy tables disclose more on average: lo=%v hi=%v", lo/float64(third), hi/float64(third))
	}
}

func TestRunFig6DefaultsAndErrors(t *testing.T) {
	tab := smallAdult(t)
	if _, err := RunFig6(tab, []int{-1}); err == nil {
		t.Error("negative k accepted")
	}
	res, err := RunFig6(tab, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ks) != len(DefaultFig6Ks) {
		t.Errorf("default ks = %v", res.Ks)
	}
}

func TestFig6EnvelopeAndRender(t *testing.T) {
	tab := smallAdult(t)
	res, err := RunFig6(tab, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	env := res.Envelope(1)
	if len(env) == 0 || len(env) > len(res.Points) {
		t.Fatalf("envelope size = %d", len(env))
	}
	for i := 1; i < len(env); i++ {
		if env[i].MinEntropy <= env[i-1].MinEntropy {
			t.Fatal("envelope entropies not strictly increasing")
		}
	}
	if res.Envelope(99) != nil {
		t.Error("unknown k produced envelope")
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 6") || !strings.Contains(buf.String(), "k=3") {
		t.Errorf("render output:\n%s", buf.String())
	}
	buf.Reset()
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 73 || lines[0] != "min_entropy,k1,k3" {
		t.Errorf("csv header/rows = %q, %d lines", lines[0], len(lines))
	}
}

// TestRunFig6Negation covers the paper's unshown "analogous graph for
// negation statements": same shape, pointwise below the implication curve.
func TestRunFig6Negation(t *testing.T) {
	tab := smallAdult(t)
	res, err := RunFig6Config(tab, Fig6Config{Ks: []int{1, 5}, Negation: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range res.Points {
		for _, k := range res.Ks {
			if pt.Negation[k] > pt.Disclosure[k]+eps {
				t.Errorf("node %v k=%d: negation %v exceeds implication %v",
					pt.Node, k, pt.Negation[k], pt.Disclosure[k])
			}
		}
	}
	env := res.NegationEnvelope(1)
	if len(env) == 0 {
		t.Fatal("no negation envelope")
	}
	// Without the flag, negation data is absent.
	plain, err := RunFig6(tab, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if plain.NegationEnvelope(1) != nil {
		t.Error("negation envelope without the flag")
	}
}

func TestHospitalExample(t *testing.T) {
	h := HospitalExample()
	if h.Table.Len() != 10 || len(h.Names) != 10 {
		t.Fatalf("table/names = %d/%d", h.Table.Len(), len(h.Names))
	}
	bz, err := h.Bucketize()
	if err != nil {
		t.Fatal(err)
	}
	if len(bz.Buckets) != 2 || bz.MinSize() != 5 {
		t.Fatalf("bucketization = %d buckets, min %d", len(bz.Buckets), bz.MinSize())
	}
	in, err := h.Instance()
	if err != nil {
		t.Fatal(err)
	}
	// Reproduce the Hannah/Charlie number through the named instance.
	p, err := in.CondProb(
		logic.Atom{Person: "Charlie", Value: "flu"},
		logic.Simple(logic.SimpleImplication{
			Ante: logic.Atom{Person: "Hannah", Value: "flu"},
			Cons: logic.Atom{Person: "Charlie", Value: "flu"},
		}))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := p.Float64(); math.Abs(got-10.0/19) > eps {
		t.Errorf("Pr(Charlie=flu | Hannah→Charlie) = %v, want 10/19", got)
	}
}

func TestHospitalRendering(t *testing.T) {
	h := HospitalExample()
	var buf bytes.Buffer
	if err := h.RenderFigure1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Ed") || !strings.Contains(out, "lung-cancer") {
		t.Errorf("figure 1 output:\n%s", out)
	}
	buf.Reset()
	if err := h.RenderFigure3(&buf, 42); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if strings.Contains(out, "Ed") {
		t.Error("figure 3 leaks names")
	}
	if !strings.Contains(out, "mumps") {
		t.Errorf("figure 3 missing sensitive values:\n%s", out)
	}
	// Deterministic for a fixed seed.
	var buf2 bytes.Buffer
	if err := h.RenderFigure3(&buf2, 42); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("figure 3 not deterministic for fixed seed")
	}
}

// TestFig6BoundedMemoParity is the sweep half of the bounded-memo
// acceptance criterion: on the Figure 6 workload the default-capacity
// engine must never evict, so its hit rate stays within 1% of an unbounded
// engine's and every disclosure value is byte-identical.
func TestFig6BoundedMemoParity(t *testing.T) {
	tab := smallAdult(t)
	ks := []int{1, 3, 5}

	unbounded := core.NewEngineWithConfig(core.EngineConfig{MemoMaxBytes: -1})
	bounded := core.NewEngine() // default cap
	ref, err := RunFig6Config(tab, Fig6Config{Ks: ks, Engine: unbounded})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunFig6Config(tab, Fig6Config{Ks: ks, Engine: bounded})
	if err != nil {
		t.Fatal(err)
	}

	if len(got.Points) != len(ref.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(got.Points), len(ref.Points))
	}
	for i := range got.Points {
		g, r := got.Points[i], ref.Points[i]
		if g.Node.Key() != r.Node.Key() {
			t.Fatalf("point %d: node %v vs %v", i, g.Node, r.Node)
		}
		for _, k := range ks {
			if math.Float64bits(g.Disclosure[k]) != math.Float64bits(r.Disclosure[k]) {
				t.Errorf("node %v k=%d: bounded %v, unbounded %v",
					g.Node, k, g.Disclosure[k], r.Disclosure[k])
			}
		}
	}

	bs, us := bounded.Stats(), unbounded.Stats()
	if bs.Evictions != 0 {
		t.Errorf("default-capacity engine evicted %d entries on the fig6 sweep", bs.Evictions)
	}
	if diff := math.Abs(bs.HitRate() - us.HitRate()); diff > 0.01 {
		t.Errorf("hit rate drifted: bounded %.4f vs unbounded %.4f (|Δ| = %.4f > 0.01)",
			bs.HitRate(), us.HitRate(), diff)
	}
}
