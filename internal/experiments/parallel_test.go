package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestFig6ParallelMatchesSerial asserts the sweep's promise: identical
// points — values, order, everything — at every worker count.
func TestFig6ParallelMatchesSerial(t *testing.T) {
	tab := smallAdult(t)
	ks := []int{1, 5}
	serial, err := RunFig6Config(tab, Fig6Config{Ks: ks, Negation: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		par, err := RunFig6Config(tab, Fig6Config{Ks: ks, Negation: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("workers=%d: parallel Fig6 differs from serial", workers)
		}
	}
}

func TestFig5ParallelMatchesSerial(t *testing.T) {
	tab := smallAdult(t)
	serial, err := RunFig5Config(tab, Fig5Config{MaxK: 6, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunFig5Config(tab, Fig5Config{MaxK: 6, Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Error("parallel Fig5 differs from serial")
	}
}

func TestSafetyGrid(t *testing.T) {
	tab := smallAdult(t)
	cfg := GridConfig{Cs: []float64{0.6, 0.9}, Ks: []int{1, 3}, Workers: 0}
	res, err := RunSafetyGrid(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 || len(res.Cells[0]) != 2 {
		t.Fatalf("grid shape = %dx%d", len(res.Cells), len(res.Cells[0]))
	}
	serial, err := RunSafetyGrid(tab, GridConfig{Cs: cfg.Cs, Ks: cfg.Ks, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, res) {
		t.Error("parallel grid differs from serial")
	}
	// Monotonicity across the grid: a laxer threshold (larger c) at the
	// same k can only need an equal-or-lower safe node; a larger k at the
	// same c only an equal-or-higher one.
	for j := range cfg.Ks {
		lax, strict := res.Cells[1][j], res.Cells[0][j]
		if strict.Exists && (!lax.Exists || lax.Height > strict.Height) {
			t.Errorf("k=%d: c=0.9 cell %+v worse than c=0.6 cell %+v", cfg.Ks[j], lax, strict)
		}
	}
	for i := range cfg.Cs {
		small, big := res.Cells[i][0], res.Cells[i][1]
		if big.Exists && small.Exists && small.Height > big.Height {
			t.Errorf("c=%v: k=1 height %d exceeds k=3 height %d", cfg.Cs[i], small.Height, big.Height)
		}
	}
}

func TestSafetyGridValidationAndRender(t *testing.T) {
	tab := smallAdult(t)
	if _, err := RunSafetyGrid(tab, GridConfig{Cs: []float64{1.5}}); err == nil {
		t.Error("c > 1 accepted")
	}
	if _, err := RunSafetyGrid(tab, GridConfig{Ks: []int{-1}}); err == nil {
		t.Error("negative k accepted")
	}
	res, err := RunSafetyGrid(tab, GridConfig{Cs: []float64{0.9}, Ks: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "k=1") {
		t.Errorf("render missing header: %q", buf.String())
	}
	buf.Reset()
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "c,k,exists,height,buckets,node") {
		t.Errorf("csv header wrong: %q", buf.String())
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 2 {
		t.Errorf("csv has %d lines, want 2", lines)
	}
}
