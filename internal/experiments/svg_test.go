package experiments

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"
)

func TestFig5SVG(t *testing.T) {
	tab := smallAdult(t)
	res, err := RunFig5(tab, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not an SVG document")
	}
	// Must be well-formed XML.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("malformed XML: %v", err)
		}
	}
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Errorf("%d polylines, want 2 (implication + negation)", got)
	}
	if !strings.Contains(out, "implication") || !strings.Contains(out, "negation") {
		t.Error("legend labels missing")
	}
	// Empty results are rejected.
	if err := (&Fig5Result{}).WriteSVG(&buf); err == nil {
		t.Error("empty result accepted")
	}
}

func TestFig6SVG(t *testing.T) {
	tab := smallAdult(t)
	res, err := RunFig6(tab, []int{1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got := strings.Count(out, "<polyline"); got != 3 {
		t.Errorf("%d polylines, want 3 (one per k)", got)
	}
	if !strings.Contains(out, "k = 5") {
		t.Error("legend label missing")
	}
	if err := (&Fig6Result{}).WriteSVG(&buf); err == nil {
		t.Error("empty result accepted")
	}
}
