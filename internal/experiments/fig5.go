// Package experiments regenerates every table and figure in the paper's
// evaluation (§4), plus the worked examples of the introduction, as
// reproducible computations over the synthetic Adult substrate. See
// EXPERIMENTS.md for the paper-vs-measured record.
package experiments

import (
	"fmt"
	"io"

	"ckprivacy/internal/anonymize"
	"ckprivacy/internal/bucket"
	"ckprivacy/internal/core"
	"ckprivacy/internal/dataset/adult"
	"ckprivacy/internal/lattice"
	"ckprivacy/internal/parallel"
	"ckprivacy/internal/table"
)

// Fig5Levels is the generalization the paper uses for Figure 5: "all the
// attributes other than Age were suppressed and the Age attribute was
// generalized to intervals of size 20" (Age level 3 of the 1/5/10/20/40/*
// hierarchy).
func Fig5Levels() bucket.Levels {
	return bucket.Levels{
		adult.AttrAge:     3,
		adult.AttrMarital: 2,
		adult.AttrRace:    1,
		adult.AttrSex:     1,
	}
}

// Fig5Result holds both curves of Figure 5: maximum disclosure as a
// function of the number k of pieces of background knowledge, for basic
// implications (solid line) and negated atoms (dotted line).
type Fig5Result struct {
	Ks          []int
	Implication []float64
	Negation    []float64
	// Buckets is the number of buckets the Figure 5 generalization induces.
	Buckets int
	// MinEntropy is the bucketization's minimum bucket entropy (nats).
	MinEntropy float64
}

// Fig5Config parameterizes RunFig5Config.
type Fig5Config struct {
	// MaxK is the largest knowledge bound; 0 means the paper's 12.
	MaxK int
	// Workers bounds the goroutines computing the figure's two disclosure
	// curves; values below 1 mean one worker per CPU core. The implication
	// and negation series are independent and run concurrently when the
	// budget allows; the result is identical at every worker count.
	Workers int
}

// RunFig5 computes Figure 5 for the given Adult-schema table. maxK defaults
// to 12, matching the paper (with 14 occupation values, disclosure
// certainly reaches 1 at k = 13).
func RunFig5(tab *table.Table, maxK int) (*Fig5Result, error) {
	return RunFig5Config(tab, Fig5Config{MaxK: maxK})
}

// RunFig5Config is RunFig5 with the full configuration.
func RunFig5Config(tab *table.Table, cfg Fig5Config) (*Fig5Result, error) {
	maxK := cfg.MaxK
	if maxK == 0 {
		maxK = 12
	}
	if maxK < 0 {
		return nil, fmt.Errorf("experiments: negative maxK")
	}
	// Materialize the figure's generalization through the problem's planned
	// sweep path (a one-node plan: encode once, base-scan at the DAG root),
	// so fig5 exercises the same machinery the full-lattice sweeps run on.
	// Tables whose values the hierarchies cannot compile fall back to the
	// legacy string path inside NewProblem, preserving the lazy per-row
	// error semantics of the reference implementation.
	p, err := anonymize.NewProblem(tab, adult.Hierarchies(), adult.QuasiIdentifiers())
	if err != nil {
		return nil, fmt.Errorf("experiments: fig5: %w", err)
	}
	node, err := p.NodeForLevels(Fig5Levels())
	if err != nil {
		return nil, fmt.Errorf("experiments: fig5: %w", err)
	}
	snap := p.Snapshot()
	if err := snap.MaterializeNodes([]lattice.Node{node}); err != nil {
		return nil, fmt.Errorf("experiments: fig5 bucketize: %w", err)
	}
	bz, err := snap.Bucketize(node)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig5 bucketize: %w", err)
	}
	engine := core.NewEngine()
	var impl, neg []float64
	tasks := []func() error{
		func() error {
			var err error
			if impl, err = engine.Series(bz, maxK); err != nil {
				return fmt.Errorf("experiments: fig5 implications: %w", err)
			}
			return nil
		},
		func() error {
			var err error
			if neg, err = core.NegationSeries(bz, maxK); err != nil {
				return fmt.Errorf("experiments: fig5 negations: %w", err)
			}
			return nil
		},
	}
	if err := parallel.ForEach(cfg.Workers, len(tasks), func(i int) error { return tasks[i]() }); err != nil {
		return nil, err
	}
	res := &Fig5Result{
		Buckets:    len(bz.Buckets),
		MinEntropy: bz.MinEntropy(),
	}
	for k := 0; k <= maxK; k++ {
		res.Ks = append(res.Ks, k)
	}
	res.Implication = impl
	res.Negation = neg
	return res, nil
}

// Render writes the figure as an aligned text table (the rows behind the
// paper's plot).
func (r *Fig5Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Figure 5: max disclosure vs pieces of background knowledge\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "(%d buckets, min bucket entropy %.3f nats)\n\n", r.Buckets, r.MinEntropy); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%4s  %12s  %12s\n", "k", "implication", "negation"); err != nil {
		return err
	}
	for i, k := range r.Ks {
		if _, err := fmt.Fprintf(w, "%4d  %12.4f  %12.4f\n", k, r.Implication[i], r.Negation[i]); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits the figure's data as CSV (k,implication,negation).
func (r *Fig5Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "k,implication,negation"); err != nil {
		return err
	}
	for i, k := range r.Ks {
		if _, err := fmt.Fprintf(w, "%d,%g,%g\n", k, r.Implication[i], r.Negation[i]); err != nil {
			return err
		}
	}
	return nil
}
