package experiments

import (
	"fmt"
	"io"

	"ckprivacy/internal/anonymize"
	"ckprivacy/internal/core"
	"ckprivacy/internal/dataset/adult"
	"ckprivacy/internal/hierarchy"
	"ckprivacy/internal/lattice"
	"ckprivacy/internal/parallel"
	"ckprivacy/internal/privacy"
	"ckprivacy/internal/table"
)

// This file adds the sweep the paper's §3.4 discussion implies but never
// plots: how the cheapest safe generalization moves across a whole grid of
// (c, k) policy choices. Every cell is an independent chain search, so the
// grid parallelizes embarrassingly — it is the experiment-level counterpart
// of the level-wise parallel lattice searches.

// GridConfig parameterizes a (c,k)-safety policy sweep.
type GridConfig struct {
	// Cs are the disclosure thresholds (rows); nil means 0.5..0.9 in steps
	// of 0.1.
	Cs []float64
	// Ks are the knowledge bounds (columns); nil means DefaultFig6Ks.
	Ks []int
	// Workers bounds the goroutines sweeping grid cells; values below 1
	// mean one worker per CPU core. Cells are independent chain searches
	// sharing one disclosure engine and bucketization cache, so the result
	// is identical at every worker count.
	Workers int
	// Hierarchies and QI override the lattice the sweep runs on; nil
	// means the Adult hierarchies over the Adult quasi-identifiers.
	Hierarchies hierarchy.Set
	QI          []string
	// NoPlannedSweeps disables the sweep planner for the grid's problem:
	// every cell's chain search bucketizes its probes through the greedy
	// per-miss path instead of handing each probe round to the planner.
	// Results are byte-identical either way; the switch exists for parity
	// tests and the planned-vs-per-node grid benchmark.
	NoPlannedSweeps bool
}

// GridCell is the outcome of one (c,k) policy: the lowest safe node on the
// canonical chain, or Exists=false when even full suppression discloses too
// much.
type GridCell struct {
	C float64
	K int
	// Node is the lowest (c,k)-safe node on the canonical chain.
	Node lattice.Node
	// Exists is false when no chain node is safe.
	Exists bool
	// Height is Node's lattice height (0..MaxHeight); -1 when !Exists.
	Height int
	// Buckets counts the safe bucketization's buckets; 0 when !Exists.
	Buckets int
	// Evaluated counts predicate evaluations the cell's search performed.
	Evaluated int
}

// GridResult holds the full sweep; Cells[i][j] corresponds to (Cs[i], Ks[j]).
type GridResult struct {
	Cs    []float64
	Ks    []int
	Cells [][]GridCell
}

// DefaultGridCs are the disclosure thresholds swept by default.
var DefaultGridCs = []float64{0.5, 0.6, 0.7, 0.8, 0.9}

// RunSafetyGrid sweeps (c,k)-safety over the grid on the Adult
// quasi-identifier lattice, one chain search per cell (Theorem 14 justifies
// the chain's monotonicity). All cells share a single memoizing disclosure
// engine and one bucketization cache, so the sweep cost is dominated by the
// distinct (histogram, k) pairs actually encountered.
func RunSafetyGrid(tab *table.Table, cfg GridConfig) (*GridResult, error) {
	cs := cfg.Cs
	if len(cs) == 0 {
		cs = DefaultGridCs
	}
	ks := cfg.Ks
	if len(ks) == 0 {
		ks = DefaultFig6Ks
	}
	for _, c := range cs {
		if c < 0 || c > 1 {
			return nil, fmt.Errorf("experiments: grid threshold c = %v outside [0, 1]", c)
		}
	}
	for _, k := range ks {
		if k < 0 {
			return nil, fmt.Errorf("experiments: negative k %d", k)
		}
	}
	hs := cfg.Hierarchies
	if hs == nil {
		hs = adult.Hierarchies()
	}
	qi := cfg.QI
	if len(qi) == 0 {
		qi = adult.QuasiIdentifiers()
	}
	po := anonymize.DefaultOptions()
	po.NoPlannedSweeps = cfg.NoPlannedSweeps
	p, err := anonymize.NewProblemWithOptions(tab, hs, qi, po)
	if err != nil {
		return nil, fmt.Errorf("experiments: grid: %w", err)
	}
	// The cells' binary searches probe only O(cells + log chain) distinct
	// chain nodes between them, so the planner is handed each probe round
	// lazily through ChainSearch's batch path rather than pre-materializing
	// the whole chain — the low chain nodes are the expensive ones and the
	// searches rarely touch them.
	snap := p.Snapshot()
	engine := core.NewEngine()
	res := &GridResult{
		Cs:    append([]float64(nil), cs...),
		Ks:    append([]int(nil), ks...),
		Cells: make([][]GridCell, len(cs)),
	}
	for i := range res.Cells {
		res.Cells[i] = make([]GridCell, len(ks))
	}
	err = parallel.ForEach(cfg.Workers, len(cs)*len(ks), func(idx int) error {
		i, j := idx/len(ks), idx%len(ks)
		crit := privacy.CKSafety{C: cs[i], K: ks[j], Engine: engine}
		node, ok, stats, err := snap.ChainSearch(crit)
		if err != nil {
			return fmt.Errorf("experiments: grid at (c=%v, k=%d): %w", cs[i], ks[j], err)
		}
		cell := GridCell{C: cs[i], K: ks[j], Exists: ok, Height: -1, Evaluated: stats.Evaluated}
		if ok {
			bz, err := snap.Bucketize(node)
			if err != nil {
				return fmt.Errorf("experiments: grid at (c=%v, k=%d): %w", cs[i], ks[j], err)
			}
			cell.Node = node
			cell.Height = node.Height()
			cell.Buckets = len(bz.Buckets)
		}
		res.Cells[i][j] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render writes the grid as a table of safe-node heights ("-" marks
// policies no generalization satisfies).
func (r *GridResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "(c,k)-safety grid: height of lowest safe chain node\n\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%6s", "c\\k"); err != nil {
		return err
	}
	for _, k := range r.Ks {
		if _, err := fmt.Fprintf(w, "  %6s", fmt.Sprintf("k=%d", k)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for i, c := range r.Cs {
		if _, err := fmt.Fprintf(w, "%6.2f", c); err != nil {
			return err
		}
		for j := range r.Ks {
			cell := r.Cells[i][j]
			s := "-"
			if cell.Exists {
				s = fmt.Sprintf("%d", cell.Height)
			}
			if _, err := fmt.Fprintf(w, "  %6s", s); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits one row per cell: c, k, exists, height, buckets, node.
func (r *GridResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "c,k,exists,height,buckets,node"); err != nil {
		return err
	}
	for i := range r.Cs {
		for j := range r.Ks {
			cell := r.Cells[i][j]
			node := ""
			if cell.Exists {
				node = cell.Node.Key()
			}
			if _, err := fmt.Fprintf(w, "%g,%d,%t,%d,%d,%q\n",
				cell.C, cell.K, cell.Exists, cell.Height, cell.Buckets, node); err != nil {
				return err
			}
		}
	}
	return nil
}
