package experiments

import (
	"ckprivacy/internal/bucket"
	"ckprivacy/internal/hierarchy"
	"ckprivacy/internal/table"
)

// bucketizeEncoded runs a one-shot bucketization over a freshly encoded
// columnar view, falling back to the string path when the hierarchies do
// not compile over the table's values (so lazy per-row errors surface
// exactly as before). Sweeps that bucketize many nodes go through
// anonymize.Problem instead, which encodes once and coarsens
// incrementally.
func bucketizeEncoded(tab *table.Table, hs hierarchy.Set, levels bucket.Levels) (*bucket.Bucketization, error) {
	enc := tab.Encode()
	chs, err := bucket.CompileHierarchies(enc, hs)
	if err != nil {
		return bucket.FromGeneralization(tab, hs, levels)
	}
	return bucket.FromGeneralizationEncoded(enc, chs, levels)
}
