// Package utility implements the data-utility metrics used to rank
// minimally sanitized bucketizations (§3.4 of the paper: among all minimal
// (c,k)-safe tables, return the one maximizing a specified utility
// function).
package utility

import "ckprivacy/internal/bucket"

// Metric scores a bucketization; higher is better.
type Metric interface {
	Name() string
	Score(bz *bucket.Bucketization) float64
}

// Discernibility is the negated discernibility metric Σ_b n_b²: each tuple
// pays a penalty equal to its bucket size. Returned negated so that higher
// is better.
type Discernibility struct{}

// Name implements Metric.
func (Discernibility) Name() string { return "discernibility" }

// Score implements Metric.
func (Discernibility) Score(bz *bucket.Bucketization) float64 {
	s := 0.0
	for _, b := range bz.Buckets {
		n := float64(b.Size())
		s += n * n
	}
	return -s
}

// AvgClassSize is the negated average equivalence-class size n/|B| (the
// C_avg metric without the 1/k normalization). Higher (i.e. smaller
// classes) is better.
type AvgClassSize struct{}

// Name implements Metric.
func (AvgClassSize) Name() string { return "avg-class-size" }

// Score implements Metric.
func (AvgClassSize) Score(bz *bucket.Bucketization) float64 {
	if len(bz.Buckets) == 0 {
		return 0
	}
	return -float64(bz.Size()) / float64(len(bz.Buckets))
}

// BucketCount scores by the number of buckets: finer partitions (closer to
// the paper's B⊥) score higher.
type BucketCount struct{}

// Name implements Metric.
func (BucketCount) Name() string { return "bucket-count" }

// Score implements Metric.
func (BucketCount) Score(bz *bucket.Bucketization) float64 {
	return float64(len(bz.Buckets))
}

// Best returns the index in candidates of the highest-scoring
// bucketization, or -1 for an empty slice. Ties keep the earliest
// candidate, so deterministic candidate orderings give deterministic
// results.
func Best(m Metric, candidates []*bucket.Bucketization) int {
	best := -1
	var bestScore float64
	for i, bz := range candidates {
		s := m.Score(bz)
		if best == -1 || s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}
