package utility

import (
	"testing"

	"ckprivacy/internal/bucket"
)

func TestDiscernibility(t *testing.T) {
	fine := bucket.FromValues([]string{"a", "b"}, []string{"c", "d"})
	coarse := bucket.FromValues([]string{"a", "b", "c", "d"})
	m := Discernibility{}
	if m.Score(fine) != -(4 + 4) {
		t.Errorf("fine score = %v", m.Score(fine))
	}
	if m.Score(coarse) != -16 {
		t.Errorf("coarse score = %v", m.Score(coarse))
	}
	if m.Score(fine) <= m.Score(coarse) {
		t.Error("finer partition should score higher")
	}
	if m.Name() == "" {
		t.Error("empty name")
	}
}

func TestAvgClassSize(t *testing.T) {
	fine := bucket.FromValues([]string{"a"}, []string{"b"}, []string{"c", "d"})
	m := AvgClassSize{}
	if got := m.Score(fine); got != -4.0/3 {
		t.Errorf("score = %v", got)
	}
	if got := m.Score(&bucket.Bucketization{}); got != 0 {
		t.Errorf("empty score = %v", got)
	}
	if m.Name() == "" {
		t.Error("empty name")
	}
}

func TestBucketCount(t *testing.T) {
	bz := bucket.FromValues([]string{"a"}, []string{"b"})
	if got := (BucketCount{}).Score(bz); got != 2 {
		t.Errorf("score = %v", got)
	}
	if (BucketCount{}).Name() == "" {
		t.Error("empty name")
	}
}

func TestBest(t *testing.T) {
	a := bucket.FromValues([]string{"a", "b", "c", "d"})                     // 1 bucket
	b := bucket.FromValues([]string{"a", "b"}, []string{"c", "d"})           // 2 buckets
	c := bucket.FromValues([]string{"a"}, []string{"b"}, []string{"c", "d"}) // 3 buckets
	if got := Best(BucketCount{}, []*bucket.Bucketization{a, b, c}); got != 2 {
		t.Errorf("Best = %d, want 2", got)
	}
	if got := Best(Discernibility{}, []*bucket.Bucketization{a, c}); got != 1 {
		t.Errorf("Best = %d, want 1", got)
	}
	if got := Best(BucketCount{}, nil); got != -1 {
		t.Errorf("Best(nil) = %d", got)
	}
	// Ties keep the earliest candidate.
	if got := Best(BucketCount{}, []*bucket.Bucketization{b, b}); got != 0 {
		t.Errorf("tie Best = %d, want 0", got)
	}
}
