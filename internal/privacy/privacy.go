// Package privacy collects the privacy criteria discussed by the paper as
// uniform, monotone predicates over bucketizations: k-anonymity [29],
// distinct/entropy/recursive ℓ-diversity [24], and the paper's own
// (c,k)-safety (Definition 13).
//
// All criteria here are monotone with respect to the paper's ⪯ partial
// order (merging buckets never breaks them), which is what allows the
// lattice searches in internal/lattice to prune.
package privacy

import (
	"fmt"
	"math"

	"ckprivacy/internal/bucket"
	"ckprivacy/internal/core"
)

// Criterion is a predicate over bucketizations.
type Criterion interface {
	// Name is a short human-readable identifier, e.g. "5-anonymity".
	Name() string
	// Satisfied reports whether the bucketization meets the criterion.
	Satisfied(bz *bucket.Bucketization) (bool, error)
}

// KAnonymity requires every bucket to contain at least K tuples [29].
type KAnonymity struct {
	K int
}

// Name implements Criterion.
func (c KAnonymity) Name() string { return fmt.Sprintf("%d-anonymity", c.K) }

// Satisfied implements Criterion.
func (c KAnonymity) Satisfied(bz *bucket.Bucketization) (bool, error) {
	if c.K < 1 {
		return false, fmt.Errorf("privacy: k-anonymity needs K >= 1, got %d", c.K)
	}
	if len(bz.Buckets) == 0 {
		return false, fmt.Errorf("privacy: empty bucketization")
	}
	return bz.MinSize() >= c.K, nil
}

// DistinctLDiversity requires every bucket to contain at least L distinct
// sensitive values.
type DistinctLDiversity struct {
	L int
}

// Name implements Criterion.
func (c DistinctLDiversity) Name() string { return fmt.Sprintf("distinct %d-diversity", c.L) }

// Satisfied implements Criterion.
func (c DistinctLDiversity) Satisfied(bz *bucket.Bucketization) (bool, error) {
	if c.L < 1 {
		return false, fmt.Errorf("privacy: l-diversity needs L >= 1, got %d", c.L)
	}
	if len(bz.Buckets) == 0 {
		return false, fmt.Errorf("privacy: empty bucketization")
	}
	return bz.MinDistinct() >= c.L, nil
}

// EntropyLDiversity requires every bucket's sensitive-value entropy to be at
// least ln L [24].
type EntropyLDiversity struct {
	L int
}

// Name implements Criterion.
func (c EntropyLDiversity) Name() string { return fmt.Sprintf("entropy %d-diversity", c.L) }

// Satisfied implements Criterion.
func (c EntropyLDiversity) Satisfied(bz *bucket.Bucketization) (bool, error) {
	if c.L < 1 {
		return false, fmt.Errorf("privacy: entropy l-diversity needs L >= 1, got %d", c.L)
	}
	if len(bz.Buckets) == 0 {
		return false, fmt.Errorf("privacy: empty bucketization")
	}
	return bz.MinEntropy() >= math.Log(float64(c.L))-1e-12, nil
}

// RecursiveCLDiversity is recursive (c,ℓ)-diversity [24]: in every bucket,
// n(s⁰) < C · (n(s^{ℓ-1}) + n(s^ℓ) + …).
type RecursiveCLDiversity struct {
	C float64
	L int
}

// Name implements Criterion.
func (c RecursiveCLDiversity) Name() string {
	return fmt.Sprintf("recursive (%g,%d)-diversity", c.C, c.L)
}

// Satisfied implements Criterion.
func (c RecursiveCLDiversity) Satisfied(bz *bucket.Bucketization) (bool, error) {
	if c.L < 2 {
		return false, fmt.Errorf("privacy: recursive (c,l)-diversity needs L >= 2, got %d", c.L)
	}
	if c.C <= 0 {
		return false, fmt.Errorf("privacy: recursive (c,l)-diversity needs C > 0, got %g", c.C)
	}
	if len(bz.Buckets) == 0 {
		return false, fmt.Errorf("privacy: empty bucketization")
	}
	for _, b := range bz.Buckets {
		tail := b.Size() - b.PrefixSum(c.L-1)
		if float64(b.TopCount()) >= c.C*float64(tail) {
			return false, nil
		}
	}
	return true, nil
}

// CKSafety is the paper's Definition 13: maximum disclosure with respect to
// L^k_basic strictly below C.
type CKSafety struct {
	C float64
	K int
	// Engine optionally shares memoized DP state across checks (strongly
	// recommended for lattice searches); nil uses a private engine.
	Engine *core.Engine
}

// Name implements Criterion.
func (c CKSafety) Name() string { return fmt.Sprintf("(%g,%d)-safety", c.C, c.K) }

// Satisfied implements Criterion.
func (c CKSafety) Satisfied(bz *bucket.Bucketization) (bool, error) {
	e := c.Engine
	if e == nil {
		e = core.NewEngine()
	}
	return e.IsCKSafe(bz, c.C, c.K)
}

// NegationCKSafety is the ℓ-diversity-style analogue of CKSafety: maximum
// disclosure with respect to k negated atoms strictly below C. The paper's
// Figure 5 compares this weaker guarantee with full (c,k)-safety.
type NegationCKSafety struct {
	C float64
	K int
}

// Name implements Criterion.
func (c NegationCKSafety) Name() string { return fmt.Sprintf("negation (%g,%d)-safety", c.C, c.K) }

// Satisfied implements Criterion.
func (c NegationCKSafety) Satisfied(bz *bucket.Bucketization) (bool, error) {
	if c.C < 0 || c.C > 1 {
		return false, fmt.Errorf("privacy: threshold c = %v outside [0, 1]", c.C)
	}
	d, err := core.NegationMaxDisclosure(bz, c.K)
	if err != nil {
		return false, err
	}
	return d < c.C, nil
}
