package privacy

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"ckprivacy/internal/bucket"
	"ckprivacy/internal/core"
)

func fig3() *bucket.Bucketization {
	return bucket.FromValues(
		[]string{"flu", "flu", "lung", "lung", "mumps"},
		[]string{"flu", "flu", "breast", "ovarian", "heart"},
	)
}

func TestKAnonymity(t *testing.T) {
	bz := fig3()
	cases := []struct {
		k    int
		want bool
	}{{1, true}, {5, true}, {6, false}}
	for _, c := range cases {
		got, err := KAnonymity{K: c.k}.Satisfied(bz)
		if err != nil || got != c.want {
			t.Errorf("K=%d: %v, %v; want %v", c.k, got, err, c.want)
		}
	}
	if _, err := (KAnonymity{K: 0}).Satisfied(bz); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := (KAnonymity{K: 2}).Satisfied(&bucket.Bucketization{}); err == nil {
		t.Error("empty bucketization accepted")
	}
	if !strings.Contains((KAnonymity{K: 5}).Name(), "5") {
		t.Error("Name missing parameter")
	}
}

func TestDistinctLDiversity(t *testing.T) {
	bz := fig3() // min distinct = 3 (male bucket)
	cases := []struct {
		l    int
		want bool
	}{{1, true}, {3, true}, {4, false}}
	for _, c := range cases {
		got, err := DistinctLDiversity{L: c.l}.Satisfied(bz)
		if err != nil || got != c.want {
			t.Errorf("L=%d: %v, %v; want %v", c.l, got, err, c.want)
		}
	}
	if _, err := (DistinctLDiversity{L: 0}).Satisfied(bz); err == nil {
		t.Error("L=0 accepted")
	}
	if _, err := (DistinctLDiversity{L: 1}).Satisfied(&bucket.Bucketization{}); err == nil {
		t.Error("empty bucketization accepted")
	}
}

func TestEntropyLDiversity(t *testing.T) {
	uniform := bucket.FromValues([]string{"a", "b", "c", "d"})
	got, err := EntropyLDiversity{L: 4}.Satisfied(uniform)
	if err != nil || !got {
		t.Errorf("uniform 4 values should be entropy 4-diverse: %v, %v", got, err)
	}
	got, err = EntropyLDiversity{L: 5}.Satisfied(uniform)
	if err != nil || got {
		t.Errorf("uniform 4 values is not entropy 5-diverse: %v, %v", got, err)
	}
	skewed := bucket.FromValues([]string{"a", "a", "a", "b"})
	got, err = EntropyLDiversity{L: 2}.Satisfied(skewed)
	if err != nil || got {
		t.Errorf("skewed bucket (entropy < ln 2): %v, %v", got, err)
	}
	if _, err := (EntropyLDiversity{L: 0}).Satisfied(uniform); err == nil {
		t.Error("L=0 accepted")
	}
	if _, err := (EntropyLDiversity{L: 2}).Satisfied(&bucket.Bucketization{}); err == nil {
		t.Error("empty bucketization accepted")
	}
}

func TestRecursiveCLDiversity(t *testing.T) {
	// Bucket {a:3, b:2, c:1}: recursive (c,2)-diversity requires
	// 3 < C·(2+1); true for C=2 (3<6), false for C=1 (3<3 fails).
	bz := bucket.FromValues([]string{"a", "a", "a", "b", "b", "c"})
	got, err := RecursiveCLDiversity{C: 2, L: 2}.Satisfied(bz)
	if err != nil || !got {
		t.Errorf("(2,2): %v, %v; want true", got, err)
	}
	got, err = RecursiveCLDiversity{C: 1, L: 2}.Satisfied(bz)
	if err != nil || got {
		t.Errorf("(1,2): %v, %v; want false", got, err)
	}
	// (c,3): 3 < C·1.
	got, err = RecursiveCLDiversity{C: 4, L: 3}.Satisfied(bz)
	if err != nil || !got {
		t.Errorf("(4,3): %v, %v; want true", got, err)
	}
	if _, err := (RecursiveCLDiversity{C: 1, L: 1}).Satisfied(bz); err == nil {
		t.Error("L=1 accepted")
	}
	if _, err := (RecursiveCLDiversity{C: 0, L: 2}).Satisfied(bz); err == nil {
		t.Error("C=0 accepted")
	}
	if _, err := (RecursiveCLDiversity{C: 1, L: 2}).Satisfied(&bucket.Bucketization{}); err == nil {
		t.Error("empty bucketization accepted")
	}
}

func TestCKSafety(t *testing.T) {
	bz := fig3() // max disclosure at k=1 is 2/3
	shared := core.NewEngine()
	got, err := CKSafety{C: 0.7, K: 1, Engine: shared}.Satisfied(bz)
	if err != nil || !got {
		t.Errorf("(0.7,1): %v, %v; want true", got, err)
	}
	got, err = CKSafety{C: 0.5, K: 1}.Satisfied(bz) // nil engine path
	if err != nil || got {
		t.Errorf("(0.5,1): %v, %v; want false", got, err)
	}
	if name := (CKSafety{C: 0.7, K: 1}).Name(); !strings.Contains(name, "0.7") || !strings.Contains(name, "1") {
		t.Errorf("Name = %q", name)
	}
	if _, err := (CKSafety{C: 2, K: 1}).Satisfied(bz); err == nil {
		t.Error("C=2 accepted")
	}
}

func TestNegationCKSafety(t *testing.T) {
	bz := fig3() // negation max at k=1 is 2/3
	got, err := NegationCKSafety{C: 0.7, K: 1}.Satisfied(bz)
	if err != nil || !got {
		t.Errorf("(0.7,1): %v, %v; want true", got, err)
	}
	got, err = NegationCKSafety{C: 0.6, K: 1}.Satisfied(bz)
	if err != nil || got {
		t.Errorf("(0.6,1): %v, %v; want false", got, err)
	}
	if _, err := (NegationCKSafety{C: -1, K: 1}).Satisfied(bz); err == nil {
		t.Error("C=-1 accepted")
	}
}

// TestCKImpliesNegationSafety: (c,k)-safety defends against a richer
// language, so it implies negation (c,k)-safety (paper §6: ℓ-diversity-type
// guarantees are weaker).
func TestCKImpliesNegationSafety(t *testing.T) {
	e := core.NewEngine()
	f := func(raw []uint8, kRaw, cRaw uint8) bool {
		if len(raw) < 2 {
			return true
		}
		var g1, g2 []string
		for i, r := range raw {
			v := string(rune('a' + r%4))
			if i%2 == 0 {
				g1 = append(g1, v)
			} else {
				g2 = append(g2, v)
			}
		}
		if len(g1) == 0 || len(g2) == 0 {
			return true
		}
		bz := bucket.FromValues(g1, g2)
		k := int(kRaw) % 4
		c := float64(cRaw%10)/10 + 0.05
		implMax, err0 := core.MaxDisclosure(bz, k)
		negMax, err3 := core.NegationMaxDisclosure(bz, k)
		if err0 != nil || err3 != nil {
			return false
		}
		// Thresholds within float round-off of either maximum make the
		// strict comparison ill-conditioned (see IsCKSafe docs); skip.
		if math.Abs(implMax-c) < 1e-9 || math.Abs(negMax-c) < 1e-9 {
			return true
		}
		ck, err1 := CKSafety{C: c, K: k, Engine: e}.Satisfied(bz)
		neg, err2 := NegationCKSafety{C: c, K: k}.Satisfied(bz)
		if err1 != nil || err2 != nil {
			return false
		}
		return !ck || neg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestAllCriteriaMonotone property-checks the merge-monotonicity every
// lattice search depends on, across all criteria.
func TestAllCriteriaMonotone(t *testing.T) {
	e := core.NewEngine()
	criteria := []Criterion{
		KAnonymity{K: 2},
		DistinctLDiversity{L: 2},
		EntropyLDiversity{L: 2},
		RecursiveCLDiversity{C: 1.5, L: 2},
		CKSafety{C: 0.8, K: 1, Engine: e},
		CKSafety{C: 0.6, K: 2, Engine: e},
		NegationCKSafety{C: 0.8, K: 1},
	}
	f := func(raw []uint8) bool {
		if len(raw) < 3 {
			return true
		}
		var g1, g2, g3 []string
		for i, r := range raw {
			v := string(rune('a' + r%3))
			switch i % 3 {
			case 0:
				g1 = append(g1, v)
			case 1:
				g2 = append(g2, v)
			default:
				g3 = append(g3, v)
			}
		}
		if len(g1) == 0 || len(g2) == 0 || len(g3) == 0 {
			return true
		}
		bz := bucket.FromValues(g1, g2, g3)
		merged, err := bz.Merge(0, 1)
		if err != nil {
			return false
		}
		for _, crit := range criteria {
			fine, err1 := crit.Satisfied(bz)
			coarse, err2 := crit.Satisfied(merged)
			if err1 != nil || err2 != nil {
				return false
			}
			if fine && !coarse {
				t.Logf("%s broken by merge: %v + %v", crit.Name(), g1, g2)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
