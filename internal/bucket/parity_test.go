package bucket

import (
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"ckprivacy/internal/hierarchy"
	"ckprivacy/internal/table"
)

// This file is the randomized parity harness for the encoded path: random
// tables, random hierarchies, random level vectors — the encoded scan and
// the incremental coarsening derivation must be byte-identical to the
// string-path reference (same bucket keys, same tuple sets and orders,
// same histograms).

// randNested builds a random levelled hierarchy over domain with 1–3
// levels above identity, nested by construction (each level coarsens the
// previous level's groups, the top level possibly short of "*").
func randNested(rng *rand.Rand, name string, domain []string) hierarchy.Hierarchy {
	nLevels := 1 + rng.Intn(3)
	maps := make([]map[string]string, 0, nLevels)
	cur := make(map[string]string, len(domain)) // value -> current-level label
	for _, v := range domain {
		cur[v] = v
	}
	for l := 0; l < nLevels; l++ {
		labels := make(map[string]string) // current label -> next label
		next := make(map[string]string, len(domain))
		for _, v := range domain {
			lbl, ok := labels[cur[v]]
			if !ok {
				lbl = fmt.Sprintf("L%d.g%d", l, rng.Intn(2+len(domain)/2))
				labels[cur[v]] = lbl
			}
			next[v] = lbl
		}
		maps = append(maps, next)
		cur = next
	}
	return hierarchy.MustLevelled(name, domain, maps)
}

// randCase draws one random table + hierarchy set.
func randCase(rng *rand.Rand) (*table.Table, hierarchy.Set) {
	nQI := 1 + rng.Intn(4)
	attrs := make([]table.Attribute, 0, nQI+1)
	hs := hierarchy.Set{}
	intervalWidths := [][]int{{1, 2, 4, 0}, {1, 5, 25}, {1, 3, 9, 0}, {1, 10, 0}}
	for i := 0; i < nQI; i++ {
		name := fmt.Sprintf("q%d", i)
		if rng.Intn(2) == 0 {
			attrs = append(attrs, table.Attribute{Name: name, Kind: table.Numeric, Min: 0, Max: 99})
			hs[name] = hierarchy.MustInterval(name, intervalWidths[rng.Intn(len(intervalWidths))])
		} else {
			d := 2 + rng.Intn(7)
			domain := make([]string, d)
			for j := range domain {
				domain[j] = fmt.Sprintf("c%d", j)
			}
			attrs = append(attrs, table.Attribute{Name: name, Kind: table.Categorical, Domain: domain})
			hs[name] = randNested(rng, name, domain)
		}
	}
	sd := 2 + rng.Intn(5)
	sdom := make([]string, sd)
	for j := range sdom {
		sdom[j] = fmt.Sprintf("s%d", j)
	}
	attrs = append(attrs, table.Attribute{Name: "sens", Kind: table.Categorical, Domain: sdom})
	s, err := table.NewSchema(attrs, "sens")
	if err != nil {
		panic(err)
	}
	tab := table.New(s)
	rows := 1 + rng.Intn(120)
	for r := 0; r < rows; r++ {
		row := make(table.Row, len(attrs))
		for c, a := range attrs {
			if a.Kind == table.Numeric {
				row[c] = strconv.Itoa(rng.Intn(100))
			} else {
				row[c] = a.Domain[rng.Intn(len(a.Domain))]
			}
		}
		tab.MustAppend(row)
	}
	return tab, hs
}

// randLevels draws a random level per hierarchy, bounded component-wise
// by max when max is non-nil.
func randLevels(rng *rand.Rand, hs hierarchy.Set, max Levels) Levels {
	levels := Levels{}
	for name, h := range hs {
		hi := h.Levels()
		if max != nil {
			hi = max[name] + 1
		}
		levels[name] = rng.Intn(hi)
	}
	return levels
}

// requireIdentical asserts full byte-identity of two bucketizations.
func requireIdentical(t *testing.T, want, got *Bucketization, label string) {
	t.Helper()
	if len(want.Buckets) != len(got.Buckets) {
		t.Fatalf("%s: %d buckets, want %d", label, len(got.Buckets), len(want.Buckets))
	}
	for i := range want.Buckets {
		w, g := want.Buckets[i], got.Buckets[i]
		if w.Key != g.Key {
			t.Fatalf("%s: bucket %d key %q, want %q", label, i, g.Key, w.Key)
		}
		if !reflect.DeepEqual(w.Tuples, g.Tuples) {
			t.Fatalf("%s: bucket %d tuples %v, want %v", label, i, g.Tuples, w.Tuples)
		}
		if !reflect.DeepEqual(w.Freq(), g.Freq()) {
			t.Fatalf("%s: bucket %d freq %v, want %v", label, i, g.Freq(), w.Freq())
		}
		if !reflect.DeepEqual(w.Histogram(), g.Histogram()) {
			t.Fatalf("%s: bucket %d histogram %v, want %v", label, i, g.Histogram(), w.Histogram())
		}
		if w.Signature() != g.Signature() {
			t.Fatalf("%s: bucket %d signature %q, want %q", label, i, g.Signature(), w.Signature())
		}
	}
}

// TestEncodedParityRandom is the randomized property test: on random
// tables, hierarchies and level vectors, the encoded scan and the
// coarsening derivation are byte-identical to the string path.
func TestEncodedParityRandom(t *testing.T) {
	cases := 200
	if testing.Short() {
		cases = 40
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < cases; i++ {
		tab, hs := randCase(rng)
		enc := tab.Encode()
		chs, err := CompileHierarchies(enc, hs)
		if err != nil {
			t.Fatalf("case %d: compile: %v", i, err)
		}
		levels := randLevels(rng, hs, nil)
		want, err := FromGeneralization(tab, hs, levels)
		if err != nil {
			t.Fatalf("case %d: legacy: %v", i, err)
		}
		got, err := FromGeneralizationEncoded(enc, chs, levels)
		if err != nil {
			t.Fatalf("case %d: encoded: %v", i, err)
		}
		requireIdentical(t, want, got, fmt.Sprintf("case %d levels %v", i, levels))

		// Coarsening from any finer vector must land on the same result.
		fineLevels := randLevels(rng, hs, levels)
		fine, err := FromGeneralizationEncoded(enc, chs, fineLevels)
		if err != nil {
			t.Fatalf("case %d: fine: %v", i, err)
		}
		coarse, err := Coarsen(fine, enc, chs, levels)
		if err != nil {
			t.Fatalf("case %d: coarsen: %v", i, err)
		}
		requireIdentical(t, want, coarse,
			fmt.Sprintf("case %d coarsen %v -> %v", i, fineLevels, levels))
	}
}

// TestEncodedParityPaperExample pins the worked example through both key
// paths.
func TestEncodedParityPaperExample(t *testing.T) {
	tab := paperTable(t)
	hs := paperHierarchies()
	enc := tab.Encode()
	chs, err := CompileHierarchies(enc, hs)
	if err != nil {
		t.Fatal(err)
	}
	for _, levels := range []Levels{
		{},
		{"Zip": 1, "Age": 1},
		{"Zip": 1, "Age": 1, "Sex": 1},
		{"Zip": 2, "Age": 2, "Sex": 1},
	} {
		want, err := FromGeneralization(tab, hs, levels)
		if err != nil {
			t.Fatal(err)
		}
		got, err := FromGeneralizationEncoded(enc, chs, levels)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, want, got, fmt.Sprintf("levels %v", levels))
	}
}

// fallbackCase builds the fixture that forces the byte-tuple key fallback:
// 300 distinct values in each of 8 numeric QI columns, so the generalized
// cardinality product at level 0 (300^8 ≈ 6.6e19) overflows 64 bits and
// the builder cannot take the packed-key path.
func fallbackCase(t *testing.T) (*table.Table, hierarchy.Set) {
	t.Helper()
	const nQI = 8
	attrs := make([]table.Attribute, 0, nQI+1)
	hs := hierarchy.Set{}
	for i := 0; i < nQI; i++ {
		name := fmt.Sprintf("q%d", i)
		attrs = append(attrs, table.Attribute{Name: name, Kind: table.Numeric, Min: 0, Max: 1 << 20})
		hs[name] = hierarchy.MustInterval(name, []int{1, 2, 0})
	}
	attrs = append(attrs, table.Attribute{Name: "sens", Kind: table.Categorical, Domain: []string{"a", "b"}})
	s, err := table.NewSchema(attrs, "sens")
	if err != nil {
		t.Fatal(err)
	}
	tab := table.New(s)
	rng := rand.New(rand.NewSource(11))
	for r := 0; r < 300; r++ {
		row := make(table.Row, nQI+1)
		for c := 0; c < nQI; c++ {
			row[c] = strconv.Itoa(r*7 + c) // all distinct per column
		}
		row[nQI] = []string{"a", "b"}[rng.Intn(2)]
		tab.MustAppend(row)
	}
	return tab, hs
}

// TestEncodedFallbackKeyPath forces the byte-tuple fallback (the
// cardinality product overflows 64 bits) and checks it still groups
// byte-identically.
func TestEncodedFallbackKeyPath(t *testing.T) {
	tab, hs := fallbackCase(t)
	enc := tab.Encode()
	chs, err := CompileHierarchies(enc, hs)
	if err != nil {
		t.Fatal(err)
	}
	dims, err := buildDims(enc, chs, Levels{})
	if err != nil {
		t.Fatal(err)
	}
	if packable(dims) {
		t.Fatal("fixture unexpectedly packable; fallback path not exercised")
	}
	for _, levels := range []Levels{{}, {"q0": 1, "q3": 1}, {"q0": 2, "q1": 2, "q2": 2}} {
		want, err := FromGeneralization(tab, hs, levels)
		if err != nil {
			t.Fatal(err)
		}
		got, err := FromGeneralizationEncoded(enc, chs, levels)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, want, got, fmt.Sprintf("fallback levels %v", levels))
		fine, err := FromGeneralizationEncoded(enc, chs, Levels{})
		if err != nil {
			t.Fatal(err)
		}
		coarse, err := Coarsen(fine, enc, chs, levels)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, want, coarse, fmt.Sprintf("fallback coarsen %v", levels))
	}
}

// TestEncodedSparseSensitiveParity drives the sparse-histogram path (a
// near-unique sensitive column, cardinality above maxDenseSensitive):
// per-group histograms must not allocate O(buckets × cardinality) dense
// slices, and the result stays byte-identical to the string path, for
// the direct scan and for coarsening.
func TestEncodedSparseSensitiveParity(t *testing.T) {
	const rows = 400
	sdom := make([]string, rows)
	for i := range sdom {
		sdom[i] = fmt.Sprintf("s%03d", i)
	}
	s, err := table.NewSchema([]table.Attribute{
		{Name: "Age", Kind: table.Numeric, Min: 0, Max: 99},
		{Name: "Sex", Kind: table.Categorical, Domain: []string{"M", "F"}},
		{Name: "sens", Kind: table.Categorical, Domain: sdom},
	}, "sens")
	if err != nil {
		t.Fatal(err)
	}
	hs := hierarchy.Set{
		"Age": hierarchy.MustInterval("Age", []int{1, 10, 0}),
		"Sex": hierarchy.NewSuppression("Sex", []string{"M", "F"}),
	}
	tab := table.New(s)
	rng := rand.New(rand.NewSource(3))
	for r := 0; r < rows; r++ {
		tab.MustAppend(table.Row{
			strconv.Itoa(rng.Intn(100)),
			[]string{"M", "F"}[rng.Intn(2)],
			sdom[r], // every sensitive value unique
		})
	}
	enc := tab.Encode()
	if enc.SensitiveDict().Len() <= maxDenseSensitive {
		t.Fatalf("fixture cardinality %d does not exceed the dense threshold %d",
			enc.SensitiveDict().Len(), maxDenseSensitive)
	}
	chs, err := CompileHierarchies(enc, hs)
	if err != nil {
		t.Fatal(err)
	}
	for _, levels := range []Levels{{}, {"Age": 1}, {"Age": 2, "Sex": 1}} {
		want, err := FromGeneralization(tab, hs, levels)
		if err != nil {
			t.Fatal(err)
		}
		got, err := FromGeneralizationEncoded(enc, chs, levels)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, want, got, fmt.Sprintf("sparse levels %v", levels))
		fine, err := FromGeneralizationEncoded(enc, chs, Levels{})
		if err != nil {
			t.Fatal(err)
		}
		coarse, err := Coarsen(fine, enc, chs, levels)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, want, coarse, fmt.Sprintf("sparse coarsen %v", levels))
	}
}

// TestHistogramCachedAndCountsDropped pins the perf fix: Histogram
// returns the one slice computed at construction, and Count answers from
// the freq slice after the counts map is dropped.
func TestHistogramCachedAndCountsDropped(t *testing.T) {
	bz := FromValues([]string{"a", "a", "b"}, []string{"c"})
	b := bz.Buckets[0]
	h1, h2 := b.Histogram(), b.Histogram()
	if &h1[0] != &h2[0] {
		t.Fatal("Histogram allocates a fresh slice per call")
	}
	if got := b.Count("a"); got != 2 {
		t.Fatalf("Count(a) = %d, want 2", got)
	}
	if got := b.Count("b"); got != 1 {
		t.Fatalf("Count(b) = %d, want 1", got)
	}
	if got := b.Count("zzz"); got != 0 {
		t.Fatalf("Count(zzz) = %d, want 0", got)
	}
}

// TestLevelsValidation pins the bugfix: typo'd attribute names and
// out-of-range levels are errors naming the offending attribute, on both
// paths, instead of being silently defaulted.
func TestLevelsValidation(t *testing.T) {
	tab := paperTable(t)
	hs := paperHierarchies()
	enc := tab.Encode()
	chs, err := CompileHierarchies(enc, hs)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		levels Levels
		frag   string
	}{
		{"unknown attribute", Levels{"Zap": 1}, `"Zap"`},
		{"unknown attribute at level 0", Levels{"Zap": 0}, `"Zap"`},
		{"sensitive attribute", Levels{"Disease": 1}, `"Disease"`},
		{"negative level", Levels{"Zip": -1}, `"Zip"`},
		{"level out of range", Levels{"Age": 5}, `"Age"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, errLegacy := FromGeneralization(tab, hs, tc.levels)
			_, errEncoded := FromGeneralizationEncoded(enc, chs, tc.levels)
			for path, err := range map[string]error{"legacy": errLegacy, "encoded": errEncoded} {
				if err == nil {
					t.Fatalf("%s path accepted levels %v", path, tc.levels)
				}
				if !strings.Contains(err.Error(), tc.frag) {
					t.Fatalf("%s path error %q does not name %s", path, err, tc.frag)
				}
			}
		})
	}
}
