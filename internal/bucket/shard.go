package bucket

import (
	"sync"

	"ckprivacy/internal/hierarchy"
	"ckprivacy/internal/parallel"
	"ckprivacy/internal/table"
)

// This file is the row-sharded path of bucketization: the encoded table's
// code columns are split into P contiguous row ranges, each range is
// grouped independently (on its own core when the pool can lend one), and
// the per-shard partial groups are merged key-by-key. Because shards are
// contiguous and processed in ascending order, concatenating a key's
// per-shard tuple runs reproduces the exact row-scan tuple order, each
// key's representative row is the globally lowest, and dense sensitive
// histograms sum exactly — so the merged result is byte-identical to the
// single-threaded scan (the randomized parity tests in shard_test.go pin
// this at several shard counts, on both key paths). This is what turns
// bucketize from parallel-across-lattice-nodes into parallel-within-a-
// node, the axis that matters once a single table has millions of rows.

// scratch is one shard's reusable scan state: the grouping maps (cleared,
// not reallocated, between scans — map bucket growth is the dominant
// allocation of a scan), the byte-tuple key buffer, and a free list of
// dense sensitive histograms recycled from merged duplicate groups.
type scratch struct {
	by64  map[uint64]*egroup
	byStr map[string]*egroup
	buf   []byte
	free  [][]int32
}

var scratchPool = sync.Pool{New: func() any { return &scratch{} }}

// getScratch returns a scratch with empty (but capacity-retaining) maps.
//
//ckvet:ignore poolleak ownership transfers to the caller: scanRange pairs every getScratch with a deferred scratchPool.Put
func getScratch() *scratch {
	sc := scratchPool.Get().(*scratch)
	if sc.by64 == nil {
		sc.by64 = make(map[uint64]*egroup)
	} else {
		clear(sc.by64)
	}
	if sc.byStr == nil {
		sc.byStr = make(map[string]*egroup)
	} else {
		clear(sc.byStr)
	}
	return sc
}

// newEgroup allocates a group like the package-level newEgroup, drawing
// dense histograms from the scratch's free list when one fits.
func (sc *scratch) newEgroup(rep, scard int) *egroup {
	if scard <= maxDenseSensitive {
		for n := len(sc.free); n > 0; n = len(sc.free) {
			s := sc.free[n-1]
			sc.free = sc.free[:n-1]
			if cap(s) >= scard {
				s = s[:scard]
				clear(s)
				return &egroup{rep: rep, scounts: s}
			}
		}
	}
	return newEgroup(rep, scard)
}

// releaseScounts returns merged-away dense histograms to the scratch pool
// for the next scan to reuse.
func releaseScounts(freed [][]int32) {
	if len(freed) == 0 {
		return
	}
	sc := scratchPool.Get().(*scratch)
	sc.free = append(sc.free, freed...)
	scratchPool.Put(sc)
}

// shardScan is one shard's grouping result: the groups in first-seen
// (row-scan) order plus, aligned index-for-index, the integer or
// byte-tuple key each group was bucketed under — what the merge phase
// matches groups across shards by.
type shardScan struct {
	groups []*egroup
	keys64 []uint64
	keysS  []string
}

// scanRange groups rows [lo, hi) of the encoded view. Exactly one key
// path is used, chosen by the caller for all shards at once (packable is
// a property of the dimensions, not of the rows).
func scanRange(dims []dim, sens []uint32, scard int, packed bool, lo, hi int) shardScan {
	sc := getScratch()
	defer scratchPool.Put(sc)
	var res shardScan
	if packed {
		by := sc.by64
		for row := lo; row < hi; row++ {
			key := packKey(dims, row)
			g := by[key]
			if g == nil {
				g = sc.newEgroup(row, scard)
				by[key] = g
				res.groups = append(res.groups, g)
				res.keys64 = append(res.keys64, key)
			}
			g.addRow(row, sens)
		}
		return res
	}
	if cap(sc.buf) < 4*len(dims) {
		sc.buf = make([]byte, 4*len(dims))
	}
	buf := sc.buf[:4*len(dims)]
	by := sc.byStr
	for row := lo; row < hi; row++ {
		appendTupleKey(dims, row, buf)
		g := by[string(buf)]
		if g == nil {
			g = sc.newEgroup(row, scard)
			by[string(buf)] = g
			res.groups = append(res.groups, g)
			res.keysS = append(res.keysS, string(buf))
		}
		g.addRow(row, sens)
	}
	return res
}

// mergeShards folds the per-shard partial groups into one global group
// set. Shards are processed in ascending row order, so a key's tuples
// concatenate into exact row-scan order and the first shard holding a key
// contributes the globally lowest representative row. Dense histograms
// sum slice-to-slice (every shard allocated them over the same sensitive
// code space); sparse ones merge map-to-map. Histograms of merged-away
// duplicates are recycled.
func mergeShards(parts []shardScan, packed bool) []*egroup {
	if len(parts) == 1 {
		return parts[0].groups
	}
	var (
		groups []*egroup
		freed  [][]int32
	)
	fold := func(dst, g *egroup) {
		dst.tuples = append(dst.tuples, g.tuples...)
		if dst.scounts != nil {
			for v, n := range g.scounts {
				dst.scounts[v] += n
			}
			freed = append(freed, g.scounts)
			return
		}
		for v, n := range g.sparse {
			dst.sparse[v] += n
		}
	}
	if packed {
		by := make(map[uint64]*egroup)
		for _, part := range parts {
			for gi, g := range part.groups {
				key := part.keys64[gi]
				if dst := by[key]; dst != nil {
					fold(dst, g)
					continue
				}
				by[key] = g
				groups = append(groups, g)
			}
		}
	} else {
		by := make(map[string]*egroup)
		for _, part := range parts {
			for gi, g := range part.groups {
				key := part.keysS[gi]
				if dst := by[key]; dst != nil {
					fold(dst, g)
					continue
				}
				by[key] = g
				groups = append(groups, g)
			}
		}
	}
	releaseScounts(freed)
	return groups
}

// FromGeneralizationEncodedSharded is FromGeneralizationEncoded with the
// row scan split into `shards` contiguous ranges, scanned concurrently on
// the pool (each shard on its own core when the pool can lend one; a nil
// or saturated pool scans shards on the calling goroutine) and merged.
// The result is byte-identical to the single-threaded scan — keys, bucket
// order, tuple order, histograms — at every shard count and on both key
// paths; shards <= 1 is exactly the single-threaded scan. The returned
// buckets carry their dense code-space histograms like the single scan's,
// so Coarsen and AppendRows compose with sharded-built bucketizations
// unchanged.
func FromGeneralizationEncodedSharded(enc *table.Encoded, chs hierarchy.CompiledSet, levels Levels, shards int, pool *parallel.Pool) (*Bucketization, error) {
	dims, err := buildDims(enc, chs, levels)
	if err != nil {
		return nil, err
	}
	rows := enc.Rows()
	if shards < 1 {
		shards = 1
	}
	if shards > rows {
		shards = rows
	}
	if shards == 0 {
		shards = 1 // empty table: one (empty) scan keeps the shape uniform
	}
	sens := enc.SensitiveCol()
	scard := enc.SensitiveDict().Len()
	packed := packable(dims)
	parts := make([]shardScan, shards)
	err = pool.ForEach(shards, func(i int) error {
		lo, hi := rows*i/shards, rows*(i+1)/shards
		parts[i] = scanRange(dims, sens, scard, packed, lo, hi)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return finishGroups(enc, dims, mergeShards(parts, packed)), nil
}
