package bucket

import (
	"fmt"
	"math/rand"
	"testing"

	"ckprivacy/internal/hierarchy"
	"ckprivacy/internal/table"
)

// Coarsen skips its final key sort when the fine→coarse re-key map is
// monotone — the group keys already ascend in discovery order, which is
// the fine bucketization's sorted key order. These tests pin parity
// through both branches: a monotone re-key must take the skip and stay
// byte-identical, an order-reversing re-key must take the sort.

// discoveryKeys replays CoarsenInto's pass-1 group discovery: the
// coarse keys in order of each group's first fine bucket.
func discoveryKeys(t *testing.T, fine *Bucketization, enc *table.Encoded, chs hierarchy.CompiledSet, levels Levels) []string {
	t.Helper()
	dims, err := buildDims(enc, chs, levels)
	if err != nil {
		t.Fatalf("discoveryKeys: %v", err)
	}
	parts := make([]string, len(dims))
	seen := map[string]bool{}
	var keys []string
	for _, b := range fine.Buckets {
		k := keyString(dims, b.Tuples[0], parts)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

// TestCoarsenSortSkipMonotone drives the skip branch: an identity
// coarsen (same levels) re-keys every fine bucket to itself, so the
// discovery order is already sorted and the result must equal the fine
// bucketization byte for byte.
func TestCoarsenSortSkipMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20; i++ {
		tab, hs := randCase(rng)
		enc := tab.Encode()
		chs, err := CompileHierarchies(enc, hs)
		if err != nil {
			t.Fatalf("case %d: compile: %v", i, err)
		}
		levels := randLevels(rng, hs, nil)
		fine, err := FromGeneralizationEncoded(enc, chs, levels)
		if err != nil {
			t.Fatalf("case %d: fine: %v", i, err)
		}
		if keys := discoveryKeys(t, fine, enc, chs, levels); !keysAreSorted(keys) {
			t.Fatalf("case %d: identity re-key is not monotone: %v", i, keys)
		}
		got, err := Coarsen(fine, enc, chs, levels)
		if err != nil {
			t.Fatalf("case %d: coarsen: %v", i, err)
		}
		requireIdentical(t, fine, got, fmt.Sprintf("case %d identity %v", i, levels))
	}
}

// TestCoarsenSortSkipReversed drives the sort branch: a level-1 map
// that reverses the alphabet makes the fine keys ascend (a, b, c, d)
// while their coarse keys descend (z, y, x, w), so the skip must not
// fire and the sort must restore canonical order.
func TestCoarsenSortSkipReversed(t *testing.T) {
	domain := []string{"a", "b", "c", "d"}
	h := hierarchy.MustLevelled("q0", domain, []map[string]string{
		{"a": "z", "b": "y", "c": "x", "d": "w"},
		{"a": "*", "b": "*", "c": "*", "d": "*"},
	})
	s, err := table.NewSchema([]table.Attribute{
		{Name: "q0", Kind: table.Categorical, Domain: domain},
		{Name: "sens", Kind: table.Categorical, Domain: []string{"s0", "s1"}},
	}, "sens")
	if err != nil {
		t.Fatal(err)
	}
	tab := table.New(s)
	rng := rand.New(rand.NewSource(3))
	for r := 0; r < 40; r++ {
		tab.MustAppend(table.Row{
			domain[rng.Intn(len(domain))],
			[]string{"s0", "s1"}[rng.Intn(2)],
		})
	}
	enc := tab.Encode()
	hs := hierarchy.Set{"q0": h}
	chs, err := CompileHierarchies(enc, hs)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := FromGeneralizationEncoded(enc, chs, Levels{"q0": 0})
	if err != nil {
		t.Fatal(err)
	}
	coarse := Levels{"q0": 1}
	if keys := discoveryKeys(t, fine, enc, chs, coarse); keysAreSorted(keys) {
		t.Fatalf("reversing re-key came out monotone (%v); the case no longer exercises the sort branch", keys)
	}
	want, err := FromGeneralizationEncoded(enc, chs, coarse)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Coarsen(fine, enc, chs, coarse)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, want, got, "reversed re-key")
}

// TestCoarsenSortSkipRandomBothBranches sweeps random coarsens, checks
// parity on every one, and requires the corpus to hit both branches —
// so neither path can silently lose its coverage to a corpus shift.
func TestCoarsenSortSkipRandomBothBranches(t *testing.T) {
	cases := 120
	if testing.Short() {
		cases = 40
	}
	rng := rand.New(rand.NewSource(17))
	sorted, unsorted := 0, 0
	for i := 0; i < cases; i++ {
		tab, hs := randCase(rng)
		enc := tab.Encode()
		chs, err := CompileHierarchies(enc, hs)
		if err != nil {
			t.Fatalf("case %d: compile: %v", i, err)
		}
		levels := randLevels(rng, hs, nil)
		fineLevels := randLevels(rng, hs, levels)
		fine, err := FromGeneralizationEncoded(enc, chs, fineLevels)
		if err != nil {
			t.Fatalf("case %d: fine: %v", i, err)
		}
		if keysAreSorted(discoveryKeys(t, fine, enc, chs, levels)) {
			sorted++
		} else {
			unsorted++
		}
		want, err := FromGeneralizationEncoded(enc, chs, levels)
		if err != nil {
			t.Fatalf("case %d: want: %v", i, err)
		}
		got, err := Coarsen(fine, enc, chs, levels)
		if err != nil {
			t.Fatalf("case %d: coarsen: %v", i, err)
		}
		requireIdentical(t, want, got,
			fmt.Sprintf("case %d coarsen %v -> %v", i, fineLevels, levels))
	}
	if sorted == 0 || unsorted == 0 {
		t.Fatalf("corpus covered only one branch in %d cases: %d monotone (skip), %d unsorted (sort)",
			cases, sorted, unsorted)
	}
}
