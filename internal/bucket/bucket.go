// Package bucket implements bucketization, the sanitization method the paper
// analyzes (equivalently, Anatomy-style publishing): tuples are partitioned
// into buckets and the sensitive values are randomly permuted within each
// bucket. Under the random-worlds assumption, all privacy-relevant state of
// a bucket is its sensitive-value histogram, which this package maintains in
// decreasing-frequency order (the s⁰_b, s¹_b, ... of the paper).
package bucket

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"ckprivacy/internal/hierarchy"
	"ckprivacy/internal/table"
)

// Bucket is one block of the partition.
type Bucket struct {
	// Key identifies the bucket, e.g. the generalized quasi-identifier
	// signature that formed it.
	Key string
	// Tuples lists the row indices (person identities) in the bucket.
	Tuples []int

	freq   []table.ValueCount // decreasing count, ties by value
	prefix []int              // prefix[j] = sum of top-j counts
	hist   []int              // counts only, aligned with freq
	// scounts is the sensitive histogram over the encoded table's
	// sensitive code space; nil for buckets built on the string path. The
	// incremental coarsening path merges these without touching strings.
	scounts []int32
}

// newBucket finalizes a bucket's derived state from a sensitive-value
// count map. The map is not retained: the sorted freq slice answers every
// later query.
func newBucket(key string, tuples []int, counts map[string]int) *Bucket {
	b := &Bucket{Key: key, Tuples: tuples, freq: table.SortCounts(counts)}
	b.finalize()
	return b
}

// rekeyBucket returns a bucket identical to b under a new key, sharing
// its tuple, frequency and histogram storage. Coarsening a group of one
// fine bucket changes nothing but the key, so the derived state can be
// shared outright: buckets are immutable once built (the snapshotmut
// analyzer pins them to this file) and appends rebuild touched buckets
// rather than mutating them, so the sharing is never observable.
func rekeyBucket(b *Bucket, key string) *Bucket {
	return &Bucket{Key: key, Tuples: b.Tuples, freq: b.freq, prefix: b.prefix, hist: b.hist, scounts: b.scounts}
}

// finalize derives the prefix sums and the cached histogram from freq.
func (b *Bucket) finalize() {
	b.prefix = make([]int, len(b.freq)+1)
	b.hist = make([]int, len(b.freq))
	for i, vc := range b.freq {
		b.prefix[i+1] = b.prefix[i] + vc.Count
		b.hist[i] = vc.Count
	}
}

// Size returns n_b, the number of tuples in the bucket.
func (b *Bucket) Size() int { return len(b.Tuples) }

// Count returns n_b(s), the multiplicity of sensitive value s. The number
// of distinct sensitive values per bucket is small, so a linear scan of
// the freq slice beats retaining a dedicated map per bucket.
func (b *Bucket) Count(s string) int {
	for _, vc := range b.freq {
		if vc.Value == s {
			return vc.Count
		}
	}
	return 0
}

// Freq returns the value counts in decreasing order (s⁰_b first). The
// returned slice must not be modified.
func (b *Bucket) Freq() []table.ValueCount { return b.freq }

// Distinct returns the number of distinct sensitive values.
func (b *Bucket) Distinct() int { return len(b.freq) }

// TopValue returns s⁰_b, the most frequent sensitive value.
func (b *Bucket) TopValue() string { return b.freq[0].Value }

// TopCount returns n_b(s⁰_b).
func (b *Bucket) TopCount() int { return b.freq[0].Count }

// PrefixSum returns the total count of the j most frequent values
// (j may exceed the number of distinct values, in which case the full size
// is returned).
func (b *Bucket) PrefixSum(j int) int {
	if j >= len(b.prefix) {
		return b.prefix[len(b.prefix)-1]
	}
	return b.prefix[j]
}

// Histogram returns the counts in decreasing order. The DP in
// internal/core depends only on this. The slice is computed once at
// construction and shared across calls: it must be treated as read-only.
func (b *Bucket) Histogram() []int { return b.hist }

// Signature returns a canonical string form of the histogram, used to share
// memoized DP tables between buckets with identical histograms.
func (b *Bucket) Signature() string {
	var sb strings.Builder
	for i, vc := range b.freq {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(vc.Count))
	}
	return sb.String()
}

// Bucketization is a partition of a table's tuples into buckets.
type Bucketization struct {
	// Buckets holds the blocks in deterministic (key) order.
	Buckets []*Bucket
	// Source optionally references the table the bucketization was built
	// from; it is required by Publish and by the logic/worlds bridges.
	Source *table.Table
}

// FromValues builds a bucketization directly from per-bucket sensitive-value
// multisets, with synthetic person identities 0..n-1 assigned in order. It
// is the main constructor for tests and small worked examples.
func FromValues(groups ...[]string) *Bucketization {
	bz := &Bucketization{}
	next := 0
	for gi, g := range groups {
		counts := make(map[string]int, len(g))
		tuples := make([]int, len(g))
		for i, s := range g {
			counts[s]++
			tuples[i] = next
			next++
		}
		bz.Buckets = append(bz.Buckets, newBucket(fmt.Sprintf("b%d", gi), tuples, counts))
	}
	return bz
}

// FromTupleGroups rebuilds a bucketization from its materialized form:
// per-bucket keys and tuple (row) ids over src. It is the durable store's
// recovery constructor — a persisted release stores exactly its partition,
// and this turns it back into a live Bucketization (sensitive histograms
// recounted from src) without re-running the original generalization scan.
// Buckets are taken in the given order; keys need not be sorted (they were
// sorted when first built, and recovery preserves that order verbatim).
func FromTupleGroups(src *table.Table, keys []string, groups [][]int) (*Bucketization, error) {
	if len(keys) != len(groups) {
		return nil, fmt.Errorf("bucket: %d keys but %d groups", len(keys), len(groups))
	}
	bz := &Bucketization{Source: src}
	for i, key := range keys {
		tuples := groups[i]
		counts := make(map[string]int, 4)
		for _, id := range tuples {
			if id < 0 || id >= src.Len() {
				return nil, fmt.Errorf("bucket: group %d tuple id %d outside table of %d rows", i, id, src.Len())
			}
			counts[src.SensitiveValue(id)]++
		}
		bz.Buckets = append(bz.Buckets, newBucket(key, tuples, counts))
	}
	return bz, nil
}

// Levels assigns a generalization level to each quasi-identifier by name.
type Levels map[string]int

// validateLevels rejects level assignments that the grouping loop would
// otherwise silently ignore or default: attributes that do not exist in
// the schema (typos), the sensitive attribute, and levels outside the
// attribute's hierarchy range. hierLevels reports the named attribute's
// level count, false when it has no hierarchy.
func validateLevels(s *table.Schema, levels Levels, hierLevels func(name string) (int, bool)) error {
	for name, lvl := range levels {
		col := s.Index(name)
		if col < 0 {
			return fmt.Errorf("bucket: levels name unknown attribute %q", name)
		}
		if col == s.SensitiveIndex {
			return fmt.Errorf("bucket: levels name the sensitive attribute %q, which cannot be generalized", name)
		}
		if lvl == 0 {
			continue // identity needs no hierarchy
		}
		n, ok := hierLevels(name)
		if !ok {
			return fmt.Errorf("bucket: no hierarchy for attribute %q", name)
		}
		if lvl < 0 || lvl >= n {
			return fmt.Errorf("bucket: level %d for attribute %q outside [0, %d)", lvl, name, n)
		}
	}
	return nil
}

// FromGeneralization partitions t by the generalized values of its
// quasi-identifiers: two tuples share a bucket iff they agree on every QI
// attribute after generalization to the given level. Attributes absent from
// levels default to level 0 (no generalization). This realizes the paper's
// equivalence of full-domain generalization and bucketization under full
// identification information.
//
// This is the string-path reference implementation; FromGeneralizationEncoded
// computes the byte-identical result over an Encoded view of the table.
func FromGeneralization(t *table.Table, hs hierarchy.Set, levels Levels) (*Bucketization, error) {
	err := validateLevels(t.Schema, levels, func(name string) (int, bool) {
		h, ok := hs[name]
		if !ok {
			return 0, false
		}
		return h.Levels(), true
	})
	if err != nil {
		return nil, err
	}
	qi := t.Schema.QuasiIdentifiers()
	type group struct {
		tuples []int
		counts map[string]int
	}
	groups := make(map[string]*group)
	var keyParts []string
	for row := 0; row < t.Len(); row++ {
		keyParts = keyParts[:0]
		for _, col := range qi {
			name := t.Schema.Attrs[col].Name
			lvl := levels[name]
			val := t.Value(row, col)
			if lvl != 0 {
				h, ok := hs[name]
				if !ok {
					return nil, fmt.Errorf("bucket: no hierarchy for attribute %q", name)
				}
				g, err := h.Generalize(val, lvl)
				if err != nil {
					return nil, fmt.Errorf("bucket: row %d: %w", row, err)
				}
				val = g
			}
			keyParts = append(keyParts, val)
		}
		key := strings.Join(keyParts, "|")
		g, ok := groups[key]
		if !ok {
			g = &group{counts: make(map[string]int)}
			groups[key] = g
		}
		g.tuples = append(g.tuples, row)
		g.counts[t.SensitiveValue(row)]++
	}

	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	bz := &Bucketization{Source: t}
	for _, k := range keys {
		g := groups[k]
		bz.Buckets = append(bz.Buckets, newBucket(k, g.tuples, g.counts))
	}
	return bz, nil
}

// Merge returns a new bucketization with buckets i and j merged (a single
// step up the paper's ⪯ partial order). The source table, if any, carries
// over.
func (bz *Bucketization) Merge(i, j int) (*Bucketization, error) {
	if i == j || i < 0 || j < 0 || i >= len(bz.Buckets) || j >= len(bz.Buckets) {
		return nil, fmt.Errorf("bucket: cannot merge buckets %d and %d of %d", i, j, len(bz.Buckets))
	}
	if j < i {
		i, j = j, i
	}
	out := &Bucketization{Source: bz.Source}
	for k, b := range bz.Buckets {
		if k == j {
			continue
		}
		if k != i {
			out.Buckets = append(out.Buckets, b)
			continue
		}
		a, c := bz.Buckets[i], bz.Buckets[j]
		counts := make(map[string]int, len(a.freq)+len(c.freq))
		for _, vc := range a.freq {
			counts[vc.Value] += vc.Count
		}
		for _, vc := range c.freq {
			counts[vc.Value] += vc.Count
		}
		tuples := make([]int, 0, len(a.Tuples)+len(c.Tuples))
		tuples = append(tuples, a.Tuples...)
		tuples = append(tuples, c.Tuples...)
		merged := newBucket(a.Key+"+"+c.Key, tuples, counts)
		if a.scounts != nil && c.scounts != nil && len(a.scounts) == len(c.scounts) {
			merged.scounts = make([]int32, len(a.scounts))
			for v := range a.scounts {
				merged.scounts[v] = a.scounts[v] + c.scounts[v]
			}
		}
		out.Buckets = append(out.Buckets, merged)
	}
	return out, nil
}

// Size returns the total number of tuples across all buckets.
func (bz *Bucketization) Size() int {
	n := 0
	for _, b := range bz.Buckets {
		n += b.Size()
	}
	return n
}

// BucketOf returns the index of the bucket containing tuple (person) id, or
// -1 if absent.
func (bz *Bucketization) BucketOf(id int) int {
	for i, b := range bz.Buckets {
		for _, t := range b.Tuples {
			if t == id {
				return i
			}
		}
	}
	return -1
}

// Publish materializes the sanitized release: for each bucket, the tuples'
// non-sensitive attributes together with an independently random permutation
// of the bucket's sensitive values (the paper's Figure 3 form). The first
// output column is the bucket key. Publish requires a Source table.
func (bz *Bucketization) Publish(rng *rand.Rand) ([][]string, error) {
	if bz.Source == nil {
		return nil, fmt.Errorf("bucket: Publish needs a source table")
	}
	t := bz.Source
	qi := t.Schema.QuasiIdentifiers()
	var out [][]string
	for _, b := range bz.Buckets {
		vals := make([]string, 0, b.Size())
		for _, id := range b.Tuples {
			vals = append(vals, t.SensitiveValue(id))
		}
		rng.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		for i, id := range b.Tuples {
			row := make([]string, 0, len(qi)+2)
			row = append(row, b.Key)
			for _, col := range qi {
				row = append(row, t.Value(id, col))
			}
			row = append(row, vals[i])
			out = append(out, row)
		}
	}
	return out, nil
}
