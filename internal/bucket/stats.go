package bucket

import "math"

// Entropy returns the Shannon entropy (in nats) of the bucket's
// sensitive-value distribution. The paper's Figure 6 x-axis is the minimum
// of this quantity over all buckets.
func (b *Bucket) Entropy() float64 {
	n := float64(b.Size())
	if n == 0 {
		return 0
	}
	h := 0.0
	for _, vc := range b.freq {
		p := float64(vc.Count) / n
		h -= p * math.Log(p)
	}
	return h
}

// MinEntropy returns the minimum bucket entropy over the bucketization.
func (bz *Bucketization) MinEntropy() float64 {
	min := math.Inf(1)
	for _, b := range bz.Buckets {
		if h := b.Entropy(); h < min {
			min = h
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// MinSize returns the smallest bucket size (the k of k-anonymity).
func (bz *Bucketization) MinSize() int {
	min := 0
	for i, b := range bz.Buckets {
		if i == 0 || b.Size() < min {
			min = b.Size()
		}
	}
	return min
}

// MinDistinct returns the smallest number of distinct sensitive values in
// any bucket (the l of distinct l-diversity).
func (bz *Bucketization) MinDistinct() int {
	min := 0
	for i, b := range bz.Buckets {
		if i == 0 || b.Distinct() < min {
			min = b.Distinct()
		}
	}
	return min
}

// MaxTopFraction returns max_b n_b(s⁰_b)/n_b, the k=0 maximum disclosure
// (random-worlds baseline with no background knowledge).
func (bz *Bucketization) MaxTopFraction() float64 {
	max := 0.0
	for _, b := range bz.Buckets {
		f := float64(b.TopCount()) / float64(b.Size())
		if f > max {
			max = f
		}
	}
	return max
}
