package bucket

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ckprivacy/internal/hierarchy"
	"ckprivacy/internal/table"
)

// paperTable builds the paper's Figure 1 original table.
func paperTable(t *testing.T) *table.Table {
	t.Helper()
	s, err := table.NewSchema([]table.Attribute{
		{Name: "Zip", Kind: table.Numeric, Min: 0, Max: 99999},
		{Name: "Age", Kind: table.Numeric, Min: 0, Max: 120},
		{Name: "Sex", Kind: table.Categorical, Domain: []string{"M", "F"}},
		{Name: "Disease", Kind: table.Categorical, Domain: []string{
			"flu", "lung-cancer", "mumps", "breast-cancer", "ovarian-cancer", "heart-disease",
		}},
	}, "Disease")
	if err != nil {
		t.Fatal(err)
	}
	tab := table.New(s)
	rows := []table.Row{
		{"14850", "23", "M", "flu"},            // Bob
		{"14850", "24", "M", "flu"},            // Charlie
		{"14850", "25", "M", "lung-cancer"},    // Dave
		{"14850", "27", "M", "lung-cancer"},    // Ed
		{"14853", "29", "M", "mumps"},          // Frank
		{"14850", "21", "F", "flu"},            // Gloria
		{"14850", "22", "F", "flu"},            // Hannah
		{"14853", "24", "F", "breast-cancer"},  // Irma
		{"14853", "26", "F", "ovarian-cancer"}, // Jessica
		{"14853", "28", "F", "heart-disease"},  // Karen
	}
	for _, r := range rows {
		tab.MustAppend(r)
	}
	return tab
}

func paperHierarchies() hierarchy.Set {
	return hierarchy.Set{
		"Zip": hierarchy.MustInterval("Zip", []int{1, 10, 0}),
		"Age": hierarchy.MustInterval("Age", []int{1, 10, 0}),
		"Sex": hierarchy.NewSuppression("Sex", []string{"M", "F"}),
	}
}

func TestFromValues(t *testing.T) {
	bz := FromValues(
		[]string{"flu", "flu", "lung-cancer", "lung-cancer", "mumps"},
		[]string{"flu", "flu", "breast-cancer", "ovarian-cancer", "heart-disease"},
	)
	if len(bz.Buckets) != 2 || bz.Size() != 10 {
		t.Fatalf("buckets/size = %d/%d", len(bz.Buckets), bz.Size())
	}
	b := bz.Buckets[0]
	if b.Size() != 5 || b.Count("flu") != 2 || b.Count("mumps") != 1 || b.Count("nope") != 0 {
		t.Errorf("bucket 0 counts wrong: %v", b.Freq())
	}
	if b.TopValue() != "flu" && b.TopValue() != "lung-cancer" {
		t.Errorf("TopValue = %q", b.TopValue())
	}
	if b.TopCount() != 2 || b.Distinct() != 3 {
		t.Errorf("TopCount/Distinct = %d/%d", b.TopCount(), b.Distinct())
	}
	// flu and lung-cancer tie at 2; SortCounts breaks ties by value, so
	// flu < lung-cancer comes first.
	if b.Freq()[0].Value != "flu" {
		t.Errorf("tie order: %v", b.Freq())
	}
	if got := b.Signature(); got != "2,2,1" {
		t.Errorf("Signature = %q", got)
	}
	wantHist := []int{2, 2, 1}
	for i, h := range b.Histogram() {
		if h != wantHist[i] {
			t.Errorf("Histogram = %v", b.Histogram())
		}
	}
	if b.PrefixSum(0) != 0 || b.PrefixSum(1) != 2 || b.PrefixSum(2) != 4 || b.PrefixSum(3) != 5 || b.PrefixSum(99) != 5 {
		t.Errorf("PrefixSum wrong: %d %d %d", b.PrefixSum(1), b.PrefixSum(2), b.PrefixSum(3))
	}
	// Person identities are assigned sequentially across buckets.
	if bz.BucketOf(0) != 0 || bz.BucketOf(7) != 1 || bz.BucketOf(99) != -1 {
		t.Errorf("BucketOf wrong")
	}
}

func TestFromGeneralizationPaperExample(t *testing.T) {
	tab := paperTable(t)
	// Zip generalized to width 10 ("1485*"), Age to width 10 ("2*"), Sex
	// kept: exactly the paper's Figure 2/3 partition into two buckets of 5.
	bz, err := FromGeneralization(tab, paperHierarchies(), Levels{"Zip": 1, "Age": 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(bz.Buckets) != 2 {
		t.Fatalf("got %d buckets, want 2: %+v", len(bz.Buckets), bz.Buckets)
	}
	for _, b := range bz.Buckets {
		if b.Size() != 5 {
			t.Errorf("bucket %q size = %d", b.Key, b.Size())
		}
	}
	// The male bucket has histogram {flu:2, lung:2, mumps:1}.
	var male *Bucket
	for _, b := range bz.Buckets {
		if b.Count("mumps") > 0 {
			male = b
		}
	}
	if male == nil || male.Signature() != "2,2,1" {
		t.Fatalf("male bucket = %+v", male)
	}
	// Suppressing sex merges the two buckets.
	bz2, err := FromGeneralization(tab, paperHierarchies(), Levels{"Zip": 1, "Age": 1, "Sex": 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(bz2.Buckets) != 1 || bz2.Buckets[0].Size() != 10 {
		t.Fatalf("suppressed-sex buckets = %d", len(bz2.Buckets))
	}
	if bz2.Buckets[0].Count("flu") != 4 {
		t.Errorf("merged flu count = %d", bz2.Buckets[0].Count("flu"))
	}
}

func TestFromGeneralizationErrors(t *testing.T) {
	tab := paperTable(t)
	if _, err := FromGeneralization(tab, hierarchy.Set{}, Levels{"Zip": 1}); err == nil {
		t.Error("missing hierarchy accepted")
	}
	if _, err := FromGeneralization(tab, paperHierarchies(), Levels{"Zip": 9}); err == nil {
		t.Error("bad level accepted")
	}
	// Level 0 on everything: one bucket per distinct QI combination.
	bz, err := FromGeneralization(tab, paperHierarchies(), Levels{})
	if err != nil {
		t.Fatal(err)
	}
	if len(bz.Buckets) != 10 {
		t.Errorf("ground partition has %d buckets, want 10", len(bz.Buckets))
	}
}

func TestMerge(t *testing.T) {
	bz := FromValues([]string{"a", "a"}, []string{"b"}, []string{"c"})
	m, err := bz.Merge(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Buckets) != 2 {
		t.Fatalf("merged buckets = %d", len(m.Buckets))
	}
	var merged *Bucket
	for _, b := range m.Buckets {
		if b.Size() == 3 {
			merged = b
		}
	}
	if merged == nil || merged.Count("a") != 2 || merged.Count("c") != 1 {
		t.Fatalf("merged bucket wrong: %+v", merged)
	}
	// Original untouched.
	if len(bz.Buckets) != 3 {
		t.Error("Merge mutated the receiver")
	}
	if _, err := bz.Merge(1, 1); err == nil {
		t.Error("self-merge accepted")
	}
	if _, err := bz.Merge(0, 9); err == nil {
		t.Error("out-of-range merge accepted")
	}
	// Argument order must not matter.
	m2, err := bz.Merge(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Size() != bz.Size() {
		t.Error("reversed merge lost tuples")
	}
}

func TestEntropy(t *testing.T) {
	b := FromValues([]string{"a", "a", "b"}).Buckets[0]
	want := -(2.0/3.0)*math.Log(2.0/3.0) - (1.0/3.0)*math.Log(1.0/3.0)
	if got := b.Entropy(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Entropy = %v, want %v", got, want)
	}
	u := FromValues([]string{"a", "b", "c", "d"}).Buckets[0]
	if got := u.Entropy(); math.Abs(got-math.Log(4)) > 1e-12 {
		t.Errorf("uniform entropy = %v, want ln 4", got)
	}
	one := FromValues([]string{"a", "a"}).Buckets[0]
	if got := one.Entropy(); got != 0 {
		t.Errorf("degenerate entropy = %v", got)
	}
}

func TestBucketizationStats(t *testing.T) {
	bz := FromValues(
		[]string{"a", "a", "b", "c"}, // entropy ln-ish, top 1/2
		[]string{"a", "a", "a"},      // entropy 0, top 1
	)
	if got := bz.MinEntropy(); got != 0 {
		t.Errorf("MinEntropy = %v", got)
	}
	if got := bz.MinSize(); got != 3 {
		t.Errorf("MinSize = %d", got)
	}
	if got := bz.MinDistinct(); got != 1 {
		t.Errorf("MinDistinct = %d", got)
	}
	if got := bz.MaxTopFraction(); got != 1.0 {
		t.Errorf("MaxTopFraction = %v", got)
	}
	empty := &Bucketization{}
	if empty.MinEntropy() != 0 || empty.MinSize() != 0 || empty.MinDistinct() != 0 {
		t.Error("empty bucketization stats not zero")
	}
}

func TestPublishPreservesMultisets(t *testing.T) {
	tab := paperTable(t)
	bz, err := FromGeneralization(tab, paperHierarchies(), Levels{"Zip": 1, "Age": 1})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := bz.Publish(rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("published %d rows", len(rows))
	}
	// Per bucket, the multiset of sensitive values must be preserved.
	got := map[string][]string{}
	for _, r := range rows {
		got[r[0]] = append(got[r[0]], r[len(r)-1])
	}
	for _, b := range bz.Buckets {
		want := []string{}
		for _, id := range b.Tuples {
			want = append(want, tab.SensitiveValue(id))
		}
		g := got[b.Key]
		sort.Strings(want)
		sort.Strings(g)
		if len(g) != len(want) {
			t.Fatalf("bucket %q: %d rows, want %d", b.Key, len(g), len(want))
		}
		for i := range g {
			if g[i] != want[i] {
				t.Fatalf("bucket %q multiset changed: %v vs %v", b.Key, g, want)
			}
		}
	}
	if _, err := FromValues([]string{"a"}).Publish(rand.New(rand.NewSource(1))); err == nil {
		t.Error("Publish without source accepted")
	}
}

// TestMergePreservesHistogramMass property-checks that merging buckets
// preserves the overall sensitive-value counts and total size.
func TestMergePreservesHistogramMass(t *testing.T) {
	f := func(raw []uint8, pick uint8) bool {
		if len(raw) < 2 {
			return true
		}
		vals := []string{"a", "b", "c", "d"}
		var g1, g2, g3 []string
		for i, r := range raw {
			v := vals[int(r)%len(vals)]
			switch i % 3 {
			case 0:
				g1 = append(g1, v)
			case 1:
				g2 = append(g2, v)
			default:
				g3 = append(g3, v)
			}
		}
		if len(g1) == 0 || len(g2) == 0 || len(g3) == 0 {
			return true
		}
		bz := FromValues(g1, g2, g3)
		i := int(pick) % 3
		j := (i + 1) % 3
		m, err := bz.Merge(i, j)
		if err != nil {
			return false
		}
		if m.Size() != bz.Size() || len(m.Buckets) != 2 {
			return false
		}
		for _, v := range vals {
			before, after := 0, 0
			for _, b := range bz.Buckets {
				before += b.Count(v)
			}
			for _, b := range m.Buckets {
				after += b.Count(v)
			}
			if before != after {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramSorted property-checks the decreasing-order invariant that
// the MINIMIZE1 closed form depends on.
func TestHistogramSorted(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]string, len(raw))
		for i, r := range raw {
			vals[i] = string(rune('a' + r%6))
		}
		b := FromValues(vals).Buckets[0]
		h := b.Histogram()
		total := 0
		for i, c := range h {
			total += c
			if i > 0 && h[i-1] < c {
				return false
			}
		}
		return total == b.Size() && b.PrefixSum(len(h)) == b.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
