package bucket

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"ckprivacy/internal/hierarchy"
	"ckprivacy/internal/table"
)

// This file is the integer path of bucketization: it computes the exact
// same partition as FromGeneralization, but over a columnar Encoded view
// of the table and compiled hierarchies, so the per-row work is a handful
// of array indexes instead of map lookups and string joins. Per-row
// generalized codes are packed into a single uint64 group key when the
// per-dimension cardinalities fit 64 bits (multi-radix positional
// packing), falling back to a byte-tuple key otherwise — the fallback is
// exact, not a lossy hash, so both key paths group identically. Sensitive
// histograms are counted over the sensitive dictionary's code space and
// decoded to strings once per bucket.
//
// Byte-identity contract (relied on by the randomized parity tests and by
// the lattice searches' caches): bucket keys, bucket order, tuple sets and
// orders, and sensitive histograms are identical to the string path's.

// CompileHierarchies compiles every hierarchy that names a column of the
// encoded table over that column's dictionary (in dictionary code order).
// Hierarchies for attributes the table lacks are skipped, matching the
// string path, which never consults them.
func CompileHierarchies(enc *table.Encoded, hs hierarchy.Set) (hierarchy.CompiledSet, error) {
	chs := make(hierarchy.CompiledSet, len(hs))
	for name, h := range hs {
		col := enc.Table.Schema.Index(name)
		if col < 0 {
			continue
		}
		c, err := hierarchy.Compile(h, enc.Dicts[col].Values())
		if err != nil {
			return nil, fmt.Errorf("bucket: %w", err)
		}
		chs[name] = c
	}
	return chs, nil
}

// dim is one quasi-identifier dimension of an encoded grouping: the code
// column, the (optional) generalization LUT for the requested level, and
// the decoding hooks used to materialize bucket keys.
type dim struct {
	col   []uint32
	lut   []uint32 // nil at level 0 (identity over the dictionary)
	card  uint64   // generalized-code cardinality at the level
	level int
	comp  *hierarchy.Compiled // nil at level 0
	dict  *table.Dict
}

// value decodes row's generalized value string in this dimension.
func (d *dim) value(row int) string {
	c := d.col[row]
	if d.lut == nil {
		return d.dict.Value(c)
	}
	return d.comp.Value(d.level, d.lut[c])
}

// buildDims resolves the schema's quasi-identifiers at the given levels
// against the encoded view and the compiled hierarchies.
func buildDims(enc *table.Encoded, chs hierarchy.CompiledSet, levels Levels) ([]dim, error) {
	s := enc.Table.Schema
	err := validateLevels(s, levels, func(name string) (int, bool) {
		c, ok := chs[name]
		if !ok {
			return 0, false
		}
		return c.Levels(), true
	})
	if err != nil {
		return nil, err
	}
	qi := s.QuasiIdentifiers()
	dims := make([]dim, len(qi))
	for i, col := range qi {
		name := s.Attrs[col].Name
		lvl := levels[name]
		d := dim{col: enc.Cols[col], level: lvl, dict: enc.Dicts[col]}
		if lvl != 0 {
			c, ok := chs[name]
			if !ok {
				return nil, fmt.Errorf("bucket: no hierarchy for attribute %q", name)
			}
			if covered := len(c.Lut(0)); covered < enc.Dicts[col].Len() {
				// The dictionary grew past the compiled domain (an append
				// without a matching Compiled.Extend); indexing the stale
				// LUT would run off its end.
				return nil, fmt.Errorf(
					"bucket: compiled hierarchy for %q covers %d of %d dictionary values; extend it after appends",
					name, covered, enc.Dicts[col].Len())
			}
			d.lut = c.Lut(lvl)
			d.card = uint64(c.Cardinality(lvl))
			d.comp = c
		} else {
			d.card = uint64(enc.Dicts[col].Len())
		}
		dims[i] = d
	}
	return dims, nil
}

// packable reports whether the dimensions' generalized-code product fits a
// uint64, i.e. whether positional multi-radix packing is collision-free.
func packable(dims []dim) bool {
	prod := uint64(1)
	for _, d := range dims {
		if d.card == 0 {
			return true // empty table; no keys will be built
		}
		if prod > ^uint64(0)/d.card {
			return false
		}
		prod *= d.card
	}
	return true
}

// packKey builds the multi-radix packed key of one row.
func packKey(dims []dim, row int) uint64 {
	key := uint64(0)
	for i := range dims {
		d := &dims[i]
		c := d.col[row]
		if d.lut != nil {
			c = d.lut[c]
		}
		key = key*d.card + uint64(c)
	}
	return key
}

// appendTupleKey serializes one row's generalized code tuple into buf
// (the exact fallback when packing would overflow).
func appendTupleKey(dims []dim, row int, buf []byte) {
	for i := range dims {
		d := &dims[i]
		c := d.col[row]
		if d.lut != nil {
			c = d.lut[c]
		}
		binary.BigEndian.PutUint32(buf[4*i:], c)
	}
}

// maxDenseSensitive bounds the sensitive cardinality up to which
// per-group histograms are dense []int32 slices over the code space.
// Above it (e.g. a near-unique sensitive column), dense slices would cost
// O(buckets × cardinality) memory — quadratic at fine lattice nodes where
// buckets ≈ rows — so groups fall back to sparse maps, keeping the total
// O(rows) like the string path.
const maxDenseSensitive = 256

// egroup accumulates one bucket of the encoded grouping. Exactly one of
// scounts (dense) or sparse is non-nil, chosen by sensitive cardinality.
type egroup struct {
	rep     int // representative row: any member; all agree at these levels
	tuples  []int
	scounts []int32
	sparse  map[uint32]int32
}

// newEgroup allocates a group with the histogram representation suited to
// the sensitive code space.
func newEgroup(rep, scard int) *egroup {
	g := &egroup{rep: rep}
	if scard <= maxDenseSensitive {
		g.scounts = make([]int32, scard)
	} else {
		g.sparse = make(map[uint32]int32, 4)
	}
	return g
}

// addRow appends one row to the group.
func (g *egroup) addRow(row int, sens []uint32) {
	g.tuples = append(g.tuples, row)
	if g.scounts != nil {
		g.scounts[sens[row]]++
	} else {
		g.sparse[sens[row]]++
	}
}

// keyString materializes the bucket key of a group from its
// representative row — the same "v1|v2|…" string the legacy path builds
// per row, built here once per bucket.
func keyString(dims []dim, row int, parts []string) string {
	for i := range dims {
		parts[i] = dims[i].value(row)
	}
	return strings.Join(parts, "|")
}

// bucket finalizes the group into a Bucket, decoding value strings
// through the sensitive dictionary. Sorting matches table.SortCounts
// (count desc, value asc), so the resulting freq slice is byte-identical
// to the string path's. Dense groups keep their code histogram on the
// bucket for later coarsening; sparse ones drop it (Coarsen recounts
// their rows, which is still O(rows) total).
func (g *egroup) bucket(key string, sdict *table.Dict) *Bucket {
	freq := make([]table.ValueCount, 0, 8)
	if g.scounts != nil {
		for code, n := range g.scounts {
			if n > 0 {
				freq = append(freq, table.ValueCount{Value: sdict.Value(uint32(code)), Count: int(n)})
			}
		}
	} else {
		for code, n := range g.sparse {
			freq = append(freq, table.ValueCount{Value: sdict.Value(code), Count: int(n)})
		}
	}
	sort.Slice(freq, func(i, j int) bool {
		if freq[i].Count != freq[j].Count {
			return freq[i].Count > freq[j].Count
		}
		return freq[i].Value < freq[j].Value
	})
	b := &Bucket{Key: key, Tuples: g.tuples, freq: freq, scounts: g.scounts}
	b.finalize()
	return b
}

// finishGroups materializes and orders the buckets of an encoded
// grouping: keys decoded once per group, groups sorted by key exactly as
// the string path sorts.
func finishGroups(enc *table.Encoded, dims []dim, groups []*egroup) *Bucketization {
	type keyed struct {
		key string
		g   *egroup
	}
	ks := make([]keyed, len(groups))
	parts := make([]string, len(dims))
	sorted := true
	for i, g := range groups {
		ks[i] = keyed{keyString(dims, g.rep, parts), g}
		if i > 0 && ks[i].key < ks[i-1].key {
			sorted = false
		}
	}
	// Groups already in key order (common when the scan order is the key
	// order, e.g. a sorted table) skip the sort outright.
	if !sorted {
		sort.Slice(ks, func(i, j int) bool { return ks[i].key < ks[j].key })
	}
	bz := &Bucketization{Source: enc.Table}
	bz.Buckets = make([]*Bucket, len(ks))
	sdict := enc.SensitiveDict()
	for i, k := range ks {
		bz.Buckets[i] = k.g.bucket(k.key, sdict)
	}
	return bz
}

// FromGeneralizationEncoded is FromGeneralization over the encoded view:
// the same partition, keys, tuple order and histograms, computed with one
// LUT index per row and dimension instead of per-row map lookups and
// string joins. It is the one-shard case of the row-sharded scan in
// shard.go, which is the single scan-loop implementation for every shard
// count.
func FromGeneralizationEncoded(enc *table.Encoded, chs hierarchy.CompiledSet, levels Levels) (*Bucketization, error) {
	return FromGeneralizationEncodedSharded(enc, chs, levels, 1, nil)
}

// Coarsen derives the bucketization at the given levels from an
// already-materialized finer bucketization of the same encoded table,
// without rescanning the rows: every fine bucket is re-keyed through its
// representative row (the hierarchies' nested-coarsening law guarantees
// all its rows generalize identically), fine buckets with equal coarse
// keys are merged, and their sensitive code histograms are summed. The
// cost is proportional to the number of fine buckets, not the number of
// rows — this is what makes lattice-wide sweeps cheap after the first
// scan.
//
// Precondition: fine partitions enc.Table at levels that are
// component-wise ≤ the requested levels (on every schema QI attribute).
// The result is then byte-identical to FromGeneralizationEncoded at the
// requested levels.
//
// Coarsen is the one-shot form of CoarsenInto (arena.go): it borrows a
// pooled Arena for the duration of the call. Sweeps that coarsen many
// nodes in a row should hold an Arena across the calls instead.
func Coarsen(fine *Bucketization, enc *table.Encoded, chs hierarchy.CompiledSet, levels Levels) (*Bucketization, error) {
	return CoarsenInto(fine, enc, chs, levels, nil)
}
