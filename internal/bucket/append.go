package bucket

import (
	"fmt"
	"sort"

	"ckprivacy/internal/hierarchy"
	"ckprivacy/internal/table"
)

// This file is the incremental-update path of bucketization: given a
// bucketization of a table's first `start` rows and a snapshot of the same
// table after rows were appended, AppendRows re-keys only the appended
// rows and folds them into the existing partition, copy-on-write. Cost is
// O(appended rows + buckets at the node): appended rows are scanned and
// histogrammed once, untouched buckets are shared by pointer with the old
// bucketization (only a key-to-index map entry each), and only buckets the
// appended rows land in are rebuilt. Nothing rescans the pre-existing
// rows, which is what makes refreshing a warm lattice node after a small
// append cheap.

// appendMerged rebuilds one touched bucket: the old bucket's tuples and
// histogram plus one appended group's. Tuple order matches a from-scratch
// row scan because every appended row index exceeds every old one. The
// histogram merge is dense-to-dense when both sides carry code-space
// counts (an old histogram shorter than scard predates the new sensitive
// codes and holds zero of each), and falls back to merging the decoded
// freq multisets otherwise.
func appendMerged(old *Bucket, g *egroup, scard int, sdict *table.Dict) *Bucket {
	tuples := make([]int, 0, len(old.Tuples)+len(g.tuples))
	tuples = append(tuples, old.Tuples...)
	tuples = append(tuples, g.tuples...)
	if old.scounts != nil && g.scounts != nil && len(old.scounts) <= scard {
		merged := make([]int32, scard)
		copy(merged, old.scounts)
		for v, n := range g.scounts {
			merged[v] += n
		}
		ng := &egroup{rep: tuples[0], tuples: tuples, scounts: merged}
		return ng.bucket(old.Key, sdict)
	}
	counts := make(map[string]int, old.Distinct()+4)
	for _, vc := range old.Freq() {
		counts[vc.Value] += vc.Count
	}
	if g.scounts != nil {
		for v, n := range g.scounts {
			if n > 0 {
				counts[sdict.Value(uint32(v))] += int(n)
			}
		}
	} else {
		for v, n := range g.sparse {
			counts[sdict.Value(v)] += int(n)
		}
	}
	return newBucket(old.Key, tuples, counts)
}

// AppendRows derives the bucketization of the snapshot enc at the given
// levels from an existing bucketization of the same table's first `start`
// rows at the same levels: rows [start, enc.Rows()) are keyed and grouped,
// groups matching an existing bucket key are merged into a fresh copy of
// that bucket, and unmatched groups become new buckets. Untouched buckets
// are shared with `old` by pointer — neither bucketization is mutated.
//
// Preconditions: `old` partitions exactly the first `start` rows of
// enc.Table at these levels (codes and hierarchies unchanged for those
// rows — appends only ever add dictionary codes), and enc/chs reflect the
// post-append state. The result is then byte-identical — keys, bucket
// order, tuple order, histograms — to FromGeneralizationEncoded(enc, chs,
// levels) on the grown table.
func AppendRows(old *Bucketization, enc *table.Encoded, chs hierarchy.CompiledSet, levels Levels, start int) (*Bucketization, error) {
	dims, err := buildDims(enc, chs, levels)
	if err != nil {
		return nil, err
	}
	rows := enc.Rows()
	if start < 0 || start > rows {
		return nil, fmt.Errorf("bucket: append start %d outside [0, %d]", start, rows)
	}
	if start == rows {
		// Nothing appended: same partition, re-anchored on the snapshot.
		return &Bucketization{Buckets: old.Buckets, Source: enc.Table}, nil
	}
	sens := enc.SensitiveCol()
	scard := enc.SensitiveDict().Len()

	// Group only the appended rows, on whichever key path the current
	// cardinalities select (the old bucketization's key path is irrelevant:
	// matching below goes through the decoded string keys, which both
	// paths share).
	var groups []*egroup
	if packable(dims) {
		byKey := make(map[uint64]*egroup)
		for row := start; row < rows; row++ {
			key := packKey(dims, row)
			g := byKey[key]
			if g == nil {
				g = newEgroup(row, scard)
				byKey[key] = g
				groups = append(groups, g)
			}
			g.addRow(row, sens)
		}
	} else {
		byKey := make(map[string]*egroup)
		buf := make([]byte, 4*len(dims))
		for row := start; row < rows; row++ {
			appendTupleKey(dims, row, buf)
			g := byKey[string(buf)]
			if g == nil {
				g = newEgroup(row, scard)
				byKey[string(buf)] = g
				groups = append(groups, g)
			}
			g.addRow(row, sens)
		}
	}

	// Match each appended group to an existing bucket through the
	// materialized string key (decoded once per group, not per row).
	oldIndex := make(map[string]int, len(old.Buckets))
	for i, b := range old.Buckets {
		oldIndex[b.Key] = i
	}
	sdict := enc.SensitiveDict()
	parts := make([]string, len(dims))
	out := make([]*Bucket, len(old.Buckets), len(old.Buckets)+len(groups))
	copy(out, old.Buckets)
	fresh := 0
	for _, g := range groups {
		key := keyString(dims, g.rep, parts)
		if i, ok := oldIndex[key]; ok {
			out[i] = appendMerged(old.Buckets[i], g, scard, sdict)
		} else {
			out = append(out, g.bucket(key, sdict))
			fresh++
		}
	}
	if fresh > 0 {
		// New keys joined the partition; restore the global key order (the
		// shared prefix is already sorted, so this is near-linear).
		sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	}
	return &Bucketization{Buckets: out, Source: enc.Table}, nil
}
