package bucket

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"ckprivacy/internal/hierarchy"
	"ckprivacy/internal/table"
)

// splitRows divides a table's rows into a base prefix and an appended
// suffix at a random cut (possibly empty on either side).
func splitRows(rng *rand.Rand, tab *table.Table) ([]table.Row, []table.Row) {
	cut := 1 + rng.Intn(tab.Len())
	return tab.Rows[:cut], tab.Rows[cut:]
}

// buildAppended encodes the base rows, appends the suffix through the
// append path, and returns the master view plus extended hierarchies; the
// parity harness compares its bucketizations against a from-scratch
// rebuild on the full table.
func buildAppended(t *testing.T, s *table.Schema, hs hierarchy.Set, base, extra []table.Row) (*table.Encoded, hierarchy.CompiledSet, int) {
	t.Helper()
	tab := table.New(s)
	for _, r := range base {
		tab.MustAppend(r)
	}
	enc := tab.Encode()
	chs, err := CompileHierarchies(enc, hs)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	delta, err := enc.Append(extra)
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	// Extend every compiled hierarchy whose column gained codes.
	for name, c := range chs {
		col := enc.Table.Schema.Index(name)
		if delta.NewValueCount(col) == 0 {
			continue
		}
		ext, err := c.Extend(hs[name], enc.Dicts[col].Values())
		if err != nil {
			t.Fatalf("extend %s: %v", name, err)
		}
		chs[name] = ext
	}
	return enc, chs, delta.Start
}

// TestAppendRowsParityRandom is the randomized append-parity property at
// the bucketization layer: for random tables, hierarchies and levels,
// bucketize(A) + AppendRows(B) must be byte-identical to a from-scratch
// FromGeneralizationEncoded (and FromGeneralization) on A ++ B.
func TestAppendRowsParityRandom(t *testing.T) {
	cases := 150
	if testing.Short() {
		cases = 30
	}
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < cases; i++ {
		tab, hs := randCase(rng)
		base, extra := splitRows(rng, tab)
		enc, chs, start := buildAppended(t, tab.Schema, hs, base, extra)
		levels := randLevels(rng, hs, nil)
		label := fmt.Sprintf("case %d cut %d levels %v", i, start, levels)

		old, err := FromGeneralizationEncoded(enc.Snapshot(), chs, levels)
		if err != nil {
			// The snapshot spans all rows (append already ran); levels are
			// valid by construction.
			t.Fatalf("%s: full-scan: %v", label, err)
		}
		// Rebuild the "before" bucketization over the base prefix only, as
		// the warm cache would have held it.
		baseTab := table.New(tab.Schema)
		for _, r := range base {
			baseTab.MustAppend(r)
		}
		baseEnc := baseTab.Encode()
		baseCHS, err := CompileHierarchies(baseEnc, hs)
		if err != nil {
			t.Fatalf("%s: base compile: %v", label, err)
		}
		before, err := FromGeneralizationEncoded(baseEnc, baseCHS, levels)
		if err != nil {
			t.Fatalf("%s: base scan: %v", label, err)
		}

		got, err := AppendRows(before, enc, chs, levels, start)
		if err != nil {
			t.Fatalf("%s: AppendRows: %v", label, err)
		}
		requireIdentical(t, old, got, label+" (vs encoded rebuild)")

		want, err := FromGeneralization(enc.Table, hs, levels)
		if err != nil {
			t.Fatalf("%s: string rebuild: %v", label, err)
		}
		requireIdentical(t, want, got, label+" (vs string rebuild)")

		// The old bucketization must be untouched (copy-on-write).
		requireIdentical(t, before, func() *Bucketization {
			b, err := FromGeneralizationEncoded(baseEnc, baseCHS, levels)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}(), label+" (before intact)")

		// An appended bucketization must keep working as a Coarsen source.
		coarseLevels := Levels{}
		for name, lvl := range levels {
			top := hs[name].Levels() - 1
			coarseLevels[name] = lvl + rng.Intn(top-lvl+1)
		}
		wantCoarse, err := FromGeneralizationEncoded(enc, chs, coarseLevels)
		if err != nil {
			t.Fatalf("%s: coarse scan: %v", label, err)
		}
		gotCoarse, err := Coarsen(got, enc, chs, coarseLevels)
		if err != nil {
			t.Fatalf("%s: coarsen appended: %v", label, err)
		}
		requireIdentical(t, wantCoarse, gotCoarse, label+" (coarsen after append)")
	}
}

// TestAppendRowsEmptyAndErrors covers the degenerate paths: an empty
// append re-anchors the partition on the snapshot, and out-of-range starts
// are rejected.
func TestAppendRowsEmptyAndErrors(t *testing.T) {
	tab := paperTable(t)
	hs := paperHierarchies()
	enc := tab.Encode()
	chs, err := CompileHierarchies(enc, hs)
	if err != nil {
		t.Fatal(err)
	}
	levels := Levels{"Zip": 1, "Age": 1}
	bz, err := FromGeneralizationEncoded(enc, chs, levels)
	if err != nil {
		t.Fatal(err)
	}
	same, err := AppendRows(bz, enc, chs, levels, enc.Rows())
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, bz, same, "empty append")
	if _, err := AppendRows(bz, enc, chs, levels, enc.Rows()+1); err == nil {
		t.Fatal("accepted start beyond the table")
	}
	if _, err := AppendRows(bz, enc, chs, levels, -1); err == nil {
		t.Fatal("accepted negative start")
	}
}

// TestAppendRowsNewSensitiveCode pins the histogram-growth path: appended
// rows introduce sensitive values the base table never saw, both into an
// existing bucket and into a new one, and the merged dense histograms must
// match a rebuild (including a subsequent Coarsen over the mixed-length
// histograms).
func TestAppendRowsNewSensitiveCode(t *testing.T) {
	sdom := make([]string, 40)
	for i := range sdom {
		sdom[i] = fmt.Sprintf("s%02d", i)
	}
	s, err := table.NewSchema([]table.Attribute{
		{Name: "Age", Kind: table.Numeric, Min: 0, Max: 99},
		{Name: "sens", Kind: table.Categorical, Domain: sdom},
	}, "sens")
	if err != nil {
		t.Fatal(err)
	}
	hs := hierarchy.Set{"Age": hierarchy.MustInterval("Age", []int{1, 10, 0})}
	base := []table.Row{{"11", "s00"}, {"12", "s01"}, {"21", "s00"}}
	extra := []table.Row{{"13", "s05"}, {"31", "s06"}, {"11", "s05"}}
	enc, chs, start := buildAppended(t, s, hs, base, extra)
	for _, levels := range []Levels{{}, {"Age": 1}, {"Age": 2}} {
		baseTab := table.New(s)
		for _, r := range base {
			baseTab.MustAppend(r)
		}
		baseEnc := baseTab.Encode()
		baseCHS, err := CompileHierarchies(baseEnc, hs)
		if err != nil {
			t.Fatal(err)
		}
		before, err := FromGeneralizationEncoded(baseEnc, baseCHS, levels)
		if err != nil {
			t.Fatal(err)
		}
		got, err := AppendRows(before, enc, chs, levels, start)
		if err != nil {
			t.Fatal(err)
		}
		want, err := FromGeneralizationEncoded(enc, chs, levels)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, want, got, fmt.Sprintf("new sensitive codes, levels %v", levels))
		// Coarsen from the appended result: untouched buckets carry
		// pre-append (shorter) dense histograms, exercising the <= merge.
		top := Levels{"Age": 2}
		wantTop, err := FromGeneralizationEncoded(enc, chs, top)
		if err != nil {
			t.Fatal(err)
		}
		gotTop, err := Coarsen(got, enc, chs, top)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, wantTop, gotTop, fmt.Sprintf("coarsen mixed histograms from %v", levels))
	}
}

// TestAppendRowsFallbackKeyPath drives the byte-tuple fallback through the
// append path: dimension cardinalities overflowing uint64 packing must
// still merge appended rows byte-identically.
func TestAppendRowsFallbackKeyPath(t *testing.T) {
	const nQI = 8
	attrs := make([]table.Attribute, 0, nQI+1)
	hs := hierarchy.Set{}
	for i := 0; i < nQI; i++ {
		name := fmt.Sprintf("q%d", i)
		attrs = append(attrs, table.Attribute{Name: name, Kind: table.Numeric, Min: 0, Max: 1 << 20})
		hs[name] = hierarchy.MustInterval(name, []int{1, 2, 0})
	}
	attrs = append(attrs, table.Attribute{Name: "sens", Kind: table.Categorical, Domain: []string{"a", "b"}})
	s, err := table.NewSchema(attrs, "sens")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	mkRow := func(r int) table.Row {
		row := make(table.Row, nQI+1)
		for c := 0; c < nQI; c++ {
			row[c] = strconv.Itoa(r*7 + c)
		}
		row[nQI] = []string{"a", "b"}[rng.Intn(2)]
		return row
	}
	var base, extra []table.Row
	for r := 0; r < 300; r++ {
		base = append(base, mkRow(r))
	}
	for r := 300; r < 340; r++ {
		extra = append(extra, mkRow(r))
	}
	enc, chs, start := buildAppended(t, s, hs, base, extra)
	dims, err := buildDims(enc, chs, Levels{})
	if err != nil {
		t.Fatal(err)
	}
	if packable(dims) {
		t.Fatal("fixture unexpectedly packable; fallback path not exercised")
	}
	for _, levels := range []Levels{{}, {"q0": 1, "q3": 1}, {"q0": 2, "q1": 2, "q2": 2}} {
		baseTab := table.New(s)
		for _, r := range base {
			baseTab.MustAppend(r)
		}
		baseEnc := baseTab.Encode()
		baseCHS, err := CompileHierarchies(baseEnc, hs)
		if err != nil {
			t.Fatal(err)
		}
		before, err := FromGeneralizationEncoded(baseEnc, baseCHS, levels)
		if err != nil {
			t.Fatal(err)
		}
		got, err := AppendRows(before, enc, chs, levels, start)
		if err != nil {
			t.Fatal(err)
		}
		want, err := FromGeneralizationEncoded(enc, chs, levels)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, want, got, fmt.Sprintf("fallback levels %v", levels))
	}
}
