package bucket

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"ckprivacy/internal/hierarchy"
	"ckprivacy/internal/parallel"
	"ckprivacy/internal/table"
)

// This file is the parity harness of the row-sharded scan: at every shard
// count — including counts exceeding the rows — and on both key paths,
// FromGeneralizationEncodedSharded must be byte-identical to the
// single-threaded scan and the string-path reference, and its results
// must keep composing with Coarsen and AppendRows exactly like
// single-threaded ones.

// shardCounts are the shard widths every parity case runs at, per the
// issue: serial, moderately parallel, wider than this container's cores.
var shardCounts = []int{1, 4, 8}

// pools are the parallelism budgets parity cases run under: nil (inline),
// a budget of 1 (degrades to inline but through the token machinery), and
// a real multi-worker budget.
func pools() map[string]*parallel.Pool {
	return map[string]*parallel.Pool{
		"nil-pool":    nil,
		"pool1":       parallel.NewPool(1),
		"pool4":       parallel.NewPool(4),
		"pool-percpu": parallel.NewPool(0),
	}
}

// TestShardedParityRandom is the randomized property test: on random
// tables, hierarchies and level vectors, the sharded scan at 1/4/8 shards
// under every pool shape is byte-identical to the string path and the
// single-threaded encoded path, and sharded-built fine bucketizations
// coarsen to the same result.
func TestShardedParityRandom(t *testing.T) {
	cases := 120
	if testing.Short() {
		cases = 25
	}
	rng := rand.New(rand.NewSource(17))
	ps := pools()
	for i := 0; i < cases; i++ {
		tab, hs := randCase(rng)
		enc := tab.Encode()
		chs, err := CompileHierarchies(enc, hs)
		if err != nil {
			t.Fatalf("case %d: compile: %v", i, err)
		}
		levels := randLevels(rng, hs, nil)
		want, err := FromGeneralization(tab, hs, levels)
		if err != nil {
			t.Fatalf("case %d: legacy: %v", i, err)
		}
		single, err := FromGeneralizationEncoded(enc, chs, levels)
		if err != nil {
			t.Fatalf("case %d: encoded: %v", i, err)
		}
		// Rotate pools across cases (running every pool × every shard count
		// × every case would dominate the suite for no extra coverage).
		poolName := []string{"nil-pool", "pool1", "pool4", "pool-percpu"}[i%4]
		pool := ps[poolName]
		for _, shards := range shardCounts {
			label := fmt.Sprintf("case %d levels %v shards %d %s", i, levels, shards, poolName)
			got, err := FromGeneralizationEncodedSharded(enc, chs, levels, shards, pool)
			if err != nil {
				t.Fatalf("%s: sharded: %v", label, err)
			}
			requireIdentical(t, want, got, label+" (vs string path)")
			requireIdentical(t, single, got, label+" (vs single-threaded)")

			// A sharded-built fine bucketization must be a valid Coarsen
			// source: derive a coarser vector from it and compare against a
			// direct scan at that vector.
			coarseLevels := Levels{}
			for name, lvl := range levels {
				top := hs[name].Levels() - 1
				coarseLevels[name] = lvl + rng.Intn(top-lvl+1)
			}
			wantCoarse, err := FromGeneralizationEncoded(enc, chs, coarseLevels)
			if err != nil {
				t.Fatalf("%s: coarse scan: %v", label, err)
			}
			gotCoarse, err := Coarsen(got, enc, chs, coarseLevels)
			if err != nil {
				t.Fatalf("%s: coarsen sharded: %v", label, err)
			}
			requireIdentical(t, wantCoarse, gotCoarse, label+" (coarsen from sharded)")
		}
	}
}

// TestShardedFallbackKeyPath runs the sharded scan on the byte-tuple
// fallback fixture (cardinality product overflows 64 bits): merging must
// group identically across the string-keyed shard results too.
func TestShardedFallbackKeyPath(t *testing.T) {
	tab, hs := fallbackCase(t)
	enc := tab.Encode()
	chs, err := CompileHierarchies(enc, hs)
	if err != nil {
		t.Fatal(err)
	}
	dims, err := buildDims(enc, chs, Levels{})
	if err != nil {
		t.Fatal(err)
	}
	if packable(dims) {
		t.Fatal("fixture unexpectedly packable; fallback path not exercised")
	}
	pool := parallel.NewPool(4)
	for _, levels := range []Levels{{}, {"q0": 1, "q3": 1}, {"q0": 2, "q1": 2, "q2": 2}} {
		want, err := FromGeneralizationEncoded(enc, chs, levels)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range shardCounts {
			got, err := FromGeneralizationEncodedSharded(enc, chs, levels, shards, pool)
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, want, got, fmt.Sprintf("fallback levels %v shards %d", levels, shards))
		}
	}
}

// TestShardedSparseSensitive drives the sparse-histogram merge: with a
// sensitive cardinality above the dense threshold, per-shard groups carry
// map histograms and the merge must fold them map-to-map.
func TestShardedSparseSensitive(t *testing.T) {
	const rows = 400
	sdom := make([]string, rows)
	for i := range sdom {
		sdom[i] = fmt.Sprintf("s%03d", i)
	}
	s, err := table.NewSchema([]table.Attribute{
		{Name: "Age", Kind: table.Numeric, Min: 0, Max: 99},
		{Name: "Sex", Kind: table.Categorical, Domain: []string{"M", "F"}},
		{Name: "sens", Kind: table.Categorical, Domain: sdom},
	}, "sens")
	if err != nil {
		t.Fatal(err)
	}
	hs := hierarchy.Set{
		"Age": hierarchy.MustInterval("Age", []int{1, 10, 0}),
		"Sex": hierarchy.NewSuppression("Sex", []string{"M", "F"}),
	}
	tab := table.New(s)
	rng := rand.New(rand.NewSource(5))
	for r := 0; r < rows; r++ {
		tab.MustAppend(table.Row{
			strconv.Itoa(rng.Intn(100)),
			[]string{"M", "F"}[rng.Intn(2)],
			sdom[r],
		})
	}
	enc := tab.Encode()
	if enc.SensitiveDict().Len() <= maxDenseSensitive {
		t.Fatalf("fixture cardinality %d does not exceed the dense threshold %d",
			enc.SensitiveDict().Len(), maxDenseSensitive)
	}
	chs, err := CompileHierarchies(enc, hs)
	if err != nil {
		t.Fatal(err)
	}
	pool := parallel.NewPool(4)
	for _, levels := range []Levels{{}, {"Age": 1}, {"Age": 2, "Sex": 1}} {
		want, err := FromGeneralizationEncoded(enc, chs, levels)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range shardCounts {
			got, err := FromGeneralizationEncodedSharded(enc, chs, levels, shards, pool)
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, want, got, fmt.Sprintf("sparse levels %v shards %d", levels, shards))
		}
	}
}

// TestShardedAppendRowsInteraction checks both directions of the
// AppendRows composition: a sharded-built base accepts an append patch,
// and the patched result matches a sharded rebuild of the grown table.
func TestShardedAppendRowsInteraction(t *testing.T) {
	cases := 40
	if testing.Short() {
		cases = 10
	}
	rng := rand.New(rand.NewSource(23))
	pool := parallel.NewPool(4)
	for i := 0; i < cases; i++ {
		tab, hs := randCase(rng)
		base, extra := splitRows(rng, tab)
		enc, chs, start := buildAppended(t, tab.Schema, hs, base, extra)
		levels := randLevels(rng, hs, nil)

		baseTab := table.New(tab.Schema)
		for _, r := range base {
			baseTab.MustAppend(r)
		}
		baseEnc := baseTab.Encode()
		baseCHS, err := CompileHierarchies(baseEnc, hs)
		if err != nil {
			t.Fatalf("case %d: base compile: %v", i, err)
		}
		want, err := FromGeneralization(enc.Table, hs, levels)
		if err != nil {
			t.Fatalf("case %d: string rebuild: %v", i, err)
		}
		for _, shards := range shardCounts {
			label := fmt.Sprintf("case %d cut %d levels %v shards %d", i, start, levels, shards)
			before, err := FromGeneralizationEncodedSharded(baseEnc, baseCHS, levels, shards, pool)
			if err != nil {
				t.Fatalf("%s: base scan: %v", label, err)
			}
			got, err := AppendRows(before, enc, chs, levels, start)
			if err != nil {
				t.Fatalf("%s: AppendRows: %v", label, err)
			}
			requireIdentical(t, want, got, label+" (append onto sharded base)")

			rebuilt, err := FromGeneralizationEncodedSharded(enc, chs, levels, shards, pool)
			if err != nil {
				t.Fatalf("%s: sharded rebuild: %v", label, err)
			}
			requireIdentical(t, want, rebuilt, label+" (sharded rebuild of grown table)")
		}
	}
}

// TestShardedDegenerateShapes pins the edge geometry: an empty table, a
// single row, and more shards than rows (shards clamp to the row count).
func TestShardedDegenerateShapes(t *testing.T) {
	tab, hs := randCase(rand.New(rand.NewSource(41)))
	enc := tab.Encode()
	chs, err := CompileHierarchies(enc, hs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := FromGeneralizationEncoded(enc, chs, Levels{})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{-3, 0, enc.Rows(), enc.Rows() + 7, 1 << 16} {
		got, err := FromGeneralizationEncodedSharded(enc, chs, Levels{}, shards, parallel.NewPool(4))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		requireIdentical(t, want, got, fmt.Sprintf("shards=%d", shards))
	}

	empty := table.New(enc.Table.Schema).Encode()
	emptyCHS, err := CompileHierarchies(empty, hs)
	if err != nil {
		t.Fatal(err)
	}
	bz, err := FromGeneralizationEncodedSharded(empty, emptyCHS, Levels{}, 8, parallel.NewPool(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(bz.Buckets) != 0 {
		t.Fatalf("empty table produced %d buckets", len(bz.Buckets))
	}
}
