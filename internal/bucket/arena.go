package bucket

import (
	"sort"
	"sync"
	"sync/atomic"

	"ckprivacy/internal/hierarchy"
	"ckprivacy/internal/table"
)

// This file is the batch-aware coarsening path the sweep planner executes
// on: CoarsenInto derives a coarser bucketization from a finer one like
// Coarsen, but merges into caller-provided scratch drawn from a pooled
// Arena and precomputes every output size from the source bucketization,
// so a planned sweep materializing dozens of lattice nodes allocates each
// histogram and tuple slab exactly once and reuses its grouping maps,
// permutation and key buffers across the nodes of a frontier slot.
//
// The output contract is Coarsen's, byte for byte: same keys, same bucket
// order, same tuple order, same frequency tables. Three mechanical
// differences make it cheaper, never different:
//
//   - groups that merge no fine buckets (one source bucket → one output
//     bucket) share the source bucket's tuple, frequency and histogram
//     storage outright under the re-decoded key instead of copying it;
//   - tuples of merged groups are written by a single ascending row scan
//     into an exactly-sized slab (epoch-tagged row→group scatter), so the
//     per-group sort.Ints of the append-then-sort path disappears;
//   - dense sensitive histograms of all merged groups live in one slab
//     sized nGroups × cardinality up front.

// Arena is the pooled scratch of coarsening calls: grouping maps (cleared,
// not reallocated, between calls), the row→group tag array, and the key /
// permutation / cursor buffers. An Arena is not safe for concurrent use;
// obtain one per goroutine with GetArena and return it with PutArena when
// the sweep slot is done. The zero value is ready to use.
type Arena struct {
	by64    map[uint64]int
	byStr   map[string]int
	buf     []byte   // byte-tuple key buffer (unpackable dimension sets)
	groups  []cgroup // per-call group table
	groupOf []int32  // fine-bucket index → group index (-1: empty bucket)
	rowTag  []uint64 // row → epoch<<32|group for merged-group scatter
	epoch   uint32
	cursor  []int
	keys    []string
	perm    []int
	parts   []string
}

// cgroup is the pass-one state of one coarse group: its representative
// row, the index of the first fine bucket that mapped to it, how many fine
// buckets and rows it absorbs, and — for groups that actually merge — its
// offset in the tuple slab and its dense-histogram slot.
type cgroup struct {
	rep   int
	first int32
	nb    int32
	rows  int
	off   int
	mi    int32 // merged-group slot; -1 when the group is a single bucket
}

// arenaPool recycles Arenas across sweeps; arenaGets and arenaAllocs feed
// ArenaStats (reuses = gets − pool misses).
var (
	arenaPool   = sync.Pool{New: func() any { arenaAllocs.Add(1); return &Arena{} }}
	arenaGets   atomic.Uint64
	arenaAllocs atomic.Uint64
)

// GetArena returns a pooled Arena for a run of coarsening calls. Pair
// every GetArena with a PutArena when the holder is done (the poolleak
// analyzer enforces this at call sites like it does sync.Pool's own
// Get/Put).
//
//ckvet:ignore poolleak ownership transfers to the caller, which pairs GetArena with a deferred PutArena
func GetArena() *Arena {
	arenaGets.Add(1)
	return arenaPool.Get().(*Arena)
}

// PutArena returns an Arena to the pool. The caller must not use it
// afterwards.
func PutArena(ar *Arena) { arenaPool.Put(ar) }

// ArenaStats reports how many arenas were handed out and how many of those
// were pool reuses rather than fresh allocations — the sweep benchmarks
// export the reuse count and the serving layer graphs both on /metrics.
func ArenaStats() (gets, reuses uint64) {
	g, a := arenaGets.Load(), arenaAllocs.Load()
	if a > g { // a Get is counted before its pool miss; never report negative
		a = g
	}
	return g, g - a
}

// reset prepares the arena for one coarsening call over nFine source
// buckets and nDims dimensions.
func (ar *Arena) reset(nDims, nFine int) {
	if ar.by64 == nil {
		ar.by64 = make(map[uint64]int)
	} else {
		clear(ar.by64)
	}
	if ar.byStr == nil {
		ar.byStr = make(map[string]int)
	} else {
		clear(ar.byStr)
	}
	if cap(ar.buf) < 4*nDims {
		ar.buf = make([]byte, 4*nDims)
	}
	if cap(ar.groupOf) < nFine {
		ar.groupOf = make([]int32, nFine)
	}
	ar.groupOf = ar.groupOf[:nFine]
	if cap(ar.parts) < nDims {
		ar.parts = make([]string, nDims)
	}
	ar.parts = ar.parts[:nDims]
}

// nextEpoch sizes the row-tag array for `rows` rows and advances the
// epoch, returning the tag prefix (epoch<<32) rows of this call are marked
// with. Stale tags from earlier calls never match the new epoch, so the
// array is never cleared.
func (ar *Arena) nextEpoch(rows int) uint64 {
	if cap(ar.rowTag) < rows {
		ar.rowTag = make([]uint64, rows)
		ar.epoch = 0
	}
	ar.rowTag = ar.rowTag[:cap(ar.rowTag)]
	ar.epoch++
	if ar.epoch == 0 { // epoch wrapped: old tags would alias the new epoch
		clear(ar.rowTag)
		ar.epoch = 1
	}
	return uint64(ar.epoch) << 32
}

// buffers returns the per-group cursor, key and permutation scratch sized
// for n groups.
func (ar *Arena) buffers(n int) (cur []int, keys []string, perm []int) {
	if cap(ar.cursor) < n {
		ar.cursor = make([]int, n)
	}
	if cap(ar.keys) < n {
		ar.keys = make([]string, n)
	}
	if cap(ar.perm) < n {
		ar.perm = make([]int, n)
	}
	return ar.cursor[:n], ar.keys[:n], ar.perm[:n]
}

// CoarsenInto is Coarsen merging through a pooled Arena: byte-identical
// output, with the grouping maps, row-tag array and ordering buffers drawn
// from ar instead of allocated per call, exact-size tuple and histogram
// slabs, and storage shared from fine buckets that coarsen alone. A nil ar
// borrows one from the pool for the duration of the call. See Coarsen for
// the derivation's precondition and the byte-identity contract.
func CoarsenInto(fine *Bucketization, enc *table.Encoded, chs hierarchy.CompiledSet, levels Levels, ar *Arena) (*Bucketization, error) {
	if ar == nil {
		ar = GetArena()
		defer PutArena(ar)
	}
	dims, err := buildDims(enc, chs, levels)
	if err != nil {
		return nil, err
	}
	sens := enc.SensitiveCol()
	scard := enc.SensitiveDict().Len()
	ar.reset(len(dims), len(fine.Buckets))

	// Pass 1: assign every non-empty fine bucket a coarse group through its
	// representative row (the nested-coarsening law: all its rows
	// generalize identically), accumulating each group's bucket and row
	// counts so every output slab below is allocated at exact size.
	groups := ar.groups[:0]
	groupOf := ar.groupOf
	if packable(dims) {
		by := ar.by64
		for fi, b := range fine.Buckets {
			if len(b.Tuples) == 0 {
				groupOf[fi] = -1
				continue
			}
			key := packKey(dims, b.Tuples[0])
			gi, ok := by[key]
			if !ok {
				gi = len(groups)
				by[key] = gi
				groups = append(groups, cgroup{rep: b.Tuples[0], first: int32(fi), mi: -1})
			}
			g := &groups[gi]
			g.nb++
			g.rows += len(b.Tuples)
			groupOf[fi] = int32(gi)
		}
	} else {
		by := ar.byStr
		buf := ar.buf[:4*len(dims)]
		for fi, b := range fine.Buckets {
			if len(b.Tuples) == 0 {
				groupOf[fi] = -1
				continue
			}
			appendTupleKey(dims, b.Tuples[0], buf)
			gi, ok := by[string(buf)]
			if !ok {
				gi = len(groups)
				by[string(buf)] = gi
				groups = append(groups, cgroup{rep: b.Tuples[0], first: int32(fi), mi: -1})
			}
			g := &groups[gi]
			g.nb++
			g.rows += len(b.Tuples)
			groupOf[fi] = int32(gi)
		}
	}
	ar.groups = groups

	// Lay out the merged groups (nb ≥ 2): slab offsets for tuples and a
	// dense-histogram slot each. Groups of one fine bucket (mi = -1) never
	// touch a slab — they share the source bucket's storage below.
	nMerged, mergedRows := 0, 0
	for gi := range groups {
		if groups[gi].nb > 1 {
			groups[gi].mi = int32(nMerged)
			groups[gi].off = mergedRows
			nMerged++
			mergedRows += groups[gi].rows
		}
	}

	cur, keys, perm := ar.buffers(len(groups))

	var tupSlab []int
	dense := scard <= maxDenseSensitive
	var histSlab []int32
	if nMerged > 0 {
		// Merged tuples: tag each merged row with its group, then scatter
		// by one ascending row scan — the slab sections come out in global
		// row order, exactly what the append-then-sort path sorted into.
		tupSlab = make([]int, mergedRows)
		rows := enc.Rows()
		tag := ar.nextEpoch(rows)
		for fi, b := range fine.Buckets {
			gi := groupOf[fi]
			if gi < 0 || groups[gi].mi < 0 {
				continue
			}
			t := tag | uint64(uint32(gi))
			for _, row := range b.Tuples {
				ar.rowTag[row] = t
			}
		}
		for gi := range groups {
			cur[gi] = groups[gi].off
		}
		for row, t := range ar.rowTag[:rows] {
			if t&^uint64(0xffffffff) != tag {
				continue
			}
			gi := uint32(t)
			tupSlab[cur[gi]] = row
			cur[gi]++
		}
		if dense {
			// Merged dense histograms: one slab, summed slice-to-slice from
			// fine histograms when they carry one (a histogram shorter than
			// the current code space is still exact — it predates an append,
			// and codes are never reassigned), recounted from rows otherwise.
			histSlab = make([]int32, nMerged*scard)
			for fi, b := range fine.Buckets {
				gi := groupOf[fi]
				if gi < 0 || groups[gi].mi < 0 {
					continue
				}
				mi := int(groups[gi].mi)
				hist := histSlab[mi*scard : (mi+1)*scard : (mi+1)*scard]
				if b.scounts != nil && len(b.scounts) <= scard {
					for v, n := range b.scounts {
						hist[v] += n
					}
				} else {
					for _, row := range b.Tuples {
						hist[sens[row]]++
					}
				}
			}
		}
	}

	// Decode the keys once per group and order the output; a monotone
	// re-key leaves the source order intact, in which case the sort is
	// skipped (keysAreSorted is the linear pre-check of finishGroups too).
	parts := ar.parts[:len(dims)]
	for gi := range groups {
		keys[gi] = keyString(dims, groups[gi].rep, parts)
	}
	for i := range perm {
		perm[i] = i
	}
	if !keysAreSorted(keys) {
		sort.Slice(perm, func(i, j int) bool { return keys[perm[i]] < keys[perm[j]] })
	}

	sdict := enc.SensitiveDict()
	bz := &Bucketization{Source: enc.Table, Buckets: make([]*Bucket, len(groups))}
	for oi, gi := range perm {
		g := &groups[gi]
		if g.nb == 1 {
			bz.Buckets[oi] = rekeyBucket(fine.Buckets[g.first], keys[gi])
			continue
		}
		sec := tupSlab[g.off : g.off+g.rows : g.off+g.rows]
		eg := egroup{rep: g.rep, tuples: sec}
		if dense {
			mi := int(g.mi)
			eg.scounts = histSlab[mi*scard : (mi+1)*scard : (mi+1)*scard]
		} else {
			sp := make(map[uint32]int32, 8)
			for _, row := range sec {
				sp[sens[row]]++
			}
			eg.sparse = sp
		}
		bz.Buckets[oi] = eg.bucket(keys[gi], sdict)
	}
	return bz, nil
}

// keysAreSorted reports whether keys are already in ascending order — the
// linear pre-check that lets coarsening and finishGroups skip their output
// sort when the re-key map is monotone in the source order.
func keysAreSorted(keys []string) bool {
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return false
		}
	}
	return true
}
