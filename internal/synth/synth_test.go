package synth

import (
	"fmt"
	"testing"

	"ckprivacy/internal/bucket"
)

// TestDeterminism is the satellite requirement: the same seed (and
// configuration) always yields the identical table, and the batching of
// the stream cannot change any row.
func TestDeterminism(t *testing.T) {
	cfg := Config{Rows: 5000, Seed: 42, Regions: 20, Occupations: 12}
	gen := func() *Generator {
		g, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}

	whole := gen().Next(cfg.Rows)
	if len(whole) != cfg.Rows {
		t.Fatalf("emitted %d rows, want %d", len(whole), cfg.Rows)
	}

	again := gen().Next(cfg.Rows)
	for i := range whole {
		for c := range whole[i] {
			if whole[i][c] != again[i][c] {
				t.Fatalf("row %d col %d: %q != %q across runs with equal seed", i, c, whole[i][c], again[i][c])
			}
		}
	}

	// Batch-split invariance: odd batch sizes concatenate to the same rows.
	g := gen()
	var chunked []Row
	for _, n := range []int{1, 7, 100, 1 << 20} {
		for _, r := range g.Next(n) {
			chunked = append(chunked, r)
		}
	}
	if g.Remaining() != 0 || g.Next(1) != nil {
		t.Fatalf("stream not exhausted: %d remaining", g.Remaining())
	}
	if len(chunked) != len(whole) {
		t.Fatalf("chunked stream emitted %d rows, want %d", len(chunked), len(whole))
	}
	for i := range whole {
		for c := range whole[i] {
			if whole[i][c] != chunked[i][c] {
				t.Fatalf("row %d col %d: %q != %q across batch splits", i, c, whole[i][c], chunked[i][c])
			}
		}
	}

	// A different seed must actually change the stream.
	other, err := New(Config{Rows: cfg.Rows, Seed: 43, Regions: 20, Occupations: 12})
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for i, r := range other.Next(cfg.Rows) {
		for c := range r {
			if r[c] != whole[i][c] {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("seeds 42 and 43 generated identical tables")
	}
}

// Row aliases the table row type for the test's scratch slice.
type Row = []string

// TestBundleAnalyzable checks the generated bundle wires up: rows respect
// the schema, hierarchies compile over the encoded view, and the default
// levels bucketize.
func TestBundleAnalyzable(t *testing.T) {
	b, err := Bundle(Config{Rows: 2000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if b.Table.Len() != 2000 {
		t.Fatalf("bundle has %d rows, want 2000", b.Table.Len())
	}
	enc, chs, ok := b.Encoded()
	if !ok {
		t.Fatal("hierarchies failed to compile over the generated table")
	}
	bz, err := bucket.FromGeneralizationEncoded(enc, chs, b.DefaultLevels)
	if err != nil {
		t.Fatal(err)
	}
	if len(bz.Buckets) == 0 {
		t.Fatal("default-levels bucketization is empty")
	}

	// Skew should concentrate mass: the most frequent region must clearly
	// exceed a uniform share.
	counts := map[string]int{}
	col := b.Table.Schema.Index("Region")
	for _, r := range b.Table.Rows {
		counts[r[col]]++
	}
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	uniform := b.Table.Len() / DefaultRegions
	if max <= uniform {
		t.Fatalf("top region count %d not above uniform share %d; skew not applied", max, uniform)
	}
}

// TestConfigValidation pins the rejection of nonsense configurations.
func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Rows: -1},
		{Regions: 1},
		{Occupations: 1},
		{AgeMax: -5},
		{Skew: -0.5},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted an invalid configuration", cfg)
		}
	}
	g, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	c := g.Config()
	if c.Rows != DefaultRows || c.Regions != DefaultRegions || c.Occupations != DefaultOccupations {
		t.Fatalf("defaults not applied: %+v", c)
	}
}

// TestHierarchiesCoverEveryValue compiles the hierarchy set against a
// maximal-cardinality table so appends can never outrun the compiled
// domains (domains are closed: every value a generator can emit is in the
// schema).
func TestHierarchiesCoverEveryValue(t *testing.T) {
	for _, cfg := range []Config{{Rows: 500}, {Rows: 500, Regions: 7, Occupations: 300, AgeMax: 10}} {
		b, err := Bundle(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, ok := b.Encoded(); !ok {
			t.Fatalf("config %+v: hierarchies do not cover the generated values", cfg)
		}
		for name, h := range b.Hierarchies {
			if h.Levels() < 2 {
				t.Errorf("%s hierarchy has %d levels, want >= 2", name, h.Levels())
			}
		}
	}
}

func ExampleGenerator_Next() {
	g, _ := New(Config{Rows: 3, Seed: 1, Regions: 5, Occupations: 5})
	for _, row := range g.Next(3) {
		fmt.Println(len(row))
	}
	// Output:
	// 4
	// 4
	// 4
}
