// Package synth generates ACS-style synthetic microdata at configurable
// scale: census-flavored columns (age, region, education, occupation)
// with tunable cardinalities and value skew, sampled from a seeded stream
// so the same configuration always yields the same table — row for row —
// no matter how the stream is batched. It exists to exercise the
// million-row paths (sharded bucketization, streaming appends, the
// loadtest harness) that the 45k-row Adult table cannot stress.
package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"ckprivacy/internal/bucket"
	"ckprivacy/internal/dataload"
	"ckprivacy/internal/hierarchy"
	"ckprivacy/internal/table"
)

// Defaults for zero Config fields.
const (
	DefaultRows        = 100_000
	DefaultRegions     = 51 // states + DC, ACS-style
	DefaultAgeMax      = 95
	DefaultOccupations = 25
	DefaultSkew        = 1.07
)

// regionsPerDivision groups regions into census-division-style parents at
// hierarchy level 1.
const regionsPerDivision = 5

// Config parameterizes generation. The zero value means the defaults
// above; every field is validated by New.
type Config struct {
	// Rows is the total number of rows the generator emits.
	Rows int
	// Seed drives the deterministic sampler; equal seeds (with equal
	// remaining fields) yield identical tables.
	Seed int64
	// Regions is the cardinality of the Region attribute.
	Regions int
	// AgeMax bounds the Age attribute (inclusive; minimum age is 0).
	AgeMax int
	// Occupations is the cardinality of the sensitive Occupation
	// attribute.
	Occupations int
	// Skew is the power-law exponent of the categorical samplers: value i
	// is drawn with weight (i+1)^-Skew. 0 means uniform; larger means a
	// heavier head. The occupation distribution is additionally rotated
	// per education group, so coarse buckets get distinct skewed
	// histograms — the shape the disclosure checks exercise.
	Skew float64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Rows == 0 {
		c.Rows = DefaultRows
	}
	if c.Regions == 0 {
		c.Regions = DefaultRegions
	}
	if c.AgeMax == 0 {
		c.AgeMax = DefaultAgeMax
	}
	if c.Occupations == 0 {
		c.Occupations = DefaultOccupations
	}
	if c.Skew == 0 {
		c.Skew = DefaultSkew
	}
	return c
}

// educations is the fixed Education domain (level 1 groups it into
// NoDegree / College / Advanced).
var educations = []string{
	"LessThanHS", "HSGrad", "SomeCollege", "Associate",
	"Bachelor", "Master", "Professional", "Doctorate",
}

// eduGroup maps an education index to its level-1 group label.
func eduGroup(i int) string {
	switch {
	case i < 2:
		return "NoDegree"
	case i < 5:
		return "College"
	default:
		return "Advanced"
	}
}

// Generator emits the configured table as a deterministic row stream.
// Rows come off one seeded source in order, so splitting the stream into
// different Next batch sizes cannot change any row.
type Generator struct {
	cfg     Config
	rng     *rand.Rand
	emitted int

	schema  *table.Schema
	regions []string
	regionW *weighted
	occW    *weighted
	eduW    *weighted
}

// New validates the configuration and returns a generator positioned at
// row 0.
func New(cfg Config) (*Generator, error) {
	cfg = cfg.withDefaults()
	if cfg.Rows < 0 {
		return nil, fmt.Errorf("synth: negative row count %d", cfg.Rows)
	}
	if cfg.Regions < 2 {
		return nil, fmt.Errorf("synth: need at least 2 regions, got %d", cfg.Regions)
	}
	if cfg.AgeMax < 1 {
		return nil, fmt.Errorf("synth: need AgeMax >= 1, got %d", cfg.AgeMax)
	}
	if cfg.Occupations < 2 {
		return nil, fmt.Errorf("synth: need at least 2 occupations, got %d", cfg.Occupations)
	}
	if cfg.Skew < 0 {
		return nil, fmt.Errorf("synth: negative skew %g", cfg.Skew)
	}
	g := &Generator{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		regions: regionNames(cfg.Regions),
		regionW: newWeighted(powerWeights(cfg.Regions, cfg.Skew)),
		occW:    newWeighted(powerWeights(cfg.Occupations, cfg.Skew)),
		eduW:    newWeighted(powerWeights(len(educations), cfg.Skew/2)),
	}
	s, err := table.NewSchema(attributes(cfg, g.regions), "Occupation")
	if err != nil {
		return nil, fmt.Errorf("synth: %w", err)
	}
	g.schema = s
	return g, nil
}

// Config returns the generator's resolved configuration.
func (g *Generator) Config() Config { return g.cfg }

// Schema returns the generated table's schema (Age, Region, Education;
// Occupation sensitive).
func (g *Generator) Schema() *table.Schema { return g.schema }

// Remaining reports how many rows the stream has left.
func (g *Generator) Remaining() int { return g.cfg.Rows - g.emitted }

// Next emits the next batch of up to n rows, nil once the stream is
// exhausted. The concatenation of all batches is independent of the batch
// sizes requested.
func (g *Generator) Next(n int) []table.Row {
	if n > g.Remaining() {
		n = g.Remaining()
	}
	if n <= 0 {
		return nil
	}
	rows := make([]table.Row, n)
	for i := range rows {
		rows[i] = g.row()
	}
	g.emitted += len(rows)
	return rows
}

// row samples one row. Age rises then decays like a population pyramid;
// occupation skew is rotated by the education group so distinct coarse
// buckets carry distinct sensitive histograms.
func (g *Generator) row() table.Row {
	age := g.sampleAge()
	region := g.regions[g.regionW.sample(g.rng)]
	edu := g.eduW.sample(g.rng)
	occ := g.occW.sample(g.rng)
	switch eduGroup(edu) {
	case "College":
		occ = (occ + g.cfg.Occupations/3) % g.cfg.Occupations
	case "Advanced":
		occ = (occ + 2*g.cfg.Occupations/3) % g.cfg.Occupations
	}
	return table.Row{
		strconv.Itoa(age),
		region,
		educations[edu],
		fmt.Sprintf("occ%02d", occ),
	}
}

// sampleAge draws from a triangular-ish profile over [0, AgeMax] peaking
// around 40% of the range.
func (g *Generator) sampleAge() int {
	peak := float64(g.cfg.AgeMax) * 0.4
	u := g.rng.Float64()
	v := g.rng.Float64()
	a := peak * u
	b := peak + (float64(g.cfg.AgeMax)-peak)*v
	if g.rng.Float64() < 0.55 {
		return int(b)
	}
	return int(a)
}

// Table generates the full configured table in one call.
func (g *Generator) Table() (*table.Table, error) {
	t := table.New(g.schema)
	t.Rows = make([]table.Row, 0, g.Remaining())
	for {
		batch := g.Next(1 << 16)
		if batch == nil {
			return t, nil
		}
		for _, r := range batch {
			if err := t.Append(r); err != nil {
				return nil, fmt.Errorf("synth: generated invalid row: %w", err)
			}
		}
	}
}

// attributes builds the schema columns for a configuration.
func attributes(cfg Config, regions []string) []table.Attribute {
	return []table.Attribute{
		{Name: "Age", Kind: table.Numeric, Min: 0, Max: cfg.AgeMax},
		{Name: "Region", Kind: table.Categorical, Domain: regions},
		{Name: "Education", Kind: table.Categorical, Domain: educations},
		{Name: "Occupation", Kind: table.Categorical, Domain: occupationNames(cfg.Occupations)},
	}
}

// regionNames enumerates the Region domain ("R00", "R01", ...).
func regionNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("R%02d", i)
	}
	return names
}

// occupationNames enumerates the Occupation domain.
func occupationNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("occ%02d", i)
	}
	return names
}

// Hierarchies returns the generalization hierarchies matching a
// configuration: Age in 1/5/25-wide intervals then suppressed, Region
// grouped into divisions of 5 then suppressed, Education grouped into
// degree tiers then suppressed.
func Hierarchies(cfg Config) hierarchy.Set {
	cfg = cfg.withDefaults()
	regions := regionNames(cfg.Regions)
	regionL1 := make(map[string]string, len(regions))
	regionL2 := make(map[string]string, len(regions))
	for i, r := range regions {
		regionL1[r] = fmt.Sprintf("D%02d", i/regionsPerDivision)
		regionL2[r] = hierarchy.Suppressed
	}
	eduL1 := make(map[string]string, len(educations))
	eduL2 := make(map[string]string, len(educations))
	for i, e := range educations {
		eduL1[e] = eduGroup(i)
		eduL2[e] = hierarchy.Suppressed
	}
	return hierarchy.Set{
		"Age":       hierarchy.MustInterval("Age", []int{1, 5, 25, 0}),
		"Region":    hierarchy.MustLevelled("Region", regions, []map[string]string{regionL1, regionL2}),
		"Education": hierarchy.MustLevelled("Education", educations, []map[string]string{eduL1, eduL2}),
	}
}

// QI returns the quasi-identifier names in lattice order.
func QI() []string { return []string{"Age", "Region", "Education"} }

// DefaultLevels is a mid-lattice generalization useful for one-shot
// disclosure queries on synthetic tables.
func DefaultLevels() bucket.Levels {
	return bucket.Levels{"Age": 2, "Region": 1, "Education": 1}
}

// Bundle generates the full table and wraps it with the matching
// hierarchies as a ready-to-analyze dataset bundle.
func Bundle(cfg Config) (*dataload.Bundle, error) {
	g, err := New(cfg)
	if err != nil {
		return nil, err
	}
	tab, err := g.Table()
	if err != nil {
		return nil, err
	}
	return &dataload.Bundle{
		Name:          "synth",
		Table:         tab,
		Hierarchies:   Hierarchies(g.cfg),
		QI:            QI(),
		DefaultLevels: DefaultLevels(),
	}, nil
}

// Spec renders a configuration plus a pregenerated row batch as the
// declarative dataset description the daemon's registration endpoint
// accepts (dataload.Spec is the wire format). The batch usually comes
// from Next so the remaining stream can be appended afterwards.
func Spec(cfg Config, rows []table.Row) dataload.Spec {
	cfg = cfg.withDefaults()
	regions := regionNames(cfg.Regions)
	regionL1 := make(map[string]string, len(regions))
	regionL2 := make(map[string]string, len(regions))
	for i, r := range regions {
		regionL1[r] = fmt.Sprintf("D%02d", i/regionsPerDivision)
		regionL2[r] = hierarchy.Suppressed
	}
	eduL1 := make(map[string]string, len(educations))
	eduL2 := make(map[string]string, len(educations))
	for i, e := range educations {
		eduL1[e] = eduGroup(i)
		eduL2[e] = hierarchy.Suppressed
	}
	var csv strings.Builder
	csv.WriteString("Age,Region,Education,Occupation\n")
	for _, r := range rows {
		csv.WriteString(strings.Join(r, ","))
		csv.WriteByte('\n')
	}
	return dataload.Spec{
		Attributes: []dataload.AttrSpec{
			{Name: "Age", Kind: "numeric", Min: 0, Max: cfg.AgeMax},
			{Name: "Region", Kind: "categorical", Domain: regions},
			{Name: "Education", Kind: "categorical", Domain: educations},
			{Name: "Occupation", Kind: "categorical", Domain: occupationNames(cfg.Occupations)},
		},
		Sensitive: "Occupation",
		Hierarchies: []dataload.HierarchySpec{
			{Attribute: "Age", Kind: "interval", Widths: []int{1, 5, 25, 0}},
			{Attribute: "Region", Kind: "levels", Levels: []map[string]string{regionL1, regionL2}},
			{Attribute: "Education", Kind: "levels", Levels: []map[string]string{eduL1, eduL2}},
		},
		QI:            QI(),
		CSV:           csv.String(),
		DefaultLevels: DefaultLevels(),
	}
}

// weighted samples indexes proportionally to fixed weights via binary
// search over the cumulative distribution.
type weighted struct {
	cum []float64
}

func newWeighted(w []float64) *weighted {
	cum := make([]float64, len(w))
	total := 0.0
	for i, x := range w {
		total += x
		cum[i] = total
	}
	return &weighted{cum: cum}
}

func (w *weighted) sample(rng *rand.Rand) int {
	x := rng.Float64() * w.cum[len(w.cum)-1]
	return sort.SearchFloat64s(w.cum, x)
}

// powerWeights returns (i+1)^-skew for i in [0, n) — Zipf-like head
// weight; skew 0 is uniform.
func powerWeights(n int, skew float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = math.Pow(float64(i+1), -skew)
	}
	return w
}
