// Package replica turns a ckprivacyd process into a read replica of a
// leader daemon. A Follower discovers the leader's persisted datasets,
// bootstraps each from the leader's raw snapshot bytes, then tails the
// leader's WAL over HTTP — fetching committed bytes from a byte cursor,
// decoding them with the store's RecordScanner, and applying every record
// through the server's replay path so follower state is byte-identical to
// the leader's at every applied version. Replication is "recovery that
// never stops": the same snapshot + WAL machinery that survives a crash
// drives continuous catch-up, and a follower that persists locally
// resumes from its own store (its local WAL, written through the same
// deterministic encoder, is byte-identical to the leader's prefix — the
// local size IS the resume cursor) without re-fetching a snapshot.
//
// Failure handling: a 409 wal_superseded (the leader compacted the
// generation away) or a local persistence failure re-bootstraps from a
// fresh snapshot; a corrupt byte stream (store.ErrCorrupt) is surfaced
// and re-fetched from the last applied cursor with backoff; a
// verification failure (server.ErrReplicaDiverged) is fatal for the
// dataset — it stops replicating and refuses reads rather than serve
// divergent state.
package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"ckprivacy/internal/server"
	"ckprivacy/internal/store"
)

// Options configures a Follower.
type Options struct {
	// LeaderURL is the leader daemon's base URL, e.g. "http://leader:8080".
	LeaderURL string
	// Server is the local follower daemon (built with Config.ReadOnly);
	// the Follower installs snapshots and applies WAL records into it.
	Server *server.Server
	// Client is the HTTP client for leader requests. Nil means a default
	// client whose timeout comfortably exceeds the long-poll budget.
	Client *http.Client
	// PollInterval is the dataset-discovery cadence (and the floor for
	// readiness re-checks). Default 2s.
	PollInterval time.Duration
	// WaitMS is the long-poll budget sent with each WAL fetch; the leader
	// clamps it to its own maximum. Default 10000.
	WaitMS int
	// RetryMin/RetryMax bound the per-dataset exponential backoff after
	// fetch or apply failures. Defaults 100ms and 5s.
	RetryMin time.Duration
	RetryMax time.Duration
	// Datasets, when non-empty, restricts replication to these names.
	Datasets []string
}

func (o Options) withDefaults() Options {
	if o.PollInterval <= 0 {
		o.PollInterval = 2 * time.Second
	}
	if o.WaitMS <= 0 {
		o.WaitMS = 10000
	}
	if o.RetryMin <= 0 {
		o.RetryMin = 100 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 5 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: time.Duration(o.WaitMS)*time.Millisecond + 15*time.Second}
	}
	return o
}

// errSuperseded is the in-process form of the leader's 409 wal_superseded.
var errSuperseded = errors.New("wal generation superseded")

// Follower replicates a leader's datasets into a local read-only server.
type Follower struct {
	opts Options

	mu    sync.Mutex
	tails map[string]*tail
	ready bool

	readyCh chan struct{} // closed when every discovered dataset caught up
	kick    chan struct{} // nudges the run loop to re-check readiness

	wg sync.WaitGroup
}

// tail is one dataset's replication loop state.
type tail struct {
	name    string
	base    int64 // WAL generation (snapshot version) being tailed
	cursor  int64 // leader WAL byte offset applied through
	applied int   // records applied since base

	mu     sync.Mutex
	caught bool  // ever fully caught up
	fatal  error // divergence; the tail has stopped
}

func (t *tail) caughtUp() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.caught || t.fatal != nil
}

// New validates options and builds a Follower; call Run to start it.
func New(opts Options) (*Follower, error) {
	if opts.LeaderURL == "" {
		return nil, fmt.Errorf("replica: LeaderURL is required")
	}
	if opts.Server == nil {
		return nil, fmt.Errorf("replica: Server is required")
	}
	if !opts.Server.ReadOnly() {
		return nil, fmt.Errorf("replica: the local server must be built with Config.ReadOnly")
	}
	if _, err := url.Parse(opts.LeaderURL); err != nil {
		return nil, fmt.Errorf("replica: bad LeaderURL: %w", err)
	}
	return &Follower{
		opts:    opts.withDefaults(),
		tails:   make(map[string]*tail),
		readyCh: make(chan struct{}),
		kick:    make(chan struct{}, 1),
	}, nil
}

// Run replicates until ctx is cancelled: it polls the leader's dataset
// list, runs one tailing loop per dataset, and marks the local server
// ready (serving /readyz 200) once every discovered dataset has completed
// initial catch-up. Returns nil on cancellation.
func (f *Follower) Run(ctx context.Context) error {
	ticker := time.NewTicker(f.opts.PollInterval)
	defer ticker.Stop()
	for {
		infos, err := f.fetchDatasets(ctx)
		if err == nil {
			for _, info := range infos {
				f.ensureTail(ctx, info)
			}
			f.maybeReady()
		}
		select {
		case <-ctx.Done():
			f.wg.Wait()
			return nil
		case <-ticker.C:
		case <-f.kick:
			f.maybeReady()
		}
	}
}

// WaitCaughtUp blocks until the follower has marked the server ready
// (every dataset discovered so far finished initial catch-up) or ctx
// expires.
func (f *Follower) WaitCaughtUp(ctx context.Context) error {
	select {
	case <-f.readyCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// wants reports whether the follower should replicate name.
func (f *Follower) wants(name string) bool {
	if len(f.opts.Datasets) == 0 {
		return true
	}
	for _, d := range f.opts.Datasets {
		if d == name {
			return true
		}
	}
	return false
}

// ensureTail starts a tailing loop for a newly discovered dataset.
func (f *Follower) ensureTail(ctx context.Context, info datasetInfo) {
	if !f.wants(info.Name) {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, exists := f.tails[info.Name]; exists {
		return
	}
	t := &tail{name: info.Name}
	f.tails[info.Name] = t
	f.wg.Add(1)
	go f.runTail(ctx, t, info.SnapshotVersion)
}

// maybeReady flips the server to ready once every known dataset has
// caught up at least once (a stopped-on-divergence tail counts: readiness
// must not wedge on a dataset that will never serve anyway).
func (f *Follower) maybeReady() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.ready {
		return
	}
	for _, t := range f.tails {
		if !t.caughtUp() {
			return
		}
	}
	f.ready = true
	f.opts.Server.SetReady(true)
	close(f.readyCh)
}

// kickReady nudges the run loop to re-evaluate readiness.
func (f *Follower) kickReady() {
	select {
	case f.kick <- struct{}{}:
	default:
	}
}

// runTail is one dataset's replication loop: resume from the local store
// when its generation still matches the leader's, bootstrap from a fresh
// snapshot otherwise, then fetch-decode-apply until cancelled.
func (f *Follower) runTail(ctx context.Context, t *tail, leaderBase int64) {
	defer f.wg.Done()
	backoff := f.opts.RetryMin
	sleep := func() {
		timer := time.NewTimer(backoff)
		defer timer.Stop()
		select {
		case <-ctx.Done():
		case <-timer.C:
		}
		backoff *= 2
		if backoff > f.opts.RetryMax {
			backoff = f.opts.RetryMax
		}
	}

	needBootstrap := true
	if base, offset, records, ok := f.opts.Server.ReplicaResume(t.name); ok && base == leaderBase {
		// The local store already holds this generation: its committed WAL
		// size is the resume cursor — no snapshot transfer needed.
		t.base, t.cursor, t.applied = base, offset, records
		needBootstrap = false
	}

	for ctx.Err() == nil {
		if needBootstrap {
			if err := f.bootstrap(ctx, t); err != nil {
				if ctx.Err() != nil {
					return
				}
				sleep()
				continue
			}
			needBootstrap = false
			backoff = f.opts.RetryMin
		}
		batch, err := f.fetchWAL(ctx, t)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			if errors.Is(err, errSuperseded) {
				needBootstrap = true
				continue
			}
			sleep()
			continue
		}
		if err := f.applyBatch(t, batch); err != nil {
			if errors.Is(err, server.ErrReplicaDiverged) {
				// Fatal: the server marked the dataset diverged and refuses
				// reads; replication of this dataset ends here.
				t.mu.Lock()
				t.fatal = err
				t.mu.Unlock()
				f.kickReady()
				return
			}
			f.opts.Server.SetReplicaErr(t.name, err)
			if !errors.Is(err, store.ErrCorrupt) {
				// Not a stream decode problem — most likely the local store
				// failed mid log-then-apply. Its on-disk state is suspect, so
				// rebuild it wholesale from a fresh snapshot.
				needBootstrap = true
			}
			// A corrupt stream re-fetches from the last applied cursor: every
			// applied record advanced the cursor, so nothing replays twice.
			sleep()
			continue
		}
		backoff = f.opts.RetryMin
	}
}

// bootstrap installs the dataset from the leader's current snapshot and
// positions the cursor at the head of its WAL generation.
func (f *Follower) bootstrap(ctx context.Context, t *tail) error {
	resp, err := f.get(ctx, "/v1/replication/"+url.PathEscape(t.name)+"/snapshot", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpFailure("snapshot", resp)
	}
	base, err := strconv.ParseInt(resp.Header.Get("X-Ckp-Replication-Base"), 10, 64)
	if err != nil {
		return fmt.Errorf("replica: snapshot response lacks a base version header: %w", err)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if err := f.opts.Server.InstallReplicaSnapshot(t.name, raw); err != nil {
		return err
	}
	t.base = base
	t.cursor = store.WALHeaderLen
	t.applied = 0
	return nil
}

// walBatch is one WAL fetch: raw bytes plus the leader's committed
// coordinates at read time.
type walBatch struct {
	data      []byte
	committed int64
	records   int
}

// fetchWAL reads committed WAL bytes from the tail's cursor, long-polling
// at the tip. A 409 maps to errSuperseded.
func (f *Follower) fetchWAL(ctx context.Context, t *tail) (walBatch, error) {
	q := url.Values{}
	q.Set("from", strconv.FormatInt(t.cursor, 10))
	q.Set("base", strconv.FormatInt(t.base, 10))
	q.Set("wait_ms", strconv.Itoa(f.opts.WaitMS))
	resp, err := f.get(ctx, "/v1/replication/"+url.PathEscape(t.name)+"/wal", q)
	if err != nil {
		return walBatch{}, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		io.Copy(io.Discard, resp.Body)
		return walBatch{}, errSuperseded
	default:
		return walBatch{}, httpFailure("wal", resp)
	}
	var batch walBatch
	if batch.committed, err = strconv.ParseInt(resp.Header.Get("X-Ckp-Replication-Committed"), 10, 64); err != nil {
		return walBatch{}, fmt.Errorf("replica: wal response lacks a committed header: %w", err)
	}
	if batch.records, err = strconv.Atoi(resp.Header.Get("X-Ckp-Replication-Records")); err != nil {
		return walBatch{}, fmt.Errorf("replica: wal response lacks a records header: %w", err)
	}
	if batch.data, err = io.ReadAll(resp.Body); err != nil {
		return walBatch{}, err
	}
	return batch, nil
}

// applyBatch decodes and applies every complete record in the batch,
// advancing the cursor past each applied record. A partial frame at the
// end of the batch is simply discarded — the next fetch re-reads it from
// the cursor — which is what makes arbitrary stream truncation safe.
func (f *Follower) applyBatch(t *tail, batch walBatch) error {
	sc, err := store.NewRecordScanner(t.base, t.cursor)
	if err != nil {
		return err
	}
	sc.Feed(batch.data)
	for {
		rec, ok, err := sc.Next()
		if err != nil {
			return err // ErrCorrupt: surfaced, then re-fetched from the cursor
		}
		if !ok {
			break
		}
		if err := f.opts.Server.ApplyReplicated(t.name, rec); err != nil {
			return err
		}
		t.cursor = sc.Offset()
		t.applied++
	}
	caught := t.cursor >= batch.committed
	f.opts.Server.SetReplicaProgress(t.name, server.ReplicaProgress{
		AppliedVersion:  f.appliedVersion(t.name),
		AppliedOffset:   t.cursor,
		AppliedRecords:  t.applied,
		LeaderCommitted: batch.committed,
		LeaderRecords:   batch.records,
		CaughtUp:        caught,
	})
	if caught {
		t.mu.Lock()
		first := !t.caught
		t.caught = true
		t.mu.Unlock()
		if first {
			f.kickReady()
		}
	}
	return nil
}

// appliedVersion reads the locally applied dataset version for progress
// reports; 0 when the dataset is not installed.
func (f *Follower) appliedVersion(name string) int64 {
	return f.opts.Server.DatasetVersion(name)
}

// datasetInfo mirrors the leader's replication dataset listing.
type datasetInfo struct {
	Name            string `json:"name"`
	Version         int64  `json:"version"`
	Rows            int    `json:"rows"`
	SnapshotVersion int64  `json:"snapshot_version"`
	WALCommitted    int64  `json:"wal_committed"`
	WALRecords      int    `json:"wal_records"`
}

// fetchDatasets polls the leader's replicable dataset list.
func (f *Follower) fetchDatasets(ctx context.Context) ([]datasetInfo, error) {
	resp, err := f.get(ctx, "/v1/replication/datasets", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpFailure("datasets", resp)
	}
	var body struct {
		Datasets []datasetInfo `json:"datasets"`
	}
	if err := decodeJSON(resp.Body, &body); err != nil {
		return nil, err
	}
	return body.Datasets, nil
}

// get issues one GET against the leader.
func (f *Follower) get(ctx context.Context, path string, q url.Values) (*http.Response, error) {
	u := f.opts.LeaderURL + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	return f.opts.Client.Do(req)
}

// decodeJSON strictly decodes one JSON document from r.
func decodeJSON(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	return dec.Decode(v)
}

// httpFailure renders a non-OK leader response as an error, body included
// when small.
func httpFailure(what string, resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return fmt.Errorf("replica: leader %s request failed: %s: %s", what, resp.Status, body)
}
