package replica_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ckprivacy/internal/dataload"
	"ckprivacy/internal/replica"
	"ckprivacy/internal/server"
	"ckprivacy/internal/store"
)

// ---- harness ----

// newLeader builds a persisted leader daemon over dir with a registered
// hospital dataset.
func newLeader(t testing.TB, dir string, compactBytes int64) (*server.Server, *httptest.Server) {
	t.Helper()
	if compactBytes == 0 {
		compactBytes = 1 << 30
	}
	mgr, err := store.Open(store.Options{Dir: dir, Fsync: false, CompactBytes: compactBytes})
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Config{Store: mgr})
	if err := s.Register("h", dataload.Hospital()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		shutdown(t, s)
	})
	return s, ts
}

// newFollower builds a read-only follower server; dir == "" keeps it
// memory-only.
func newFollower(t testing.TB, dir string) (*server.Server, *httptest.Server) {
	t.Helper()
	cfg := server.Config{ReadOnly: true}
	if dir != "" {
		mgr, err := store.Open(store.Options{Dir: dir, Fsync: false, CompactBytes: 1 << 30})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = mgr
	}
	s := server.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		shutdown(t, s)
	})
	return s, ts
}

func shutdown(t testing.TB, s *server.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = s.Shutdown(ctx)
}

// startFollowing runs a Follower against the leader until test cleanup.
func startFollowing(t testing.TB, opts replica.Options) *replica.Follower {
	t.Helper()
	if opts.PollInterval == 0 {
		opts.PollInterval = 25 * time.Millisecond
	}
	if opts.WaitMS == 0 {
		opts.WaitMS = 500
	}
	if opts.RetryMin == 0 {
		opts.RetryMin = 5 * time.Millisecond
	}
	if opts.RetryMax == 0 {
		opts.RetryMax = 100 * time.Millisecond
	}
	f, err := replica.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = f.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return f
}

func waitCaughtUp(t testing.TB, f *replica.Follower) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := f.WaitCaughtUp(ctx); err != nil {
		t.Fatalf("follower never caught up: %v", err)
	}
}

func postJSON(t testing.TB, url string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("unmarshal %q: %v", data, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t testing.TB, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("unmarshal %q: %v", data, err)
		}
	}
	return resp.StatusCode
}

// appendRows appends rows to the leader's hospital dataset and returns the
// new version.
func appendRows(t testing.TB, base string, rows [][]string) int64 {
	t.Helper()
	var resp struct {
		Version int64 `json:"version"`
	}
	if code := postJSON(t, base+"/v1/datasets/h/rows", map[string]any{"rows": rows}, &resp); code != http.StatusOK {
		t.Fatalf("append = %d", code)
	}
	return resp.Version
}

func createRelease(t testing.TB, base string) {
	t.Helper()
	if code := postJSON(t, base+"/v1/datasets/h/releases", map[string]any{}, nil); code != http.StatusCreated {
		t.Fatalf("release = %d", code)
	}
}

// observedState is everything a read client can see about the dataset at
// one version: disclosure, verdict and (current-version only) the release
// audit. elapsed_ms is stripped; the rest must match byte-for-byte between
// leader and follower.
type observedState struct {
	disc  map[string]any
	check map[string]any
}

func captureState(t testing.TB, base, query string) observedState {
	t.Helper()
	var st observedState
	if code := postJSON(t, base+"/v1/disclosure"+query, map[string]any{"dataset": "h", "k": 2}, &st.disc); code != http.StatusOK {
		t.Fatalf("disclosure%s = %d: %v", query, code, st.disc)
	}
	delete(st.disc, "elapsed_ms")
	if code := postJSON(t, base+"/v1/check"+query,
		map[string]any{"dataset": "h", "criterion": "ck", "c": 0.7, "k": 1}, &st.check); code != http.StatusOK {
		t.Fatalf("check%s = %d", query, code)
	}
	delete(st.check, "elapsed_ms")
	return st
}

func requireSameState(t *testing.T, label string, want, got observedState) {
	t.Helper()
	if !reflect.DeepEqual(want.disc, got.disc) {
		w, _ := json.Marshal(want.disc)
		g, _ := json.Marshal(got.disc)
		t.Errorf("%s: disclosure diverged:\nleader   %s\nfollower %s", label, w, g)
	}
	if !reflect.DeepEqual(want.check, got.check) {
		t.Errorf("%s: check diverged: leader %v, follower %v", label, want.check, got.check)
	}
}

// releasesAudit fetches the sequential-release audit with elapsed_ms
// stripped.
func releasesAudit(t testing.TB, base string) map[string]any {
	t.Helper()
	var audit map[string]any
	if code := getJSON(t, base+"/v1/datasets/h/releases?k=1", &audit); code != http.StatusOK {
		t.Fatalf("releases audit = %d", code)
	}
	delete(audit, "elapsed_ms")
	return audit
}

// waitFollowerVersion polls until the follower's applied version reaches
// want.
func waitFollowerVersion(t testing.TB, base string, want int64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var info struct {
			Version int64 `json:"version"`
		}
		if code := getJSON(t, base+"/v1/datasets/h", &info); code == http.StatusOK && info.Version >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at version %d, want %d", info.Version, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

var extraRows = [][]string{
	{"14850", "26", "M", "flu"},
	{"14860", "22", "F", "heart-disease"},
	{"14853", "23", "M", "mumps"},
}

// ---- satellite 1: end-to-end parity ----

// TestFollowerEndToEndParity runs two in-process daemons — a leader taking
// mixed append/release traffic and a live follower tailing it — and
// asserts the follower serves byte-identical answers: at the current
// version, at every historical version via ?version= pinning, and for the
// sequential-release audit.
func TestFollowerEndToEndParity(t *testing.T) {
	_, leaderTS := newLeader(t, t.TempDir(), 0)

	// Phase 1 traffic lands before the follower exists: it must arrive via
	// the snapshot + WAL bootstrap.
	byVersion := map[int64]observedState{1: captureState(t, leaderTS.URL, "")}
	v := appendRows(t, leaderTS.URL, extraRows)
	byVersion[v] = captureState(t, leaderTS.URL, "")
	createRelease(t, leaderTS.URL)

	followerSrv, followerTS := newFollower(t, t.TempDir())
	f := startFollowing(t, replica.Options{LeaderURL: leaderTS.URL, Server: followerSrv})
	waitCaughtUp(t, f)

	// Phase 2 traffic lands while the follower tails live.
	v = appendRows(t, leaderTS.URL, [][]string{{"14870", "44", "F", "heart-disease"}})
	byVersion[v] = captureState(t, leaderTS.URL, "")
	createRelease(t, leaderTS.URL)
	v = appendRows(t, leaderTS.URL, [][]string{{"14871", "45", "M", "flu"}, {"14872", "31", "F", "mumps"}})
	byVersion[v] = captureState(t, leaderTS.URL, "")
	waitFollowerVersion(t, followerTS.URL, v)

	// Current answers and every pinned version must match the leader's
	// synchronous captures exactly.
	requireSameState(t, "current", captureState(t, leaderTS.URL, ""), captureState(t, followerTS.URL, ""))
	for version, want := range byVersion {
		q := "?version=" + strconv.FormatInt(version, 10)
		requireSameState(t, "version "+strconv.FormatInt(version, 10), want, captureState(t, followerTS.URL, q))
	}
	if want, got := releasesAudit(t, leaderTS.URL), releasesAudit(t, followerTS.URL); !reflect.DeepEqual(want, got) {
		w, _ := json.Marshal(want)
		g, _ := json.Marshal(got)
		t.Errorf("release audit diverged:\nleader   %s\nfollower %s", w, g)
	}

	// Writes stay rejected while replication runs.
	var e struct {
		Code string `json:"code"`
	}
	if code := postJSON(t, followerTS.URL+"/v1/datasets/h/rows",
		map[string]any{"rows": extraRows}, &e); code != http.StatusForbidden || e.Code != "read_only" {
		t.Errorf("follower write = %d/%q, want 403/read_only", code, e.Code)
	}
	// And the follower reports itself caught up with zero lag.
	var info struct {
		Replication struct {
			CaughtUp   bool   `json:"caught_up"`
			LagRecords int    `json:"lag_records"`
			Error      string `json:"error"`
		} `json:"replication"`
	}
	if code := getJSON(t, followerTS.URL+"/v1/datasets/h", &info); code != http.StatusOK {
		t.Fatalf("follower info = %d", code)
	}
	if !info.Replication.CaughtUp || info.Replication.LagRecords != 0 || info.Replication.Error != "" {
		t.Errorf("follower replication block = %+v, want caught up, 0 lag, no error", info.Replication)
	}
}

// ---- satellite 2: chaos ----

// corruptingTransport mangles WAL response bodies: a third pass clean, a
// third are truncated at a random byte offset, a third get one byte
// flipped. The follower must converge anyway — truncation discards the
// partial frame, a flip fails the CRC and is re-fetched — and must never
// diverge.
type corruptingTransport struct {
	base http.RoundTripper

	mu      sync.Mutex
	rng     *rand.Rand
	mangled int
}

func (c *corruptingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := c.base.RoundTrip(req)
	if err != nil || !strings.HasSuffix(req.URL.Path, "/wal") || resp.StatusCode != http.StatusOK {
		return resp, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	switch c.rng.Intn(3) {
	case 1: // truncate anywhere, mid-record and mid-length-prefix included
		if len(body) > 0 {
			body = body[:c.rng.Intn(len(body))]
			c.mangled++
		}
	case 2: // flip one byte; the record CRC must catch it
		if len(body) > 0 {
			body[c.rng.Intn(len(body))] ^= 0x41
			c.mangled++
		}
	}
	c.mu.Unlock()
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	return resp, nil
}

func (c *corruptingTransport) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mangled
}

// TestFollowerChaosCorruptedStream ships a workload through a transport
// that randomly truncates and bit-flips the WAL stream. The follower must
// end byte-identical to the leader — corruption may slow it down but can
// never make it apply a damaged record.
func TestFollowerChaosCorruptedStream(t *testing.T) {
	_, leaderTS := newLeader(t, t.TempDir(), 0)
	ct := &corruptingTransport{base: http.DefaultTransport, rng: rand.New(rand.NewSource(7))}
	followerSrv, followerTS := newFollower(t, "")
	f := startFollowing(t, replica.Options{
		LeaderURL: leaderTS.URL,
		Server:    followerSrv,
		Client:    &http.Client{Transport: ct, Timeout: 10 * time.Second},
	})

	var finalVersion int64
	for i := 0; i < 8; i++ {
		finalVersion = appendRows(t, leaderTS.URL, extraRows)
		if i%3 == 0 {
			createRelease(t, leaderTS.URL)
		}
	}
	waitCaughtUp(t, f)
	waitFollowerVersion(t, followerTS.URL, finalVersion)

	if ct.count() == 0 {
		t.Fatal("the chaos transport never mangled a response; the test exercised nothing")
	}
	requireSameState(t, "after chaos", captureState(t, leaderTS.URL, ""), captureState(t, followerTS.URL, ""))
	if want, got := releasesAudit(t, leaderTS.URL), releasesAudit(t, followerTS.URL); !reflect.DeepEqual(want, got) {
		t.Errorf("release audit diverged after chaos")
	}
	var info struct {
		Replication struct {
			CaughtUp bool   `json:"caught_up"`
			Error    string `json:"error"`
		} `json:"replication"`
	}
	getJSON(t, followerTS.URL+"/v1/datasets/h", &info)
	if strings.Contains(info.Replication.Error, "diverged") {
		t.Fatalf("corrupted stream caused divergence: %q", info.Replication.Error)
	}
}

// countingTransport counts snapshot fetches.
type countingTransport struct {
	base http.RoundTripper

	mu        sync.Mutex
	snapshots int
}

func (c *countingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if strings.HasSuffix(req.URL.Path, "/snapshot") {
		c.mu.Lock()
		c.snapshots++
		c.mu.Unlock()
	}
	return c.base.RoundTrip(req)
}

func (c *countingTransport) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snapshots
}

// TestFollowerKillResumeWithoutSnapshot kills a persisted follower
// (abandoned mid-run, nothing flushed beyond its WAL) and reboots a fresh
// process over the same data dir: recovery must resume tailing from the
// local committed WAL size — zero snapshot fetches — and still converge on
// the leader's post-kill traffic.
func TestFollowerKillResumeWithoutSnapshot(t *testing.T) {
	_, leaderTS := newLeader(t, t.TempDir(), 0)
	appendRows(t, leaderTS.URL, extraRows)
	createRelease(t, leaderTS.URL)

	followerDir := t.TempDir()

	// First follower process: catch up, then die abruptly.
	func() {
		srv1, _ := newFollower(t, followerDir)
		f1, err := replica.New(replica.Options{
			LeaderURL:    leaderTS.URL,
			Server:       srv1,
			PollInterval: 25 * time.Millisecond,
			WaitMS:       500,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() { defer close(done); _ = f1.Run(ctx) }()
		waitCaughtUp(t, f1)
		cancel() // kill -9: no graceful teardown of replication state
		<-done
	}()

	// The leader moves on while the follower is down.
	finalVersion := appendRows(t, leaderTS.URL, [][]string{{"14880", "52", "F", "flu"}})
	createRelease(t, leaderTS.URL)

	// Second process over the same dir: recover locally, resume by cursor.
	srv2, ts2 := newFollower(t, followerDir)
	if _, err := srv2.RecoverAll(); err != nil {
		t.Fatalf("follower recovery: %v", err)
	}
	if got := srv2.DatasetVersion("h"); got != 2 {
		t.Fatalf("recovered follower at version %d, want 2 (pre-kill state)", got)
	}
	counting := &countingTransport{base: http.DefaultTransport}
	f2 := startFollowing(t, replica.Options{
		LeaderURL: leaderTS.URL,
		Server:    srv2,
		Client:    &http.Client{Transport: counting, Timeout: 10 * time.Second},
	})
	waitCaughtUp(t, f2)
	waitFollowerVersion(t, ts2.URL, finalVersion)

	if n := counting.count(); n != 0 {
		t.Errorf("rebooted follower fetched %d snapshots; the local WAL cursor should have been enough", n)
	}
	requireSameState(t, "after reboot", captureState(t, leaderTS.URL, ""), captureState(t, ts2.URL, ""))
	if want, got := releasesAudit(t, leaderTS.URL), releasesAudit(t, ts2.URL); !reflect.DeepEqual(want, got) {
		t.Errorf("release audit diverged after reboot")
	}
}

// TestFollowerSupersededRebootstrap compacts the leader's WAL out from
// under a caught-up follower (CompactBytes so small every append
// compacts). The follower's stale cursor gets 409 wal_superseded and must
// transparently re-bootstrap from the fresh snapshot generation.
func TestFollowerSupersededRebootstrap(t *testing.T) {
	_, leaderTS := newLeader(t, t.TempDir(), 1)
	counting := &countingTransport{base: http.DefaultTransport}
	followerSrv, followerTS := newFollower(t, "")
	f := startFollowing(t, replica.Options{
		LeaderURL: leaderTS.URL,
		Server:    followerSrv,
		Client:    &http.Client{Transport: counting, Timeout: 10 * time.Second},
	})
	waitCaughtUp(t, f)
	first := counting.count()
	if first == 0 {
		t.Fatal("initial catch-up fetched no snapshot")
	}

	// Every append compacts: the generation the follower tails disappears.
	var finalVersion int64
	for i := 0; i < 3; i++ {
		finalVersion = appendRows(t, leaderTS.URL, extraRows)
	}
	waitFollowerVersion(t, followerTS.URL, finalVersion)

	if counting.count() <= first {
		t.Errorf("follower caught up without re-bootstrapping after compaction (snapshots %d -> %d)",
			first, counting.count())
	}
	requireSameState(t, "after compaction", captureState(t, leaderTS.URL, ""), captureState(t, followerTS.URL, ""))
}

// ---- satellite 6: catch-up throughput ----

// BenchmarkFollowerCatchup measures full follower catch-up over HTTP —
// snapshot bootstrap plus WAL decode/apply — in records per second.
func BenchmarkFollowerCatchup(b *testing.B) {
	_, leaderTS := newLeader(b, b.TempDir(), 0)
	const records = 64
	for i := 0; i < records; i++ {
		appendRows(b, leaderTS.URL, [][]string{
			{"1485" + strconv.Itoa(i%10), strconv.Itoa(20 + i%60), "M", "flu"},
		})
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		followerSrv := server.New(server.Config{ReadOnly: true})
		f, err := replica.New(replica.Options{
			LeaderURL:    leaderTS.URL,
			Server:       followerSrv,
			PollInterval: 10 * time.Millisecond,
			WaitMS:       500,
		})
		if err != nil {
			b.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() { defer close(done); _ = f.Run(ctx) }()
		waitCtx, waitCancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := f.WaitCaughtUp(waitCtx); err != nil {
			b.Fatal(err)
		}
		waitCancel()
		cancel()
		<-done
		if v := followerSrv.DatasetVersion("h"); v != records+1 {
			b.Fatalf("follower ended at version %d, want %d", v, records+1)
		}
		shutdownCtx, sc := context.WithTimeout(context.Background(), 5*time.Second)
		_ = followerSrv.Shutdown(shutdownCtx)
		sc()
	}
	b.StopTimer()
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}
