package core

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"

	"ckprivacy/internal/bucket"
	"ckprivacy/internal/worlds"
)

// TestExactMatchesOracleExactly asserts *rational equality* — no tolerance
// at all — between the exact DP and the exponential oracle on random small
// instances. This is the strongest correctness statement in the package.
func TestExactMatchesOracleExactly(t *testing.T) {
	if testing.Short() {
		t.Skip("exponential oracle")
	}
	e := NewEngine()
	checked := 0
	f := func(raw []byte, kRaw uint8) bool {
		groups := groupsFromRaw(raw)
		if groups == nil {
			return true
		}
		k := int(kRaw) % 3
		bz := bucket.FromValues(groups...)
		dp, err := e.ExactMaxDisclosure(bz, k)
		if err != nil {
			return false
		}
		in := asInstance(t, groups)
		res, err := in.MaxDisclosureCommonConsequent(k, worlds.BruteOptions{})
		if err != nil {
			return false
		}
		checked++
		if dp.Cmp(res.Prob) != 0 {
			t.Logf("groups=%v k=%d dp=%s oracle=%s", groups, k, dp.RatString(), res.Prob.RatString())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	if checked < 30 {
		t.Fatalf("only %d effective comparisons", checked)
	}
}

// TestExactMatchesFloat keeps the fast float path honest against the exact
// path on larger random instances and ks.
func TestExactMatchesFloat(t *testing.T) {
	e := NewEngine()
	f := func(raw []byte, kRaw uint8) bool {
		groups := groupsFromRaw(raw)
		if groups == nil {
			return true
		}
		k := int(kRaw) % 6
		bz := bucket.FromValues(groups...)
		exact, err1 := e.ExactMaxDisclosure(bz, k)
		fl, err2 := e.MaxDisclosure(bz, k)
		if err1 != nil || err2 != nil {
			return false
		}
		ex, _ := exact.Float64()
		return math.Abs(ex-fl) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestExactHandValues(t *testing.T) {
	e := NewEngine()
	bz := fig3()
	cases := []struct {
		k        int
		num, den int64
	}{
		{0, 2, 5},
		{1, 2, 3},
		{2, 1, 1},
	}
	for _, c := range cases {
		got, err := e.ExactMaxDisclosure(bz, c.k)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(big.NewRat(c.num, c.den)) != 0 {
			t.Errorf("k=%d: %s, want %d/%d", c.k, got.RatString(), c.num, c.den)
		}
	}
	cross, err := e.ExactMaxDisclosureOpt(bz, 1, Options{ForbidSameBucketAntecedent: true})
	if err != nil {
		t.Fatal(err)
	}
	if cross.Cmp(big.NewRat(10, 19)) != 0 {
		t.Errorf("cross-bucket = %s, want 10/19", cross.RatString())
	}
}

// TestIsCKSafeExactBoundary exercises the strict threshold exactly at the
// maximum — the case the float path cannot decide reliably.
func TestIsCKSafeExactBoundary(t *testing.T) {
	e := NewEngine()
	bz := fig3() // exact max at k=1 is 2/3
	safe, err := e.IsCKSafeExact(bz, big.NewRat(2, 3), 1)
	if err != nil || safe {
		t.Errorf("c=2/3 exactly: safe=%v err=%v, want unsafe (strict)", safe, err)
	}
	safe, err = e.IsCKSafeExact(bz, big.NewRat(2000001, 3000000), 1)
	if err != nil || !safe {
		t.Errorf("c=2/3+ε: safe=%v err=%v, want safe", safe, err)
	}
	if _, err := e.IsCKSafeExact(bz, nil, 1); err == nil {
		t.Error("nil threshold accepted")
	}
	if _, err := e.IsCKSafeExact(bz, big.NewRat(3, 2), 1); err == nil {
		t.Error("threshold > 1 accepted")
	}
	if _, err := e.IsCKSafeExact(nil, big.NewRat(1, 2), 1); err == nil {
		t.Error("nil bucketization accepted")
	}
}

// TestExactResolvesFloatBoundary reconstructs the ill-conditioned instance
// found during development (histograms {9,7,2,2} and {6,5,5,4}, threshold
// 9/20): the float implication path computes 0.44999999999999996 while the
// true maximum is exactly 9/20, so the float strict comparison calls it
// safe; the exact path correctly does not.
func TestExactResolvesFloatBoundary(t *testing.T) {
	g1 := append(append(append([]string{}, repeat("a", 9)...), repeat("b", 7)...), "c", "c", "d", "d")
	g2 := append(append(append([]string{}, repeat("a", 6)...), repeat("b", 5)...), repeat("c", 5)...)
	g2 = append(g2, repeat("d", 4)...)
	bz := bucket.FromValues(g1, g2)

	e := NewEngine()
	exact, err := e.ExactMaxDisclosure(bz, 0)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Cmp(big.NewRat(9, 20)) != 0 {
		t.Fatalf("exact k=0 max = %s, want 9/20", exact.RatString())
	}
	safe, err := e.IsCKSafeExact(bz, big.NewRat(9, 20), 0)
	if err != nil || safe {
		t.Errorf("exact strict comparison at the boundary: safe=%v, want false", safe)
	}
	// The negation closed form agrees exactly too.
	neg, err := ExactNegationMaxDisclosure(bz, 0)
	if err != nil {
		t.Fatal(err)
	}
	if neg.Cmp(exact) != 0 {
		t.Errorf("exact negation k=0 = %s, want %s", neg.RatString(), exact.RatString())
	}
}

// TestExactNegationMatchesFloat checks the two negation paths agree.
func TestExactNegationMatchesFloat(t *testing.T) {
	f := func(raw []byte, kRaw uint8) bool {
		groups := groupsFromRaw(raw)
		if groups == nil {
			return true
		}
		k := int(kRaw) % 5
		bz := bucket.FromValues(groups...)
		exact, err1 := ExactNegationMaxDisclosure(bz, k)
		fl, err2 := NegationMaxDisclosure(bz, k)
		if err1 != nil || err2 != nil {
			return false
		}
		ex, _ := exact.Float64()
		return math.Abs(ex-fl) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	if _, err := ExactNegationMaxDisclosure(nil, 1); err == nil {
		t.Error("nil bucketization accepted")
	}
}

func repeat(v string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = v
	}
	return out
}
