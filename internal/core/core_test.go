package core

import (
	"math"
	"math/big"
	"strconv"
	"testing"
	"testing/quick"

	"ckprivacy/internal/bucket"
	"ckprivacy/internal/worlds"
)

const eps = 1e-9

// figure3Groups is the paper's Figure 3 bucketization.
var figure3Groups = [][]string{
	{"flu", "flu", "lung", "lung", "mumps"},
	{"flu", "flu", "breast", "ovarian", "heart"},
}

func fig3() *bucket.Bucketization {
	return bucket.FromValues(figure3Groups...)
}

// asInstance mirrors a FromValues bucketization into a worlds.Instance with
// matching person names (decimal tuple ids).
func asInstance(t *testing.T, groups [][]string) worlds.Instance {
	t.Helper()
	var bs []worlds.Bucket
	next := 0
	for _, g := range groups {
		wb := worlds.Bucket{}
		for _, v := range g {
			wb.Persons = append(wb.Persons, strconv.Itoa(next))
			wb.Values = append(wb.Values, v)
			next++
		}
		bs = append(bs, wb)
	}
	in, err := worlds.New(bs...)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func ratFloat(r *big.Rat) float64 {
	f, _ := r.Float64()
	return f
}

func TestM1ComputeHandValues(t *testing.T) {
	cases := []struct {
		hist []int
		j    int
		want float64
	}{
		{[]int{2, 2, 1}, 0, 1},
		{[]int{2, 2, 1}, 1, 3.0 / 5}, // avoid flu
		{[]int{2, 2, 1}, 2, 1.0 / 5}, // one person avoids flu+lung
		{[]int{2, 2, 1}, 3, 0},       // one person avoids everything
		{[]int{2, 1, 1, 1}, 1, 3.0 / 5},
		// Two persons both avoiding the top value, (3/5)(2/4) = 3/10,
		// beats one person avoiding the top two values, (5-3)/5 = 2/5.
		{[]int{2, 1, 1, 1}, 2, 3.0 / 10},
		{[]int{1, 1, 1, 1}, 1, 3.0 / 4},
		{[]int{1, 1, 1, 1}, 2, 1.0 / 2}, // (4-2)/4 ties (3/4)(2/3)
		{[]int{1, 1, 1, 1}, 3, 1.0 / 4}, // (4-3)/4
		{[]int{1, 1, 1, 1}, 4, 0},
		{[]int{5}, 1, 0}, // single value: any negation kills it
		{[]int{3}, 0, 1},
		{[]int{1}, 1, 0},
	}
	for _, c := range cases {
		got := m1Compute(c.hist, c.j)
		if math.Abs(got.val-c.want) > eps {
			t.Errorf("m1Compute(%v, %d) = %v, want %v", c.hist, c.j, got.val, c.want)
		}
	}
}

func TestM1ComputeComposition(t *testing.T) {
	// hist {2,2,1}, j=2: the minimizing composition is one person with both
	// atoms (prob 1/5 beats two persons' 3/10).
	e := m1Compute([]int{2, 2, 1}, 2)
	if len(e.comp) != 1 || e.comp[0] != 2 {
		t.Errorf("comp = %v, want [2]", e.comp)
	}
	// Compositions are descending and sum to at most j.
	e = m1Compute([]int{3, 2, 2, 1}, 5)
	sum := 0
	for i, k := range e.comp {
		sum += k
		if i > 0 && e.comp[i-1] < k {
			t.Errorf("composition not descending: %v", e.comp)
		}
	}
	if sum > 5 {
		t.Errorf("composition oversubscribed: %v", e.comp)
	}
}

func TestMaxDisclosureFigure3HandValues(t *testing.T) {
	e := NewEngine()
	cases := []struct {
		k    int
		want float64
	}{
		{0, 2.0 / 5},
		{1, 2.0 / 3}, // lung → flu within the male bucket (DESIGN.md §6)
		{2, 1.0},     // ¬lung ∧ ¬mumps pins flu
		{5, 1.0},
	}
	for _, c := range cases {
		got, err := e.MaxDisclosure(fig3(), c.k)
		if err != nil {
			t.Fatalf("k=%d: %v", c.k, err)
		}
		if math.Abs(got-c.want) > eps {
			t.Errorf("MaxDisclosure(fig3, %d) = %v, want %v", c.k, got, c.want)
		}
	}
}

func TestMaxDisclosureCrossBucketOption(t *testing.T) {
	// With antecedents restricted to other buckets, the Figure 3 maximum is
	// the paper's quoted 10/19 (flu in one bucket implying flu in the
	// other).
	e := NewEngine()
	got, err := e.MaxDisclosureOpt(fig3(), 1, Options{ForbidSameBucketAntecedent: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10.0/19) > eps {
		t.Errorf("cross-bucket max = %v, want 10/19 = %v", got, 10.0/19)
	}
	// The restriction can only lower the maximum.
	unres, err := e.MaxDisclosure(fig3(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got > unres+eps {
		t.Errorf("restricted %v exceeds unrestricted %v", got, unres)
	}
}

func TestMaxDisclosureUniformBucket(t *testing.T) {
	bz := bucket.FromValues([]string{"a", "b", "c", "d"})
	e := NewEngine()
	want := []float64{0.25, 1.0 / 3, 0.5, 1.0, 1.0}
	for k, w := range want {
		got, err := e.MaxDisclosure(bz, k)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-w) > eps {
			t.Errorf("k=%d: got %v, want %v", k, got, w)
		}
	}
}

func TestMaxDisclosureSingletonBucket(t *testing.T) {
	bz := bucket.FromValues([]string{"a"})
	got, err := MaxDisclosure(bz, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("singleton bucket k=0 disclosure = %v, want 1", got)
	}
}

func TestArgumentValidation(t *testing.T) {
	e := NewEngine()
	if _, err := e.MaxDisclosure(nil, 1); err == nil {
		t.Error("nil bucketization accepted")
	}
	if _, err := e.MaxDisclosure(&bucket.Bucketization{}, 1); err == nil {
		t.Error("empty bucketization accepted")
	}
	if _, err := e.MaxDisclosure(fig3(), -1); err == nil {
		t.Error("negative k accepted")
	}
	if _, err := e.IsCKSafe(fig3(), -0.1, 1); err == nil {
		t.Error("c < 0 accepted")
	}
	if _, err := e.IsCKSafe(fig3(), 1.1, 1); err == nil {
		t.Error("c > 1 accepted")
	}
	if _, err := e.Series(nil, 3); err == nil {
		t.Error("Series on nil accepted")
	}
	if _, err := NegationMaxDisclosure(nil, 1); err == nil {
		t.Error("negation on nil accepted")
	}
	if _, err := e.Witness(nil, 1, Options{}, nil); err == nil {
		t.Error("witness on nil accepted")
	}
}

func TestIsCKSafe(t *testing.T) {
	e := NewEngine()
	safe, err := e.IsCKSafe(fig3(), 0.7, 1) // max disclosure 2/3 < 0.7
	if err != nil || !safe {
		t.Errorf("IsCKSafe(0.7, 1) = %v, %v; want true", safe, err)
	}
	safe, err = e.IsCKSafe(fig3(), 0.6, 1)
	if err != nil || safe {
		t.Errorf("IsCKSafe(0.6, 1) = %v, %v; want false", safe, err)
	}
	// Strict inequality: threshold exactly at the maximum is unsafe.
	safe, err = e.IsCKSafe(fig3(), 2.0/3, 1)
	if err != nil || safe {
		t.Errorf("IsCKSafe(2/3, 1) = %v, %v; want false (strict)", safe, err)
	}
}

func TestSeriesMatchesPointQueries(t *testing.T) {
	e := NewEngine()
	series, err := e.Series(fig3(), 6)
	if err != nil {
		t.Fatal(err)
	}
	for k, s := range series {
		got, err := NewEngine().MaxDisclosure(fig3(), k)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-s) > eps {
			t.Errorf("k=%d: series %v, point %v", k, s, got)
		}
		if k > 0 && series[k] < series[k-1]-eps {
			t.Errorf("series not monotone at k=%d: %v", k, series)
		}
	}
}

func TestDisclosureReachesOneAtDistinctMinusOne(t *testing.T) {
	// The male bucket has 3 distinct values, so k = 2 forces certainty;
	// the paper's parallel claim is disclosure 1 at k = 13 with 14 values.
	e := NewEngine()
	got, err := e.MaxDisclosure(fig3(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("k=2 disclosure = %v, want 1", got)
	}
}

func TestEngineCacheReuse(t *testing.T) {
	e := NewEngine()
	if _, err := e.MaxDisclosure(fig3(), 4); err != nil {
		t.Fatal(err)
	}
	size := e.CacheSize()
	if size == 0 {
		t.Fatal("cache empty after computation")
	}
	// A second run over histogram-identical buckets must not grow the
	// cache.
	if _, err := e.MaxDisclosure(fig3(), 4); err != nil {
		t.Fatal(err)
	}
	if e.CacheSize() != size {
		t.Errorf("cache grew on repeat: %d -> %d", size, e.CacheSize())
	}
	e.Reset()
	if e.CacheSize() != 0 {
		t.Error("Reset did not clear cache")
	}
}

// groupsFromRaw decodes random bytes into 1–3 small buckets over ≤3
// values; three-bucket instances exercise MINIMIZE2's full distribution
// logic (antecedents split across buckets on both sides of the target).
func groupsFromRaw(raw []byte) [][]string {
	if len(raw) < 3 {
		return nil
	}
	nBuckets := 1 + int(raw[0])%3
	groups := make([][]string, nBuckets)
	pos := 1
	for b := 0; b < nBuckets; b++ {
		size := 1 + int(raw[pos%len(raw)])%3
		if nBuckets < 3 {
			size = 1 + int(raw[pos%len(raw)])%4
		}
		pos++
		for i := 0; i < size; i++ {
			v := string(rune('a' + raw[pos%len(raw)]%3))
			groups[b] = append(groups[b], v)
			pos++
		}
	}
	return groups
}

// TestDPMatchesOracle is the central correctness test: on random small
// instances, the O(|B|k³) DP equals the exponential exact oracle restricted
// to common-consequent simple implications (which Theorem 9 — itself
// validated in internal/worlds — proves is the true maximum over
// L^k_basic).
func TestDPMatchesOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("exponential oracle")
	}
	e := NewEngine()
	checked := 0
	f := func(raw []byte, kRaw uint8) bool {
		groups := groupsFromRaw(raw)
		if groups == nil {
			return true
		}
		k := int(kRaw) % 3
		bz := bucket.FromValues(groups...)
		dp, err := e.MaxDisclosure(bz, k)
		if err != nil {
			return false
		}
		in := asInstance(t, groups)
		res, err := in.MaxDisclosureCommonConsequent(k, worlds.BruteOptions{})
		if err != nil {
			return false
		}
		checked++
		if math.Abs(dp-ratFloat(res.Prob)) > eps {
			t.Logf("groups=%v k=%d dp=%v oracle=%s phi=%v", groups, k, dp, res.Prob.RatString(), res.Phi)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
	if checked < 40 {
		t.Fatalf("only %d effective comparisons", checked)
	}
}

// TestCrossBucketOptionMatchesOracle validates the restricted adversary
// class (Options.ForbidSameBucketAntecedent) against its own exact oracle.
func TestCrossBucketOptionMatchesOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("exponential oracle")
	}
	e := NewEngine()
	checked := 0
	f := func(raw []byte, kRaw uint8) bool {
		groups := groupsFromRaw(raw)
		if groups == nil {
			return true
		}
		k := int(kRaw) % 3
		bz := bucket.FromValues(groups...)
		dp, err := e.MaxDisclosureOpt(bz, k, Options{ForbidSameBucketAntecedent: true})
		if err != nil {
			return false
		}
		in := asInstance(t, groups)
		res, err := in.MaxDisclosureCrossBucket(k, worlds.BruteOptions{})
		if err != nil {
			return false
		}
		checked++
		if math.Abs(dp-ratFloat(res.Prob)) > eps {
			t.Logf("groups=%v k=%d dp=%v oracle=%s phi=%v",
				groups, k, dp, res.Prob.RatString(), res.Phi)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	if checked < 30 {
		t.Fatalf("only %d effective comparisons", checked)
	}
}

// TestTheorem14Monotonicity property-checks the paper's monotonicity
// theorem: merging buckets never increases maximum disclosure.
func TestTheorem14Monotonicity(t *testing.T) {
	e := NewEngine()
	f := func(raw []byte, kRaw, pick uint8) bool {
		groups := groupsFromRaw(raw)
		if groups == nil || len(groups) < 2 {
			return true
		}
		k := int(kRaw) % 5
		bz := bucket.FromValues(groups...)
		merged, err := bz.Merge(0, 1)
		if err != nil {
			return false
		}
		before, err1 := e.MaxDisclosure(bz, k)
		after, err2 := e.MaxDisclosure(merged, k)
		if err1 != nil || err2 != nil {
			return false
		}
		return after <= before+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestK0EqualsTopFraction checks the no-knowledge baseline against the
// closed form max_b n_b(s⁰)/n_b.
func TestK0EqualsTopFraction(t *testing.T) {
	e := NewEngine()
	f := func(raw []byte) bool {
		groups := groupsFromRaw(raw)
		if groups == nil {
			return true
		}
		bz := bucket.FromValues(groups...)
		dp, err := e.MaxDisclosure(bz, 0)
		if err != nil {
			return false
		}
		return math.Abs(dp-bz.MaxTopFraction()) < eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestWitnessAchievesDisclosure verifies reconstructed witnesses: the exact
// posterior of the witness formula (computed by the random-worlds oracle)
// must equal the DP's claimed maximum.
func TestWitnessAchievesDisclosure(t *testing.T) {
	if testing.Short() {
		t.Skip("exact oracle")
	}
	e := NewEngine()
	f := func(raw []byte, kRaw uint8) bool {
		groups := groupsFromRaw(raw)
		if groups == nil {
			return true
		}
		k := int(kRaw) % 3
		bz := bucket.FromValues(groups...)
		w, err := e.Witness(bz, k, Options{}, nil)
		if err != nil {
			return false
		}
		if len(w.Implications) != k {
			return false
		}
		in := asInstance(t, groups)
		p, err := in.CondProb(w.Target, w.Phi())
		if err != nil {
			t.Logf("groups=%v k=%d witness inconsistent: %v", groups, k, err)
			return false
		}
		if math.Abs(w.Disclosure-ratFloat(p)) > eps {
			t.Logf("groups=%v k=%d witness=%v claims %v, oracle %s", groups, k, w, w.Disclosure, p.RatString())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestWitnessFigure3(t *testing.T) {
	e := NewEngine()
	w, err := e.Witness(fig3(), 1, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w.Disclosure-2.0/3) > eps {
		t.Errorf("witness disclosure = %v, want 2/3", w.Disclosure)
	}
	if w.TargetBucket != 0 && w.TargetBucket != 1 {
		t.Errorf("TargetBucket = %d", w.TargetBucket)
	}
	if len(w.Implications) != 1 {
		t.Fatalf("witness has %d implications", len(w.Implications))
	}
	// The maximizing knowledge is a within-bucket, same-person implication
	// (the negation ¬lung in disguise): antecedent and consequent share the
	// person, and the consequent names the bucket's top value "flu".
	imp := w.Implications[0]
	if imp.Cons != w.Target {
		t.Error("implication consequent differs from target")
	}
	if imp.Ante.Person != w.Target.Person {
		t.Errorf("expected same-person witness, got %v", imp)
	}
	if w.Target.Value != "flu" {
		t.Errorf("target value = %q, want flu", w.Target.Value)
	}
}

func TestWitnessCrossBucketFigure3(t *testing.T) {
	e := NewEngine()
	w, err := e.Witness(fig3(), 1, Options{ForbidSameBucketAntecedent: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w.Disclosure-10.0/19) > eps {
		t.Errorf("cross-bucket witness disclosure = %v, want 10/19", w.Disclosure)
	}
	imp := w.Implications[0]
	if imp.Ante.Value != "flu" || imp.Cons.Value != "flu" {
		t.Errorf("expected flu→flu witness, got %v", imp)
	}
	// Antecedent person must live in a different bucket from the target.
	bz := fig3()
	ai, _ := strconv.Atoi(imp.Ante.Person)
	ti, _ := strconv.Atoi(w.Target.Person)
	if bz.BucketOf(ai) == bz.BucketOf(ti) {
		t.Errorf("cross-bucket witness uses same bucket: %v", w)
	}
	// The oracle agrees with the claimed probability.
	in := asInstance(t, figure3Groups)
	p, err := in.CondProb(w.Target, w.Phi())
	if err != nil {
		t.Fatal(err)
	}
	if p.Cmp(big.NewRat(10, 19)) != 0 {
		t.Errorf("oracle gives %s, want 10/19", p.RatString())
	}
}

func TestWitnessPadsWithTautologies(t *testing.T) {
	// Bucket {a}: disclosure is 1 at k=0; any k must still return k
	// implications, padded with tautologies.
	e := NewEngine()
	w, err := e.Witness(bucket.FromValues([]string{"a", "a"}), 3, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Implications) != 3 {
		t.Fatalf("got %d implications, want 3", len(w.Implications))
	}
	if w.Disclosure != 1 {
		t.Errorf("disclosure = %v", w.Disclosure)
	}
}

func TestConcurrentEngineUse(t *testing.T) {
	e := NewEngine()
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(k int) {
			_, err := e.MaxDisclosure(fig3(), k%5)
			done <- err
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
