package core

import (
	"math"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ckprivacy/internal/bucket"
)

// ---------------------------------------------------------------------------
// Fingerprint keying
// ---------------------------------------------------------------------------

// TestFingerprintDistinguishesKeys checks the pairs most likely to alias
// under a sloppy hash: concatenation boundaries, length changes, and the
// histogram/atom-count split.
func TestFingerprintDistinguishesKeys(t *testing.T) {
	type key struct {
		hist []int
		j    int
	}
	cases := []key{
		{[]int{1, 2}, 3},
		{[]int{12}, 3},
		{[]int{1}, 23},
		{[]int{1, 2, 3}, 0},
		{[]int{1, 2}, 0},
		{[]int{3, 2, 1}, 0},
		{[]int{1, 2, 3}, 1},
		{[]int{256}, 1},
		{[]int{1}, 256},
		{nil, 1},
		{nil, 0},
	}
	seen := make(map[uint64]key)
	for _, c := range cases {
		fp := fingerprint(c.hist, c.j)
		if prev, ok := seen[fp]; ok {
			t.Errorf("fingerprint collision between %+v and %+v", prev, c)
		}
		seen[fp] = c
	}
}

// stringMemo replicates the pre-sharding engine memo: a string-signature-
// keyed map of per-j MINIMIZE1 entries. It is the reference the bounded,
// fingerprint-keyed memo must agree with byte-for-byte.
type stringMemo struct {
	m map[string]map[int]m1Entry
}

func (sm *stringMemo) m1(hist []int, j int) m1Entry {
	var sb strings.Builder
	for i, c := range hist {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(c))
	}
	sig := sb.String()
	if e, ok := sm.m[sig][j]; ok {
		return e
	}
	e := m1Compute(hist, j)
	if sm.m[sig] == nil {
		sm.m[sig] = make(map[int]m1Entry)
	}
	sm.m[sig][j] = e
	return e
}

// TestMemoMatchesStringKeyedReference drives the corpus of random
// histograms through the fingerprint-keyed memo and the old string-keyed
// reference, asserting bit-identical values and identical compositions.
func TestMemoMatchesStringKeyedReference(t *testing.T) {
	e := NewEngine()
	ref := &stringMemo{m: make(map[string]map[int]m1Entry)}
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 2000; iter++ {
		hist := randomHistogram(rng, 1+rng.Intn(6), 1+rng.Intn(9))
		j := rng.Intn(8)
		got := e.m1(hist, j)
		want := ref.m1(hist, j)
		if math.Float64bits(got.val) != math.Float64bits(want.val) {
			t.Fatalf("m1(%v, %d).val = %v, reference %v", hist, j, got.val, want.val)
		}
		if !reflect.DeepEqual(got.comp, want.comp) {
			t.Fatalf("m1(%v, %d).comp = %v, reference %v", hist, j, got.comp, want.comp)
		}
	}
}

// randomHistogram returns vals counts in decreasing order with each count
// in [1, maxCount] (the invariant bucket.Histogram guarantees).
func randomHistogram(rng *rand.Rand, vals, maxCount int) []int {
	h := make([]int, vals)
	for i := range h {
		h[i] = 1 + rng.Intn(maxCount)
	}
	for i := 1; i < len(h); i++ {
		if h[i] > h[i-1] {
			h[i] = h[i-1]
		}
	}
	return h
}

// TestDisclosureIdenticalAcrossCapacities is the equivalence half of the
// acceptance criterion: every disclosure value must be byte-identical
// whether the memo is unbounded, default-bounded, or so small it evicts
// constantly — eviction may cost recomputation, never correctness.
func TestDisclosureIdenticalAcrossCapacities(t *testing.T) {
	engines := map[string]*Engine{
		"unbounded": NewEngineWithConfig(EngineConfig{MemoMaxBytes: -1}),
		"default":   NewEngine(),
		"tiny":      NewEngineWithConfig(EngineConfig{MemoMaxBytes: 2 << 10, Shards: 4}),
	}
	rng := rand.New(rand.NewSource(11))
	var instances []*bucket.Bucketization
	instances = append(instances, fig3())
	for i := 0; i < 40; i++ {
		raw := make([]byte, 12)
		rng.Read(raw)
		groups := groupsFromRaw(raw)
		if groups == nil {
			continue
		}
		instances = append(instances, bucket.FromValues(groups...))
	}
	for _, bz := range instances {
		for k := 0; k <= 5; k++ {
			want, err := engines["unbounded"].MaxDisclosure(bz, k)
			if err != nil {
				t.Fatal(err)
			}
			for name, e := range engines {
				got, err := e.MaxDisclosure(bz, k)
				if err != nil {
					t.Fatal(err)
				}
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("%s engine: disclosure %v, unbounded %v (k=%d)", name, got, want, k)
				}
			}
		}
	}
	if st := engines["tiny"].Stats(); st.Evictions == 0 {
		t.Error("tiny engine never evicted; the capacity path went unexercised")
	}
}

// TestCollisionReturnsCorrectValue plants an entry under a fingerprint that
// does not match its own key, simulating a 64-bit collision, and asserts
// the lookup detects the mismatch and computes the true value instead of
// returning the collider's.
func TestCollisionReturnsCorrectValue(t *testing.T) {
	e := NewEngine()
	hist := []int{3, 2, 1}
	j := 2
	fp := fingerprint(hist, j)
	s := &e.shards[fp&e.shardMask]
	bogus := m1Entry{val: -42, comp: []int{9}}
	s.mu.Lock()
	e.insertLocked(s, fp, []int{9, 9, 9}, 5, bogus) // different key, same fp
	s.mu.Unlock()

	got := e.m1(hist, j)
	want := m1Compute(hist, j)
	if math.Float64bits(got.val) != math.Float64bits(want.val) {
		t.Fatalf("collision lookup returned %v, want %v", got.val, want.val)
	}
	// The resident collider must be untouched (no thrash).
	s.mu.Lock()
	resident := s.entries[fp]
	s.mu.Unlock()
	if resident == nil || resident.val.val != -42 {
		t.Error("collision displaced the resident entry")
	}
}

// TestInflightDedupCountsOneMiss races many workers on one cold entry: the
// in-flight table must collapse them into a single DP run and a single
// counted miss (the documented Stats double-count bug).
func TestInflightDedupCountsOneMiss(t *testing.T) {
	e := NewEngine()
	hist := []int{4, 3, 2, 1}
	const workers = 32
	var wg sync.WaitGroup
	start := make(chan struct{})
	vals := make([]float64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			vals[w] = e.m1(hist, 3).val
		}(w)
	}
	close(start)
	wg.Wait()
	for w := 1; w < workers; w++ {
		if math.Float64bits(vals[w]) != math.Float64bits(vals[0]) {
			t.Fatal("racing workers saw different values")
		}
	}
	st := e.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 (in-flight dedup)", st.Misses)
	}
	if st.Hits != workers-1 {
		t.Errorf("hits = %d, want %d", st.Hits, workers-1)
	}
}

// ---------------------------------------------------------------------------
// Capacity bound and churn
// ---------------------------------------------------------------------------

// TestMemoChurnPlateau feeds an endless stream of distinct histograms (the
// daemon's many-datasets workload) through a small memo and asserts the
// accounted bytes never exceed the configured cap while evictions keep the
// cache turning over.
func TestMemoChurnPlateau(t *testing.T) {
	const capBytes = 32 << 10
	e := NewEngineWithConfig(EngineConfig{MemoMaxBytes: capBytes, Shards: 8})
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 5000; iter++ {
		hist := randomHistogram(rng, 1+rng.Intn(8), 1+rng.Intn(50))
		e.m1(hist, rng.Intn(6))
		if st := e.Stats(); st.Bytes > capBytes {
			t.Fatalf("iter %d: memo bytes %d exceed the %d cap", iter, st.Bytes, capBytes)
		}
	}
	st := e.Stats()
	if st.Evictions == 0 {
		t.Error("no evictions under sustained churn")
	}
	if st.Entries == 0 || st.Bytes == 0 {
		t.Error("memo empty after churn; eviction is over-aggressive")
	}
	if st.Entries != e.CacheSize() {
		t.Errorf("Stats().Entries %d != CacheSize() %d", st.Entries, e.CacheSize())
	}
}

// TestResetClearsEverything covers the bounded memo's reset path.
func TestResetClearsEverything(t *testing.T) {
	e := NewEngineWithConfig(EngineConfig{MemoMaxBytes: 4 << 10, Shards: 2})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		e.m1(randomHistogram(rng, 1+rng.Intn(5), 10), rng.Intn(5))
	}
	e.Reset()
	st := e.Stats()
	if st.Entries != 0 || st.Bytes != 0 || st.Hits != 0 || st.Misses != 0 || st.Evictions != 0 {
		t.Errorf("Reset left state behind: %+v", st)
	}
	// The engine must keep working after a reset.
	if got := e.m1([]int{2, 1}, 1); got.val <= 0 || got.val > 1 {
		t.Errorf("post-reset m1 = %v", got.val)
	}
}

// TestOversizedEntryNotCached: an entry larger than a whole shard's budget
// must be computed correctly but never inserted (it would evict the whole
// shard and then itself).
func TestOversizedEntryNotCached(t *testing.T) {
	e := NewEngineWithConfig(EngineConfig{MemoMaxBytes: 256, Shards: 2})
	hist := make([]int, 64) // 64*8 bytes of key alone exceeds 128 per shard
	for i := range hist {
		hist[i] = 64 - i
	}
	got := e.m1(hist, 2)
	want := m1Compute(hist, 2)
	if math.Float64bits(got.val) != math.Float64bits(want.val) {
		t.Fatalf("oversized entry computed %v, want %v", got.val, want.val)
	}
	if n := e.CacheSize(); n != 0 {
		t.Errorf("oversized entry was cached (%d entries)", n)
	}
}

// ---------------------------------------------------------------------------
// Benchmarks: steady-state hit path and the churn/eviction cycle. The CI
// bench job archives these (one iteration each) into the perf-trajectory
// JSON artifact.
// ---------------------------------------------------------------------------

// BenchmarkMemoHit measures the warm lookup path (fingerprint + shard map
// + CLOCK bit), the per-bucket cost every repeated disclosure check pays.
func BenchmarkMemoHit(b *testing.B) {
	e := NewEngine()
	hist := []int{5, 4, 3, 2, 1}
	e.m1(hist, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkEntry = e.m1(hist, 4)
	}
}

var sinkEntry m1Entry

// BenchmarkMemoChurn is the bounded-memory proof for the acceptance
// criterion: a stream of mostly-fresh histograms far larger than the cap.
// It reports the plateaued memo_bytes (must sit at/under the configured
// cap) and the eviction count (must be positive).
func BenchmarkMemoChurn(b *testing.B) {
	const capBytes = 64 << 10
	e := NewEngineWithConfig(EngineConfig{MemoMaxBytes: capBytes, Shards: 8})
	rng := rand.New(rand.NewSource(1))
	hists := make([][]int, 4096)
	for i := range hists {
		hists[i] = randomHistogram(rng, 1+rng.Intn(8), 1+rng.Intn(50))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkEntry = e.m1(hists[i%len(hists)], i%6)
	}
	b.StopTimer()
	st := e.Stats()
	b.ReportMetric(float64(st.Bytes), "memo_bytes")
	b.ReportMetric(float64(st.Evictions), "memo_evictions")
	if st.Bytes > capBytes {
		b.Fatalf("memo bytes %d exceed the %d cap", st.Bytes, capBytes)
	}
}

// BenchmarkMaxDisclosureSteadyState measures the full disclosure check on
// a warm engine — the daemon's hot path — where pooled DP scratch should
// keep allocations near zero.
func BenchmarkMaxDisclosureSteadyState(b *testing.B) {
	e := NewEngine()
	bz := fig3()
	if _, err := e.MaxDisclosure(bz, 4); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := e.MaxDisclosure(bz, 4)
		if err != nil {
			b.Fatal(err)
		}
		sinkF = d
	}
}

var sinkF float64

// TestPanickedComputeDoesNotPoisonShard: a panic inside the DP must leave
// the shard usable — in-flight entry removed, lock released — and later
// callers of the same key must panic themselves (per-caller confinement)
// rather than deadlock on a WaitGroup that will never be Done'd.
func TestPanickedComputeDoesNotPoisonShard(t *testing.T) {
	e := NewEngine()
	mustPanic := func() (panicked bool) {
		defer func() { panicked = recover() != nil }()
		e.m1([]int{2, 1}, -1) // negative j: the scratch sizing panics
		return false
	}
	if !mustPanic() {
		t.Skip("negative j no longer panics; pick another fault injection")
	}
	// Same key again: must panic again (not hang on a stale in-flight
	// entry, not return a bogus cached value).
	done := make(chan bool, 1)
	go func() { done <- mustPanic() }()
	select {
	case again := <-done:
		if !again {
			t.Error("second lookup of the panicked key neither panicked nor computed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second lookup deadlocked: the panicked in-flight entry was not cleaned up")
	}
	// The shard (and the whole engine) still serves normal traffic.
	got := e.m1([]int{2, 1}, 1)
	want := m1Compute([]int{2, 1}, 1)
	if math.Float64bits(got.val) != math.Float64bits(want.val) {
		t.Errorf("post-panic m1 = %v, want %v", got.val, want.val)
	}
	if e.CacheSize() == 0 {
		t.Error("post-panic insert failed; shard lock likely stranded")
	}
}
