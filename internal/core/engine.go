package core

import (
	"sync"
	"sync/atomic"

	"ckprivacy/internal/bucket"
)

// Engine computes maximum disclosure, memoizing MINIMIZE1 tables by bucket
// histogram. Buckets with equal sensitive-value histograms share all DP
// state, and the cache persists across calls, implementing the paper's
// §3.3.3 remark about incremental recomputation when bucketizations share
// buckets (as the Figure 6 sweep over 72 generalizations heavily does).
//
// An Engine is safe for concurrent use: lookups take a read lock, and a
// missing entry is computed outside the lock entirely, so the level-wise
// parallel searches never serialize their DP work on the memo. Two workers
// racing on the same missing entry may both compute it — m1Compute is
// deterministic, so either result is the same value and the first store
// wins.
type Engine struct {
	mu   sync.RWMutex
	memo map[string]map[int]m1Entry

	hits   atomic.Uint64
	misses atomic.Uint64
}

// CacheStats is a point-in-time snapshot of memo effectiveness; the serving
// layer exports it on /metrics.
type CacheStats struct {
	// Hits counts MINIMIZE1 lookups answered from the memo.
	Hits uint64
	// Misses counts lookups that had to run the DP.
	Misses uint64
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{memo: make(map[string]map[int]m1Entry)}
}

// m1 returns the memoized MINIMIZE1 entry for a bucket signature.
func (e *Engine) m1(sig string, hist []int, j int) m1Entry {
	e.mu.RLock()
	entry, ok := e.memo[sig][j]
	e.mu.RUnlock()
	if ok {
		e.hits.Add(1)
		return entry
	}
	e.misses.Add(1)
	entry = m1Compute(hist, j)
	e.mu.Lock()
	byJ, ok := e.memo[sig]
	if !ok {
		byJ = make(map[int]m1Entry)
		e.memo[sig] = byJ
	}
	if prev, ok := byJ[j]; ok {
		entry = prev
	} else {
		byJ[j] = entry
	}
	e.mu.Unlock()
	return entry
}

// CacheSize reports the number of distinct (histogram, atom-count) entries
// memoized; exposed for the cache ablation benchmark.
func (e *Engine) CacheSize() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, byJ := range e.memo {
		n += len(byJ)
	}
	return n
}

// Stats snapshots the memo's hit/miss counters. Two workers racing on the
// same missing entry both count as misses, so Misses may slightly exceed
// the number of distinct entries ever computed.
func (e *Engine) Stats() CacheStats {
	return CacheStats{Hits: e.hits.Load(), Misses: e.misses.Load()}
}

// Reset drops all memoized state and zeroes the hit/miss counters.
func (e *Engine) Reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.memo = make(map[string]map[int]m1Entry)
	e.hits.Store(0)
	e.misses.Store(0)
}

// bucketView caches per-run bucket state (signature, histogram) so the DP
// does not rebuild strings in its inner loop.
type bucketView struct {
	sig  string
	hist []int
	n    int
	top  int
	b    *bucket.Bucket
}

func makeViews(bz *bucket.Bucketization) []bucketView {
	views := make([]bucketView, len(bz.Buckets))
	for i, b := range bz.Buckets {
		views[i] = bucketView{
			sig:  b.Signature(),
			hist: b.Histogram(),
			n:    b.Size(),
			top:  b.TopCount(),
			b:    b,
		}
	}
	return views
}
