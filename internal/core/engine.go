package core

import (
	"sync"
	"sync/atomic"

	"ckprivacy/internal/bucket"
)

// DefaultMemoMaxBytes is the default capacity bound of an Engine's
// MINIMIZE1 memo: roughly 64 MiB of accounted entry bytes. A memoized entry
// costs on the order of 100–300 bytes, so the default holds a few hundred
// thousand distinct (histogram, atom-count) pairs — far more than any one
// dataset's lattice produces, while keeping a long-lived daemon serving an
// open-ended stream of datasets at a bounded resident size.
const DefaultMemoMaxBytes = 64 << 20

// defaultMemoShards is the default shard count. Must be a power of two so
// the shard index is a mask of the key fingerprint.
const defaultMemoShards = 32

// EngineConfig tunes an Engine's memo.
type EngineConfig struct {
	// MemoMaxBytes bounds the total accounted size of memoized MINIMIZE1
	// entries across all shards. Zero means DefaultMemoMaxBytes; a negative
	// value disables the bound entirely (the pre-bound behavior, useful for
	// one-shot batch runs and A/B tests).
	MemoMaxBytes int64
	// Shards is the shard count, rounded up to a power of two. Zero means
	// defaultMemoShards. More shards cut lock contention at a small fixed
	// memory cost.
	Shards int
}

// Engine computes maximum disclosure, memoizing MINIMIZE1 tables by bucket
// histogram. Buckets with equal sensitive-value histograms share all DP
// state, and the cache persists across calls, implementing the paper's
// §3.3.3 remark about incremental recomputation when bucketizations share
// buckets (as the Figure 6 sweep over 72 generalizations heavily does).
//
// The memo is sharded N ways and keyed by a 64-bit FNV-1a fingerprint of
// (histogram, atom count) — the hot path never materializes signature
// strings. Each shard is byte-accounted against a per-shard slice of
// MemoMaxBytes and evicted with a CLOCK second-chance policy, so a
// long-lived engine serving many datasets plateaus instead of leaking.
// Fingerprint hits verify the stored key, so a (cryptographically unlikely)
// 64-bit collision degrades to an uncached computation, never a wrong value.
//
// An Engine is safe for concurrent use. Workers racing on the same missing
// entry deduplicate in flight: the first computes, the rest wait and share
// the result, so each distinct entry is computed (and counted as a miss)
// exactly once.
type Engine struct {
	shards    []memoShard
	shardMask uint64
	// perShardMax is the byte budget of one shard; <= 0 means unbounded.
	perShardMax int64

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// memoEntry is one resident memo slot. The key and value are immutable;
// ref is atomic so the hit path can set it under the shard's read lock.
type memoEntry struct {
	fp   uint64
	j    int
	hist []int // owned copy of the key histogram, for collision verification
	val  m1Entry
	ref  atomic.Bool // CLOCK second-chance bit, set on every hit
}

// memoEntryOverhead approximates the fixed per-entry heap cost beyond the
// two slices: the entry struct, its map bucket share and its ring slot.
const memoEntryOverhead = 96

func (me *memoEntry) cost() int64 {
	return memoEntryOverhead + int64(len(me.hist))*8 + int64(len(me.val.comp))*8
}

func (me *memoEntry) matches(hist []int, j int) bool {
	return sameKey(me.hist, me.j, hist, j)
}

// memoCall is an in-flight MINIMIZE1 computation other workers can wait on.
type memoCall struct {
	wg   sync.WaitGroup
	hist []int
	j    int
	val  m1Entry
	// panicked marks a computation that died before producing val; waiters
	// then compute for themselves (and propagate the same panic on their
	// own goroutine, confining it per-caller as the pre-dedup memo did).
	panicked bool
}

// memoShard is one lock domain of the memo: a flat fingerprint-keyed map,
// a CLOCK ring over its resident entries, and the in-flight table. Hits
// take only the read lock (the CLOCK bit is atomic), so concurrent workers
// hammering the same hot entries — the level-wise searches' steady state —
// never serialize; misses, inserts and eviction take the write lock.
type memoShard struct {
	mu       sync.RWMutex
	entries  map[uint64]*memoEntry
	inflight map[uint64]*memoCall
	ring     []*memoEntry
	hand     int

	// bytes/count are atomics so Stats and CacheSize read them without
	// taking the shard lock (a /metrics scrape must not stall DP workers).
	bytes atomic.Int64
	count atomic.Int64
}

// NewEngine returns an empty engine with the default memo bound.
func NewEngine() *Engine {
	return NewEngineWithConfig(EngineConfig{})
}

// NewEngineWithConfig returns an empty engine with the given memo bound and
// shard count.
func NewEngineWithConfig(cfg EngineConfig) *Engine {
	shards := cfg.Shards
	if shards <= 0 {
		shards = defaultMemoShards
	}
	// Round up to a power of two for mask indexing.
	n := 1
	for n < shards {
		n <<= 1
	}
	maxBytes := cfg.MemoMaxBytes
	if maxBytes == 0 {
		maxBytes = DefaultMemoMaxBytes
	}
	e := &Engine{
		shards:    make([]memoShard, n),
		shardMask: uint64(n - 1),
	}
	if maxBytes > 0 {
		e.perShardMax = maxBytes / int64(n)
		if e.perShardMax < 1 {
			e.perShardMax = 1
		}
	}
	for i := range e.shards {
		e.shards[i].entries = make(map[uint64]*memoEntry)
		e.shards[i].inflight = make(map[uint64]*memoCall)
	}
	return e
}

// fingerprint hashes (hist, j) with 64-bit FNV-1a, mixing each value as a
// fixed eight-byte word so histograms of different lengths or counts can
// never alias by concatenation.
func fingerprint(hist []int, j int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(j))
	for _, c := range hist {
		mix(uint64(c))
	}
	return h
}

// CacheStats is a point-in-time snapshot of memo effectiveness and
// residency; the serving layer exports it on /metrics.
type CacheStats struct {
	// Hits counts MINIMIZE1 lookups answered from the memo — including
	// lookups that waited on another worker's in-flight computation.
	Hits uint64
	// Misses counts lookups that had to run the DP. With in-flight
	// deduplication each distinct entry is computed, and counted, once.
	Misses uint64
	// Evictions counts entries dropped by the CLOCK policy to stay under
	// the configured byte bound.
	Evictions uint64
	// Bytes is the accounted resident size of the memo.
	Bytes int64
	// Entries is the number of resident memo entries.
	Entries int
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// m1 returns the memoized MINIMIZE1 entry for (hist, j), computing, caching
// and deduplicating as needed.
func (e *Engine) m1(hist []int, j int) m1Entry {
	fp := fingerprint(hist, j)
	s := &e.shards[fp&e.shardMask]

	// Fast path: a resident hit needs only the read lock.
	s.mu.RLock()
	me, ok := s.entries[fp]
	s.mu.RUnlock()
	if ok {
		if me.matches(hist, j) {
			me.ref.Store(true)
			e.hits.Add(1)
			return me.val
		}
		// A true 64-bit fingerprint collision: compute uncached rather than
		// thrash the resident entry.
		e.misses.Add(1)
		return m1Compute(hist, j)
	}

	s.mu.Lock()
	// Re-check under the write lock: another worker may have inserted (or
	// registered an in-flight computation of) this key in between.
	if me, ok := s.entries[fp]; ok {
		s.mu.Unlock()
		if me.matches(hist, j) {
			me.ref.Store(true)
			e.hits.Add(1)
			return me.val
		}
		e.misses.Add(1)
		return m1Compute(hist, j)
	}
	if call, ok := s.inflight[fp]; ok {
		collided := !sameKey(call.hist, call.j, hist, j)
		s.mu.Unlock()
		if collided {
			e.misses.Add(1)
			return m1Compute(hist, j)
		}
		call.wg.Wait()
		if call.panicked {
			e.misses.Add(1)
			return m1Compute(hist, j)
		}
		e.hits.Add(1)
		return call.val
	}
	call := &memoCall{hist: hist, j: j}
	call.wg.Add(1)
	s.inflight[fp] = call
	s.mu.Unlock()

	// The cleanup is deferred so a panic in the DP (or in insertLocked)
	// can never strand the in-flight entry or the shard lock: waiters
	// would otherwise block forever and the shard would wedge every worker
	// hashing to it. Done is registered first so it runs last, after
	// panicked/val are settled.
	e.misses.Add(1)
	completed := false
	defer call.wg.Done()
	defer func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		delete(s.inflight, fp)
		if completed {
			e.insertLocked(s, fp, hist, j, call.val)
		} else {
			call.panicked = true
		}
	}()
	call.val = m1Compute(hist, j)
	completed = true
	return call.val
}

func sameKey(aHist []int, aJ int, bHist []int, bJ int) bool {
	if aJ != bJ || len(aHist) != len(bHist) {
		return false
	}
	for i := range aHist {
		if aHist[i] != bHist[i] {
			return false
		}
	}
	return true
}

// insertLocked stores a computed entry, evicting via CLOCK until it fits.
// The caller holds s.mu.
func (e *Engine) insertLocked(s *memoShard, fp uint64, hist []int, j int, val m1Entry) {
	if _, exists := s.entries[fp]; exists {
		return
	}
	me := &memoEntry{
		fp:   fp,
		j:    j,
		hist: append([]int(nil), hist...),
		val:  val,
	}
	me.ref.Store(true)
	cost := me.cost()
	if e.perShardMax > 0 {
		if cost > e.perShardMax {
			// An entry larger than a whole shard's budget would evict
			// everything and immediately be evicted itself; skip caching.
			return
		}
		for s.bytes.Load()+cost > e.perShardMax && len(s.ring) > 0 {
			e.evictOneLocked(s)
		}
	}
	s.ring = append(s.ring, me)
	s.entries[fp] = me
	s.bytes.Add(cost)
	s.count.Add(1)
}

// evictOneLocked advances the CLOCK hand, clearing second-chance bits,
// until it drops one entry. The caller holds s.mu and guarantees the ring
// is non-empty.
func (e *Engine) evictOneLocked(s *memoShard) {
	for {
		if s.hand >= len(s.ring) {
			s.hand = 0
		}
		me := s.ring[s.hand]
		if me.ref.Load() {
			me.ref.Store(false)
			s.hand++
			continue
		}
		last := len(s.ring) - 1
		s.ring[s.hand] = s.ring[last]
		s.ring[last] = nil
		s.ring = s.ring[:last]
		delete(s.entries, me.fp)
		s.bytes.Add(-me.cost())
		s.count.Add(-1)
		e.evictions.Add(1)
		return
	}
}

// CacheSize reports the number of distinct (histogram, atom-count) entries
// resident in the memo. It reads per-shard atomic counters and never takes
// a shard lock, so a metrics scrape cannot stall DP workers.
func (e *Engine) CacheSize() int {
	n := int64(0)
	for i := range e.shards {
		n += e.shards[i].count.Load()
	}
	return int(n)
}

// Stats snapshots the memo's counters and residency gauges without taking
// any shard lock.
func (e *Engine) Stats() CacheStats {
	st := CacheStats{
		Hits:      e.hits.Load(),
		Misses:    e.misses.Load(),
		Evictions: e.evictions.Load(),
	}
	for i := range e.shards {
		st.Bytes += e.shards[i].bytes.Load()
		st.Entries += int(e.shards[i].count.Load())
	}
	return st
}

// Reset drops all memoized state and zeroes every counter.
func (e *Engine) Reset() {
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.Lock()
		s.entries = make(map[uint64]*memoEntry)
		s.ring = nil
		s.hand = 0
		s.bytes.Store(0)
		s.count.Store(0)
		s.mu.Unlock()
	}
	e.hits.Store(0)
	e.misses.Store(0)
	e.evictions.Store(0)
}

// bucketView caches per-run bucket state (histogram, sizes) so the DP's
// inner loops touch plain slices only — no signature strings are built
// anywhere on the disclosure path.
type bucketView struct {
	hist  []int
	n     int
	top   int
	index int
	b     *bucket.Bucket
}

func makeViews(bz *bucket.Bucketization) []bucketView {
	views := make([]bucketView, len(bz.Buckets))
	for i, b := range bz.Buckets {
		views[i] = bucketView{
			hist:  b.Histogram(),
			n:     b.Size(),
			top:   b.TopCount(),
			index: i,
			b:     b,
		}
	}
	return views
}
