package core

import (
	"fmt"
	"math"

	"ckprivacy/internal/bucket"
	"ckprivacy/internal/parallel"
)

// This file extends the paper's worst-case machinery to a *fixed* target
// atom — "what is the worst-case posterior for THIS value of THIS bucket's
// members?" — and, on top of it, to the cost-based disclosure the paper
// lists as future work (§6: "not all disclosures are equally bad").
//
// The reduction to common-consequent simple implications remains exact for
// a fixed target: Lemmas 10 and 11 hold for an arbitrary fixed consequent
// atom, so max_{φ∈L^k} Pr(A | B ∧ φ) is attained by k simple implications
// A_i → A, and equals 1/(1 + min Pr(¬A ∧ ∧¬A_i | B)/Pr(A | B)).
//
// What changes is MINIMIZE1 inside the target's bucket: one person (the
// target p) is forced to avoid a set that contains the target value s,
// which need not be among the bucket's most frequent values. The DP below
// minimizes over nested ⊇-chains of avoid-sets, where each set is either a
// frequency prefix (possibly augmented with the target value's rank r) or
// a plain prefix below the chain's r-carrying sets:
//
//	prefix_c (c ≥ r+1)  ⊇ … ⊇  prefix_{c-1}∪{rank r} (c ≤ r)  ⊇ … ⊇  prefix_c' (c' < chain min)
//
// Nesting keeps Lemma 12's product formula exact (each later person's
// avoided values retain full multiplicity). Optimality of nested chains is
// not proved in the paper (the unweighted optimum, a prefix chain, is
// nested); it is validated against the exact oracle on randomized
// instances in targeted_test.go.

// targetedKey indexes the targeted MINIMIZE1 DP: person index, maximum
// allowed size for the next set, the type of the previous set, remaining
// atoms, and whether an r-carrying set has been placed.
type targetedKey struct {
	i, cap, rem int
	mode        int8
	haveR       bool
}

const (
	modeStart int8 = iota // no set placed yet
	modeBig               // pure prefix of size ≥ r+1 (contains rank r)
	modeRSet              // prefix_{c-1} ∪ {rank r}, size c ≤ r
	modeSmall             // pure prefix of size ≤ r (no rank r)
)

// targetedM1 minimizes Pr(∧ ¬atoms | B) over j atoms in one bucket subject
// to: the atoms form a nested chain of avoid-sets and at least one set
// contains the value at rank r. For r = 0 every nonempty prefix contains
// the rank, and the computation coincides with plain MINIMIZE1.
func targetedM1(hist []int, r, j int) float64 {
	if r == 0 {
		if j == 0 {
			return math.Inf(1) // the forced ¬A cannot be placed
		}
		return m1Compute(hist, j).val
	}
	n := 0
	prefix := make([]int, len(hist)+1)
	for i, c := range hist {
		n += c
		prefix[i+1] = prefix[i] + c
	}
	pf := func(c int) int { // prefix mass, saturating
		if c >= len(prefix) {
			return n
		}
		return prefix[c]
	}
	mass := func(mode int8, c int) int {
		if mode == modeRSet {
			return pf(c-1) + hist[r]
		}
		return pf(c)
	}
	factor := func(i, m int) float64 {
		num := n - i - m
		if num <= 0 {
			return 0
		}
		return float64(num) / float64(n-i)
	}

	memo := make(map[targetedKey]float64)
	var rec func(i, cap, rem int, mode int8, haveR bool) float64
	rec = func(i, cap, rem int, mode int8, haveR bool) float64 {
		if rem == 0 || i >= n {
			if haveR {
				return 1 // leftovers are duplicate atoms
			}
			return math.Inf(1) // ¬A was never placed
		}
		key := targetedKey{i: i, cap: cap, rem: rem, mode: mode, haveR: haveR}
		if v, ok := memo[key]; ok {
			return v
		}
		best := math.Inf(1)
		maxSize := cap
		if rem < maxSize {
			maxSize = rem
		}
		for c := 1; c <= maxSize; c++ {
			// Pure prefix of size ≥ r+1: carries the rank; only before any
			// r-set or small prefix.
			if c >= r+1 && (mode == modeStart || mode == modeBig) {
				p := factor(i, mass(modeBig, c)) * rec(i+1, c, rem-c, modeBig, true)
				if p < best {
					best = p
				}
			}
			if c <= r {
				// r-set prefix_{c-1} ∪ {rank r}: after start, big or r-set.
				if mode != modeSmall {
					p := factor(i, mass(modeRSet, c)) * rec(i+1, c, rem-c, modeRSet, true)
					if p < best {
						best = p
					}
				}
				// Small pure prefix: allowed anywhere, but after an r-set
				// of size c' it must fit inside prefix_{c'-1}, i.e. have
				// size ≤ c'-1 — encoded by shrinking cap on entry.
				smallCap := c
				ok := true
				switch mode {
				case modeRSet:
					ok = c <= cap-1
				default:
					ok = c <= cap
				}
				if ok {
					p := factor(i, mass(modeSmall, c)) * rec(i+1, smallCap, rem-c, modeSmall, haveR)
					if p < best {
						best = p
					}
				}
			}
		}
		memo[key] = best
		return best
	}
	return rec(0, j, j, modeStart, false)
}

// restTables precomputes, for a bucketization, the minimal MINIMIZE1
// products over bucket prefixes and suffixes, so that the best distribution
// of h antecedent atoms over "all buckets except b" is available in O(k)
// per query (used by the per-target sweep).
type restTables struct {
	fwd [][]float64 // fwd[i][h]: buckets [0, i)
	bwd [][]float64 // bwd[i][h]: buckets [i, len)
	k   int
}

func (e *Engine) buildRest(views []bucketView, k int) *restTables {
	nb := len(views)
	fwd := make([][]float64, nb+1)
	bwd := make([][]float64, nb+1)
	for i := range fwd {
		fwd[i] = make([]float64, k+1)
		bwd[i] = make([]float64, k+1)
	}
	for h := 0; h <= k; h++ {
		fwd[0][h] = 1 // leftover atoms are spent on tautologies
		bwd[nb][h] = 1
	}
	for i := 0; i < nb; i++ {
		for h := 0; h <= k; h++ {
			best := math.Inf(1)
			for c := 0; c <= h; c++ {
				if p := fwd[i][h-c] * e.m1(views[i].hist, c).val; p < best {
					best = p
				}
			}
			fwd[i+1][h] = best
		}
	}
	for i := nb - 1; i >= 0; i-- {
		for h := 0; h <= k; h++ {
			best := math.Inf(1)
			for c := 0; c <= h; c++ {
				if p := bwd[i+1][h-c] * e.m1(views[i].hist, c).val; p < best {
					best = p
				}
			}
			bwd[i][h] = best
		}
	}
	return &restTables{fwd: fwd, bwd: bwd, k: k}
}

// rest returns the minimal product for distributing h atoms over all
// buckets except index b.
func (t *restTables) rest(b, h int) float64 {
	best := math.Inf(1)
	for h1 := 0; h1 <= h; h1++ {
		if p := t.fwd[b][h1] * t.bwd[b+1][h-h1]; p < best {
			best = p
		}
	}
	return best
}

// targetedRatio returns min Formula (1) for the fixed target (bucket index
// b, frequency rank r) using precomputed rest tables.
func (e *Engine) targetedRatio(views []bucketView, t *restTables, b, r, k int) float64 {
	v := views[b]
	ratio := float64(v.n) / float64(v.hist[r])
	best := math.Inf(1)
	for local := 0; local <= k; local++ {
		lp := targetedM1(v.hist, r, local+1)
		if lp == 0 {
			return 0
		}
		if p := lp * ratio * t.rest(b, k-local); p < best {
			best = p
		}
	}
	return best
}

// TargetedMaxDisclosure computes max Pr(t_p[S] = value | B ∧ φ) over
// φ ∈ L^k_basic for a fixed target: any person p of bucket bucketIdx (all
// its members are symmetric) and the given sensitive value. The value must
// occur in the bucket (otherwise the probability is identically 0 and the
// function returns 0).
func (e *Engine) TargetedMaxDisclosure(bz *bucket.Bucketization, bucketIdx int, value string, k int) (float64, error) {
	if err := checkArgs(bz, k); err != nil {
		return 0, err
	}
	if bucketIdx < 0 || bucketIdx >= len(bz.Buckets) {
		return 0, fmt.Errorf("core: bucket index %d out of range", bucketIdx)
	}
	b := bz.Buckets[bucketIdx]
	rank := -1
	for i, vc := range b.Freq() {
		if vc.Value == value {
			rank = i
			break
		}
	}
	if rank < 0 {
		return 0, nil // value absent: Pr(t_p=value | B) = 0 under any knowledge
	}
	views := makeViews(bz)
	t := e.buildRest(views, k)
	return disclosureFromRatio(e.targetedRatio(views, t, bucketIdx, rank, k)), nil
}

// Risk is one entry of a per-target risk profile.
type Risk struct {
	// BucketIdx identifies the bucket (all members share the risk).
	BucketIdx int
	// Value is the sensitive value.
	Value string
	// Disclosure is the worst-case posterior for "member has Value".
	Disclosure float64
}

// RiskProfile computes TargetedMaxDisclosure for every (bucket, value)
// pair with the value present in the bucket, sharing all DP state across
// targets. Entries follow bucket order, then the bucket's frequency order.
func (e *Engine) RiskProfile(bz *bucket.Bucketization, k int) ([]Risk, error) {
	return e.RiskProfileParallel(bz, k, 1)
}

// RiskProfileParallel is RiskProfile with the per-target DPs evaluated on
// up to `workers` goroutines (workers <= 0 means one per CPU core). The
// shared rest tables are built once up front; each target's own DP is
// independent, so the profile is identical to the serial one in content and
// order.
func (e *Engine) RiskProfileParallel(bz *bucket.Bucketization, k, workers int) ([]Risk, error) {
	if err := checkArgs(bz, k); err != nil {
		return nil, err
	}
	views := makeViews(bz)
	t := e.buildRest(views, k)
	type target struct{ bi, r int }
	var targets []target
	for bi, v := range views {
		for r := range v.hist {
			targets = append(targets, target{bi: bi, r: r})
		}
	}
	out := make([]Risk, len(targets))
	err := parallel.ForEach(workers, len(targets), func(i int) error {
		tg := targets[i]
		d := disclosureFromRatio(e.targetedRatio(views, t, tg.bi, tg.r, k))
		out[i] = Risk{BucketIdx: tg.bi, Value: views[tg.bi].b.Freq()[tg.r].Value, Disclosure: d}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// WeightFunc assigns a sensitivity weight in [0, 1] to each sensitive
// value ("cost-based disclosure": a cancer diagnosis may be graver than a
// flu). Missing values default to weight 1 via ConstWeight.
type WeightFunc func(value string) float64

// ConstWeight weights every value equally.
func ConstWeight(w float64) WeightFunc { return func(string) float64 { return w } }

// WeightedMaxDisclosure computes max_{p,s,φ} w(s) · Pr(t_p[S]=s | B ∧ φ)
// over φ ∈ L^k_basic — the cost-based disclosure of the paper's §6. With
// ConstWeight(1) it coincides with MaxDisclosure (a property test asserts
// this).
func (e *Engine) WeightedMaxDisclosure(bz *bucket.Bucketization, k int, w WeightFunc) (float64, error) {
	if w == nil {
		return 0, fmt.Errorf("core: nil weight function")
	}
	profile, err := e.RiskProfile(bz, k)
	if err != nil {
		return 0, err
	}
	best := 0.0
	for _, r := range profile {
		wt := w(r.Value)
		if wt < 0 || wt > 1 {
			return 0, fmt.Errorf("core: weight %v for %q outside [0, 1]", wt, r.Value)
		}
		if d := wt * r.Disclosure; d > best {
			best = d
		}
	}
	return best, nil
}
