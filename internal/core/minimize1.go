// Package core implements the paper's primary contribution: the
// polynomial-time computation of worst-case disclosure against an attacker
// holding full identification information plus k basic implications
// (language L^k_basic), and the resulting (c,k)-safety check.
//
// By Theorem 9, the maximum of Pr(t_p[S]=s | B ∧ φ) over φ ∈ L^k_basic is
// attained by k simple implications sharing one consequent atom A. Writing
// the posterior as
//
//	Pr(A | B ∧ ∧_i(A_i → A)) = 1 / (1 + Pr(¬A ∧ ∧_i ¬A_i | B)/Pr(A | B))
//
// the problem reduces to minimizing Formula (1),
// Pr(¬A ∧ ∧_i ¬A_i | B) / Pr(A | B), over atoms A, A_i. MINIMIZE1
// (this file) minimizes Pr(∧ ¬A_i | B) for atoms within one bucket;
// MINIMIZE2 (minimize2.go) combines buckets and places A. Total cost is
// O(|B|·k³) as in §3.3 of the paper.
package core

import (
	"math"
	"sync"
)

// m1Entry is a memoized MINIMIZE1 result for one histogram and atom count.
type m1Entry struct {
	val float64
	// comp is the minimizing descending composition: comp[i] atoms are
	// assigned to the i-th (distinct) person, who avoids the comp[i] most
	// frequent values. Its sum can fall short of the requested atom count
	// when atoms are wasted as duplicates (more persons than the bucket
	// holds, or more values than the bucket distinguishes).
	comp []int
}

// m1Scratch holds m1Compute's reusable DP tables. The state space is
// (i, cap, rem) with every coordinate bounded by j (each of the first i
// persons consumed at least one atom, so i < j whenever rem > 0), giving a
// dense j·(j+1)·(j+1) layout. choice doubles as the visited marker: a
// computed state always records a best per-person count of at least 1.
type m1Scratch struct {
	val    []float64
	choice []int32
	prefix []int
}

var m1Pool = sync.Pool{New: func() any { return new(m1Scratch) }}

// grow resizes the scratch for atom count j and histogram length hl,
// zeroing exactly the region the DP will index.
func (sc *m1Scratch) grow(j, hl int) {
	states := j * (j + 1) * (j + 1)
	if cap(sc.val) < states {
		sc.val = make([]float64, states)
		sc.choice = make([]int32, states)
	}
	sc.val = sc.val[:states]
	sc.choice = sc.choice[:states]
	clear(sc.choice)
	if cap(sc.prefix) < hl+1 {
		sc.prefix = make([]int, hl+1)
	}
	sc.prefix = sc.prefix[:hl+1]
}

// m1Compute evaluates MINIMIZE1 for a histogram (counts in decreasing
// order) and exactly j atoms, returning the minimal probability
// Pr(∧_{i<j} ¬A_i | B) restricted to atoms naming persons of this bucket,
// together with a minimizing composition.
//
// Lemma 12 gives the value of a fixed composition (l, k_0 ≥ … ≥ k_{l-1}):
//
//	∏_{i<l} (n − i − Σ_{j<k_i} n(s^j)) / (n − i)
//
// and the DP minimizes over compositions. Two guards absent from the
// paper's pseudocode: the numerator clamps at zero (a person cannot avoid
// more mass than remains), and once all n persons carry an atom the
// remaining atoms are duplicates contributing factor 1. The DP tables come
// from a pool, so the steady-state disclosure path allocates only the
// returned composition.
func m1Compute(hist []int, j int) m1Entry {
	if j == 0 {
		return m1Entry{val: 1}
	}
	sc := m1Pool.Get().(*m1Scratch)
	defer m1Pool.Put(sc)
	sc.grow(j, len(hist))

	n := 0
	prefix := sc.prefix
	prefix[0] = 0
	for i, c := range hist {
		n += c
		prefix[i+1] = prefix[i] + c
	}

	factor := func(i, ki int) float64 {
		pf := prefix[len(prefix)-1]
		if ki < len(prefix)-1 {
			pf = prefix[ki]
		}
		num := n - i - pf
		if num <= 0 {
			return 0
		}
		return float64(num) / float64(n-i)
	}

	// idx flattens (i, cap, rem); i < j and cap, rem <= j by construction.
	idx := func(i, cap, rem int) int {
		return (i*(j+1)+cap)*(j+1) + rem
	}

	var rec func(i, cap, rem int) float64
	rec = func(i, cap, rem int) float64 {
		if rem == 0 || i >= n {
			// rem > 0 with all persons used: duplicates, factor 1.
			return 1
		}
		at := idx(i, cap, rem)
		if sc.choice[at] != 0 {
			return sc.val[at]
		}
		best := math.Inf(1)
		bestKi := 1
		maxKi := cap
		if rem < maxKi {
			maxKi = rem
		}
		for ki := 1; ki <= maxKi; ki++ {
			p := factor(i, ki) * rec(i+1, ki, rem-ki)
			if p < best {
				best, bestKi = p, ki
			}
		}
		sc.val[at] = best
		sc.choice[at] = int32(bestKi)
		return best
	}
	val := rec(0, j, j)

	var comp []int
	for i, cap, rem := 0, j, j; rem > 0 && i < n; {
		ki := int(sc.choice[idx(i, cap, rem)])
		comp = append(comp, ki)
		i, cap, rem = i+1, ki, rem-ki
	}
	return m1Entry{val: val, comp: comp}
}
