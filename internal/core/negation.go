package core

import (
	"fmt"
	"strconv"

	"ckprivacy/internal/bucket"
	"ckprivacy/internal/logic"
)

// NegationMaxDisclosure computes the maximum disclosure against the
// ℓ-diversity adversary: k negated atoms about the target person
// ("individual X does not have sensitive value Y"). This is the dotted
// curve of the paper's Figure 5.
//
// Within a bucket, conditioning person p on avoiding a value set V (with
// s ∉ V) gives Pr(t_p[S]=s) = n_b(s) / (n_b − Σ_{v∈V} n_b(v)), so the worst
// case negates the k most frequent values other than the target value, and
// the maximum scans all buckets and all candidate target values.
//
// Negated atoms are a strict sublanguage of basic implications (§2.2), so
// this is always at most MaxDisclosure for the same k — the ordering the
// paper's Figure 5 demonstrates. Note the language here is target-centered;
// internal/worlds.MaxDisclosureNegations brute-forces negations about
// arbitrary persons, and the equivalence on small instances is checked in
// tests.
func NegationMaxDisclosure(bz *bucket.Bucketization, k int) (float64, error) {
	d, _, _, err := negationBest(bz, k)
	return d, err
}

// NegationSeries computes NegationMaxDisclosure for k = 0..maxK.
func NegationSeries(bz *bucket.Bucketization, maxK int) ([]float64, error) {
	if err := checkArgs(bz, maxK); err != nil {
		return nil, err
	}
	out := make([]float64, maxK+1)
	for k := 0; k <= maxK; k++ {
		d, _, _, err := negationBest(bz, k)
		if err != nil {
			return nil, err
		}
		out[k] = d
	}
	return out, nil
}

func negationBest(bz *bucket.Bucketization, k int) (float64, int, int, error) {
	if err := checkArgs(bz, k); err != nil {
		return 0, 0, 0, err
	}
	best, bestBucket, bestValue := -1.0, 0, 0
	for bi, b := range bz.Buckets {
		n := b.Size()
		for si, vc := range b.Freq() {
			// Mass of the k most frequent values other than s.
			var sum int
			if si < k {
				sum = b.PrefixSum(k+1) - vc.Count
			} else {
				sum = b.PrefixSum(k)
			}
			d := float64(vc.Count) / float64(n-sum)
			if d > best {
				best, bestBucket, bestValue = d, bi, si
			}
		}
	}
	return best, bestBucket, bestValue, nil
}

// NegationWitness describes a worst-case set of negated atoms.
type NegationWitness struct {
	// Disclosure is Pr(Target | B ∧ negations).
	Disclosure float64
	// Target is the atom whose posterior is maximized.
	Target logic.Atom
	// TargetBucket indexes the bucket of Target's person.
	TargetBucket int
	// Negated lists the atoms ruled out, all about Target's person. Fewer
	// than k atoms are returned when the bucket has fewer than k+1
	// distinct values (additional negations would be redundant).
	Negated []logic.Atom
}

// Phi encodes the negations as basic implications over the given sensitive
// domain.
func (w NegationWitness) Phi(domain []string) (logic.Conjunction, error) {
	return logic.Negations(w.Negated, domain)
}

// NegationWitnessFor reconstructs a worst-case negation set. Person names
// are produced by name (nil means the decimal tuple id).
func NegationWitnessFor(bz *bucket.Bucketization, k int, name func(id int) string) (NegationWitness, error) {
	d, bi, si, err := negationBest(bz, k)
	if err != nil {
		return NegationWitness{}, err
	}
	if name == nil {
		name = strconv.Itoa
	}
	b := bz.Buckets[bi]
	freq := b.Freq()
	person := name(b.Tuples[0])
	w := NegationWitness{
		Disclosure:   d,
		Target:       logic.Atom{Person: person, Value: freq[si].Value},
		TargetBucket: bi,
	}
	for r := 0; r < len(freq) && len(w.Negated) < k; r++ {
		if r == si {
			continue
		}
		if si >= k && r >= k {
			break
		}
		if si < k && r >= k+1 {
			break
		}
		w.Negated = append(w.Negated, logic.Atom{Person: person, Value: freq[r].Value})
	}
	if len(w.Negated) > k {
		return NegationWitness{}, fmt.Errorf("core: internal error: %d negations for k = %d", len(w.Negated), k)
	}
	return w, nil
}
