package core

import (
	"math"
	"testing"
	"testing/quick"

	"ckprivacy/internal/bucket"
	"ckprivacy/internal/logic"
	"ckprivacy/internal/worlds"
)

func TestTargetedHandValues(t *testing.T) {
	// Figure 3's male bucket: flu×2 (rank 0), lung×2 (rank 1), mumps (rank
	// 2). Hand-derived worst cases for k=1:
	//   flu:   lung → flu            gives 2/3
	//   lung:  flu → lung            gives (2/5)/((2/5)+(1/5)) = 2/3
	//   mumps: flu → mumps           gives (1/5)/((1/5)+(2/5)) = 1/3
	e := NewEngine()
	bz := fig3()
	cases := []struct {
		bucket int
		value  string
		k      int
		want   float64
	}{
		{0, "flu", 0, 2.0 / 5},
		{0, "flu", 1, 2.0 / 3},
		{0, "lung", 1, 2.0 / 3},
		{0, "mumps", 1, 1.0 / 3},
		{0, "mumps", 0, 1.0 / 5},
		{0, "flu", 2, 1.0},
		{0, "mumps", 2, 1.0}, // ¬flu ∧ ¬lung pins mumps
		{1, "breast", 1, 1.0 / 3},
		// Bucket 1 has histogram {2,1,1,1}: the worst case for flu is two
		// persons both avoiding flu, (2/5)/((2/5)+(3/5)(2/4)) = 4/7.
		{1, "flu", 1, 4.0 / 7},
	}
	for _, c := range cases {
		got, err := e.TargetedMaxDisclosure(bz, c.bucket, c.value, c.k)
		if err != nil {
			t.Fatalf("(%d,%s,k=%d): %v", c.bucket, c.value, c.k, err)
		}
		if math.Abs(got-c.want) > eps {
			t.Errorf("Targeted(%d, %s, k=%d) = %v, want %v", c.bucket, c.value, c.k, got, c.want)
		}
	}
}

func TestTargetedArguments(t *testing.T) {
	e := NewEngine()
	bz := fig3()
	if _, err := e.TargetedMaxDisclosure(nil, 0, "flu", 1); err == nil {
		t.Error("nil bucketization accepted")
	}
	if _, err := e.TargetedMaxDisclosure(bz, -1, "flu", 1); err == nil {
		t.Error("negative bucket accepted")
	}
	if _, err := e.TargetedMaxDisclosure(bz, 9, "flu", 1); err == nil {
		t.Error("out-of-range bucket accepted")
	}
	if _, err := e.TargetedMaxDisclosure(bz, 0, "flu", -1); err == nil {
		t.Error("negative k accepted")
	}
	// Absent value: probability is identically zero.
	d, err := e.TargetedMaxDisclosure(bz, 0, "heart", 3)
	if err != nil || d != 0 {
		t.Errorf("absent value: %v, %v", d, err)
	}
}

// TestTargetedMatchesOracle validates the nested-chain DP (including its
// unproved nestedness assumption, see targeted.go) against the exact
// fixed-target oracle on randomized instances: every (bucket, value, k)
// triple must agree.
func TestTargetedMatchesOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("exponential oracle")
	}
	e := NewEngine()
	checked := 0
	f := func(raw []byte, kRaw uint8) bool {
		groups := groupsFromRaw(raw)
		if groups == nil {
			return true
		}
		k := int(kRaw) % 3
		bz := bucket.FromValues(groups...)
		in := asInstance(t, groups)
		for bi, b := range bz.Buckets {
			person := personName(groups, bi)
			for _, vc := range b.Freq() {
				dp, err := e.TargetedMaxDisclosure(bz, bi, vc.Value, k)
				if err != nil {
					return false
				}
				res, err := in.MaxDisclosureTargeted(
					atomFor(person, vc.Value), k, worlds.BruteOptions{})
				if err != nil {
					return false
				}
				checked++
				if math.Abs(dp-ratFloat(res.Prob)) > eps {
					t.Logf("groups=%v bucket=%d value=%s k=%d dp=%v oracle=%s",
						groups, bi, vc.Value, k, dp, res.Prob.RatString())
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
	if checked < 100 {
		t.Fatalf("only %d effective comparisons", checked)
	}
}

// TestProfileMaxEqualsMaxDisclosure cross-validates the two DPs: the
// maximum of the per-target risks must equal the global maximum
// disclosure.
func TestProfileMaxEqualsMaxDisclosure(t *testing.T) {
	e := NewEngine()
	f := func(raw []byte, kRaw uint8) bool {
		groups := groupsFromRaw(raw)
		if groups == nil {
			return true
		}
		k := int(kRaw) % 5
		bz := bucket.FromValues(groups...)
		profile, err := e.RiskProfile(bz, k)
		if err != nil {
			return false
		}
		best := 0.0
		for _, r := range profile {
			if r.Disclosure > best {
				best = r.Disclosure
			}
		}
		global, err := e.MaxDisclosure(bz, k)
		if err != nil {
			return false
		}
		if math.Abs(best-global) > eps {
			t.Logf("groups=%v k=%d profileMax=%v global=%v", groups, k, best, global)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestRiskProfileShape(t *testing.T) {
	e := NewEngine()
	bz := fig3()
	profile, err := e.RiskProfile(bz, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 3 distinct values in bucket 0, 4 in bucket 1.
	if len(profile) != 7 {
		t.Fatalf("profile has %d entries, want 7", len(profile))
	}
	seen := map[string]float64{}
	for _, r := range profile {
		if r.Disclosure < 0 || r.Disclosure > 1 {
			t.Errorf("risk out of range: %+v", r)
		}
		seen[itoa(r.BucketIdx)+"/"+r.Value] = r.Disclosure
	}
	if math.Abs(seen["0/mumps"]-1.0/3) > eps {
		t.Errorf("mumps risk = %v, want 1/3", seen["0/mumps"])
	}
	if _, err := e.RiskProfile(nil, 1); err == nil {
		t.Error("nil bucketization accepted")
	}
}

func TestWeightedMaxDisclosure(t *testing.T) {
	e := NewEngine()
	bz := fig3()

	// Uniform weight 1 must coincide with the plain maximum.
	w1, err := e.WeightedMaxDisclosure(bz, 1, ConstWeight(1))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := e.MaxDisclosure(bz, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w1-plain) > eps {
		t.Errorf("ConstWeight(1) = %v, plain = %v", w1, plain)
	}

	// Flu considered harmless: the worst case shifts to lung (2/3 at k=1).
	wf := func(v string) float64 {
		if v == "flu" {
			return 0
		}
		return 1
	}
	got, err := e.WeightedMaxDisclosure(bz, 1, wf)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.0/3) > eps {
		t.Errorf("flu-free weighted = %v, want 2/3 (lung)", got)
	}

	// Scaling all weights scales the result.
	half, err := e.WeightedMaxDisclosure(bz, 1, ConstWeight(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(half-plain/2) > eps {
		t.Errorf("half weight = %v, want %v", half, plain/2)
	}

	if _, err := e.WeightedMaxDisclosure(bz, 1, nil); err == nil {
		t.Error("nil weight accepted")
	}
	if _, err := e.WeightedMaxDisclosure(bz, 1, ConstWeight(2)); err == nil {
		t.Error("weight > 1 accepted")
	}
	if _, err := e.WeightedMaxDisclosure(nil, 1, ConstWeight(1)); err == nil {
		t.Error("nil bucketization accepted")
	}
}

// TestWeightedMatchesOracle validates cost-based disclosure end to end:
// max over targets of w(s) times the fixed-target oracle maximum.
func TestWeightedMatchesOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("exponential oracle")
	}
	e := NewEngine()
	weights := map[string]float64{"a": 1, "b": 0.5, "c": 0.25}
	wf := func(v string) float64 { return weights[v] }
	f := func(raw []byte, kRaw uint8) bool {
		groups := groupsFromRaw(raw)
		if groups == nil {
			return true
		}
		k := int(kRaw) % 2
		bz := bucket.FromValues(groups...)
		dp, err := e.WeightedMaxDisclosure(bz, k, wf)
		if err != nil {
			return false
		}
		in := asInstance(t, groups)
		best := 0.0
		for bi, b := range bz.Buckets {
			person := personName(groups, bi)
			for _, vc := range b.Freq() {
				res, err := in.MaxDisclosureTargeted(atomFor(person, vc.Value), k, worlds.BruteOptions{})
				if err != nil {
					return false
				}
				if d := weights[vc.Value] * ratFloat(res.Prob); d > best {
					best = d
				}
			}
		}
		if math.Abs(dp-best) > eps {
			t.Logf("groups=%v k=%d dp=%v oracle=%v", groups, k, dp, best)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestTargetedMonotoneInK checks that fixed-target disclosure is
// non-decreasing in the knowledge bound.
func TestTargetedMonotoneInK(t *testing.T) {
	e := NewEngine()
	f := func(raw []byte) bool {
		groups := groupsFromRaw(raw)
		if groups == nil {
			return true
		}
		bz := bucket.FromValues(groups...)
		for bi, b := range bz.Buckets {
			prev := -1.0
			for k := 0; k <= 4; k++ {
				d, err := e.TargetedMaxDisclosure(bz, bi, b.TopValue(), k)
				if err != nil {
					return false
				}
				if d < prev-eps {
					return false
				}
				prev = d
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// personName returns the decimal id of the first person in bucket bi for
// groups laid out like bucket.FromValues.
func personName(groups [][]string, bi int) string {
	id := 0
	for i := 0; i < bi; i++ {
		id += len(groups[i])
	}
	return itoa(id)
}

func atomFor(person, value string) logic.Atom {
	return logic.Atom{Person: person, Value: value}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := []byte{}
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
