package core

import (
	"math"
	"testing"
	"testing/quick"

	"ckprivacy/internal/bucket"
	"ckprivacy/internal/worlds"
)

func TestNegationHandValues(t *testing.T) {
	cases := []struct {
		groups [][]string
		k      int
		want   float64
	}{
		// Figure 3, male bucket dominates: k=0 baseline 2/5.
		{figure3Groups, 0, 2.0 / 5},
		// ¬lung leaves flu at 2/3.
		{figure3Groups, 1, 2.0 / 3},
		// ¬lung ∧ ¬mumps pins flu.
		{figure3Groups, 2, 1.0},
		// Uniform bucket: each negation removes one candidate.
		{[][]string{{"a", "b", "c", "d"}}, 1, 1.0 / 3},
		{[][]string{{"a", "b", "c", "d"}}, 2, 1.0 / 2},
		{[][]string{{"a", "b", "c", "d"}}, 3, 1.0},
		// Skewed bucket {a,a,a,b,c}: best is target a, negate b: 3/4.
		{[][]string{{"a", "a", "a", "b", "c"}}, 1, 3.0 / 4},
		// k beyond distinct-1 stays 1.
		{[][]string{{"a", "b"}}, 5, 1.0},
	}
	for _, c := range cases {
		got, err := NegationMaxDisclosure(bucket.FromValues(c.groups...), c.k)
		if err != nil {
			t.Fatalf("%v k=%d: %v", c.groups, c.k, err)
		}
		if math.Abs(got-c.want) > eps {
			t.Errorf("NegationMaxDisclosure(%v, %d) = %v, want %v", c.groups, c.k, got, c.want)
		}
	}
}

func TestNegationTargetNeedNotBeTopValue(t *testing.T) {
	// {a,a,a,a,b,b,b}: with k=1, target b and negate a: 3/3 = 1 beats
	// target a negate b: 4/4 = 1 — tie here, so sharpen: {a,a,a,b,b,c}:
	// target a, ¬b: 3/(6-2) = 3/4; target b, ¬a: 2/(6-3) = 2/3. Top value
	// wins. Now {a,a,b,b,b,c? } — construct a case where the second value
	// wins: {a,a,a,b,b,b,c}: a with ¬b: 3/4; b with ¬a: 3/4 — symmetric.
	// The scan over all (bucket, value) pairs is what matters; check it
	// against brute force below. Here, just check a two-bucket case where
	// the best bucket is not the first.
	bz := bucket.FromValues([]string{"a", "b", "c"}, []string{"x", "x", "y"})
	got, err := NegationMaxDisclosure(bz, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.0) > eps { // bucket 2: target x, negate y: 2/2
		t.Errorf("got %v, want 1", got)
	}
}

// TestNegationMatchesOracle validates the closed form against the
// brute-force search over all k-subsets of negated atoms — including atoms
// about persons other than the target, which the closed form does not use.
func TestNegationMatchesOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("exponential oracle")
	}
	checked := 0
	f := func(raw []byte, kRaw uint8) bool {
		groups := groupsFromRaw(raw)
		if groups == nil {
			return true
		}
		k := 1 + int(kRaw)%2
		bz := bucket.FromValues(groups...)
		closed, err := NegationMaxDisclosure(bz, k)
		if err != nil {
			return false
		}
		in := asInstance(t, groups)
		res, err := in.MaxDisclosureNegations(k, worlds.BruteOptions{})
		if err != nil {
			return false
		}
		checked++
		if math.Abs(closed-ratFloat(res.Prob)) > eps {
			t.Logf("groups=%v k=%d closed=%v oracle=%s phi=%v",
				groups, k, closed, res.Prob.RatString(), res.Phi)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
	if checked < 40 {
		t.Fatalf("only %d effective comparisons", checked)
	}
}

// TestNegationBelowImplication property-checks the paper's Figure 5
// ordering: negated atoms are a sublanguage of basic implications, so their
// worst case never exceeds the implication worst case.
func TestNegationBelowImplication(t *testing.T) {
	e := NewEngine()
	f := func(raw []byte, kRaw uint8) bool {
		groups := groupsFromRaw(raw)
		if groups == nil {
			return true
		}
		k := int(kRaw) % 6
		bz := bucket.FromValues(groups...)
		neg, err1 := NegationMaxDisclosure(bz, k)
		imp, err2 := e.MaxDisclosure(bz, k)
		if err1 != nil || err2 != nil {
			return false
		}
		return neg <= imp+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestNegationSeriesMonotone(t *testing.T) {
	series, err := NegationSeries(fig3(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 7 {
		t.Fatalf("series length %d", len(series))
	}
	for k := 1; k < len(series); k++ {
		if series[k] < series[k-1]-eps {
			t.Errorf("negation series not monotone: %v", series)
		}
	}
	if series[0] != 2.0/5 || series[2] != 1 {
		t.Errorf("series endpoints wrong: %v", series)
	}
}

func TestNegationWitness(t *testing.T) {
	w, err := NegationWitnessFor(fig3(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w.Disclosure-2.0/3) > eps {
		t.Errorf("disclosure = %v, want 2/3", w.Disclosure)
	}
	if w.Target.Value != "flu" || len(w.Negated) != 1 {
		t.Errorf("witness = %+v", w)
	}
	if w.Negated[0].Person != w.Target.Person {
		t.Error("negation witness must be target-centered")
	}
	if w.Negated[0].Value == w.Target.Value {
		t.Error("negated value equals target value")
	}
	// The encoded formula achieves the claimed probability exactly.
	in := asInstance(t, figure3Groups)
	phi, err := w.Phi(in.Domain())
	if err != nil {
		t.Fatal(err)
	}
	p, err := in.CondProb(w.Target, phi)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w.Disclosure-ratFloat(p)) > eps {
		t.Errorf("witness claims %v, oracle %s", w.Disclosure, p.RatString())
	}
}

// TestNegationWitnessAchieves property-checks witness probabilities against
// the oracle.
func TestNegationWitnessAchieves(t *testing.T) {
	if testing.Short() {
		t.Skip("exact oracle")
	}
	f := func(raw []byte, kRaw uint8) bool {
		groups := groupsFromRaw(raw)
		if groups == nil {
			return true
		}
		k := int(kRaw) % 3
		bz := bucket.FromValues(groups...)
		w, err := NegationWitnessFor(bz, k, nil)
		if err != nil {
			return false
		}
		if len(w.Negated) > k {
			return false
		}
		in := asInstance(t, groups)
		dom := in.Domain()
		if len(dom) < 2 {
			return true // negations need two values to encode
		}
		phi, err := w.Phi(dom)
		if err != nil {
			return false
		}
		p, err := in.CondProb(w.Target, phi)
		if err != nil {
			return false
		}
		return math.Abs(w.Disclosure-ratFloat(p)) < eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
