package core

import (
	"fmt"
	"math/big"

	"ckprivacy/internal/bucket"
)

// This file provides exact rational-arithmetic variants of the disclosure
// computation. The float64 DP is subject to ~1 ulp of round-off, which can
// flip a strict (c,k)-safety comparison when the threshold coincides with
// the true maximum (see IsCKSafe); the exact variants decide such
// boundaries correctly at a constant-factor cost in time and allocation.

// m1Key indexes the exact DP's states: person index i, upper bound cap on
// this person's atom count, and rem atoms still to place. (The float path
// uses flat pooled tables; the exact path keeps the simple map.)
type m1Key struct{ i, cap, rem int }

// ratInf is the +∞ sentinel: a nil *big.Rat.
func ratLess(a, b *big.Rat) bool {
	if b == nil {
		return a != nil
	}
	if a == nil {
		return false
	}
	return a.Cmp(b) < 0
}

// m1ComputeRat is m1Compute over exact rationals (value only; witness
// reconstruction stays in the float path).
func m1ComputeRat(hist []int, j int) *big.Rat {
	n := 0
	prefix := make([]int, len(hist)+1)
	for i, c := range hist {
		n += c
		prefix[i+1] = prefix[i] + c
	}
	one := big.NewRat(1, 1)
	if j == 0 {
		return one
	}
	factor := func(i, ki int) *big.Rat {
		pf := prefix[len(prefix)-1]
		if ki < len(prefix)-1 {
			pf = prefix[ki]
		}
		num := n - i - pf
		if num <= 0 {
			return new(big.Rat)
		}
		return big.NewRat(int64(num), int64(n-i))
	}
	memo := make(map[m1Key]*big.Rat)
	var rec func(i, cap, rem int) *big.Rat
	rec = func(i, cap, rem int) *big.Rat {
		if rem == 0 || i >= n {
			return one
		}
		key := m1Key{i, cap, rem}
		if v, ok := memo[key]; ok {
			return v
		}
		var best *big.Rat
		maxKi := cap
		if rem < maxKi {
			maxKi = rem
		}
		for ki := 1; ki <= maxKi; ki++ {
			p := new(big.Rat).Mul(factor(i, ki), rec(i+1, ki, rem-ki))
			if ratLess(p, best) {
				best = p
			}
		}
		memo[key] = best
		return best
	}
	return rec(0, j, j)
}

// ExactMaxDisclosure is MaxDisclosure computed in exact rational
// arithmetic. It shares no state with the float engine; each call memoizes
// per-histogram MINIMIZE1 tables internally.
func (e *Engine) ExactMaxDisclosure(bz *bucket.Bucketization, k int) (*big.Rat, error) {
	return e.ExactMaxDisclosureOpt(bz, k, Options{})
}

// ExactMaxDisclosureOpt is ExactMaxDisclosure with Options.
func (e *Engine) ExactMaxDisclosureOpt(bz *bucket.Bucketization, k int, opt Options) (*big.Rat, error) {
	if err := checkArgs(bz, k); err != nil {
		return nil, err
	}
	views := makeViews(bz)
	one := big.NewRat(1, 1)

	// Per-call MINIMIZE1 memo keyed by histogram signature. This is a cold
	// path (exact arithmetic dominates), so building the signature strings
	// here is harmless — the shared float engine's memo is what dropped
	// them.
	sigs := make([]string, len(views))
	for i := range views {
		sigs[i] = views[i].b.Signature()
	}
	m1memo := make(map[string][]*big.Rat)
	m1 := func(v *bucketView, j int) *big.Rat {
		sig := sigs[v.index]
		tab, ok := m1memo[sig]
		if !ok {
			tab = make([]*big.Rat, k+2)
			m1memo[sig] = tab
		}
		if tab[j] == nil {
			tab[j] = m1ComputeRat(v.hist, j)
		}
		return tab[j]
	}

	nb := len(views)
	type state struct{ val *big.Rat }
	memo := make([][][2]*state, nb)
	for i := range memo {
		memo[i] = make([][2]*state, k+1)
	}
	var rec func(i, h int, placed bool) *big.Rat // nil = +∞
	rec = func(i, h int, placed bool) *big.Rat {
		pi := 0
		if placed {
			pi = 1
		}
		if i == nb {
			if placed {
				return one
			}
			return nil
		}
		if s := memo[i][h][pi]; s != nil {
			return s.val
		}
		v := &views[i]
		ratio := big.NewRat(int64(v.n), int64(v.top))
		var best *big.Rat
		for cnt := 0; cnt <= h; cnt++ {
			if tail := rec(i+1, h-cnt, placed); tail != nil {
				cand := new(big.Rat).Mul(m1(v, cnt), tail)
				if ratLess(cand, best) {
					best = cand
				}
			}
			if !placed && (!opt.ForbidSameBucketAntecedent || cnt == 0) {
				if tail := rec(i+1, h-cnt, true); tail != nil {
					cand := new(big.Rat).Mul(m1(v, cnt+1), ratio)
					cand.Mul(cand, tail)
					if ratLess(cand, best) {
						best = cand
					}
				}
			}
		}
		memo[i][h][pi] = &state{val: best}
		return best
	}
	rmin := rec(0, k, false)
	if rmin == nil {
		return nil, fmt.Errorf("core: no valid placement under the given options")
	}
	// 1 / (1 + rmin)
	den := new(big.Rat).Add(one, rmin)
	return new(big.Rat).Quo(one, den), nil
}

// IsCKSafeExact decides (c,k)-safety with an exact rational threshold,
// immune to float round-off at the boundary. The comparison is strict, as
// in Definition 13.
func (e *Engine) IsCKSafeExact(bz *bucket.Bucketization, c *big.Rat, k int) (bool, error) {
	if c == nil || c.Sign() < 0 || c.Cmp(big.NewRat(1, 1)) > 0 {
		return false, fmt.Errorf("core: threshold %v outside [0, 1]", c)
	}
	d, err := e.ExactMaxDisclosure(bz, k)
	if err != nil {
		return false, err
	}
	return d.Cmp(c) < 0, nil
}

// ExactNegationMaxDisclosure is NegationMaxDisclosure in exact arithmetic.
func ExactNegationMaxDisclosure(bz *bucket.Bucketization, k int) (*big.Rat, error) {
	if err := checkArgs(bz, k); err != nil {
		return nil, err
	}
	var best *big.Rat
	for _, b := range bz.Buckets {
		n := b.Size()
		for si, vc := range b.Freq() {
			var sum int
			if si < k {
				sum = b.PrefixSum(k+1) - vc.Count
			} else {
				sum = b.PrefixSum(k)
			}
			d := big.NewRat(int64(vc.Count), int64(n-sum))
			if best == nil || d.Cmp(best) > 0 {
				best = d
			}
		}
	}
	return best, nil
}
