package core

import (
	"fmt"
	"math"
	"sync"

	"ckprivacy/internal/bucket"
)

// Options tunes the disclosure computation.
type Options struct {
	// ForbidSameBucketAntecedent restricts the adversary's implications to
	// antecedent atoms in buckets other than the consequent's bucket. The
	// unrestricted maximum (the paper's actual definition) is computed when
	// false. The restriction exists to reproduce the paper's §2.3 worked
	// example, whose quoted 10/19 is the cross-bucket maximum — see
	// DESIGN.md §6.
	ForbidSameBucketAntecedent bool
}

// m2state is one MINIMIZE2 DP state: bucket index, antecedent atoms left to
// place, and whether the consequent atom A has been placed already.
type m2choice struct {
	cnt       int  // antecedent atoms placed in this bucket
	placeHere bool // whether A is placed in this bucket
	valid     bool
}

// m2Scratch holds MINIMIZE2's DP tables in flat pooled slices: states
// (i, h, placed) with i <= nb and h <= k. The value table is NaN-marked for
// "not yet computed", exactly as the per-call allocation was. Callers that
// walk the choice table (witness reconstruction) keep the scratch until
// they are done, then release it.
type m2Scratch struct {
	val    []float64
	choice []m2choice
	k      int
}

var m2Pool = sync.Pool{New: func() any { return new(m2Scratch) }}

// grow resizes and re-marks the tables for nb buckets and k atoms.
func (sc *m2Scratch) grow(nb, k int) {
	states := (nb + 1) * (k + 1) * 2
	if cap(sc.val) < states {
		sc.val = make([]float64, states)
		sc.choice = make([]m2choice, states)
	}
	sc.val = sc.val[:states]
	sc.choice = sc.choice[:states]
	for i := range sc.val {
		sc.val[i] = math.NaN()
	}
	clear(sc.choice)
	sc.k = k
}

// idx flattens (i, h, pi).
func (sc *m2Scratch) idx(i, h, pi int) int {
	return (i*(sc.k+1)+h)*2 + pi
}

// choiceAt returns the recorded choice for state (i, h, pi).
func (sc *m2Scratch) choiceAt(i, h, pi int) m2choice {
	return sc.choice[sc.idx(i, h, pi)]
}

// release returns the scratch to the pool.
func (sc *m2Scratch) release() { m2Pool.Put(sc) }

// minimize2 minimizes Formula (1) over all placements of the k antecedent
// atoms and the consequent atom A across buckets, returning the minimum and
// the DP scratch whose choice tables drive witness reconstruction. The
// caller must release() the scratch when done with it.
//
// Against the paper's Algorithm 2 pseudocode, two typos are corrected (see
// DESIGN.md §4): the base case returns 1 on success (not the initialized
// rmin = ∞), and the initial "A already placed" flag is false.
//
//ckvet:ignore poolleak ownership transfers to the caller, which must release(); the scratch's choice tables drive witness reconstruction after return
func (e *Engine) minimize2(views []bucketView, k int, opt Options) (float64, *m2Scratch) {
	nb := len(views)
	sc := m2Pool.Get().(*m2Scratch)
	sc.grow(nb, k)
	var rec func(i, h int, placed bool) float64
	rec = func(i, h int, placed bool) float64 {
		pi := 0
		if placed {
			pi = 1
		}
		if i == nb {
			if placed {
				// Any unplaced antecedent atoms are spent on tautologies,
				// which impose no constraint (factor 1).
				return 1
			}
			return math.Inf(1)
		}
		at := sc.idx(i, h, pi)
		if v := sc.val[at]; !math.IsNaN(v) {
			return v
		}
		v := views[i]
		ratio := float64(v.n) / float64(v.top)
		best := math.Inf(1)
		var bestChoice m2choice
		for cnt := 0; cnt <= h; cnt++ {
			u := e.m1(v.hist, cnt).val
			// Option 1: A is not in this bucket.
			if cand := u * rec(i+1, h-cnt, placed); cand < best {
				best = cand
				bestChoice = m2choice{cnt: cnt, placeHere: false, valid: true}
			}
			// Option 2: A is in this bucket (with cnt local antecedents).
			if !placed && (!opt.ForbidSameBucketAntecedent || cnt == 0) {
				w := e.m1(v.hist, cnt+1).val * ratio
				if cand := w * rec(i+1, h-cnt, true); cand < best {
					best = cand
					bestChoice = m2choice{cnt: cnt, placeHere: true, valid: true}
				}
			}
		}
		sc.val[at] = best
		sc.choice[at] = bestChoice
		return best
	}
	return rec(0, k, false), sc
}

// MaxDisclosure computes the maximum disclosure of the bucketization with
// respect to L^k_basic (Definition 6) in O(|B|·k³) time.
func (e *Engine) MaxDisclosure(bz *bucket.Bucketization, k int) (float64, error) {
	return e.MaxDisclosureOpt(bz, k, Options{})
}

// MaxDisclosureOpt is MaxDisclosure with Options.
func (e *Engine) MaxDisclosureOpt(bz *bucket.Bucketization, k int, opt Options) (float64, error) {
	if err := checkArgs(bz, k); err != nil {
		return 0, err
	}
	rmin, sc := e.minimize2(makeViews(bz), k, opt)
	sc.release()
	return disclosureFromRatio(rmin), nil
}

// disclosureFromRatio converts min Formula (1) to the maximum disclosure
// 1/(1 + r).
func disclosureFromRatio(r float64) float64 {
	if math.IsInf(r, 1) {
		// No valid placement (possible only under restrictive Options);
		// the adversary learns nothing beyond the k=0 baseline, which the
		// caller gets by placing A alone — this branch is unreachable for
		// non-empty bucketizations because cnt=0 placements always exist.
		return 0
	}
	return 1 / (1 + r)
}

func checkArgs(bz *bucket.Bucketization, k int) error {
	if bz == nil || len(bz.Buckets) == 0 {
		return fmt.Errorf("core: empty bucketization")
	}
	if k < 0 {
		return fmt.Errorf("core: negative knowledge bound k = %d", k)
	}
	for i, b := range bz.Buckets {
		if b.Size() == 0 {
			return fmt.Errorf("core: bucket %d is empty", i)
		}
	}
	return nil
}

// MaxDisclosure is a convenience wrapper using a throwaway engine.
func MaxDisclosure(bz *bucket.Bucketization, k int) (float64, error) {
	return NewEngine().MaxDisclosure(bz, k)
}

// Series computes the maximum disclosure for every k in 0..maxK, sharing
// the engine's memo across the sweep (the Figure 5 workload).
func (e *Engine) Series(bz *bucket.Bucketization, maxK int) ([]float64, error) {
	if err := checkArgs(bz, maxK); err != nil {
		return nil, err
	}
	views := makeViews(bz)
	out := make([]float64, maxK+1)
	for k := 0; k <= maxK; k++ {
		rmin, sc := e.minimize2(views, k, Options{})
		sc.release()
		out[k] = disclosureFromRatio(rmin)
	}
	return out, nil
}

// IsCKSafe reports whether the bucketization is (c,k)-safe (Definition 13):
// maximum disclosure with respect to L^k_basic strictly below the threshold
// c. The comparison is a strict float64 inequality; thresholds within
// round-off (~1e-15 relative) of the true maximum may be classified either
// way.
func (e *Engine) IsCKSafe(bz *bucket.Bucketization, c float64, k int) (bool, error) {
	if c < 0 || c > 1 {
		return false, fmt.Errorf("core: threshold c = %v outside [0, 1]", c)
	}
	d, err := e.MaxDisclosure(bz, k)
	if err != nil {
		return false, err
	}
	return d < c, nil
}
