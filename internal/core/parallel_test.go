package core

import (
	"reflect"
	"testing"
	"testing/quick"

	"ckprivacy/internal/bucket"
)

// TestRiskProfileParallelMatchesSerial asserts the parallel profile is
// identical — same entries, same order — at any worker count, on random
// bucketizations.
func TestRiskProfileParallelMatchesSerial(t *testing.T) {
	e := NewEngine()
	f := func(raw []byte, kRaw, wRaw uint8) bool {
		groups := groupsFromRaw(raw)
		if groups == nil {
			return true
		}
		k := int(kRaw) % 5
		workers := int(wRaw)%8 + 1
		bz := bucket.FromValues(groups...)
		serial, err1 := e.RiskProfile(bz, k)
		par, err2 := e.RiskProfileParallel(bz, k, workers)
		if err1 != nil || err2 != nil {
			return false
		}
		return reflect.DeepEqual(serial, par)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRiskProfileParallelArguments(t *testing.T) {
	e := NewEngine()
	if _, err := e.RiskProfileParallel(nil, 1, 4); err == nil {
		t.Error("nil bucketization accepted")
	}
	if _, err := e.RiskProfileParallel(fig3(), -1, 4); err == nil {
		t.Error("negative k accepted")
	}
}
