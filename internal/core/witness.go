package core

import (
	"fmt"
	"strconv"

	"ckprivacy/internal/bucket"
	"ckprivacy/internal/logic"
)

// Witness is a concrete worst-case knowledge formula achieving the maximum
// disclosure: k simple implications sharing the consequent Target (the form
// Theorem 9 guarantees is sufficient).
type Witness struct {
	// Disclosure is Pr(Target | B ∧ Implications).
	Disclosure float64
	// Target is the atom whose posterior is maximized.
	Target logic.Atom
	// TargetBucket is the index of the bucket containing Target's person.
	TargetBucket int
	// Implications are the k simple implications; their conjunction is the
	// maximizing φ ∈ L^k_basic. Implications that would duplicate an
	// existing atom are realized as tautologies Target → Target, which are
	// semantically equivalent padding.
	Implications []logic.SimpleImplication
}

// Phi returns the witness knowledge as a Conjunction.
func (w Witness) Phi() logic.Conjunction {
	c := make(logic.Conjunction, len(w.Implications))
	for i, s := range w.Implications {
		c[i] = s.Basic()
	}
	return c
}

// Witness reconstructs a maximizing set of implications alongside the
// maximum disclosure. Person names are produced by name (nil means the
// decimal tuple id).
func (e *Engine) Witness(bz *bucket.Bucketization, k int, opt Options, name func(id int) string) (Witness, error) {
	if err := checkArgs(bz, k); err != nil {
		return Witness{}, err
	}
	if name == nil {
		name = strconv.Itoa
	}
	views := makeViews(bz)
	rmin, sc := e.minimize2(views, k, opt)
	defer sc.release()

	// Walk the DP choices to recover per-bucket antecedent counts and the
	// placement of A.
	type placement struct {
		bucket int
		cnt    int
		hasA   bool
	}
	var placements []placement
	h, placed := k, false
	for i := 0; i < len(views); i++ {
		pi := 0
		if placed {
			pi = 1
		}
		ch := sc.choiceAt(i, h, pi)
		if !ch.valid {
			return Witness{}, fmt.Errorf("core: no witness: disclosure is unattainable under the given options")
		}
		if ch.cnt > 0 || ch.placeHere {
			placements = append(placements, placement{bucket: i, cnt: ch.cnt, hasA: ch.placeHere})
		}
		h -= ch.cnt
		placed = placed || ch.placeHere
	}
	if !placed {
		return Witness{}, fmt.Errorf("core: no witness: consequent atom was never placed")
	}

	w := Witness{Disclosure: disclosureFromRatio(rmin)}
	var antecedents []logic.Atom
	for _, pl := range placements {
		v := views[pl.bucket]
		freq := v.b.Freq()
		atoms := pl.cnt
		if pl.hasA {
			atoms++
		}
		comp := e.m1(v.hist, atoms).comp
		for person, kj := range comp {
			if person >= len(v.b.Tuples) {
				break
			}
			pname := name(v.b.Tuples[person])
			for r := 0; r < kj && r < len(freq); r++ {
				atom := logic.Atom{Person: pname, Value: freq[r].Value}
				if pl.hasA && person == 0 && r == 0 {
					// Lemma 12 guarantees the minimizing set contains an
					// atom naming the most frequent value; it becomes A.
					w.Target = atom
					w.TargetBucket = pl.bucket
					continue
				}
				antecedents = append(antecedents, atom)
			}
		}
	}
	if w.Target == (logic.Atom{}) {
		return Witness{}, fmt.Errorf("core: no witness: target atom reconstruction failed")
	}
	for _, a := range antecedents {
		w.Implications = append(w.Implications, logic.SimpleImplication{Ante: a, Cons: w.Target})
	}
	// Pad wasted atoms with tautologies so the witness stays in L^k_basic.
	for len(w.Implications) < k {
		w.Implications = append(w.Implications, logic.SimpleImplication{Ante: w.Target, Cons: w.Target})
	}
	if len(w.Implications) > k {
		return Witness{}, fmt.Errorf("core: internal error: witness has %d implications for k = %d", len(w.Implications), k)
	}
	return w, nil
}
