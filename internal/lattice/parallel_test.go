package lattice

import (
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// sameNodeSeq requires equality including order — the parallel searches
// promise byte-identical output, not just set equality.
func sameNodeSeq(a, b []Node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			return false
		}
	}
	return true
}

// TestMinimalSatisfyingParallelEquivalence is the parallel-vs-serial
// property test: for random spaces, random monotone predicates and worker
// counts 1..8, the parallel search must return the identical node sequence
// and identical Stats (in particular, Evaluated never exceeds — in fact
// equals — the serial count, including at workers=1).
func TestMinimalSatisfyingParallelEquivalence(t *testing.T) {
	f := func(raw []uint8, w uint8) bool {
		if len(raw) < 4 {
			return true
		}
		workers := int(w)%8 + 1
		dims := []int{2 + int(raw[0])%3, 1 + int(raw[1])%3, 1 + int(raw[2])%2}
		s := MustSpace(dims...)
		all := s.All()
		var gens []Node
		for i := 3; i < len(raw) && i < 8; i++ {
			gens = append(gens, all[int(raw[i])%len(all)])
		}
		pred := generatorPred(gens)
		serial, sStats, err1 := MinimalSatisfying(s, pred)
		par, pStats, err2 := MinimalSatisfyingParallel(s, pred, workers)
		if err1 != nil || err2 != nil {
			return false
		}
		return sameNodeSeq(serial, par) && sStats == pStats
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIncognitoParallelEquivalence(t *testing.T) {
	f := func(w0, w1, w2, lim, w uint8) bool {
		workers := int(w)%8 + 1
		s := MustSpace(4, 3, 2)
		weights := []int{int(w0)%4 + 1, int(w1)%4 + 1, int(w2)%4 + 1}
		limit := int(lim) % 12
		check, _ := weightedCheck(s, weights, limit)
		serial, sStats, err1 := Incognito(s, check)
		par, pStats, err2 := IncognitoParallel(s, check, workers)
		if err1 != nil || err2 != nil {
			return false
		}
		return sameNodeSeq(serial, par) && sStats == pStats
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBinarySearchChainParallelEquivalence(t *testing.T) {
	s := MustSpace(5, 4, 3)
	chain := s.Chain()
	for workers := 1; workers <= 8; workers++ {
		for threshold := 0; threshold <= s.MaxHeight()+1; threshold++ {
			pred := func(n Node) (bool, error) { return n.Height() >= threshold, nil }
			wantIdx, wantStats, err := BinarySearchChain(chain, pred)
			if err != nil {
				t.Fatal(err)
			}
			idx, stats, err := BinarySearchChainParallel(chain, pred, workers)
			if err != nil {
				t.Fatal(err)
			}
			if idx != wantIdx {
				t.Errorf("workers=%d threshold=%d: idx = %d, want %d", workers, threshold, idx, wantIdx)
			}
			if workers == 1 && stats != wantStats {
				t.Errorf("workers=1 threshold=%d: stats = %+v, want serial %+v", threshold, stats, wantStats)
			}
			// Multi-section search must not do more rounds' worth of work
			// than serial would across the board: each round costs at most
			// `workers` evaluations but divides the interval by workers+1.
			if workers > 1 && stats.Evaluated > wantStats.Evaluated*workers {
				t.Errorf("workers=%d threshold=%d: %d evaluations vs serial %d", workers, threshold, stats.Evaluated, wantStats.Evaluated)
			}
		}
	}
}

// TestParallelSearchesActuallyRunConcurrently asserts that with workers>1
// at least two predicate evaluations overlap in time, i.e. the pool is not
// secretly serial.
func TestParallelSearchesActuallyRunConcurrently(t *testing.T) {
	s := MustSpace(4, 4, 4)
	var inFlight, peak atomic.Int32
	block := make(chan struct{})
	close(block)
	pred := func(n Node) (bool, error) {
		cur := inFlight.Add(1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		<-block
		// Busy-wait a moment so overlap is observable even on fast machines.
		for i := 0; i < 1000; i++ {
			_ = i
		}
		inFlight.Add(-1)
		return false, nil
	}
	if _, _, err := MinimalSatisfyingParallel(s, pred, 4); err != nil {
		t.Fatal(err)
	}
	if peak.Load() < 2 {
		t.Skip("no overlap observed (single-CPU runner?)")
	}
}

func TestParallelSearchErrorIsDeterministic(t *testing.T) {
	s := MustSpace(4, 4)
	bad := Node{1, 1}
	pred := func(n Node) (bool, error) {
		if n.Key() == bad.Key() {
			return false, fmt.Errorf("poisoned node")
		}
		return false, nil
	}
	wantErr := fmt.Sprintf("lattice: evaluating %v: poisoned node", bad)
	for workers := 1; workers <= 6; workers++ {
		_, _, err := MinimalSatisfyingParallel(s, pred, workers)
		if err == nil || err.Error() != wantErr {
			t.Errorf("workers=%d: err = %v, want %q", workers, err, wantErr)
		}
	}
}

func TestLevels(t *testing.T) {
	s := MustSpace(3, 2, 2)
	levels := s.Levels()
	if len(levels) != s.MaxHeight()+1 {
		t.Fatalf("levels = %d, want %d", len(levels), s.MaxHeight()+1)
	}
	var flat []Node
	for h, level := range levels {
		for _, n := range level {
			if n.Height() != h {
				t.Errorf("node %v in level %d", n, h)
			}
			flat = append(flat, n)
		}
	}
	if !sameNodeSeq(flat, s.All()) {
		t.Error("Levels flattened does not match All() order")
	}
}
