package lattice

import (
	"fmt"
	"sync/atomic"

	"ckprivacy/internal/parallel"
)

// This file holds the level-wise parallel counterparts of the searches in
// search.go and incognito.go. The key observation making them exact: every
// pruning mark (markAncestors) points strictly upward in the lattice, so
// within one height level no node's status can influence another's. A level
// can therefore be evaluated concurrently, with monotone pruning applied as
// a barrier before the next level — the node sets, their order, and the
// Stats counters are identical to the serial searches, only wall-clock
// changes. The expensive part of each evaluation (bucketize + max-
// disclosure) runs on all cores.

// MinimalSatisfyingParallel is MinimalSatisfying with the predicate
// evaluated on up to `workers` goroutines per lattice level (workers <= 0
// means GOMAXPROCS). The predicate must be safe for concurrent calls. The
// result and Stats are identical to the serial search.
func MinimalSatisfyingParallel(s Space, pred Pred, workers int) ([]Node, Stats, error) {
	workers = parallel.Workers(workers)
	var stats Stats
	satisfied := make(map[string]bool, s.Size())
	var minimal []Node
	for _, level := range s.Levels() {
		// Pruning marks only arrive from strictly lower levels, so the
		// skip-set is frozen for the whole level.
		toEval := level[:0:0]
		for _, n := range level {
			if satisfied[n.Key()] {
				stats.Inferred++
				continue
			}
			toEval = append(toEval, n)
		}
		ok := make([]bool, len(toEval))
		var evals atomic.Int64
		err := parallel.ForEach(workers, len(toEval), func(i int) error {
			o, err := pred(toEval[i])
			if err != nil {
				return fmt.Errorf("lattice: evaluating %v: %w", toEval[i], err)
			}
			evals.Add(1)
			ok[i] = o
			return nil
		})
		stats.Evaluated += int(evals.Load())
		if err != nil {
			return nil, stats, err
		}
		// Barrier: apply monotone pruning in serial node order.
		for i, n := range toEval {
			if !ok[i] {
				continue
			}
			minimal = append(minimal, n)
			markAncestors(s, n, satisfied)
		}
	}
	return minimal, stats, nil
}

// IncognitoParallel is Incognito with each level of each subset lattice
// evaluated concurrently. Subsets of equal size are independent (the subset
// property only consults strictly smaller subsets), so one "layer" of the
// Incognito meta-lattice — all not-yet-pruned nodes of one height across
// all same-size subsets — forms a single parallel batch. check must be safe
// for concurrent calls. The result and Stats are identical to serial
// Incognito.
func IncognitoParallel(s Space, check SubsetPred, workers int) ([]Node, Stats, error) {
	workers = parallel.Workers(workers)
	var stats Stats
	m := s.NumDims()
	satisfying := make(map[string]map[string]bool)

	type unit struct {
		si int // index into subsets
		n  Node
	}
	var fullSet map[string]bool
	for size := 1; size <= m; size++ {
		subsets := combinations(m, size)
		subSpaces := make([]Space, len(subsets))
		levels := make([][][]Node, len(subsets))
		sats := make([]map[string]bool, len(subsets))
		maxH := 0
		for si, subset := range subsets {
			sub, err := s.SubSpace(subset)
			if err != nil {
				return nil, stats, err
			}
			subSpaces[si] = sub
			levels[si] = sub.Levels()
			sats[si] = make(map[string]bool)
			satisfying[subsetKey(subset)] = sats[si]
			if h := sub.MaxHeight(); h > maxH {
				maxH = h
			}
		}
		for h := 0; h <= maxH; h++ {
			var units []unit
			for si := range subsets {
				if h >= len(levels[si]) {
					continue
				}
				for _, n := range levels[si][h] {
					if sats[si][n.Key()] {
						stats.Inferred++ // marked by a lower satisfying node
						continue
					}
					if !candidate(subsets[si], n, satisfying) {
						stats.Inferred++ // some projection already failed
						continue
					}
					units = append(units, unit{si: si, n: n})
				}
			}
			ok := make([]bool, len(units))
			var evals atomic.Int64
			err := parallel.ForEach(workers, len(units), func(i int) error {
				u := units[i]
				o, err := check(subsets[u.si], u.n)
				if err != nil {
					return fmt.Errorf("lattice: incognito at %v/%v: %w", subsets[u.si], u.n, err)
				}
				evals.Add(1)
				ok[i] = o
				return nil
			})
			stats.Evaluated += int(evals.Load())
			if err != nil {
				return nil, stats, err
			}
			for i, u := range units {
				if !ok[i] {
					continue
				}
				sats[u.si][u.n.Key()] = true
				markAncestors(subSpaces[u.si], u.n, sats[u.si])
			}
		}
		if size == m {
			fullSet = sats[len(subsets)-1]
		}
	}

	var minimal []Node
	for _, n := range s.All() {
		if !fullSet[n.Key()] {
			continue
		}
		isMin := true
		for _, c := range s.Children(n) {
			if fullSet[c.Key()] {
				isMin = false
				break
			}
		}
		if isMin {
			minimal = append(minimal, n)
		}
	}
	return minimal, stats, nil
}

// BinarySearchChainParallel generalizes BinarySearchChain to multi-section
// search: each round evaluates up to `workers` evenly spaced probes of the
// remaining interval concurrently, shrinking it by a factor of workers+1
// instead of 2. With workers <= 1 the probe sequence — and therefore the
// Stats — is exactly the serial binary search's. The returned index is
// identical to the serial search for any monotone predicate.
func BinarySearchChainParallel(chain []Node, pred Pred, workers int) (int, Stats, error) {
	workers = parallel.Workers(workers)
	var stats Stats
	lo, hi := 0, len(chain) // invariant: answer in [lo, hi]; hi means none
	for lo < hi {
		m := hi - lo
		p := workers
		if p > m {
			p = m
		}
		probes := make([]int, p)
		for i := range probes {
			probes[i] = lo + (i+1)*m/(p+1)
		}
		ok := make([]bool, p)
		var evals atomic.Int64
		err := parallel.ForEach(workers, p, func(i int) error {
			o, err := pred(chain[probes[i]])
			if err != nil {
				return fmt.Errorf("lattice: evaluating %v: %w", chain[probes[i]], err)
			}
			evals.Add(1)
			ok[i] = o
			return nil
		})
		stats.Evaluated += int(evals.Load())
		if err != nil {
			return -1, stats, err
		}
		// Monotonicity makes ok a false…true step function over the sorted
		// probes; narrow to the step.
		firstTrue := p
		for i, o := range ok {
			if o {
				firstTrue = i
				break
			}
		}
		if firstTrue < p {
			hi = probes[firstTrue]
		}
		if firstTrue > 0 {
			lo = probes[firstTrue-1] + 1
		}
	}
	if lo == len(chain) {
		return -1, stats, nil
	}
	return lo, stats, nil
}
