package lattice

// This file holds the level-wise parallel counterparts of the searches in
// search.go and incognito.go. The key observation making them exact: every
// pruning mark (markAncestors) points strictly upward in the lattice, so
// within one height level no node's status can influence another's. A level
// can therefore be evaluated concurrently, with monotone pruning applied as
// a barrier before the next level — the node sets, their order, and the
// Stats counters are identical to the serial searches, only wall-clock
// changes. The expensive part of each evaluation (bucketize + max-
// disclosure) runs on all cores.
//
// Each search is implemented once, in batch.go, with a frontier-prefetch
// hook; the functions here are its nil-prefetch forms.

// MinimalSatisfyingParallel is MinimalSatisfying with the predicate
// evaluated on up to `workers` goroutines per lattice level (workers <= 0
// means GOMAXPROCS). The predicate must be safe for concurrent calls. The
// result and Stats are identical to the serial search.
func MinimalSatisfyingParallel(s Space, pred Pred, workers int) ([]Node, Stats, error) {
	return MinimalSatisfyingBatch(s, pred, nil, workers)
}

// IncognitoParallel is Incognito with each level of each subset lattice
// evaluated concurrently. Subsets of equal size are independent (the subset
// property only consults strictly smaller subsets), so one "layer" of the
// Incognito meta-lattice — all not-yet-pruned nodes of one height across
// all same-size subsets — forms a single parallel batch. check must be safe
// for concurrent calls. The result and Stats are identical to serial
// Incognito.
func IncognitoParallel(s Space, check SubsetPred, workers int) ([]Node, Stats, error) {
	return IncognitoBatch(s, check, nil, workers)
}

// BinarySearchChainParallel generalizes BinarySearchChain to multi-section
// search: each round evaluates up to `workers` evenly spaced probes of the
// remaining interval concurrently, shrinking it by a factor of workers+1
// instead of 2. With workers <= 1 the probe sequence — and therefore the
// Stats — is exactly the serial binary search's. The returned index is
// identical to the serial search for any monotone predicate.
func BinarySearchChainParallel(chain []Node, pred Pred, workers int) (int, Stats, error) {
	return BinarySearchChainBatch(chain, pred, nil, workers)
}
