package lattice

import "fmt"

// Pred is a predicate over nodes; it must be monotone for the searches in
// this file to be correct (if it holds at n, it holds at every n' ⪰ n).
// Theorem 14 establishes monotonicity for (c,k)-safety.
type Pred func(Node) (bool, error)

// Stats reports search effort.
type Stats struct {
	// Evaluated counts predicate evaluations actually performed.
	Evaluated int
	// Inferred counts nodes whose status was derived from monotonicity
	// without evaluation.
	Inferred int
}

// MinimalSatisfying returns every ⪯-minimal node satisfying a monotone
// predicate, evaluating bottom-up and skipping nodes already implied
// satisfied by a lower node. The returned nodes are in (height,
// lexicographic) order.
func MinimalSatisfying(s Space, pred Pred) ([]Node, Stats, error) {
	var stats Stats
	satisfied := make(map[string]bool, s.Size())
	var minimal []Node
	for _, n := range s.All() {
		if satisfied[n.Key()] {
			stats.Inferred++
			continue
		}
		ok, err := pred(n)
		if err != nil {
			return nil, stats, fmt.Errorf("lattice: evaluating %v: %w", n, err)
		}
		stats.Evaluated++
		if !ok {
			continue
		}
		minimal = append(minimal, n)
		markAncestors(s, n, satisfied)
	}
	return minimal, stats, nil
}

// markAncestors marks every strict generalization of n as satisfied.
func markAncestors(s Space, n Node, satisfied map[string]bool) {
	queue := s.Parents(n)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		key := cur.Key()
		if satisfied[key] {
			continue
		}
		satisfied[key] = true
		queue = append(queue, s.Parents(cur)...)
	}
}

// NaiveMinimal evaluates the predicate on every node and filters the
// minimal satisfying ones pairwise. It makes no monotonicity assumption and
// exists as the correctness oracle for MinimalSatisfying and Incognito.
func NaiveMinimal(s Space, pred Pred) ([]Node, Stats, error) {
	var stats Stats
	var sat []Node
	for _, n := range s.All() {
		ok, err := pred(n)
		if err != nil {
			return nil, stats, err
		}
		stats.Evaluated++
		if ok {
			sat = append(sat, n)
		}
	}
	var minimal []Node
	for i, n := range sat {
		isMin := true
		for j, m := range sat {
			if i != j && Leq(m, n) {
				isMin = false
				break
			}
		}
		if isMin {
			minimal = append(minimal, n)
		}
	}
	return minimal, stats, nil
}

// Chain returns the canonical maximal chain from Bottom to Top: dimension 0
// is raised to its top, then dimension 1, and so on. Its length is
// MaxHeight+1.
func (s Space) Chain() []Node {
	chain := []Node{s.Bottom()}
	cur := s.Bottom()
	for d := 0; d < len(s.dims); d++ {
		for cur[d]+1 < s.dims[d] {
			cur = cur.Clone()
			cur[d]++
			chain = append(chain, cur)
		}
	}
	return chain
}

// BinarySearchChain finds the lowest index in the chain whose node
// satisfies the predicate, assuming the predicate is monotone along the
// chain (Theorem 14 + the chain being ⪯-increasing). It returns -1 when no
// node satisfies. The number of evaluations is O(log |chain|) — the
// paper's §3.4 observation that a safe bucketization can be found in time
// logarithmic in the lattice height.
func BinarySearchChain(chain []Node, pred Pred) (int, Stats, error) {
	var stats Stats
	lo, hi := 0, len(chain) // invariant: answer in [lo, hi]; hi means none
	for lo < hi {
		mid := (lo + hi) / 2
		ok, err := pred(chain[mid])
		if err != nil {
			return -1, stats, fmt.Errorf("lattice: evaluating %v: %w", chain[mid], err)
		}
		stats.Evaluated++
		if ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == len(chain) {
		return -1, stats, nil
	}
	return lo, stats, nil
}
