package lattice

import (
	"fmt"
	"sort"
)

// SubsetPred evaluates a criterion on the partition induced by a subset of
// the quasi-identifier dimensions generalized to the given levels (the
// other dimensions are ignored, i.e. treated as fully suppressed). node is
// expressed in the subset's own coordinates, aligned with subset.
type SubsetPred func(subset []int, node Node) (bool, error)

// Incognito finds every minimal node of the full lattice satisfying a
// criterion, using the Incognito algorithm [22]: it works through subsets
// of the dimensions in increasing size, keeps the full satisfying set per
// subset, prunes candidates whose projections already failed (subset
// property), and propagates satisfaction upward without re-evaluation
// (generalization property).
//
// Both properties hold for any criterion that is monotone under bucket
// merging — k-anonymity, ℓ-diversity and, by Theorem 14, (c,k)-safety.
func Incognito(s Space, check SubsetPred) ([]Node, Stats, error) {
	var stats Stats
	m := s.NumDims()
	// satisfying[key of subset] = set of satisfying sub-node keys.
	satisfying := make(map[string]map[string]bool)

	var fullSet map[string]bool
	for size := 1; size <= m; size++ {
		subsets := combinations(m, size)
		for _, subset := range subsets {
			subSpace, err := s.SubSpace(subset)
			if err != nil {
				return nil, stats, err
			}
			sat := make(map[string]bool)
			satisfying[subsetKey(subset)] = sat
			for _, n := range subSpace.All() {
				if sat[n.Key()] {
					stats.Inferred++ // marked by a lower satisfying node
					continue
				}
				if !candidate(subset, n, satisfying) {
					stats.Inferred++ // some projection already failed
					continue
				}
				ok, err := check(subset, n)
				if err != nil {
					return nil, stats, fmt.Errorf("lattice: incognito at %v/%v: %w", subset, n, err)
				}
				stats.Evaluated++
				if !ok {
					continue
				}
				sat[n.Key()] = true
				markAncestors(subSpace, n, sat)
			}
			if size == m {
				fullSet = sat
			}
		}
	}

	// Minimal elements of the full-dimension satisfying set.
	var minimal []Node
	for _, n := range s.All() {
		if !fullSet[n.Key()] {
			continue
		}
		isMin := true
		for _, c := range s.Children(n) {
			if fullSet[c.Key()] {
				isMin = false
				break
			}
		}
		if isMin {
			minimal = append(minimal, n)
		}
	}
	return minimal, stats, nil
}

// candidate applies Incognito's subset property: every (size-1)-projection
// of the node must satisfy its sub-lattice's criterion.
func candidate(subset []int, n Node, satisfying map[string]map[string]bool) bool {
	if len(subset) == 1 {
		return true
	}
	for drop := range subset {
		sub := make([]int, 0, len(subset)-1)
		proj := make(Node, 0, len(subset)-1)
		for i, d := range subset {
			if i == drop {
				continue
			}
			sub = append(sub, d)
			proj = append(proj, n[i])
		}
		if !satisfying[subsetKey(sub)][proj.Key()] {
			return false
		}
	}
	return true
}

// combinations returns all size-k subsets of {0..m-1} in lexicographic
// order, each sorted ascending.
func combinations(m, k int) [][]int {
	var out [][]int
	idx := make([]int, k)
	var rec func(pos, start int)
	rec = func(pos, start int) {
		if pos == k {
			out = append(out, append([]int(nil), idx...))
			return
		}
		for i := start; i < m; i++ {
			idx[pos] = i
			rec(pos+1, i+1)
		}
	}
	rec(0, 0)
	return out
}

func subsetKey(subset []int) string {
	s := append([]int(nil), subset...)
	sort.Ints(s)
	return Node(s).Key()
}
