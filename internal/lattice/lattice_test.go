package lattice

import (
	"testing"
	"testing/quick"
)

func TestNewSpaceValidation(t *testing.T) {
	if _, err := NewSpace(nil); err == nil {
		t.Error("empty dims accepted")
	}
	if _, err := NewSpace([]int{2, 0}); err == nil {
		t.Error("zero-level dimension accepted")
	}
	s, err := NewSpace([]int{6, 3, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 72 {
		t.Errorf("Size = %d, want 72 (the paper's Adult lattice)", s.Size())
	}
	if s.MaxHeight() != 5+2+1+1 {
		t.Errorf("MaxHeight = %d", s.MaxHeight())
	}
}

func TestMustSpacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSpace did not panic")
		}
	}()
	MustSpace(0)
}

func TestNodeBasics(t *testing.T) {
	s := MustSpace(3, 2)
	bottom, top := s.Bottom(), s.Top()
	if bottom.Key() != "0,0" || top.Key() != "2,1" {
		t.Errorf("bottom/top = %v/%v", bottom, top)
	}
	if bottom.Height() != 0 || top.Height() != 3 {
		t.Errorf("heights = %d/%d", bottom.Height(), top.Height())
	}
	if top.String() != "[2 1]" {
		t.Errorf("String = %q", top.String())
	}
	if !s.Contains(Node{1, 1}) || s.Contains(Node{3, 0}) || s.Contains(Node{0}) || s.Contains(Node{-1, 0}) {
		t.Error("Contains wrong")
	}
	c := top.Clone()
	c[0] = 0
	if top[0] != 2 {
		t.Error("Clone aliases")
	}
}

func TestLeq(t *testing.T) {
	if !Leq(Node{0, 1}, Node{1, 1}) {
		t.Error("0,1 ⪯ 1,1 failed")
	}
	if Leq(Node{1, 0}, Node{0, 1}) {
		t.Error("incomparable nodes reported ⪯")
	}
	if !Leq(Node{1, 1}, Node{1, 1}) {
		t.Error("reflexivity failed")
	}
	if Leq(Node{1}, Node{1, 1}) {
		t.Error("length mismatch accepted")
	}
}

func TestParentsChildren(t *testing.T) {
	s := MustSpace(3, 2)
	p := s.Parents(Node{1, 1})
	if len(p) != 1 || p[0].Key() != "2,1" {
		t.Errorf("Parents(1,1) = %v", p)
	}
	c := s.Children(Node{1, 1})
	if len(c) != 2 || c[0].Key() != "0,1" || c[1].Key() != "1,0" {
		t.Errorf("Children(1,1) = %v", c)
	}
	if len(s.Parents(s.Top())) != 0 || len(s.Children(s.Bottom())) != 0 {
		t.Error("top has parents or bottom has children")
	}
}

func TestAllOrderAndCount(t *testing.T) {
	s := MustSpace(3, 2, 2)
	all := s.All()
	if len(all) != 12 {
		t.Fatalf("All() has %d nodes", len(all))
	}
	seen := map[string]bool{}
	for i, n := range all {
		if seen[n.Key()] {
			t.Fatalf("duplicate node %v", n)
		}
		seen[n.Key()] = true
		if i > 0 && all[i-1].Height() > n.Height() {
			t.Fatalf("height order violated at %d: %v after %v", i, n, all[i-1])
		}
	}
	if all[0].Key() != "0,0,0" || all[len(all)-1].Key() != "2,1,1" {
		t.Errorf("ends = %v, %v", all[0], all[len(all)-1])
	}
}

func TestProjectAndSubSpace(t *testing.T) {
	s := MustSpace(6, 3, 2, 2)
	n := Node{4, 2, 1, 0}
	p := Project(n, []int{1, 3})
	if p.Key() != "2,0" {
		t.Errorf("Project = %v", p)
	}
	sub, err := s.SubSpace([]int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Size() != 6 {
		t.Errorf("SubSpace size = %d", sub.Size())
	}
	if _, err := s.SubSpace([]int{9}); err == nil {
		t.Error("bad dimension accepted")
	}
}

func TestChain(t *testing.T) {
	s := MustSpace(3, 2, 2)
	chain := s.Chain()
	if len(chain) != s.MaxHeight()+1 {
		t.Fatalf("chain length %d, want %d", len(chain), s.MaxHeight()+1)
	}
	if chain[0].Key() != s.Bottom().Key() || chain[len(chain)-1].Key() != s.Top().Key() {
		t.Error("chain endpoints wrong")
	}
	for i := 1; i < len(chain); i++ {
		if !Leq(chain[i-1], chain[i]) || chain[i].Height() != chain[i-1].Height()+1 {
			t.Errorf("chain step %d not a cover: %v -> %v", i, chain[i-1], chain[i])
		}
	}
}

// generatorPred builds a monotone predicate from generator nodes: true iff
// some generator lies at or below the node.
func generatorPred(gens []Node) Pred {
	return func(n Node) (bool, error) {
		for _, g := range gens {
			if Leq(g, n) {
				return true, nil
			}
		}
		return false, nil
	}
}

func TestMinimalSatisfyingMatchesNaive(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 4 {
			return true
		}
		dims := []int{2 + int(raw[0])%3, 1 + int(raw[1])%3, 1 + int(raw[2])%2}
		s := MustSpace(dims...)
		all := s.All()
		var gens []Node
		for i := 3; i < len(raw) && i < 8; i++ {
			gens = append(gens, all[int(raw[i])%len(all)])
		}
		pred := generatorPred(gens)
		fast, _, err1 := MinimalSatisfying(s, pred)
		slow, _, err2 := NaiveMinimal(s, pred)
		if err1 != nil || err2 != nil {
			return false
		}
		return sameNodeSet(fast, slow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMinimalSatisfyingPrunes(t *testing.T) {
	s := MustSpace(4, 4)
	// Generator at the bottom: everything satisfies; only one evaluation
	// needed.
	pred := generatorPred([]Node{s.Bottom()})
	minimal, stats, err := MinimalSatisfying(s, pred)
	if err != nil {
		t.Fatal(err)
	}
	if len(minimal) != 1 || minimal[0].Key() != "0,0" {
		t.Errorf("minimal = %v", minimal)
	}
	if stats.Evaluated != 1 || stats.Inferred != s.Size()-1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestMinimalSatisfyingNone(t *testing.T) {
	s := MustSpace(2, 2)
	minimal, stats, err := MinimalSatisfying(s, generatorPred(nil))
	if err != nil || len(minimal) != 0 {
		t.Errorf("minimal = %v, err %v", minimal, err)
	}
	if stats.Evaluated != s.Size() {
		t.Errorf("stats = %+v", stats)
	}
}

func TestBinarySearchChain(t *testing.T) {
	s := MustSpace(5, 4, 3)
	chain := s.Chain()
	for threshold := 0; threshold <= s.MaxHeight()+1; threshold++ {
		pred := func(n Node) (bool, error) { return n.Height() >= threshold, nil }
		idx, stats, err := BinarySearchChain(chain, pred)
		if err != nil {
			t.Fatal(err)
		}
		want := threshold
		if threshold > s.MaxHeight() {
			want = -1
		}
		if idx != want {
			t.Errorf("threshold %d: idx = %d, want %d", threshold, idx, want)
		}
		if stats.Evaluated > 5 { // ceil(log2(10)) + 1
			t.Errorf("threshold %d: %d evaluations", threshold, stats.Evaluated)
		}
	}
}

// weightedCheck builds a SubsetPred with Incognito's required properties
// from per-dimension badness weights: badness(S, n) = Σ_{d∈S}
// c[d]·(remaining levels); satisfied iff badness ≤ limit.
func weightedCheck(s Space, weights []int, limit int) (SubsetPred, Pred) {
	badness := func(subset []int, node Node) int {
		b := 0
		for i, d := range subset {
			b += weights[d] * (s.Dims()[d] - 1 - node[i])
		}
		return b
	}
	check := func(subset []int, node Node) (bool, error) {
		return badness(subset, node) <= limit, nil
	}
	full := make([]int, s.NumDims())
	for i := range full {
		full[i] = i
	}
	pred := func(n Node) (bool, error) { return badness(full, n) <= limit, nil }
	return check, pred
}

func TestIncognitoMatchesNaive(t *testing.T) {
	f := func(w0, w1, w2, lim uint8) bool {
		s := MustSpace(4, 3, 2)
		weights := []int{int(w0)%4 + 1, int(w1)%4 + 1, int(w2)%4 + 1}
		limit := int(lim) % 12
		check, pred := weightedCheck(s, weights, limit)
		inc, _, err1 := Incognito(s, check)
		naive, _, err2 := NaiveMinimal(s, pred)
		if err1 != nil || err2 != nil {
			return false
		}
		return sameNodeSet(inc, naive)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIncognitoEvaluatesLessThanNaive(t *testing.T) {
	s := MustSpace(6, 3, 2, 2)
	check, _ := weightedCheck(s, []int{3, 2, 1, 1}, 6)
	_, stats, err := Incognito(s, check)
	if err != nil {
		t.Fatal(err)
	}
	// Naive evaluates all 72 full nodes; Incognito must not evaluate more
	// full-lattice nodes than that, and its pruning should bite.
	if stats.Evaluated >= s.Size()+40 {
		t.Errorf("Incognito evaluated %d checks", stats.Evaluated)
	}
	if stats.Inferred == 0 {
		t.Error("Incognito inferred nothing")
	}
}

func sameNodeSet(a, b []Node) bool {
	if len(a) != len(b) {
		return false
	}
	set := map[string]bool{}
	for _, n := range a {
		set[n.Key()] = true
	}
	for _, n := range b {
		if !set[n.Key()] {
			return false
		}
	}
	return true
}
