// Package lattice implements the full-domain generalization lattice and the
// searches the paper builds on it: minimal-node enumeration for monotone
// criteria, binary search along chains (justified by Theorem 14), and the
// Incognito algorithm [22] with its subset and generalization pruning.
//
// The package is deliberately independent of tables and hierarchies: a node
// is a vector of generalization levels, and callers supply predicates.
package lattice

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Node is a generalization level per dimension. Node a is below node b
// (a ⪯ b, "more specific") when a[i] <= b[i] for every i.
type Node []int

// Clone copies the node.
func (n Node) Clone() Node {
	c := make(Node, len(n))
	copy(c, n)
	return c
}

// Height is the sum of levels — the node's rank in the lattice.
func (n Node) Height() int {
	h := 0
	for _, l := range n {
		h += l
	}
	return h
}

// Key is a canonical string form, usable as a map key.
func (n Node) Key() string {
	parts := make([]string, len(n))
	for i, l := range n {
		parts[i] = strconv.Itoa(l)
	}
	return strings.Join(parts, ",")
}

// String renders the node like "[1 0 2]".
func (n Node) String() string { return "[" + strings.ReplaceAll(n.Key(), ",", " ") + "]" }

// Leq reports a ⪯ b (a at-or-below b in every dimension).
func Leq(a, b Node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] > b[i] {
			return false
		}
	}
	return true
}

// Space is a product lattice with Dims()[i] levels in dimension i.
type Space struct {
	dims []int
}

// NewSpace validates the dimension sizes (each at least 1).
func NewSpace(dims []int) (Space, error) {
	if len(dims) == 0 {
		return Space{}, fmt.Errorf("lattice: no dimensions")
	}
	for i, d := range dims {
		if d < 1 {
			return Space{}, fmt.Errorf("lattice: dimension %d has %d levels", i, d)
		}
	}
	return Space{dims: append([]int(nil), dims...)}, nil
}

// MustSpace is NewSpace for statically known shapes.
func MustSpace(dims ...int) Space {
	s, err := NewSpace(dims)
	if err != nil {
		panic(err)
	}
	return s
}

// Dims returns a copy of the dimension sizes.
func (s Space) Dims() []int { return append([]int(nil), s.dims...) }

// NumDims returns the number of dimensions.
func (s Space) NumDims() int { return len(s.dims) }

// Size returns the number of nodes.
func (s Space) Size() int {
	n := 1
	for _, d := range s.dims {
		n *= d
	}
	return n
}

// MaxHeight returns the height of the top node.
func (s Space) MaxHeight() int {
	h := 0
	for _, d := range s.dims {
		h += d - 1
	}
	return h
}

// Bottom returns the all-zeros node (the paper's B⊥ direction: most
// specific).
func (s Space) Bottom() Node { return make(Node, len(s.dims)) }

// Top returns the fully generalized node (toward B⊤).
func (s Space) Top() Node {
	n := make(Node, len(s.dims))
	for i, d := range s.dims {
		n[i] = d - 1
	}
	return n
}

// Contains reports whether the node is a valid member of the space.
func (s Space) Contains(n Node) bool {
	if len(n) != len(s.dims) {
		return false
	}
	for i, l := range n {
		if l < 0 || l >= s.dims[i] {
			return false
		}
	}
	return true
}

// Parents returns the immediate generalizations (one level up in one
// dimension), in dimension order.
func (s Space) Parents(n Node) []Node {
	var out []Node
	for i := range n {
		if n[i]+1 < s.dims[i] {
			p := n.Clone()
			p[i]++
			out = append(out, p)
		}
	}
	return out
}

// Children returns the immediate specializations (one level down in one
// dimension), in dimension order.
func (s Space) Children(n Node) []Node {
	var out []Node
	for i := range n {
		if n[i] > 0 {
			c := n.Clone()
			c[i]--
			out = append(out, c)
		}
	}
	return out
}

// All enumerates every node, sorted by height and then lexicographically —
// the bottom-up evaluation order used by the searches.
func (s Space) All() []Node {
	nodes := make([]Node, 0, s.Size())
	cur := s.Bottom()
	for {
		nodes = append(nodes, cur.Clone())
		// Odometer increment.
		i := len(cur) - 1
		for i >= 0 {
			cur[i]++
			if cur[i] < s.dims[i] {
				break
			}
			cur[i] = 0
			i--
		}
		if i < 0 {
			break
		}
	}
	sort.Slice(nodes, func(a, b int) bool {
		ha, hb := nodes[a].Height(), nodes[b].Height()
		if ha != hb {
			return ha < hb
		}
		for i := range nodes[a] {
			if nodes[a][i] != nodes[b][i] {
				return nodes[a][i] < nodes[b][i]
			}
		}
		return false
	})
	return nodes
}

// Levels groups All() by height: Levels()[h] holds the height-h nodes in
// lexicographic order, so iterating levels in order and each level in slice
// order visits nodes exactly as All() does. The level-wise parallel
// searches evaluate one level concurrently and use the next level boundary
// as their pruning barrier.
func (s Space) Levels() [][]Node {
	levels := make([][]Node, s.MaxHeight()+1)
	for _, n := range s.All() {
		h := n.Height()
		levels[h] = append(levels[h], n)
	}
	return levels
}

// Project restricts a node to the given dimensions (used by Incognito's
// subset lattices).
func Project(n Node, dims []int) Node {
	out := make(Node, len(dims))
	for i, d := range dims {
		out[i] = n[d]
	}
	return out
}

// SubSpace returns the lattice over a subset of this space's dimensions.
func (s Space) SubSpace(dims []int) (Space, error) {
	sub := make([]int, len(dims))
	for i, d := range dims {
		if d < 0 || d >= len(s.dims) {
			return Space{}, fmt.Errorf("lattice: dimension %d out of range", d)
		}
		sub[i] = s.dims[d]
	}
	return NewSpace(sub)
}
