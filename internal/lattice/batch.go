package lattice

import (
	"fmt"
	"sync/atomic"

	"ckprivacy/internal/parallel"
)

// This file holds the batch forms of the level-wise searches: identical to
// the parallel searches in parallel.go — which are thin nil-prefetch
// wrappers over these — except that each frontier (one lattice level, one
// Incognito layer, one round of chain probes) is handed to a Prefetch
// callback before any predicate runs. The callback is how a search hands
// its whole frontier to the anonymize sweep planner at once: the planner
// materializes every node of the batch along a derivation DAG, and the
// predicates then evaluate against a warm cache. Prefetching is purely a
// cache warm-up: node sets, node order and Stats are byte-identical with
// or without it, at every worker count (the planner's results are
// byte-identical to per-node materialization, and pruning marks only ever
// point strictly upward, so nothing a prefetch computes can change what a
// level decides).

// Prefetch receives the full-lattice nodes a search is about to evaluate
// concurrently. It may materialize them in any order or not at all; it
// must not change what the predicate would answer. A nil Prefetch is a
// no-op.
type Prefetch func(nodes []Node) error

// SubsetPrefetch is Prefetch for Incognito's subset walks: nodes[i] is a
// node of the sub-lattice over QI dimensions subsets[i] (the two slices
// are aligned and equal-length).
type SubsetPrefetch func(subsets [][]int, nodes []Node) error

// MinimalSatisfyingBatch is MinimalSatisfyingParallel with each level
// offered to prefetch before evaluation. Result and Stats are identical
// to the serial search.
func MinimalSatisfyingBatch(s Space, pred Pred, prefetch Prefetch, workers int) ([]Node, Stats, error) {
	workers = parallel.Workers(workers)
	var stats Stats
	satisfied := make(map[string]bool, s.Size())
	var minimal []Node
	for _, level := range s.Levels() {
		// Pruning marks only arrive from strictly lower levels, so the
		// skip-set is frozen for the whole level.
		toEval := level[:0:0]
		for _, n := range level {
			if satisfied[n.Key()] {
				stats.Inferred++
				continue
			}
			toEval = append(toEval, n)
		}
		if prefetch != nil && len(toEval) > 0 {
			if err := prefetch(toEval); err != nil {
				return nil, stats, fmt.Errorf("lattice: prefetching level: %w", err)
			}
		}
		ok := make([]bool, len(toEval))
		var evals atomic.Int64
		err := parallel.ForEach(workers, len(toEval), func(i int) error {
			o, err := pred(toEval[i])
			if err != nil {
				return fmt.Errorf("lattice: evaluating %v: %w", toEval[i], err)
			}
			evals.Add(1)
			ok[i] = o
			return nil
		})
		stats.Evaluated += int(evals.Load())
		if err != nil {
			return nil, stats, err
		}
		// Barrier: apply monotone pruning in serial node order.
		for i, n := range toEval {
			if !ok[i] {
				continue
			}
			minimal = append(minimal, n)
			markAncestors(s, n, satisfied)
		}
	}
	return minimal, stats, nil
}

// IncognitoBatch is IncognitoParallel with each layer — all unpruned
// nodes of one height across all same-size subset lattices — offered to
// prefetch before evaluation. Result and Stats are identical to serial
// Incognito.
func IncognitoBatch(s Space, check SubsetPred, prefetch SubsetPrefetch, workers int) ([]Node, Stats, error) {
	workers = parallel.Workers(workers)
	var stats Stats
	m := s.NumDims()
	satisfying := make(map[string]map[string]bool)

	type unit struct {
		si int // index into subsets
		n  Node
	}
	var fullSet map[string]bool
	for size := 1; size <= m; size++ {
		subsets := combinations(m, size)
		subSpaces := make([]Space, len(subsets))
		levels := make([][][]Node, len(subsets))
		sats := make([]map[string]bool, len(subsets))
		maxH := 0
		for si, subset := range subsets {
			sub, err := s.SubSpace(subset)
			if err != nil {
				return nil, stats, err
			}
			subSpaces[si] = sub
			levels[si] = sub.Levels()
			sats[si] = make(map[string]bool)
			satisfying[subsetKey(subset)] = sats[si]
			if h := sub.MaxHeight(); h > maxH {
				maxH = h
			}
		}
		for h := 0; h <= maxH; h++ {
			var units []unit
			for si := range subsets {
				if h >= len(levels[si]) {
					continue
				}
				for _, n := range levels[si][h] {
					if sats[si][n.Key()] {
						stats.Inferred++ // marked by a lower satisfying node
						continue
					}
					if !candidate(subsets[si], n, satisfying) {
						stats.Inferred++ // some projection already failed
						continue
					}
					units = append(units, unit{si: si, n: n})
				}
			}
			if prefetch != nil && len(units) > 0 {
				ss := make([][]int, len(units))
				ns := make([]Node, len(units))
				for i, u := range units {
					ss[i], ns[i] = subsets[u.si], u.n
				}
				if err := prefetch(ss, ns); err != nil {
					return nil, stats, fmt.Errorf("lattice: prefetching incognito layer: %w", err)
				}
			}
			ok := make([]bool, len(units))
			var evals atomic.Int64
			err := parallel.ForEach(workers, len(units), func(i int) error {
				u := units[i]
				o, err := check(subsets[u.si], u.n)
				if err != nil {
					return fmt.Errorf("lattice: incognito at %v/%v: %w", subsets[u.si], u.n, err)
				}
				evals.Add(1)
				ok[i] = o
				return nil
			})
			stats.Evaluated += int(evals.Load())
			if err != nil {
				return nil, stats, err
			}
			for i, u := range units {
				if !ok[i] {
					continue
				}
				sats[u.si][u.n.Key()] = true
				markAncestors(subSpaces[u.si], u.n, sats[u.si])
			}
		}
		if size == m {
			fullSet = sats[len(subsets)-1]
		}
	}

	var minimal []Node
	for _, n := range s.All() {
		if !fullSet[n.Key()] {
			continue
		}
		isMin := true
		for _, c := range s.Children(n) {
			if fullSet[c.Key()] {
				isMin = false
				break
			}
		}
		if isMin {
			minimal = append(minimal, n)
		}
	}
	return minimal, stats, nil
}

// BinarySearchChainBatch is BinarySearchChainParallel with each round's
// probe nodes offered to prefetch before evaluation. The returned index
// and Stats match BinarySearchChainParallel at the same worker count.
func BinarySearchChainBatch(chain []Node, pred Pred, prefetch Prefetch, workers int) (int, Stats, error) {
	workers = parallel.Workers(workers)
	var stats Stats
	lo, hi := 0, len(chain) // invariant: answer in [lo, hi]; hi means none
	for lo < hi {
		m := hi - lo
		p := workers
		if p > m {
			p = m
		}
		probes := make([]int, p)
		nodes := make([]Node, p)
		for i := range probes {
			probes[i] = lo + (i+1)*m/(p+1)
			nodes[i] = chain[probes[i]]
		}
		if prefetch != nil {
			if err := prefetch(nodes); err != nil {
				return -1, stats, fmt.Errorf("lattice: prefetching chain probes: %w", err)
			}
		}
		ok := make([]bool, p)
		var evals atomic.Int64
		err := parallel.ForEach(workers, p, func(i int) error {
			o, err := pred(nodes[i])
			if err != nil {
				return fmt.Errorf("lattice: evaluating %v: %w", nodes[i], err)
			}
			evals.Add(1)
			ok[i] = o
			return nil
		})
		stats.Evaluated += int(evals.Load())
		if err != nil {
			return -1, stats, err
		}
		// Monotonicity makes ok a false…true step function over the sorted
		// probes; narrow to the step.
		firstTrue := p
		for i, o := range ok {
			if o {
				firstTrue = i
				break
			}
		}
		if firstTrue < p {
			hi = probes[firstTrue]
		}
		if firstTrue > 0 {
			lo = probes[firstTrue-1] + 1
		}
	}
	if lo == len(chain) {
		return -1, stats, nil
	}
	return lo, stats, nil
}
