package anonymize

import (
	"sort"

	"ckprivacy/internal/bucket"
	"ckprivacy/internal/lattice"
)

// This file plans a sweep: given the (subset, node) units a search is
// about to evaluate — one lattice level, one Incognito layer, a chain's
// probe set, or a whole lattice — it builds the derivation DAG the
// executor in sweep.go then runs. Planning is the classic data-cube
// scheduling problem: every requested node either coarsens from a parent
// (a cheaper, finer node of the same sweep or an already-materialized
// source) or falls back to a base row scan at the DAG's roots, and each
// node picks the parent minimizing its predicted source bucket count,
// since coarsening cost is linear in source buckets. Predictions combine
// the two available bounds — the product of per-dimension generalized
// cardinalities at the node's levels, and the parent's own (predicted or
// actual) count — both capped by the row count.
//
// planNode values are written only here (the snapshotmut analyzer pins
// the type to this file); the executor and its concurrent frontier
// workers treat the finished plan as read-only.

// planNode is one node of a sweep's derivation DAG: the complete level
// assignment it materializes, the cache keys that asked for it, and the
// derivation the planner chose for it.
type planNode struct {
	vec    []int         // complete level vector, schema QI order
	levels bucket.Levels // the assignment vec flattens
	keys   []string      // cache keys this vector must fill
	height int           // lattice height (level sum) of vec

	// Exactly one derivation applies: parent ≥ 0 coarsens from another
	// planned node's result; otherwise source, when non-nil, is an
	// already-materialized bucketization to coarsen from (or to reuse
	// outright when exact — its vector equals vec); a root with nil
	// source is a base row scan.
	parent    int
	source    *bucket.Bucketization
	exact     bool
	predicted int // predicted output bucket count (actual when exact)
}

// sweepPlan is a finished derivation DAG: nodes in planning order and the
// execution frontiers — node indices grouped by ascending height, so
// every parent completes a frontier before its children start.
type sweepPlan struct {
	nodes     []planNode
	frontiers [][]int
}

// buildPlan collects the cache fills the units need (deduped by level
// vector — distinct (subset, node) pairs can induce the same complete
// assignment, and already-cached keys are dropped), then schedules each
// node's derivation. Nodes are planned in (height, lexicographic) order,
// so the plan is deterministic for a given cache state, and candidate
// ties break the same way the per-miss coarsenIndex breaks them: fewest
// buckets first, then lexicographically smallest vector, with recorded
// sources preferred over same-cost planned predictions (their counts are
// actual, not estimates).
func (s *Snapshot) buildPlan(units []subsetNode) (*sweepPlan, error) {
	st := s.st
	byVec := map[string]int{}
	var nodes []planNode
	for _, u := range units {
		levels, err := s.subsetLevels(u.subset, u.node)
		if err != nil {
			return nil, err
		}
		key := cacheKey(u.subset, u.node)
		if _, ok := st.cache.peek(key); ok {
			continue
		}
		vec := levelVector(st.tab.Schema, levels)
		vk := lattice.Node(vec).Key()
		if i, ok := byVec[vk]; ok {
			if !containsKey(nodes[i].keys, key) {
				nodes[i].keys = append(nodes[i].keys, key)
			}
			continue
		}
		byVec[vk] = len(nodes)
		nodes = append(nodes, planNode{
			vec:    vec,
			levels: levels,
			keys:   []string{key},
			height: vecHeight(vec),
			parent: -1,
		})
	}
	if len(nodes) == 0 {
		return &sweepPlan{}, nil
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].height != nodes[j].height {
			return nodes[i].height < nodes[j].height
		}
		return lessVec(nodes[i].vec, nodes[j].vec)
	})

	sources := st.sources.snapshot()
	rows := st.tab.Len()
	cards := s.levelCards()
	for idx := range nodes {
		pn := &nodes[idx]
		bound := cardBound(cards, pn.vec, rows)
		// Choose the cheapest derivation: minimize (bucket count, kind,
		// vector), kind ordering sources before planned nodes.
		const (
			kindSource  = 0
			kindPlanned = 1
		)
		bestCost, bestKind := -1, 0
		var bestVec []int
		better := func(cost, kind int, vec []int) bool {
			if bestCost < 0 {
				return true
			}
			if cost != bestCost {
				return cost < bestCost
			}
			if kind != bestKind {
				return kind < bestKind
			}
			return lessVec(vec, bestVec)
		}
		for si := range sources {
			e := &sources[si]
			if len(e.vec) != len(pn.vec) || !leqVec(e.vec, pn.vec) {
				continue
			}
			if cost := len(e.bz.Buckets); better(cost, kindSource, e.vec) {
				bestCost, bestKind, bestVec = cost, kindSource, e.vec
				pn.parent, pn.source = -1, e.bz
				pn.exact = leqVec(pn.vec, e.vec) // e.vec == pn.vec
			}
		}
		for j := 0; j < idx; j++ {
			o := &nodes[j]
			if o.height >= pn.height || !leqVec(o.vec, pn.vec) {
				continue
			}
			if better(o.predicted, kindPlanned, o.vec) {
				bestCost, bestKind, bestVec = o.predicted, kindPlanned, o.vec
				pn.parent, pn.source, pn.exact = j, nil, false
			}
		}
		switch {
		case pn.exact:
			pn.predicted = bestCost
		case bestCost >= 0:
			pn.predicted = min(bound, bestCost)
		default:
			pn.predicted = bound // base-scan root
		}
	}

	pl := &sweepPlan{nodes: nodes}
	for i := range nodes {
		if n := len(pl.frontiers); n == 0 || nodes[pl.frontiers[n-1][0]].height != nodes[i].height {
			pl.frontiers = append(pl.frontiers, []int{i})
			continue
		}
		last := len(pl.frontiers) - 1
		pl.frontiers[last] = append(pl.frontiers[last], i)
	}
	return pl, nil
}

// containsKey reports whether keys already holds key (keys per node stay
// tiny — duplicates only arise from repeated units).
func containsKey(keys []string, key string) bool {
	for _, k := range keys {
		if k == key {
			return true
		}
	}
	return false
}

// cardBound is the cardinality bound on a node's bucket count: the
// product of per-dimension generalized cardinalities at its levels,
// capped by the row count (a bucketization never has more buckets than
// rows or than distinct generalized tuples).
func cardBound(cards [][]int, vec []int, rows int) int {
	prod := 1
	for i, l := range vec {
		c := cards[i]
		if l >= len(c) {
			l = len(c) - 1
		}
		prod *= c[l]
		if prod >= rows || prod < 0 { // cap early; also guards overflow
			return rows
		}
	}
	return prod
}

// levelCards returns, per schema QI dimension (level-vector order), the
// generalized-value cardinality at every hierarchy level: the dictionary
// size at level 0 and the compiled hierarchy's level cardinality above.
func (s *Snapshot) levelCards() [][]int {
	st := s.st
	schema := st.tab.Schema
	qi := schema.QuasiIdentifiers()
	cards := make([][]int, len(qi))
	for i, col := range qi {
		dictLen := st.enc.Dicts[col].Len()
		if ch, ok := st.compiled[schema.Attrs[col].Name]; ok {
			c := make([]int, ch.Levels())
			c[0] = dictLen
			for l := 1; l < len(c); l++ {
				c[l] = ch.Cardinality(l)
			}
			cards[i] = c
		} else {
			cards[i] = []int{dictLen}
		}
	}
	return cards
}
