package anonymize

import (
	"runtime"
	"testing"

	"ckprivacy/internal/bucket"
	"ckprivacy/internal/core"
	"ckprivacy/internal/privacy"
	"ckprivacy/internal/table"
)

// forceSharding drops the small-table clamp for the duration of a test so
// the hospital-sized fixtures actually exercise the sharded scan.
func forceSharding(t *testing.T) {
	t.Helper()
	old := minRowsPerShard
	minRowsPerShard = 1
	t.Cleanup(func() { minRowsPerShard = old })
}

// hospitalOptions is hospital built through the struct constructor.
func hospitalOptions(t *testing.T, o Options) *Problem {
	t.Helper()
	base := hospital(t)
	p, err := NewProblemWithOptions(base.Table, base.Hierarchies, base.QI, o)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestOptionsResolution pins the struct-options surface: defaults, the
// per-core resolution of non-positive budgets, the resolved view Options()
// reports (including the problem-scoped engine), and that every legacy
// With* wrapper writes through to the same struct.
func TestOptionsResolution(t *testing.T) {
	if d := DefaultOptions(); d.Workers != 1 || d.ShardWorkers != 1 || d.MemoMaxBytes != 0 || d.Engine != nil || d.LegacyBucketize {
		t.Fatalf("DefaultOptions() = %+v, want serial single-threaded defaults", d)
	}

	p := hospitalOptions(t, Options{Workers: 3, ShardWorkers: 4, MemoMaxBytes: 1 << 20})
	got := p.Options()
	if got.Workers != 3 || got.ShardWorkers != 4 || got.MemoMaxBytes != 1<<20 {
		t.Fatalf("Options() = %+v, want workers 3, shards 4, memo 1MiB", got)
	}
	if got.Engine != p.Engine() || got.Engine == nil {
		t.Fatal("Options().Engine is not the problem-scoped engine")
	}

	// Non-positive budgets resolve to one per core.
	p = hospitalOptions(t, Options{Workers: 0, ShardWorkers: -2})
	if got := p.Options(); got.Workers != runtime.GOMAXPROCS(0) || got.ShardWorkers != runtime.GOMAXPROCS(0) {
		t.Fatalf("Options() = %+v, want per-core budgets (%d)", got, runtime.GOMAXPROCS(0))
	}

	// Every deprecated functional option must write through to Options.
	eng := core.NewEngine()
	base := hospital(t)
	p, err := NewProblem(base.Table, base.Hierarchies, base.QI,
		WithWorkers(2), WithShardWorkers(5), WithMemoBytes(-1), WithEngine(eng), WithLegacyBucketize())
	if err != nil {
		t.Fatal(err)
	}
	got = p.Options()
	if got.Workers != 2 || got.ShardWorkers != 5 || got.MemoMaxBytes != -1 || got.Engine != eng || !got.LegacyBucketize {
		t.Fatalf("Options() = %+v after functional options, want {2 5 -1 %p true}", got, eng)
	}
	if p.Encoding().Enabled {
		t.Fatal("WithLegacyBucketize did not disable the encoded path")
	}
}

// TestShardedProblemParity is the anonymize-layer parity check: a problem
// with a shard budget must return byte-identical bucketizations and search
// results to the serial problem — through the cache fill, the coarsening
// derivation, and nested node×shard search parallelism.
func TestShardedProblemParity(t *testing.T) {
	forceSharding(t)
	serial := hospital(t)
	for _, o := range []Options{
		{Workers: 1, ShardWorkers: 4},
		{Workers: 1, ShardWorkers: 8},
		{Workers: 4, ShardWorkers: 4}, // nested: node workers × shard workers
	} {
		sharded := hospitalOptions(t, o)
		// Every lattice node, materialized twice on the sharded problem: the
		// first call scans (sharded) or coarsens from an already-recorded
		// source, the second hits the cache; both must equal the serial
		// problem's bucketization byte for byte.
		for _, node := range serial.Space().All() {
			want, err := serial.Bucketize(node)
			if err != nil {
				t.Fatal(err)
			}
			for pass := 0; pass < 2; pass++ {
				got, err := sharded.Bucketize(node)
				if err != nil {
					t.Fatal(err)
				}
				requireSameBuckets(t, want, got)
			}
		}

		crit := privacy.CKSafety{C: 0.8, K: 2, Engine: sharded.Engine()}
		wantN, wantStats, err := serial.MinimalSafe(privacy.CKSafety{C: 0.8, K: 2, Engine: serial.Engine()})
		if err != nil {
			t.Fatal(err)
		}
		gotN, gotStats, err := sharded.MinimalSafe(crit)
		if err != nil {
			t.Fatal(err)
		}
		if !sameNodeOrder(wantN, gotN) || wantStats != gotStats {
			t.Fatalf("options %+v: MinimalSafe %v/%+v != serial %v/%+v", o, gotN, gotStats, wantN, wantStats)
		}
	}
}

// TestShardedAppendParity drives Append on a sharded problem: patched
// warm state and post-append scans must match a from-scratch serial
// problem over the grown table.
func TestShardedAppendParity(t *testing.T) {
	forceSharding(t)
	sharded := hospitalOptions(t, Options{Workers: 2, ShardWorkers: 4})
	// Warm the caches at every node before appending, so the append has
	// sharded-built state to patch.
	for _, node := range sharded.Space().All() {
		if _, err := sharded.Bucketize(node); err != nil {
			t.Fatal(err)
		}
	}
	extra := []table.Row{
		{"14851", "31", "F", "flu"},
		{"14853", "22", "M", "mumps"},
		{"14850", "44", "F", "heart-disease"},
	}
	if _, err := sharded.Append(extra); err != nil {
		t.Fatal(err)
	}

	fresh, err := NewProblem(sharded.Table, sharded.Hierarchies, sharded.QI)
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range sharded.Space().All() {
		want, err := fresh.Bucketize(node)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sharded.Bucketize(node)
		if err != nil {
			t.Fatal(err)
		}
		requireSameBuckets(t, want, got)
	}
}

// requireSameBuckets asserts byte-identity of two bucketizations.
func requireSameBuckets(t *testing.T, want, got *bucket.Bucketization) {
	t.Helper()
	if len(want.Buckets) != len(got.Buckets) {
		t.Fatalf("%d buckets, want %d", len(got.Buckets), len(want.Buckets))
	}
	for i := range want.Buckets {
		w, g := want.Buckets[i], got.Buckets[i]
		if w.Key != g.Key || w.Signature() != g.Signature() || len(w.Tuples) != len(g.Tuples) {
			t.Fatalf("bucket %d: key %q sig %q size %d, want key %q sig %q size %d",
				i, g.Key, g.Signature(), len(g.Tuples), w.Key, w.Signature(), len(w.Tuples))
		}
		for j := range w.Tuples {
			if w.Tuples[j] != g.Tuples[j] {
				t.Fatalf("bucket %d tuples %v, want %v", i, g.Tuples, w.Tuples)
			}
		}
	}
}
