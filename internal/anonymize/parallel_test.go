package anonymize

import (
	"fmt"
	"sync"
	"testing"

	"ckprivacy/internal/core"
	"ckprivacy/internal/lattice"
	"ckprivacy/internal/privacy"
)

// hospitalWorkers is hospital with a worker budget.
func hospitalWorkers(t *testing.T, workers int) *Problem {
	t.Helper()
	base := hospital(t)
	p, err := NewProblem(base.Table, base.Hierarchies, base.QI, WithWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestWithWorkersResolution(t *testing.T) {
	if w := hospital(t).Workers(); w != 1 {
		t.Errorf("default workers = %d, want 1", w)
	}
	if w := hospitalWorkers(t, 3).Workers(); w != 3 {
		t.Errorf("workers = %d, want 3", w)
	}
	if w := hospitalWorkers(t, 0).Workers(); w < 1 {
		t.Errorf("workers = %d, want >= 1 (GOMAXPROCS)", w)
	}
}

// TestParallelSearchesMatchSerial is the cross-layer equivalence test: the
// searches must return identical node sequences AND identical Stats at any
// worker budget, for every criterion.
func TestParallelSearchesMatchSerial(t *testing.T) {
	serial := hospital(t)
	engine := core.NewEngine()
	criteria := []privacy.Criterion{
		privacy.KAnonymity{K: 2},
		privacy.KAnonymity{K: 5},
		privacy.DistinctLDiversity{L: 3},
		privacy.CKSafety{C: 0.7, K: 1, Engine: engine},
		privacy.CKSafety{C: 0.99, K: 2, Engine: engine},
	}
	for _, workers := range []int{1, 2, 4, 8} {
		par := hospitalWorkers(t, workers)
		for _, crit := range criteria {
			sN, sStats, err := serial.MinimalSafe(crit)
			if err != nil {
				t.Fatal(err)
			}
			pN, pStats, err := par.MinimalSafe(crit)
			if err != nil {
				t.Fatal(err)
			}
			if !sameNodeOrder(sN, pN) || sStats != pStats {
				t.Errorf("workers=%d %s: MinimalSafe %v/%+v != serial %v/%+v",
					workers, crit.Name(), pN, pStats, sN, sStats)
			}

			sN, sStats, err = serial.MinimalSafeIncognito(crit)
			if err != nil {
				t.Fatal(err)
			}
			pN, pStats, err = par.MinimalSafeIncognito(crit)
			if err != nil {
				t.Fatal(err)
			}
			if !sameNodeOrder(sN, pN) || sStats != pStats {
				t.Errorf("workers=%d %s: Incognito %v/%+v != serial %v/%+v",
					workers, crit.Name(), pN, pStats, sN, sStats)
			}

			sNode, sOK, _, err := serial.ChainSearch(crit)
			if err != nil {
				t.Fatal(err)
			}
			pNode, pOK, _, err := par.ChainSearch(crit)
			if err != nil {
				t.Fatal(err)
			}
			if sOK != pOK || (sOK && sNode.Key() != pNode.Key()) {
				t.Errorf("workers=%d %s: ChainSearch %v/%v != serial %v/%v",
					workers, crit.Name(), pNode, pOK, sNode, sOK)
			}
		}
	}
}

// TestBucketizeCacheConcurrent hammers one problem's cache from many
// goroutines; correctness is checked by value identity (every goroutine
// must observe a valid bucketization for its node) and the race detector
// does the rest.
func TestBucketizeCacheConcurrent(t *testing.T) {
	p := hospitalWorkers(t, 8)
	nodes := p.Space().All()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				for _, n := range nodes {
					bz, err := p.Bucketize(n)
					if err != nil {
						errs <- err
						return
					}
					if bz.Size() != p.Table.Len() {
						errs <- fmt.Errorf("node %v: size %d != %d", n, bz.Size(), p.Table.Len())
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := p.cur.Load().cache.size(); got != len(nodes) {
		t.Errorf("cache size = %d, want %d", got, len(nodes))
	}
}

// TestCacheKeyCollisionFree asserts distinct (subset, node) pairs map to
// distinct cache keys across the hospital lattice's Incognito traversal.
func TestCacheKeyCollisionFree(t *testing.T) {
	seen := map[string][2]string{}
	add := func(subset []int, node lattice.Node) {
		key := cacheKey(subset, node)
		id := [2]string{lattice.Node(subset).String(), node.String()}
		if prev, ok := seen[key]; ok && prev != id {
			t.Fatalf("cache key %q shared by %v and %v", key, prev, id)
		}
		seen[key] = id
	}
	s := lattice.MustSpace(3, 3, 2)
	for _, n := range s.All() {
		add([]int{0, 1, 2}, n)
	}
	sub, _ := s.SubSpace([]int{1})
	for _, n := range sub.All() {
		add([]int{1}, n)
	}
}

func sameNodeOrder(a, b []lattice.Node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			return false
		}
	}
	return true
}

// TestBoundedMemoSearchParity runs the parallel lattice search against
// three problem-scoped engines — unbounded, default-bounded, and a tiny
// cap that must evict mid-search — and asserts identical minimal nodes and
// search stats. Eviction under a racing worker pool may cost recomputation
// but can never change a verdict.
func TestBoundedMemoSearchParity(t *testing.T) {
	base := hospital(t)
	// Few shards keep the tiny cap's per-shard budget above the per-entry
	// overhead, so entries are actually cached and then actually evicted
	// mid-search (asserted below) — a cap below one entry per shard would
	// just skip caching and test nothing.
	tiny := core.NewEngineWithConfig(core.EngineConfig{MemoMaxBytes: 1 << 10, Shards: 2})
	engines := []*core.Engine{
		core.NewEngineWithConfig(core.EngineConfig{MemoMaxBytes: -1}),
		core.NewEngine(),
		tiny,
	}
	var refNodes []lattice.Node
	var refStats lattice.Stats
	for i, eng := range engines {
		p, err := NewProblem(base.Table, base.Hierarchies, base.QI,
			WithWorkers(4), WithEngine(eng))
		if err != nil {
			t.Fatal(err)
		}
		crit := p.CKSafety(0.7, 2)
		nodes, stats, err := p.MinimalSafe(crit)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			refNodes, refStats = nodes, stats
			continue
		}
		if !sameNodeOrder(refNodes, nodes) || refStats != stats {
			t.Errorf("engine %d: nodes/stats diverged from unbounded: %v %+v vs %v %+v",
				i, nodes, stats, refNodes, refStats)
		}
	}
	if st := tiny.Stats(); st.Evictions == 0 {
		t.Errorf("tiny engine never evicted during the parallel search: %+v", st)
	}
	// The problem-scoped engine is the one the criterion used: it must
	// have seen the search's lookups.
	p, err := NewProblem(base.Table, base.Hierarchies, base.QI)
	if err != nil {
		t.Fatal(err)
	}
	crit := p.CKSafety(0.7, 2)
	if _, _, err := p.MinimalSafe(crit); err != nil {
		t.Fatal(err)
	}
	if st := p.Engine().Stats(); st.Hits+st.Misses == 0 {
		t.Error("Problem.Engine saw no lookups; CKSafety was not wired to it")
	}
}
