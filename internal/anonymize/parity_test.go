package anonymize

import (
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"ckprivacy/internal/core"
	"ckprivacy/internal/hierarchy"
	"ckprivacy/internal/table"
)

// Randomized search-parity harness: for random tables, hierarchies, QI
// orders and (c,k) policies, a Problem on the encoded path must return
// byte-identical search results — nodes, stats, disclosure values — to a
// Problem forced onto the legacy string path, at every worker count.

// randomProblemCase draws a random table + hierarchy set (every QI gets a
// hierarchy so subset searches can suppress attributes).
func randomProblemCase(rng *rand.Rand) (*table.Table, hierarchy.Set, []string) {
	nQI := 2 + rng.Intn(2)
	attrs := make([]table.Attribute, 0, nQI+1)
	hs := hierarchy.Set{}
	qi := make([]string, 0, nQI)
	widths := [][]int{{1, 2, 4, 0}, {1, 5, 0}, {1, 10, 0}}
	for i := 0; i < nQI; i++ {
		name := fmt.Sprintf("q%d", i)
		qi = append(qi, name)
		if rng.Intn(2) == 0 {
			attrs = append(attrs, table.Attribute{Name: name, Kind: table.Numeric, Min: 0, Max: 99})
			hs[name] = hierarchy.MustInterval(name, widths[rng.Intn(len(widths))])
		} else {
			d := 2 + rng.Intn(4)
			domain := make([]string, d)
			for j := range domain {
				domain[j] = fmt.Sprintf("c%d", j)
			}
			attrs = append(attrs, table.Attribute{Name: name, Kind: table.Categorical, Domain: domain})
			hs[name] = hierarchy.NewSuppression(name, domain)
		}
	}
	sdom := []string{"s0", "s1", "s2", "s3"}
	attrs = append(attrs, table.Attribute{Name: "sens", Kind: table.Categorical, Domain: sdom})
	s, err := table.NewSchema(attrs, "sens")
	if err != nil {
		panic(err)
	}
	tab := table.New(s)
	rows := 10 + rng.Intn(80)
	for r := 0; r < rows; r++ {
		row := make(table.Row, len(attrs))
		for c, a := range attrs {
			if a.Kind == table.Numeric {
				row[c] = strconv.Itoa(rng.Intn(100))
			} else {
				row[c] = a.Domain[rng.Intn(len(a.Domain))]
			}
		}
		tab.MustAppend(row)
	}
	// Shuffle the QI order so lattice dimension order varies too.
	rng.Shuffle(len(qi), func(i, j int) { qi[i], qi[j] = qi[j], qi[i] })
	return tab, hs, qi
}

// TestSearchParityEncodedVsLegacy runs all three searches on both paths
// and asserts identical nodes, stats and disclosure values.
func TestSearchParityEncodedVsLegacy(t *testing.T) {
	cases := 25
	if testing.Short() {
		cases = 8
	}
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < cases; i++ {
		tab, hs, qi := randomProblemCase(rng)
		c := []float64{0.4, 0.6, 0.8}[rng.Intn(3)]
		k := rng.Intn(3)
		for _, workers := range []int{1, 4} {
			legacy, err := NewProblem(tab, hs, qi, WithWorkers(workers), WithLegacyBucketize())
			if err != nil {
				t.Fatalf("case %d: legacy problem: %v", i, err)
			}
			encoded, err := NewProblem(tab, hs, qi, WithWorkers(workers))
			if err != nil {
				t.Fatalf("case %d: encoded problem: %v", i, err)
			}
			if legacy.Encoding().Enabled {
				t.Fatalf("case %d: WithLegacyBucketize left encoding enabled", i)
			}
			if !encoded.Encoding().Enabled {
				t.Fatalf("case %d: encoded problem did not encode", i)
			}
			label := fmt.Sprintf("case %d (c=%v k=%d workers=%d)", i, c, k, workers)

			ln, ls, err := legacy.MinimalSafe(legacy.CKSafety(c, k))
			if err != nil {
				t.Fatalf("%s: legacy MinimalSafe: %v", label, err)
			}
			en, es, err := encoded.MinimalSafe(encoded.CKSafety(c, k))
			if err != nil {
				t.Fatalf("%s: encoded MinimalSafe: %v", label, err)
			}
			if !reflect.DeepEqual(ln, en) || ls != es {
				t.Fatalf("%s: MinimalSafe mismatch: legacy %v %+v, encoded %v %+v", label, ln, ls, en, es)
			}

			ln, ls, err = legacy.MinimalSafeIncognito(legacy.CKSafety(c, k))
			if err != nil {
				t.Fatalf("%s: legacy Incognito: %v", label, err)
			}
			en, es, err = encoded.MinimalSafeIncognito(encoded.CKSafety(c, k))
			if err != nil {
				t.Fatalf("%s: encoded Incognito: %v", label, err)
			}
			if !reflect.DeepEqual(ln, en) || ls != es {
				t.Fatalf("%s: Incognito mismatch: legacy %v %+v, encoded %v %+v", label, ln, ls, en, es)
			}

			lNode, lOK, lStats, err := legacy.ChainSearch(legacy.CKSafety(c, k))
			if err != nil {
				t.Fatalf("%s: legacy ChainSearch: %v", label, err)
			}
			eNode, eOK, eStats, err := encoded.ChainSearch(encoded.CKSafety(c, k))
			if err != nil {
				t.Fatalf("%s: encoded ChainSearch: %v", label, err)
			}
			if lOK != eOK || !reflect.DeepEqual(lNode, eNode) || lStats != eStats {
				t.Fatalf("%s: ChainSearch mismatch: legacy %v/%v %+v, encoded %v/%v %+v",
					label, lNode, lOK, lStats, eNode, eOK, eStats)
			}

			// Disclosure values over both paths' bucketizations, node by node.
			for _, node := range legacy.Space().All() {
				lbz, err := legacy.Bucketize(node)
				if err != nil {
					t.Fatalf("%s: legacy bucketize %v: %v", label, node, err)
				}
				ebz, err := encoded.Bucketize(node)
				if err != nil {
					t.Fatalf("%s: encoded bucketize %v: %v", label, node, err)
				}
				ld, err := core.MaxDisclosure(lbz, k)
				if err != nil {
					t.Fatalf("%s: legacy disclosure %v: %v", label, node, err)
				}
				ed, err := core.MaxDisclosure(ebz, k)
				if err != nil {
					t.Fatalf("%s: encoded disclosure %v: %v", label, node, err)
				}
				if ld != ed {
					t.Fatalf("%s: disclosure at %v: legacy %v, encoded %v", label, node, ld, ed)
				}
			}
		}
	}
}

// nonNested is a custom Hierarchy violating the nested-coarsening law
// ("a" and "b" agree at level 1 but split at level 2).
type nonNested struct{}

func (nonNested) Name() string { return "q0" }
func (nonNested) Levels() int  { return 3 }
func (nonNested) Generalize(v string, level int) (string, error) {
	switch level {
	case 0:
		return v, nil
	case 1:
		if v == "c" {
			return "y", nil
		}
		return "x", nil
	default:
		if v == "a" {
			return "p", nil
		}
		return "q", nil
	}
}

// TestNonNestedHierarchyFallsBackToLegacy pins the safety net: a problem
// over a law-violating custom hierarchy must not enable the encoded path
// (whose coarsening derivation assumes the law) and must still produce
// the string path's correct results.
func TestNonNestedHierarchyFallsBackToLegacy(t *testing.T) {
	s, err := table.NewSchema([]table.Attribute{
		{Name: "q0", Kind: table.Categorical, Domain: []string{"a", "b", "c"}},
		{Name: "sens", Kind: table.Categorical, Domain: []string{"s0", "s1"}},
	}, "sens")
	if err != nil {
		t.Fatal(err)
	}
	tab := table.New(s)
	rng := rand.New(rand.NewSource(9))
	for r := 0; r < 40; r++ {
		tab.MustAppend(table.Row{
			[]string{"a", "b", "c"}[rng.Intn(3)],
			[]string{"s0", "s1"}[rng.Intn(2)],
		})
	}
	hs := hierarchy.Set{"q0": nonNested{}}
	p, err := NewProblem(tab, hs, []string{"q0"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Encoding().Enabled {
		t.Fatal("encoded path enabled for a non-nested hierarchy")
	}
	legacy, err := NewProblem(tab, hs, []string{"q0"}, WithLegacyBucketize())
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range p.Space().All() {
		want, err := legacy.Bucketize(node)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.Bucketize(node)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("node %v: fallback bucketization differs from legacy", node)
		}
	}
}

// TestCoarsenIndexSeeded checks the incremental derivation is actually in
// play: after a full-lattice sweep, the problem has recorded one source
// per materialized vector and a repeated sweep hits the cache.
func TestCoarsenIndexSeeded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tab, hs, qi := randomProblemCase(rng)
	p, err := NewProblem(tab, hs, qi)
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range p.Space().All() {
		if _, err := p.Bucketize(node); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := p.cur.Load().sources.size(), p.Space().Size(); got != want {
		t.Fatalf("coarsen index has %d entries, want %d", got, want)
	}
	before := p.CacheStats()
	for _, node := range p.Space().All() {
		if _, err := p.Bucketize(node); err != nil {
			t.Fatal(err)
		}
	}
	after := p.CacheStats()
	if after.Misses != before.Misses {
		t.Fatalf("repeat sweep missed the cache: %d -> %d misses", before.Misses, after.Misses)
	}
}
