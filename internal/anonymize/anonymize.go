// Package anonymize ties the substrates together: given a table,
// generalization hierarchies and a privacy criterion, it searches the
// full-domain generalization lattice for minimally sanitized bucketizations
// (§3.4 of the paper) via naive monotone search, Incognito, or chain binary
// search, and ranks results by a utility metric.
//
// A Problem is versioned: Append streams new rows into it, patching the
// warm bucketization cache incrementally, while Snapshot pins one version
// for the duration of a search, so long-running jobs and concurrent
// appends never observe each other.
package anonymize

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ckprivacy/internal/bucket"
	"ckprivacy/internal/core"
	"ckprivacy/internal/hierarchy"
	"ckprivacy/internal/lattice"
	"ckprivacy/internal/parallel"
	"ckprivacy/internal/privacy"
	"ckprivacy/internal/table"
	"ckprivacy/internal/utility"
)

// state is one immutable version of a problem's data: a pinned row view,
// the (optional) columnar substrate at that version, and the warm caches
// built over it. Append never mutates a state — it builds the successor
// and swaps the problem's current-state pointer, so every Snapshot keeps
// computing on exactly the version it pinned.
type state struct {
	// version numbers the states, starting at 1 for the freshly built
	// problem and incremented by every non-empty Append.
	version int64
	// tab is the pinned row view: exactly the rows of this version, backed
	// by (a prefix of) the master table's storage.
	tab *table.Table
	// enc and compiled are the columnar substrate pinned at this version;
	// nil when the problem runs the legacy string path.
	enc      *table.Encoded
	compiled hierarchy.CompiledSet
	// cache holds the version's materialized bucketizations; sources
	// indexes them by full level vector for the coarsening derivation.
	cache   *bucketizeCache
	sources *coarsenIndex
}

// Problem describes one anonymization task.
type Problem struct {
	// Table is the master table; Append grows it in place. Read it through
	// Snapshot (or Problem methods, which pin a snapshot per call) when
	// appends may run concurrently.
	Table *table.Table
	// Hierarchies generalize the quasi-identifier attributes.
	Hierarchies hierarchy.Set
	// QI lists the quasi-identifier attribute names, fixing the lattice's
	// dimension order.
	QI []string

	space lattice.Space
	opts  Options

	engine *core.Engine
	// shardPool bounds the total extra goroutines of all concurrent sharded
	// bucketize scans on this problem. Node-level search workers submit
	// their shard work to this one pool; its never-block design is what
	// makes the node×shard nesting deadlock-free (see parallel.Pool).
	shardPool *parallel.Pool

	// master is the append-only encoded view shared by all versions; nil
	// when the problem runs the legacy string path. appendMu serializes
	// Append; cur is the atomically swapped current version.
	master   *table.Encoded
	appendMu sync.Mutex
	cur      atomic.Pointer[state]

	// sweepCtr accumulates the sweep planner's lifetime counters across
	// versions; SweepStats snapshots them.
	sweepCtr sweepCounters
}

// Options configures a Problem at construction. The zero value resolves
// like DefaultOptions() except where a field documents otherwise; build
// from DefaultOptions() and override fields rather than relying on zero
// values.
type Options struct {
	// Workers is the worker budget of the lattice searches: node predicates
	// of one lattice level are bucketized and safety-checked on up to this
	// many goroutines. Values < 1 mean one worker per CPU core. The default
	// is 1 (fully serial). Every search returns byte-identical nodes at
	// every worker count; the level-wise searches also report identical
	// Stats, while ChainSearch's Evaluated count varies with the budget
	// (multi-section probing).
	Workers int

	// ShardWorkers is the parallelism budget *within* one bucketization:
	// the encoded row scan splits into this many contiguous row shards,
	// scanned concurrently and merged byte-identically. Values < 1 mean one
	// shard per CPU core; 1 (the default) keeps every scan single-threaded.
	// All concurrent scans of the problem share one bounded pool of this
	// size, so searches running Workers node predicates at once still never
	// exceed Workers × ShardWorkers goroutines, and nested submission
	// cannot deadlock. Small tables are scanned serially regardless
	// (sharding costs more than it saves below ~10k rows); results are
	// byte-identical at every setting.
	ShardWorkers int

	// MemoMaxBytes bounds the problem-scoped disclosure engine's MINIMIZE1
	// memo (see core.EngineConfig.MemoMaxBytes): 0 means the core default,
	// negative disables the bound. The engine is what Engine returns;
	// callers wiring their own engines into criteria are unaffected.
	MemoMaxBytes int64

	// Engine injects a fully configured (or shared) disclosure engine as
	// the problem-scoped engine, overriding MemoMaxBytes.
	Engine *core.Engine

	// NoPlannedSweeps disables the sweep planner: lattice searches and
	// MaterializeNodes evaluate node-by-node through the per-miss greedy
	// coarsening path instead of planning each frontier's derivation DAG
	// up front. The planned path is byte-identical (same nodes, stats and
	// bucketizations); this switch exists for parity tests and benchmarks
	// against the per-node path. The zero value — planner on — is the
	// default. Implied by LegacyBucketize (the planner needs the encoded
	// substrate).
	NoPlannedSweeps bool

	// LegacyBucketize disables the columnar encoded path: every
	// bucketization runs the row-by-row string scan (and ShardWorkers is
	// ignored — the legacy path never shards). The encoded path is
	// byte-identical and much faster; this switch exists for parity tests
	// and benchmarks against the reference implementation.
	LegacyBucketize bool
}

// DefaultOptions returns the options NewProblem uses when none are given:
// serial lattice search, single-threaded scans, default memo bound,
// encoded path on.
func DefaultOptions() Options {
	return Options{Workers: 1, ShardWorkers: 1}
}

// resolved normalizes the options: worker budgets materialize their
// per-core defaults so accessors report actual counts.
func (o Options) resolved() Options {
	o.Workers = parallel.Workers(o.Workers)
	o.ShardWorkers = parallel.Workers(o.ShardWorkers)
	return o
}

// Option configures a Problem at construction by mutating its Options.
// The named With* constructors predate the Options struct and remain as
// thin wrappers; new code should fill an Options and call
// NewProblemWithOptions.
type Option func(*Options)

// WithWorkers sets Options.Workers.
//
// Deprecated: set Options.Workers and use NewProblemWithOptions.
func WithWorkers(n int) Option {
	return func(o *Options) { o.Workers = n }
}

// WithShardWorkers sets Options.ShardWorkers.
//
// Deprecated: set Options.ShardWorkers and use NewProblemWithOptions.
func WithShardWorkers(n int) Option {
	return func(o *Options) { o.ShardWorkers = n }
}

// WithMemoBytes sets Options.MemoMaxBytes.
//
// Deprecated: set Options.MemoMaxBytes and use NewProblemWithOptions.
func WithMemoBytes(n int64) Option {
	return func(o *Options) { o.MemoMaxBytes = n }
}

// WithEngine sets Options.Engine.
//
// Deprecated: set Options.Engine and use NewProblemWithOptions.
func WithEngine(e *core.Engine) Option {
	return func(o *Options) { o.Engine = e }
}

// WithLegacyBucketize sets Options.LegacyBucketize.
//
// Deprecated: set Options.LegacyBucketize and use NewProblemWithOptions.
func WithLegacyBucketize() Option {
	return func(o *Options) { o.LegacyBucketize = true }
}

// NewProblem validates the inputs and precomputes the lattice shape,
// configured by functional options over DefaultOptions.
func NewProblem(t *table.Table, hs hierarchy.Set, qi []string, opts ...Option) (*Problem, error) {
	o := DefaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	return NewProblemWithOptions(t, hs, qi, o)
}

// newProblemCore validates the inputs and builds a Problem with its
// lattice space, engine and shard pool — everything except the versioned
// state, which the two constructors (fresh encode vs. recovered encoding)
// wire differently.
func newProblemCore(t *table.Table, hs hierarchy.Set, qi []string, o Options) (*Problem, error) {
	if t == nil || t.Len() == 0 {
		return nil, fmt.Errorf("anonymize: empty table")
	}
	if len(qi) == 0 {
		return nil, fmt.Errorf("anonymize: no quasi-identifiers")
	}
	for _, name := range qi {
		col := t.Schema.Index(name)
		if col < 0 {
			return nil, fmt.Errorf("anonymize: attribute %q not in schema", name)
		}
		if col == t.Schema.SensitiveIndex {
			return nil, fmt.Errorf("anonymize: sensitive attribute %q cannot be a quasi-identifier", name)
		}
	}
	dims, err := hs.Dims(qi)
	if err != nil {
		return nil, fmt.Errorf("anonymize: %w", err)
	}
	space, err := lattice.NewSpace(dims)
	if err != nil {
		return nil, fmt.Errorf("anonymize: %w", err)
	}
	p := &Problem{
		Table:       t,
		Hierarchies: hs,
		QI:          append([]string(nil), qi...),
		space:       space,
		opts:        o.resolved(),
	}
	p.engine = p.opts.Engine
	if p.engine == nil {
		p.engine = core.NewEngineWithConfig(core.EngineConfig{MemoMaxBytes: p.opts.MemoMaxBytes})
	}
	if p.opts.ShardWorkers > 1 {
		p.shardPool = parallel.NewPool(p.opts.ShardWorkers)
	}
	return p, nil
}

// NewProblemWithOptions is NewProblem with the configuration spelled out
// as a struct.
func NewProblemWithOptions(t *table.Table, hs hierarchy.Set, qi []string, o Options) (*Problem, error) {
	p, err := newProblemCore(t, hs, qi, o)
	if err != nil {
		return nil, err
	}
	// The version-1 row view is pinned ([:n:n]) on every path — including
	// the legacy one — so a snapshot taken before the first Append can
	// never observe rows the master table grows by.
	st := &state{
		version: 1,
		tab:     &table.Table{Schema: t.Schema, Rows: t.Rows[:len(t.Rows):len(t.Rows)]},
		cache:   newBucketizeCache(),
	}
	if !p.opts.LegacyBucketize {
		// Encode once per problem; every bucketization, search and serving
		// request on this problem reuses the columnar view. Compilation
		// fails only when a table value is unknown to its hierarchy — the
		// same inputs the string path rejects lazily at Bucketize time — so
		// fall back to the reference path to preserve those semantics.
		enc := t.Encode()
		if chs, err := bucket.CompileHierarchies(enc, hs); err == nil {
			p.master = enc
			st.enc = enc.Snapshot()
			st.tab = st.enc.Table
			st.compiled = chs
			st.sources = &coarsenIndex{}
		}
	}
	p.cur.Store(st)
	return p, nil
}

// NewProblemFromEncoded builds a problem directly over an existing master
// encoded view, resuming at the given dataset version. It is the durable
// store's warm-boot path: the view (rebuilt from a columnar snapshot via
// table.NewEncodedFromParts, then extended by WAL replay) becomes the
// problem's master without re-encoding the rows, and version restores the
// PR-5 counter so versioned clients see no reset across a restart. Unlike
// NewProblemWithOptions, hierarchy compilation failure is an error here —
// a dataset persisted from the encoded path must recover onto it.
func NewProblemFromEncoded(enc *table.Encoded, hs hierarchy.Set, qi []string, version int64, o Options) (*Problem, error) {
	t := enc.Table
	if t == nil || t.Len() == 0 {
		return nil, fmt.Errorf("anonymize: empty table")
	}
	if version < 1 {
		return nil, fmt.Errorf("anonymize: version %d < 1", version)
	}
	if o.LegacyBucketize {
		return nil, fmt.Errorf("anonymize: cannot recover an encoded problem onto the legacy path")
	}
	p, err := newProblemCore(t, hs, qi, o)
	if err != nil {
		return nil, err
	}
	chs, err := bucket.CompileHierarchies(enc, hs)
	if err != nil {
		return nil, fmt.Errorf("anonymize: recovered encoding does not compile: %w", err)
	}
	p.master = enc
	st := &state{
		version:  version,
		enc:      enc.Snapshot(),
		compiled: chs,
		cache:    newBucketizeCache(),
		sources:  &coarsenIndex{},
	}
	st.tab = st.enc.Table
	p.cur.Store(st)
	return p, nil
}

// EncodingInfo describes a problem's columnar state.
type EncodingInfo struct {
	// Enabled reports whether the dictionary-encoded path is active.
	Enabled bool
	// Cardinalities is the per-attribute dictionary size (distinct ground
	// values), keyed by attribute name; nil when Enabled is false.
	Cardinalities map[string]int
}

// Encoding reports whether the problem computes on the encoded substrate
// and, if so, the current version's per-attribute dictionary
// cardinalities.
func (p *Problem) Encoding() EncodingInfo {
	st := p.cur.Load()
	if st.enc == nil {
		return EncodingInfo{}
	}
	return EncodingInfo{Enabled: true, Cardinalities: st.enc.Cardinalities()}
}

// Engine returns the problem-scoped disclosure engine: a bounded,
// concurrency-safe MINIMIZE1 memo sized by WithMemoBytes that callers
// should wire into (c,k)-safety criteria checked against this problem, so
// lattice searches share warm DP state without growing without bound.
// The engine spans versions — its memo is keyed by histogram content, so
// appends never require invalidating it.
func (p *Problem) Engine() *core.Engine { return p.engine }

// CKSafety builds the paper's (c,k)-safety criterion wired to the
// problem-scoped bounded engine.
func (p *Problem) CKSafety(c float64, k int) privacy.CKSafety {
	return privacy.CKSafety{C: c, K: k, Engine: p.engine}
}

// Space returns the full-domain generalization lattice.
func (p *Problem) Space() lattice.Space { return p.space }

// CacheStats snapshots the current version's bucketization-cache counters
// (hit/miss totals are carried across appends, so they are cumulative for
// the problem's lifetime); a long-lived Problem shared across requests
// reports its warm-state effectiveness through this.
func (p *Problem) CacheStats() CacheStats { return p.cur.Load().cache.stats() }

// Version returns the problem's current dataset version: 1 at
// construction, incremented by every non-empty Append.
func (p *Problem) Version() int64 { return p.cur.Load().version }

// Rows returns the current version's row count.
func (p *Problem) Rows() int { return p.cur.Load().tab.Len() }

// NodeForLevels converts a per-attribute level assignment into a lattice
// node in the problem's QI order. Attributes absent from levels stay at
// level 0; attributes outside the QI list, or levels outside the
// hierarchy's range, are errors.
func (p *Problem) NodeForLevels(levels bucket.Levels) (lattice.Node, error) {
	idx := make(map[string]int, len(p.QI))
	for i, name := range p.QI {
		idx[name] = i
	}
	node := make(lattice.Node, len(p.QI))
	dims := p.space.Dims()
	for name, lvl := range levels {
		i, ok := idx[name]
		if !ok {
			return nil, fmt.Errorf("anonymize: attribute %q is not a quasi-identifier (have %v)", name, p.QI)
		}
		if lvl < 0 || lvl >= dims[i] {
			return nil, fmt.Errorf("anonymize: level %d for attribute %q outside [0, %d)", lvl, name, dims[i])
		}
		node[i] = lvl
	}
	if !p.space.Contains(node) {
		return nil, fmt.Errorf("anonymize: levels %v outside lattice %v over %v", levels, p.space.Dims(), p.QI)
	}
	return node, nil
}

// Workers returns the resolved lattice-search worker budget (at least 1).
func (p *Problem) Workers() int { return p.opts.Workers }

// Options returns the problem's resolved configuration: worker budgets
// materialized to actual counts, Engine set to the problem-scoped engine.
func (p *Problem) Options() Options {
	o := p.opts
	o.Engine = p.engine
	return o
}

// Snapshot pins the problem's current version: every Bucketize and search
// on the returned Snapshot computes over exactly the rows, dictionaries
// and warm caches of that version, regardless of concurrent Appends. This
// is what lets a long-running anonymization job report a consistent
// result (and its version) while the dataset keeps growing under it.
func (p *Problem) Snapshot() *Snapshot { return &Snapshot{p: p, st: p.cur.Load()} }

// Snapshot is one pinned version of a Problem. It is safe for concurrent
// use; all methods are reads of immutable state plus sharded-cache fills.
type Snapshot struct {
	p  *Problem
	st *state
}

// Version returns the pinned dataset version.
func (s *Snapshot) Version() int64 { return s.st.version }

// Rows returns the pinned version's row count.
func (s *Snapshot) Rows() int { return s.st.tab.Len() }

// Table returns the pinned row view. It never changes, even while the
// problem's master table grows.
func (s *Snapshot) Table() *table.Table { return s.st.tab }

// Problem returns the problem the snapshot was taken from.
func (s *Snapshot) Problem() *Problem { return s.p }

// Encoded returns the pinned columnar view of this version, or nil when
// the problem runs the legacy string path. The view is immutable; the
// durable store serializes its dictionaries and code columns directly.
func (s *Snapshot) Encoded() *table.Encoded { return s.st.enc }

// Bucketize materializes the bucketization at a lattice node. Attributes
// outside the problem's QI list are fully ignored for grouping only if they
// are not quasi-identifiers of the schema; schema QI attributes not listed
// in p.QI are treated as suppressed.
func (s *Snapshot) Bucketize(node lattice.Node) (*bucket.Bucketization, error) {
	if !s.p.space.Contains(node) {
		return nil, fmt.Errorf("anonymize: node %v outside lattice %v", node, s.p.space.Dims())
	}
	subset := make([]int, len(s.p.QI))
	for i := range subset {
		subset[i] = i
	}
	return s.BucketizeSubset(subset, node)
}

// BucketizeSubset materializes the bucketization induced by a subset of the
// QI dimensions at the given (subset-aligned) levels; the remaining QI
// attributes are fully suppressed. Incognito's subset lattices are checked
// through this path.
func (s *Snapshot) BucketizeSubset(subset []int, node lattice.Node) (*bucket.Bucketization, error) {
	levels, err := s.subsetLevels(subset, node)
	if err != nil {
		return nil, err
	}
	key := cacheKey(subset, node)
	if bz, ok := s.st.cache.get(key); ok {
		return bz, nil
	}
	bz, err := s.materialize(levels)
	if err != nil {
		return nil, err
	}
	s.st.cache.put(key, bz, levels)
	return bz, nil
}

// subsetLevels expands a (subset, node) pair into the complete level
// assignment it induces: subset dimensions at the node's levels, every
// other QI — listed or schema-implied — at top-level suppression. Both
// the per-node path and the sweep planner build their requests through
// this, so they agree on what a cache key means.
func (s *Snapshot) subsetLevels(subset []int, node lattice.Node) (bucket.Levels, error) {
	p := s.p
	if len(subset) != len(node) {
		return nil, fmt.Errorf("anonymize: subset/node length mismatch: %d vs %d", len(subset), len(node))
	}
	levels := bucket.Levels{}
	for _, name := range p.QI {
		h, ok := p.Hierarchies[name]
		if !ok {
			return nil, fmt.Errorf("anonymize: no hierarchy for %q", name)
		}
		levels[name] = h.Levels() - 1 // suppress by default
	}
	// Any schema QI attribute outside p.QI must also be neutralized;
	// FromGeneralization groups by every non-sensitive attribute, so give
	// them top-level suppression too when a hierarchy exists, and reject
	// otherwise.
	for _, col := range s.st.tab.Schema.QuasiIdentifiers() {
		name := s.st.tab.Schema.Attrs[col].Name
		if _, listed := levels[name]; listed {
			continue
		}
		h, ok := p.Hierarchies[name]
		if !ok {
			return nil, fmt.Errorf("anonymize: schema attribute %q has no hierarchy and is not a listed QI", name)
		}
		levels[name] = h.Levels() - 1
	}
	for i, d := range subset {
		if d < 0 || d >= len(p.QI) {
			return nil, fmt.Errorf("anonymize: subset dimension %d out of range", d)
		}
		levels[p.QI[d]] = node[i]
	}
	return levels, nil
}

// materialize builds the bucketization for a complete level assignment
// (every schema QI attribute present). On the encoded path it prefers
// deriving the partition by coarsening the cheapest compatible
// bucketization already materialized — O(buckets) instead of O(rows) —
// and falls back to a single columnar scan; without an encoded view it
// runs the reference string scan.
func (s *Snapshot) materialize(levels bucket.Levels) (*bucket.Bucketization, error) {
	st := s.st
	if st.enc == nil {
		return bucket.FromGeneralization(st.tab, s.p.Hierarchies, levels)
	}
	vec := levelVector(st.tab.Schema, levels)
	var (
		bz  *bucket.Bucketization
		err error
	)
	if fine := st.sources.best(vec); fine != nil {
		bz, err = bucket.Coarsen(fine, st.enc, st.compiled, levels)
	} else {
		bz, err = bucket.FromGeneralizationEncodedSharded(
			st.enc, st.compiled, levels, s.scanShards(), s.p.shardPool)
	}
	if err != nil {
		return nil, err
	}
	st.sources.add(vec, bz)
	return bz, nil
}

// minRowsPerShard is the row count below which a sharded scan stops
// paying for its merge: shard counts are clamped so every shard scans at
// least this many rows. Results are byte-identical at every shard count;
// this only bounds overhead on small tables. A variable so parity tests
// can force sharding on small fixtures.
var minRowsPerShard = 8192

// scanShards resolves the shard count for one full row scan of the
// pinned version: the configured ShardWorkers budget, clamped so shards
// stay usefully large.
func (s *Snapshot) scanShards() int {
	shards := s.p.opts.ShardWorkers
	if shards <= 1 {
		return 1
	}
	if byRows := s.st.tab.Len() / minRowsPerShard; byRows < shards {
		shards = byRows
	}
	if shards < 1 {
		return 1
	}
	return shards
}

// Pred adapts a privacy criterion to a lattice predicate over full nodes.
func (s *Snapshot) Pred(crit privacy.Criterion) lattice.Pred {
	return func(n lattice.Node) (bool, error) {
		bz, err := s.Bucketize(n)
		if err != nil {
			return false, err
		}
		return crit.Satisfied(bz)
	}
}

// MinimalSafe returns all ⪯-minimal lattice nodes satisfying the criterion
// using the bottom-up monotone search, evaluating each lattice level on the
// problem's worker budget. The criterion's Satisfied must be safe for
// concurrent calls when the budget exceeds 1 (all criteria in
// internal/privacy are).
func (s *Snapshot) MinimalSafe(crit privacy.Criterion) ([]lattice.Node, lattice.Stats, error) {
	if s.planned() {
		return lattice.MinimalSatisfyingBatch(s.p.space, s.Pred(crit), s.nodePrefetch(), s.p.opts.Workers)
	}
	if s.p.opts.Workers == 1 {
		return lattice.MinimalSatisfying(s.p.space, s.Pred(crit))
	}
	return lattice.MinimalSatisfyingParallel(s.p.space, s.Pred(crit), s.p.opts.Workers)
}

// MinimalSafeIncognito returns the same minimal nodes via Incognito's
// subset-pruned search, parallelized level-wise across same-size subset
// lattices when the worker budget exceeds 1.
func (s *Snapshot) MinimalSafeIncognito(crit privacy.Criterion) ([]lattice.Node, lattice.Stats, error) {
	check := func(subset []int, node lattice.Node) (bool, error) {
		bz, err := s.BucketizeSubset(subset, node)
		if err != nil {
			return false, err
		}
		return crit.Satisfied(bz)
	}
	if s.planned() {
		return lattice.IncognitoBatch(s.p.space, check, s.subsetPrefetch(), s.p.opts.Workers)
	}
	if s.p.opts.Workers == 1 {
		return lattice.Incognito(s.p.space, check)
	}
	return lattice.IncognitoParallel(s.p.space, check, s.p.opts.Workers)
}

// ChainSearch searches the canonical chain from the most specific to the
// fully generalized node (Theorem 14 makes the predicate monotone along it)
// and returns the lowest safe node on that chain, or ok=false when even the
// top node fails. With a worker budget above 1 the binary search becomes a
// multi-section search probing `workers` chain positions per round.
func (s *Snapshot) ChainSearch(crit privacy.Criterion) (lattice.Node, bool, lattice.Stats, error) {
	chain := s.p.space.Chain()
	var (
		idx   int
		stats lattice.Stats
		err   error
	)
	switch {
	case s.planned():
		idx, stats, err = lattice.BinarySearchChainBatch(chain, s.Pred(crit), s.nodePrefetch(), s.p.opts.Workers)
	case s.p.opts.Workers == 1:
		idx, stats, err = lattice.BinarySearchChain(chain, s.Pred(crit))
	default:
		idx, stats, err = lattice.BinarySearchChainParallel(chain, s.Pred(crit), s.p.opts.Workers)
	}
	if err != nil {
		return nil, false, stats, err
	}
	if idx < 0 {
		return nil, false, stats, nil
	}
	return chain[idx], true, stats, nil
}

// BestByUtility materializes the candidate nodes and returns the index of
// the one maximizing the metric (§3.4: pick the minimal safe bucketization
// with the highest utility), together with its bucketization.
func (s *Snapshot) BestByUtility(nodes []lattice.Node, m utility.Metric) (int, *bucket.Bucketization, error) {
	if len(nodes) == 0 {
		return -1, nil, fmt.Errorf("anonymize: no candidate nodes")
	}
	if s.planned() {
		// The candidates are one frontier: materialize them as a planned
		// batch before ranking (usually they are cached from the search
		// that produced them, in which case this is a no-op).
		if err := s.nodePrefetch()(nodes); err != nil {
			return -1, nil, err
		}
	}
	bzs := make([]*bucket.Bucketization, len(nodes))
	err := parallel.ForEach(s.p.opts.Workers, len(nodes), func(i int) error {
		bz, err := s.Bucketize(nodes[i])
		if err != nil {
			return err
		}
		bzs[i] = bz
		return nil
	})
	if err != nil {
		return -1, nil, err
	}
	best := utility.Best(m, bzs)
	return best, bzs[best], nil
}

// Bucketize materializes the bucketization at a lattice node on the
// current version (each Problem-level call pins its own snapshot; use
// Snapshot directly when several calls must agree on one version).
func (p *Problem) Bucketize(node lattice.Node) (*bucket.Bucketization, error) {
	return p.Snapshot().Bucketize(node)
}

// BucketizeSubset is Snapshot.BucketizeSubset on the current version.
func (p *Problem) BucketizeSubset(subset []int, node lattice.Node) (*bucket.Bucketization, error) {
	return p.Snapshot().BucketizeSubset(subset, node)
}

// Pred adapts a privacy criterion to a lattice predicate over full nodes,
// evaluated on the current version at call time.
func (p *Problem) Pred(crit privacy.Criterion) lattice.Pred {
	return p.Snapshot().Pred(crit)
}

// MinimalSafe runs Snapshot.MinimalSafe on the version current when the
// call starts; the whole search computes on that one pinned version.
func (p *Problem) MinimalSafe(crit privacy.Criterion) ([]lattice.Node, lattice.Stats, error) {
	return p.Snapshot().MinimalSafe(crit)
}

// MinimalSafeIncognito runs Snapshot.MinimalSafeIncognito on the version
// current when the call starts.
func (p *Problem) MinimalSafeIncognito(crit privacy.Criterion) ([]lattice.Node, lattice.Stats, error) {
	return p.Snapshot().MinimalSafeIncognito(crit)
}

// ChainSearch runs Snapshot.ChainSearch on the version current when the
// call starts.
func (p *Problem) ChainSearch(crit privacy.Criterion) (lattice.Node, bool, lattice.Stats, error) {
	return p.Snapshot().ChainSearch(crit)
}

// BestByUtility runs Snapshot.BestByUtility on the version current when
// the call starts.
func (p *Problem) BestByUtility(nodes []lattice.Node, m utility.Metric) (int, *bucket.Bucketization, error) {
	return p.Snapshot().BestByUtility(nodes, m)
}

// levelVector flattens a complete level assignment into schema QI order —
// the comparable form the coarsening index orders sources by.
func levelVector(s *table.Schema, levels bucket.Levels) []int {
	qi := s.QuasiIdentifiers()
	vec := make([]int, len(qi))
	for i, col := range qi {
		vec[i] = levels[s.Attrs[col].Name]
	}
	return vec
}

func cacheKey(subset []int, node lattice.Node) string {
	return lattice.Node(subset).Key() + "/" + node.Key()
}
