package anonymize

import (
	"fmt"

	"ckprivacy/internal/bucket"
	"ckprivacy/internal/hierarchy"
	"ckprivacy/internal/table"
)

// AppendResult reports what one Problem.Append changed.
type AppendResult struct {
	// Version is the dataset version after the append.
	Version int64
	// Start is the row index of the first appended row.
	Start int
	// Rows is the total row count after the append.
	Rows int
	// Appended is the number of rows the batch added.
	Appended int
	// NewCodes counts the dictionary codes each attribute gained, keyed by
	// attribute name; attributes absent saw no new values. Nil on the
	// legacy string path, which keeps no dictionaries.
	NewCodes map[string]int
	// PatchedNodes counts warm cache entries refreshed in place by the
	// incremental bucketization update.
	PatchedNodes int
	// InvalidatedNodes counts warm cache entries that had to be dropped
	// (rebuilt lazily on next use) instead of patched — always the whole
	// cache on the legacy path.
	InvalidatedNodes int
}

// Append streams rows into the problem: dictionaries and code columns grow
// in place, every cached bucketization is patched with just the appended
// rows (O(appended + buckets) per warm node instead of a full O(rows)
// re-encode and re-bucketize), and the problem's version is bumped. The
// swap is atomic — searches running on a Snapshot keep their pinned
// version; calls made after Append see the grown dataset. Appends are
// serialized with each other but never block snapshot readers.
//
// The batch is validated (schema and, on the encoded path, hierarchy
// coverage of every new value) before anything mutates, so a rejected
// batch leaves the problem exactly as it was. The disclosure-engine memo
// needs no maintenance: it is keyed by histogram content, not by dataset
// version.
func (p *Problem) Append(rows []table.Row) (AppendResult, error) {
	p.appendMu.Lock()
	defer p.appendMu.Unlock()
	old := p.cur.Load()
	if len(rows) == 0 {
		return AppendResult{Version: old.version, Start: old.tab.Len(), Rows: old.tab.Len()}, nil
	}
	// Schema validation runs first so malformed values are reported as
	// schema errors; Encoded.Append will re-validate (it is public API
	// with its own atomicity contract), which is accepted double work —
	// one linear pass over the batch, small next to the cache patching.
	if err := p.validateRows(rows); err != nil {
		return AppendResult{}, err
	}
	if p.master == nil {
		return p.appendLegacy(old, rows)
	}

	// Extend the compiled hierarchies over the batch's new values before
	// committing anything: a value the hierarchy cannot generalize must
	// reject the whole batch, not leave the dictionaries half-grown.
	// Schema validation already ran, so extension errors really mean "the
	// hierarchy does not cover this (schema-legal) value".
	newCompiled, err := p.extendCompiled(old, rows)
	if err != nil {
		return AppendResult{}, err
	}
	delta, err := p.master.Append(rows)
	if err != nil {
		return AppendResult{}, err
	}
	snap := p.master.Snapshot()

	// Patch the warm state: every cached bucketization absorbs just the
	// appended rows; entries a patch cannot serve are dropped and rebuilt
	// lazily. The coarsening index is rebuilt from the patched entries, so
	// the next cache miss still derives from the cheapest compatible
	// source.
	cache := newBucketizeCache()
	cache.carryCounters(old.cache)
	sources := &coarsenIndex{}
	res := AppendResult{
		Version:  old.version + 1,
		Start:    delta.Start,
		Rows:     delta.Rows,
		Appended: len(rows),
		NewCodes: newCodeCounts(snap.Table.Schema, delta),
	}
	old.cache.each(func(key string, e cacheEntry) {
		bz, err := bucket.AppendRows(e.bz, snap, newCompiled, e.levels, delta.Start)
		if err != nil {
			res.InvalidatedNodes++
			return
		}
		cache.put(key, bz, e.levels)
		sources.add(levelVector(snap.Table.Schema, e.levels), bz)
		res.PatchedNodes++
	})
	p.cur.Store(&state{
		version:  res.Version,
		tab:      snap.Table,
		enc:      snap,
		compiled: newCompiled,
		cache:    cache,
		sources:  sources,
	})
	return res, nil
}

// validateRows checks the whole batch against the schema before anything
// mutates, so a rejected batch reports the offending row and attribute
// and leaves the problem untouched.
func (p *Problem) validateRows(rows []table.Row) error {
	s := p.Table.Schema
	for i, r := range rows {
		if len(r) != len(s.Attrs) {
			return fmt.Errorf(
				"anonymize: append row %d has %d values, schema has %d attributes",
				i, len(r), len(s.Attrs))
		}
		for c, v := range r {
			if err := s.Attrs[c].Validate(v); err != nil {
				return fmt.Errorf("anonymize: append row %d: %w", i, err)
			}
		}
	}
	return nil
}

// appendLegacy is the string-path append: validated rows are added to the
// master table, and the warm cache is dropped wholesale (there is no
// encoded substrate to patch against). Hierarchy coverage is checked
// first, like the encoded path's Extend: an append is irreversible, so a
// schema-legal value no hierarchy can generalize must reject the batch
// rather than permanently fail every later Bucketize of the dataset.
func (p *Problem) appendLegacy(old *state, rows []table.Row) (AppendResult, error) {
	s := p.Table.Schema
	for name, h := range p.Hierarchies {
		col := s.Index(name)
		if col < 0 {
			continue
		}
		checked := make(map[string]bool)
		for i, r := range rows {
			v := r[col]
			if checked[v] {
				continue
			}
			checked[v] = true
			for l := 1; l < h.Levels(); l++ {
				if _, err := h.Generalize(v, l); err != nil {
					return AppendResult{}, fmt.Errorf("anonymize: append row %d: %w", i, err)
				}
			}
		}
	}
	p.Table.Rows = append(p.Table.Rows, rows...)
	n := len(p.Table.Rows)
	res := AppendResult{
		Version:          old.version + 1,
		Start:            n - len(rows),
		Rows:             n,
		Appended:         len(rows),
		InvalidatedNodes: old.cache.size(),
	}
	cache := newBucketizeCache()
	cache.carryCounters(old.cache)
	p.cur.Store(&state{
		version: res.Version,
		tab:     &table.Table{Schema: p.Table.Schema, Rows: p.Table.Rows[:n:n]},
		cache:   cache,
	})
	return res, nil
}

// extendCompiled builds the next version's compiled-hierarchy set: for
// every column whose hierarchy is compiled and whose batch introduces
// values the dictionary has not seen, the compiled LUTs are extended
// copy-on-write over the would-be grown domain. Any value a hierarchy
// cannot generalize fails the whole append before the master mutates.
func (p *Problem) extendCompiled(old *state, rows []table.Row) (hierarchy.CompiledSet, error) {
	s := p.master.Table.Schema
	out := make(hierarchy.CompiledSet, len(old.compiled))
	for name, c := range old.compiled {
		out[name] = c
	}
	for name, c := range old.compiled {
		col := s.Index(name)
		if col < 0 {
			continue
		}
		dict := p.master.Dicts[col]
		var grown []string
		seen := make(map[string]bool)
		for _, r := range rows {
			if col >= len(r) {
				continue // length errors surface in master.Append's validation
			}
			v := r[col]
			if _, ok := dict.Code(v); ok || seen[v] {
				continue
			}
			seen[v] = true
			grown = append(grown, v)
		}
		if len(grown) == 0 {
			continue
		}
		domain := append(append([]string(nil), dict.Values()...), grown...)
		ext, err := c.Extend(p.Hierarchies[name], domain)
		if err != nil {
			return nil, fmt.Errorf("anonymize: append: %w", err)
		}
		out[name] = ext
	}
	return out, nil
}

// newCodeCounts flattens an encoding delta into per-attribute new-value
// counts, dropping columns that gained nothing.
func newCodeCounts(s *table.Schema, delta table.AppendDelta) map[string]int {
	out := map[string]int{}
	for c := range s.Attrs {
		if n := delta.NewValueCount(c); n > 0 {
			out[s.Attrs[c].Name] = n
		}
	}
	return out
}
