package anonymize

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"ckprivacy/internal/bucket"
	"ckprivacy/internal/core"
	"ckprivacy/internal/hierarchy"
	"ckprivacy/internal/table"
)

// requireBZIdentity asserts full byte-identity of two bucketizations:
// keys, tuple order, histograms, signatures.
func requireBZIdentity(t *testing.T, want, got *bucket.Bucketization, label string) {
	t.Helper()
	if len(want.Buckets) != len(got.Buckets) {
		t.Fatalf("%s: %d buckets, want %d", label, len(got.Buckets), len(want.Buckets))
	}
	for i := range want.Buckets {
		w, g := want.Buckets[i], got.Buckets[i]
		if w.Key != g.Key {
			t.Fatalf("%s: bucket %d key %q, want %q", label, i, g.Key, w.Key)
		}
		if !reflect.DeepEqual(w.Tuples, g.Tuples) {
			t.Fatalf("%s: bucket %d tuples %v, want %v", label, i, g.Tuples, w.Tuples)
		}
		if !reflect.DeepEqual(w.Freq(), g.Freq()) {
			t.Fatalf("%s: bucket %d freq %v, want %v", label, i, g.Freq(), w.Freq())
		}
		if !reflect.DeepEqual(w.Histogram(), g.Histogram()) {
			t.Fatalf("%s: bucket %d histogram %v, want %v", label, i, g.Histogram(), w.Histogram())
		}
	}
}

// TestAppendParitySearches is the append-parity acceptance property: for
// random tables and hierarchies, appending a suffix to a warm problem and
// then bucketizing/searching must be byte-identical — bucket keys, tuple
// order, histograms, search nodes and stats, disclosure values — to a
// problem built from scratch on the concatenated table, at worker budgets
// 1 and 4.
func TestAppendParitySearches(t *testing.T) {
	cases := 20
	if testing.Short() {
		cases = 6
	}
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < cases; i++ {
		tab, hs, qi := randomProblemCase(rng)
		cut := 1 + rng.Intn(tab.Len()-1)
		base := table.New(tab.Schema)
		for _, r := range tab.Rows[:cut] {
			base.MustAppend(r)
		}
		extra := make([]table.Row, len(tab.Rows[cut:]))
		copy(extra, tab.Rows[cut:])
		c := []float64{0.4, 0.6, 0.8}[rng.Intn(3)]
		k := rng.Intn(3)
		for _, workers := range []int{1, 4} {
			label := fmt.Sprintf("case %d cut %d (c=%v k=%d workers=%d)", i, cut, c, k, workers)

			appended, err := NewProblem(base.Clone(), hs, qi, WithWorkers(workers))
			if err != nil {
				t.Fatalf("%s: base problem: %v", label, err)
			}
			// Warm the whole lattice before appending so the patch path is
			// what serves every post-append node.
			for _, node := range appended.Space().All() {
				if _, err := appended.Bucketize(node); err != nil {
					t.Fatalf("%s: warm %v: %v", label, node, err)
				}
			}
			res, err := appended.Append(extra)
			if err != nil {
				t.Fatalf("%s: append: %v", label, err)
			}
			if res.Version != 2 || res.Start != cut || res.Rows != tab.Len() || res.Appended != len(extra) {
				t.Fatalf("%s: append result %+v", label, res)
			}
			if appended.Version() != 2 || appended.Rows() != tab.Len() {
				t.Fatalf("%s: version/rows %d/%d after append", label, appended.Version(), appended.Rows())
			}

			rebuilt, err := NewProblem(tab.Clone(), hs, qi, WithWorkers(workers))
			if err != nil {
				t.Fatalf("%s: rebuilt problem: %v", label, err)
			}

			// Node-by-node bucketization identity and disclosure parity.
			for _, node := range rebuilt.Space().All() {
				want, err := rebuilt.Bucketize(node)
				if err != nil {
					t.Fatalf("%s: rebuilt bucketize %v: %v", label, node, err)
				}
				got, err := appended.Bucketize(node)
				if err != nil {
					t.Fatalf("%s: appended bucketize %v: %v", label, node, err)
				}
				requireBZIdentity(t, want, got, fmt.Sprintf("%s node %v", label, node))
				wd, err := core.MaxDisclosure(want, k)
				if err != nil {
					t.Fatalf("%s: disclosure %v: %v", label, node, err)
				}
				gd, err := core.MaxDisclosure(got, k)
				if err != nil {
					t.Fatalf("%s: disclosure %v: %v", label, node, err)
				}
				if wd != gd {
					t.Fatalf("%s: disclosure at %v: rebuilt %v, appended %v", label, node, wd, gd)
				}
			}

			// Search parity: nodes and stats for every search type.
			wn, ws, err := rebuilt.MinimalSafe(rebuilt.CKSafety(c, k))
			if err != nil {
				t.Fatalf("%s: rebuilt MinimalSafe: %v", label, err)
			}
			gn, gs, err := appended.MinimalSafe(appended.CKSafety(c, k))
			if err != nil {
				t.Fatalf("%s: appended MinimalSafe: %v", label, err)
			}
			if !reflect.DeepEqual(wn, gn) || ws != gs {
				t.Fatalf("%s: MinimalSafe mismatch: rebuilt %v %+v, appended %v %+v", label, wn, ws, gn, gs)
			}

			wn, ws, err = rebuilt.MinimalSafeIncognito(rebuilt.CKSafety(c, k))
			if err != nil {
				t.Fatalf("%s: rebuilt Incognito: %v", label, err)
			}
			gn, gs, err = appended.MinimalSafeIncognito(appended.CKSafety(c, k))
			if err != nil {
				t.Fatalf("%s: appended Incognito: %v", label, err)
			}
			if !reflect.DeepEqual(wn, gn) || ws != gs {
				t.Fatalf("%s: Incognito mismatch: rebuilt %v %+v, appended %v %+v", label, wn, ws, gn, gs)
			}

			wNode, wOK, wStats, err := rebuilt.ChainSearch(rebuilt.CKSafety(c, k))
			if err != nil {
				t.Fatalf("%s: rebuilt ChainSearch: %v", label, err)
			}
			gNode, gOK, gStats, err := appended.ChainSearch(appended.CKSafety(c, k))
			if err != nil {
				t.Fatalf("%s: appended ChainSearch: %v", label, err)
			}
			if wOK != gOK || !reflect.DeepEqual(wNode, gNode) || wStats != gStats {
				t.Fatalf("%s: ChainSearch mismatch: rebuilt %v/%v %+v, appended %v/%v %+v",
					label, wNode, wOK, wStats, gNode, gOK, gStats)
			}
		}
	}
}

// TestAppendParityLegacyPath runs the append-parity property on the
// string path: the cache is invalidated wholesale, and results still match
// a from-scratch legacy problem on the concatenated table.
func TestAppendParityLegacyPath(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	tab, hs, qi := randomProblemCase(rng)
	cut := tab.Len() / 2
	base := table.New(tab.Schema)
	for _, r := range tab.Rows[:cut] {
		base.MustAppend(r)
	}
	p, err := NewProblem(base.Clone(), hs, qi, WithLegacyBucketize())
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range p.Space().All() {
		if _, err := p.Bucketize(node); err != nil {
			t.Fatal(err)
		}
	}
	warm := p.CacheStats().Entries
	res, err := p.Append(tab.Rows[cut:])
	if err != nil {
		t.Fatal(err)
	}
	if res.InvalidatedNodes != warm || res.PatchedNodes != 0 {
		t.Fatalf("legacy append result %+v, want %d invalidated", res, warm)
	}
	if p.CacheStats().Entries != 0 {
		t.Fatalf("legacy append left %d cached entries", p.CacheStats().Entries)
	}
	rebuilt, err := NewProblem(tab.Clone(), hs, qi, WithLegacyBucketize())
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range p.Space().All() {
		want, err := rebuilt.Bucketize(node)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.Bucketize(node)
		if err != nil {
			t.Fatal(err)
		}
		requireBZIdentity(t, want, got, fmt.Sprintf("legacy node %v", node))
	}
}

// TestSnapshotPinsVersionAcrossAppend pins the copy-on-write contract at
// the problem layer: a snapshot taken before an append keeps returning the
// pre-append partition and version while the problem itself moves on.
func TestSnapshotPinsVersionAcrossAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	tab, hs, qi := randomProblemCase(rng)
	cut := tab.Len() / 2
	base := table.New(tab.Schema)
	for _, r := range tab.Rows[:cut] {
		base.MustAppend(r)
	}
	p, err := NewProblem(base.Clone(), hs, qi)
	if err != nil {
		t.Fatal(err)
	}
	snap := p.Snapshot()
	node := p.Space().All()[0]
	before, err := snap.Bucketize(node)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Append(tab.Rows[cut:]); err != nil {
		t.Fatal(err)
	}
	if snap.Version() != 1 || snap.Rows() != cut {
		t.Fatalf("snapshot drifted to version %d rows %d", snap.Version(), snap.Rows())
	}
	after, err := snap.Bucketize(node)
	if err != nil {
		t.Fatal(err)
	}
	requireBZIdentity(t, before, after, "pinned snapshot")
	if got := after.Size(); got != cut {
		t.Fatalf("pinned snapshot bucketizes %d tuples, want %d", got, cut)
	}
	now := p.Snapshot()
	if now.Version() != 2 || now.Rows() != tab.Len() {
		t.Fatalf("current snapshot at version %d rows %d", now.Version(), now.Rows())
	}
	cur, err := now.Bucketize(node)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Size() != tab.Len() {
		t.Fatalf("current snapshot bucketizes %d tuples, want %d", cur.Size(), tab.Len())
	}
}

// TestAppendRejectsUncoveredValue checks atomicity: a batch containing a
// value the hierarchy cannot generalize is rejected whole, leaving
// version, rows and warm state untouched.
func TestAppendRejectsUncoveredValue(t *testing.T) {
	s, err := table.NewSchema([]table.Attribute{
		{Name: "City", Kind: table.Categorical, Domain: []string{"a", "b", "c"}},
		{Name: "sens", Kind: table.Categorical, Domain: []string{"s0", "s1"}},
	}, "sens")
	if err != nil {
		t.Fatal(err)
	}
	// The hierarchy covers only a and b; c is schema-legal but cannot be
	// generalized.
	hs := hierarchy.Set{"City": hierarchy.NewSuppression("City", []string{"a", "b"})}
	tab := table.New(s)
	tab.MustAppend(table.Row{"a", "s0"})
	tab.MustAppend(table.Row{"b", "s1"})
	p, err := NewProblem(tab, hs, []string{"City"})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Encoding().Enabled {
		t.Fatal("fixture did not take the encoded path")
	}
	node := p.Space().All()[0]
	if _, err := p.Bucketize(node); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Append([]table.Row{{"c", "s0"}}); err == nil {
		t.Fatal("append accepted a value outside the hierarchy")
	}
	if p.Version() != 1 || p.Rows() != 2 {
		t.Fatalf("rejected append mutated the problem: version %d rows %d", p.Version(), p.Rows())
	}
	if _, err := p.Append([]table.Row{{"bogus", "s0"}}); err == nil {
		t.Fatal("append accepted a schema-invalid value")
	}
	// A valid append still works afterwards and bumps the version.
	res, err := p.Append([]table.Row{{"a", "s1"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 || res.Rows != 3 || res.PatchedNodes != 1 {
		t.Fatalf("append result %+v", res)
	}
}

// TestLegacySnapshotPinnedAcrossAppend pins the version-1 view on the
// string path: even without an encoded substrate, a snapshot taken
// before the first append must keep its row count and partitions.
func TestLegacySnapshotPinnedAcrossAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	tab, hs, qi := randomProblemCase(rng)
	cut := tab.Len() / 2
	base := table.New(tab.Schema)
	for _, r := range tab.Rows[:cut] {
		base.MustAppend(r)
	}
	p, err := NewProblem(base, hs, qi, WithLegacyBucketize())
	if err != nil {
		t.Fatal(err)
	}
	snap := p.Snapshot()
	node := p.Space().All()[0]
	if _, err := snap.Bucketize(node); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Append(tab.Rows[cut:]); err != nil {
		t.Fatal(err)
	}
	if snap.Version() != 1 || snap.Rows() != cut {
		t.Fatalf("legacy snapshot drifted to version %d rows %d, want 1/%d",
			snap.Version(), snap.Rows(), cut)
	}
	bz, err := snap.Bucketize(node)
	if err != nil {
		t.Fatal(err)
	}
	if bz.Size() != cut {
		t.Fatalf("legacy pinned snapshot bucketizes %d tuples, want %d", bz.Size(), cut)
	}
}

// TestLegacyAppendRejectsUncoveredValue pins the string-path batch
// atomicity: a schema-legal value no hierarchy can generalize must
// reject the batch — committing it would permanently fail every later
// Bucketize of the dataset.
func TestLegacyAppendRejectsUncoveredValue(t *testing.T) {
	s, err := table.NewSchema([]table.Attribute{
		{Name: "City", Kind: table.Categorical, Domain: []string{"a", "b", "c"}},
		{Name: "sens", Kind: table.Categorical, Domain: []string{"s0", "s1"}},
	}, "sens")
	if err != nil {
		t.Fatal(err)
	}
	hs := hierarchy.Set{"City": hierarchy.NewSuppression("City", []string{"a", "b"})}
	tab := table.New(s)
	tab.MustAppend(table.Row{"a", "s0"})
	tab.MustAppend(table.Row{"b", "s1"})
	p, err := NewProblem(tab, hs, []string{"City"}, WithLegacyBucketize())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Append([]table.Row{{"a", "s1"}, {"c", "s0"}}); err == nil {
		t.Fatal("legacy append accepted a value outside the hierarchy")
	}
	if p.Version() != 1 || p.Rows() != 2 {
		t.Fatalf("rejected legacy append mutated the problem: version %d rows %d", p.Version(), p.Rows())
	}
	// The dataset still bucketizes at every node afterwards.
	for _, node := range p.Space().All() {
		if _, err := p.Bucketize(node); err != nil {
			t.Fatalf("node %v broken after rejected append: %v", node, err)
		}
	}
}

// TestConcurrentAppendAndSearch drives appends while snapshot-pinned
// searches and bucketizations run on other goroutines; the race detector
// proves the copy-on-write versioning, and every observed bucketization
// must cover exactly one of the row counts a version ever had.
func TestConcurrentAppendAndSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	tab, hs, qi := randomProblemCase(rng)
	base := table.New(tab.Schema)
	for _, r := range tab.Rows {
		base.MustAppend(r)
	}
	p, err := NewProblem(base, hs, qi, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 8
	batch := make([]table.Row, 5)
	for i := range batch {
		batch[i] = tab.Rows[i%tab.Len()]
	}
	valid := map[int]bool{}
	for v := 0; v <= rounds; v++ {
		valid[tab.Len()+v*len(batch)] = true
	}
	done := make(chan error, 3)
	go func() {
		for i := 0; i < rounds; i++ {
			if _, err := p.Append(batch); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for g := 0; g < 2; g++ {
		go func() {
			for i := 0; i < 6; i++ {
				snap := p.Snapshot()
				if _, _, err := snap.MinimalSafe(p.CKSafety(0.8, 1)); err != nil {
					done <- err
					return
				}
				for _, node := range p.Space().All() {
					bz, err := snap.Bucketize(node)
					if err != nil {
						done <- err
						return
					}
					if !valid[bz.Size()] {
						done <- fmt.Errorf("bucketization covers %d rows, not any version's count", bz.Size())
						return
					}
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Rows(); got != tab.Len()+rounds*len(batch) {
		t.Fatalf("final rows %d, want %d", got, tab.Len()+rounds*len(batch))
	}
}

// TestAppendResultNewCodes checks the per-attribute new-code accounting.
func TestAppendResultNewCodes(t *testing.T) {
	s, err := table.NewSchema([]table.Attribute{
		{Name: "Age", Kind: table.Numeric, Min: 0, Max: 99},
		{Name: "sens", Kind: table.Categorical, Domain: []string{"s0", "s1", "s2"}},
	}, "sens")
	if err != nil {
		t.Fatal(err)
	}
	hs := hierarchy.Set{"Age": hierarchy.MustInterval("Age", []int{1, 10, 0})}
	tab := table.New(s)
	tab.MustAppend(table.Row{"11", "s0"})
	tab.MustAppend(table.Row{"12", "s0"})
	p, err := NewProblem(tab, hs, []string{"Age"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Append([]table.Row{{"11", "s1"}, {"37", "s2"}, {"37", "s1"}})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"Age": 1, "sens": 2}
	if !reflect.DeepEqual(res.NewCodes, want) {
		t.Fatalf("NewCodes %v, want %v", res.NewCodes, want)
	}
}
