package anonymize

import (
	"fmt"
	"sync/atomic"

	"ckprivacy/internal/bucket"
	"ckprivacy/internal/lattice"
	"ckprivacy/internal/parallel"
)

// This file executes the derivation DAGs plan.go builds: frontiers run in
// ascending height order, each frontier evaluated as one batch on the
// problem's worker budget, every non-root node coarsening from its
// parent's result through a pooled bucket.Arena. The executor's output is
// byte-identical to materializing each node through the per-node
// Bucketize path — planning changes which source each derivation uses and
// when, never what it produces (bucket.Coarsen's contract: any
// component-wise finer source yields the identical bucketization).

// subsetNode pairs a QI-dimension subset with a node of its sub-lattice —
// the unit of work a sweep materializes (full-lattice sweeps use the
// identity subset).
type subsetNode struct {
	subset []int
	node   lattice.Node
}

// sweepCounters accumulates the planner's lifetime totals on a Problem.
type sweepCounters struct {
	sweeps    atomic.Uint64
	planned   atomic.Uint64
	baseScans atomic.Uint64
	coarsened atomic.Uint64
	reused    atomic.Uint64
	predicted atomic.Uint64
	actual    atomic.Uint64
}

// SweepStats is a snapshot of a Problem's sweep-planner counters; the
// serving layer exports them on /metrics. PredictedBuckets vs
// ActualBuckets measures the planner's cost model: the closer the ratio
// is to 1, the better its parent choices were.
type SweepStats struct {
	// Sweeps counts planned sweeps executed (one per non-empty frontier
	// batch handed to the planner).
	Sweeps uint64
	// PlannedNodes counts DAG nodes across all sweeps.
	PlannedNodes uint64
	// BaseScans counts planned nodes materialized by a full row scan
	// (DAG roots with no usable source).
	BaseScans uint64
	// Coarsened counts planned nodes derived from a parent by
	// bucket.CoarsenInto.
	Coarsened uint64
	// Reused counts planned nodes that needed no work: their vector was
	// already materialized (racing sweep or exact recorded source).
	Reused uint64
	// PredictedBuckets sums the planner's predicted bucket counts over
	// materialized nodes.
	PredictedBuckets uint64
	// ActualBuckets sums the materialized nodes' actual bucket counts.
	ActualBuckets uint64
}

// SweepStats snapshots the problem's cumulative sweep-planner counters.
func (p *Problem) SweepStats() SweepStats {
	c := &p.sweepCtr
	return SweepStats{
		Sweeps:           c.sweeps.Load(),
		PlannedNodes:     c.planned.Load(),
		BaseScans:        c.baseScans.Load(),
		Coarsened:        c.coarsened.Load(),
		Reused:           c.reused.Load(),
		PredictedBuckets: c.predicted.Load(),
		ActualBuckets:    c.actual.Load(),
	}
}

// planned reports whether sweeps on this snapshot run through the
// planner: it needs the encoded substrate and is on unless opted out.
func (s *Snapshot) planned() bool {
	return s.st.enc != nil && !s.p.opts.NoPlannedSweeps
}

// prefetch plans and materializes one batch of units against the pinned
// version's cache. It is the Snapshot side of the lattice searches'
// frontier hand-off.
func (s *Snapshot) prefetch(units []subsetNode) error {
	if len(units) == 0 {
		return nil
	}
	pl, err := s.buildPlan(units)
	if err != nil {
		return err
	}
	return s.runPlan(pl)
}

// runPlan executes a derivation DAG frontier by frontier. Heights run in
// ascending order, so every parent's result exists before its children
// derive from it; within a frontier, nodes are independent and evaluate
// as one parallel batch.
func (s *Snapshot) runPlan(pl *sweepPlan) error {
	if len(pl.nodes) == 0 {
		return nil
	}
	st := s.st
	ctr := &s.p.sweepCtr
	ctr.sweeps.Add(1)
	ctr.planned.Add(uint64(len(pl.nodes)))
	results := make([]*bucket.Bucketization, len(pl.nodes))
	for _, frontier := range pl.frontiers {
		err := parallel.ForEach(s.p.opts.Workers, len(frontier), func(i int) error {
			idx := frontier[i]
			n := &pl.nodes[idx]
			bz, cached := st.cache.peek(n.keys[0])
			switch {
			case cached:
				// A racing sweep materialized the vector since planning;
				// both values are byte-identical, either serves.
				ctr.reused.Add(1)
			case n.exact:
				bz = n.source
				ctr.reused.Add(1)
			default:
				src := n.source
				if n.parent >= 0 {
					src = results[n.parent]
				}
				var err error
				if src == nil {
					bz, err = bucket.FromGeneralizationEncodedSharded(
						st.enc, st.compiled, n.levels, s.scanShards(), s.p.shardPool)
					ctr.baseScans.Add(1)
				} else {
					ar := bucket.GetArena()
					bz, err = bucket.CoarsenInto(src, st.enc, st.compiled, n.levels, ar)
					bucket.PutArena(ar)
					ctr.coarsened.Add(1)
				}
				if err != nil {
					return err
				}
				// A planned materialization counts as a cache miss, so the
				// planned and per-node paths report the same number of
				// misses (= materializations).
				st.cache.countMiss()
				ctr.predicted.Add(uint64(n.predicted))
				ctr.actual.Add(uint64(len(bz.Buckets)))
			}
			results[idx] = bz
			for _, k := range n.keys {
				st.cache.put(k, bz, n.levels)
			}
			st.sources.add(n.vec, bz)
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// identitySubset is the all-dimensions subset full-lattice sweeps use.
func identitySubset(n int) []int {
	id := make([]int, n)
	for i := range id {
		id[i] = i
	}
	return id
}

// nodePrefetch adapts the planner to the full-node searches' frontier
// hand-off.
func (s *Snapshot) nodePrefetch() lattice.Prefetch {
	id := identitySubset(len(s.p.QI))
	return func(nodes []lattice.Node) error {
		units := make([]subsetNode, len(nodes))
		for i, n := range nodes {
			units[i] = subsetNode{subset: id, node: n}
		}
		return s.prefetch(units)
	}
}

// subsetPrefetch adapts the planner to Incognito's layer hand-off: one
// batch spans nodes of several subset lattices, all mapped into the full
// level-vector space and planned as one DAG.
func (s *Snapshot) subsetPrefetch() lattice.SubsetPrefetch {
	return func(subsets [][]int, nodes []lattice.Node) error {
		units := make([]subsetNode, len(nodes))
		for i := range nodes {
			units[i] = subsetNode{subset: subsets[i], node: nodes[i]}
		}
		return s.prefetch(units)
	}
}

// MaterializeNodes fills the snapshot's cache for the given full-lattice
// nodes in one planned sweep: the whole set is scheduled as a derivation
// DAG (base scans only at its roots, every other node coarsened from its
// cheapest parent) and executed level by level on the problem's worker
// budget. Afterwards Bucketize on any of the nodes is a cache hit. On a
// problem without the planner (legacy path or NoPlannedSweeps) it simply
// materializes the nodes one by one — the resulting cache contents are
// identical either way.
func (s *Snapshot) MaterializeNodes(nodes []lattice.Node) error {
	for _, n := range nodes {
		if !s.p.space.Contains(n) {
			return fmt.Errorf("anonymize: node %v outside lattice %v", n, s.p.space.Dims())
		}
	}
	if !s.planned() {
		for _, n := range nodes {
			if _, err := s.Bucketize(n); err != nil {
				return err
			}
		}
		return nil
	}
	return s.nodePrefetch()(nodes)
}
