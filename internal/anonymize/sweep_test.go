package anonymize

import (
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"ckprivacy/internal/bucket"
	"ckprivacy/internal/core"
	"ckprivacy/internal/table"
)

// Randomized full-sweep parity: a planned sweep (one derivation DAG,
// frontier batches, pooled arenas) must produce byte-identical results to
// the per-node greedy path and the legacy string path — same search
// nodes and stats, same bucketizations, same disclosure values — at
// every worker count, and again after an append patches the encoded
// substrate between two sweeps (the planner must replan against the
// patched cache, not reuse stale sources).

// cloneTable deep-copies a table so each problem under comparison owns
// its rows — Append mutates the problem's table in place.
func cloneTable(tab *table.Table) *table.Table {
	c := table.New(tab.Schema)
	for _, r := range tab.Rows {
		c.MustAppend(append(table.Row(nil), r...))
	}
	return c
}

// randomRows draws n fresh rows matching the schema's attribute kinds.
func randomRows(rng *rand.Rand, s *table.Schema, n int) []table.Row {
	rows := make([]table.Row, n)
	for r := range rows {
		row := make(table.Row, len(s.Attrs))
		for c, a := range s.Attrs {
			if a.Kind == table.Numeric {
				row[c] = strconv.Itoa(rng.Intn(100))
			} else {
				row[c] = a.Domain[rng.Intn(len(a.Domain))]
			}
		}
		rows[r] = row
	}
	return rows
}

// assertSameBucketization compares two bucketizations bucket by bucket
// through the public accessors (key, tuple ids, frequency table,
// histogram) — the full observable surface of a bucket.
func assertSameBucketization(t *testing.T, label string, a, b *bucket.Bucketization) {
	t.Helper()
	if len(a.Buckets) != len(b.Buckets) {
		t.Fatalf("%s: %d buckets vs %d", label, len(a.Buckets), len(b.Buckets))
	}
	for i := range a.Buckets {
		x, y := a.Buckets[i], b.Buckets[i]
		if x.Key != y.Key {
			t.Fatalf("%s: bucket %d key %q vs %q", label, i, x.Key, y.Key)
		}
		if !reflect.DeepEqual(x.Tuples, y.Tuples) {
			t.Fatalf("%s: bucket %d (%s) tuples %v vs %v", label, i, x.Key, x.Tuples, y.Tuples)
		}
		if !reflect.DeepEqual(x.Freq(), y.Freq()) {
			t.Fatalf("%s: bucket %d (%s) freq %v vs %v", label, i, x.Key, x.Freq(), y.Freq())
		}
		if !reflect.DeepEqual(x.Histogram(), y.Histogram()) {
			t.Fatalf("%s: bucket %d (%s) hist %v vs %v", label, i, x.Key, x.Histogram(), y.Histogram())
		}
	}
}

// TestPlannedSweepParity is the full-sweep parity property test.
func TestPlannedSweepParity(t *testing.T) {
	cases := 8
	if testing.Short() {
		cases = 3
	}
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < cases; i++ {
		tab, hs, qi := randomProblemCase(rng)
		extra := randomRows(rng, tab.Schema, 5+rng.Intn(20))
		c := []float64{0.4, 0.6, 0.8}[rng.Intn(3)]
		k := 1 + rng.Intn(2)
		for _, workers := range []int{1, 4} {
			label := fmt.Sprintf("case %d (c=%v k=%d workers=%d)", i, c, k, workers)

			po := DefaultOptions()
			po.Workers = workers
			planned, err := NewProblemWithOptions(cloneTable(tab), hs, qi, po)
			if err != nil {
				t.Fatalf("%s: planned problem: %v", label, err)
			}
			po.NoPlannedSweeps = true
			pernode, err := NewProblemWithOptions(cloneTable(tab), hs, qi, po)
			if err != nil {
				t.Fatalf("%s: per-node problem: %v", label, err)
			}
			legacy, err := NewProblem(cloneTable(tab), hs, qi, WithWorkers(workers), WithLegacyBucketize())
			if err != nil {
				t.Fatalf("%s: legacy problem: %v", label, err)
			}
			if !planned.Encoding().Enabled || !pernode.Encoding().Enabled {
				t.Fatalf("%s: encoded path did not enable", label)
			}

			compareSweep(t, label, planned, pernode, legacy, c, k)

			// Append the same rows to all three problems and sweep again:
			// the planner must replan against the patched cache and stay
			// byte-identical.
			for _, p := range []*Problem{planned, pernode, legacy} {
				if _, err := p.Append(extra); err != nil {
					t.Fatalf("%s: append: %v", label, err)
				}
			}
			compareSweep(t, label+" after append", planned, pernode, legacy, c, k)

			// The planned problem really planned, and its per-node twin
			// really did not.
			if ss := planned.SweepStats(); ss.Sweeps == 0 || ss.PlannedNodes == 0 {
				t.Fatalf("%s: planner never ran: %+v", label, ss)
			}
			if ss := pernode.SweepStats(); ss.Sweeps != 0 {
				t.Fatalf("%s: NoPlannedSweeps problem still planned: %+v", label, ss)
			}
		}
	}
}

// compareSweep runs a full-lattice planned sweep plus all three searches
// and asserts the three problems agree on everything observable.
func compareSweep(t *testing.T, label string, planned, pernode, legacy *Problem, c float64, k int) {
	t.Helper()
	snap := planned.Snapshot()
	nodes := planned.Space().All()
	if err := snap.MaterializeNodes(nodes); err != nil {
		t.Fatalf("%s: planned sweep: %v", label, err)
	}
	for _, node := range nodes {
		pb, err := snap.Bucketize(node)
		if err != nil {
			t.Fatalf("%s: planned bucketize %v: %v", label, node, err)
		}
		nb, err := pernode.Bucketize(node)
		if err != nil {
			t.Fatalf("%s: per-node bucketize %v: %v", label, node, err)
		}
		assertSameBucketization(t, fmt.Sprintf("%s node %v", label, node), pb, nb)
		lb, err := legacy.Bucketize(node)
		if err != nil {
			t.Fatalf("%s: legacy bucketize %v: %v", label, node, err)
		}
		pd, err := core.MaxDisclosure(pb, k)
		if err != nil {
			t.Fatalf("%s: planned disclosure %v: %v", label, node, err)
		}
		ld, err := core.MaxDisclosure(lb, k)
		if err != nil {
			t.Fatalf("%s: legacy disclosure %v: %v", label, node, err)
		}
		if pd != ld {
			t.Fatalf("%s: disclosure at %v: planned %v, legacy %v", label, node, pd, ld)
		}
	}

	pn, ps, err := planned.MinimalSafe(planned.CKSafety(c, k))
	if err != nil {
		t.Fatalf("%s: planned MinimalSafe: %v", label, err)
	}
	nn, ns, err := pernode.MinimalSafe(pernode.CKSafety(c, k))
	if err != nil {
		t.Fatalf("%s: per-node MinimalSafe: %v", label, err)
	}
	ln, ls, err := legacy.MinimalSafe(legacy.CKSafety(c, k))
	if err != nil {
		t.Fatalf("%s: legacy MinimalSafe: %v", label, err)
	}
	if !reflect.DeepEqual(pn, nn) || ps != ns || !reflect.DeepEqual(pn, ln) || ps != ls {
		t.Fatalf("%s: MinimalSafe mismatch: planned %v %+v, per-node %v %+v, legacy %v %+v",
			label, pn, ps, nn, ns, ln, ls)
	}

	pn, ps, err = planned.MinimalSafeIncognito(planned.CKSafety(c, k))
	if err != nil {
		t.Fatalf("%s: planned Incognito: %v", label, err)
	}
	nn, ns, err = pernode.MinimalSafeIncognito(pernode.CKSafety(c, k))
	if err != nil {
		t.Fatalf("%s: per-node Incognito: %v", label, err)
	}
	ln, ls, err = legacy.MinimalSafeIncognito(legacy.CKSafety(c, k))
	if err != nil {
		t.Fatalf("%s: legacy Incognito: %v", label, err)
	}
	if !reflect.DeepEqual(pn, nn) || ps != ns || !reflect.DeepEqual(pn, ln) || ps != ls {
		t.Fatalf("%s: Incognito mismatch: planned %v %+v, per-node %v %+v, legacy %v %+v",
			label, pn, ps, nn, ns, ln, ls)
	}

	pc, pok, pcs, err := planned.ChainSearch(planned.CKSafety(c, k))
	if err != nil {
		t.Fatalf("%s: planned ChainSearch: %v", label, err)
	}
	nc, nok, ncs, err := pernode.ChainSearch(pernode.CKSafety(c, k))
	if err != nil {
		t.Fatalf("%s: per-node ChainSearch: %v", label, err)
	}
	lc, lok, lcs, err := legacy.ChainSearch(legacy.CKSafety(c, k))
	if err != nil {
		t.Fatalf("%s: legacy ChainSearch: %v", label, err)
	}
	if pok != nok || pok != lok || !reflect.DeepEqual(pc, nc) || !reflect.DeepEqual(pc, lc) ||
		pcs != ncs || pcs != lcs {
		t.Fatalf("%s: ChainSearch mismatch: planned %v/%v %+v, per-node %v/%v %+v, legacy %v/%v %+v",
			label, pc, pok, pcs, nc, nok, ncs, lc, lok, lcs)
	}
}
