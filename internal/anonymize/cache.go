package anonymize

import (
	"hash/fnv"
	"sync"
	"sync/atomic"

	"ckprivacy/internal/bucket"
)

// cacheShards is the shard count of the bucketization cache. 32 keeps lock
// contention negligible for any realistic worker budget while costing only
// 32 small maps.
const cacheShards = 32

// cacheEntry is one cached bucketization together with the complete level
// assignment (every schema QI attribute present) it was materialized at.
// The levels are what let an append patch the entry in place:
// bucket.AppendRows re-keys only the appended rows at exactly these levels.
type cacheEntry struct {
	bz     *bucket.Bucketization
	levels bucket.Levels
}

// bucketizeCache is a sharded, concurrency-safe map from (subset, node)
// cache keys to materialized bucketizations. The level-wise parallel
// searches hit it from every worker at once; sharding by key hash keeps the
// fast path (read of an existing entry) off a single global lock.
//
// Entries are immutable once stored: a racing put of the same key is
// harmless because FromGeneralization is deterministic, so both values are
// interchangeable. Each cache belongs to one problem version; an append
// builds the next version's cache by patching this one's entries rather
// than mutating them (snapshots pinned on this version keep reading it).
type bucketizeCache struct {
	shards [cacheShards]struct {
		mu sync.RWMutex
		m  map[string]cacheEntry
	}

	hits   atomic.Uint64
	misses atomic.Uint64
}

func newBucketizeCache() *bucketizeCache {
	c := &bucketizeCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[string]cacheEntry)
	}
	return c
}

// carryCounters seeds the cache's hit/miss counters from a predecessor so
// the serving layer's cumulative cache metrics stay monotonic across
// appends.
func (c *bucketizeCache) carryCounters(prev *bucketizeCache) {
	c.hits.Store(prev.hits.Load())
	c.misses.Store(prev.misses.Load())
}

func (c *bucketizeCache) shard(key string) *struct {
	mu sync.RWMutex
	m  map[string]cacheEntry
} {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%cacheShards]
}

func (c *bucketizeCache) get(key string) (*bucket.Bucketization, bool) {
	s := c.shard(key)
	s.mu.RLock()
	e, ok := s.m[key]
	s.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e.bz, ok
}

// peek is get without touching the hit/miss counters: the sweep planner
// probes the cache while deciding what to materialize, and a probe is
// neither a serving-path hit nor a materialization.
func (c *bucketizeCache) peek(key string) (*bucket.Bucketization, bool) {
	s := c.shard(key)
	s.mu.RLock()
	e, ok := s.m[key]
	s.mu.RUnlock()
	return e.bz, ok
}

// countMiss attributes one materialization to the miss counter. The sweep
// executor calls it per node it actually builds, so a planned sweep and a
// per-node sweep report the same number of misses (= materializations).
func (c *bucketizeCache) countMiss() { c.misses.Add(1) }

func (c *bucketizeCache) put(key string, bz *bucket.Bucketization, levels bucket.Levels) {
	s := c.shard(key)
	s.mu.Lock()
	s.m[key] = cacheEntry{bz: bz, levels: levels}
	s.mu.Unlock()
}

// each calls fn on a point-in-time copy of every cached entry. Entries
// added by racing readers after their shard is visited are simply missed —
// for the append patcher that only costs a later cache miss, never
// correctness.
func (c *bucketizeCache) each(fn func(key string, e cacheEntry)) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		snapshot := make(map[string]cacheEntry, len(s.m))
		for k, e := range s.m {
			snapshot[k] = e
		}
		s.mu.RUnlock()
		for k, e := range snapshot {
			fn(k, e)
		}
	}
}

// CacheStats is a snapshot of a Problem's bucketization-cache
// effectiveness; the serving layer exports it on /metrics.
type CacheStats struct {
	// Hits counts Bucketize calls answered from the cache.
	Hits uint64
	// Misses counts calls that had to materialize the bucketization.
	Misses uint64
	// Entries is the number of cached bucketizations.
	Entries int
}

// stats snapshots the cache counters and entry count.
func (c *bucketizeCache) stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: c.size()}
}

// size reports the number of cached bucketizations (for tests).
func (c *bucketizeCache) size() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		n += len(c.shards[i].m)
		c.shards[i].mu.RUnlock()
	}
	return n
}
