package anonymize

import (
	"hash/fnv"
	"sync"
	"sync/atomic"

	"ckprivacy/internal/bucket"
)

// cacheShards is the shard count of the bucketization cache. 32 keeps lock
// contention negligible for any realistic worker budget while costing only
// 32 small maps.
const cacheShards = 32

// bucketizeCache is a sharded, concurrency-safe map from (subset, node)
// cache keys to materialized bucketizations. The level-wise parallel
// searches hit it from every worker at once; sharding by key hash keeps the
// fast path (read of an existing entry) off a single global lock.
//
// Entries are immutable once stored: a racing put of the same key is
// harmless because FromGeneralization is deterministic, so both values are
// interchangeable.
type bucketizeCache struct {
	shards [cacheShards]struct {
		mu sync.RWMutex
		m  map[string]*bucket.Bucketization
	}

	hits   atomic.Uint64
	misses atomic.Uint64
}

func newBucketizeCache() *bucketizeCache {
	c := &bucketizeCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*bucket.Bucketization)
	}
	return c
}

func (c *bucketizeCache) shard(key string) *struct {
	mu sync.RWMutex
	m  map[string]*bucket.Bucketization
} {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%cacheShards]
}

func (c *bucketizeCache) get(key string) (*bucket.Bucketization, bool) {
	s := c.shard(key)
	s.mu.RLock()
	bz, ok := s.m[key]
	s.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return bz, ok
}

func (c *bucketizeCache) put(key string, bz *bucket.Bucketization) {
	s := c.shard(key)
	s.mu.Lock()
	s.m[key] = bz
	s.mu.Unlock()
}

// CacheStats is a snapshot of a Problem's bucketization-cache
// effectiveness; the serving layer exports it on /metrics.
type CacheStats struct {
	// Hits counts Bucketize calls answered from the cache.
	Hits uint64
	// Misses counts calls that had to materialize the bucketization.
	Misses uint64
	// Entries is the number of cached bucketizations.
	Entries int
}

// stats snapshots the cache counters and entry count.
func (c *bucketizeCache) stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: c.size()}
}

// size reports the number of cached bucketizations (for tests).
func (c *bucketizeCache) size() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		n += len(c.shards[i].m)
		c.shards[i].mu.RUnlock()
	}
	return n
}
