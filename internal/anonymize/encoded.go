package anonymize

import (
	"sync"

	"ckprivacy/internal/bucket"
)

// coarsenIndex tracks every bucketization the problem has materialized,
// keyed by its full level vector (schema QI order). A cache miss for a
// node can then be served by bucket.Coarsen from any recorded source
// whose vector is component-wise ≤ the target — the hierarchies' nested
// coarsening law makes the derivation exact — and the index picks the
// source with the fewest buckets, since coarsening cost is linear in
// source bucket count.
//
// The index spans Incognito's subset lattices too: subsets map into the
// same full-vector space (non-subset attributes pinned to top-level
// suppression), so a bucketization built for one subset seeds searches
// over any coarser subset. Entry count is bounded by the number of
// distinct level vectors, i.e. the lattice size; the bucketizations
// themselves are already retained by the problem's bucketize cache, so
// entries add only a vector and a pointer.
type coarsenIndex struct {
	mu      sync.Mutex
	entries []coarsenEntry
}

type coarsenEntry struct {
	vec []int
	bz  *bucket.Bucketization
}

// leqVec reports a ≤ b component-wise.
func leqVec(a, b []int) bool {
	for i := range a {
		if a[i] > b[i] {
			return false
		}
	}
	return true
}

// best returns the cheapest recorded source whose level vector is
// component-wise ≤ target, or nil when no compatible source exists yet.
func (ci *coarsenIndex) best(target []int) *bucket.Bucketization {
	ci.mu.Lock()
	defer ci.mu.Unlock()
	var best *bucket.Bucketization
	for _, e := range ci.entries {
		if len(e.vec) != len(target) || !leqVec(e.vec, target) {
			continue
		}
		if best == nil || len(e.bz.Buckets) < len(best.Buckets) {
			best = e.bz
		}
	}
	return best
}

// add records a materialized bucketization under its level vector.
// Duplicate vectors (racing workers materializing the same node) keep the
// first entry; both values are byte-identical, so either serves.
func (ci *coarsenIndex) add(vec []int, bz *bucket.Bucketization) {
	ci.mu.Lock()
	defer ci.mu.Unlock()
	for _, e := range ci.entries {
		if len(e.vec) == len(vec) && leqVec(e.vec, vec) && leqVec(vec, e.vec) {
			return
		}
	}
	ci.entries = append(ci.entries, coarsenEntry{vec: append([]int(nil), vec...), bz: bz})
}
