package anonymize

import (
	"sync"

	"ckprivacy/internal/bucket"
)

// coarsenIndex tracks every bucketization the problem has materialized,
// keyed by its full level vector (schema QI order). A cache miss for a
// node can then be served by bucket.Coarsen from any recorded source
// whose vector is component-wise ≤ the target — the hierarchies' nested
// coarsening law makes the derivation exact — and the index picks the
// source with the fewest buckets, since coarsening cost is linear in
// source bucket count.
//
// The index spans Incognito's subset lattices too: subsets map into the
// same full-vector space (non-subset attributes pinned to top-level
// suppression), so a bucketization built for one subset seeds searches
// over any coarser subset. Entry count is bounded by the number of
// distinct level vectors, i.e. the lattice size; the bucketizations
// themselves are already retained by the problem's bucketize cache, so
// entries add only a vector and a pointer.
//
// Entries are bucketed by level sum (lattice height): a source can only
// be finer than a target of height h if its own height is ≤ h — in fact
// strictly <, except for the target's own vector — so a lookup compares
// component-wise only against the plausible height buckets instead of
// every recorded vector. Ties on bucket count break lexicographically on
// the level vector, so which source serves a derivation never depends on
// cache-fill order — repeated runs coarsen from the same source and
// produce identical bucket storage, not merely equal values.
type coarsenIndex struct {
	mu       sync.Mutex
	byHeight map[int][]coarsenEntry
	count    int
}

type coarsenEntry struct {
	vec []int
	bz  *bucket.Bucketization
}

// leqVec reports a ≤ b component-wise.
func leqVec(a, b []int) bool {
	for i := range a {
		if a[i] > b[i] {
			return false
		}
	}
	return true
}

// lessVec reports a < b lexicographically (equal-length vectors).
func lessVec(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// vecHeight is the lattice height of a level vector: the sum of its
// levels.
func vecHeight(vec []int) int {
	h := 0
	for _, l := range vec {
		h += l
	}
	return h
}

// best returns the cheapest recorded source whose level vector is
// component-wise ≤ target, or nil when no compatible source exists yet.
// Only height buckets ≤ the target's height are scanned; ties on bucket
// count resolve to the lexicographically smallest vector.
func (ci *coarsenIndex) best(target []int) *bucket.Bucketization {
	ci.mu.Lock()
	defer ci.mu.Unlock()
	h := vecHeight(target)
	var (
		best    *bucket.Bucketization
		bestVec []int
	)
	for hh, entries := range ci.byHeight {
		if hh > h {
			continue
		}
		for _, e := range entries {
			if len(e.vec) != len(target) || !leqVec(e.vec, target) {
				continue
			}
			if best == nil || len(e.bz.Buckets) < len(best.Buckets) ||
				(len(e.bz.Buckets) == len(best.Buckets) && lessVec(e.vec, bestVec)) {
				best, bestVec = e.bz, e.vec
			}
		}
	}
	return best
}

// add records a materialized bucketization under its level vector.
// Duplicate vectors (racing workers materializing the same node) keep the
// first entry; both values are byte-identical, so either serves.
func (ci *coarsenIndex) add(vec []int, bz *bucket.Bucketization) {
	ci.mu.Lock()
	defer ci.mu.Unlock()
	if ci.byHeight == nil {
		ci.byHeight = make(map[int][]coarsenEntry)
	}
	h := vecHeight(vec)
	for _, e := range ci.byHeight[h] {
		if len(e.vec) == len(vec) && leqVec(e.vec, vec) && leqVec(vec, e.vec) {
			return
		}
	}
	ci.byHeight[h] = append(ci.byHeight[h], coarsenEntry{vec: append([]int(nil), vec...), bz: bz})
	ci.count++
}

// size reports the number of recorded vectors.
func (ci *coarsenIndex) size() int {
	ci.mu.Lock()
	defer ci.mu.Unlock()
	return ci.count
}

// snapshot returns a point-in-time copy of the entries — the sweep
// planner enumerates candidate sources from this (the vectors are shared,
// not copied; entries are immutable once added).
func (ci *coarsenIndex) snapshot() []coarsenEntry {
	ci.mu.Lock()
	defer ci.mu.Unlock()
	out := make([]coarsenEntry, 0, ci.count)
	for _, entries := range ci.byHeight {
		out = append(out, entries...)
	}
	return out
}
