package anonymize

import (
	"testing"

	"ckprivacy/internal/core"
	"ckprivacy/internal/hierarchy"
	"ckprivacy/internal/lattice"
	"ckprivacy/internal/privacy"
	"ckprivacy/internal/table"
	"ckprivacy/internal/utility"
)

// hospital builds the paper's Figure 1 table with Zip/Age/Sex hierarchies
// (3·3·2 = 18-node lattice).
func hospital(t *testing.T) *Problem {
	t.Helper()
	s, err := table.NewSchema([]table.Attribute{
		{Name: "Zip", Kind: table.Numeric, Min: 0, Max: 99999},
		{Name: "Age", Kind: table.Numeric, Min: 0, Max: 120},
		{Name: "Sex", Kind: table.Categorical, Domain: []string{"M", "F"}},
		{Name: "Disease", Kind: table.Categorical, Domain: []string{
			"flu", "lung-cancer", "mumps", "breast-cancer", "ovarian-cancer", "heart-disease",
		}},
	}, "Disease")
	if err != nil {
		t.Fatal(err)
	}
	tab := table.New(s)
	for _, r := range []table.Row{
		{"14850", "23", "M", "flu"},
		{"14850", "24", "M", "flu"},
		{"14850", "25", "M", "lung-cancer"},
		{"14850", "27", "M", "lung-cancer"},
		{"14853", "29", "M", "mumps"},
		{"14850", "21", "F", "flu"},
		{"14850", "22", "F", "flu"},
		{"14853", "24", "F", "breast-cancer"},
		{"14853", "26", "F", "ovarian-cancer"},
		{"14853", "28", "F", "heart-disease"},
	} {
		tab.MustAppend(r)
	}
	hs := hierarchy.Set{
		"Zip": hierarchy.MustInterval("Zip", []int{1, 10, 0}),
		"Age": hierarchy.MustInterval("Age", []int{1, 10, 0}),
		"Sex": hierarchy.NewSuppression("Sex", []string{"M", "F"}),
	}
	p, err := NewProblem(tab, hs, []string{"Zip", "Age", "Sex"})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewProblemValidation(t *testing.T) {
	p := hospital(t)
	if p.Space().Size() != 18 {
		t.Errorf("lattice size = %d, want 18", p.Space().Size())
	}
	if _, err := NewProblem(nil, p.Hierarchies, p.QI); err == nil {
		t.Error("nil table accepted")
	}
	if _, err := NewProblem(p.Table, p.Hierarchies, nil); err == nil {
		t.Error("empty QI accepted")
	}
	if _, err := NewProblem(p.Table, p.Hierarchies, []string{"Nope"}); err == nil {
		t.Error("unknown QI accepted")
	}
	if _, err := NewProblem(p.Table, p.Hierarchies, []string{"Disease"}); err == nil {
		t.Error("sensitive attribute as QI accepted")
	}
	if _, err := NewProblem(p.Table, hierarchy.Set{}, []string{"Zip"}); err == nil {
		t.Error("missing hierarchy accepted")
	}
}

func TestBucketizePaperNode(t *testing.T) {
	p := hospital(t)
	// Zip→width 10, Age→width 10, Sex kept: the paper's Figure 2/3
	// partition (two buckets of five).
	bz, err := p.Bucketize(lattice.Node{1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(bz.Buckets) != 2 || bz.MinSize() != 5 {
		t.Fatalf("buckets = %d, min size = %d", len(bz.Buckets), bz.MinSize())
	}
	// Fully generalized: one bucket of ten.
	top, err := p.Bucketize(p.Space().Top())
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Buckets) != 1 || top.Buckets[0].Size() != 10 {
		t.Errorf("top bucketization = %d buckets", len(top.Buckets))
	}
	if _, err := p.Bucketize(lattice.Node{9, 9, 9}); err == nil {
		t.Error("out-of-lattice node accepted")
	}
	// Cache returns the identical value.
	again, err := p.Bucketize(lattice.Node{1, 1, 0})
	if err != nil || again != bz {
		t.Error("cache miss on repeated node")
	}
}

func TestBucketizeSubset(t *testing.T) {
	p := hospital(t)
	// Subset {Sex} at level 0: grouping by sex alone → 2 buckets of 5,
	// exactly like the full node with Zip and Age suppressed.
	bz, err := p.BucketizeSubset([]int{2}, lattice.Node{0})
	if err != nil {
		t.Fatal(err)
	}
	full, err := p.Bucketize(lattice.Node{2, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(bz.Buckets) != len(full.Buckets) {
		t.Errorf("subset buckets %d != full buckets %d", len(bz.Buckets), len(full.Buckets))
	}
	if _, err := p.BucketizeSubset([]int{0, 1}, lattice.Node{0}); err == nil {
		t.Error("mismatched subset/node accepted")
	}
	if _, err := p.BucketizeSubset([]int{7}, lattice.Node{0}); err == nil {
		t.Error("out-of-range subset accepted")
	}
}

func TestMinimalSafeMatchesIncognitoAndNaive(t *testing.T) {
	p := hospital(t)
	engine := core.NewEngine()
	criteria := []privacy.Criterion{
		privacy.KAnonymity{K: 5},
		privacy.KAnonymity{K: 2},
		privacy.DistinctLDiversity{L: 3},
		privacy.CKSafety{C: 0.7, K: 1, Engine: engine},
		privacy.CKSafety{C: 0.99, K: 2, Engine: engine},
	}
	for _, crit := range criteria {
		t.Run(crit.Name(), func(t *testing.T) {
			fast, _, err := p.MinimalSafe(crit)
			if err != nil {
				t.Fatal(err)
			}
			inc, _, err := p.MinimalSafeIncognito(crit)
			if err != nil {
				t.Fatal(err)
			}
			naive, _, err := lattice.NaiveMinimal(p.Space(), p.Pred(crit))
			if err != nil {
				t.Fatal(err)
			}
			if !sameNodes(fast, naive) {
				t.Errorf("MinimalSafe %v != naive %v", fast, naive)
			}
			if !sameNodes(inc, naive) {
				t.Errorf("Incognito %v != naive %v", inc, naive)
			}
		})
	}
}

func TestMinimalSafeCKSafetyHospital(t *testing.T) {
	p := hospital(t)
	// (0.7, 1)-safety: the Figure 2/3 bucketization (node [1 1 0]) has max
	// disclosure 2/3 < 0.7, so a node at or below it must be minimal-safe.
	crit := privacy.CKSafety{C: 0.7, K: 1, Engine: core.NewEngine()}
	minimal, _, err := p.MinimalSafe(crit)
	if err != nil {
		t.Fatal(err)
	}
	if len(minimal) == 0 {
		t.Fatal("no minimal safe nodes")
	}
	covered := false
	for _, n := range minimal {
		if lattice.Leq(n, lattice.Node{1, 1, 0}) {
			covered = true
		}
	}
	if !covered {
		t.Errorf("paper node [1 1 0] not covered by minimal set %v", minimal)
	}
	// Every minimal node satisfies, every child of it fails.
	pred := p.Pred(crit)
	for _, n := range minimal {
		ok, err := pred(n)
		if err != nil || !ok {
			t.Errorf("minimal node %v does not satisfy: %v %v", n, ok, err)
		}
		for _, c := range p.Space().Children(n) {
			ok, err := pred(c)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				t.Errorf("child %v of minimal node %v satisfies", c, n)
			}
		}
	}
}

func TestChainSearch(t *testing.T) {
	p := hospital(t)
	crit := privacy.KAnonymity{K: 5}
	node, ok, stats, err := p.ChainSearch(crit)
	if err != nil || !ok {
		t.Fatalf("ChainSearch: ok=%v err=%v", ok, err)
	}
	// The found node satisfies; its chain predecessor must not.
	bz, err := p.Bucketize(node)
	if err != nil {
		t.Fatal(err)
	}
	if sat, _ := crit.Satisfied(bz); !sat {
		t.Errorf("chain result %v unsafe", node)
	}
	if stats.Evaluated > 6 {
		t.Errorf("chain search used %d evaluations for an 8-node chain", stats.Evaluated)
	}
	// An unsatisfiable criterion returns ok=false.
	_, ok, _, err = p.ChainSearch(privacy.KAnonymity{K: 100})
	if err != nil || ok {
		t.Errorf("impossible criterion: ok=%v err=%v", ok, err)
	}
}

func TestBestByUtility(t *testing.T) {
	p := hospital(t)
	crit := privacy.KAnonymity{K: 2}
	minimal, _, err := p.MinimalSafe(crit)
	if err != nil {
		t.Fatal(err)
	}
	idx, bz, err := p.BestByUtility(minimal, utility.Discernibility{})
	if err != nil {
		t.Fatal(err)
	}
	if idx < 0 || idx >= len(minimal) || bz == nil {
		t.Fatalf("BestByUtility = %d, %v", idx, bz)
	}
	// The returned bucketization must beat-or-tie every other candidate.
	for _, n := range minimal {
		other, err := p.Bucketize(n)
		if err != nil {
			t.Fatal(err)
		}
		if (utility.Discernibility{}).Score(other) > (utility.Discernibility{}).Score(bz) {
			t.Errorf("candidate %v beats the chosen one", n)
		}
	}
	if _, _, err := p.BestByUtility(nil, utility.Discernibility{}); err == nil {
		t.Error("empty candidates accepted")
	}
}

func sameNodes(a, b []lattice.Node) bool {
	if len(a) != len(b) {
		return false
	}
	set := map[string]bool{}
	for _, n := range a {
		set[n.Key()] = true
	}
	for _, n := range b {
		if !set[n.Key()] {
			return false
		}
	}
	return true
}
