package adult

import (
	"fmt"
	"math/rand"
	"strconv"

	"ckprivacy/internal/table"
)

// Config parameterizes synthetic generation.
type Config struct {
	// N is the number of tuples; 0 means DefaultN (45,222).
	N int
	// Seed drives the deterministic pseudo-random sampler.
	Seed int64
}

// Generate produces a synthetic Adult table. The same Config always yields
// the same table.
//
// Sampling model (all weights approximate the published Adult marginals):
//
//	Age     ~ piecewise-linear distribution peaking in the mid-30s
//	Sex     ~ Bernoulli(0.675 male)
//	Race    ~ fixed marginal
//	Marital ~ conditional on age bracket
//	Occ     ~ base marginal, reweighted by sex and age bracket
//
// The age and sex reweighting of Occupation is what gives coarse
// generalizations skewed per-bucket occupation histograms, the property
// Figures 5 and 6 exercise.
func Generate(cfg Config) (*table.Table, error) {
	n := cfg.N
	if n == 0 {
		n = DefaultN
	}
	if n < 0 {
		return nil, fmt.Errorf("adult: negative tuple count %d", n)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := table.New(Schema())
	t.Rows = make([]table.Row, 0, n)

	ageSampler := newWeighted(ageWeights())
	raceSampler := newWeighted([]float64{0.855, 0.096, 0.031, 0.010, 0.008})

	for i := 0; i < n; i++ {
		age := MinAge + ageSampler.sample(rng)
		sex := "Male"
		if rng.Float64() >= 0.675 {
			sex = "Female"
		}
		race := Races[raceSampler.sample(rng)]
		marital := sampleMarital(rng, age)
		occ := sampleOccupation(rng, age, sex)
		row := table.Row{strconv.Itoa(age), marital, race, sex, occ}
		if err := t.Append(row); err != nil {
			return nil, fmt.Errorf("adult: generated invalid row: %w", err)
		}
	}
	return t, nil
}

// MustGenerate is Generate for contexts (benchmarks, examples) where the
// fixed configuration is known to be valid.
func MustGenerate(cfg Config) *table.Table {
	t, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// ageWeights returns unnormalized weights for ages MinAge..MaxAge: a ramp up
// to the mid-30s followed by a slow decay, mimicking the Adult age profile.
func ageWeights() []float64 {
	w := make([]float64, MaxAge-MinAge+1)
	for i := range w {
		age := MinAge + i
		switch {
		case age < 23:
			w[i] = 0.4 + 0.15*float64(age-MinAge)
		case age <= 37:
			w[i] = 1.3 + 0.05*float64(age-23)
		case age <= 60:
			w[i] = 2.0 - 0.06*float64(age-37)
		default:
			w[i] = 0.62 - 0.02*float64(age-60)
		}
		if w[i] < 0.02 {
			w[i] = 0.02
		}
	}
	return w
}

// maritalByBracket holds P(marital | age bracket); brackets are
// [17,25), [25,35), [35,50), [50,65), [65, ...]. Column order follows
// MaritalStatuses.
var maritalByBracket = [][]float64{
	{0.06, 0.86, 0.02, 0.02, 0.00, 0.02, 0.02},
	{0.42, 0.42, 0.08, 0.04, 0.01, 0.02, 0.01},
	{0.58, 0.16, 0.17, 0.04, 0.02, 0.03, 0.00},
	{0.62, 0.06, 0.19, 0.03, 0.07, 0.03, 0.00},
	{0.55, 0.04, 0.12, 0.02, 0.25, 0.02, 0.00},
}

func ageBracket(age int) int {
	switch {
	case age < 25:
		return 0
	case age < 35:
		return 1
	case age < 50:
		return 2
	case age < 65:
		return 3
	default:
		return 4
	}
}

func sampleMarital(rng *rand.Rand, age int) string {
	w := maritalByBracket[ageBracket(age)]
	return MaritalStatuses[newWeighted(w).sample(rng)]
}

// occBase approximates the Adult occupation marginal (fractions of the
// cleaned dataset). Column order follows Occupations.
var occBase = []float64{
	0.136, 0.134, 0.133, 0.124, 0.120, 0.108,
	0.066, 0.052, 0.045, 0.033, 0.031, 0.021, 0.005, 0.001,
}

// occSexMult reweights occupations by sex (Male, Female), reflecting the
// strong occupational sex skew in the real data.
var occSexMult = map[string][]float64{
	"Male": {
		1.00, 1.45, 1.10, 0.45, 1.00, 0.70,
		1.20, 1.40, 1.30, 1.35, 0.95, 1.25, 0.10, 1.80,
	},
	"Female": {
		1.00, 0.10, 0.80, 2.10, 1.00, 1.60,
		0.60, 0.18, 0.40, 0.28, 1.10, 0.48, 2.80, 0.20,
	},
}

// occAgeMult reweights occupations by age bracket (same brackets as
// maritalByBracket). Young workers skew strongly toward service, sales and
// manual occupations; this produces the skewed low-entropy buckets that the
// paper's Figure 5 table (Age in width-20 intervals) exhibits.
var occAgeMult = [][]float64{
	{0.25, 0.60, 0.20, 0.90, 1.80, 3.40, 0.90, 0.60, 2.20, 1.10, 0.60, 0.50, 1.40, 1.00},
	{1.00, 1.10, 0.85, 1.00, 1.05, 1.00, 1.05, 0.95, 1.10, 0.95, 1.30, 1.10, 0.70, 1.40},
	{1.20, 1.05, 1.15, 1.00, 0.90, 0.80, 1.00, 1.10, 0.80, 0.95, 0.95, 1.10, 0.80, 0.60},
	{1.10, 0.95, 1.15, 1.00, 0.90, 0.90, 1.00, 1.10, 0.70, 1.10, 0.80, 0.95, 1.20, 0.20},
	{0.95, 0.70, 1.05, 0.90, 1.10, 1.20, 0.80, 0.80, 0.60, 2.00, 0.50, 0.60, 2.60, 0.05},
}

func sampleOccupation(rng *rand.Rand, age int, sex string) string {
	sexMult := occSexMult[sex]
	ageMult := occAgeMult[ageBracket(age)]
	w := make([]float64, len(occBase))
	for i := range w {
		w[i] = occBase[i] * sexMult[i] * ageMult[i]
	}
	return Occupations[newWeighted(w).sample(rng)]
}

// weighted samples an index proportionally to fixed non-negative weights.
type weighted struct {
	cum   []float64
	total float64
}

func newWeighted(w []float64) *weighted {
	cum := make([]float64, len(w))
	total := 0.0
	for i, x := range w {
		if x < 0 {
			panic(fmt.Sprintf("adult: negative weight %g at %d", x, i))
		}
		total += x
		cum[i] = total
	}
	if total <= 0 {
		panic("adult: all weights zero")
	}
	return &weighted{cum: cum, total: total}
}

func (w *weighted) sample(rng *rand.Rand) int {
	x := rng.Float64() * w.total
	// Linear scan: weight vectors here have at most 74 entries and the
	// sampler is not on a hot path.
	for i, c := range w.cum {
		if x < c {
			return i
		}
	}
	return len(w.cum) - 1
}
