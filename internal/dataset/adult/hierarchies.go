package adult

import "ckprivacy/internal/hierarchy"

// Hierarchies returns the generalization hierarchies the paper describes
// (§4): Age has six levels (unsuppressed; intervals of width 5, 10, 20, 40;
// suppressed), MaritalStatus has three levels, and Race and Sex each have
// two (identity and suppression). The resulting full-domain generalization
// lattice has 6*3*2*2 = 72 nodes.
func Hierarchies() hierarchy.Set {
	return hierarchy.Set{
		AttrAge:     hierarchy.MustInterval(AttrAge, []int{1, 5, 10, 20, 40, 0}),
		AttrMarital: maritalHierarchy(),
		AttrRace:    hierarchy.NewSuppression(AttrRace, Races),
		AttrSex:     hierarchy.NewSuppression(AttrSex, Sexes),
	}
}

// maritalHierarchy groups the seven statuses into Married / Once-married /
// Never-married at level 1 and suppresses at level 2.
func maritalHierarchy() hierarchy.Hierarchy {
	level1 := map[string]string{
		"Married-civ-spouse":    "Married",
		"Married-spouse-absent": "Married",
		"Married-AF-spouse":     "Married",
		"Divorced":              "Once-married",
		"Separated":             "Once-married",
		"Widowed":               "Once-married",
		"Never-married":         "Never-married",
	}
	level2 := make(map[string]string, len(MaritalStatuses))
	for _, v := range MaritalStatuses {
		level2[v] = hierarchy.Suppressed
	}
	return hierarchy.MustLevelled(AttrMarital, MaritalStatuses,
		[]map[string]string{level1, level2})
}

// QuasiIdentifiers lists the QI attribute names in canonical lattice order.
func QuasiIdentifiers() []string {
	return []string{AttrAge, AttrMarital, AttrRace, AttrSex}
}
