package adult

import (
	"math"
	"testing"

	"ckprivacy/internal/hierarchy"
	"ckprivacy/internal/table"
)

func TestSchemaShape(t *testing.T) {
	s := Schema()
	if len(s.Attrs) != 5 {
		t.Fatalf("schema has %d attributes", len(s.Attrs))
	}
	if s.Sensitive().Name != AttrOccupation {
		t.Errorf("sensitive = %q", s.Sensitive().Name)
	}
	if got := len(s.Sensitive().Domain); got != 14 {
		t.Errorf("occupation domain size = %d, want 14 (paper: fourteen values)", got)
	}
	if len(MaritalStatuses) != 7 || len(Races) != 5 || len(Sexes) != 2 {
		t.Error("domain sizes do not match the Adult dataset")
	}
}

func TestGenerateDefaults(t *testing.T) {
	tab, err := Generate(Config{Seed: 1, N: DefaultN})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 45222 {
		t.Fatalf("Len = %d, want 45222 (paper's cleaned size)", tab.Len())
	}
	// Every row already passed schema validation in Append; spot-check the
	// age bounds anyway.
	for i := 0; i < tab.Len(); i += 997 {
		age, err := tab.Int(i, 0)
		if err != nil || age < MinAge || age > MaxAge {
			t.Fatalf("row %d: age %d, err %v", i, age, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(Config{Seed: 7, N: 500})
	b := MustGenerate(Config{Seed: 7, N: 500})
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatalf("row %d differs: %v vs %v", i, a.Rows[i], b.Rows[i])
			}
		}
	}
	c := MustGenerate(Config{Seed: 8, N: 500})
	same := true
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != c.Rows[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical tables")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{N: -1}); err == nil {
		t.Error("negative N accepted")
	}
	if tab := MustGenerate(Config{}); tab.Len() != DefaultN {
		t.Errorf("zero N gave %d rows, want DefaultN", tab.Len())
	}
}

func TestMarginalShapes(t *testing.T) {
	tab := MustGenerate(Config{Seed: 3, N: 20000})
	n := float64(tab.Len())

	sexCounts := tab.Counts(3)
	maleFrac := float64(sexCounts["Male"]) / n
	if maleFrac < 0.62 || maleFrac > 0.73 {
		t.Errorf("male fraction = %.3f, want ~0.675", maleFrac)
	}

	raceCounts := tab.Counts(2)
	whiteFrac := float64(raceCounts["White"]) / n
	if whiteFrac < 0.80 || whiteFrac > 0.90 {
		t.Errorf("white fraction = %.3f, want ~0.855", whiteFrac)
	}

	// Occupation: all fourteen values must occur, and the distribution
	// must be visibly skewed (the paper's experiments depend on skew).
	occCounts := tab.SensitiveCounts()
	if len(occCounts) != 14 {
		t.Fatalf("only %d occupations appear", len(occCounts))
	}
	top := tab.SortedCounts(4)
	if top[0].Count < 8*top[len(top)-1].Count {
		t.Errorf("occupation skew too small: top %v bottom %v", top[0], top[len(top)-1])
	}
}

func TestYoungBracketIsSkewed(t *testing.T) {
	// The width-20 Age generalization in Figure 5 relies on the youngest
	// bucket having a dominant occupation. Verify the conditional skew.
	tab := MustGenerate(Config{Seed: 3, N: 30000})
	young := tab.Filter(func(r table.Row) bool { return r[0] < "25" && len(r[0]) == 2 })
	if young.Len() < 200 {
		t.Fatalf("too few young tuples: %d", young.Len())
	}
	counts := young.SortedCounts(4)
	frac := float64(counts[0].Count) / float64(young.Len())
	if frac < 0.18 {
		t.Errorf("young top-occupation fraction = %.3f, want >= 0.18", frac)
	}
}

func TestMaritalConditional(t *testing.T) {
	tab := MustGenerate(Config{Seed: 5, N: 30000})
	youngNever, youngAll := 0, 0
	for i := 0; i < tab.Len(); i++ {
		age, _ := tab.Int(i, 0)
		if age < 25 {
			youngAll++
			if tab.Value(i, 1) == "Never-married" {
				youngNever++
			}
		}
	}
	if youngAll == 0 {
		t.Fatal("no young tuples")
	}
	frac := float64(youngNever) / float64(youngAll)
	if frac < 0.7 {
		t.Errorf("young never-married fraction = %.3f, want >= 0.7", frac)
	}
}

func TestHierarchiesShape(t *testing.T) {
	hs := Hierarchies()
	dims, err := hs.Dims(QuasiIdentifiers())
	if err != nil {
		t.Fatal(err)
	}
	want := []int{6, 3, 2, 2}
	nodes := 1
	for i, d := range dims {
		if d != want[i] {
			t.Errorf("dims[%d] = %d, want %d", i, d, want[i])
		}
		nodes *= d
	}
	if nodes != 72 {
		t.Errorf("lattice has %d nodes, want 72", nodes)
	}
}

func TestHierarchiesCoverDomains(t *testing.T) {
	hs := Hierarchies()
	for _, m := range MaritalStatuses {
		for lvl := 0; lvl < 3; lvl++ {
			if _, err := hs[AttrMarital].Generalize(m, lvl); err != nil {
				t.Errorf("marital %q level %d: %v", m, lvl, err)
			}
		}
	}
	for age := MinAge; age <= MaxAge; age++ {
		for lvl := 0; lvl < 6; lvl++ {
			if _, err := hs[AttrAge].Generalize(itoa(age), lvl); err != nil {
				t.Errorf("age %d level %d: %v", age, lvl, err)
			}
		}
	}
	got, err := hs[AttrAge].Generalize("23", 3)
	if err != nil || got != "20-39" {
		t.Errorf("age 23 at level 3 = %q, %v; want 20-39", got, err)
	}
	if g, _ := hs[AttrSex].Generalize("Male", 1); g != hierarchy.Suppressed {
		t.Errorf("sex level 1 = %q", g)
	}
}

func TestWeightedSampler(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-weight sampler did not panic")
		}
	}()
	newWeighted([]float64{0, 0})
}

func TestWeightedSamplerNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative-weight sampler did not panic")
		}
	}()
	newWeighted([]float64{1, -1})
}

func TestAgeBracketBoundaries(t *testing.T) {
	cases := map[int]int{17: 0, 24: 0, 25: 1, 34: 1, 35: 2, 49: 2, 50: 3, 64: 3, 65: 4, 90: 4}
	for age, want := range cases {
		if got := ageBracket(age); got != want {
			t.Errorf("ageBracket(%d) = %d, want %d", age, got, want)
		}
	}
}

func TestDistributionsSumSensibly(t *testing.T) {
	for b, row := range maritalByBracket {
		sum := 0.0
		for _, w := range row {
			sum += w
		}
		if math.Abs(sum-1.0) > 0.02 {
			t.Errorf("marital bracket %d sums to %.3f", b, sum)
		}
	}
	sum := 0.0
	for _, w := range occBase {
		sum += w
	}
	if math.Abs(sum-1.0) > 0.02 {
		t.Errorf("occupation base sums to %.3f", sum)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
