// Package adult provides a deterministic synthetic stand-in for the UCI
// Adult ("Census Income") dataset projection used in the paper's
// experiments: Age, MaritalStatus, Race, Sex and the sensitive attribute
// Occupation (14 values), 45,222 tuples after removing missing values.
//
// The real file cannot be fetched in an offline build, so Generate samples
// records whose attribute domains match the real dataset exactly and whose
// marginal and conditional frequencies approximate the published ones (see
// DESIGN.md §5 for the substitution argument). Generation is fully
// deterministic for a given Config.
package adult

import (
	"ckprivacy/internal/table"
)

// Attribute names, matching the paper's projection of the Adult dataset.
const (
	AttrAge        = "Age"
	AttrMarital    = "MaritalStatus"
	AttrRace       = "Race"
	AttrSex        = "Sex"
	AttrOccupation = "Occupation"
)

// DefaultN is the tuple count the paper reports after cleaning.
const DefaultN = 45222

// MinAge and MaxAge bound the Age attribute, as in the real dataset.
const (
	MinAge = 17
	MaxAge = 90
)

// MaritalStatuses are the seven marital-status values of the Adult dataset.
var MaritalStatuses = []string{
	"Married-civ-spouse",
	"Never-married",
	"Divorced",
	"Separated",
	"Widowed",
	"Married-spouse-absent",
	"Married-AF-spouse",
}

// Races are the five race values of the Adult dataset.
var Races = []string{
	"White",
	"Black",
	"Asian-Pac-Islander",
	"Amer-Indian-Eskimo",
	"Other",
}

// Sexes are the two sex values of the Adult dataset.
var Sexes = []string{"Male", "Female"}

// Occupations are the fourteen occupation values of the Adult dataset; the
// paper uses Occupation as the sensitive attribute.
var Occupations = []string{
	"Prof-specialty",
	"Craft-repair",
	"Exec-managerial",
	"Adm-clerical",
	"Sales",
	"Other-service",
	"Machine-op-inspct",
	"Transport-moving",
	"Handlers-cleaners",
	"Farming-fishing",
	"Tech-support",
	"Protective-serv",
	"Priv-house-serv",
	"Armed-Forces",
}

// Schema returns the five-attribute schema with Occupation sensitive.
func Schema() *table.Schema {
	s, err := table.NewSchema([]table.Attribute{
		{Name: AttrAge, Kind: table.Numeric, Min: MinAge, Max: MaxAge},
		{Name: AttrMarital, Kind: table.Categorical, Domain: MaritalStatuses},
		{Name: AttrRace, Kind: table.Categorical, Domain: Races},
		{Name: AttrSex, Kind: table.Categorical, Domain: Sexes},
		{Name: AttrOccupation, Kind: table.Categorical, Domain: Occupations},
	}, AttrOccupation)
	if err != nil {
		// The schema is a compile-time constant; failure is a programming
		// error, not a runtime condition.
		panic(err)
	}
	return s
}
