package store

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// sampleSnapshot builds a small but fully featured snapshot: two columns,
// a source descriptor, and one retained release.
func sampleSnapshot() *SnapshotData {
	return &SnapshotData{
		Version: 3,
		Rows:    4,
		Attrs:   []string{"Zip", "Sex"},
		Source:  []byte(`{"kind":"hospital"}`),
		Dicts: [][]string{
			{"13053", "14853"},
			{"M", "F"},
		},
		Cols: [][]uint32{
			{0, 0, 1, 1},
			{0, 1, 1, 0},
		},
		Releases: &ReleaseState{
			Next:    2,
			Evicted: 1,
			Releases: []ReleaseRecord{{
				Index:           1,
				Version:         2,
				Rows:            3,
				CreatedUnixNano: 12345,
				Levels:          map[string]int{"Zip": 1},
				Keys:            []string{"130**|*", "148**|*"},
				Groups:          [][]int{{0, 1}, {2}},
			}},
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snapshot-3.ckps")
	want := sampleSnapshot()
	if err := writeSnapshotFile(path, want); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := readSnapshotFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// No stray temp file survives a clean write.
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

func TestSnapshotNoReleases(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.ckps")
	want := sampleSnapshot()
	want.Releases = nil
	if err := writeSnapshotFile(path, want); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := readSnapshotFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Releases != nil {
		t.Fatalf("expected nil releases, got %+v", got.Releases)
	}
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal-3.ckpw")
	w, err := createWAL(path, 3, true)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	ar := &AppendRecord{Version: 4, Rows: [][]string{{"14850", "M"}, {"14851", "F"}}}
	rr := &ReleaseRecord{
		Index: 0, Version: 4, Rows: 6, CreatedUnixNano: 99,
		Levels: map[string]int{"Zip": 2},
		Keys:   []string{"1****|*"}, Groups: [][]int{{0, 1, 2, 3, 4, 5}},
	}
	if err := w.append(recAppend, encodeAppendRecord(ar)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := w.append(recRelease, appendReleaseRecord(nil, rr)); err != nil {
		t.Fatalf("release: %v", err)
	}
	if err := w.close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	base, recs, good, err := readWAL(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if base != 3 {
		t.Fatalf("base = %d, want 3", base)
	}
	fi, _ := os.Stat(path)
	if good != fi.Size() {
		t.Fatalf("good offset %d != file size %d", good, fi.Size())
	}
	if len(recs) != 2 || recs[0].Append == nil || recs[1].Release == nil {
		t.Fatalf("unexpected records: %+v", recs)
	}
	if !reflect.DeepEqual(recs[0].Append, ar) {
		t.Fatalf("append mismatch: got %+v want %+v", recs[0].Append, ar)
	}
	if !reflect.DeepEqual(recs[1].Release, rr) {
		t.Fatalf("release mismatch: got %+v want %+v", recs[1].Release, rr)
	}
}

// TestWALTornTailEveryPrefix exhaustively truncates a WAL at every byte
// length from the header to the full file and asserts replay never errors
// and always yields a prefix of the committed records — the torn-tail
// property the crash model relies on.
func TestWALTornTailEveryPrefix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal-0.ckpw")
	w, err := createWAL(path, 0, false)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	var bounds []int64 // good offsets after each commit
	bounds = append(bounds, w.size)
	for i := 0; i < 5; i++ {
		ar := &AppendRecord{Version: int64(i + 1), Rows: [][]string{{"v", "w"}}}
		if err := w.append(recAppend, encodeAppendRecord(ar)); err != nil {
			t.Fatalf("append: %v", err)
		}
		bounds = append(bounds, w.size)
	}
	w.close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := int64(walHeaderLen); cut <= int64(len(full)); cut++ {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, recs, good, err := readWAL(path)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		// The recovered prefix must end exactly at the last commit
		// boundary at or below the cut.
		wantN := 0
		for i, b := range bounds {
			if b <= cut {
				wantN = i
			}
		}
		if len(recs) != wantN {
			t.Fatalf("cut=%d: got %d records, want %d", cut, len(recs), wantN)
		}
		if good != bounds[wantN] {
			t.Fatalf("cut=%d: good=%d, want %d", cut, good, bounds[wantN])
		}
		for i, r := range recs {
			if r.Append == nil || r.Append.Version != int64(i+1) {
				t.Fatalf("cut=%d: record %d = %+v", cut, i, r)
			}
		}
	}
}

// TestCorruptionTable drives the typed-error contract: every way a file
// can be damaged maps to ErrCorrupt, and a newer format version maps to
// ErrFormatVersion.
func TestCorruptionTable(t *testing.T) {
	mkSnap := func(t *testing.T, dir string) string {
		path := filepath.Join(dir, "snapshot-3.ckps")
		if err := writeSnapshotFile(path, sampleSnapshot()); err != nil {
			t.Fatal(err)
		}
		return path
	}
	mkWAL := func(t *testing.T, dir string) string {
		path := filepath.Join(dir, "wal-3.ckpw")
		w, err := createWAL(path, 3, false)
		if err != nil {
			t.Fatal(err)
		}
		ar := &AppendRecord{Version: 4, Rows: [][]string{{"a", "b"}}}
		if err := w.append(recAppend, encodeAppendRecord(ar)); err != nil {
			t.Fatal(err)
		}
		w.close()
		return path
	}
	readSnap := func(path string) error { _, err := readSnapshotFile(path); return err }
	readWal := func(path string) error { _, _, _, err := readWAL(path); return err }

	cases := []struct {
		name    string
		make    func(*testing.T, string) string
		mutate  func(*testing.T, string)
		read    func(string) error
		wantErr error
	}{
		{
			name: "snapshot flipped payload byte",
			make: mkSnap,
			mutate: func(t *testing.T, path string) {
				flipByte(t, path, 20) // inside the meta section payload
			},
			read:    readSnap,
			wantErr: ErrCorrupt,
		},
		{
			name: "snapshot flipped CRC byte",
			make: mkSnap,
			mutate: func(t *testing.T, path string) {
				data, _ := os.ReadFile(path)
				flipByte(t, path, int64(len(data)-1)) // last section's CRC
			},
			read:    readSnap,
			wantErr: ErrCorrupt,
		},
		{
			name: "snapshot truncated mid-section",
			make: mkSnap,
			mutate: func(t *testing.T, path string) {
				data, _ := os.ReadFile(path)
				os.WriteFile(path, data[:len(data)-3], 0o644)
			},
			read:    readSnap,
			wantErr: ErrCorrupt,
		},
		{
			name: "snapshot bad magic",
			make: mkSnap,
			mutate: func(t *testing.T, path string) {
				flipByte(t, path, 0)
			},
			read:    readSnap,
			wantErr: ErrCorrupt,
		},
		{
			name: "snapshot newer format version",
			make: mkSnap,
			mutate: func(t *testing.T, path string) {
				setUint32(t, path, 4, FormatVersion+1)
			},
			read:    readSnap,
			wantErr: ErrFormatVersion,
		},
		{
			name: "wal flipped byte in complete record",
			make: mkWAL,
			mutate: func(t *testing.T, path string) {
				flipByte(t, path, walHeaderLen+6) // inside the record payload
			},
			read:    readWal,
			wantErr: ErrCorrupt,
		},
		{
			name: "wal bad magic",
			make: mkWAL,
			mutate: func(t *testing.T, path string) {
				flipByte(t, path, 1)
			},
			read:    readWal,
			wantErr: ErrCorrupt,
		},
		{
			name: "wal newer format version",
			make: mkWAL,
			mutate: func(t *testing.T, path string) {
				setUint32(t, path, 4, FormatVersion+1)
			},
			read:    readWal,
			wantErr: ErrFormatVersion,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := tc.make(t, dir)
			tc.mutate(t, path)
			err := tc.read(path)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("got %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[off] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func setUint32(t *testing.T, path string, off int64, v uint32) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(data[off:], v)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestManagerCreateLoadCompact(t *testing.T) {
	root := t.TempDir()
	m, err := Open(Options{Dir: root, Fsync: true, CompactBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	sd := sampleSnapshot()
	dl, err := m.Create("hospital", sd)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	ar := &AppendRecord{Version: 4, Rows: [][]string{{"14850", "M"}}}
	if err := dl.LogAppend(ar); err != nil {
		t.Fatalf("log append: %v", err)
	}
	if got := dl.Records(); got != 1 {
		t.Fatalf("records = %d, want 1", got)
	}
	if !dl.ShouldCompact() {
		t.Fatal("tiny threshold should demand compaction")
	}
	if n, total := dl.FsyncStats(); n == 0 || total <= 0 {
		t.Fatalf("fsync stats not recorded: n=%d total=%v", n, total)
	}
	dl.Close()

	names, err := m.Datasets()
	if err != nil || len(names) != 1 || names[0] != "hospital" {
		t.Fatalf("datasets = %v, %v", names, err)
	}

	got, recs, dl2, err := m.Load("hospital")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !reflect.DeepEqual(got, sd) {
		t.Fatalf("loaded snapshot mismatch")
	}
	if len(recs) != 1 || !reflect.DeepEqual(recs[0].Append, ar) {
		t.Fatalf("loaded records mismatch: %+v", recs)
	}

	// Compact to version 4: new generation written, old pruned, WAL empty.
	sd4 := sampleSnapshot()
	sd4.Version = 4
	sd4.Rows = 5
	sd4.Dicts[0] = append(sd4.Dicts[0], "14850")
	sd4.Cols[0] = append(sd4.Cols[0], 2)
	sd4.Cols[1] = append(sd4.Cols[1], 0)
	if err := dl2.Compact(sd4); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if dl2.LastCompaction().IsZero() {
		t.Fatal("LastCompaction not set")
	}
	if got := dl2.Records(); got != 0 {
		t.Fatalf("records after compact = %d, want 0", got)
	}
	entries, _ := os.ReadDir(filepath.Join(root, "hospital"))
	var files []string
	for _, e := range entries {
		files = append(files, e.Name())
	}
	want := []string{"snapshot-4.ckps", "wal-4.ckpw"}
	if !reflect.DeepEqual(files, want) {
		t.Fatalf("files after compact = %v, want %v", files, want)
	}
	dl2.Close()

	got4, recs4, dl3, err := m.Load("hospital")
	if err != nil {
		t.Fatalf("load after compact: %v", err)
	}
	defer dl3.Close()
	if got4.Version != 4 || len(recs4) != 0 {
		t.Fatalf("after compact: version=%d records=%d", got4.Version, len(recs4))
	}
}

func TestManagerLoadCrashStates(t *testing.T) {
	t.Run("wal without snapshot is corrupt", func(t *testing.T) {
		root := t.TempDir()
		m, _ := Open(Options{Dir: root})
		dir := filepath.Join(root, "ds")
		os.MkdirAll(dir, 0o755)
		w, err := createWAL(filepath.Join(dir, "wal-1.ckpw"), 1, false)
		if err != nil {
			t.Fatal(err)
		}
		w.close()
		_, _, _, err = m.Load("ds")
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("wal torn mid-header is recreated", func(t *testing.T) {
		// A kill during createWAL leaves a WAL shorter than its own header.
		// No record can have committed to it, so Load must start a fresh
		// one instead of refusing to boot.
		root := t.TempDir()
		m, _ := Open(Options{Dir: root})
		dir := filepath.Join(root, "ds")
		os.MkdirAll(dir, 0o755)
		sd := sampleSnapshot()
		if err := writeSnapshotFile(filepath.Join(dir, snapName(sd.Version)), sd); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, walName(sd.Version)), []byte("CKPW\x01"), 0o644); err != nil {
			t.Fatal(err)
		}
		got, recs, dl, err := m.Load("ds")
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		defer dl.Close()
		if got.Version != sd.Version || len(recs) != 0 {
			t.Fatalf("version=%d records=%d", got.Version, len(recs))
		}
		if err := dl.LogAppend(&AppendRecord{Version: sd.Version + 1, Rows: [][]string{{"a"}}}); err != nil {
			t.Fatalf("append to recreated wal: %v", err)
		}
	})
	t.Run("snapshot without wal gets a fresh one", func(t *testing.T) {
		root := t.TempDir()
		m, _ := Open(Options{Dir: root})
		dir := filepath.Join(root, "ds")
		os.MkdirAll(dir, 0o755)
		sd := sampleSnapshot()
		if err := writeSnapshotFile(filepath.Join(dir, snapName(sd.Version)), sd); err != nil {
			t.Fatal(err)
		}
		got, recs, dl, err := m.Load("ds")
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		defer dl.Close()
		if got.Version != sd.Version || len(recs) != 0 {
			t.Fatalf("version=%d records=%d", got.Version, len(recs))
		}
		if _, err := os.Stat(filepath.Join(dir, walName(sd.Version))); err != nil {
			t.Fatalf("fresh wal missing: %v", err)
		}
	})
	t.Run("strays and old generations pruned", func(t *testing.T) {
		root := t.TempDir()
		m, _ := Open(Options{Dir: root})
		dir := filepath.Join(root, "ds")
		os.MkdirAll(dir, 0o755)
		old := sampleSnapshot()
		old.Version = 2
		if err := writeSnapshotFile(filepath.Join(dir, snapName(2)), old); err != nil {
			t.Fatal(err)
		}
		cur := sampleSnapshot()
		if err := writeSnapshotFile(filepath.Join(dir, snapName(cur.Version)), cur); err != nil {
			t.Fatal(err)
		}
		os.WriteFile(filepath.Join(dir, "snapshot-9.ckps.tmp"), []byte("junk"), 0o644)
		w, _ := createWAL(filepath.Join(dir, walName(2)), 2, false)
		w.close()
		_, _, dl, err := m.Load("ds")
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		defer dl.Close()
		entries, _ := os.ReadDir(dir)
		var files []string
		for _, e := range entries {
			files = append(files, e.Name())
		}
		want := []string{snapName(3), walName(3)}
		if !reflect.DeepEqual(files, want) {
			t.Fatalf("files = %v, want %v", files, want)
		}
	})
	t.Run("missing dataset", func(t *testing.T) {
		root := t.TempDir()
		m, _ := Open(Options{Dir: root})
		_, _, _, err := m.Load("nope")
		if !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("got %v, want ErrNotExist", err)
		}
	})
}

// TestLogAfterCloseHealsByCompact models the persist-failure recovery
// path: writes to a closed log fail with os.ErrClosed, and Compact
// reopens fresh handles so logging works again.
func TestLogAfterCloseHealsByCompact(t *testing.T) {
	root := t.TempDir()
	m, _ := Open(Options{Dir: root})
	dl, err := m.Create("ds", sampleSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	dl.Close()
	err = dl.LogAppend(&AppendRecord{Version: 4, Rows: [][]string{{"a", "b"}}})
	if !errors.Is(err, os.ErrClosed) {
		t.Fatalf("got %v, want os.ErrClosed", err)
	}
	sd := sampleSnapshot()
	sd.Version = 5
	if err := dl.Compact(sd); err != nil {
		t.Fatalf("compact after close: %v", err)
	}
	if err := dl.LogAppend(&AppendRecord{Version: 6, Rows: [][]string{{"a", "b"}}}); err != nil {
		t.Fatalf("log after heal: %v", err)
	}
	dl.Close()
	got, recs, dl2, err := m.Load("ds")
	if err != nil {
		t.Fatal(err)
	}
	defer dl2.Close()
	if got.Version != 5 || len(recs) != 1 || recs[0].Append.Version != 6 {
		t.Fatalf("after heal: version=%d recs=%+v", got.Version, recs)
	}
}
