package store

import (
	"fmt"
	"os"
	"path/filepath"
)

// This file is the store's replication surface: the committed-prefix
// cursor API a leader serves WAL bytes from, the incremental record
// scanner a follower decodes the shipped stream with, and raw snapshot
// transfer. The invariant everything here leans on is that walWriter.size
// only advances after a whole framed record is on disk — so any read
// capped at that size ("the committed prefix") can never observe a torn
// or in-flight tail, even one the writer later truncates and overwrites.

// WALHeaderLen is the size in bytes of the fixed WAL file header. A
// shipping cursor is either 0 (the stream starts with the header) or at
// least this.
const WALHeaderLen = walHeaderLen

// RecordScanner incrementally decodes the CRC-framed WAL byte stream a
// replication client fetches. Feed it raw bytes as they arrive and drain
// complete records with Next; an incomplete frame at the end of the
// buffered bytes simply waits for more input. A scanner positioned at
// offset 0 first consumes and validates the WAL file header against the
// expected base version. Not safe for concurrent use.
type RecordScanner struct {
	base      int64
	off       int64
	buf       []byte
	expectHdr bool
}

// NewRecordScanner starts a scanner for a WAL based at base whose stream
// begins at absolute file offset from. from must be 0 (header included)
// or past the header.
func NewRecordScanner(base, from int64) (*RecordScanner, error) {
	if from != 0 && from < walHeaderLen {
		return nil, fmt.Errorf("store: scanner offset %d is inside the wal header", from)
	}
	if from < 0 {
		return nil, fmt.Errorf("store: negative scanner offset %d", from)
	}
	return &RecordScanner{base: base, off: from, expectHdr: from == 0}, nil
}

// Feed appends raw stream bytes for Next to decode.
func (s *RecordScanner) Feed(p []byte) { s.buf = append(s.buf, p...) }

// Next decodes the next complete record. ok is false when the buffered
// bytes end mid-frame — Feed more and retry. A complete frame that fails
// its CRC or decode is ErrCorrupt; a header with the wrong base or format
// is ErrCorrupt / ErrFormatVersion. After an error the scanner is stuck:
// the caller re-fetches from its last good offset with a fresh scanner.
func (s *RecordScanner) Next() (rec Record, ok bool, err error) {
	if s.expectHdr {
		if len(s.buf) < walHeaderLen {
			return Record{}, false, nil
		}
		base, err := parseWALHeader(s.buf)
		if err != nil {
			return Record{}, false, err
		}
		if base != s.base {
			return Record{}, false, corruptf("wal based at %d, expected %d", base, s.base)
		}
		s.buf = s.buf[walHeaderLen:]
		s.off = walHeaderLen
		s.expectHdr = false
	}
	rec, n, err := scanRecord(s.buf, s.off)
	if err != nil {
		return Record{}, false, err
	}
	if n == 0 {
		return Record{}, false, nil
	}
	s.buf = s.buf[n:]
	s.off += n
	return rec, true, nil
}

// Offset reports the absolute WAL byte offset just past the last fully
// consumed header or record — the resume cursor.
func (s *RecordScanner) Offset() int64 { return s.off }

// Buffered reports how many fed bytes are waiting (a partial frame).
func (s *RecordScanner) Buffered() int { return len(s.buf) }

// BaseVersion reports the snapshot version the current WAL extends.
func (dl *DatasetLog) BaseVersion() int64 {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	return dl.snapVersion
}

// Committed reports the shipping-visible state of the current WAL
// generation: its base snapshot version, the committed byte size (whole,
// CRC-valid records only — a failed or in-flight write past it is
// invisible by construction), and the committed record count. size is 0
// after Close.
func (dl *DatasetLog) Committed() (base, size int64, records int) {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	if dl.w == nil {
		return dl.snapVersion, 0, dl.records
	}
	return dl.snapVersion, dl.w.size, dl.records
}

// ReadCommitted returns up to max bytes of the current WAL generation
// starting at byte offset from, never reading past the committed prefix —
// a concurrent torn or failed write beyond it can never leak into the
// result, and the lock excludes a concurrent Compact swapping the
// generation mid-read. from == 0 includes the file header. committed
// reports the prefix size the read was capped at.
func (dl *DatasetLog) ReadCommitted(from, max int64) (data []byte, committed int64, err error) {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	if dl.w == nil {
		return nil, 0, os.ErrClosed
	}
	committed = dl.w.size
	if from < 0 || from > committed {
		return nil, committed, fmt.Errorf("store: read offset %d outside committed prefix [0,%d]", from, committed)
	}
	n := committed - from
	if max > 0 && n > max {
		n = max
	}
	if n == 0 {
		return nil, committed, nil
	}
	f, err := os.Open(filepath.Join(dl.dir, walName(dl.snapVersion)))
	if err != nil {
		return nil, committed, err
	}
	defer f.Close()
	data = make([]byte, n)
	if _, err := f.ReadAt(data, from); err != nil {
		return nil, committed, err
	}
	return data, committed, nil
}

// SnapshotBytes returns the raw bytes of the current snapshot file and
// its version, read under the lock so a concurrent Compact cannot swap
// the generation mid-read. The bytes are the exact on-disk encoding — a
// follower that writes them verbatim is byte-identical to the leader.
func (dl *DatasetLog) SnapshotBytes() ([]byte, int64, error) {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	data, err := os.ReadFile(filepath.Join(dl.dir, snapName(dl.snapVersion)))
	if err != nil {
		return nil, 0, err
	}
	return data, dl.snapVersion, nil
}

// CommitNotify returns a channel closed after the next committed record
// or compaction — the long-poll primitive for the WAL shipping endpoint.
// Callers re-check Committed after a wake and re-arm with a fresh call.
func (dl *DatasetLog) CommitNotify() <-chan struct{} {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	if dl.notify == nil {
		dl.notify = make(chan struct{})
	}
	return dl.notify
}

// notifyLocked wakes CommitNotify waiters. Callers hold dl.mu.
func (dl *DatasetLog) notifyLocked() {
	if dl.notify != nil {
		close(dl.notify)
		dl.notify = nil
	}
}

// DecodeSnapshot validates and decodes raw CKPS snapshot bytes, as served
// by the replication snapshot endpoint.
func DecodeSnapshot(raw []byte) (*SnapshotData, error) {
	return decodeSnapshot(raw)
}

// InstallSnapshot persists raw snapshot bytes fetched from a leader as a
// dataset's entire on-disk state: the bytes are validated, written
// verbatim (atomically) as the current snapshot generation, any prior
// state under the name is pruned, and a fresh empty WAL keyed to the
// snapshot version is started. The resulting directory is byte-identical
// to the leader's at that version, which is what lets a follower resume
// from its local store by WAL size alone.
func (m *Manager) InstallSnapshot(name string, raw []byte) (*SnapshotData, *DatasetLog, error) {
	sd, err := DecodeSnapshot(raw)
	if err != nil {
		return nil, nil, err
	}
	dir := filepath.Join(m.opts.Dir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	if err := prune(dir, -1); err != nil {
		return nil, nil, err
	}
	if err := writeFileAtomic(filepath.Join(dir, snapName(sd.Version)), raw); err != nil {
		return nil, nil, err
	}
	dl := &DatasetLog{dir: dir, opts: m.opts, snapVersion: sd.Version}
	w, err := createWAL(filepath.Join(dir, walName(sd.Version)), sd.Version, m.opts.Fsync)
	if err != nil {
		return nil, nil, err
	}
	w.onFsync = dl.noteFsync
	dl.w = w
	return sd, dl, syncDir(dir)
}
