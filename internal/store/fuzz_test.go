package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// These fuzz targets pin the recovery-path contract: whatever bytes are
// on disk, the decoders never panic and never return anything but the
// typed ErrCorrupt / ErrFormatVersion errors — and a WAL tail the
// reader calls torn must truncate to a clean, replayable file. The
// seeds reproduce the shapes the corruption tests already cover
// (bit-flips, truncation, section reordering) plus the hostile metas
// (negative and overflowing row counts) that a CRC cannot catch because
// they are valid, correctly-checksummed payloads.

// fuzzSnapshotSeeds builds the corpus: one valid snapshot and the
// interesting corruptions of it.
func fuzzSnapshotSeeds(f *testing.F) {
	valid, err := encodeSnapshot(sampleSnapshot())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated mid-section
	f.Add(valid[:walHeaderLen]) // header only
	f.Add([]byte("CKPS"))       // magic only
	f.Add([]byte{})             // empty
	flipped := bytes.Clone(valid)
	flipped[len(flipped)/2] ^= 0x40 // CRC-caught bit flip
	f.Add(flipped)
	wrongVer := bytes.Clone(valid)
	binary.LittleEndian.PutUint32(wrongVer[4:], FormatVersion+1)
	f.Add(wrongVer)

	// Hostile metas: well-framed, CRC-valid sections whose JSON claims
	// impossible shapes. A negative row count must not reach make, and
	// a huge one must not overflow the 4*Rows bounds check.
	for _, meta := range []string{
		`{"version":1,"rows":-1,"attrs":["A"],"source":null}`,
		`{"version":1,"rows":4611686018427387904,"attrs":["A"],"source":null}`,
		`{"version":1,"rows":2,"attrs":["A"],"source":null}`,
	} {
		hdr := append([]byte(snapMagic), 0, 0, 0, 0)
		binary.LittleEndian.PutUint32(hdr[4:], FormatVersion)
		var cols []byte
		cols = binary.AppendUvarint(cols, 1) // one column
		cols = binary.AppendUvarint(cols, 1) // one dict value
		cols = appendString(cols, "v")
		cols = binary.LittleEndian.AppendUint32(cols, 0) // one code
		buf := appendSection(hdr, secMeta, []byte(meta))
		f.Add(appendSection(bytes.Clone(buf), secColumns, cols))
		// Columns before meta: the columns section is sized against
		// Rows's zero value, and only the final cross-check can reject.
		out := append([]byte(snapMagic), 0, 0, 0, 0)
		binary.LittleEndian.PutUint32(out[4:], FormatVersion)
		out = appendSection(out, secColumns, cols)
		f.Add(appendSection(out, secMeta, []byte(meta)))
	}
}

func FuzzSnapshotOpen(f *testing.F) {
	fuzzSnapshotSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		sd, err := decodeSnapshot(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrFormatVersion) {
				t.Fatalf("decodeSnapshot returned untyped error %v", err)
			}
			return
		}
		// Anything the decoder accepts must satisfy the encoder's own
		// consistency checks (column arity, row counts, codes within
		// dictionaries): a snapshot that decodes must re-encode.
		if _, err := encodeSnapshot(sd); err != nil {
			t.Fatalf("decoded snapshot does not re-encode: %v", err)
		}
	})
}

// fuzzWALSeeds builds the WAL corpus: a valid two-record log and its
// corruptions.
func fuzzWALSeeds(f *testing.F) {
	valid := walHeader(3)
	valid = append(valid, encodeRecord(recAppend, encodeAppendRecord(&AppendRecord{
		Version: 4,
		Rows:    [][]string{{"13053", "M"}, {"14853", "F"}},
	}))...)
	rel := sampleSnapshot().Releases.Releases[0]
	valid = append(valid, encodeRecord(recRelease, appendReleaseRecord(nil, &rel))...)
	f.Add(valid)
	f.Add(valid[:walHeaderLen])   // header, no records
	f.Add(valid[:len(valid)-3])   // torn tail
	f.Add(valid[:walHeaderLen+2]) // torn first record header
	f.Add([]byte("CKPW"))         // short header
	f.Add([]byte{})               // empty
	flipped := bytes.Clone(valid)
	flipped[len(flipped)-6] ^= 0x01 // CRC-caught flip in last record
	f.Add(flipped)
	unknown := walHeader(3)
	f.Add(append(unknown, encodeRecord(9, []byte("??"))...))
}

func FuzzWALReplay(f *testing.F) {
	fuzzWALSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		base, recs, good, err := readWAL(path)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrFormatVersion) {
				t.Fatalf("readWAL returned untyped error %v", err)
			}
			return
		}
		if good < walHeaderLen || good > int64(len(data)) {
			t.Fatalf("good offset %d outside [header, len]=%d", good, len(data))
		}
		// Torn-tail contract: truncating to the good offset yields a
		// clean log that replays to the same state.
		if err := os.WriteFile(path, data[:good], 0o644); err != nil {
			t.Fatal(err)
		}
		base2, recs2, good2, err := readWAL(path)
		if err != nil {
			t.Fatalf("truncated-to-good WAL does not re-read: %v", err)
		}
		if base2 != base || len(recs2) != len(recs) || good2 != good {
			t.Fatalf("truncated replay diverged: base %d→%d, records %d→%d, good %d→%d",
				base, base2, len(recs), len(recs2), good, good2)
		}
	})
}
