package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// SnapshotData is the materialized content of one columnar snapshot: the
// dataset version it pins, the opaque source descriptor the domain layer
// uses to rebuild hierarchies and schema, the encoded table (one
// dictionary and one dense code column per attribute, in schema order),
// and the retained release history at that version.
type SnapshotData struct {
	// Version is the dataset version (the PR-5 monotone counter) the
	// snapshot pins; the paired WAL extends exactly this version.
	Version int64
	// Rows is the row count of every code column.
	Rows int
	// Attrs names the columns in schema order — a cheap consistency check
	// against the rebuilt schema at recovery.
	Attrs []string
	// Source is an opaque JSON descriptor (dataload.SourceSpec) of how to
	// rebuild the dataset's schema, hierarchies and QI order. The store
	// never interprets it.
	Source []byte
	// Dicts holds each column's dictionary strings in code order.
	Dicts [][]string
	// Cols holds each column's dense codes; Cols[c][i] indexes Dicts[c].
	Cols [][]uint32
	// Releases is the retained release history; nil means none recorded.
	Releases *ReleaseState
}

// ReleaseState persists a dataset's bounded release log: the retained
// releases plus the counters that survive eviction.
type ReleaseState struct {
	// Next is the index the next recorded release will get.
	Next int
	// Evicted counts releases dropped past the retention bound.
	Evicted int
	// Releases holds the retained releases, oldest first.
	Releases []ReleaseRecord
}

// ReleaseRecord is one persisted release: identity, the levels it was
// published at, and the materialized partition (bucket keys + tuple ids),
// which recovery turns back into a bucketization without re-running the
// original version's scan.
type ReleaseRecord struct {
	// Index is the release's stable index in the dataset's release log.
	Index int
	// Version is the dataset version the release was bucketized at.
	Version int64
	// Rows is the row count at that version.
	Rows int
	// CreatedUnixNano is the recording wall-clock time.
	CreatedUnixNano int64
	// Levels is the generalization the release was published at.
	Levels map[string]int
	// Keys holds the bucket keys in bucket order.
	Keys []string
	// Groups holds each bucket's tuple (person) ids, aligned with Keys.
	Groups [][]int
}

// Snapshot file layout (all integers little-endian unless varint):
//
//	magic "CKPS" | uint32 FormatVersion
//	section*                    — framed, in fixed order: meta, columns,
//	                              releases (releases optional)
//
// Each section:
//
//	uint8 type | uint64 payload length | payload | uint32 CRC32(type+payload)
const (
	snapMagic = "CKPS"

	secMeta     = 1
	secColumns  = 2
	secReleases = 3
)

// snapMeta is the JSON payload of the meta section. Everything cheap and
// schema-ish goes here; the bulk data stays binary.
type snapMeta struct {
	Version int64           `json:"version"`
	Rows    int             `json:"rows"`
	Attrs   []string        `json:"attrs"`
	Source  json.RawMessage `json:"source"`
}

// appendSection frames one section onto buf: type, length, payload, CRC.
func appendSection(buf []byte, typ byte, payload []byte) []byte {
	buf = append(buf, typ)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	crc := crc32.NewIEEE()
	crc.Write([]byte{typ})
	crc.Write(payload)
	return binary.LittleEndian.AppendUint32(buf, crc.Sum32())
}

// encodeSnapshot renders sd into the snapshot file format.
func encodeSnapshot(sd *SnapshotData) ([]byte, error) {
	if len(sd.Dicts) != len(sd.Cols) || len(sd.Attrs) != len(sd.Cols) {
		return nil, fmt.Errorf("store: snapshot has %d attrs, %d dicts, %d cols",
			len(sd.Attrs), len(sd.Dicts), len(sd.Cols))
	}
	for c, col := range sd.Cols {
		if len(col) != sd.Rows {
			return nil, fmt.Errorf("store: column %d has %d rows, snapshot says %d", c, len(col), sd.Rows)
		}
	}
	buf := append([]byte(snapMagic), 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(buf[4:], FormatVersion)

	meta, err := json.Marshal(snapMeta{
		Version: sd.Version, Rows: sd.Rows, Attrs: sd.Attrs, Source: sd.Source,
	})
	if err != nil {
		return nil, fmt.Errorf("store: encoding snapshot meta: %w", err)
	}
	buf = appendSection(buf, secMeta, meta)

	var cols []byte
	cols = binary.AppendUvarint(cols, uint64(len(sd.Cols)))
	for c := range sd.Cols {
		cols = binary.AppendUvarint(cols, uint64(len(sd.Dicts[c])))
		for _, v := range sd.Dicts[c] {
			cols = appendString(cols, v)
		}
		for _, code := range sd.Cols[c] {
			if int(code) >= len(sd.Dicts[c]) {
				return nil, fmt.Errorf("store: column %d code %d outside dictionary of %d", c, code, len(sd.Dicts[c]))
			}
			cols = binary.LittleEndian.AppendUint32(cols, code)
		}
	}
	buf = appendSection(buf, secColumns, cols)

	if sd.Releases != nil {
		buf = appendSection(buf, secReleases, encodeReleaseState(sd.Releases))
	}
	return buf, nil
}

// encodeReleaseState renders the releases section payload.
func encodeReleaseState(rs *ReleaseState) []byte {
	var b []byte
	b = binary.AppendUvarint(b, uint64(rs.Next))
	b = binary.AppendUvarint(b, uint64(rs.Evicted))
	b = binary.AppendUvarint(b, uint64(len(rs.Releases)))
	for i := range rs.Releases {
		b = appendReleaseRecord(b, &rs.Releases[i])
	}
	return b
}

// appendReleaseRecord encodes one release (shared by the snapshot's
// releases section and the WAL's release records).
func appendReleaseRecord(b []byte, r *ReleaseRecord) []byte {
	b = binary.AppendUvarint(b, uint64(r.Index))
	b = binary.AppendVarint(b, r.Version)
	b = binary.AppendUvarint(b, uint64(r.Rows))
	b = binary.AppendVarint(b, r.CreatedUnixNano)
	levels, _ := json.Marshal(r.Levels) // map[string]int cannot fail
	b = appendBytes(b, levels)
	b = binary.AppendUvarint(b, uint64(len(r.Keys)))
	for i, key := range r.Keys {
		b = appendString(b, key)
		group := r.Groups[i]
		b = binary.AppendUvarint(b, uint64(len(group)))
		for _, id := range group {
			b = binary.AppendUvarint(b, uint64(id))
		}
	}
	return b
}

// decodeReleaseRecord is the inverse of appendReleaseRecord.
func decodeReleaseRecord(r *byteReader) (ReleaseRecord, error) {
	var rec ReleaseRecord
	var err error
	var u uint64
	if u, err = r.uvarint(); err != nil {
		return rec, err
	}
	rec.Index = int(u)
	if rec.Version, err = r.varint(); err != nil {
		return rec, err
	}
	if u, err = r.uvarint(); err != nil {
		return rec, err
	}
	rec.Rows = int(u)
	if rec.CreatedUnixNano, err = r.varint(); err != nil {
		return rec, err
	}
	levels, err := r.bytes()
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(levels, &rec.Levels); err != nil {
		return rec, corruptf("release levels: %v", err)
	}
	nb, err := r.uvarint()
	if err != nil {
		return rec, err
	}
	if nb > uint64(r.remaining()) {
		return rec, corruptf("release claims %d buckets with %d bytes left", nb, r.remaining())
	}
	rec.Keys = make([]string, nb)
	rec.Groups = make([][]int, nb)
	for i := range rec.Keys {
		if rec.Keys[i], err = r.string(); err != nil {
			return rec, err
		}
		nt, err := r.uvarint()
		if err != nil {
			return rec, err
		}
		if nt > uint64(r.remaining()) {
			return rec, corruptf("bucket claims %d tuples with %d bytes left", nt, r.remaining())
		}
		group := make([]int, nt)
		for j := range group {
			id, err := r.uvarint()
			if err != nil {
				return rec, err
			}
			group[j] = int(id)
		}
		rec.Groups[i] = group
	}
	return rec, nil
}

// decodeSnapshot parses a snapshot file.
func decodeSnapshot(data []byte) (*SnapshotData, error) {
	if len(data) < 8 || string(data[:4]) != snapMagic {
		return nil, corruptf("snapshot: bad magic")
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != FormatVersion {
		return nil, fmt.Errorf("%w: snapshot format %d, this build reads %d", ErrFormatVersion, v, FormatVersion)
	}
	sd := &SnapshotData{Version: -1}
	rest := data[8:]
	seen := map[byte]bool{}
	for len(rest) > 0 {
		if len(rest) < 9 {
			return nil, corruptf("snapshot: truncated section header")
		}
		typ := rest[0]
		n := binary.LittleEndian.Uint64(rest[1:])
		if n > uint64(len(rest)-9) || len(rest) < int(9+n+4) {
			return nil, corruptf("snapshot: section %d truncated", typ)
		}
		payload := rest[9 : 9+n]
		crc := crc32.NewIEEE()
		crc.Write([]byte{typ})
		crc.Write(payload)
		if got := binary.LittleEndian.Uint32(rest[9+n:]); got != crc.Sum32() {
			return nil, corruptf("snapshot: section %d CRC mismatch", typ)
		}
		if seen[typ] {
			return nil, corruptf("snapshot: duplicate section %d", typ)
		}
		seen[typ] = true
		if err := decodeSection(sd, typ, payload); err != nil {
			return nil, err
		}
		rest = rest[9+n+4:]
	}
	if !seen[secMeta] || !seen[secColumns] {
		return nil, corruptf("snapshot: missing meta or columns section")
	}
	// Sections decode in file order, so a columns section placed before
	// the meta section is sized against Rows's zero value; cross-check
	// the final shape against what meta claimed.
	for c, col := range sd.Cols {
		if len(col) != sd.Rows {
			return nil, corruptf("snapshot: column %d has %d rows, meta says %d", c, len(col), sd.Rows)
		}
	}
	return sd, nil
}

// decodeSection dispatches one validated section payload into sd.
func decodeSection(sd *SnapshotData, typ byte, payload []byte) error {
	switch typ {
	case secMeta:
		var m snapMeta
		if err := json.Unmarshal(payload, &m); err != nil {
			return corruptf("snapshot meta: %v", err)
		}
		sd.Version, sd.Rows, sd.Attrs, sd.Source = m.Version, m.Rows, m.Attrs, m.Source
	case secColumns:
		r := &byteReader{b: payload}
		ncols, err := r.uvarint()
		if err != nil {
			return err
		}
		if ncols > uint64(r.remaining()) {
			return corruptf("snapshot claims %d columns with %d bytes left", ncols, r.remaining())
		}
		sd.Dicts = make([][]string, ncols)
		sd.Cols = make([][]uint32, ncols)
		for c := range sd.Cols {
			nd, err := r.uvarint()
			if err != nil {
				return err
			}
			if nd > uint64(r.remaining()) {
				return corruptf("dictionary claims %d values with %d bytes left", nd, r.remaining())
			}
			dict := make([]string, nd)
			for i := range dict {
				if dict[i], err = r.string(); err != nil {
					return err
				}
			}
			sd.Dicts[c] = dict
			// Rows comes from attacker-controllable meta JSON: a negative
			// value must not reach make, and 4*Rows must not overflow int
			// and slip past a plain remaining() comparison.
			if sd.Rows < 0 || uint64(r.remaining())/4 < uint64(sd.Rows) {
				return corruptf("column %d: %d bytes left for %d codes", c, r.remaining(), sd.Rows)
			}
			col := make([]uint32, sd.Rows)
			for i := range col {
				code := binary.LittleEndian.Uint32(r.b[r.off:])
				r.off += 4
				if int(code) >= len(dict) {
					return corruptf("column %d row %d: code %d outside dictionary of %d", c, i, code, len(dict))
				}
				col[i] = code
			}
			sd.Cols[c] = col
		}
		if r.remaining() != 0 {
			return corruptf("snapshot columns section has %d trailing bytes", r.remaining())
		}
	case secReleases:
		r := &byteReader{b: payload}
		rs := &ReleaseState{}
		u, err := r.uvarint()
		if err != nil {
			return err
		}
		rs.Next = int(u)
		if u, err = r.uvarint(); err != nil {
			return err
		}
		rs.Evicted = int(u)
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		if n > uint64(r.remaining()) {
			return corruptf("snapshot claims %d releases with %d bytes left", n, r.remaining())
		}
		rs.Releases = make([]ReleaseRecord, n)
		for i := range rs.Releases {
			if rs.Releases[i], err = decodeReleaseRecord(r); err != nil {
				return err
			}
		}
		sd.Releases = rs
	default:
		return corruptf("snapshot: unknown section type %d", typ)
	}
	return nil
}

// writeSnapshotFile writes sd atomically to path: temp file in the same
// directory, fsync, rename, directory fsync — so a crash leaves either
// the old file, the new file, or a stray temp file that recovery ignores,
// never a partial snapshot under the real name.
func writeSnapshotFile(path string, sd *SnapshotData) error {
	data, err := encodeSnapshot(sd)
	if err != nil {
		return err
	}
	return writeFileAtomic(path, data)
}

// writeFileAtomic lands data at path via temp file + fsync + rename +
// directory fsync — the atomic publication discipline snapshots use, also
// applied to raw snapshot bytes a follower installs verbatim.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// readSnapshotFile loads and validates a snapshot file.
func readSnapshotFile(path string) (*SnapshotData, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sd, err := decodeSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return sd, nil
}

// syncDir fsyncs a directory so a just-renamed file survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// ---- small binary helpers shared with the WAL ----

// appendString length-prefixes s.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendBytes length-prefixes p.
func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// byteReader is a bounds-checked cursor over one payload; every decoding
// error it returns wraps ErrCorrupt.
type byteReader struct {
	b   []byte
	off int
}

func (r *byteReader) remaining() int { return len(r.b) - r.off }

func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, corruptf("truncated uvarint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *byteReader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, corruptf("truncated varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *byteReader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.remaining()) {
		return nil, corruptf("length %d exceeds %d remaining bytes", n, r.remaining())
	}
	p := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return p, nil
}

func (r *byteReader) string() (string, error) {
	p, err := r.bytes()
	return string(p), err
}
