// Package store is ckprivacy's durability subsystem: crash-safe, on-disk
// persistence for registered datasets, so a restarted daemon boots warm
// (load a columnar snapshot + replay a short WAL tail) instead of cold
// (re-parse, re-encode, re-warm everything).
//
// Two artifacts live under <dir>/<dataset>/ per dataset:
//
//   - snapshot-<version>.ckps — a versioned binary columnar snapshot of
//     the dataset's table.Encoded view (per-attribute dictionaries plus
//     dense uint32 code columns), its rebuild source descriptor, and the
//     retained release history. Snapshots are written atomically (temp
//     file + rename + directory fsync) and every section carries a CRC32,
//     so a snapshot is either wholly valid or detected corrupt — never
//     silently partial.
//
//   - wal-<version>.ckpw — an append-only log of the mutations since that
//     snapshot: append batches and release records, each framed with a
//     length header and a CRC32, fsync'd on commit. The version in the
//     file name keys the WAL to the snapshot it extends.
//
// Recovery reads the highest-version valid snapshot and replays the
// paired WAL. A torn final record (a crash mid-write leaves fewer bytes
// than its header promises) is tolerated: replay stops at the last
// complete record and the tail is truncated before new appends. Any
// complete record or section whose CRC does not match is ErrCorrupt; a
// format version newer than this build understands is ErrFormatVersion.
// Compaction rewrites the snapshot at the current version, starts a fresh
// WAL, and prunes the old files; every intermediate crash point leaves a
// recoverable directory.
//
// The package is deliberately below the domain layers: it moves dicts,
// code columns, rows and release records as plain slices and maps, and
// knows nothing about hierarchies, problems or servers. internal/server
// owns the orchestration (what to snapshot, when to compact, how to
// replay through anonymize.Problem.Append).
package store

import (
	"errors"
	"fmt"
)

// ErrCorrupt marks on-disk state that fails validation: a bad magic, a
// CRC mismatch on a complete section or record, impossible lengths, or a
// WAL without its snapshot. Recovery refuses to guess; callers match it
// with errors.Is.
var ErrCorrupt = errors.New("store: corrupt")

// ErrFormatVersion marks a snapshot or WAL written by a newer format
// version than this build understands. The data may be perfectly valid —
// it just needs a newer reader — so it is distinct from ErrCorrupt.
var ErrFormatVersion = errors.New("store: unsupported format version")

// FormatVersion is the on-disk layout version this build reads and
// writes. Readers reject higher versions with ErrFormatVersion; future
// layouts bump it so old and new files can coexist in one directory.
const FormatVersion = 1

// corruptf wraps ErrCorrupt with context.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}
