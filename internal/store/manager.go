package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Options configures a Manager.
type Options struct {
	// Dir is the data directory root; one subdirectory per dataset.
	Dir string
	// Fsync makes every WAL commit fsync before returning. Off, a crash
	// can lose the OS-buffered tail (but never corrupt what is on disk).
	Fsync bool
	// CompactBytes is the WAL size past which the owner should compact
	// (snapshot rewrite + fresh WAL). Zero or negative disables the
	// suggestion; compaction itself is always available.
	CompactBytes int64
}

// Manager owns a data directory and hands out one DatasetLog per dataset.
// The store never mutates datasets on its own: the owner decides what to
// snapshot, when to log, and when to compact.
type Manager struct {
	opts Options
}

// Open validates the data directory (creating it if absent) and returns a
// Manager over it.
func Open(opts Options) (*Manager, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("store: empty data directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	return &Manager{opts: opts}, nil
}

// Dir reports the manager's data directory root.
func (m *Manager) Dir() string { return m.opts.Dir }

// CompactBytes reports the configured compaction threshold (<= 0 means
// disabled).
func (m *Manager) CompactBytes() int64 { return m.opts.CompactBytes }

// Datasets lists the dataset names that have on-disk state, sorted.
func (m *Manager) Datasets() ([]string, error) {
	entries, err := os.ReadDir(m.opts.Dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(m.opts.Dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for _, f := range files {
			if strings.HasSuffix(f.Name(), snapSuffix) || strings.HasSuffix(f.Name(), walSuffix) {
				names = append(names, e.Name())
				break
			}
		}
	}
	sort.Strings(names)
	return names, nil
}

const (
	snapSuffix = ".ckps"
	walSuffix  = ".ckpw"
)

func snapName(version int64) string { return fmt.Sprintf("snapshot-%d%s", version, snapSuffix) }
func walName(version int64) string  { return fmt.Sprintf("wal-%d%s", version, walSuffix) }

// parseArtifact extracts the version from a snapshot or WAL file name;
// ok is false for anything else (temp files, strays).
func parseArtifact(name, prefix, suffix string) (int64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	v, err := strconv.ParseInt(name[len(prefix):len(name)-len(suffix)], 10, 64)
	if err != nil || v < 0 {
		return 0, false
	}
	return v, true
}

// DatasetLog is the durable state of one dataset: the current snapshot
// plus its open WAL. All methods are safe for concurrent use, but the
// owner is expected to serialize LogAppend/LogRelease with the mutations
// they record (the server holds its per-dataset append lock across both).
type DatasetLog struct {
	mu   sync.Mutex
	dir  string // <root>/<dataset>
	opts Options

	snapVersion int64 // version of the on-disk snapshot the WAL extends
	w           *walWriter
	records     int
	notify      chan struct{} // closed+cleared on commit; see CommitNotify

	lastCompaction time.Time
	fsyncCount     int64
	fsyncTotal     time.Duration
}

// Create persists a brand-new dataset: its first snapshot plus an empty
// WAL. Any stale on-disk state under the same name is removed first.
func (m *Manager) Create(name string, sd *SnapshotData) (*DatasetLog, error) {
	dir := filepath.Join(m.opts.Dir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := prune(dir, -1); err != nil {
		return nil, err
	}
	if err := writeSnapshotFile(filepath.Join(dir, snapName(sd.Version)), sd); err != nil {
		return nil, err
	}
	dl := &DatasetLog{dir: dir, opts: m.opts, snapVersion: sd.Version}
	w, err := createWAL(filepath.Join(dir, walName(sd.Version)), sd.Version, m.opts.Fsync)
	if err != nil {
		return nil, err
	}
	w.onFsync = dl.noteFsync
	dl.w = w
	return dl, syncDir(dir)
}

// Load recovers one dataset: the highest-version valid snapshot, the
// records of its WAL (torn tail already dropped), and an open DatasetLog
// positioned to append. Stray temp files and superseded snapshot/WAL
// generations are pruned. A WAL with no snapshot at all is ErrCorrupt —
// the appends exist but nothing to replay them onto.
func (m *Manager) Load(name string) (*SnapshotData, []Record, *DatasetLog, error) {
	dir := filepath.Join(m.opts.Dir, name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var snapVersions []int64
	haveWAL := false
	for _, e := range entries {
		if v, ok := parseArtifact(e.Name(), "snapshot-", snapSuffix); ok {
			snapVersions = append(snapVersions, v)
		}
		if _, ok := parseArtifact(e.Name(), "wal-", walSuffix); ok {
			haveWAL = true
		}
	}
	if len(snapVersions) == 0 {
		if haveWAL {
			return nil, nil, nil, fmt.Errorf("%s: %w", name, corruptf("wal present but no snapshot to replay onto"))
		}
		return nil, nil, nil, fmt.Errorf("%s: %w", name, os.ErrNotExist)
	}
	sort.Slice(snapVersions, func(i, j int) bool { return snapVersions[i] < snapVersions[j] })
	v := snapVersions[len(snapVersions)-1]
	sd, err := readSnapshotFile(filepath.Join(dir, snapName(v)))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%s: %w", name, err)
	}
	if sd.Version != v {
		return nil, nil, nil, fmt.Errorf("%s: %w", name, corruptf("snapshot named %d carries version %d", v, sd.Version))
	}

	dl := &DatasetLog{dir: dir, opts: m.opts, snapVersion: v}
	walPath := filepath.Join(dir, walName(v))
	var recs []Record
	if st, statErr := os.Stat(walPath); statErr == nil && st.Size() >= walHeaderLen {
		base, rs, good, err := readWAL(walPath)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("%s: %w", name, err)
		}
		if base != v {
			return nil, nil, nil, fmt.Errorf("%s: %w", name, corruptf("wal named %d carries base version %d", v, base))
		}
		recs = rs
		w, err := openWALForAppend(walPath, good, m.opts.Fsync)
		if err != nil {
			return nil, nil, nil, err
		}
		w.onFsync = dl.noteFsync
		dl.w = w
		dl.records = len(rs)
	} else {
		// A crash between the snapshot rename and the WAL creation (in
		// Create or Compact) leaves a snapshot with no WAL — or with a WAL
		// shorter than its own header, torn mid-creation before any record
		// could have committed. Either way nothing is lost; start fresh
		// (createWAL truncates).
		w, err := createWAL(walPath, v, m.opts.Fsync)
		if err != nil {
			return nil, nil, nil, err
		}
		w.onFsync = dl.noteFsync
		dl.w = w
	}
	if err := prune(dir, v); err != nil {
		return nil, nil, nil, err
	}
	return sd, recs, dl, nil
}

// prune removes temp files and every snapshot/WAL generation other than
// keep (keep < 0 removes them all).
func prune(dir string, keep int64) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		drop := strings.HasSuffix(name, ".tmp")
		if v, ok := parseArtifact(name, "snapshot-", snapSuffix); ok && v != keep {
			drop = true
		}
		if v, ok := parseArtifact(name, "wal-", walSuffix); ok && v != keep {
			drop = true
		}
		if drop {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// noteFsync accumulates fsync latency for the owner's metrics.
func (dl *DatasetLog) noteFsync(d time.Duration) {
	dl.fsyncCount++
	dl.fsyncTotal += d
}

// LogAppend durably records one append batch.
func (dl *DatasetLog) LogAppend(ar *AppendRecord) error {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	if dl.w == nil {
		return os.ErrClosed
	}
	if err := dl.w.append(recAppend, encodeAppendRecord(ar)); err != nil {
		return err
	}
	dl.records++
	dl.notifyLocked()
	return nil
}

// LogRelease durably records one release.
func (dl *DatasetLog) LogRelease(rr *ReleaseRecord) error {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	if dl.w == nil {
		return os.ErrClosed
	}
	if err := dl.w.append(recRelease, appendReleaseRecord(nil, rr)); err != nil {
		return err
	}
	dl.records++
	dl.notifyLocked()
	return nil
}

// Bytes reports the WAL's current size in bytes (header included).
func (dl *DatasetLog) Bytes() int64 {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	if dl.w == nil {
		return 0
	}
	return dl.w.size
}

// Records reports how many records the current WAL holds.
func (dl *DatasetLog) Records() int {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	return dl.records
}

// ShouldCompact reports whether the WAL has grown past the configured
// threshold.
func (dl *DatasetLog) ShouldCompact() bool {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	return dl.opts.CompactBytes > 0 && dl.w != nil && dl.w.size > dl.opts.CompactBytes
}

// Compact rewrites the snapshot at sd's version, starts a fresh empty WAL
// keyed to it, and prunes the superseded generation. The write order —
// new snapshot (atomic), new WAL, then prune — keeps every intermediate
// crash point recoverable: Load always finds the highest-version valid
// snapshot and tolerates a missing or superseded WAL. Compact also heals
// a broken log (e.g. after a failed write): the old handle is discarded
// and fresh ones opened.
func (dl *DatasetLog) Compact(sd *SnapshotData) error {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	if err := writeSnapshotFile(filepath.Join(dl.dir, snapName(sd.Version)), sd); err != nil {
		return err
	}
	w, err := createWAL(filepath.Join(dl.dir, walName(sd.Version)), sd.Version, dl.opts.Fsync)
	if err != nil {
		return err
	}
	w.onFsync = dl.noteFsync
	if dl.w != nil {
		dl.w.close() // best effort; may already be broken
	}
	old := dl.snapVersion
	dl.w = w
	dl.snapVersion = sd.Version
	dl.records = 0
	dl.lastCompaction = time.Now()
	dl.notifyLocked()
	if old != sd.Version {
		if err := prune(dl.dir, sd.Version); err != nil {
			return err
		}
	}
	return syncDir(dl.dir)
}

// LastCompaction reports when Compact last ran (zero if never in this
// process).
func (dl *DatasetLog) LastCompaction() time.Time {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	return dl.lastCompaction
}

// FsyncStats reports how many WAL fsyncs have run and their cumulative
// latency.
func (dl *DatasetLog) FsyncStats() (count int64, total time.Duration) {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	return dl.fsyncCount, dl.fsyncTotal
}

// Close releases the WAL file handle. Further Log calls fail; Compact
// reopens fresh handles.
func (dl *DatasetLog) Close() error {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	if dl.w == nil {
		return nil
	}
	err := dl.w.close()
	dl.w = nil
	dl.notifyLocked() // wake long-poll waiters so they observe the close
	return err
}
