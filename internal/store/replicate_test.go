package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// walBytes renders a complete WAL file (header + records) in memory by
// round-tripping through a real file.
func walBytes(t *testing.T, base int64, recs []Record) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.ckpw")
	w, err := createWAL(path, base, false)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	for _, rec := range recs {
		switch {
		case rec.Append != nil:
			err = w.append(recAppend, encodeAppendRecord(rec.Append))
		case rec.Release != nil:
			err = w.append(recRelease, appendReleaseRecord(nil, rec.Release))
		}
		if err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return data
}

func sampleRecords() []Record {
	return []Record{
		{Append: &AppendRecord{Version: 4, Rows: [][]string{{"14850", "M"}, {"14851", "F"}}}},
		{Release: &ReleaseRecord{
			Index: 0, Version: 4, Rows: 6, CreatedUnixNano: 99,
			Levels: map[string]int{"Zip": 2},
			Keys:   []string{"1****|*"}, Groups: [][]int{{0, 1, 2, 3, 4, 5}},
		}},
		{Append: &AppendRecord{Version: 5, Rows: [][]string{{"13053", "F"}}}},
	}
}

// TestRecordScannerStreaming feeds a WAL stream to the scanner one byte
// at a time and asserts it recovers exactly the committed records with
// correct resume offsets, from offset 0 (header included) and from a
// mid-log cursor.
func TestRecordScannerStreaming(t *testing.T) {
	recs := sampleRecords()
	data := walBytes(t, 3, recs)

	s, err := NewRecordScanner(3, 0)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	var got []Record
	var offsets []int64
	for i := range data {
		s.Feed(data[i : i+1])
		for {
			rec, ok, err := s.Next()
			if err != nil {
				t.Fatalf("next at byte %d: %v", i, err)
			}
			if !ok {
				break
			}
			got = append(got, rec)
			offsets = append(offsets, s.Offset())
		}
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("records mismatch:\n got %+v\nwant %+v", got, recs)
	}
	if s.Offset() != int64(len(data)) || s.Buffered() != 0 {
		t.Fatalf("final offset %d buffered %d, want %d and 0", s.Offset(), s.Buffered(), len(data))
	}

	// Resume mid-log: a scanner positioned after the first record decodes
	// the rest without seeing the header.
	mid := offsets[0]
	s2, err := NewRecordScanner(3, mid)
	if err != nil {
		t.Fatalf("new mid: %v", err)
	}
	s2.Feed(data[mid:])
	var rest []Record
	for {
		rec, ok, err := s2.Next()
		if err != nil {
			t.Fatalf("next: %v", err)
		}
		if !ok {
			break
		}
		rest = append(rest, rec)
	}
	if !reflect.DeepEqual(rest, recs[1:]) {
		t.Fatalf("mid-log records mismatch:\n got %+v\nwant %+v", rest, recs[1:])
	}
}

func TestRecordScannerRejects(t *testing.T) {
	recs := sampleRecords()
	data := walBytes(t, 3, recs)

	// Wrong expected base.
	s, _ := NewRecordScanner(7, 0)
	s.Feed(data)
	if _, _, err := s.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong base: err = %v, want ErrCorrupt", err)
	}

	// A complete frame with a flipped payload byte is ErrCorrupt, not a
	// silent skip.
	bad := append([]byte(nil), data...)
	bad[walHeaderLen+6] ^= 0xff
	s2, _ := NewRecordScanner(3, 0)
	s2.Feed(bad)
	if _, _, err := s2.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped byte: err = %v, want ErrCorrupt", err)
	}

	// Cursors inside the header are rejected up front.
	if _, err := NewRecordScanner(3, walHeaderLen-1); err == nil {
		t.Fatal("offset inside header accepted")
	}
	if _, err := NewRecordScanner(3, -1); err == nil {
		t.Fatal("negative offset accepted")
	}
}

// TestCommittedPrefixCursor is the torn-tail regression test for the
// cursor API: a reader positioned mid-log never observes bytes beyond the
// committed prefix — not even a torn tail that the writer later truncates
// and overwrites with a different record.
func TestCommittedPrefixCursor(t *testing.T) {
	m, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	sd := sampleSnapshot()
	dl, err := m.Create("d", sd)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := dl.LogAppend(&AppendRecord{Version: 4, Rows: [][]string{{"14850", "M"}}}); err != nil {
		t.Fatalf("append: %v", err)
	}
	base, committed, records := dl.Committed()
	if base != sd.Version || records != 1 {
		t.Fatalf("committed = (%d, %d, %d)", base, committed, records)
	}

	// Reading the committed prefix in tiny chunks reconstructs the file
	// byte-for-byte.
	var shipped []byte
	for from := int64(0); from < committed; {
		chunk, c, err := dl.ReadCommitted(from, 3)
		if err != nil {
			t.Fatalf("read at %d: %v", from, err)
		}
		if c != committed {
			t.Fatalf("committed moved: %d != %d", c, committed)
		}
		shipped = append(shipped, chunk...)
		from += int64(len(chunk))
	}
	walPath := filepath.Join(m.Dir(), "d", walName(sd.Version))
	onDisk, _ := os.ReadFile(walPath)
	if !bytes.Equal(shipped, onDisk) {
		t.Fatal("chunked committed reads differ from the file")
	}

	// A torn tail lands on disk (a failed or in-flight write past the
	// committed size). The cursor API must never surface it.
	garbage := []byte("GARBAGEGARBAGEGARBAGE")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("open for garbage: %v", err)
	}
	if _, err := f.Write(garbage); err != nil {
		t.Fatalf("write garbage: %v", err)
	}
	f.Close()
	if data, c, err := dl.ReadCommitted(committed, 1<<20); err != nil || len(data) != 0 || c != committed {
		t.Fatalf("read past committed saw %d bytes (c=%d, err=%v), want none", len(data), c, err)
	}
	if _, _, err := dl.ReadCommitted(committed+int64(len(garbage)), 0); err == nil {
		t.Fatal("cursor beyond committed prefix accepted")
	}

	// The writer keeps going: its next record overwrites the torn bytes
	// (the writer's own offset never advanced past the committed prefix).
	next := &AppendRecord{Version: 5, Rows: [][]string{{"13053", "F"}, {"14853", "M"}}}
	if err := dl.LogAppend(next); err != nil {
		t.Fatalf("append after torn tail: %v", err)
	}
	_, committed2, _ := dl.Committed()

	// A mid-log reader resuming at the old cursor must decode exactly the
	// new record — never the garbage that briefly occupied those offsets.
	tail, _, err := dl.ReadCommitted(committed, 1<<20)
	if err != nil {
		t.Fatalf("resume read: %v", err)
	}
	if bytes.Contains(tail, garbage[:8]) {
		t.Fatal("resumed read leaked torn-tail bytes")
	}
	s, err := NewRecordScanner(sd.Version, committed)
	if err != nil {
		t.Fatalf("scanner: %v", err)
	}
	s.Feed(tail)
	rec, ok, err := s.Next()
	if err != nil || !ok || rec.Append == nil {
		t.Fatalf("scan resumed tail: rec=%+v ok=%v err=%v", rec, ok, err)
	}
	if !reflect.DeepEqual(rec.Append, next) {
		t.Fatalf("resumed record mismatch: got %+v want %+v", rec.Append, next)
	}
	if s.Offset() != committed2 {
		t.Fatalf("scanner offset %d, want committed %d", s.Offset(), committed2)
	}
	if err := dl.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// And recovery agrees: replaying the file yields both records, with
	// the torn bytes beyond the final committed offset discarded.
	_, recs, _, err := m.Load("d")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(recs) != 2 || !reflect.DeepEqual(recs[1].Append, next) {
		t.Fatalf("recovery records mismatch: %+v", recs)
	}
}

// TestInstallSnapshotByteIdentical proves the follower bootstrap path:
// installing the leader's raw snapshot bytes and re-logging the same
// records reproduces the leader's on-disk state byte-for-byte, which is
// what lets a rebooted follower resume from local WAL size alone.
func TestInstallSnapshotByteIdentical(t *testing.T) {
	leader, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("open leader: %v", err)
	}
	ldl, err := leader.Create("d", sampleSnapshot())
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	for _, rec := range sampleRecords() {
		switch {
		case rec.Append != nil:
			err = ldl.LogAppend(rec.Append)
		case rec.Release != nil:
			err = ldl.LogRelease(rec.Release)
		}
		if err != nil {
			t.Fatalf("log: %v", err)
		}
	}

	raw, version, err := ldl.SnapshotBytes()
	if err != nil {
		t.Fatalf("snapshot bytes: %v", err)
	}
	if version != 3 {
		t.Fatalf("snapshot version %d, want 3", version)
	}

	follower, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("open follower: %v", err)
	}
	sd, fdl, err := follower.InstallSnapshot("d", raw)
	if err != nil {
		t.Fatalf("install: %v", err)
	}
	if !reflect.DeepEqual(sd, sampleSnapshot()) {
		t.Fatalf("decoded snapshot mismatch: %+v", sd)
	}
	lSnap, _ := os.ReadFile(filepath.Join(leader.Dir(), "d", snapName(3)))
	fSnap, _ := os.ReadFile(filepath.Join(follower.Dir(), "d", snapName(3)))
	if !bytes.Equal(lSnap, fSnap) || len(fSnap) == 0 {
		t.Fatal("installed snapshot file differs from the leader's")
	}

	// Ship the WAL: apply the same records through the follower's log.
	for _, rec := range sampleRecords() {
		switch {
		case rec.Append != nil:
			err = fdl.LogAppend(rec.Append)
		case rec.Release != nil:
			err = fdl.LogRelease(rec.Release)
		}
		if err != nil {
			t.Fatalf("follower log: %v", err)
		}
	}
	lWAL, _ := os.ReadFile(filepath.Join(leader.Dir(), "d", walName(3)))
	fWAL, _ := os.ReadFile(filepath.Join(follower.Dir(), "d", walName(3)))
	if !bytes.Equal(lWAL, fWAL) || len(fWAL) <= walHeaderLen {
		t.Fatal("follower WAL differs from the leader's")
	}
	_, lc, _ := ldl.Committed()
	_, fc, _ := fdl.Committed()
	if lc != fc {
		t.Fatalf("committed sizes differ: leader %d follower %d", lc, fc)
	}
}

func TestCommitNotify(t *testing.T) {
	m, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	dl, err := m.Create("d", sampleSnapshot())
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	ch := dl.CommitNotify()
	select {
	case <-ch:
		t.Fatal("notify fired before any commit")
	default:
	}
	if err := dl.LogAppend(&AppendRecord{Version: 4, Rows: [][]string{{"14850", "M"}}}); err != nil {
		t.Fatalf("append: %v", err)
	}
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("notify did not fire on commit")
	}
	// Close wakes waiters too, so a shutting-down leader does not strand
	// long-polls.
	ch = dl.CommitNotify()
	if err := dl.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("notify did not fire on close")
	}
}
