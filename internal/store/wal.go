package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"
)

// WAL file layout (all integers little-endian unless varint):
//
//	magic "CKPW" | uint32 FormatVersion | int64 base snapshot version
//	record*
//
// Each record:
//
//	uint32 payload length | uint8 type | payload | uint32 CRC32(type+payload)
//
// A crash mid-write can leave fewer bytes than the length header promises;
// that torn tail is tolerated and truncated on open. A complete record
// whose CRC does not match is ErrCorrupt.
const (
	walMagic     = "CKPW"
	walHeaderLen = 4 + 4 + 8

	recAppend  = 1
	recRelease = 2
)

// Record is one replayed WAL record: exactly one of Append or Release is
// set.
type Record struct {
	// Append holds an append batch, when the record is one.
	Append *AppendRecord
	// Release holds a release record, when the record is one.
	Release *ReleaseRecord
}

// AppendRecord is one durably logged append batch.
type AppendRecord struct {
	// Version is the dataset version the batch produced (the PR-5 counter
	// after the append). Replay asserts the in-memory append reproduces it.
	Version int64
	// Rows holds the appended rows in schema column order.
	Rows [][]string
}

// encodeAppendRecord renders an append record payload.
func encodeAppendRecord(ar *AppendRecord) []byte {
	var b []byte
	b = binary.AppendVarint(b, ar.Version)
	b = binary.AppendUvarint(b, uint64(len(ar.Rows)))
	for _, row := range ar.Rows {
		b = binary.AppendUvarint(b, uint64(len(row)))
		for _, v := range row {
			b = appendString(b, v)
		}
	}
	return b
}

// decodeAppendRecord is the inverse of encodeAppendRecord.
func decodeAppendRecord(payload []byte) (*AppendRecord, error) {
	r := &byteReader{b: payload}
	ar := &AppendRecord{}
	var err error
	if ar.Version, err = r.varint(); err != nil {
		return nil, err
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.remaining()) {
		return nil, corruptf("append record claims %d rows with %d bytes left", n, r.remaining())
	}
	ar.Rows = make([][]string, n)
	for i := range ar.Rows {
		w, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if w > uint64(r.remaining()) {
			return nil, corruptf("append row claims %d values with %d bytes left", w, r.remaining())
		}
		row := make([]string, w)
		for j := range row {
			if row[j], err = r.string(); err != nil {
				return nil, err
			}
		}
		ar.Rows[i] = row
	}
	if r.remaining() != 0 {
		return nil, corruptf("append record has %d trailing bytes", r.remaining())
	}
	return ar, nil
}

// encodeRecord frames one record for the WAL.
func encodeRecord(typ byte, payload []byte) []byte {
	b := make([]byte, 0, 4+1+len(payload)+4)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, typ)
	b = append(b, payload...)
	crc := crc32.NewIEEE()
	crc.Write([]byte{typ})
	crc.Write(payload)
	return binary.LittleEndian.AppendUint32(b, crc.Sum32())
}

// walHeader renders the fixed file header for a WAL based at version.
func walHeader(version int64) []byte {
	b := append([]byte(walMagic), 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(b[4:], FormatVersion)
	return binary.LittleEndian.AppendUint64(b, uint64(version))
}

// readWAL parses a WAL file: header, then every complete record. It
// returns the base snapshot version, the records, and the byte offset
// just past the last complete record — a torn tail beyond it is the
// caller's to truncate. A complete record that fails its CRC, or a
// header too short or mismatched, is ErrCorrupt.
func readWAL(path string) (base int64, recs []Record, good int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, 0, err
	}
	if len(data) < walHeaderLen {
		return 0, nil, 0, corruptf("wal: file shorter than header")
	}
	if string(data[:4]) != walMagic {
		return 0, nil, 0, corruptf("wal: bad magic")
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != FormatVersion {
		return 0, nil, 0, fmt.Errorf("%w: wal format %d, this build reads %d", ErrFormatVersion, v, FormatVersion)
	}
	base = int64(binary.LittleEndian.Uint64(data[8:]))
	off := int64(walHeaderLen)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return base, recs, off, nil
		}
		if len(rest) < 4+1 {
			// Torn header: the crash happened before even the length and
			// type landed. Replay stops here.
			return base, recs, off, nil
		}
		n := binary.LittleEndian.Uint32(rest)
		total := int64(4 + 1 + int64(n) + 4)
		if int64(len(rest)) < total {
			// Torn record: fewer bytes on disk than the header promises.
			return base, recs, off, nil
		}
		typ := rest[4]
		payload := rest[5 : 5+n]
		crc := crc32.NewIEEE()
		crc.Write([]byte{typ})
		crc.Write(payload)
		if got := binary.LittleEndian.Uint32(rest[5+n:]); got != crc.Sum32() {
			// The record is complete on disk but its bytes are wrong:
			// that is corruption, not a torn write.
			return 0, nil, 0, corruptf("wal: record at offset %d CRC mismatch", off)
		}
		rec, err := decodeWALRecord(typ, payload)
		if err != nil {
			return 0, nil, 0, fmt.Errorf("wal record at offset %d: %w", off, err)
		}
		recs = append(recs, rec)
		off += total
	}
}

// decodeWALRecord turns one validated record body into a Record.
func decodeWALRecord(typ byte, payload []byte) (Record, error) {
	switch typ {
	case recAppend:
		ar, err := decodeAppendRecord(payload)
		if err != nil {
			return Record{}, err
		}
		return Record{Append: ar}, nil
	case recRelease:
		r := &byteReader{b: payload}
		rr, err := decodeReleaseRecord(r)
		if err != nil {
			return Record{}, err
		}
		if r.remaining() != 0 {
			return Record{}, corruptf("release record has %d trailing bytes", r.remaining())
		}
		return Record{Release: &rr}, nil
	default:
		return Record{}, corruptf("wal: unknown record type %d", typ)
	}
}

// walWriter owns an open WAL file handle positioned at its end.
type walWriter struct {
	f       *os.File
	size    int64
	fsync   bool
	onFsync func(time.Duration) // observes each commit fsync's latency
}

// createWAL starts a fresh WAL based at version, fsyncing the header (and
// the directory entry) so the file survives a crash immediately after
// creation.
func createWAL(path string, version int64, fsync bool) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := walHeader(version)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	if fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &walWriter{f: f, size: int64(len(hdr)), fsync: fsync}, nil
}

// openWALForAppend reopens an existing WAL, truncates it to goodSize
// (discarding any torn tail) and positions writes at the end.
func openWALForAppend(path string, goodSize int64, fsync bool) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(goodSize); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(goodSize, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &walWriter{f: f, size: goodSize, fsync: fsync}, nil
}

// append frames and writes one record, fsyncing when configured. The
// record is durable when append returns nil (with fsync on).
func (w *walWriter) append(typ byte, payload []byte) error {
	rec := encodeRecord(typ, payload)
	if _, err := w.f.Write(rec); err != nil {
		return err
	}
	if w.fsync {
		start := time.Now()
		if err := w.f.Sync(); err != nil {
			return err
		}
		if w.onFsync != nil {
			w.onFsync(time.Since(start))
		}
	}
	w.size += int64(len(rec))
	return nil
}

func (w *walWriter) close() error { return w.f.Close() }
