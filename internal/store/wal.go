package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"
)

// WAL file layout (all integers little-endian unless varint):
//
//	magic "CKPW" | uint32 FormatVersion | int64 base snapshot version
//	record*
//
// Each record:
//
//	uint32 payload length | uint8 type | payload | uint32 CRC32(type+payload)
//
// A crash mid-write can leave fewer bytes than the length header promises;
// that torn tail is tolerated and truncated on open. A complete record
// whose CRC does not match is ErrCorrupt.
const (
	walMagic     = "CKPW"
	walHeaderLen = 4 + 4 + 8

	recAppend  = 1
	recRelease = 2
)

// Record is one replayed WAL record: exactly one of Append or Release is
// set.
type Record struct {
	// Append holds an append batch, when the record is one.
	Append *AppendRecord
	// Release holds a release record, when the record is one.
	Release *ReleaseRecord
}

// AppendRecord is one durably logged append batch.
type AppendRecord struct {
	// Version is the dataset version the batch produced (the PR-5 counter
	// after the append). Replay asserts the in-memory append reproduces it.
	Version int64
	// Rows holds the appended rows in schema column order.
	Rows [][]string
}

// encodeAppendRecord renders an append record payload.
func encodeAppendRecord(ar *AppendRecord) []byte {
	var b []byte
	b = binary.AppendVarint(b, ar.Version)
	b = binary.AppendUvarint(b, uint64(len(ar.Rows)))
	for _, row := range ar.Rows {
		b = binary.AppendUvarint(b, uint64(len(row)))
		for _, v := range row {
			b = appendString(b, v)
		}
	}
	return b
}

// decodeAppendRecord is the inverse of encodeAppendRecord.
func decodeAppendRecord(payload []byte) (*AppendRecord, error) {
	r := &byteReader{b: payload}
	ar := &AppendRecord{}
	var err error
	if ar.Version, err = r.varint(); err != nil {
		return nil, err
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.remaining()) {
		return nil, corruptf("append record claims %d rows with %d bytes left", n, r.remaining())
	}
	ar.Rows = make([][]string, n)
	for i := range ar.Rows {
		w, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if w > uint64(r.remaining()) {
			return nil, corruptf("append row claims %d values with %d bytes left", w, r.remaining())
		}
		row := make([]string, w)
		for j := range row {
			if row[j], err = r.string(); err != nil {
				return nil, err
			}
		}
		ar.Rows[i] = row
	}
	if r.remaining() != 0 {
		return nil, corruptf("append record has %d trailing bytes", r.remaining())
	}
	return ar, nil
}

// encodeRecord frames one record for the WAL.
func encodeRecord(typ byte, payload []byte) []byte {
	b := make([]byte, 0, 4+1+len(payload)+4)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, typ)
	b = append(b, payload...)
	crc := crc32.NewIEEE()
	crc.Write([]byte{typ})
	crc.Write(payload)
	return binary.LittleEndian.AppendUint32(b, crc.Sum32())
}

// walHeader renders the fixed file header for a WAL based at version.
func walHeader(version int64) []byte {
	b := append([]byte(walMagic), 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(b[4:], FormatVersion)
	return binary.LittleEndian.AppendUint64(b, uint64(version))
}

// parseWALHeader validates the fixed file header and returns the base
// snapshot version it names. Too short, wrong magic, or a format this
// build does not read are all errors (ErrCorrupt / ErrFormatVersion).
func parseWALHeader(b []byte) (int64, error) {
	if len(b) < walHeaderLen {
		return 0, corruptf("wal: file shorter than header")
	}
	if string(b[:4]) != walMagic {
		return 0, corruptf("wal: bad magic")
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != FormatVersion {
		return 0, fmt.Errorf("%w: wal format %d, this build reads %d", ErrFormatVersion, v, FormatVersion)
	}
	return int64(binary.LittleEndian.Uint64(b[8:])), nil
}

// scanRecord decodes the first record frame of b, which begins at
// absolute WAL byte offset off (offsets appear in error text so corrupt
// frames are locatable on disk). n == 0 with a nil error means the frame
// is incomplete — torn by a crash, or simply not all shipped yet when b
// is a stream prefix; the caller decides which. A complete frame whose
// CRC or payload is wrong is ErrCorrupt.
func scanRecord(b []byte, off int64) (rec Record, n int64, err error) {
	if len(b) < 4+1 {
		// Not even the length header and type landed.
		return Record{}, 0, nil
	}
	plen := binary.LittleEndian.Uint32(b)
	total := int64(4+1) + int64(plen) + 4
	if int64(len(b)) < total {
		// Fewer bytes than the length header promises.
		return Record{}, 0, nil
	}
	typ := b[4]
	payload := b[5 : 5+plen]
	crc := crc32.NewIEEE()
	crc.Write([]byte{typ})
	crc.Write(payload)
	if got := binary.LittleEndian.Uint32(b[5+plen:]); got != crc.Sum32() {
		// The frame is complete but its bytes are wrong: corruption, not
		// a torn write.
		return Record{}, 0, corruptf("wal: record at offset %d CRC mismatch", off)
	}
	rec, err = decodeWALRecord(typ, payload)
	if err != nil {
		return Record{}, 0, fmt.Errorf("wal record at offset %d: %w", off, err)
	}
	return rec, total, nil
}

// readWAL parses a WAL file: header, then every complete record. It
// returns the base snapshot version, the records, and the byte offset
// just past the last complete record — a torn tail beyond it is the
// caller's to truncate. A complete record that fails its CRC, or a
// header too short or mismatched, is ErrCorrupt.
func readWAL(path string) (base int64, recs []Record, good int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, 0, err
	}
	if base, err = parseWALHeader(data); err != nil {
		return 0, nil, 0, err
	}
	off := int64(walHeaderLen)
	for {
		rec, n, err := scanRecord(data[off:], off)
		if err != nil {
			return 0, nil, 0, err
		}
		if n == 0 {
			return base, recs, off, nil
		}
		recs = append(recs, rec)
		off += n
	}
}

// decodeWALRecord turns one validated record body into a Record.
func decodeWALRecord(typ byte, payload []byte) (Record, error) {
	switch typ {
	case recAppend:
		ar, err := decodeAppendRecord(payload)
		if err != nil {
			return Record{}, err
		}
		return Record{Append: ar}, nil
	case recRelease:
		r := &byteReader{b: payload}
		rr, err := decodeReleaseRecord(r)
		if err != nil {
			return Record{}, err
		}
		if r.remaining() != 0 {
			return Record{}, corruptf("release record has %d trailing bytes", r.remaining())
		}
		return Record{Release: &rr}, nil
	default:
		return Record{}, corruptf("wal: unknown record type %d", typ)
	}
}

// walWriter owns an open WAL file handle positioned at its end.
type walWriter struct {
	f       *os.File
	size    int64
	fsync   bool
	onFsync func(time.Duration) // observes each commit fsync's latency
}

// createWAL starts a fresh WAL based at version, fsyncing the header (and
// the directory entry) so the file survives a crash immediately after
// creation.
func createWAL(path string, version int64, fsync bool) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := walHeader(version)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	if fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &walWriter{f: f, size: int64(len(hdr)), fsync: fsync}, nil
}

// openWALForAppend reopens an existing WAL, truncates it to goodSize
// (discarding any torn tail) and positions writes at the end.
func openWALForAppend(path string, goodSize int64, fsync bool) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(goodSize); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(goodSize, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &walWriter{f: f, size: goodSize, fsync: fsync}, nil
}

// append frames and writes one record, fsyncing when configured. The
// record is durable when append returns nil (with fsync on).
func (w *walWriter) append(typ byte, payload []byte) error {
	rec := encodeRecord(typ, payload)
	if _, err := w.f.Write(rec); err != nil {
		return err
	}
	if w.fsync {
		start := time.Now()
		if err := w.f.Sync(); err != nil {
			return err
		}
		if w.onFsync != nil {
			w.onFsync(time.Since(start))
		}
	}
	w.size += int64(len(rec))
	return nil
}

func (w *walWriter) close() error { return w.f.Close() }
