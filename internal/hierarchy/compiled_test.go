package hierarchy

import "testing"

// TestCompileParity pins the compiled-form contract: for every ground
// code and level, Value(l, Lut(l)[c]) equals the interface Generalize.
func TestCompileParity(t *testing.T) {
	domain := []string{"3", "17", "0", "42", "9", "17", "25"}
	hs := []Hierarchy{
		MustInterval("Age", []int{1, 5, 25, 0}),
		NewSuppression("Tag", domain),
		MustLevelled("Job", []string{"a", "b", "c", "d"}, []map[string]string{
			{"a": "x", "b": "x", "c": "y", "d": "y"},
			{"a": "*", "b": "*", "c": "*", "d": "*"},
		}),
	}
	domains := [][]string{domain, domain, {"c", "a", "d", "b"}}
	for i, h := range hs {
		c, err := Compile(h, domains[i])
		if err != nil {
			t.Fatalf("%s: %v", h.Name(), err)
		}
		if c.Levels() != h.Levels() {
			t.Fatalf("%s: Levels = %d, want %d", h.Name(), c.Levels(), h.Levels())
		}
		for l := 0; l < h.Levels(); l++ {
			lut := c.Lut(l)
			seen := make(map[uint32]bool)
			for code, v := range domains[i] {
				want, err := h.Generalize(v, l)
				if err != nil {
					t.Fatalf("%s: Generalize(%q, %d): %v", h.Name(), v, l, err)
				}
				if got := c.Value(l, lut[code]); got != want {
					t.Fatalf("%s level %d code %d: compiled %q, want %q", h.Name(), l, code, got, want)
				}
				seen[lut[code]] = true
			}
			if len(seen) != c.Cardinality(l) {
				t.Fatalf("%s level %d: cardinality %d but %d codes reachable",
					h.Name(), l, c.Cardinality(l), len(seen))
			}
		}
	}
}

// splitter is a custom Hierarchy violating the nested-coarsening law:
// "a" and "b" agree at level 1 but split at level 2.
type splitter struct{}

func (splitter) Name() string { return "bad" }
func (splitter) Levels() int  { return 3 }
func (splitter) Generalize(v string, level int) (string, error) {
	switch level {
	case 0:
		return v, nil
	case 1:
		if v == "c" {
			return "y", nil
		}
		return "x", nil
	default:
		if v == "a" {
			return "p", nil
		}
		return "q", nil
	}
}

// TestCompileRejectsNonNested pins the safety check behind incremental
// coarsening: a custom Hierarchy whose levels are not nested coarsenings
// must fail compilation (so callers stay on the per-node scan paths)
// instead of silently mis-partitioning derived bucketizations.
func TestCompileRejectsNonNested(t *testing.T) {
	if _, err := Compile(splitter{}, []string{"a", "b", "c"}); err == nil {
		t.Fatal("Compile accepted a hierarchy violating the nested-coarsening law")
	}
}

// TestCompileUnknownValue pins eager failure on values the hierarchy
// cannot generalize — the same inputs the row-by-row path rejects lazily.
func TestCompileUnknownValue(t *testing.T) {
	h := MustLevelled("Job", []string{"a", "b"}, []map[string]string{{"a": "*", "b": "*"}})
	if _, err := Compile(h, []string{"a", "zzz"}); err == nil {
		t.Fatal("Compile accepted a value outside the hierarchy domain")
	}
	iv := MustInterval("Age", []int{1, 10, 0})
	if _, err := Compile(iv, []string{"12", "not-a-number"}); err == nil {
		t.Fatal("Compile accepted a non-integer for an interval hierarchy")
	}
}
