// Package hierarchy implements domain generalization hierarchies (DGH) for
// full-domain generalization. A hierarchy maps a ground value to
// progressively coarser representations: level 0 is the identity and the top
// level is usually total suppression ("*").
//
// The key law, relied on by the lattice search, is that levels are nested
// coarsenings: if two values generalize equally at level j they generalize
// equally at every level j' > j.
package hierarchy

import (
	"fmt"
	"strconv"
)

// Suppressed is the conventional representation of a fully suppressed value.
const Suppressed = "*"

// Hierarchy is a domain generalization hierarchy over one attribute.
type Hierarchy interface {
	// Name returns the attribute name the hierarchy applies to.
	Name() string
	// Levels returns the number of generalization levels. Valid levels are
	// 0 .. Levels()-1; level 0 is the identity.
	Levels() int
	// Generalize maps a ground value to its representation at the given
	// level. It returns an error for unknown values or levels.
	Generalize(value string, level int) (string, error)
}

// Interval generalizes integer values into fixed-width, zero-anchored
// intervals. Width 1 means the identity and width 0 means suppression.
type Interval struct {
	name string
	// widths[l] is the interval width at level l; 0 denotes suppression.
	widths []int
}

// NewInterval builds an interval hierarchy. widths must start with 1 (the
// identity level), be strictly increasing while positive, and may end with
// one or more 0 entries (suppression).
func NewInterval(name string, widths []int) (*Interval, error) {
	if len(widths) == 0 {
		return nil, fmt.Errorf("hierarchy: %s: no levels", name)
	}
	if widths[0] != 1 {
		return nil, fmt.Errorf("hierarchy: %s: level 0 width must be 1, got %d", name, widths[0])
	}
	for i := 1; i < len(widths); i++ {
		prev, cur := widths[i-1], widths[i]
		switch {
		case cur == 0:
			// Suppression; everything after must also be suppression.
		case prev == 0:
			return nil, fmt.Errorf("hierarchy: %s: width %d after suppression at level %d", name, cur, i)
		case cur <= prev:
			return nil, fmt.Errorf("hierarchy: %s: widths must increase (level %d: %d after %d)", name, i, cur, prev)
		case cur%prev != 0:
			// Divisibility guarantees the nested-coarsening law for
			// zero-anchored intervals.
			return nil, fmt.Errorf("hierarchy: %s: width %d at level %d not a multiple of %d", name, cur, i, prev)
		}
	}
	return &Interval{name: name, widths: widths}, nil
}

// MustInterval is NewInterval for statically known hierarchies.
func MustInterval(name string, widths []int) *Interval {
	h, err := NewInterval(name, widths)
	if err != nil {
		panic(err)
	}
	return h
}

// Name implements Hierarchy.
func (h *Interval) Name() string { return h.name }

// Levels implements Hierarchy.
func (h *Interval) Levels() int { return len(h.widths) }

// Generalize implements Hierarchy. At width w > 1 the value n maps to the
// half-open interval [floor(n/w)*w, floor(n/w)*w + w) rendered as "lo-hi".
func (h *Interval) Generalize(value string, level int) (string, error) {
	if level < 0 || level >= len(h.widths) {
		return "", fmt.Errorf("hierarchy: %s: level %d out of range [0, %d)", h.name, level, len(h.widths))
	}
	w := h.widths[level]
	if w == 0 {
		return Suppressed, nil
	}
	n, err := strconv.Atoi(value)
	if err != nil {
		return "", fmt.Errorf("hierarchy: %s: %q is not an integer", h.name, value)
	}
	if w == 1 {
		return strconv.Itoa(n), nil
	}
	lo := (n / w) * w
	if n < 0 && n%w != 0 {
		lo -= w
	}
	return fmt.Sprintf("%d-%d", lo, lo+w-1), nil
}

// Levelled generalizes categorical values through explicit per-level maps.
type Levelled struct {
	name string
	// maps[l] maps a ground value to its level-l representation, for
	// l >= 1. Level 0 is the identity.
	maps []map[string]string
}

// NewLevelled builds a categorical hierarchy from per-level maps over the
// ground domain. Each map must cover the whole domain, and the levels must
// be nested coarsenings of one another.
func NewLevelled(name string, domain []string, levelMaps []map[string]string) (*Levelled, error) {
	if len(domain) == 0 {
		return nil, fmt.Errorf("hierarchy: %s: empty domain", name)
	}
	for l, m := range levelMaps {
		for _, v := range domain {
			if _, ok := m[v]; !ok {
				return nil, fmt.Errorf("hierarchy: %s: level %d does not map %q", name, l+1, v)
			}
		}
	}
	// Verify nesting: equal at level l implies equal at level l+1.
	for l := 0; l+1 < len(levelMaps); l++ {
		coarser := make(map[string]string) // level-l value -> level-l+1 value
		for _, v := range domain {
			cur, next := levelMaps[l][v], levelMaps[l+1][v]
			if prev, ok := coarser[cur]; ok && prev != next {
				return nil, fmt.Errorf("hierarchy: %s: level %d splits %q (%q vs %q)", name, l+2, cur, prev, next)
			}
			coarser[cur] = next
		}
	}
	return &Levelled{name: name, maps: levelMaps}, nil
}

// MustLevelled is NewLevelled for statically known hierarchies.
func MustLevelled(name string, domain []string, levelMaps []map[string]string) *Levelled {
	h, err := NewLevelled(name, domain, levelMaps)
	if err != nil {
		panic(err)
	}
	return h
}

// Name implements Hierarchy.
func (h *Levelled) Name() string { return h.name }

// Levels implements Hierarchy.
func (h *Levelled) Levels() int { return len(h.maps) + 1 }

// Generalize implements Hierarchy.
func (h *Levelled) Generalize(value string, level int) (string, error) {
	if level < 0 || level > len(h.maps) {
		return "", fmt.Errorf("hierarchy: %s: level %d out of range [0, %d]", h.name, level, len(h.maps))
	}
	if level == 0 {
		return value, nil
	}
	g, ok := h.maps[level-1][value]
	if !ok {
		return "", fmt.Errorf("hierarchy: %s: unknown value %q", h.name, value)
	}
	return g, nil
}

// NewSuppression builds the common two-level hierarchy: identity, then "*".
func NewSuppression(name string, domain []string) *Levelled {
	m := make(map[string]string, len(domain))
	for _, v := range domain {
		m[v] = Suppressed
	}
	return &Levelled{name: name, maps: []map[string]string{m}}
}

// Set is the collection of hierarchies for a table's quasi-identifiers,
// keyed by attribute name.
type Set map[string]Hierarchy

// Dims returns the level counts for the named attributes, in order. This is
// the shape of the full-domain generalization lattice.
func (s Set) Dims(names []string) ([]int, error) {
	dims := make([]int, len(names))
	for i, n := range names {
		h, ok := s[n]
		if !ok {
			return nil, fmt.Errorf("hierarchy: no hierarchy for attribute %q", n)
		}
		dims[i] = h.Levels()
	}
	return dims, nil
}
