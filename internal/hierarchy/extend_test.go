package hierarchy

import (
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"testing"
)

// requireSameCompiled asserts two compiled hierarchies agree on every LUT
// entry and every interned generalized string.
func requireSameCompiled(t *testing.T, want, got *Compiled, label string) {
	t.Helper()
	if want.Levels() != got.Levels() {
		t.Fatalf("%s: %d levels, want %d", label, got.Levels(), want.Levels())
	}
	for l := 0; l < want.Levels(); l++ {
		if !reflect.DeepEqual(want.lut[l], got.lut[l]) {
			t.Fatalf("%s: level %d lut %v, want %v", label, l, got.lut[l], want.lut[l])
		}
		if !reflect.DeepEqual(want.values[l], got.values[l]) {
			t.Fatalf("%s: level %d values %v, want %v", label, l, got.values[l], want.values[l])
		}
	}
}

// TestExtendMatchesFullCompile is the extension-parity property: compiling
// a domain prefix and extending with the suffix must be byte-identical to
// compiling the full domain, including brand-new generalized codes.
func TestExtendMatchesFullCompile(t *testing.T) {
	h := MustInterval("Age", []int{1, 5, 25, 0})
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 40; i++ {
		full := make([]string, 0, 30)
		seen := map[string]bool{}
		for len(full) < 5+rng.Intn(25) {
			v := strconv.Itoa(rng.Intn(100))
			if !seen[v] {
				seen[v] = true
				full = append(full, v)
			}
		}
		cut := 1 + rng.Intn(len(full))
		base, err := Compile(h, full[:cut])
		if err != nil {
			t.Fatalf("case %d: compile prefix: %v", i, err)
		}
		ext, err := base.Extend(h, full)
		if err != nil {
			t.Fatalf("case %d: extend: %v", i, err)
		}
		want, err := Compile(h, full)
		if err != nil {
			t.Fatalf("case %d: compile full: %v", i, err)
		}
		requireSameCompiled(t, want, ext, fmt.Sprintf("case %d cut %d", i, cut))

		// The original stays pinned at the prefix domain.
		if got := len(base.Lut(0)); got != cut {
			t.Fatalf("case %d: extend mutated the receiver (domain %d, want %d)", i, got, cut)
		}
	}
}

// TestExtendRejectsUngeneralizable checks extension fails cleanly when the
// hierarchy cannot place an appended value, leaving the receiver intact.
func TestExtendRejectsUngeneralizable(t *testing.T) {
	domain := []string{"a", "b"}
	h := NewSuppression("City", domain)
	c, err := Compile(h, domain)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Extend(h, []string{"a", "b", "zzz"}); err == nil {
		t.Fatal("extend accepted a value outside the suppression domain")
	}
	if got := len(c.Lut(0)); got != 2 {
		t.Fatalf("failed extend mutated the receiver: domain %d", got)
	}
	if _, err := c.Extend(h, []string{"a"}); err == nil {
		t.Fatal("extend accepted a shrinking domain")
	}
}
