package hierarchy

import (
	"fmt"
	"strconv"
	"testing"
	"testing/quick"
)

func TestNewIntervalValidation(t *testing.T) {
	cases := []struct {
		name    string
		widths  []int
		wantErr bool
	}{
		{"empty", nil, true},
		{"first not 1", []int{5, 10}, true},
		{"not increasing", []int{1, 10, 5}, true},
		{"not divisible", []int{1, 5, 12}, true},
		{"width after suppression", []int{1, 5, 0, 10}, true},
		{"ok plain", []int{1, 5, 10, 20, 40, 0}, false},
		{"ok identity only", []int{1}, false},
		{"ok double suppression", []int{1, 0, 0}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewInterval("Age", c.widths)
			if (err != nil) != c.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, c.wantErr)
			}
		})
	}
}

func TestIntervalGeneralize(t *testing.T) {
	h := MustInterval("Age", []int{1, 5, 10, 20, 40, 0})
	if h.Name() != "Age" || h.Levels() != 6 {
		t.Fatalf("Name/Levels = %q/%d", h.Name(), h.Levels())
	}
	cases := []struct {
		value string
		level int
		want  string
	}{
		{"23", 0, "23"},
		{"23", 1, "20-24"},
		{"23", 2, "20-29"},
		{"23", 3, "20-39"},
		{"23", 4, "0-39"},
		{"23", 5, "*"},
		{"40", 4, "40-79"},
		{"0", 1, "0-4"},
		{"99", 3, "80-99"},
	}
	for _, c := range cases {
		got, err := h.Generalize(c.value, c.level)
		if err != nil {
			t.Errorf("Generalize(%q, %d): %v", c.value, c.level, err)
			continue
		}
		if got != c.want {
			t.Errorf("Generalize(%q, %d) = %q, want %q", c.value, c.level, got, c.want)
		}
	}
	if _, err := h.Generalize("abc", 1); err == nil {
		t.Error("non-integer accepted")
	}
	if _, err := h.Generalize("23", 6); err == nil {
		t.Error("out-of-range level accepted")
	}
	if _, err := h.Generalize("23", -1); err == nil {
		t.Error("negative level accepted")
	}
}

func TestIntervalNegativeValues(t *testing.T) {
	h := MustInterval("T", []int{1, 10})
	got, err := h.Generalize("-3", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != "-10--1" {
		t.Errorf("Generalize(-3, 1) = %q", got)
	}
	got, _ = h.Generalize("-10", 1)
	if got != "-10--1" {
		t.Errorf("Generalize(-10, 1) = %q", got)
	}
}

var maritalDomain = []string{"single", "married", "divorced", "widowed"}

func maritalHierarchy() *Levelled {
	return MustLevelled("Marital", maritalDomain, []map[string]string{
		{
			"single": "alone", "married": "partnered",
			"divorced": "alone", "widowed": "alone",
		},
		{
			"single": "*", "married": "*", "divorced": "*", "widowed": "*",
		},
	})
}

func TestLevelledGeneralize(t *testing.T) {
	h := maritalHierarchy()
	if h.Levels() != 3 || h.Name() != "Marital" {
		t.Fatalf("Levels/Name = %d/%q", h.Levels(), h.Name())
	}
	cases := []struct {
		value string
		level int
		want  string
	}{
		{"married", 0, "married"},
		{"married", 1, "partnered"},
		{"divorced", 1, "alone"},
		{"divorced", 2, "*"},
	}
	for _, c := range cases {
		got, err := h.Generalize(c.value, c.level)
		if err != nil || got != c.want {
			t.Errorf("Generalize(%q, %d) = %q, %v; want %q", c.value, c.level, got, err, c.want)
		}
	}
	if _, err := h.Generalize("unknown", 1); err == nil {
		t.Error("unknown value accepted")
	}
	if _, err := h.Generalize("married", 3); err == nil {
		t.Error("out-of-range level accepted")
	}
}

func TestNewLevelledValidation(t *testing.T) {
	if _, err := NewLevelled("X", nil, nil); err == nil {
		t.Error("empty domain accepted")
	}
	// Missing value in a level map.
	if _, err := NewLevelled("X", []string{"a", "b"}, []map[string]string{{"a": "g"}}); err == nil {
		t.Error("incomplete level map accepted")
	}
	// Non-nested levels: a and b merge at level 1 but split at level 2.
	_, err := NewLevelled("X", []string{"a", "b"}, []map[string]string{
		{"a": "g", "b": "g"},
		{"a": "p", "b": "q"},
	})
	if err == nil {
		t.Error("non-nested hierarchy accepted")
	}
}

func TestNewSuppression(t *testing.T) {
	h := NewSuppression("Sex", []string{"M", "F"})
	if h.Levels() != 2 {
		t.Fatalf("Levels = %d", h.Levels())
	}
	got, err := h.Generalize("M", 1)
	if err != nil || got != Suppressed {
		t.Errorf("Generalize(M,1) = %q, %v", got, err)
	}
	got, err = h.Generalize("F", 0)
	if err != nil || got != "F" {
		t.Errorf("Generalize(F,0) = %q, %v", got, err)
	}
}

func TestSetDims(t *testing.T) {
	s := Set{
		"Age": MustInterval("Age", []int{1, 5, 0}),
		"Sex": NewSuppression("Sex", []string{"M", "F"}),
	}
	dims, err := s.Dims([]string{"Age", "Sex"})
	if err != nil {
		t.Fatal(err)
	}
	if len(dims) != 2 || dims[0] != 3 || dims[1] != 2 {
		t.Errorf("Dims = %v", dims)
	}
	if _, err := s.Dims([]string{"Race"}); err == nil {
		t.Error("missing hierarchy accepted")
	}
}

// TestNestedCoarseningProperty checks the law the lattice search relies on:
// for any values x, y and levels j < j', equal generalizations at level j
// imply equal generalizations at level j'.
func TestNestedCoarseningProperty(t *testing.T) {
	age := MustInterval("Age", []int{1, 5, 10, 20, 40, 0})
	f := func(a, b uint8, lvl uint8) bool {
		x, y := int(a%100), int(b%100)
		j := int(lvl) % (age.Levels() - 1)
		gx, err1 := age.Generalize(strconv.Itoa(x), j)
		gy, err2 := age.Generalize(strconv.Itoa(y), j)
		if err1 != nil || err2 != nil {
			return false
		}
		if gx != gy {
			return true // premise false
		}
		for jj := j + 1; jj < age.Levels(); jj++ {
			hx, err1 := age.Generalize(strconv.Itoa(x), jj)
			hy, err2 := age.Generalize(strconv.Itoa(y), jj)
			if err1 != nil || err2 != nil || hx != hy {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestIntervalContainsValue checks that a value always falls inside its own
// generalized interval.
func TestIntervalContainsValue(t *testing.T) {
	age := MustInterval("Age", []int{1, 5, 10, 20, 40, 0})
	f := func(a uint8, lvl uint8) bool {
		n := int(a % 120)
		level := int(lvl) % age.Levels()
		g, err := age.Generalize(strconv.Itoa(n), level)
		if err != nil {
			return false
		}
		if g == Suppressed {
			return true
		}
		if level == 0 {
			return g == strconv.Itoa(n)
		}
		var lo, hi int
		if _, err := fmt.Sscanf(g, "%d-%d", &lo, &hi); err != nil {
			return false
		}
		return lo <= n && n <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMustPanics(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("MustInterval", func() { MustInterval("X", []int{2}) })
	assertPanics("MustLevelled", func() { MustLevelled("X", nil, nil) })
}
