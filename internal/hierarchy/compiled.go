package hierarchy

import "fmt"

// Compiled is a hierarchy specialized to one concrete ground domain (a
// table column's dictionary, in code order): for every level, a dense
// lookup table from a level-0 code to its generalized code, plus the
// interned string of every generalized code. Generalizing a value becomes
// one array index instead of a map lookup and string churn; the strings
// are only touched when a bucket key is materialized, once per bucket
// rather than once per row.
//
// Invariants:
//   - Lut(0) is the identity and Value(0, c) == domain[c].
//   - Value(l, Lut(l)[c]) == h.Generalize(domain[c], l) for every level l
//     and ground code c — compiled generalization is byte-identical to the
//     interface it was compiled from.
//   - Generalized codes are assigned by first appearance in ground-code
//     order, so compilation is deterministic.
type Compiled struct {
	name string
	// lut[l][c] is the generalized code of ground code c at level l.
	lut [][]uint32
	// values[l][g] is the string of generalized code g at level l.
	values [][]string
}

// Compile specializes h to the ground domain (one string per level-0
// code, in code order). It fails if h cannot generalize some domain value
// at some level — the same values and levels the row-by-row path would
// fail on, surfaced eagerly — or if the hierarchy violates the
// nested-coarsening law over this domain (values equal at level l must
// stay equal at every level above). The built-in hierarchies enforce the
// law at construction, but Hierarchy is an open interface; the
// incremental coarsening derivation is only exact under the law, so a
// violating custom implementation must fail compilation (sending callers
// to the per-node scan paths, which are correct regardless) rather than
// silently mis-partition.
func Compile(h Hierarchy, domain []string) (*Compiled, error) {
	levels := h.Levels()
	c := &Compiled{
		name:   h.Name(),
		lut:    make([][]uint32, levels),
		values: make([][]string, levels),
	}
	// Level 0 is the identity over the ground domain.
	id := make([]uint32, len(domain))
	for i := range id {
		id[i] = uint32(i)
	}
	c.lut[0] = id
	c.values[0] = append([]string(nil), domain...)
	for l := 1; l < levels; l++ {
		lut := make([]uint32, len(domain))
		interned := make(map[string]uint32)
		var vals []string
		for i, v := range domain {
			g, err := h.Generalize(v, l)
			if err != nil {
				return nil, fmt.Errorf("hierarchy: compiling %s level %d: %w", h.Name(), l, err)
			}
			code, ok := interned[g]
			if !ok {
				code = uint32(len(vals))
				vals = append(vals, g)
				interned[g] = code
			}
			lut[i] = code
		}
		// Nesting check: the level-l code must be a function of the
		// level-(l-1) code.
		prev := c.lut[l-1]
		coarser := make(map[uint32]uint32, len(vals))
		for i := range domain {
			if g, ok := coarser[prev[i]]; ok && g != lut[i] {
				return nil, fmt.Errorf(
					"hierarchy: compiling %s: level %d splits %q (into %q and %q) — levels are not nested coarsenings",
					h.Name(), l, c.values[l-1][prev[i]], vals[g], vals[lut[i]])
			}
			coarser[prev[i]] = lut[i]
		}
		c.lut[l] = lut
		c.values[l] = vals
	}
	return c, nil
}

// Extend compiles the appended suffix of a grown ground domain onto a
// copy of the compiled hierarchy: domain must begin with the ground values
// the hierarchy was compiled over (in the same code order), followed by
// the newly appended values. Existing ground and generalized codes keep
// their assignments — new generalized codes are interned by first
// appearance in ground-code order, exactly as Compile would assign them on
// the full domain — so Extend(h, grown) is byte-identical to
// Compile(h, grown). The receiver is not modified: snapshots of the
// pre-append state keep decoding against the original tables.
func (c *Compiled) Extend(h Hierarchy, domain []string) (*Compiled, error) {
	old := len(c.lut[0])
	if len(domain) < old {
		return nil, fmt.Errorf(
			"hierarchy: extending %s: domain shrank from %d to %d values", c.name, old, len(domain))
	}
	out := &Compiled{
		name:   c.name,
		lut:    make([][]uint32, len(c.lut)),
		values: make([][]string, len(c.values)),
	}
	// Level 0 stays the identity over the grown domain.
	id := make([]uint32, len(domain))
	for i := range id {
		id[i] = uint32(i)
	}
	out.lut[0] = id
	out.values[0] = append([]string(nil), domain...)
	for l := 1; l < len(c.lut); l++ {
		lut := make([]uint32, len(domain))
		copy(lut, c.lut[l])
		vals := append([]string(nil), c.values[l]...)
		interned := make(map[string]uint32, len(vals))
		for g, v := range vals {
			interned[v] = uint32(g)
		}
		for i := old; i < len(domain); i++ {
			g, err := h.Generalize(domain[i], l)
			if err != nil {
				return nil, fmt.Errorf("hierarchy: extending %s level %d: %w", c.name, l, err)
			}
			code, ok := interned[g]
			if !ok {
				code = uint32(len(vals))
				vals = append(vals, g)
				interned[g] = code
			}
			lut[i] = code
		}
		// Nesting check over the appended codes: level l must still be a
		// function of level l-1 across the whole grown domain.
		prev := out.lut[l-1]
		coarser := make(map[uint32]uint32, len(vals))
		for i := range domain {
			if g, ok := coarser[prev[i]]; ok && g != lut[i] {
				return nil, fmt.Errorf(
					"hierarchy: extending %s: level %d splits %q (into %q and %q) — levels are not nested coarsenings",
					c.name, l, out.values[l-1][prev[i]], vals[g], vals[lut[i]])
			}
			coarser[prev[i]] = lut[i]
		}
		out.lut[l] = lut
		out.values[l] = vals
	}
	return out, nil
}

// Name returns the attribute name the compiled hierarchy applies to.
func (c *Compiled) Name() string { return c.name }

// Levels returns the number of generalization levels.
func (c *Compiled) Levels() int { return len(c.lut) }

// Lut returns the level's ground-code → generalized-code table. The
// returned slice is the compiled backing storage and must not be
// modified.
func (c *Compiled) Lut(level int) []uint32 { return c.lut[level] }

// Cardinality returns the number of distinct generalized codes at the
// level.
func (c *Compiled) Cardinality(level int) int { return len(c.values[level]) }

// Value decodes a generalized code at the given level.
func (c *Compiled) Value(level int, code uint32) string { return c.values[level][code] }

// CompiledSet maps attribute names to compiled hierarchies, mirroring Set
// for the encoded path.
type CompiledSet map[string]*Compiled
