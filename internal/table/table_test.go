package table

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema([]Attribute{
		{Name: "Age", Kind: Numeric, Min: 0, Max: 120},
		{Name: "Sex", Kind: Categorical, Domain: []string{"M", "F"}},
		{Name: "Disease", Kind: Categorical, Domain: []string{"flu", "cancer", "mumps"}},
	}, "Disease")
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func TestNewSchemaValidation(t *testing.T) {
	cases := []struct {
		name      string
		attrs     []Attribute
		sensitive string
		wantErr   bool
	}{
		{"empty", nil, "x", true},
		{"dup names", []Attribute{
			{Name: "A", Kind: Categorical, Domain: []string{"x"}},
			{Name: "A", Kind: Categorical, Domain: []string{"y"}},
		}, "A", true},
		{"missing sensitive", []Attribute{
			{Name: "A", Kind: Categorical, Domain: []string{"x"}},
		}, "B", true},
		{"empty categorical domain", []Attribute{
			{Name: "A", Kind: Categorical},
		}, "A", true},
		{"numeric min>max", []Attribute{
			{Name: "A", Kind: Numeric, Min: 5, Max: 1},
		}, "A", true},
		{"empty attr name", []Attribute{
			{Name: "", Kind: Numeric, Min: 0, Max: 1},
		}, "", true},
		{"ok", []Attribute{
			{Name: "A", Kind: Numeric, Min: 0, Max: 9},
			{Name: "S", Kind: Categorical, Domain: []string{"x", "y"}},
		}, "S", false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewSchema(c.attrs, c.sensitive)
			if (err != nil) != c.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, c.wantErr)
			}
		})
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := testSchema(t)
	if got := s.Index("Sex"); got != 1 {
		t.Errorf("Index(Sex) = %d, want 1", got)
	}
	if got := s.Index("Nope"); got != -1 {
		t.Errorf("Index(Nope) = %d, want -1", got)
	}
	if s.Sensitive().Name != "Disease" {
		t.Errorf("Sensitive() = %q", s.Sensitive().Name)
	}
	qi := s.QuasiIdentifiers()
	if len(qi) != 2 || qi[0] != 0 || qi[1] != 1 {
		t.Errorf("QuasiIdentifiers() = %v", qi)
	}
	if names := s.Names(); strings.Join(names, ",") != "Age,Sex,Disease" {
		t.Errorf("Names() = %v", names)
	}
}

func TestAttributeValidate(t *testing.T) {
	age := Attribute{Name: "Age", Kind: Numeric, Min: 0, Max: 120}
	if err := age.Validate("35"); err != nil {
		t.Errorf("35: %v", err)
	}
	if err := age.Validate("abc"); err == nil {
		t.Error("abc accepted")
	}
	if err := age.Validate("121"); err == nil {
		t.Error("121 accepted")
	}
	if err := age.Validate("-1"); err == nil {
		t.Error("-1 accepted")
	}
	sex := Attribute{Name: "Sex", Kind: Categorical, Domain: []string{"M", "F"}}
	if err := sex.Validate("M"); err != nil {
		t.Errorf("M: %v", err)
	}
	if err := sex.Validate("X"); err == nil {
		t.Error("X accepted")
	}
	bad := Attribute{Name: "B", Kind: Kind(42)}
	if err := bad.Validate("x"); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestKindString(t *testing.T) {
	if Categorical.String() != "categorical" || Numeric.String() != "numeric" {
		t.Error("Kind.String mismatch")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Errorf("Kind(9).String() = %q", Kind(9).String())
	}
}

func TestAppendAndAccess(t *testing.T) {
	tab := New(testSchema(t))
	if err := tab.Append(Row{"23", "M", "flu"}); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := tab.Append(Row{"23", "M"}); err == nil {
		t.Error("short row accepted")
	}
	if err := tab.Append(Row{"23", "M", "plague"}); err == nil {
		t.Error("bad sensitive value accepted")
	}
	if err := tab.Append(Row{"two", "M", "flu"}); err == nil {
		t.Error("non-numeric age accepted")
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if tab.Value(0, 1) != "M" {
		t.Errorf("Value(0,1) = %q", tab.Value(0, 1))
	}
	if tab.SensitiveValue(0) != "flu" {
		t.Errorf("SensitiveValue(0) = %q", tab.SensitiveValue(0))
	}
	if n, err := tab.Int(0, 0); err != nil || n != 23 {
		t.Errorf("Int(0,0) = %d, %v", n, err)
	}
	if _, err := tab.Int(0, 1); err == nil {
		t.Error("Int on categorical column succeeded")
	}
}

func TestMustAppendPanics(t *testing.T) {
	tab := New(testSchema(t))
	defer func() {
		if recover() == nil {
			t.Error("MustAppend did not panic on invalid row")
		}
	}()
	tab.MustAppend(Row{"23"})
}

func TestProject(t *testing.T) {
	tab := New(testSchema(t))
	tab.MustAppend(Row{"23", "M", "flu"})
	tab.MustAppend(Row{"30", "F", "cancer"})

	p, err := tab.Project("Sex", "Disease")
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if len(p.Schema.Attrs) != 2 || p.Schema.SensitiveIndex != 1 {
		t.Fatalf("projected schema = %+v", p.Schema)
	}
	if p.Value(1, 0) != "F" || p.SensitiveValue(1) != "cancer" {
		t.Errorf("projected rows = %v", p.Rows)
	}

	if _, err := tab.Project("Nope"); err == nil {
		t.Error("Project(Nope) succeeded")
	}
	if _, err := tab.Project("Age", "Sex"); err == nil {
		t.Error("Project without sensitive attribute succeeded")
	}
}

func TestFilterCloneSort(t *testing.T) {
	tab := New(testSchema(t))
	tab.MustAppend(Row{"40", "M", "flu"})
	tab.MustAppend(Row{"23", "F", "cancer"})
	tab.MustAppend(Row{"23", "M", "mumps"})

	f := tab.Filter(func(r Row) bool { return r[0] == "23" })
	if f.Len() != 2 {
		t.Fatalf("Filter kept %d rows", f.Len())
	}

	cl := tab.Clone()
	cl.Rows[0][0] = "99"
	if tab.Value(0, 0) != "40" {
		t.Error("Clone is not deep")
	}

	if err := tab.SortBy("Age", "Sex"); err != nil {
		t.Fatalf("SortBy: %v", err)
	}
	if tab.Value(0, 0) != "23" || tab.Value(0, 1) != "F" || tab.Value(2, 0) != "40" {
		t.Errorf("sorted rows = %v", tab.Rows)
	}
	if err := tab.SortBy("Nope"); err == nil {
		t.Error("SortBy(Nope) succeeded")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab := New(testSchema(t))
	tab.MustAppend(Row{"23", "M", "flu"})
	tab.MustAppend(Row{"30", "F", "cancer"})

	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf, tab.Schema)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.Len() != 2 || got.Value(1, 1) != "F" {
		t.Errorf("round trip rows = %v", got.Rows)
	}
}

func TestReadCSVErrors(t *testing.T) {
	s := testSchema(t)
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad header", "Age,Sex,Illness\n23,M,flu\n"},
		{"bad row value", "Age,Sex,Disease\n23,M,plague\n"},
		{"short row", "Age,Sex,Disease\n23,M\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(c.in), s); err == nil {
				t.Error("no error")
			}
		})
	}
}

func TestCounts(t *testing.T) {
	tab := New(testSchema(t))
	tab.MustAppend(Row{"23", "M", "flu"})
	tab.MustAppend(Row{"24", "M", "flu"})
	tab.MustAppend(Row{"25", "F", "cancer"})

	m := tab.SensitiveCounts()
	if m["flu"] != 2 || m["cancer"] != 1 {
		t.Errorf("SensitiveCounts = %v", m)
	}
	sc := tab.SortedCounts(2)
	if sc[0].Value != "flu" || sc[0].Count != 2 || sc[1].Value != "cancer" {
		t.Errorf("SortedCounts = %v", sc)
	}
}

func TestSortCountsDeterministicOrder(t *testing.T) {
	// Equal counts must be ordered by value so reports are reproducible.
	sc := SortCounts(map[string]int{"b": 1, "a": 1, "c": 2})
	if sc[0].Value != "c" || sc[1].Value != "a" || sc[2].Value != "b" {
		t.Errorf("SortCounts = %v", sc)
	}
}

func TestSortCountsProperties(t *testing.T) {
	// Property: SortCounts preserves total mass and is sorted by
	// (count desc, value asc).
	f := func(counts map[string]uint8) bool {
		in := make(map[string]int, len(counts))
		total := 0
		for k, v := range counts {
			c := int(v%7) + 1
			in[k] = c
			total += c
		}
		out := SortCounts(in)
		sum := 0
		for i, vc := range out {
			sum += vc.Count
			if in[vc.Value] != vc.Count {
				return false
			}
			if i > 0 {
				prev := out[i-1]
				if prev.Count < vc.Count {
					return false
				}
				if prev.Count == vc.Count && prev.Value >= vc.Value {
					return false
				}
			}
		}
		return sum == total && len(out) == len(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
