// Package table provides the relational substrate used throughout the
// library: schemas, row-oriented tables, CSV serialization, and value
// statistics. Every attribute value is carried as a string; numeric
// attributes additionally validate as integers so that interval
// generalization hierarchies can parse them.
package table

import (
	"fmt"
	"strconv"
)

// Kind classifies an attribute's domain.
type Kind int

const (
	// Categorical attributes take values from a finite, explicitly
	// enumerated domain.
	Categorical Kind = iota
	// Numeric attributes take integer values in [Min, Max].
	Numeric
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case Categorical:
		return "categorical"
	case Numeric:
		return "numeric"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Attribute describes one column of a table.
type Attribute struct {
	// Name is the column name; it must be unique within a schema.
	Name string
	// Kind is the attribute's domain class.
	Kind Kind
	// Domain enumerates the legal values of a categorical attribute.
	// It is ignored for numeric attributes.
	Domain []string
	// Min and Max bound the legal values of a numeric attribute
	// (inclusive). They are ignored for categorical attributes.
	Min, Max int
}

// Validate reports whether v is a legal value for the attribute.
func (a *Attribute) Validate(v string) error {
	switch a.Kind {
	case Numeric:
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("table: attribute %q: %q is not an integer", a.Name, v)
		}
		if n < a.Min || n > a.Max {
			return fmt.Errorf("table: attribute %q: %d outside [%d, %d]", a.Name, n, a.Min, a.Max)
		}
		return nil
	case Categorical:
		for _, d := range a.Domain {
			if d == v {
				return nil
			}
		}
		return fmt.Errorf("table: attribute %q: %q not in domain", a.Name, v)
	default:
		return fmt.Errorf("table: attribute %q: unknown kind %v", a.Name, a.Kind)
	}
}

// Schema is an ordered list of attributes together with the index of the
// single sensitive attribute. All remaining attributes are treated as
// non-sensitive (potential quasi-identifiers).
type Schema struct {
	Attrs []Attribute
	// SensitiveIndex is the index into Attrs of the sensitive attribute.
	SensitiveIndex int
}

// NewSchema builds a schema and validates its internal consistency.
func NewSchema(attrs []Attribute, sensitive string) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("table: schema needs at least one attribute")
	}
	seen := make(map[string]bool, len(attrs))
	si := -1
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("table: attribute %d has empty name", i)
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("table: duplicate attribute %q", a.Name)
		}
		seen[a.Name] = true
		if a.Kind == Categorical && len(a.Domain) == 0 {
			return nil, fmt.Errorf("table: categorical attribute %q has empty domain", a.Name)
		}
		if a.Kind == Numeric && a.Min > a.Max {
			return nil, fmt.Errorf("table: numeric attribute %q has Min > Max", a.Name)
		}
		if a.Name == sensitive {
			si = i
		}
	}
	if si < 0 {
		return nil, fmt.Errorf("table: sensitive attribute %q not in schema", sensitive)
	}
	return &Schema{Attrs: attrs, SensitiveIndex: si}, nil
}

// Index returns the column index of the named attribute, or -1.
func (s *Schema) Index(name string) int {
	for i, a := range s.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Sensitive returns the sensitive attribute.
func (s *Schema) Sensitive() *Attribute { return &s.Attrs[s.SensitiveIndex] }

// QuasiIdentifiers returns the indices of all non-sensitive attributes, in
// schema order.
func (s *Schema) QuasiIdentifiers() []int {
	qi := make([]int, 0, len(s.Attrs)-1)
	for i := range s.Attrs {
		if i != s.SensitiveIndex {
			qi = append(qi, i)
		}
	}
	return qi
}

// Names returns the attribute names in schema order.
func (s *Schema) Names() []string {
	names := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		names[i] = a.Name
	}
	return names
}
