package table

import (
	"fmt"
	"runtime"
	"sync"
)

// This file implements the columnar, dictionary-encoded view of a table.
// The row-oriented Table remains the source of truth and the reference
// representation; Encoded is a derived view built once per loaded table.
// Everything downstream that scans tuples repeatedly (bucketization, the
// lattice searches, the serving daemon's per-dataset warm state) computes
// over the code columns instead of the row strings.
//
// Since the streaming-append substrate, an Encoded is an append-only
// *master* view: Append grows the dictionaries and code columns (and the
// underlying Table) in place, and Snapshot pins an immutable, fixed-length
// view that is safe to share across goroutines while the master keeps
// growing. Codes are never reassigned: appends only ever add rows and
// dictionary entries, so every snapshot's codes decode to the same strings
// forever.
//
// Invariants:
//   - Dicts[c].Value(Cols[c][i]) == Table.Rows[i][c] for every row i and
//     column c: decoding always reproduces the exact original strings.
//   - Codes are assigned in order of first appearance during the row scan,
//     and appends scan their rows in order after all existing rows — so the
//     master's encoding is byte-identical to Encode on the concatenated
//     table.
//   - A Snapshot never changes: its row count, code columns and dictionary
//     lengths are pinned. Appends to the master write only beyond every
//     pinned length, so snapshot readers and a (serialized) appender never
//     touch the same memory.
//   - Append itself must be serialized by the caller (anonymize.Problem
//     holds a lock around it); concurrent readers use snapshots.

// Dict is a bidirectional dictionary between one column's value strings
// and dense uint32 codes (0..Len()-1).
type Dict struct {
	values []string
	index  map[string]uint32
}

// newDict builds an empty dictionary with capacity for n distinct values.
func newDict(n int) *Dict {
	return &Dict{index: make(map[string]uint32, n)}
}

// intern returns the code for v, assigning the next free code on first
// sight.
func (d *Dict) intern(v string) uint32 {
	if c, ok := d.index[v]; ok {
		return c
	}
	c := uint32(len(d.values))
	d.values = append(d.values, v)
	d.index[v] = c
	return c
}

// view pins the dictionary's first n codes as an immutable snapshot. The
// view drops the lookup index rather than sharing it: the master's index
// map keeps growing under Append, and a shared map would race with
// snapshot readers. Snapshot Code calls fall back to a linear scan, which
// nothing on the bucketization fast path performs.
func (d *Dict) view(n int) *Dict {
	return &Dict{values: d.values[:n:n]}
}

// Code returns the code of v and whether v occurs in the column.
func (d *Dict) Code(v string) (uint32, bool) {
	if d.index != nil {
		c, ok := d.index[v]
		return c, ok
	}
	for i, s := range d.values {
		if s == v {
			return uint32(i), true
		}
	}
	return 0, false
}

// Value decodes a code back to its string. It panics on out-of-range
// codes, mirroring slice indexing.
func (d *Dict) Value(c uint32) string { return d.values[c] }

// Values returns the dictionary's strings in code order. The returned
// slice is the dictionary's backing storage and must not be modified.
func (d *Dict) Values() []string { return d.values }

// Len returns the number of distinct values (the column's cardinality).
func (d *Dict) Len() int { return len(d.values) }

// Encoded is the columnar, dictionary-encoded view of a Table: one Dict
// and one dense code slice per column, in schema order. The sensitive
// column is encoded over its own code space like any other column; its
// dictionary doubles as the sensitive-value code space for per-bucket
// histograms.
type Encoded struct {
	// Table is the row-oriented source the view was built from. The master
	// view shares it with the caller: Append grows both together.
	Table *Table
	// Dicts holds one dictionary per column, in schema order.
	Dicts []*Dict
	// Cols holds one dense code column per attribute: Cols[c][i] is the
	// code of row i's value in column c.
	Cols [][]uint32
}

// Encode builds the columnar view in one pass over the rows.
func (t *Table) Encode() *Encoded {
	nCols := len(t.Schema.Attrs)
	e := &Encoded{
		Table: t,
		Dicts: make([]*Dict, nCols),
		Cols:  make([][]uint32, nCols),
	}
	for c := 0; c < nCols; c++ {
		e.Dicts[c] = newDict(16)
		e.Cols[c] = make([]uint32, len(t.Rows))
	}
	for i, r := range t.Rows {
		for c, v := range r {
			e.Cols[c][i] = e.Dicts[c].intern(v)
		}
	}
	return e
}

// NewEncodedFromParts rebuilds a master Encoded view from its raw
// columnar parts — per-column dictionary strings (in code order) and
// dense code columns — as recovered from a durable snapshot. It is the
// warm-boot inverse of Encode: instead of interning every row value, it
// validates each dictionary once (O(distinct values), not O(rows)),
// rebuilds the lookup indexes, and decodes the row-oriented Table by
// sharing the dictionary strings. The result upholds every master-view
// invariant, so Append and Snapshot work on it exactly as on an encoding
// built from rows.
func NewEncodedFromParts(s *Schema, dicts [][]string, cols [][]uint32) (*Encoded, error) {
	if len(dicts) != len(s.Attrs) || len(cols) != len(s.Attrs) {
		return nil, fmt.Errorf("table: schema has %d attributes, parts have %d dicts and %d columns",
			len(s.Attrs), len(dicts), len(cols))
	}
	rows := 0
	if len(cols) > 0 {
		rows = len(cols[0])
	}
	e := &Encoded{
		Table: &Table{Schema: s, Rows: make([]Row, rows)},
		Dicts: make([]*Dict, len(dicts)),
		Cols:  cols,
	}
	for c, values := range dicts {
		if len(cols[c]) != rows {
			return nil, fmt.Errorf("table: column %d has %d rows, column 0 has %d", c, len(cols[c]), rows)
		}
		d := &Dict{values: values, index: make(map[string]uint32, len(values))}
		for code, v := range values {
			if err := s.Attrs[c].Validate(v); err != nil {
				return nil, fmt.Errorf("table: column %q dictionary: %w", s.Attrs[c].Name, err)
			}
			if _, dup := d.index[v]; dup {
				return nil, fmt.Errorf("table: column %q dictionary repeats %q", s.Attrs[c].Name, v)
			}
			d.index[v] = uint32(code)
		}
		e.Dicts[c] = d
	}
	// Validate every code against its dictionary in one tight pass per
	// column, so the fill below can index without bounds branches.
	for c, col := range cols {
		limit := uint32(len(dicts[c]))
		for i, code := range col {
			if code >= limit {
				return nil, fmt.Errorf("table: column %d row %d: code %d outside dictionary of %d",
					c, i, code, limit)
			}
		}
	}
	// One flat backing array for every row — one allocation instead of one
	// per row — filled in parallel chunks: warm-boot recovery calls this on
	// its critical path, and materializing ~rows×ncols string headers is
	// the single largest cost of a restart.
	ncols := len(cols)
	backing := make([]string, rows*ncols)
	fill := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r := backing[i*ncols : (i+1)*ncols : (i+1)*ncols]
			for c := 0; c < ncols; c++ {
				r[c] = dicts[c][cols[c][i]]
			}
			e.Table.Rows[i] = Row(r)
		}
	}
	const parallelThreshold = 8192
	if workers := runtime.GOMAXPROCS(0); rows >= parallelThreshold && workers > 1 {
		chunk := (rows + workers - 1) / workers
		var wg sync.WaitGroup
		for lo := 0; lo < rows; lo += chunk {
			hi := min(lo+chunk, rows)
			wg.Add(1)
			go func() { defer wg.Done(); fill(lo, hi) }()
		}
		wg.Wait()
	} else {
		fill(0, rows)
	}
	return e, nil
}

// AppendDelta reports what one Append changed: where the new rows start
// and which dictionary codes each column gained. Callers use it to decide
// what derived state (compiled hierarchies, cached bucketizations) needs
// extending.
type AppendDelta struct {
	// Start is the row index of the first appended row.
	Start int
	// Rows is the total row count after the append.
	Rows int
	// NewCodes[c] lists the dictionary codes column c gained, in assignment
	// order; nil when the column saw no new values.
	NewCodes [][]uint32
}

// NewValueCount returns how many new dictionary values the append
// introduced in column c.
func (d *AppendDelta) NewValueCount(c int) int { return len(d.NewCodes[c]) }

// Append validates rows against the schema and appends them to both the
// underlying Table and the encoded columns, growing the per-column
// dictionaries as new values appear. Validation runs before any mutation,
// so a rejected batch leaves the view untouched. The returned delta names
// every dictionary code the batch introduced.
//
// Append writes only beyond previously pinned lengths, so existing
// Snapshots remain valid; it must not race with other Appends or with
// readers of this master view (take a Snapshot for those).
func (e *Encoded) Append(rows []Row) (AppendDelta, error) {
	s := e.Table.Schema
	for i, r := range rows {
		if len(r) != len(s.Attrs) {
			return AppendDelta{}, fmt.Errorf(
				"table: append row %d has %d values, schema has %d attributes", i, len(r), len(s.Attrs))
		}
		for c, v := range r {
			if err := s.Attrs[c].Validate(v); err != nil {
				return AppendDelta{}, fmt.Errorf("table: append row %d: %w", i, err)
			}
		}
	}
	delta := AppendDelta{
		Start:    len(e.Table.Rows),
		NewCodes: make([][]uint32, len(s.Attrs)),
	}
	for _, r := range rows {
		e.Table.Rows = append(e.Table.Rows, r)
		for c, v := range r {
			before := e.Dicts[c].Len()
			code := e.Dicts[c].intern(v)
			if e.Dicts[c].Len() > before {
				delta.NewCodes[c] = append(delta.NewCodes[c], code)
			}
			e.Cols[c] = append(e.Cols[c], code)
		}
	}
	delta.Rows = len(e.Table.Rows)
	return delta, nil
}

// Snapshot pins the view's current contents as an immutable, fixed-length
// Encoded that later Appends to this master cannot disturb: the row count,
// every code column and every dictionary are capped at their current
// lengths (three-index slices, so even an append that fits spare capacity
// cannot write into a snapshot's range), and the snapshot's Table is a
// same-schema view of the current row prefix. Snapshots are safe to share
// across goroutines while the master keeps appending.
func (e *Encoded) Snapshot() *Encoded {
	n := e.Rows()
	snap := &Encoded{
		Table: &Table{Schema: e.Table.Schema, Rows: e.Table.Rows[:n:n]},
		Dicts: make([]*Dict, len(e.Dicts)),
		Cols:  make([][]uint32, len(e.Cols)),
	}
	for c := range e.Cols {
		snap.Dicts[c] = e.Dicts[c].view(len(e.Dicts[c].values))
		snap.Cols[c] = e.Cols[c][:n:n]
	}
	return snap
}

// Rows returns the number of encoded rows.
func (e *Encoded) Rows() int {
	if len(e.Cols) == 0 {
		return 0
	}
	return len(e.Cols[0])
}

// SensitiveDict returns the sensitive column's dictionary — the code
// space per-bucket sensitive histograms are counted over.
func (e *Encoded) SensitiveDict() *Dict { return e.Dicts[e.Table.Schema.SensitiveIndex] }

// SensitiveCol returns the sensitive column's code slice.
func (e *Encoded) SensitiveCol() []uint32 { return e.Cols[e.Table.Schema.SensitiveIndex] }

// Cardinalities returns the per-attribute dictionary sizes keyed by
// attribute name (the serving layer reports these on /v1/datasets).
func (e *Encoded) Cardinalities() map[string]int {
	out := make(map[string]int, len(e.Dicts))
	for c, d := range e.Dicts {
		out[e.Table.Schema.Attrs[c].Name] = d.Len()
	}
	return out
}
