package table

// This file implements the columnar, dictionary-encoded view of a table.
// The row-oriented Table remains the source of truth and the reference
// representation; Encoded is a derived, immutable snapshot built once and
// then shared freely across goroutines. Everything downstream that scans
// tuples repeatedly (bucketization, the lattice searches, the serving
// daemon's per-dataset warm state) computes over the code columns instead
// of the row strings.
//
// Invariants:
//   - Dicts[c].Value(Cols[c][i]) == Table.Rows[i][c] for every row i and
//     column c: decoding always reproduces the exact original strings.
//   - Codes are assigned in order of first appearance during the row scan,
//     so encoding is deterministic for a given table.
//   - An Encoded view is a snapshot: rows appended to the Table after
//     Encode are not reflected. Callers encode once per loaded table.

// Dict is a bidirectional dictionary between one column's value strings
// and dense uint32 codes (0..Len()-1).
type Dict struct {
	values []string
	index  map[string]uint32
}

// newDict builds an empty dictionary with capacity for n distinct values.
func newDict(n int) *Dict {
	return &Dict{index: make(map[string]uint32, n)}
}

// intern returns the code for v, assigning the next free code on first
// sight.
func (d *Dict) intern(v string) uint32 {
	if c, ok := d.index[v]; ok {
		return c
	}
	c := uint32(len(d.values))
	d.values = append(d.values, v)
	d.index[v] = c
	return c
}

// Code returns the code of v and whether v occurs in the column.
func (d *Dict) Code(v string) (uint32, bool) {
	c, ok := d.index[v]
	return c, ok
}

// Value decodes a code back to its string. It panics on out-of-range
// codes, mirroring slice indexing.
func (d *Dict) Value(c uint32) string { return d.values[c] }

// Values returns the dictionary's strings in code order. The returned
// slice is the dictionary's backing storage and must not be modified.
func (d *Dict) Values() []string { return d.values }

// Len returns the number of distinct values (the column's cardinality).
func (d *Dict) Len() int { return len(d.values) }

// Encoded is the columnar, dictionary-encoded view of a Table: one Dict
// and one dense code slice per column, in schema order. The sensitive
// column is encoded over its own code space like any other column; its
// dictionary doubles as the sensitive-value code space for per-bucket
// histograms.
type Encoded struct {
	// Table is the row-oriented source the view was built from.
	Table *Table
	// Dicts holds one dictionary per column, in schema order.
	Dicts []*Dict
	// Cols holds one dense code column per attribute: Cols[c][i] is the
	// code of row i's value in column c.
	Cols [][]uint32
}

// Encode builds the columnar view in one pass over the rows.
func (t *Table) Encode() *Encoded {
	nCols := len(t.Schema.Attrs)
	e := &Encoded{
		Table: t,
		Dicts: make([]*Dict, nCols),
		Cols:  make([][]uint32, nCols),
	}
	for c := 0; c < nCols; c++ {
		e.Dicts[c] = newDict(16)
		e.Cols[c] = make([]uint32, len(t.Rows))
	}
	for i, r := range t.Rows {
		for c, v := range r {
			e.Cols[c][i] = e.Dicts[c].intern(v)
		}
	}
	return e
}

// Rows returns the number of encoded rows.
func (e *Encoded) Rows() int {
	if len(e.Cols) == 0 {
		return 0
	}
	return len(e.Cols[0])
}

// SensitiveDict returns the sensitive column's dictionary — the code
// space per-bucket sensitive histograms are counted over.
func (e *Encoded) SensitiveDict() *Dict { return e.Dicts[e.Table.Schema.SensitiveIndex] }

// SensitiveCol returns the sensitive column's code slice.
func (e *Encoded) SensitiveCol() []uint32 { return e.Cols[e.Table.Schema.SensitiveIndex] }

// Cardinalities returns the per-attribute dictionary sizes keyed by
// attribute name (the serving layer reports these on /v1/datasets).
func (e *Encoded) Cardinalities() map[string]int {
	out := make(map[string]int, len(e.Dicts))
	for c, d := range e.Dicts {
		out[e.Table.Schema.Attrs[c].Name] = d.Len()
	}
	return out
}
