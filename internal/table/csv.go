package table

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
)

// ErrEmptyCSV marks a CSV input with no content at all — not even a
// header line. Callers match it with errors.Is to distinguish an empty
// upload from a malformed one.
var ErrEmptyCSV = errors.New("csv input is empty (no header line)")

// WriteCSV writes the table with a header row of attribute names.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema.Names()); err != nil {
		return fmt.Errorf("table: write csv header: %w", err)
	}
	for i, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return fmt.Errorf("table: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a table written by WriteCSV. The header must match the
// schema's attribute names exactly and every row must validate.
func ReadCSV(r io.Reader, s *Schema) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(s.Attrs)
	header, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("table: %w", ErrEmptyCSV)
	}
	if err != nil {
		return nil, fmt.Errorf("table: read csv header: %w", err)
	}
	names := s.Names()
	for i, h := range header {
		if h != names[i] {
			return nil, fmt.Errorf("table: csv header %q at column %d, want %q", h, i, names[i])
		}
	}
	t := New(s)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("table: read csv line %d: %w", line, err)
		}
		if err := t.Append(Row(rec)); err != nil {
			return nil, fmt.Errorf("table: csv line %d: %w", line, err)
		}
	}
}
