package table

import (
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"testing"
)

func appendSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema([]Attribute{
		{Name: "Age", Kind: Numeric, Min: 0, Max: 99},
		{Name: "City", Kind: Categorical, Domain: []string{"ann", "bly", "car", "dud"}},
		{Name: "Disease", Kind: Categorical, Domain: []string{"flu", "cold", "ache", "gout"}},
	}, "Disease")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func randRows(rng *rand.Rand, s *Schema, n int) []Row {
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{
			strconv.Itoa(rng.Intn(100)),
			s.Attrs[1].Domain[rng.Intn(len(s.Attrs[1].Domain))],
			s.Attrs[2].Domain[rng.Intn(len(s.Attrs[2].Domain))],
		}
	}
	return rows
}

// requireSameEncoding asserts two encoded views agree byte-for-byte:
// dictionaries, code columns and decoded rows.
func requireSameEncoding(t *testing.T, want, got *Encoded, label string) {
	t.Helper()
	if want.Rows() != got.Rows() {
		t.Fatalf("%s: %d rows, want %d", label, got.Rows(), want.Rows())
	}
	for c := range want.Dicts {
		if !reflect.DeepEqual(want.Dicts[c].Values(), got.Dicts[c].Values()) {
			t.Fatalf("%s: column %d dict %v, want %v", label, c, got.Dicts[c].Values(), want.Dicts[c].Values())
		}
		if !reflect.DeepEqual(want.Cols[c], got.Cols[c]) {
			t.Fatalf("%s: column %d codes differ", label, c)
		}
	}
}

// TestEncodedAppendMatchesRebuild is the append-parity property at the
// encoding layer: Encode(A) then Append(B) must be byte-identical —
// dictionaries, code order, code columns — to Encode(A ++ B).
func TestEncodedAppendMatchesRebuild(t *testing.T) {
	s := appendSchema(t)
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 50; i++ {
		base := randRows(rng, s, 1+rng.Intn(40))
		extra := randRows(rng, s, rng.Intn(30))

		grown := New(s)
		for _, r := range base {
			grown.MustAppend(r)
		}
		enc := grown.Encode()
		delta, err := enc.Append(extra)
		if err != nil {
			t.Fatalf("case %d: append: %v", i, err)
		}
		if delta.Start != len(base) || delta.Rows != len(base)+len(extra) {
			t.Fatalf("case %d: delta %+v, want start %d rows %d", i, delta, len(base), len(base)+len(extra))
		}

		concat := New(s)
		for _, r := range append(append([]Row{}, base...), extra...) {
			concat.MustAppend(r)
		}
		requireSameEncoding(t, concat.Encode(), enc, fmt.Sprintf("case %d", i))

		// The delta's new codes must be exactly the dictionary suffix
		// beyond the base encoding.
		baseTab := New(s)
		for _, r := range base {
			baseTab.MustAppend(r)
		}
		baseEnc := baseTab.Encode()
		for c := range enc.Dicts {
			gained := enc.Dicts[c].Len() - baseEnc.Dicts[c].Len()
			if gained != delta.NewValueCount(c) {
				t.Fatalf("case %d: column %d reports %d new codes, dict gained %d",
					i, c, delta.NewValueCount(c), gained)
			}
			for j, code := range delta.NewCodes[c] {
				if int(code) != baseEnc.Dicts[c].Len()+j {
					t.Fatalf("case %d: column %d new code %d out of order", i, c, code)
				}
			}
		}
	}
}

// TestSnapshotPinnedAcrossAppend pins the copy-on-write contract: a
// snapshot taken before an append keeps its row count, codes, dictionary
// lengths and decoded strings, while the master moves on.
func TestSnapshotPinnedAcrossAppend(t *testing.T) {
	s := appendSchema(t)
	rng := rand.New(rand.NewSource(43))
	tab := New(s)
	for _, r := range randRows(rng, s, 25) {
		tab.MustAppend(r)
	}
	enc := tab.Encode()
	snap := enc.Snapshot()
	wantRows := make([]Row, len(tab.Rows))
	copy(wantRows, tab.Rows)
	wantCards := snap.Cardinalities()

	for round := 0; round < 5; round++ {
		if _, err := enc.Append(randRows(rng, s, 17)); err != nil {
			t.Fatal(err)
		}
	}
	if snap.Rows() != 25 || snap.Table.Len() != 25 {
		t.Fatalf("snapshot grew to %d/%d rows", snap.Rows(), snap.Table.Len())
	}
	if !reflect.DeepEqual(snap.Cardinalities(), wantCards) {
		t.Fatalf("snapshot cardinalities drifted: %v, want %v", snap.Cardinalities(), wantCards)
	}
	for i, r := range wantRows {
		for c := range r {
			if got := snap.Dicts[c].Value(snap.Cols[c][i]); got != r[c] {
				t.Fatalf("snapshot row %d col %d decodes %q, want %q", i, c, got, r[c])
			}
		}
	}
	// Snapshot dictionaries answer Code without the shared index map.
	if c, ok := snap.Dicts[1].Code(wantRows[0][1]); !ok || snap.Dicts[1].Value(c) != wantRows[0][1] {
		t.Fatalf("snapshot Code lookup failed for %q", wantRows[0][1])
	}
	if enc.Rows() != 25+5*17 {
		t.Fatalf("master has %d rows, want %d", enc.Rows(), 25+5*17)
	}
}

// TestEncodedAppendRejectsInvalid checks a bad batch is rejected whole:
// validation errors name the offending row and nothing is mutated.
func TestEncodedAppendRejectsInvalid(t *testing.T) {
	s := appendSchema(t)
	tab := New(s)
	tab.MustAppend(Row{"30", "ann", "flu"})
	enc := tab.Encode()
	cases := []struct {
		name string
		rows []Row
	}{
		{"short row", []Row{{"30", "ann"}}},
		{"bad numeric", []Row{{"30", "ann", "flu"}, {"abc", "bly", "cold"}}},
		{"out of domain", []Row{{"30", "zzz", "flu"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := enc.Append(tc.rows); err == nil {
				t.Fatal("append accepted an invalid batch")
			}
			if enc.Rows() != 1 || enc.Table.Len() != 1 {
				t.Fatalf("rejected append mutated the view: %d rows", enc.Rows())
			}
		})
	}
}
