package table

import (
	"fmt"
	"reflect"
	"testing"
)

func encodedFixture(t *testing.T, rows int) *Table {
	t.Helper()
	s, err := NewSchema([]Attribute{
		{Name: "Zip", Kind: Numeric, Min: 0, Max: 99999},
		{Name: "Sex", Kind: Categorical, Domain: []string{"M", "F"}},
		{Name: "Disease", Kind: Categorical, Domain: []string{"flu", "mumps", "cold"}},
	}, "Disease")
	if err != nil {
		t.Fatal(err)
	}
	tab := New(s)
	diseases := []string{"flu", "mumps", "cold"}
	sexes := []string{"M", "F"}
	for i := 0; i < rows; i++ {
		tab.MustAppend(Row{
			fmt.Sprintf("%d", 14850+(i%7)),
			sexes[i%2],
			diseases[i%3],
		})
	}
	return tab
}

// TestEncodeRoundTrip pins the core invariant: decoding every code cell
// reproduces the exact original string.
func TestEncodeRoundTrip(t *testing.T) {
	tab := encodedFixture(t, 53)
	e := tab.Encode()
	if e.Rows() != tab.Len() {
		t.Fatalf("Rows = %d, want %d", e.Rows(), tab.Len())
	}
	for c := range e.Cols {
		for i := range e.Cols[c] {
			if got := e.Dicts[c].Value(e.Cols[c][i]); got != tab.Rows[i][c] {
				t.Fatalf("col %d row %d: decoded %q, want %q", c, i, got, tab.Rows[i][c])
			}
		}
	}
}

// TestEncodeDeterministic pins first-appearance code assignment: encoding
// the same table twice yields identical dictionaries and columns.
func TestEncodeDeterministic(t *testing.T) {
	tab := encodedFixture(t, 31)
	a, b := tab.Encode(), tab.Encode()
	for c := range a.Dicts {
		if !reflect.DeepEqual(a.Dicts[c].Values(), b.Dicts[c].Values()) {
			t.Fatalf("col %d dict differs between encodings", c)
		}
		if !reflect.DeepEqual(a.Cols[c], b.Cols[c]) {
			t.Fatalf("col %d codes differ between encodings", c)
		}
	}
}

func TestEncodedAccessors(t *testing.T) {
	tab := encodedFixture(t, 30)
	e := tab.Encode()
	if got := e.SensitiveDict().Len(); got != 3 {
		t.Fatalf("sensitive cardinality = %d, want 3", got)
	}
	for i, code := range e.SensitiveCol() {
		if got := e.SensitiveDict().Value(code); got != tab.SensitiveValue(i) {
			t.Fatalf("sensitive row %d: decoded %q, want %q", i, got, tab.SensitiveValue(i))
		}
	}
	cards := e.Cardinalities()
	want := map[string]int{"Zip": 7, "Sex": 2, "Disease": 3}
	if !reflect.DeepEqual(cards, want) {
		t.Fatalf("Cardinalities = %v, want %v", cards, want)
	}
	if _, ok := e.Dicts[1].Code("M"); !ok {
		t.Fatal("Code(M) not found")
	}
	if _, ok := e.Dicts[1].Code("nope"); ok {
		t.Fatal("Code(nope) unexpectedly found")
	}
}
