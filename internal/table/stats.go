package table

import "sort"

// ValueCount pairs a value with its multiplicity.
type ValueCount struct {
	Value string
	Count int
}

// Counts tallies the values of the given column.
func (t *Table) Counts(col int) map[string]int {
	m := make(map[string]int)
	for _, r := range t.Rows {
		m[r[col]]++
	}
	return m
}

// SensitiveCounts tallies the sensitive attribute.
func (t *Table) SensitiveCounts() map[string]int {
	return t.Counts(t.Schema.SensitiveIndex)
}

// SortedCounts returns the column's value counts in decreasing count order,
// breaking ties by value for determinism.
func (t *Table) SortedCounts(col int) []ValueCount {
	return SortCounts(t.Counts(col))
}

// SortCounts converts a count map to a deterministic, decreasing-count
// slice (ties broken by increasing value).
func SortCounts(m map[string]int) []ValueCount {
	out := make([]ValueCount, 0, len(m))
	for v, c := range m {
		out = append(out, ValueCount{Value: v, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	return out
}
