package table

import (
	"fmt"
	"sort"
	"strconv"
)

// Row is one tuple, with values in schema order.
type Row []string

// Table is a row-oriented relation over a Schema. Rows are addressed by
// index; the index doubles as the (anonymous) person identifier used by the
// privacy machinery: row i is "person i".
type Table struct {
	Schema *Schema
	Rows   []Row
}

// New creates an empty table over the schema.
func New(s *Schema) *Table { return &Table{Schema: s} }

// Append validates a row against the schema and adds it.
func (t *Table) Append(r Row) error {
	if len(r) != len(t.Schema.Attrs) {
		return fmt.Errorf("table: row has %d values, schema has %d attributes", len(r), len(t.Schema.Attrs))
	}
	for i, v := range r {
		if err := t.Schema.Attrs[i].Validate(v); err != nil {
			return err
		}
	}
	t.Rows = append(t.Rows, r)
	return nil
}

// MustAppend appends a row and panics on validation failure. It is intended
// for statically known test fixtures.
func (t *Table) MustAppend(r Row) {
	if err := t.Append(r); err != nil {
		panic(err)
	}
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.Rows) }

// Value returns the value of column col in row i.
func (t *Table) Value(i, col int) string { return t.Rows[i][col] }

// SensitiveValue returns the sensitive attribute value of row i.
func (t *Table) SensitiveValue(i int) string {
	return t.Rows[i][t.Schema.SensitiveIndex]
}

// Int returns the value of a numeric column as an integer.
func (t *Table) Int(i, col int) (int, error) {
	n, err := strconv.Atoi(t.Rows[i][col])
	if err != nil {
		return 0, fmt.Errorf("table: row %d column %d: %w", i, col, err)
	}
	return n, nil
}

// Project returns a new table with only the named columns. The sensitive
// attribute must be among them.
func (t *Table) Project(names ...string) (*Table, error) {
	cols := make([]int, len(names))
	attrs := make([]Attribute, len(names))
	for i, name := range names {
		c := t.Schema.Index(name)
		if c < 0 {
			return nil, fmt.Errorf("table: project: no attribute %q", name)
		}
		cols[i] = c
		attrs[i] = t.Schema.Attrs[c]
	}
	s, err := NewSchema(attrs, t.Schema.Sensitive().Name)
	if err != nil {
		return nil, fmt.Errorf("table: project: %w", err)
	}
	out := New(s)
	out.Rows = make([]Row, len(t.Rows))
	for i, r := range t.Rows {
		nr := make(Row, len(cols))
		for j, c := range cols {
			nr[j] = r[c]
		}
		out.Rows[i] = nr
	}
	return out, nil
}

// Filter returns a new table containing the rows for which keep returns
// true. Row identity (person identity) is not preserved; the result is a
// fresh relation.
func (t *Table) Filter(keep func(Row) bool) *Table {
	out := New(t.Schema)
	for _, r := range t.Rows {
		if keep(r) {
			out.Rows = append(out.Rows, r)
		}
	}
	return out
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	out := New(t.Schema)
	out.Rows = make([]Row, len(t.Rows))
	for i, r := range t.Rows {
		nr := make(Row, len(r))
		copy(nr, r)
		out.Rows[i] = nr
	}
	return out
}

// SortBy sorts rows lexicographically by the named columns. It exists for
// deterministic output in reports and tests.
func (t *Table) SortBy(names ...string) error {
	cols := make([]int, len(names))
	for i, name := range names {
		c := t.Schema.Index(name)
		if c < 0 {
			return fmt.Errorf("table: sort: no attribute %q", name)
		}
		cols[i] = c
	}
	sort.SliceStable(t.Rows, func(a, b int) bool {
		ra, rb := t.Rows[a], t.Rows[b]
		for _, c := range cols {
			if ra[c] != rb[c] {
				return ra[c] < rb[c]
			}
		}
		return false
	})
	return nil
}
