package server

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"ckprivacy/internal/bucket"
)

// This file is the sequential-release audit: the daemon records each
// published generalization of a dataset (per dataset version) and reports
// the worst-case disclosure of the *intersection* attack across any pair
// of retained releases. Repeated releases of an evolving table are
// themselves an attack surface: an adversary holding releases A and B
// knows each common person lies in the intersection of their bucket in A
// and their bucket in B, a partition strictly finer than either release —
// so per-release (c,k)-safety does not compose, and the pairwise
// intersection disclosure is the number that has to be watched (Riboni et
// al.'s sequential background-knowledge setting, checked with Martin et
// al.'s worst-case machinery).

// release is one recorded publication of a dataset generalization, pinned
// to the dataset version it was bucketized at.
type release struct {
	index   int
	version int64
	rows    int
	levels  bucket.Levels
	bz      *bucket.Bucketization
	created time.Time
}

// releaseLog is a dataset's bounded, append-only release history. When
// the bound is hit the oldest release is evicted — the audit then covers
// the retained window, and Evicted tells clients the window is partial.
type releaseLog struct {
	mu      sync.Mutex
	max     int
	next    int
	rs      []*release
	evicted int
}

// add records a release, evicting the oldest past the bound.
func (l *releaseLog) add(r *release) (index, retained, evicted int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r.index = l.next
	l.next++
	l.rs = append(l.rs, r)
	if len(l.rs) > l.max {
		l.rs = l.rs[1:]
		l.evicted++
	}
	return r.index, len(l.rs), l.evicted
}

// snapshot returns the retained releases, oldest first.
func (l *releaseLog) snapshot() (rs []*release, evicted int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*release(nil), l.rs...), l.evicted
}

// exportState returns the full log state for durable snapshots.
func (l *releaseLog) exportState() (rs []*release, evicted, next int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*release(nil), l.rs...), l.evicted, l.next
}

// restore replaces the log's state with a recovered history (boot path;
// the dataset is not yet visible to requests).
func (l *releaseLog) restore(next, evicted int, rs []*release) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.next = next
	l.evicted = evicted
	l.rs = rs
}

// intersect builds the partition an attacker holding both releases can
// derive over the persons present in both: one cell per (bucket in a,
// bucket in b) pair, with the cell's sensitive multiset read off the
// pinned source table of the later (superset) release. Row identities are
// stable across appends — version v's rows are a prefix of version v+1's —
// so the common persons are exactly the rows of the earlier release.
func intersect(a, b *release) *bucket.Bucketization {
	if b.rows < a.rows {
		a, b = b, a
	}
	common := a.rows
	src := b.bz.Source
	// bucketOf[t] = index of t's bucket in b, for common tuples.
	bucketOf := make([]int, common)
	for i := range bucketOf {
		bucketOf[i] = -1
	}
	for bi, bb := range b.bz.Buckets {
		for _, t := range bb.Tuples {
			if t < common {
				bucketOf[t] = bi
			}
		}
	}
	type cellKey struct{ ai, bi int }
	cells := make(map[cellKey][]string)
	var order []cellKey
	for ai, ab := range a.bz.Buckets {
		for _, t := range ab.Tuples {
			if t >= common || bucketOf[t] < 0 {
				continue
			}
			k := cellKey{ai, bucketOf[t]}
			if _, ok := cells[k]; !ok {
				order = append(order, k)
			}
			cells[k] = append(cells[k], src.SensitiveValue(t))
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].ai != order[j].ai {
			return order[i].ai < order[j].ai
		}
		return order[i].bi < order[j].bi
	})
	groups := make([][]string, len(order))
	for i, k := range order {
		groups[i] = cells[k]
	}
	return bucket.FromValues(groups...)
}

// ---- wire shapes ----

type releaseRequest struct {
	// Levels generalizes the dataset's quasi-identifiers for this release;
	// empty means the dataset's default levels.
	Levels bucket.Levels `json:"levels,omitempty"`
}

type releaseInfo struct {
	Index   int           `json:"index"`
	Version int64         `json:"version"`
	Rows    int           `json:"rows"`
	Levels  bucket.Levels `json:"levels"`
	Buckets int           `json:"buckets"`
	// Disclosure is the release's own worst-case disclosure at the audit's
	// k; present on GET responses.
	Disclosure *float64 `json:"disclosure,omitempty"`
}

type releaseCreated struct {
	Dataset  string      `json:"dataset"`
	Release  releaseInfo `json:"release"`
	Retained int         `json:"retained"`
	Evicted  int         `json:"evicted"`
}

// releasePair is one pairwise intersection-attack audit result.
type releasePair struct {
	A            int `json:"a"`
	B            int `json:"b"`
	CommonTuples int `json:"common_tuples"`
	Buckets      int `json:"buckets"`
	// Disclosure is the worst-case disclosure of the intersection
	// partition at the audit's k — the sequential-release number.
	Disclosure float64 `json:"disclosure"`
}

type releasesResponse struct {
	Dataset  string        `json:"dataset"`
	K        int           `json:"k"`
	Releases []releaseInfo `json:"releases"`
	Evicted  int           `json:"evicted"`
	Pairs    []releasePair `json:"pairs"`
	// MaxPairDisclosure is the worst pairwise intersection disclosure;
	// absent with fewer than two retained releases.
	MaxPairDisclosure *float64 `json:"max_pair_disclosure,omitempty"`
	ElapsedMS         float64  `json:"elapsed_ms"`
}

// ---- handlers ----

func (s *Server) handleCreateRelease(w http.ResponseWriter, r *http.Request) {
	if s.rejectReadOnly(w) {
		return
	}
	name := r.PathValue("name")
	ds, ok := s.registry.get(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("dataset %q not registered", name))
		return
	}
	var req releaseRequest
	if err := s.readJSON(w, r, &req); err != nil {
		writeHTTPError(w, err)
		return
	}
	rel, ok := s.buildRelease(w, r, ds, req.Levels)
	if !ok {
		return
	}
	// The record + WAL write run under appendMu: acquiring it guarantees
	// any append whose rows this release references has finished its own
	// WAL write (appends hold the mutex across apply + log), so the log
	// order matches the data dependency.
	ds.appendMu.Lock()
	if err := s.healIfBrokenLocked(ds); err != nil {
		ds.appendMu.Unlock()
		writePersistFailure(w, err)
		return
	}
	index, retained, evicted := ds.releases.add(rel)
	err := s.logReleaseLocked(ds, rel)
	ds.appendMu.Unlock()
	if err != nil {
		// The release is recorded in memory but not on disk; the dataset is
		// marked broken and the next write heals by compaction.
		writePersistFailure(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, releaseCreated{
		Dataset: name,
		Release: releaseInfo{
			Index:   index,
			Version: rel.version,
			Rows:    rel.rows,
			Levels:  rel.levels,
			Buckets: len(rel.bz.Buckets),
		},
		Retained: retained,
		Evicted:  evicted,
	})
}

// buildRelease bucketizes the dataset's current version at the requested
// levels under the concurrency gate; on failure it has already written the
// error response.
func (s *Server) buildRelease(w http.ResponseWriter, r *http.Request, ds *dataset, levels bucket.Levels) (*release, bool) {
	snap := ds.problem.Snapshot()
	if len(levels) == 0 {
		levels = ds.bundle.DefaultLevels
	}
	node, err := ds.problem.NodeForLevels(levels)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, false
	}
	done, ok := s.acquireGate(w, r)
	if !ok {
		return nil, false
	}
	defer done()
	bz, err := snap.Bucketize(node)
	if err != nil {
		writeHTTPError(w, err)
		return nil, false
	}
	return &release{
		version: snap.Version(),
		rows:    snap.Rows(),
		levels:  levels,
		bz:      bz,
		created: time.Now(),
	}, true
}

func (s *Server) handleListReleases(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ds, ok := s.registry.get(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("dataset %q not registered", name))
		return
	}
	k := 1
	if q := r.URL.Query().Get("k"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("k %q is not an integer", q))
			return
		}
		k = n
	}
	if err := s.checkK(k); err != nil {
		writeHTTPError(w, err)
		return
	}
	done, ok := s.acquireGate(w, r)
	if !ok {
		return
	}
	defer done()
	begin := time.Now()
	rs, evicted := ds.releases.snapshot()
	resp := releasesResponse{Dataset: name, K: k, Evicted: evicted, Releases: make([]releaseInfo, len(rs))}
	for i, rel := range rs {
		d, err := s.engine.MaxDisclosure(rel.bz, k)
		if err != nil {
			writeHTTPError(w, err)
			return
		}
		resp.Releases[i] = releaseInfo{
			Index:      rel.index,
			Version:    rel.version,
			Rows:       rel.rows,
			Levels:     rel.levels,
			Buckets:    len(rel.bz.Buckets),
			Disclosure: &d,
		}
	}
	for i := 0; i < len(rs); i++ {
		for j := i + 1; j < len(rs); j++ {
			cut := intersect(rs[i], rs[j])
			d, err := s.engine.MaxDisclosure(cut, k)
			if err != nil {
				writeHTTPError(w, err)
				return
			}
			resp.Pairs = append(resp.Pairs, releasePair{
				A:            rs[i].index,
				B:            rs[j].index,
				CommonTuples: cut.Size(),
				Buckets:      len(cut.Buckets),
				Disclosure:   d,
			})
			if resp.MaxPairDisclosure == nil || d > *resp.MaxPairDisclosure {
				v := d
				resp.MaxPairDisclosure = &v
			}
		}
	}
	resp.ElapsedMS = float64(time.Since(begin)) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, resp)
}
