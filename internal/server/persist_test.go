package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"

	"ckprivacy/internal/store"
)

// persistedState is everything a client can observe about a dataset that
// must survive a crash: its description, a disclosure answer and the full
// sequential-release audit. Timing and cache fields are stripped; the
// rest must be byte-identical (compared as decoded JSON) between the
// pre-crash process and the recovered one.
type persistedState struct {
	info     map[string]any
	disc     map[string]any
	releases map[string]any
}

func captureDatasetState(t *testing.T, base, name string) persistedState {
	t.Helper()
	var st persistedState
	if code := getJSON(t, base+"/v1/datasets/"+name, &st.info); code != http.StatusOK {
		t.Fatalf("describe %s = %d", name, code)
	}
	delete(st.info, "cache_entries")
	delete(st.info, "recovered")
	delete(st.info, "wal_records")
	if code := postJSON(t, base+"/v1/disclosure", map[string]any{"dataset": name, "k": 2}, &st.disc); code != http.StatusOK {
		t.Fatalf("disclosure = %d", code)
	}
	delete(st.disc, "elapsed_ms")
	if code := getJSON(t, base+"/v1/datasets/"+name+"/releases?k=1", &st.releases); code != http.StatusOK {
		t.Fatalf("releases audit = %d", code)
	}
	delete(st.releases, "elapsed_ms")
	return st
}

func requireSameState(t *testing.T, want, got persistedState) {
	t.Helper()
	for _, cmp := range []struct {
		label     string
		want, got map[string]any
	}{
		{"dataset info", want.info, got.info},
		{"disclosure", want.disc, got.disc},
		{"releases audit", want.releases, got.releases},
	} {
		if !reflect.DeepEqual(cmp.want, cmp.got) {
			w, _ := json.Marshal(cmp.want)
			g, _ := json.Marshal(cmp.got)
			t.Fatalf("%s diverged after recovery:\nwant %s\ngot  %s", cmp.label, w, g)
		}
	}
}

// newPersistedServer builds a server persisting to dir.
func newPersistedServer(t *testing.T, dir string, fsync bool) (*Server, string) {
	t.Helper()
	mgr, err := store.Open(store.Options{Dir: dir, Fsync: fsync, CompactBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Store: mgr})
	return s, ts.URL
}

// TestPersistKillPointRecovery is the randomized crash-point property
// test: a persisted dataset takes a scripted sequence of appends and
// releases, the WAL is then cut at arbitrary byte offsets — including
// mid-record and mid-header — and a fresh server recovering from each cut
// must serve exactly the state the original server had after the last
// record that survived the cut.
func TestPersistKillPointRecovery(t *testing.T) {
	dir := t.TempDir()
	_, base := newPersistedServer(t, dir, true)
	registerHospital(t, base, "h")

	// expected[i] is the observable state after i WAL records.
	expected := []persistedState{captureDatasetState(t, base, "h")}
	mutate := []func(){
		func() { appendRowsOK(t, base, "h", hospitalRows()) },
		func() { createReleaseOK(t, base, "h") },
		func() {
			appendRowsOK(t, base, "h", [][]string{{"14852", "61", "F", "flu"}, {"14861", "35", "M", "mumps"}})
		},
		func() { createReleaseOK(t, base, "h") },
		func() { appendRowsOK(t, base, "h", [][]string{{"14870", "44", "F", "heart-disease"}}) },
		func() { createReleaseOK(t, base, "h") },
	}
	for _, m := range mutate {
		m()
		expected = append(expected, captureDatasetState(t, base, "h"))
	}

	walPath := findOne(t, filepath.Join(dir, "h", "wal-*.ckpw"))
	snapPath := findOne(t, filepath.Join(dir, "h", "snapshot-*.ckps"))
	wal, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}

	cuts := []int{0, 5, len(wal)} // empty file, torn header, clean kill
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 12; i++ {
		cuts = append(cuts, rng.Intn(len(wal)+1))
	}
	for _, cut := range cuts {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			trial := t.TempDir()
			if err := os.MkdirAll(filepath.Join(trial, "h"), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(trial, "h", filepath.Base(snapPath)), snap, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(trial, "h", filepath.Base(walPath)), wal[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			mgr, err := store.Open(store.Options{Dir: trial, Fsync: false})
			if err != nil {
				t.Fatal(err)
			}
			s2, ts2 := newTestServer(t, Config{Store: mgr})
			stats, err := s2.RecoverAll()
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			if stats.Datasets != 1 {
				t.Fatalf("recovered %d datasets, want 1", stats.Datasets)
			}
			var info struct {
				WALRecords int    `json:"wal_records"`
				Recovered  string `json:"recovered"`
			}
			if code := getJSON(t, ts2.URL+"/v1/datasets/h", &info); code != http.StatusOK {
				t.Fatalf("describe = %d", code)
			}
			if info.WALRecords >= len(expected) {
				t.Fatalf("recovered %d wal records, only %d mutations ran", info.WALRecords, len(expected)-1)
			}
			wantMode := "snapshot"
			if info.WALRecords > 0 {
				wantMode = "wal_replay"
			}
			if info.Recovered != wantMode {
				t.Fatalf("recovered mode %q, want %q (%d records)", info.Recovered, wantMode, info.WALRecords)
			}
			requireSameState(t, expected[info.WALRecords], captureDatasetState(t, ts2.URL, "h"))
		})
	}
}

// TestPersistCleanRestartIdentical drives the happy path: no crash, just
// a second server recovering the full snapshot + WAL, which must be
// indistinguishable from the first.
func TestPersistCleanRestartIdentical(t *testing.T) {
	dir := t.TempDir()
	_, base := newPersistedServer(t, dir, false)
	registerHospital(t, base, "h")
	appendRowsOK(t, base, "h", hospitalRows())
	createReleaseOK(t, base, "h")
	want := captureDatasetState(t, base, "h")

	s2, base2 := newPersistedServer(t, dir, false)
	if _, err := s2.RecoverAll(); err != nil {
		t.Fatalf("recovery: %v", err)
	}
	requireSameState(t, want, captureDatasetState(t, base2, "h"))
}

// TestPersistFailure503AndHeal covers the write path when the store
// breaks: mutations still apply in memory but the response is a 503 with
// the persist_failed code and a Retry-After, and the next write heals by
// compacting — after which a recovery sees everything, the "lost" records
// included.
func TestPersistFailure503AndHeal(t *testing.T) {
	dir := t.TempDir()
	s, base := newPersistedServer(t, dir, false)
	registerHospital(t, base, "h")
	ds, ok := s.registry.get("h")
	if !ok || ds.persist == nil {
		t.Fatal("hospital did not register persisted")
	}

	// Break the log the way a dead disk would: every write now fails.
	if err := ds.persist.log.Close(); err != nil {
		t.Fatal(err)
	}
	resp := rawPost(t, base+"/v1/datasets/h/rows", map[string]any{"rows": hospitalRows()})
	if resp.status != http.StatusServiceUnavailable || resp.body.Code != "persist_failed" {
		t.Fatalf("append on broken store = %d/%s, want 503/persist_failed", resp.status, resp.body.Code)
	}
	if resp.retryAfter == "" {
		t.Fatal("503 persist_failed without Retry-After")
	}
	var info struct {
		Rows int `json:"rows"`
	}
	getJSON(t, base+"/v1/datasets/h", &info)
	if info.Rows != 13 {
		t.Fatalf("rows after failed-persist append = %d, want 13 (applied in memory)", info.Rows)
	}

	// Next write heals by compaction and succeeds.
	if code := postJSON(t, base+"/v1/datasets/h/rows",
		map[string]any{"rows": [][]string{{"14870", "44", "F", "flu"}}}, nil); code != http.StatusOK {
		t.Fatalf("append after heal = %d", code)
	}

	// Same failure mode on the release path.
	if err := ds.persist.log.Close(); err != nil {
		t.Fatal(err)
	}
	resp = rawPost(t, base+"/v1/datasets/h/releases", map[string]any{})
	if resp.status != http.StatusServiceUnavailable || resp.body.Code != "persist_failed" {
		t.Fatalf("release on broken store = %d/%s, want 503/persist_failed", resp.status, resp.body.Code)
	}
	createReleaseOK(t, base, "h") // heals again

	want := captureDatasetState(t, base, "h")
	s2, base2 := newPersistedServer(t, dir, false)
	if _, err := s2.RecoverAll(); err != nil {
		t.Fatalf("recovery after heals: %v", err)
	}
	requireSameState(t, want, captureDatasetState(t, base2, "h"))
}

// TestPersistRegistrationRollback: a dataset whose initial snapshot cannot
// be written is backed out entirely — 503 to the client, nothing in the
// registry, so a later restart cannot silently miss it.
func TestPersistRegistrationRollback(t *testing.T) {
	dir := t.TempDir()
	_, base := newPersistedServer(t, dir, false)
	// Occupy the dataset's directory name with a file so MkdirAll fails.
	if err := os.WriteFile(filepath.Join(dir, "blocked"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp := rawPost(t, base+"/v1/datasets", map[string]any{"name": "blocked", "builtin": "hospital"})
	if resp.status != http.StatusServiceUnavailable || resp.body.Code != "persist_failed" {
		t.Fatalf("register into blocked dir = %d/%s, want 503/persist_failed", resp.status, resp.body.Code)
	}
	if code := getJSON(t, base+"/v1/datasets/blocked", nil); code != http.StatusNotFound {
		t.Fatalf("rolled-back dataset still visible: %d", code)
	}
	// The name is free again once the obstruction clears.
	if err := os.Remove(filepath.Join(dir, "blocked")); err != nil {
		t.Fatal(err)
	}
	registerHospital(t, base, "blocked")
}

func TestPersistCodeOf(t *testing.T) {
	full := &persistError{err: fmt.Errorf("write wal: %w", syscall.ENOSPC)}
	if got := persistCodeOf(full); got != "disk_full" {
		t.Fatalf("ENOSPC code = %q, want disk_full", got)
	}
	if got := persistCodeOf(&persistError{err: errors.New("io broke")}); got != "persist_failed" {
		t.Fatalf("generic code = %q, want persist_failed", got)
	}
	if got := errorCode(http.StatusServiceUnavailable, full); got != "disk_full" {
		t.Fatalf("envelope code = %q, want disk_full", got)
	}
}

// ---- helpers ----

func appendRowsOK(t *testing.T, base, name string, rows [][]string) {
	t.Helper()
	if code := postJSON(t, base+"/v1/datasets/"+name+"/rows", map[string]any{"rows": rows}, nil); code != http.StatusOK {
		t.Fatalf("append = %d", code)
	}
}

func createReleaseOK(t *testing.T, base, name string) {
	t.Helper()
	if code := postJSON(t, base+"/v1/datasets/"+name+"/releases", map[string]any{}, nil); code != http.StatusCreated {
		t.Fatalf("release = %d", code)
	}
}

func findOne(t *testing.T, pattern string) string {
	t.Helper()
	matches, err := filepath.Glob(pattern)
	if err != nil || len(matches) != 1 {
		t.Fatalf("glob %s: %v (%d matches)", pattern, err, len(matches))
	}
	return matches[0]
}

type rawResponse struct {
	status     int
	retryAfter string
	body       errorBody
}

// rawPost posts and keeps the raw status, Retry-After header and decoded
// error envelope.
func rawPost(t *testing.T, url string, v any) rawResponse {
	t.Helper()
	payload, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := rawResponse{status: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
	_ = json.NewDecoder(resp.Body).Decode(&out.body)
	return out
}
