// Package server is ckprivacy's serving subsystem: a long-running HTTP
// disclosure-auditing service over the paper's O(|B|·k³) MaxDisclosure
// check. It keeps a dataset registry (register a CSV table + hierarchies
// once, reference by name thereafter), threads one process-wide disclosure
// engine memo and one per-dataset bucketization cache across requests so
// hot datasets are served from warm state, runs lattice-search anonymization
// as asynchronous jobs on a bounded queue, enforces per-request k/size
// limits plus a global concurrency gate for backpressure, and exports its
// counters in Prometheus text format. stdlib net/http only.
package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"ckprivacy/internal/anonymize"
	"ckprivacy/internal/core"
	"ckprivacy/internal/dataload"
	"ckprivacy/internal/store"
)

// Config tunes the service. The zero value is usable: every limit falls
// back to the documented default.
type Config struct {
	// MaxK caps the background-knowledge bound k accepted per request.
	// The DP is cubic in k, so this is the main per-request cost limit.
	// Default 16.
	MaxK int
	// MaxRows caps the size of a registered dataset. Default 200000.
	MaxRows int
	// MaxDatasets caps the registry size. Default 64.
	MaxDatasets int
	// MaxBodyBytes caps request bodies. Default 8 MiB.
	MaxBodyBytes int64
	// MaxSamples caps a Monte-Carlo estimate request's sample budget.
	// Default 1000000.
	MaxSamples int
	// MaxConcurrent is the global concurrency gate: at most this many
	// compute-heavy requests (disclosure, check, estimate) run at once;
	// excess requests wait up to GateWait and are then shed with 503.
	// Default GOMAXPROCS.
	MaxConcurrent int
	// GateWait is how long a request may wait on the gate before being
	// shed. Default 2s.
	GateWait time.Duration
	// JobWorkers is the number of background anonymization jobs run
	// concurrently. Default 2.
	JobWorkers int
	// JobQueueSize bounds the pending-job queue; submissions beyond it are
	// rejected with 503. Default 16.
	JobQueueSize int
	// JobHistory bounds how many jobs (finished ones included, kept for
	// polling) are retained; the oldest terminal jobs are evicted first.
	// Default 256.
	JobHistory int
	// SearchWorkers is the per-search lattice worker budget (the library's
	// WithWorkers knob) used by anonymization jobs, per-dataset
	// bucketization and Monte-Carlo estimates. Values below 1 — including
	// the zero value — mean one worker per CPU core, matching the
	// library-wide convention.
	SearchWorkers int
	// ShardWorkers is the per-dataset row-shard budget: each registered
	// dataset's bucketization scans split its encoded columns into this
	// many contiguous row ranges and scan them concurrently (results merge
	// byte-identically with the serial scan). Values below 1 — including
	// the zero value — mean one shard worker per CPU core. Set 1 to force
	// serial scans.
	ShardWorkers int
	// MaxReleases bounds how many published releases are retained per
	// dataset for the sequential-release audit; the oldest is evicted past
	// the bound (the audit then covers the retained window). Default 16.
	MaxReleases int
	// Store, when non-nil, makes registered datasets durable: each
	// registration writes a columnar snapshot, every append and release
	// appends a WAL record, and RecoverAll rebuilds the registry from disk
	// at boot. Nil (the default) keeps the daemon fully in-memory.
	Store *store.Manager
	// ReadOnly makes the server a follower: mutating endpoints (register,
	// append, release) are rejected with 403 code "read_only", /readyz
	// reports 503 code "not_ready" until SetReady(true), and recovered or
	// installed datasets retain pinned version snapshots for ?version=
	// reads. internal/replica drives the state via InstallReplicaSnapshot /
	// ApplyReplicated.
	ReadOnly bool
	// MaxPinnedVersions bounds how many historical version snapshots a
	// follower dataset pins for ?version= reads; the oldest is evicted past
	// the bound. Snapshots share structure, so the window is cheap.
	// Default 128.
	MaxPinnedVersions int
	// ReplicationMaxBytes caps how many WAL bytes one replication fetch
	// returns. Default 4 MiB.
	ReplicationMaxBytes int64
	// ReplicationMaxWait caps how long a WAL fetch may long-poll for the
	// next commit (the wait_ms query parameter is clamped to it).
	// Default 30s.
	ReplicationMaxWait time.Duration
	// MemoMaxBytes bounds every disclosure-engine memo the daemon runs:
	// the shared engine for synchronous checks on registered datasets, the
	// engine serving inline client-chosen bucketizations, and each
	// registered dataset's problem-scoped engine (which drives its
	// anonymize jobs). Worst-case resident memo memory is therefore
	// (2 + MaxDatasets) × MemoMaxBytes — every term individually capped —
	// instead of growing with every distinct histogram ever seen. 0 means
	// core.DefaultMemoMaxBytes; negative disables the bound.
	MemoMaxBytes int64
}

// withDefaults resolves zero fields to their documented defaults.
func (c Config) withDefaults() Config {
	if c.MaxK <= 0 {
		c.MaxK = 16
	}
	if c.MaxRows <= 0 {
		c.MaxRows = 200000
	}
	if c.MaxDatasets <= 0 {
		c.MaxDatasets = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 1000000
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.GateWait <= 0 {
		c.GateWait = 2 * time.Second
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = 2
	}
	if c.JobQueueSize <= 0 {
		c.JobQueueSize = 16
	}
	if c.JobHistory <= 0 {
		c.JobHistory = 256
	}
	if c.MaxReleases <= 0 {
		c.MaxReleases = 16
	}
	if c.MaxPinnedVersions <= 0 {
		c.MaxPinnedVersions = 128
	}
	if c.ReplicationMaxBytes <= 0 {
		c.ReplicationMaxBytes = 4 << 20
	}
	if c.ReplicationMaxWait <= 0 {
		c.ReplicationMaxWait = 30 * time.Second
	}
	// SearchWorkers and ShardWorkers are passed through: anonymize.Options
	// already treats values below 1 as one per CPU core. MemoMaxBytes is
	// passed through: core.NewEngineWithConfig resolves 0 to its default
	// and treats negatives as unbounded.
	return c
}

// problemOptions is the anonymize.Options every registered dataset's
// Problem is built with.
func (c Config) problemOptions() anonymize.Options {
	o := anonymize.DefaultOptions()
	o.Workers = c.SearchWorkers
	o.ShardWorkers = c.ShardWorkers
	o.MemoMaxBytes = c.MemoMaxBytes
	return o
}

// Server is the resident service: shared engine, dataset registry, job
// manager and metrics, wired onto a method-pattern ServeMux.
type Server struct {
	cfg      Config
	engine   *core.Engine
	inline   *core.Engine
	registry *registry
	jobs     *jobManager
	metrics  *metrics
	gate     chan struct{}
	start    time.Time
	mux      *http.ServeMux
	patterns []string
	// store is the optional durable backend (cfg.Store); bootSeconds is the
	// daemon-reported startup duration (0 until SetBootDuration).
	store       *store.Manager
	bootSeconds atomic.Value // float64
	// ready gates /readyz: true from birth on a leader, flipped by the
	// replication loop after initial catch-up on a follower.
	ready atomic.Bool
}

// New builds a Server and starts its job workers.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		engine: core.NewEngineWithConfig(core.EngineConfig{MemoMaxBytes: cfg.MemoMaxBytes}),
		// Inline (client-chosen) bucketizations get their own bounded memo:
		// they still warm across requests, but hostile or high-cardinality
		// inline traffic can neither grow resident memory without limit nor
		// evict the registered datasets' warm entries.
		inline:   core.NewEngineWithConfig(core.EngineConfig{MemoMaxBytes: cfg.MemoMaxBytes}),
		registry: newRegistry(cfg.MaxDatasets),
		metrics:  newMetrics(),
		gate:     make(chan struct{}, cfg.MaxConcurrent),
		start:    time.Now(),
		mux:      http.NewServeMux(),
		store:    cfg.Store,
	}
	s.jobs = newJobManager(cfg.JobWorkers, cfg.JobQueueSize, cfg.JobHistory, s.metrics)
	s.ready.Store(!cfg.ReadOnly)
	s.routes()
	return s
}

// Engine exposes the process-wide shared disclosure engine (for tests and
// embedding callers).
func (s *Server) Engine() *core.Engine { return s.engine }

// InlineEngine exposes the bounded engine serving inline (client-chosen)
// bucketizations (for tests and embedding callers).
func (s *Server) InlineEngine() *core.Engine { return s.inline }

// Register adds a bundle to the dataset registry programmatically — the
// daemon's -preload path and embedding callers use this; HTTP clients use
// POST /v1/datasets. With a durable store configured the registration is
// persisted like an HTTP one: snapshot written, WAL opened, and the
// registration backed out if the write fails.
func (s *Server) Register(name string, b *dataload.Bundle) error {
	ds, err := s.registry.add(name, b, s.cfg.problemOptions(), s.cfg.MaxReleases)
	if err != nil {
		return err
	}
	if err := s.persistNewDataset(name, ds); err != nil {
		s.registry.remove(name)
		return fmt.Errorf("persisting dataset %q: %w", name, err)
	}
	return nil
}

// SetBootDuration records how long the daemon's startup (store recovery
// included) took; exported as the ckprivacyd_boot_seconds gauge.
func (s *Server) SetBootDuration(d time.Duration) {
	s.bootSeconds.Store(d.Seconds())
}

// Patterns returns every method-qualified route pattern the server
// registered on its mux, e.g. "POST /v1/disclosure". The OpenAPI coverage
// test asserts each appears in the served spec.
func (s *Server) Patterns() []string { return append([]string(nil), s.patterns...) }

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the job queue (in-flight and queued jobs finish) and
// stops the job workers. If ctx expires first, running jobs are cancelled
// and Shutdown returns ctx.Err() once the workers exit. The HTTP listener
// itself is the caller's to close (http.Server.Shutdown); cmd/ckprivacyd
// sequences both on SIGTERM.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.jobs.shutdown(ctx)
}

// routes installs every endpoint, instrumented for metrics.
func (s *Server) routes() {
	handle := func(pattern string, h http.HandlerFunc) {
		s.patterns = append(s.patterns, pattern)
		s.mux.Handle(pattern, s.metrics.instrument(pattern, h))
	}
	handle("POST /v1/datasets", s.handleRegisterDataset)
	handle("GET /v1/datasets", s.handleListDatasets)
	handle("GET /v1/datasets/{name}", s.handleGetDataset)
	handle("POST /v1/datasets/{name}/rows", s.handleAppendRows)
	handle("POST /v1/datasets/{name}/releases", s.handleCreateRelease)
	handle("GET /v1/datasets/{name}/releases", s.handleListReleases)
	handle("POST /v1/disclosure", s.handleDisclosure)
	handle("POST /v1/check", s.handleCheck)
	handle("POST /v1/estimate", s.handleEstimate)
	handle("POST /v1/anonymize", s.handleAnonymize)
	handle("GET /v1/jobs/{id}", s.handleGetJob)
	handle("DELETE /v1/jobs/{id}", s.handleCancelJob)
	handle("GET /v1/replication/datasets", s.handleReplicationDatasets)
	handle("GET /v1/replication/{name}/snapshot", s.handleReplicationSnapshot)
	handle("GET /v1/replication/{name}/wal", s.handleReplicationWAL)
	handle("GET /v1/openapi.yaml", s.handleOpenAPI)
	handle("GET /healthz", s.handleHealthz)
	handle("GET /readyz", s.handleReadyz)
	handle("GET /metrics", s.handleMetrics)
}

// acquireGate claims a slot on the global concurrency gate: immediately
// if one is free, otherwise waiting up to GateWait before shedding the
// request with 503 + Retry-After. This is the backpressure mechanism that
// keeps a flood of expensive DP requests from piling onto the CPU
// unboundedly. Handlers call it only after the request body is fully
// decoded and validated, so slow-loris bodies cannot wedge compute slots.
// On success the caller must invoke the returned release.
func (s *Server) acquireGate(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	select {
	case s.gate <- struct{}{}:
	default:
		timer := time.NewTimer(s.cfg.GateWait)
		defer timer.Stop()
		select {
		case s.gate <- struct{}{}:
		case <-timer.C:
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("server saturated: %d computations in flight", s.cfg.MaxConcurrent))
			return nil, false
		case <-r.Context().Done():
			writeError(w, statusClientClosedRequest, r.Context().Err())
			return nil, false
		}
	}
	return func() { <-s.gate }, true
}

// statusClientClosedRequest is nginx's non-standard 499 (client closed
// request); used when a request dies waiting on the gate.
const statusClientClosedRequest = 499
