package server

import (
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"ckprivacy/internal/store"
)

// walCoordinates reads the leader's shipping coordinates for one dataset
// off the replication listing.
func walCoordinates(t *testing.T, base, name string) replicationDatasetInfo {
	t.Helper()
	var list struct {
		Datasets []replicationDatasetInfo `json:"datasets"`
	}
	if code := getJSON(t, base+"/v1/replication/datasets", &list); code != http.StatusOK {
		t.Fatalf("replication datasets = %d", code)
	}
	for _, d := range list.Datasets {
		if d.Name == name {
			return d
		}
	}
	t.Fatalf("dataset %q not in replication listing: %+v", name, list.Datasets)
	return replicationDatasetInfo{}
}

// rawGet GETs url, returning status, headers and body.
func rawGet(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

func headerInt64(t *testing.T, h http.Header, key string) int64 {
	t.Helper()
	v, err := strconv.ParseInt(h.Get(key), 10, 64)
	if err != nil {
		t.Fatalf("header %s = %q: %v", key, h.Get(key), err)
	}
	return v
}

// TestReplicationEndpointsLeader drives the leader's three shipping
// endpoints over a persisted dataset: the listing's WAL coordinates, the
// raw snapshot bytes, and the committed WAL prefix decoded with the
// store's RecordScanner.
func TestReplicationEndpointsLeader(t *testing.T) {
	_, base := newPersistedServer(t, t.TempDir(), false)
	registerHospital(t, base, "h")
	appendRowsOK(t, base, "h", hospitalRows())
	createReleaseOK(t, base, "h")

	info := walCoordinates(t, base, "h")
	if info.WALRecords != 2 {
		t.Fatalf("wal_records = %d, want 2 (one append, one release)", info.WALRecords)
	}
	if info.WALCommitted <= store.WALHeaderLen {
		t.Fatalf("wal_committed = %d, want past the %d-byte header", info.WALCommitted, store.WALHeaderLen)
	}
	if info.Version != 2 || info.SnapshotVersion != 1 {
		t.Errorf("version/snapshot_version = %d/%d, want 2/1", info.Version, info.SnapshotVersion)
	}

	// Snapshot: raw CKPS bytes, decodable, coordinates in headers.
	code, hdr, raw := rawGet(t, base+"/v1/replication/h/snapshot")
	if code != http.StatusOK {
		t.Fatalf("snapshot = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("snapshot content type = %q", ct)
	}
	sd, err := store.DecodeSnapshot(raw)
	if err != nil {
		t.Fatalf("snapshot bytes do not decode: %v", err)
	}
	if got := headerInt64(t, hdr, headerReplicationBase); got != sd.Version || got != info.SnapshotVersion {
		t.Errorf("snapshot base header %d, decoded version %d, listing %d", got, sd.Version, info.SnapshotVersion)
	}
	if got := headerInt64(t, hdr, headerReplicationVersion); got != info.Version {
		t.Errorf("snapshot version header = %d, want %d", got, info.Version)
	}

	// Full WAL from offset 0: the scanner must decode the header plus
	// exactly the committed records and land on the committed size.
	code, hdr, stream := rawGet(t, base+"/v1/replication/h/wal?from=0")
	if code != http.StatusOK {
		t.Fatalf("wal from=0 = %d", code)
	}
	if got := headerInt64(t, hdr, headerReplicationCommitted); got != info.WALCommitted {
		t.Errorf("committed header = %d, listing said %d", got, info.WALCommitted)
	}
	sc, err := store.NewRecordScanner(info.SnapshotVersion, 0)
	if err != nil {
		t.Fatal(err)
	}
	sc.Feed(stream)
	var appends, releases int
	for {
		rec, ok, err := sc.Next()
		if err != nil {
			t.Fatalf("scanning shipped wal: %v", err)
		}
		if !ok {
			break
		}
		switch {
		case rec.Append != nil:
			appends++
			if rec.Append.Version != 2 {
				t.Errorf("append record version = %d, want 2", rec.Append.Version)
			}
		case rec.Release != nil:
			releases++
		}
	}
	if appends != 1 || releases != 1 {
		t.Errorf("decoded %d appends / %d releases, want 1 / 1", appends, releases)
	}
	if sc.Offset() != info.WALCommitted || sc.Buffered() != 0 {
		t.Errorf("scanner ended at %d with %d buffered, want %d / 0", sc.Offset(), sc.Buffered(), info.WALCommitted)
	}

	// At the tip with no wait: 200 with an empty body.
	code, _, stream = rawGet(t, base+"/v1/replication/h/wal?from="+strconv.FormatInt(info.WALCommitted, 10))
	if code != http.StatusOK || len(stream) != 0 {
		t.Errorf("wal at tip = %d with %d bytes, want 200 empty", code, len(stream))
	}
}

// TestReplicationWALErrors pins the typed failure surface of the WAL
// endpoint: bad cursors are 400, a superseded generation or a cursor past
// the committed prefix is 409 wal_superseded, unknown and unpersisted
// datasets are 404.
func TestReplicationWALErrors(t *testing.T) {
	_, base := newPersistedServer(t, t.TempDir(), false)
	registerHospital(t, base, "h")
	info := walCoordinates(t, base, "h")

	for _, bad := range []string{"from=abc", "from=-1", "from=7", ""} {
		var e errorBody
		if code := getJSON(t, base+"/v1/replication/h/wal?"+bad, &e); code != http.StatusBadRequest {
			t.Errorf("wal?%s = %d, want 400 (%s)", bad, code, e.Error)
		}
	}

	// A cursor past the committed prefix and a stale generation both demand
	// a re-snapshot.
	for _, q := range []string{
		"from=" + strconv.FormatInt(info.WALCommitted+64, 10),
		"from=0&base=999",
	} {
		var e errorBody
		if code := getJSON(t, base+"/v1/replication/h/wal?"+q, &e); code != http.StatusConflict {
			t.Fatalf("wal?%s = %d, want 409", q, code)
		}
		if e.Code != "wal_superseded" {
			t.Errorf("wal?%s code = %q, want wal_superseded", q, e.Code)
		}
		if b, ok := detailInt(e, "base"); !ok || int64(b) != info.SnapshotVersion {
			t.Errorf("wal?%s detail base = %v, want %d", q, e.Detail["base"], info.SnapshotVersion)
		}
	}

	if code := getJSON(t, base+"/v1/replication/ghost/wal?from=0", nil); code != http.StatusNotFound {
		t.Errorf("wal for unknown dataset = %d, want 404", code)
	}
	if code := getJSON(t, base+"/v1/replication/ghost/snapshot", nil); code != http.StatusNotFound {
		t.Errorf("snapshot for unknown dataset = %d, want 404", code)
	}

	// An in-memory server has nothing durable to ship: empty listing, 404s.
	_, ts := newTestServer(t, Config{})
	registerHospital(t, ts.URL, "mem")
	var list struct {
		Datasets []replicationDatasetInfo `json:"datasets"`
	}
	if code := getJSON(t, ts.URL+"/v1/replication/datasets", &list); code != http.StatusOK || len(list.Datasets) != 0 {
		t.Errorf("in-memory replication listing = %d with %d datasets, want 200 empty", code, len(list.Datasets))
	}
	if code := getJSON(t, ts.URL+"/v1/replication/mem/snapshot", nil); code != http.StatusNotFound {
		t.Errorf("snapshot of unpersisted dataset = %d, want 404", code)
	}
}

// TestReplicationWALLongPoll parks a tailing request at the committed tip
// and expects a concurrent append to release it with the new bytes well
// before the wait budget expires.
func TestReplicationWALLongPoll(t *testing.T) {
	_, base := newPersistedServer(t, t.TempDir(), false)
	registerHospital(t, base, "h")
	info := walCoordinates(t, base, "h")

	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(50 * time.Millisecond)
		appendRowsOK(t, base, "h", hospitalRows())
	}()

	begin := time.Now()
	code, hdr, stream := rawGet(t, base+"/v1/replication/h/wal?from="+
		strconv.FormatInt(info.WALCommitted, 10)+"&base="+strconv.FormatInt(info.SnapshotVersion, 10)+"&wait_ms=10000")
	elapsed := time.Since(begin)
	<-done
	if code != http.StatusOK || len(stream) == 0 {
		t.Fatalf("long-poll = %d with %d bytes, want 200 with the append record", code, len(stream))
	}
	if elapsed > 5*time.Second {
		t.Errorf("long-poll took %s; the commit notification did not release it", elapsed)
	}
	if got := headerInt64(t, hdr, headerReplicationCommitted); got != info.WALCommitted+int64(len(stream)) {
		t.Errorf("committed header %d != cursor %d + %d returned bytes", got, info.WALCommitted, len(stream))
	}
	sc, err := store.NewRecordScanner(info.SnapshotVersion, info.WALCommitted)
	if err != nil {
		t.Fatal(err)
	}
	sc.Feed(stream)
	rec, ok, err := sc.Next()
	if err != nil || !ok || rec.Append == nil {
		t.Fatalf("long-polled bytes did not decode to the append record: ok=%v err=%v", ok, err)
	}
}

// shipDataset copies one dataset leader → follower the way the replica
// package does, but in-process: install the snapshot bytes, then scan the
// committed WAL and apply every record.
func shipDataset(t *testing.T, leader, follower *Server, name string) {
	t.Helper()
	ds, ok := leader.registry.get(name)
	if !ok || ds.persist == nil {
		t.Fatalf("leader dataset %q is not persisted", name)
	}
	raw, snapVersion, err := ds.persist.log.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	if err := follower.InstallReplicaSnapshot(name, raw); err != nil {
		t.Fatalf("install snapshot: %v", err)
	}
	base, committed, _ := ds.persist.log.Committed()
	if base != snapVersion {
		t.Fatalf("wal base %d != snapshot version %d", base, snapVersion)
	}
	data, _, err := ds.persist.log.ReadCommitted(store.WALHeaderLen, 0)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := store.NewRecordScanner(base, store.WALHeaderLen)
	if err != nil {
		t.Fatal(err)
	}
	sc.Feed(data)
	records := 0
	for {
		rec, ok, err := sc.Next()
		if err != nil {
			t.Fatalf("scanning leader wal: %v", err)
		}
		if !ok {
			break
		}
		if err := follower.ApplyReplicated(name, rec); err != nil {
			t.Fatalf("applying record %d: %v", records, err)
		}
		records++
	}
	follower.SetReplicaProgress(name, ReplicaProgress{
		AppliedVersion:  follower.DatasetVersion(name),
		AppliedOffset:   sc.Offset(),
		AppliedRecords:  records,
		LeaderCommitted: committed,
		LeaderRecords:   records,
		CaughtUp:        true,
	})
}

// TestFollowerPinnedVersionReads is the follower HTTP read surface: the
// current version answers match the leader's, every historical version is
// servable via ?version= with the exact answer the leader gave at that
// version, and the pin-miss / bad-pin paths are typed.
func TestFollowerPinnedVersionReads(t *testing.T) {
	leaderSrv, leaderBase := newPersistedServer(t, t.TempDir(), false)
	registerHospital(t, leaderBase, "h")

	// byVersion[v] is the leader's disclosure answer at version v, captured
	// synchronously while the traffic ran.
	discAt := func(base string, query string) map[string]any {
		var disc map[string]any
		if code := postJSON(t, base+"/v1/disclosure"+query, map[string]any{"dataset": "h", "k": 2}, &disc); code != http.StatusOK {
			t.Fatalf("disclosure%s = %d: %v", query, code, disc)
		}
		delete(disc, "elapsed_ms")
		return disc
	}
	byVersion := map[int64]map[string]any{1: discAt(leaderBase, "")}
	appendRowsOK(t, leaderBase, "h", hospitalRows())
	byVersion[2] = discAt(leaderBase, "")
	createReleaseOK(t, leaderBase, "h")
	appendRowsOK(t, leaderBase, "h", [][]string{{"14870", "44", "F", "heart-disease"}})
	byVersion[3] = discAt(leaderBase, "")

	followerSrv, followerTS := newTestServer(t, Config{ReadOnly: true})
	shipDataset(t, leaderSrv, followerSrv, "h")

	// Current reads match the leader; each historical version pins exactly.
	for v, want := range byVersion {
		got := discAt(followerTS.URL, "?version="+strconv.FormatInt(v, 10))
		for key, wv := range want {
			if gv, ok := got[key]; !ok || !jsonEqual(wv, gv) {
				t.Errorf("version %d field %q: follower %v != leader %v", v, key, gv, wv)
			}
		}
	}
	if got, want := discAt(followerTS.URL, ""), byVersion[3]; !jsonEqual(got["disclosure"], want["disclosure"]) {
		t.Errorf("current follower disclosure %v != leader %v", got["disclosure"], want["disclosure"])
	}

	// /v1/check honors the same pin.
	var chk checkResponse
	if code := postJSON(t, followerTS.URL+"/v1/check?version=1",
		map[string]any{"dataset": "h", "criterion": "ck", "c": 0.7, "k": 1}, &chk); code != http.StatusOK {
		t.Fatalf("pinned check = %d", code)
	}
	if chk.Version != 1 {
		t.Errorf("pinned check answered at version %d, want 1", chk.Version)
	}

	// Pin misses and malformed pins are typed.
	var e errorBody
	if code := postJSON(t, followerTS.URL+"/v1/disclosure?version=999",
		map[string]any{"dataset": "h", "k": 1}, &e); code != http.StatusNotFound {
		t.Errorf("absent pin = %d, want 404 (%s)", code, e.Error)
	}
	if code := postJSON(t, followerTS.URL+"/v1/disclosure?version=0",
		map[string]any{"dataset": "h", "k": 1}, &e); code != http.StatusBadRequest {
		t.Errorf("version=0 = %d, want 400", code)
	}
	if code := postJSON(t, followerTS.URL+"/v1/disclosure?version=2",
		map[string]any{"groups": [][]string{{"a", "b"}}, "k": 1}, &e); code != http.StatusBadRequest {
		t.Errorf("pin on inline groups = %d, want 400", code)
	}

	// The dataset listing carries the replication block.
	var info struct {
		Replication *replicationInfo `json:"replication"`
	}
	if code := getJSON(t, followerTS.URL+"/v1/datasets/h", &info); code != http.StatusOK || info.Replication == nil {
		t.Fatalf("follower dataset info lacks replication block (code %d)", code)
	}
	if !info.Replication.CaughtUp || info.Replication.LagRecords != 0 {
		t.Errorf("replication block = %+v, want caught up with 0 lag", info.Replication)
	}
	if info.Replication.PinnedVersions != 3 {
		t.Errorf("pinned_versions = %d, want 3", info.Replication.PinnedVersions)
	}
}

// jsonEqual compares two decoded-JSON values structurally.
func jsonEqual(a, b any) bool {
	return reflect.DeepEqual(a, b)
}

// TestFollowerRejectsWrites: every mutating endpoint on a follower answers
// 403 with the read_only code before touching anything.
func TestFollowerRejectsWrites(t *testing.T) {
	leaderSrv, leaderBase := newPersistedServer(t, t.TempDir(), false)
	registerHospital(t, leaderBase, "h")
	followerSrv, followerTS := newTestServer(t, Config{ReadOnly: true})
	shipDataset(t, leaderSrv, followerSrv, "h")

	for _, w := range []struct {
		path string
		body map[string]any
	}{
		{"/v1/datasets", map[string]any{"name": "x", "builtin": "hospital"}},
		{"/v1/datasets/h/rows", map[string]any{"rows": hospitalRows()}},
		{"/v1/datasets/h/releases", map[string]any{}},
	} {
		resp := rawPost(t, followerTS.URL+w.path, w.body)
		if resp.status != http.StatusForbidden || resp.body.Code != "read_only" {
			t.Errorf("POST %s on follower = %d/%q, want 403/read_only", w.path, resp.status, resp.body.Code)
		}
	}
	// Nothing was applied: the version is unchanged and no dataset appeared.
	if v := followerSrv.DatasetVersion("h"); v != 1 {
		t.Errorf("follower version moved to %d after rejected writes", v)
	}
	if code := getJSON(t, followerTS.URL+"/v1/datasets/x", nil); code != http.StatusNotFound {
		t.Errorf("rejected register still created dataset: %d", code)
	}
}

// TestFollowerReadinessAndMetrics: /readyz is a 503 not_ready gate until
// catch-up flips it, and the replica gauge families are on /metrics.
func TestFollowerReadinessAndMetrics(t *testing.T) {
	leaderSrv, leaderBase := newPersistedServer(t, t.TempDir(), false)
	registerHospital(t, leaderBase, "h")
	appendRowsOK(t, leaderBase, "h", hospitalRows())
	followerSrv, followerTS := newTestServer(t, Config{ReadOnly: true})

	var e errorBody
	resp, err := http.Get(followerTS.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	retryAfter := resp.Header.Get("Retry-After")
	code := resp.StatusCode
	decodeBody(t, resp, &e)
	if code != http.StatusServiceUnavailable || e.Code != "not_ready" {
		t.Fatalf("/readyz before catch-up = %d/%q, want 503/not_ready", code, e.Code)
	}
	if retryAfter == "" {
		t.Error("not_ready response lacks Retry-After")
	}

	shipDataset(t, leaderSrv, followerSrv, "h")
	followerSrv.SetReady(true)
	var ready struct {
		Status   string `json:"status"`
		ReadOnly bool   `json:"read_only"`
	}
	if code := getJSON(t, followerTS.URL+"/readyz", &ready); code != http.StatusOK || ready.Status != "ready" || !ready.ReadOnly {
		t.Errorf("/readyz after catch-up = %d %+v, want 200 ready read_only", code, ready)
	}

	metrics := getText(t, followerTS.URL+"/metrics")
	for _, want := range []string{
		`ckprivacyd_replica_lag_records{dataset="h"} 0`,
		`ckprivacyd_replica_lag_seconds{dataset="h"} 0`,
		`ckprivacyd_replica_applied_version{dataset="h"} 2`,
		`ckprivacyd_replica_applied_offset{dataset="h"}`,
		`ckprivacyd_replica_leader_offset{dataset="h"}`,
		"ckprivacyd_replica_ready 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("follower metrics missing %q:\n%s", want, grepMetrics(metrics, "replica"))
		}
	}
	// A leader never exposes the follower-only gauge.
	leaderMetrics := getText(t, leaderBase+"/metrics")
	if strings.Contains(leaderMetrics, "ckprivacyd_replica_ready") {
		t.Error("leader metrics expose ckprivacyd_replica_ready")
	}
}

// TestFollowerPinEviction bounds the pinned-version window: with
// MaxPinnedVersions=2 only the two newest versions stay servable.
func TestFollowerPinEviction(t *testing.T) {
	leaderSrv, leaderBase := newPersistedServer(t, t.TempDir(), false)
	registerHospital(t, leaderBase, "h")
	appendRowsOK(t, leaderBase, "h", hospitalRows())
	appendRowsOK(t, leaderBase, "h", [][]string{{"14870", "44", "F", "flu"}})
	appendRowsOK(t, leaderBase, "h", [][]string{{"14871", "45", "M", "mumps"}})

	followerSrv, followerTS := newTestServer(t, Config{ReadOnly: true, MaxPinnedVersions: 2})
	shipDataset(t, leaderSrv, followerSrv, "h")

	ds, _ := followerSrv.registry.get("h")
	if n := ds.pins.count(); n != 2 {
		t.Fatalf("pinned %d versions with a window of 2", n)
	}
	for v, wantCode := range map[int]int{1: 404, 2: 404, 3: 200, 4: 200} {
		code := postJSON(t, followerTS.URL+"/v1/disclosure?version="+strconv.Itoa(v),
			map[string]any{"dataset": "h", "k": 1}, nil)
		if code != wantCode {
			t.Errorf("pinned read at evicted/kept version %d = %d, want %d", v, code, wantCode)
		}
	}
}

// TestFollowerDivergenceStopsServing: a record that does not reproduce its
// own version marks the dataset diverged, ApplyReplicated surfaces
// ErrReplicaDiverged, and every subsequent read is 503 replica_diverged
// instead of a divergent answer.
func TestFollowerDivergenceStopsServing(t *testing.T) {
	leaderSrv, leaderBase := newPersistedServer(t, t.TempDir(), false)
	registerHospital(t, leaderBase, "h")
	followerSrv, followerTS := newTestServer(t, Config{ReadOnly: true})
	shipDataset(t, leaderSrv, followerSrv, "h")

	// A forged append whose record names the wrong version: the in-memory
	// apply would mint version 2, the record claims 7.
	err := followerSrv.ApplyReplicated("h", store.Record{
		Append: &store.AppendRecord{Version: 7, Rows: hospitalRows()},
	})
	if err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("forged append error = %v, want divergence", err)
	}

	var e errorBody
	if code := postJSON(t, followerTS.URL+"/v1/disclosure",
		map[string]any{"dataset": "h", "k": 1}, &e); code != http.StatusServiceUnavailable {
		t.Fatalf("read on diverged dataset = %d, want 503", code)
	}
	if e.Code != "replica_diverged" {
		t.Errorf("diverged read code = %q, want replica_diverged", e.Code)
	}
	// The failure is also visible on the dataset listing.
	var info struct {
		Replication *replicationInfo `json:"replication"`
	}
	if code := getJSON(t, followerTS.URL+"/v1/datasets/h", &info); code != http.StatusOK ||
		info.Replication == nil || !strings.Contains(info.Replication.Error, "diverged") {
		t.Errorf("dataset info does not surface divergence: %+v", info.Replication)
	}
}

// TestApplyReplicatedReleaseIndex: a replicated release must land exactly
// on the next release index; skipping ahead is divergence.
func TestApplyReplicatedReleaseIndex(t *testing.T) {
	leaderSrv, leaderBase := newPersistedServer(t, t.TempDir(), false)
	registerHospital(t, leaderBase, "h")
	createReleaseOK(t, leaderBase, "h")
	followerSrv, _ := newTestServer(t, Config{ReadOnly: true})
	shipDataset(t, leaderSrv, followerSrv, "h")

	ds, _ := leaderSrv.registry.get("h")
	rel, _ := ds.releases.snapshot()
	if len(rel) != 1 {
		t.Fatalf("leader retains %d releases, want 1", len(rel))
	}
	rec := releaseToRecord(rel[0])
	rec.Index = 5 // skip ahead: the follower's log expects index 1 next
	err := followerSrv.ApplyReplicated("h", store.Record{Release: &rec})
	if err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("out-of-order release error = %v, want divergence", err)
	}
}

// decodeBody decodes a response body into out and closes it.
func decodeBody(t *testing.T, resp *http.Response, out any) {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatalf("unmarshal %q: %v", data, err)
	}
}
