package server

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestConcurrentClients hammers the service from many goroutines at once —
// mixed disclosure, check, estimate, registration, job submission/polling
// and metrics traffic — so `go test -race ./...` exercises every piece of
// shared state: the engine memo, the per-dataset bucketization caches, the
// registry, the job manager and the metrics maps.
func TestConcurrentClients(t *testing.T) {
	_, ts := newTestServer(t, Config{
		MaxConcurrent: 8,
		JobWorkers:    2,
		JobQueueSize:  64,
		GateWait:      10 * time.Second, // do not shed under test load
	})
	registerHospital(t, ts.URL, "hospital")

	const clients = 8
	const rounds = 6
	var wg sync.WaitGroup
	errs := make(chan string, clients*rounds*4)

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 60 * time.Second}
			for r := 0; r < rounds; r++ {
				// Disclosure: half warm-identical, half varied k.
				k := 1 + (c+r)%2
				code := postJSONClient(client, ts.URL+"/v1/disclosure",
					map[string]any{"dataset": "hospital", "k": k}, nil)
				if code != http.StatusOK {
					errs <- fmt.Sprintf("client %d round %d: disclosure = %d", c, r, code)
				}
				// Safety verdict.
				code = postJSONClient(client, ts.URL+"/v1/check",
					map[string]any{"dataset": "hospital", "criterion": "ck", "c": 0.7, "k": 1}, nil)
				if code != http.StatusOK {
					errs <- fmt.Sprintf("client %d round %d: check = %d", c, r, code)
				}
				// Job submission; queue is sized to hold them all.
				var acc anonymizeAccepted
				code = postJSONClient(client, ts.URL+"/v1/anonymize",
					map[string]any{"dataset": "hospital", "criterion": "ck", "c": 0.7, "k": 1, "method": "chain"}, &acc)
				if code != http.StatusAccepted {
					errs <- fmt.Sprintf("client %d round %d: anonymize = %d", c, r, code)
					continue
				}
				// Poll whatever state it is in right now (no waiting; the
				// cleanup drain finishes them) and read metrics.
				var st jobStatus
				if code := getJSONClient(client, ts.URL+"/v1/jobs/"+acc.ID, &st); code != http.StatusOK {
					errs <- fmt.Sprintf("client %d round %d: job poll = %d", c, r, code)
				}
				if _, err := client.Get(ts.URL + "/metrics"); err != nil {
					errs <- fmt.Sprintf("client %d round %d: metrics: %v", c, r, err)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestConcurrentRegistration races dataset registrations against reads.
func TestConcurrentRegistration(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxDatasets: 128})
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for r := 0; r < 4; r++ {
				name := fmt.Sprintf("h-%d-%d", c, r)
				code := postJSONClient(client, ts.URL+"/v1/datasets",
					map[string]any{"name": name, "builtin": "hospital"}, nil)
				if code != http.StatusCreated {
					t.Errorf("register %s = %d", name, code)
				}
				if code := getJSONClient(client, ts.URL+"/v1/datasets/"+name, nil); code != http.StatusOK {
					t.Errorf("get %s = %d", name, code)
				}
				postJSONClient(client, ts.URL+"/v1/disclosure",
					map[string]any{"dataset": name, "k": 1}, nil)
			}
		}(c)
	}
	wg.Wait()
}
