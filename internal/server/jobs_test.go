package server

import (
	"context"
	"net/http"
	"testing"
	"time"

	"ckprivacy/internal/anonymize"
	"ckprivacy/internal/bucket"
	"ckprivacy/internal/dataload"
	"ckprivacy/internal/privacy"
)

// blockingCriterion parks every Satisfied call until released, letting the
// tests hold a job in the running state deterministically.
type blockingCriterion struct {
	entered chan struct{} // closed-ish signal: one send per Satisfied call
	release chan struct{}
}

func (b blockingCriterion) Name() string { return "blocking" }

func (b blockingCriterion) Satisfied(bz *bucket.Bucketization) (bool, error) {
	select {
	case b.entered <- struct{}{}:
	default:
	}
	<-b.release
	return true, nil
}

// hospitalSpec builds a jobSpec over the hospital lattice with the given
// criterion.
func hospitalSpec(t *testing.T, crit privacy.Criterion) *jobSpec {
	t.Helper()
	b := dataload.Hospital()
	p, err := anonymize.NewProblem(b.Table, b.Hierarchies, b.QI)
	if err != nil {
		t.Fatal(err)
	}
	return &jobSpec{
		dataset:   "hospital",
		method:    "chain",
		criterion: crit,
		critName:  crit.Name(),
		problem:   p,
	}
}

func TestJobQueueBackpressure(t *testing.T) {
	m := newJobManager(1, 1, 64, newMetrics())
	block := blockingCriterion{entered: make(chan struct{}, 8), release: make(chan struct{})}

	// First job occupies the single worker...
	j1, err := m.submit(hospitalSpec(t, block))
	if err != nil {
		t.Fatal(err)
	}
	<-block.entered // ...provably running.

	// Second fills the queue; third must be rejected.
	if _, err := m.submit(hospitalSpec(t, block)); err != nil {
		t.Fatalf("queue slot rejected: %v", err)
	}
	if _, err := m.submit(hospitalSpec(t, block)); err == nil {
		t.Fatal("third submission accepted despite a full queue")
	}
	if got := m.queueDepth(); got != 1 {
		t.Errorf("queue depth = %d, want 1", got)
	}

	close(block.release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.shutdown(ctx); err != nil {
		t.Fatalf("drain after release: %v", err)
	}
	st := j1.snapshot()
	if st.State != JobDone {
		t.Errorf("first job = %q, want done", st.State)
	}
	// Submissions after shutdown are refused.
	if _, err := m.submit(hospitalSpec(t, block)); err == nil {
		t.Error("submit after shutdown accepted")
	}
}

func TestJobCancelQueuedAndRunning(t *testing.T) {
	m := newJobManager(1, 4, 64, newMetrics())
	block := blockingCriterion{entered: make(chan struct{}, 8), release: make(chan struct{})}

	running, err := m.submit(hospitalSpec(t, block))
	if err != nil {
		t.Fatal(err)
	}
	<-block.entered
	queued, err := m.submit(hospitalSpec(t, block))
	if err != nil {
		t.Fatal(err)
	}

	// Cancelling the queued job flips it to cancelled without running.
	if j, ok := m.cancelJob(queued.id); !ok || j.snapshot().State != JobCancelled {
		t.Fatalf("queued cancel = %v", j.snapshot())
	}
	// Cancelling the running job: the context aborts the search once the
	// criterion returns.
	if _, ok := m.cancelJob(running.id); !ok {
		t.Fatal("running job not found")
	}
	close(block.release)

	deadline := time.Now().Add(10 * time.Second)
	for running.snapshot().State == JobRunning || running.snapshot().State == JobQueued {
		if time.Now().After(deadline) {
			t.Fatalf("running job stuck in %q after cancel", running.snapshot().State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := running.snapshot(); st.State != JobCancelled {
		t.Errorf("cancelled running job = %q", st.State)
	}
	if _, ok := m.cancelJob("job-000099"); ok {
		t.Error("cancel of unknown job reported success")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownDeadlineCancelsJobs drives the deadline path: shutdown with
// an already-expired context must cancel the running job and still return
// once the workers exit.
func TestShutdownDeadlineCancelsJobs(t *testing.T) {
	m := newJobManager(1, 4, 64, newMetrics())
	// A ck criterion with the real DP would finish too fast to observe;
	// block until the shutdown path cancels us, then release.
	block := blockingCriterion{entered: make(chan struct{}, 8), release: make(chan struct{})}
	j, err := m.submit(hospitalSpec(t, block))
	if err != nil {
		t.Fatal(err)
	}
	<-block.entered

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired before the drain starts
	done := make(chan error, 1)
	go func() { done <- m.shutdown(ctx) }()

	// shutdown cancels the job's context, the blocked criterion releases,
	// and the ctxCriterion aborts the search.
	select {
	case <-j.ctx.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown never cancelled the running job")
	}
	close(block.release)
	if err := <-done; err == nil {
		t.Error("deadline shutdown returned nil, want context error")
	}
	if st := j.snapshot(); st.State != JobCancelled {
		t.Errorf("job after deadline shutdown = %q, want cancelled", st.State)
	}
}

// TestJobFailure surfaces search errors as the failed state.
func TestJobFailure(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerHospital(t, ts.URL, "h")

	// A k above the per-request cap is rejected at submission time.
	var e errorBody
	if code := postJSON(t, ts.URL+"/v1/anonymize",
		map[string]any{"dataset": "h", "criterion": "ck", "c": 0.7, "k": 99}, &e); code != http.StatusBadRequest {
		t.Fatalf("over-cap anonymize = %d", code)
	}

	// "No safe generalization exists" is a successful result with
	// Exists=false: distinct-l with more values than the domain holds.
	var acc anonymizeAccepted
	if code := postJSON(t, ts.URL+"/v1/anonymize",
		map[string]any{"dataset": "h", "criterion": "distinct-l", "l": 40, "method": "chain"},
		&acc); code != http.StatusAccepted {
		t.Fatalf("anonymize = %d", code)
	}
	st := pollJob(t, ts.URL, acc.ID)
	if st.State != JobDone || st.Result == nil || st.Result.Exists {
		t.Errorf("impossible criterion job = %+v", st)
	}
}

// TestJobHistoryEviction bounds the retained-job map: once more than
// maxHistory jobs exist, the oldest terminal ones are dropped while live
// ones survive.
func TestJobHistoryEviction(t *testing.T) {
	m := newJobManager(1, 8, 3, newMetrics())
	crit := privacy.KAnonymity{K: 1} // trivially fast jobs

	var ids []string
	for i := 0; i < 6; i++ {
		j, err := m.submit(hospitalSpec(t, crit))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.id)
		// Let each job finish so it is evictable before the next submit.
		deadline := time.Now().Add(10 * time.Second)
		for {
			if st := j.snapshot(); st.State == JobDone {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s never finished", j.id)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	m.mu.Lock()
	retained := len(m.jobs)
	m.mu.Unlock()
	if retained > 3 {
		t.Errorf("retained %d jobs, want <= 3", retained)
	}
	if _, ok := m.get(ids[0]); ok {
		t.Errorf("oldest job %s survived eviction", ids[0])
	}
	if _, ok := m.get(ids[len(ids)-1]); !ok {
		t.Errorf("newest job %s was evicted", ids[len(ids)-1])
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}
