package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"ckprivacy/internal/anonymize"
	"ckprivacy/internal/store"
	"ckprivacy/internal/table"
)

// This file is the replication layer. A leader exposes read-only shipping
// endpoints over its durable store: the dataset list, the current CKPS
// snapshot (raw bytes), and the WAL's committed prefix at arbitrary byte
// cursors with long-poll semantics. A follower (Config.ReadOnly) is
// "recovery that never stops": internal/replica boots each dataset from
// the leader's snapshot, tails the WAL, and applies every record through
// the same Problem.Append / release-log path boot replay uses — so the
// follower's state is byte-identical to the leader's at every applied
// version. Followers additionally retain a bounded window of pinned
// version snapshots so reads can be served at a client-chosen historical
// version (?version=).

// errReadOnly rejects writes on a follower (HTTP 403, code "read_only").
var errReadOnly = errors.New("this daemon is a read-only follower; send writes to the leader")

// errNotReady marks a follower still in initial catch-up (HTTP 503,
// code "not_ready").
var errNotReady = errors.New("follower has not completed initial catch-up")

// errWALSuperseded tells a replication client its WAL cursor references a
// generation the leader has compacted away (HTTP 409, code
// "wal_superseded"); the follower re-bootstraps from a fresh snapshot.
var errWALSuperseded = errors.New("wal generation superseded by compaction; fetch a fresh snapshot")

// ErrReplicaDiverged marks a fatal replication failure: an applied record
// did not reproduce the version or release index its WAL record names, so
// the follower's state no longer matches the leader's. The dataset stops
// serving rather than expose divergent answers.
var ErrReplicaDiverged = errors.New("replica diverged from leader")

// rejectReadOnly writes the read_only envelope when the server is a
// follower; mutating handlers call it first.
func (s *Server) rejectReadOnly(w http.ResponseWriter) bool {
	if !s.cfg.ReadOnly {
		return false
	}
	writeError(w, http.StatusForbidden, errReadOnly)
	return true
}

// ---- pinned version snapshots (follower reads at ?version=) ----

// versionPins retains a bounded window of a follower dataset's immutable
// version snapshots, newest versions kept. Snapshots are structure-sharing
// (each append patches the previous state), so the window costs far less
// than proportional memory.
type versionPins struct {
	mu    sync.Mutex
	max   int
	byV   map[int64]*anonymize.Snapshot
	order []int64 // pinned versions, ascending (pins arrive in order)
}

func newVersionPins(max int) *versionPins {
	return &versionPins{max: max, byV: make(map[int64]*anonymize.Snapshot)}
}

// pin retains snap, evicting the oldest pinned version past the bound.
func (p *versionPins) pin(snap *anonymize.Snapshot) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v := snap.Version()
	if _, ok := p.byV[v]; ok {
		p.byV[v] = snap
		return
	}
	p.byV[v] = snap
	p.order = append(p.order, v)
	for len(p.order) > p.max {
		delete(p.byV, p.order[0])
		p.order = p.order[1:]
	}
}

// get looks up a pinned version.
func (p *versionPins) get(v int64) (*anonymize.Snapshot, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	snap, ok := p.byV[v]
	return snap, ok
}

// count reports how many versions are pinned.
func (p *versionPins) count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.order)
}

// ---- per-dataset replication status ----

// ReplicaProgress is a follower dataset's replication position, reported
// by the tailing loop after each applied batch and surfaced on
// /v1/datasets and /metrics.
type ReplicaProgress struct {
	// AppliedVersion is the dataset version the follower has applied.
	AppliedVersion int64
	// AppliedOffset is the leader WAL byte offset of the next record to
	// fetch (equal to the follower's local committed WAL size when it
	// persists locally).
	AppliedOffset int64
	// AppliedRecords counts records applied since the current WAL base.
	AppliedRecords int
	// LeaderCommitted / LeaderRecords echo the leader's committed WAL size
	// and record count from the latest fetch.
	LeaderCommitted int64
	// LeaderRecords is the leader's committed record count.
	LeaderRecords int
	// CaughtUp reports whether the follower had applied everything the
	// leader had committed as of the latest fetch.
	CaughtUp bool
}

// replicaState tracks one follower dataset's progress and health.
type replicaState struct {
	mu          sync.Mutex
	pr          ReplicaProgress
	behindSince time.Time
	err         error
}

func newReplicaState(pr ReplicaProgress) *replicaState {
	return &replicaState{pr: pr, behindSince: time.Now()}
}

// setProgress records the latest tail position and lag baseline. A
// successful apply clears any transient failure (divergence, being fatal,
// sticks).
func (rs *replicaState) setProgress(pr ReplicaProgress) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if pr.CaughtUp {
		rs.behindSince = time.Time{}
	} else if rs.pr.CaughtUp || rs.behindSince.IsZero() {
		rs.behindSince = time.Now()
	}
	if rs.err != nil && !errors.Is(rs.err, ErrReplicaDiverged) {
		rs.err = nil
	}
	rs.pr = pr
}

// setErr records a replication failure (transient corruption or fatal
// divergence).
func (rs *replicaState) setErr(err error) {
	rs.mu.Lock()
	rs.err = err
	rs.mu.Unlock()
}

// status returns the progress, current lag in seconds, and failure.
func (rs *replicaState) status() (pr ReplicaProgress, lagSeconds float64, err error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !rs.pr.CaughtUp && !rs.behindSince.IsZero() {
		lagSeconds = time.Since(rs.behindSince).Seconds()
	}
	return rs.pr, lagSeconds, rs.err
}

// divergedErr returns the recorded failure only when it is fatal
// divergence — the one condition that stops a dataset from serving.
func (rs *replicaState) divergedErr() error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.err != nil && errors.Is(rs.err, ErrReplicaDiverged) {
		return rs.err
	}
	return nil
}

// lagRecords computes the record lag from a progress report.
func (pr ReplicaProgress) lagRecords() int {
	lag := pr.LeaderRecords - pr.AppliedRecords
	if lag < 0 {
		lag = 0
	}
	return lag
}

// ---- follower wiring (called by internal/replica) ----

// SetReady flips the readiness gate (/readyz). A leader is born ready; a
// follower starts not-ready and is marked ready by the replication loop
// once every dataset has completed initial catch-up.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Ready reports the readiness gate's state.
func (s *Server) Ready() bool { return s.ready.Load() }

// ReadOnly reports whether the server is a follower (Config.ReadOnly).
func (s *Server) ReadOnly() bool { return s.cfg.ReadOnly }

// InstallReplicaSnapshot bootstraps (or re-bootstraps, after a
// wal_superseded) one follower dataset from the leader's raw snapshot
// bytes. With a local store the bytes are persisted verbatim first —
// keeping the follower's disk byte-identical to the leader's, which is
// what lets a rebooted follower resume from its local WAL size instead of
// re-fetching the snapshot. Any previously installed dataset under the
// name is replaced.
func (s *Server) InstallReplicaSnapshot(name string, raw []byte) error {
	var (
		sd  *store.SnapshotData
		dl  *store.DatasetLog
		err error
	)
	if s.store != nil {
		sd, dl, err = s.store.InstallSnapshot(name, raw)
	} else {
		sd, err = store.DecodeSnapshot(raw)
	}
	if err != nil {
		return err
	}
	b, p, err := s.rebuildProblem(name, sd)
	if err != nil {
		if dl != nil {
			dl.Close()
		}
		return err
	}
	ds := &dataset{
		bundle:    b,
		problem:   p,
		releases:  releaseLog{max: s.cfg.MaxReleases},
		recovered: "replica",
		pins:      newVersionPins(s.cfg.MaxPinnedVersions),
	}
	if dl != nil {
		ds.persist = &datasetStore{log: dl}
	}
	if err := s.restoreReleases(ds, sd.Releases, nil); err != nil {
		if dl != nil {
			dl.Close()
		}
		return err
	}
	ds.pins.pin(p.Snapshot())
	ds.repl = newReplicaState(ReplicaProgress{
		AppliedVersion: sd.Version,
		AppliedOffset:  store.WALHeaderLen,
	})
	if old, ok := s.registry.get(name); ok && old.persist != nil && old.persist != ds.persist {
		old.persist.log.Close()
	}
	return s.registry.replace(name, ds)
}

// ReplicaResume reports the locally recovered replication cursor for a
// dataset: the WAL base version, the committed byte offset to resume
// fetching from, and the records already applied. ok is false when the
// dataset is not installed or not locally persisted (the follower then
// bootstraps from a fresh leader snapshot).
func (s *Server) ReplicaResume(name string) (base, offset int64, records int, ok bool) {
	ds, exists := s.registry.get(name)
	if !exists || ds.persist == nil {
		return 0, 0, 0, false
	}
	base, offset, records = ds.persist.log.Committed()
	return base, offset, records, true
}

// ApplyReplicated applies one shipped WAL record to a follower dataset,
// exactly as boot replay would: an append runs through Problem.Append and
// must reproduce the version its record names; a release must land on the
// next release index. The follower persists locally log-then-apply (the
// opposite of the leader's apply-then-log): a crash between the two
// replays the record at boot, so disk can never be behind memory. A
// verification failure wraps ErrReplicaDiverged — the dataset stops
// serving rather than expose divergent state; other errors (a local disk
// write failure) are transient and retried by the caller.
func (s *Server) ApplyReplicated(name string, rec store.Record) error {
	ds, ok := s.registry.get(name)
	if !ok {
		return fmt.Errorf("dataset %q not installed", name)
	}
	ds.appendMu.Lock()
	defer ds.appendMu.Unlock()
	switch {
	case rec.Append != nil:
		if ds.persist != nil {
			if err := ds.persist.log.LogAppend(rec.Append); err != nil {
				return fmt.Errorf("logging replicated append: %w", err)
			}
		}
		rows := make([]table.Row, len(rec.Append.Rows))
		for i, r := range rec.Append.Rows {
			rows[i] = table.Row(r)
		}
		res, err := ds.problem.Append(rows)
		if err != nil {
			s.markReplicaDiverged(ds, fmt.Errorf("%w: applying append to version %d: %v",
				ErrReplicaDiverged, rec.Append.Version, err))
			return ds.repl.divergedErr()
		}
		if res.Version != rec.Append.Version {
			s.markReplicaDiverged(ds, fmt.Errorf("%w: applied append produced version %d, wal record says %d",
				ErrReplicaDiverged, res.Version, rec.Append.Version))
			return ds.repl.divergedErr()
		}
		if ds.pins != nil {
			ds.pins.pin(ds.problem.Snapshot())
		}
	case rec.Release != nil:
		if ds.persist != nil {
			if err := ds.persist.log.LogRelease(rec.Release); err != nil {
				return fmt.Errorf("logging replicated release: %w", err)
			}
		}
		rel, err := recordToRelease(ds.problem.Table, rec.Release)
		if err != nil {
			s.markReplicaDiverged(ds, fmt.Errorf("%w: decoding release %d: %v",
				ErrReplicaDiverged, rec.Release.Index, err))
			return ds.repl.divergedErr()
		}
		if err := ds.releases.applyReplicated(rel); err != nil {
			s.markReplicaDiverged(ds, fmt.Errorf("%w: %v", ErrReplicaDiverged, err))
			return ds.repl.divergedErr()
		}
	default:
		return fmt.Errorf("empty replicated record")
	}
	return nil
}

// markReplicaDiverged records a fatal divergence on the dataset.
func (s *Server) markReplicaDiverged(ds *dataset, err error) {
	if ds.repl == nil {
		ds.repl = newReplicaState(ReplicaProgress{})
	}
	ds.repl.setErr(err)
}

// DatasetVersion reports a registered dataset's current version, 0 when
// the name is not registered. The replication loop uses it for progress
// reports.
func (s *Server) DatasetVersion(name string) int64 {
	if ds, ok := s.registry.get(name); ok {
		return ds.problem.Version()
	}
	return 0
}

// SetReplicaProgress records a follower dataset's replication position
// (lag, offsets, catch-up) for /v1/datasets and /metrics.
func (s *Server) SetReplicaProgress(name string, pr ReplicaProgress) {
	if ds, ok := s.registry.get(name); ok && ds.repl != nil {
		ds.repl.setProgress(pr)
	}
}

// SetReplicaErr records a replication failure on a dataset — transient
// stream corruption keeps serving the last applied version; an error
// wrapping ErrReplicaDiverged stops the dataset from serving.
func (s *Server) SetReplicaErr(name string, err error) {
	if ds, ok := s.registry.get(name); ok && ds.repl != nil {
		ds.repl.setErr(err)
	}
}

// applyReplicated appends a replayed release at exactly the index its
// record names; any other index is divergence. The retention/eviction
// arithmetic matches add, so follower and leader windows stay identical
// (given equal MaxReleases).
func (l *releaseLog) applyReplicated(r *release) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if r.index != l.next {
		return fmt.Errorf("replicated release has index %d, log expects %d", r.index, l.next)
	}
	l.next++
	l.rs = append(l.rs, r)
	if len(l.rs) > l.max {
		l.rs = l.rs[1:]
		l.evicted++
	}
	return nil
}

// ---- leader HTTP handlers ----

// Replication shipping headers: every WAL/snapshot response carries the
// generation coordinates so a client can validate its cursor.
const (
	headerReplicationBase      = "X-Ckp-Replication-Base"
	headerReplicationCommitted = "X-Ckp-Replication-Committed"
	headerReplicationRecords   = "X-Ckp-Replication-Records"
	headerReplicationVersion   = "X-Ckp-Replication-Version"
)

// replicationDatasetInfo describes one replicable dataset on the leader.
type replicationDatasetInfo struct {
	Name            string `json:"name"`
	Version         int64  `json:"version"`
	Rows            int    `json:"rows"`
	SnapshotVersion int64  `json:"snapshot_version"`
	WALCommitted    int64  `json:"wal_committed"`
	WALRecords      int    `json:"wal_records"`
}

func (s *Server) handleReplicationDatasets(w http.ResponseWriter, r *http.Request) {
	out := make([]replicationDatasetInfo, 0)
	for _, info := range s.registry.list() {
		if info.ds.persist == nil {
			continue // nothing durable to ship
		}
		base, committed, records := info.ds.persist.log.Committed()
		out = append(out, replicationDatasetInfo{
			Name:            info.name,
			Version:         info.ds.problem.Version(),
			Rows:            info.ds.problem.Rows(),
			SnapshotVersion: base,
			WALCommitted:    committed,
			WALRecords:      records,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": out})
}

func (s *Server) handleReplicationSnapshot(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ds, ok := s.registry.get(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("dataset %q not registered", name))
		return
	}
	if ds.persist == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("dataset %q is not persisted; nothing to replicate", name))
		return
	}
	raw, version, err := ds.persist.log.SnapshotBytes()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(headerReplicationBase, strconv.FormatInt(version, 10))
	w.Header().Set(headerReplicationVersion, strconv.FormatInt(ds.problem.Version(), 10))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(raw)
}

// handleReplicationWAL serves raw committed WAL bytes from a byte cursor:
// GET /v1/replication/{name}/wal?from=<offset>[&base=<version>][&wait_ms=<n>].
// from=0 includes the file header. A base that no longer matches the
// leader's WAL generation — or a cursor past its committed size — is 409
// wal_superseded: compaction replaced the generation and the follower must
// re-bootstrap from a fresh snapshot. When the cursor is at the committed
// tip and wait_ms is set, the request long-polls for the next commit.
func (s *Server) handleReplicationWAL(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ds, ok := s.registry.get(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("dataset %q not registered", name))
		return
	}
	if ds.persist == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("dataset %q is not persisted; nothing to replicate", name))
		return
	}
	q := r.URL.Query()
	from, err := strconv.ParseInt(q.Get("from"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("from %q is not a byte offset", q.Get("from")))
		return
	}
	if from < 0 || (from > 0 && from < store.WALHeaderLen) {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("from %d must be 0 or past the %d-byte wal header", from, store.WALHeaderLen))
		return
	}
	var wantBase int64 = -1
	if b := q.Get("base"); b != "" {
		if wantBase, err = strconv.ParseInt(b, 10, 64); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("base %q is not a version", b))
			return
		}
	}
	var wait time.Duration
	if ms := q.Get("wait_ms"); ms != "" {
		n, err := strconv.Atoi(ms)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("wait_ms %q is not a duration", ms))
			return
		}
		wait = time.Duration(n) * time.Millisecond
		if wait > s.cfg.ReplicationMaxWait {
			wait = s.cfg.ReplicationMaxWait
		}
	}

	dl := ds.persist.log
	deadline := time.Now().Add(wait)
	var base, committed int64
	var records int
	for {
		// Arm the notifier before reading the position: a commit landing
		// between the two closes this channel, so the select cannot miss it.
		notify := dl.CommitNotify()
		base, committed, records = dl.Committed()
		if wantBase >= 0 && wantBase != base {
			s.writeSuperseded(w, base)
			return
		}
		if from > committed {
			// The cursor points past the committed prefix: the generation
			// the client was tailing is gone (or its local state is ahead of
			// this leader). Either way the snapshot is the safe restart.
			s.writeSuperseded(w, base)
			return
		}
		if committed > from {
			break
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			break
		}
		timer := time.NewTimer(remaining)
		select {
		case <-notify:
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return // client gone; nothing useful to write
		}
		timer.Stop()
	}

	data, committed, err := dl.ReadCommitted(from, s.cfg.ReplicationMaxBytes)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(headerReplicationBase, strconv.FormatInt(base, 10))
	w.Header().Set(headerReplicationCommitted, strconv.FormatInt(committed, 10))
	w.Header().Set(headerReplicationRecords, strconv.Itoa(records))
	w.Header().Set(headerReplicationVersion, strconv.FormatInt(ds.problem.Version(), 10))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// writeSuperseded renders the wal_superseded envelope with the leader's
// current base so clients can log what they were behind.
func (s *Server) writeSuperseded(w http.ResponseWriter, base int64) {
	body := errorBody{
		Error:  errWALSuperseded.Error(),
		Code:   "wal_superseded",
		Detail: map[string]any{"base": base},
	}
	writeJSON(w, http.StatusConflict, body)
}

// handleReadyz is the readiness gate: 503 not_ready until a follower
// finishes initial catch-up (a leader is ready as soon as it listens).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, errNotReady)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ready",
		"read_only": s.cfg.ReadOnly,
	})
}

// replicationInfo is the replication block of datasetInfo on a follower.
type replicationInfo struct {
	// AppliedVersion / AppliedOffset / AppliedRecords are the follower's
	// position: dataset version applied, leader WAL byte cursor, records
	// applied since the WAL base.
	AppliedVersion int64 `json:"applied_version"`
	AppliedOffset  int64 `json:"applied_offset"`
	AppliedRecords int   `json:"applied_records"`
	// LeaderCommitted / LeaderRecords echo the leader's committed WAL
	// position from the latest fetch.
	LeaderCommitted int64 `json:"leader_committed"`
	LeaderRecords   int   `json:"leader_records"`
	// LagRecords / LagSeconds are the replication lag: records not yet
	// applied, and how long the follower has been behind (0 when caught up).
	LagRecords int     `json:"lag_records"`
	LagSeconds float64 `json:"lag_seconds"`
	// CaughtUp reports whether the follower had applied everything the
	// leader had committed as of the latest fetch.
	CaughtUp bool `json:"caught_up"`
	// PinnedVersions is how many historical versions are pinned for
	// ?version= reads.
	PinnedVersions int `json:"pinned_versions"`
	// Error surfaces the last replication failure (typed corruption or
	// divergence), empty while healthy.
	Error string `json:"error,omitempty"`
}

// describeReplication renders a dataset's replication block; nil when the
// dataset is not a replica.
func describeReplication(ds *dataset) *replicationInfo {
	if ds.repl == nil {
		return nil
	}
	pr, lagSeconds, err := ds.repl.status()
	info := &replicationInfo{
		AppliedVersion:  pr.AppliedVersion,
		AppliedOffset:   pr.AppliedOffset,
		AppliedRecords:  pr.AppliedRecords,
		LeaderCommitted: pr.LeaderCommitted,
		LeaderRecords:   pr.LeaderRecords,
		LagRecords:      pr.lagRecords(),
		LagSeconds:      lagSeconds,
		CaughtUp:        pr.CaughtUp,
	}
	if ds.pins != nil {
		info.PinnedVersions = ds.pins.count()
	}
	if err != nil {
		info.Error = err.Error()
	}
	return info
}

// parsePinnedVersion extracts the optional ?version= pin from a read
// request; 0 means "current".
func parsePinnedVersion(r *http.Request) (int64, error) {
	q := r.URL.Query().Get("version")
	if q == "" {
		return 0, nil
	}
	v, err := strconv.ParseInt(q, 10, 64)
	if err != nil || v < 1 {
		return 0, badRequest("version %q is not a positive dataset version", q)
	}
	return v, nil
}
