package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"
)

// doEnvelope issues a request and decodes the error envelope, asserting
// the response is JSON.
func doEnvelope(t *testing.T, method, url string, body any) (int, errorBody) {
	t.Helper()
	var rdr io.Reader
	if raw, ok := body.(json.RawMessage); ok {
		rdr = bytes.NewReader(raw) // deliberately malformed bodies pass through
	} else if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rdr = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("%s %s: Content-Type = %q, want application/json", method, url, ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var e errorBody
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("%s %s: body %q is not an error envelope: %v", method, url, data, err)
	}
	return resp.StatusCode, e
}

// TestErrorEnvelopeUniform is the v1 error-API contract: every error
// response — whatever the endpoint or status — is the one
// {error, code, detail} envelope, with a stable machine code and a
// non-empty human message. Detail keys, where present, are pinned per
// code.
func TestErrorEnvelopeUniform(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxK: 4})
	registerHospital(t, ts.URL, "h")

	cases := []struct {
		name       string
		method     string
		path       string
		body       any
		wantStatus int
		wantCode   string
		wantDetail []string
	}{
		{"no source", http.MethodPost, "/v1/disclosure",
			map[string]any{"k": 1}, 400, "bad_request", nil},
		{"k over limit", http.MethodPost, "/v1/check",
			map[string]any{"dataset": "h", "criterion": "ck", "c": 0.7, "k": 99}, 400, "bad_request", nil},
		{"malformed json", http.MethodPost, "/v1/disclosure",
			json.RawMessage(`{"k":`), 400, "bad_request", nil},
		{"syntax error in phi", http.MethodPost, "/v1/estimate",
			map[string]any{"dataset": "h", "target": "t[0]=flu", "phi": "t[0]=flu -> junk"},
			400, "syntax_error", []string{"offset"}},
		{"unknown dataset", http.MethodPost, "/v1/disclosure",
			map[string]any{"dataset": "ghost", "k": 1}, 404, "not_found", nil},
		{"dataset missing", http.MethodGet, "/v1/datasets/ghost", nil, 404, "not_found", nil},
		{"job missing", http.MethodGet, "/v1/jobs/job-999999", nil, 404, "not_found", nil},
		{"cancel missing job", http.MethodDelete, "/v1/jobs/job-999999", nil, 404, "not_found", nil},
		{"append to missing dataset", http.MethodPost, "/v1/datasets/ghost/rows",
			map[string]any{"rows": [][]string{{"x"}}}, 404, "not_found", nil},
		{"duplicate registration", http.MethodPost, "/v1/datasets",
			map[string]any{"name": "h", "builtin": "hospital"}, 409, "already_registered", nil},
		{"zero acceptance", http.MethodPost, "/v1/estimate",
			map[string]any{
				"groups": [][]string{{"flu", "cold"}}, "target": "t[0]=flu",
				"phi": "t[0]=flu -> t[0]=cold; t[0]=cold -> t[0]=flu", "samples": 200, "seed": 1,
			}, 422, "zero_acceptance", []string{"accepted", "samples"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			status, e := doEnvelope(t, c.method, ts.URL+c.path, c.body)
			if status != c.wantStatus || e.Code != c.wantCode {
				t.Fatalf("status %d code %q, want %d %q (error %q)", status, e.Code, c.wantStatus, c.wantCode, e.Error)
			}
			if e.Error == "" {
				t.Error("envelope has no error message")
			}
			for _, key := range c.wantDetail {
				if _, ok := e.Detail[key]; !ok {
					t.Errorf("detail missing %q: %+v", key, e.Detail)
				}
			}
		})
	}

	// 413: over the body limit, on a server small enough to trip it.
	_, tiny := newTestServer(t, Config{MaxBodyBytes: 64})
	status, e := doEnvelope(t, http.MethodPost, tiny.URL+"/v1/disclosure",
		map[string]any{"groups": [][]string{bigGroup(40)}, "k": 1})
	if status != http.StatusRequestEntityTooLarge || e.Code != "body_too_large" {
		t.Errorf("oversized body: status %d code %q, want 413 body_too_large", status, e.Code)
	}

	// 503: gate saturated, still the same envelope plus Retry-After.
	s, busy := newTestServer(t, Config{MaxConcurrent: 1, GateWait: time.Millisecond})
	registerHospital(t, busy.URL, "h")
	s.gate <- struct{}{}
	defer func() { <-s.gate }()
	status, e = doEnvelope(t, http.MethodPost, busy.URL+"/v1/disclosure",
		map[string]any{"dataset": "h", "k": 1})
	if status != http.StatusServiceUnavailable || e.Code != "overloaded" {
		t.Errorf("saturated gate: status %d code %q, want 503 overloaded", status, e.Code)
	}
}
