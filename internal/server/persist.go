package server

import (
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"sync"
	"syscall"
	"time"

	"ckprivacy/internal/anonymize"
	"ckprivacy/internal/bucket"
	"ckprivacy/internal/dataload"
	"ckprivacy/internal/store"
	"ckprivacy/internal/table"
)

// This file wires the durable store (internal/store) through the serving
// layer. Per persisted dataset the server keeps a datasetStore: the open
// WAL plus the health flag for the write path. The persistence discipline
// is apply-then-log under the dataset's appendMu: the in-memory mutation
// commits first, then its WAL record. A failed log therefore leaves the
// in-memory state ahead of disk; the dataset is marked broken, the client
// gets a 503 (persist_failed / disk_full) with Retry-After, and the next
// write heals by compacting — snapshotting the current in-memory state,
// which by construction includes everything the lost records described.

// persistError marks a durable-store write failure on the request path.
// It wraps the underlying error so errors.Is(err, syscall.ENOSPC) still
// sees through it (the disk_full code).
type persistError struct{ err error }

func (e *persistError) Error() string {
	return fmt.Sprintf("dataset state applied in memory but not persisted: %v", e.err)
}

func (e *persistError) Unwrap() error { return e.err }

// datasetStore is one dataset's durable-log handle plus write-path health.
type datasetStore struct {
	log *store.DatasetLog

	mu     sync.Mutex
	broken bool
	// replaySeconds is how long this dataset's boot recovery took
	// (snapshot decode + WAL replay); 0 for cold datasets.
	replaySeconds float64
}

// isBroken reports whether the last persist attempt failed.
func (p *datasetStore) isBroken() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.broken
}

// markBroken flags the write path as needing a heal-by-compaction.
func (p *datasetStore) markBroken() {
	p.mu.Lock()
	p.broken = true
	p.mu.Unlock()
}

// markHealed clears the flag after a successful compaction.
func (p *datasetStore) markHealed() {
	p.mu.Lock()
	p.broken = false
	p.mu.Unlock()
}

// writePersistFailure renders a store write failure as the uniform error
// envelope: 503 with Retry-After, code disk_full when the underlying
// error is ENOSPC and persist_failed otherwise.
func writePersistFailure(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", "5")
	writeError(w, http.StatusServiceUnavailable, &persistError{err: err})
}

// buildSnapshotData materializes the dataset's current state as a store
// snapshot: the pinned encoded columns, the bundle's rebuild source and
// the release history. ok is false when the dataset cannot be persisted
// (no rebuild source, or the problem runs the legacy string path).
// Callers hold ds.appendMu so the version cannot advance mid-build.
func buildSnapshotData(ds *dataset) (*store.SnapshotData, bool, error) {
	snap := ds.problem.Snapshot()
	enc := snap.Encoded()
	if enc == nil || ds.bundle.Source == nil {
		return nil, false, nil
	}
	srcJSON, err := dataload.MarshalSource(ds.bundle.Source)
	if err != nil {
		return nil, false, err
	}
	attrs := make([]string, len(enc.Table.Schema.Attrs))
	for i := range attrs {
		attrs[i] = enc.Table.Schema.Attrs[i].Name
	}
	sd := &store.SnapshotData{
		Version: snap.Version(),
		Rows:    snap.Rows(),
		Attrs:   attrs,
		Source:  srcJSON,
		Dicts:   make([][]string, len(enc.Dicts)),
		Cols:    enc.Cols,
	}
	for c, d := range enc.Dicts {
		sd.Dicts[c] = d.Values()
	}
	sd.Releases = exportReleases(&ds.releases)
	return sd, true, nil
}

// exportReleases materializes a release log as its persistent form.
func exportReleases(l *releaseLog) *store.ReleaseState {
	rs, evicted, next := l.exportState()
	if len(rs) == 0 && evicted == 0 && next == 0 {
		return nil
	}
	out := &store.ReleaseState{Next: next, Evicted: evicted}
	for _, rel := range rs {
		out.Releases = append(out.Releases, releaseToRecord(rel))
	}
	return out
}

// releaseToRecord converts one in-memory release to its persistent form:
// identity plus the materialized partition (bucket keys and tuple ids).
func releaseToRecord(rel *release) store.ReleaseRecord {
	rec := store.ReleaseRecord{
		Index:           rel.index,
		Version:         rel.version,
		Rows:            rel.rows,
		CreatedUnixNano: rel.created.UnixNano(),
		Levels:          map[string]int(rel.levels),
		Keys:            make([]string, len(rel.bz.Buckets)),
		Groups:          make([][]int, len(rel.bz.Buckets)),
	}
	for i, b := range rel.bz.Buckets {
		rec.Keys[i] = b.Key
		rec.Groups[i] = b.Tuples
	}
	return rec
}

// recordToRelease rebuilds one in-memory release from its persistent form
// over the recovered master table. The bucketization's source is the
// pinned row prefix of the release's version — row identities are stable
// across appends, so sensitive values (all intersect and MaxDisclosure
// read) decode identically to the original release.
func recordToRelease(master *table.Table, rec *store.ReleaseRecord) (*release, error) {
	if rec.Rows > len(master.Rows) {
		return nil, fmt.Errorf("release %d needs %d rows, recovered table has %d",
			rec.Index, rec.Rows, len(master.Rows))
	}
	prefix := &table.Table{Schema: master.Schema, Rows: master.Rows[:rec.Rows:rec.Rows]}
	bz, err := bucket.FromTupleGroups(prefix, rec.Keys, rec.Groups)
	if err != nil {
		return nil, err
	}
	return &release{
		index:   rec.Index,
		version: rec.Version,
		rows:    rec.Rows,
		levels:  bucket.Levels(rec.Levels),
		bz:      bz,
		created: time.Unix(0, rec.CreatedUnixNano),
	}, nil
}

// persistNewDataset writes a fresh dataset's first snapshot + WAL. A nil
// return with ds.persist still nil means the dataset is simply not
// persistable (no source / legacy path) — not an error.
func (s *Server) persistNewDataset(name string, ds *dataset) error {
	if s.store == nil {
		return nil
	}
	sd, ok, err := buildSnapshotData(ds)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	dl, err := s.store.Create(name, sd)
	if err != nil {
		return err
	}
	ds.persist = &datasetStore{log: dl}
	return nil
}

// compactLocked snapshots the dataset's current in-memory state and swaps
// in a fresh WAL; the caller holds ds.appendMu. It doubles as the heal
// path: a successful compaction makes disk a faithful copy again.
func (s *Server) compactLocked(ds *dataset) error {
	sd, ok, err := buildSnapshotData(ds)
	if err == nil && !ok {
		err = fmt.Errorf("dataset is no longer snapshotable")
	}
	if err != nil {
		ds.persist.markBroken()
		return err
	}
	if err := ds.persist.log.Compact(sd); err != nil {
		ds.persist.markBroken()
		return err
	}
	ds.persist.markHealed()
	return nil
}

// healIfBrokenLocked restores a broken persist path by compaction before
// the next mutation applies; the caller holds ds.appendMu.
func (s *Server) healIfBrokenLocked(ds *dataset) error {
	if ds.persist == nil || !ds.persist.isBroken() {
		return nil
	}
	return s.compactLocked(ds)
}

// logAppendLocked records a committed append batch; the caller holds
// ds.appendMu. On failure the dataset is marked broken.
func (s *Server) logAppendLocked(ds *dataset, version int64, rows [][]string) error {
	if ds.persist == nil {
		return nil
	}
	if err := ds.persist.log.LogAppend(&store.AppendRecord{Version: version, Rows: rows}); err != nil {
		ds.persist.markBroken()
		return err
	}
	if ds.persist.log.ShouldCompact() {
		// Threshold compaction is best-effort: a failure marks the dataset
		// broken for the next write, but this append is already durable.
		_ = s.compactLocked(ds)
	}
	return nil
}

// logReleaseLocked records a committed release; the caller holds
// ds.appendMu. On failure the dataset is marked broken.
func (s *Server) logReleaseLocked(ds *dataset, rel *release) error {
	if ds.persist == nil {
		return nil
	}
	rec := releaseToRecord(rel)
	if err := ds.persist.log.LogRelease(&rec); err != nil {
		ds.persist.markBroken()
		return err
	}
	return nil
}

// RecoveryStats summarizes a RecoverAll pass.
type RecoveryStats struct {
	// Datasets is how many datasets were recovered into the registry.
	Datasets int
	// Replayed is how many WAL records (appends + releases) were applied.
	Replayed int
	// Elapsed is the total recovery wall-clock time.
	Elapsed time.Duration
}

// RecoverAll loads every dataset in the server's durable store into the
// registry: highest-version snapshot decoded onto the columnar substrate
// (table.NewEncodedFromParts — no re-encoding), bundle rebuilt from its
// source descriptor, WAL tail replayed through anonymize.Problem.Append,
// and the release history rebuilt from its materialized partitions. The
// daemon calls this once before opening its listener; recovered state is
// byte-identical to the pre-crash process's (the crash-point property
// tests assert this).
func (s *Server) RecoverAll() (RecoveryStats, error) {
	var stats RecoveryStats
	if s.store == nil {
		return stats, nil
	}
	// Recovery is a pure allocation burst over a small starting heap: with
	// the default target the collector re-walks the half-built dataset
	// several times before boot finishes, and on small machines that mark
	// work roughly doubles warm-boot latency. Relax the target for the
	// duration of the replay and restore it before serving; the first
	// steady-state collection brings the heap back to normal pacing.
	prevGC := debug.SetGCPercent(400)
	defer debug.SetGCPercent(prevGC)
	begin := time.Now()
	names, err := s.store.Datasets()
	if err != nil {
		return stats, err
	}
	for _, name := range names {
		replayed, err := s.recoverDataset(name)
		if err != nil {
			return stats, fmt.Errorf("recovering dataset %q: %w", name, err)
		}
		stats.Datasets++
		stats.Replayed += replayed
	}
	stats.Elapsed = time.Since(begin)
	return stats, nil
}

// rebuildProblem reconstructs a dataset's bundle and long-lived problem
// from a decoded snapshot: source descriptor parsed, schema revalidated,
// columns mounted onto the columnar substrate without re-encoding
// (table.NewEncodedFromParts). Shared by boot recovery and replica
// snapshot install.
func (s *Server) rebuildProblem(name string, sd *store.SnapshotData) (*dataload.Bundle, *anonymize.Problem, error) {
	src, err := dataload.ParseSource(sd.Source)
	if err != nil {
		return nil, nil, err
	}
	schema, err := dataload.SourceSchema(src)
	if err != nil {
		return nil, nil, err
	}
	if len(sd.Attrs) != len(schema.Attrs) {
		return nil, nil, fmt.Errorf("snapshot has %d attributes, source schema has %d", len(sd.Attrs), len(schema.Attrs))
	}
	for i, want := range sd.Attrs {
		if got := schema.Attrs[i].Name; got != want {
			return nil, nil, fmt.Errorf("snapshot attribute %d is %q, source schema says %q", i, want, got)
		}
	}
	enc, err := table.NewEncodedFromParts(schema, sd.Dicts, sd.Cols)
	if err != nil {
		return nil, nil, err
	}
	b, err := dataload.FromSource(name, src, enc.Table)
	if err != nil {
		return nil, nil, err
	}
	p, err := anonymize.NewProblemFromEncoded(enc, b.Hierarchies, b.QI, sd.Version, s.cfg.problemOptions())
	if err != nil {
		return nil, nil, err
	}
	return b, p, nil
}

// recoverDataset rebuilds one dataset from its snapshot + WAL tail.
func (s *Server) recoverDataset(name string) (replayed int, err error) {
	begin := time.Now()
	sd, recs, dl, err := s.store.Load(name)
	if err != nil {
		return 0, err
	}
	defer func() {
		if err != nil {
			dl.Close()
		}
	}()

	b, p, err := s.rebuildProblem(name, sd)
	if err != nil {
		return 0, err
	}

	// On a follower, boot recovery doubles as replication catch-up from the
	// local store: capture the same version pins live tailing would have.
	var pins *versionPins
	if s.cfg.ReadOnly {
		pins = newVersionPins(s.cfg.MaxPinnedVersions)
		pins.pin(p.Snapshot())
	}

	// Replay the WAL tail: appends first (in order, verifying each lands
	// on the version its record names), then the release history. Release
	// records only reference row prefixes, so they never need to
	// interleave with the appends that created those rows.
	var relRecs []store.ReleaseRecord
	for _, rec := range recs {
		switch {
		case rec.Append != nil:
			rows := make([]table.Row, len(rec.Append.Rows))
			for i, r := range rec.Append.Rows {
				rows[i] = table.Row(r)
			}
			res, err := p.Append(rows)
			if err != nil {
				return 0, fmt.Errorf("replaying append to version %d: %w", rec.Append.Version, err)
			}
			if res.Version != rec.Append.Version {
				return 0, fmt.Errorf("replayed append produced version %d, wal record says %d",
					res.Version, rec.Append.Version)
			}
			if pins != nil {
				pins.pin(p.Snapshot())
			}
			replayed++
		case rec.Release != nil:
			relRecs = append(relRecs, *rec.Release)
			replayed++
		}
	}

	ds := &dataset{
		bundle:    b,
		problem:   p,
		releases:  releaseLog{max: s.cfg.MaxReleases},
		persist:   &datasetStore{log: dl},
		recovered: "snapshot",
		pins:      pins,
	}
	if len(recs) > 0 {
		ds.recovered = "wal_replay"
	}
	if s.cfg.ReadOnly {
		_, offset, records := dl.Committed()
		ds.repl = newReplicaState(ReplicaProgress{
			AppliedVersion: p.Version(),
			AppliedOffset:  offset,
			AppliedRecords: records,
		})
	}
	if err := s.restoreReleases(ds, sd.Releases, relRecs); err != nil {
		return 0, err
	}
	ds.persist.replaySeconds = time.Since(begin).Seconds()
	if err := s.registry.insert(name, ds); err != nil {
		return 0, err
	}
	return replayed, nil
}

// restoreReleases rebuilds the dataset's release log: the snapshot's
// retained window first, then the WAL's release records in log order,
// reproducing the same retention/eviction arithmetic the live log ran.
func (s *Server) restoreReleases(ds *dataset, snap *store.ReleaseState, walRecs []store.ReleaseRecord) error {
	master := ds.problem.Table
	var rs []*release
	next, evicted := 0, 0
	if snap != nil {
		next, evicted = snap.Next, snap.Evicted
		for i := range snap.Releases {
			rel, err := recordToRelease(master, &snap.Releases[i])
			if err != nil {
				return err
			}
			rs = append(rs, rel)
		}
	}
	for i := range walRecs {
		rel, err := recordToRelease(master, &walRecs[i])
		if err != nil {
			return err
		}
		rs = append(rs, rel)
		if rel.index >= next {
			next = rel.index + 1
		}
		if len(rs) > s.cfg.MaxReleases {
			rs = rs[1:]
			evicted++
		}
	}
	ds.releases.restore(next, evicted, rs)
	return nil
}

// persistCodeOf maps a persist failure to its envelope code (see
// errorCode); split out so the mapping is testable.
func persistCodeOf(err error) string {
	if errors.Is(err, syscall.ENOSPC) {
		return "disk_full"
	}
	return "persist_failed"
}
