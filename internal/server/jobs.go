package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ckprivacy/internal/anonymize"
	"ckprivacy/internal/bucket"
	"ckprivacy/internal/lattice"
	"ckprivacy/internal/privacy"
	"ckprivacy/internal/utility"
)

// JobState is the lifecycle of an asynchronous anonymization job.
type JobState string

// Job lifecycle states.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// jobSpec is a fully resolved anonymization task: the search runs against
// the dataset's long-lived Problem (warm bucketization cache) with a
// criterion that shares the server's engine memo.
type jobSpec struct {
	dataset   string
	method    string
	criterion privacy.Criterion
	critName  string
	utility   utility.Metric
	problem   *anonymize.Problem
}

// anonymizeResult is a finished job's payload (also the JSON wire shape).
type anonymizeResult struct {
	Dataset string `json:"dataset"`
	// Version is the dataset version the search was pinned to: appends
	// that landed while the job ran do not affect it, and a client can
	// tell whether the result still describes the current data.
	Version   int64  `json:"version"`
	Method    string `json:"method"`
	Criterion string `json:"criterion"`
	// QI gives the dimension order of every node below.
	QI []string `json:"quasi_identifiers"`
	// Nodes are the minimal safe generalization levels (chain search
	// returns at most one). Empty means no safe generalization exists.
	Nodes  [][]int `json:"nodes"`
	Exists bool    `json:"exists"`
	// Best is the utility-maximizing node among Nodes, when requested.
	Best      *bestNode `json:"best,omitempty"`
	Evaluated int       `json:"evaluated"`
	Inferred  int       `json:"inferred"`
	ElapsedMS float64   `json:"elapsed_ms"`
}

// bestNode is the utility-ranked winner of a multi-node search.
type bestNode struct {
	Node       []int   `json:"node"`
	Utility    string  `json:"utility"`
	Buckets    int     `json:"buckets"`
	MinEntropy float64 `json:"min_entropy"`
}

// ctxCriterion aborts a criterion (and with it the whole lattice search)
// once the job's context is cancelled; this is what makes job cancellation
// and deadline-bounded shutdown cooperative rather than abandoning
// goroutines.
type ctxCriterion struct {
	ctx   context.Context
	inner privacy.Criterion
}

// Name implements privacy.Criterion.
func (c ctxCriterion) Name() string { return c.inner.Name() }

// Satisfied implements privacy.Criterion.
func (c ctxCriterion) Satisfied(bz *bucket.Bucketization) (bool, error) {
	if err := c.ctx.Err(); err != nil {
		return false, err
	}
	return c.inner.Satisfied(bz)
}

// run executes the search described by the spec. The whole job — search
// and utility ranking — runs on one pinned snapshot of the dataset, so
// appends landing mid-search never mix versions into the result; the
// snapshot's version is reported so clients can compare it with the
// dataset's current one.
func (sp *jobSpec) run(ctx context.Context) (*anonymizeResult, error) {
	crit := ctxCriterion{ctx: ctx, inner: sp.criterion}
	snap := sp.problem.Snapshot()
	begin := time.Now()
	var (
		nodes []lattice.Node
		stats lattice.Stats
		err   error
	)
	switch sp.method {
	case "minimal":
		nodes, stats, err = snap.MinimalSafe(crit)
	case "incognito":
		nodes, stats, err = snap.MinimalSafeIncognito(crit)
	case "chain":
		var node lattice.Node
		var ok bool
		node, ok, stats, err = snap.ChainSearch(crit)
		if ok {
			nodes = []lattice.Node{node}
		}
	default:
		err = fmt.Errorf("unknown method %q", sp.method)
	}
	if err != nil {
		return nil, err
	}
	res := &anonymizeResult{
		Dataset:   sp.dataset,
		Version:   snap.Version(),
		Method:    sp.method,
		Criterion: sp.critName,
		QI:        sp.problem.QI,
		Nodes:     make([][]int, len(nodes)),
		Exists:    len(nodes) > 0,
		Evaluated: stats.Evaluated,
		Inferred:  stats.Inferred,
	}
	for i, n := range nodes {
		res.Nodes[i] = []int(n.Clone())
	}
	if res.Exists && sp.utility != nil {
		idx, bz, err := snap.BestByUtility(nodes, sp.utility)
		if err != nil {
			return nil, err
		}
		res.Best = &bestNode{
			Node:       []int(nodes[idx].Clone()),
			Utility:    sp.utility.Name(),
			Buckets:    len(bz.Buckets),
			MinEntropy: bz.MinEntropy(),
		}
	}
	res.ElapsedMS = float64(time.Since(begin)) / float64(time.Millisecond)
	return res, nil
}

// job is one tracked submission.
type job struct {
	id     string
	spec   *jobSpec
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	state    JobState
	result   *anonymizeResult
	errMsg   string
	created  time.Time
	started  time.Time
	finished time.Time
}

// snapshot returns the job's externally visible state under its lock.
func (j *job) snapshot() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := jobStatus{ID: j.id, State: j.state, Result: j.result, Error: j.errMsg}
	if !j.started.IsZero() && j.state == JobRunning {
		st.RunningMS = float64(time.Since(j.started)) / float64(time.Millisecond)
	}
	return st
}

// jobStatus is the GET /v1/jobs/{id} wire shape.
type jobStatus struct {
	ID        string           `json:"id"`
	State     JobState         `json:"state"`
	RunningMS float64          `json:"running_ms,omitempty"`
	Result    *anonymizeResult `json:"result,omitempty"`
	Error     string           `json:"error,omitempty"`
}

// jobManager runs jobs from a bounded queue on a fixed worker set.
type jobManager struct {
	metrics *metrics
	queue   chan *job

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // submission order, oldest first, for history eviction
	nextID int
	closed bool
	// maxHistory bounds how many jobs (including finished ones, kept for
	// polling) are retained; oldest terminal jobs are evicted first. A
	// resident daemon would otherwise leak one result per submission.
	maxHistory int

	wg sync.WaitGroup
}

func newJobManager(workers, queueSize, maxHistory int, m *metrics) *jobManager {
	jm := &jobManager{
		metrics:    m,
		queue:      make(chan *job, queueSize),
		jobs:       make(map[string]*job),
		maxHistory: maxHistory,
	}
	jm.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer jm.wg.Done()
			for j := range jm.queue {
				jm.run(j)
			}
		}()
	}
	return jm
}

// queueDepth reports jobs waiting (not yet picked up by a worker).
func (m *jobManager) queueDepth() int { return len(m.queue) }

// submit enqueues a spec. It fails when the bounded queue is full
// (backpressure: the caller surfaces 503) or the manager is draining.
func (m *jobManager) submit(spec *jobSpec) (*job, error) {
	ctx, cancel := context.WithCancel(context.Background())
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		cancel()
		return nil, fmt.Errorf("server is shutting down")
	}
	m.nextID++
	j := &job{
		id:      fmt.Sprintf("job-%06d", m.nextID),
		spec:    spec,
		ctx:     ctx,
		cancel:  cancel,
		state:   JobQueued,
		created: time.Now(),
	}
	select {
	case m.queue <- j:
	default:
		m.nextID--
		cancel()
		return nil, fmt.Errorf("job queue full (%d pending)", cap(m.queue))
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.evictLocked()
	m.metrics.countJob("queued")
	return j, nil
}

// evictLocked drops the oldest terminal jobs once the retained set exceeds
// maxHistory. Queued and running jobs are never evicted (they are bounded
// by the queue and worker counts), so a polling client can only lose a
// result that has been sitting finished behind maxHistory newer jobs.
func (m *jobManager) evictLocked() {
	for len(m.jobs) > m.maxHistory {
		evicted := false
		for i, id := range m.order {
			j, ok := m.jobs[id]
			if !ok {
				m.order = append(m.order[:i], m.order[i+1:]...)
				evicted = true
				break
			}
			j.mu.Lock()
			terminal := j.state == JobDone || j.state == JobFailed || j.state == JobCancelled
			j.mu.Unlock()
			if terminal {
				delete(m.jobs, id)
				m.order = append(m.order[:i], m.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything retained is still live
		}
	}
}

// get looks a job up by id.
func (m *jobManager) get(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// cancelJob cancels a queued or running job; terminal jobs are left alone.
// It reports whether the job existed.
func (m *jobManager) cancelJob(id string) (*job, bool) {
	j, ok := m.get(id)
	if !ok {
		return nil, false
	}
	j.mu.Lock()
	switch j.state {
	case JobQueued:
		// The worker will observe the state and skip it.
		j.state = JobCancelled
		j.finished = time.Now()
		m.metrics.countJob("cancelled")
	case JobRunning:
		// The ctxCriterion aborts the search; run() records the state.
	}
	j.mu.Unlock()
	j.cancel()
	return j, true
}

// run executes one dequeued job.
func (m *jobManager) run(j *job) {
	j.mu.Lock()
	if j.state != JobQueued {
		j.mu.Unlock()
		return // cancelled while waiting
	}
	j.state = JobRunning
	j.started = time.Now()
	j.mu.Unlock()

	res, err := j.spec.run(j.ctx)

	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	switch {
	case j.ctx.Err() != nil:
		j.state = JobCancelled
		m.metrics.countJob("cancelled")
	case err != nil:
		j.state = JobFailed
		j.errMsg = err.Error()
		m.metrics.countJob("failed")
	default:
		j.state = JobDone
		j.result = res
		m.metrics.countJob("done")
	}
}

// shutdown stops intake and drains: queued and running jobs finish, then
// the workers exit. If ctx expires first, every live job is cancelled (the
// ctxCriterion aborts its search promptly) and shutdown still waits for
// the workers before returning ctx.Err().
func (m *jobManager) shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.mu.Lock()
		for _, j := range m.jobs {
			j.cancel()
		}
		m.mu.Unlock()
		<-done
		return ctx.Err()
	}
}
