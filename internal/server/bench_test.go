package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// BenchmarkServerDisclosure measures end-to-end request throughput against
// an httptest server: JSON decode, registry lookup, bucketization, the
// O(|B|·k³) DP and JSON encode. The cold variant resets the warm state
// every iteration (fresh engine memo and bucketization cache); the warm
// variant reuses the process-wide caches, which is the steady state a
// resident ckprivacyd actually serves. CI's short-mode bench job archives
// both in the BENCH_*.json artifact.
func BenchmarkServerDisclosure(b *testing.B) {
	body, err := json.Marshal(map[string]any{"dataset": "adult", "k": 3})
	if err != nil {
		b.Fatal(err)
	}

	post := func(b *testing.B, ts *httptest.Server) {
		b.Helper()
		resp, err := http.Post(ts.URL+"/v1/disclosure", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("disclosure = %d", resp.StatusCode)
		}
	}
	// 2000 synthetic Adult rows keep one cold iteration in the tens of
	// milliseconds while still exercising a realistic histogram mix.
	register := func(b *testing.B) *httptest.Server {
		b.Helper()
		s := New(Config{})
		ts := httptest.NewServer(s.Handler())
		reg, err := json.Marshal(map[string]any{
			"name": "adult", "synthetic": map[string]any{"n": 2000, "seed": 1},
		})
		if err != nil {
			b.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/datasets", "application/json", bytes.NewReader(reg))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			b.Fatalf("register = %d", resp.StatusCode)
		}
		return ts
	}

	b.Run("cold", func(b *testing.B) {
		ts := register(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Drop all warm state by rebuilding the whole server (fresh
			// engine memo and bucketization cache) outside the timer.
			b.StopTimer()
			ts.Close()
			ts = register(b)
			b.StartTimer()
			post(b, ts)
		}
		ts.Close()
	})

	b.Run("warm", func(b *testing.B) {
		ts := register(b)
		defer ts.Close()
		post(b, ts) // prime the caches
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, ts)
		}
	})
}
