package server

import (
	"errors"
	"fmt"
	"regexp"
	"sort"
	"sync"

	"ckprivacy/internal/anonymize"
	"ckprivacy/internal/dataload"
)

// ErrAlreadyRegistered marks duplicate-name registrations (HTTP 409).
var ErrAlreadyRegistered = errors.New("already registered")

// dataset is one registered table with its warm state: the bundle (table,
// hierarchies, QI) and a long-lived anonymize.Problem whose sharded
// bucketization cache persists across requests. All disclosure math on the
// dataset flows through the problem so repeated generalizations are
// materialized once. The problem also dictionary-encodes the table and
// compiles the hierarchies when it is built — i.e. exactly once, at
// registration — so every subsequent job/check/disclosure request runs on
// the columnar substrate without re-encoding. Appends stream through the
// problem (POST /v1/datasets/{name}/rows), which patches that warm state
// incrementally and bumps the dataset version; releases record published
// generalizations for the sequential-release audit.
type dataset struct {
	bundle  *dataload.Bundle
	problem *anonymize.Problem
	// appendMu serializes the row-limit check with the append itself, so
	// racing appends cannot jointly overshoot MaxRows. When the dataset is
	// persisted it also serializes every WAL write with the mutation it
	// records, which is what guarantees an append record precedes any
	// release record referencing its rows.
	appendMu sync.Mutex
	releases releaseLog
	// persist is the dataset's durable log; nil when the server runs
	// without a store, the bundle has no rebuild source, or the problem
	// fell back to the legacy string path.
	persist *datasetStore
	// recovered says how this dataset came to exist in this process:
	// "cold" (registered fresh), "snapshot" (loaded with no WAL tail),
	// "wal_replay" (snapshot plus replayed appends/releases) or "replica"
	// (installed from a leader's shipped snapshot).
	recovered string
	// pins retains historical version snapshots for ?version= reads; nil on
	// a leader (only followers pin).
	pins *versionPins
	// repl tracks replication progress and health; nil on a leader.
	repl *replicaState
}

// registry maps dataset names to their warm state.
type registry struct {
	mu     sync.RWMutex
	byName map[string]*dataset
	max    int
}

func newRegistry(max int) *registry {
	return &registry{byName: make(map[string]*dataset), max: max}
}

// nameRE restricts dataset names to something URL-path-safe.
var nameRE = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// add registers a bundle under name, building its long-lived Problem with
// the given anonymize options (lattice worker budget, shard budget, memo
// bound). Duplicate names and full registries are errors, rejected cheaply
// before the Problem (lattice space, caches) is built; the check repeats
// at insertion in case a racing registration of the same name won in
// between.
func (r *registry) add(name string, b *dataload.Bundle, opts anonymize.Options, maxReleases int) (*dataset, error) {
	if !nameRE.MatchString(name) {
		return nil, fmt.Errorf("invalid dataset name %q (want [a-zA-Z0-9._-], max 64 chars)", name)
	}
	r.mu.Lock()
	err := r.capacityLocked(name)
	r.mu.Unlock()
	if err != nil {
		return nil, err
	}
	p, err := anonymize.NewProblemWithOptions(b.Table, b.Hierarchies, b.QI, opts)
	if err != nil {
		return nil, err
	}
	ds := &dataset{bundle: b, problem: p, releases: releaseLog{max: maxReleases}, recovered: "cold"}
	if err := r.insert(name, ds); err != nil {
		return nil, err
	}
	return ds, nil
}

// insert places an already-built dataset in the registry (the recovery
// path builds its problem from a durable snapshot rather than through
// add). Name, duplicate and capacity rules are the same as add's.
func (r *registry) insert(name string, ds *dataset) error {
	if !nameRE.MatchString(name) {
		return fmt.Errorf("invalid dataset name %q (want [a-zA-Z0-9._-], max 64 chars)", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.capacityLocked(name); err != nil {
		return err
	}
	r.byName[name] = ds
	return nil
}

// replace installs ds under name, overwriting any existing entry — the
// follower's snapshot (re-)bootstrap path, where a wal_superseded restart
// swaps a fresh install over the stale one. Capacity applies only to new
// names.
func (r *registry) replace(name string, ds *dataset) error {
	if !nameRE.MatchString(name) {
		return fmt.Errorf("invalid dataset name %q (want [a-zA-Z0-9._-], max 64 chars)", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.byName[name]; !exists && len(r.byName) >= r.max {
		return fmt.Errorf("registry full (%d datasets)", r.max)
	}
	r.byName[name] = ds
	return nil
}

// remove deletes a dataset from the registry (used to back out a
// registration whose durable snapshot failed to write).
func (r *registry) remove(name string) {
	r.mu.Lock()
	delete(r.byName, name)
	r.mu.Unlock()
}

// capacityLocked reports whether a registration of name could currently
// succeed; the caller holds r.mu.
func (r *registry) capacityLocked(name string) error {
	if _, exists := r.byName[name]; exists {
		return fmt.Errorf("dataset %q %w", name, ErrAlreadyRegistered)
	}
	if len(r.byName) >= r.max {
		return fmt.Errorf("registry full (%d datasets)", r.max)
	}
	return nil
}

// get looks a dataset up by name.
func (r *registry) get(name string) (*dataset, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ds, ok := r.byName[name]
	return ds, ok
}

// namedDataset pairs a dataset with its registry name for listings.
type namedDataset struct {
	name string
	ds   *dataset
}

// list returns the registered datasets sorted by name.
func (r *registry) list() []namedDataset {
	r.mu.RLock()
	out := make([]namedDataset, 0, len(r.byName))
	for name, ds := range r.byName {
		out = append(out, namedDataset{name, ds})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
