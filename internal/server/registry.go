package server

import (
	"errors"
	"fmt"
	"regexp"
	"sort"
	"sync"

	"ckprivacy/internal/anonymize"
	"ckprivacy/internal/dataload"
)

// errAlreadyRegistered marks duplicate-name registrations (HTTP 409).
var errAlreadyRegistered = errors.New("already registered")

// dataset is one registered table with its warm state: the bundle (table,
// hierarchies, QI) and a long-lived anonymize.Problem whose sharded
// bucketization cache persists across requests. All disclosure math on the
// dataset flows through the problem so repeated generalizations are
// materialized once. The problem also dictionary-encodes the table and
// compiles the hierarchies when it is built — i.e. exactly once, at
// registration — so every subsequent job/check/disclosure request runs on
// the columnar substrate without re-encoding. Appends stream through the
// problem (POST /v1/datasets/{name}/rows), which patches that warm state
// incrementally and bumps the dataset version; releases record published
// generalizations for the sequential-release audit.
type dataset struct {
	bundle  *dataload.Bundle
	problem *anonymize.Problem
	// appendMu serializes the row-limit check with the append itself, so
	// racing appends cannot jointly overshoot MaxRows.
	appendMu sync.Mutex
	releases releaseLog
}

// registry maps dataset names to their warm state.
type registry struct {
	mu     sync.RWMutex
	byName map[string]*dataset
	max    int
}

func newRegistry(max int) *registry {
	return &registry{byName: make(map[string]*dataset), max: max}
}

// nameRE restricts dataset names to something URL-path-safe.
var nameRE = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// add registers a bundle under name, building its long-lived Problem with
// the given anonymize options (lattice worker budget, shard budget, memo
// bound). Duplicate names and full registries are errors, rejected cheaply
// before the Problem (lattice space, caches) is built; the check repeats
// at insertion in case a racing registration of the same name won in
// between.
func (r *registry) add(name string, b *dataload.Bundle, opts anonymize.Options, maxReleases int) (*dataset, error) {
	if !nameRE.MatchString(name) {
		return nil, fmt.Errorf("invalid dataset name %q (want [a-zA-Z0-9._-], max 64 chars)", name)
	}
	r.mu.Lock()
	err := r.capacityLocked(name)
	r.mu.Unlock()
	if err != nil {
		return nil, err
	}
	p, err := anonymize.NewProblemWithOptions(b.Table, b.Hierarchies, b.QI, opts)
	if err != nil {
		return nil, err
	}
	ds := &dataset{bundle: b, problem: p, releases: releaseLog{max: maxReleases}}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.capacityLocked(name); err != nil {
		return nil, err
	}
	r.byName[name] = ds
	return ds, nil
}

// capacityLocked reports whether a registration of name could currently
// succeed; the caller holds r.mu.
func (r *registry) capacityLocked(name string) error {
	if _, exists := r.byName[name]; exists {
		return fmt.Errorf("dataset %q %w", name, errAlreadyRegistered)
	}
	if len(r.byName) >= r.max {
		return fmt.Errorf("registry full (%d datasets)", r.max)
	}
	return nil
}

// get looks a dataset up by name.
func (r *registry) get(name string) (*dataset, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ds, ok := r.byName[name]
	return ds, ok
}

// namedDataset pairs a dataset with its registry name for listings.
type namedDataset struct {
	name string
	ds   *dataset
}

// list returns the registered datasets sorted by name.
func (r *registry) list() []namedDataset {
	r.mu.RLock()
	out := make([]namedDataset, 0, len(r.byName))
	for name, ds := range r.byName {
		out = append(out, namedDataset{name, ds})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
