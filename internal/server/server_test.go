package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"ckprivacy/internal/anonymize"
	"ckprivacy/internal/core"
	"ckprivacy/internal/dataload"
	"ckprivacy/internal/privacy"
)

// newTestServer spins up the service on httptest with test-friendly
// limits.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(shutdownCtx)
	})
	return s, ts
}

// postJSON posts v and decodes the response body into out (when non-nil),
// returning the status code.
func postJSON(t *testing.T, url string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("unmarshal %q: %v", data, err)
		}
	}
	return resp.StatusCode
}

// postJSONClient is postJSON without test plumbing, for concurrent
// clients; it returns 0 on transport errors.
func postJSONClient(client *http.Client, url string, v any, out any) int {
	body, err := json.Marshal(v)
	if err != nil {
		return 0
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return 0
		}
	}
	return resp.StatusCode
}

// getJSONClient is getJSON's transport-error-tolerant sibling.
func getJSONClient(client *http.Client, url string, out any) int {
	resp, err := client.Get(url)
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return 0
		}
	}
	return resp.StatusCode
}

// detailInt extracts an integer detail field from an error envelope
// (JSON numbers decode as float64).
func detailInt(e errorBody, key string) (int, bool) {
	f, ok := e.Detail[key].(float64)
	return int(f), ok
}

// getJSON GETs url into out, returning the status code.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("unmarshal %q: %v", data, err)
		}
	}
	return resp.StatusCode
}

// getText GETs url as plain text.
func getText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, data)
	}
	return string(data)
}

// registerHospital registers the built-in hospital example under name.
func registerHospital(t *testing.T, url, name string) {
	t.Helper()
	code := postJSON(t, url+"/v1/datasets",
		map[string]any{"name": name, "builtin": "hospital"}, nil)
	if code != http.StatusCreated {
		t.Fatalf("register hospital = %d", code)
	}
}

// pollJob polls a job until it reaches a terminal state.
func pollJob(t *testing.T, url, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st jobStatus
		if code := getJSON(t, url+"/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("poll %s = %d", id, code)
		}
		switch st.State {
		case JobDone, JobFailed, JobCancelled:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEndToEnd is the acceptance flow: register a dataset, run a
// synchronous disclosure check twice (the repeat must be served warm),
// submit an async anonymize job, poll it to completion, and verify the
// returned nodes match the library's MinimalSafe answer.
func TestEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerHospital(t, ts.URL, "hospital")

	// Synchronous disclosure on the registered dataset (default levels =
	// the paper's Figure 3 partition), with witness.
	var disc disclosureResponse
	req := map[string]any{"dataset": "hospital", "k": 1, "witness": true, "negation": true}
	if code := postJSON(t, ts.URL+"/v1/disclosure", req, &disc); code != http.StatusOK {
		t.Fatalf("disclosure = %d", code)
	}
	if disc.Buckets != 2 || disc.Tuples != 10 {
		t.Errorf("disclosure over %d buckets / %d tuples, want 2 / 10", disc.Buckets, disc.Tuples)
	}
	if disc.Disclosure < 0.66 || disc.Disclosure > 0.67 {
		t.Errorf("k=1 disclosure = %v, want 2/3", disc.Disclosure)
	}
	if disc.NegationDisclosure == nil || *disc.NegationDisclosure > disc.Disclosure+1e-12 {
		t.Errorf("negation disclosure %v should be <= full disclosure %v", disc.NegationDisclosure, disc.Disclosure)
	}
	if disc.Witness == nil || len(disc.Witness.Implications) != 1 {
		t.Fatalf("witness = %+v, want 1 implication", disc.Witness)
	}
	// Witness persons are the paper's names, courtesy of the bundle namer.
	if !strings.Contains(disc.Witness.Target, "t[") {
		t.Errorf("witness target %q is not an atom", disc.Witness.Target)
	}

	// The identical repeat must hit the warm per-dataset bucketization
	// cache and the engine memo; /metrics proves it.
	var disc2 disclosureResponse
	if code := postJSON(t, ts.URL+"/v1/disclosure", req, &disc2); code != http.StatusOK {
		t.Fatalf("repeat disclosure = %d", code)
	}
	if disc2.Disclosure != disc.Disclosure {
		t.Errorf("warm disclosure %v != cold %v", disc2.Disclosure, disc.Disclosure)
	}
	metrics := getText(t, ts.URL+"/metrics")
	if !strings.Contains(metrics, `ckprivacyd_dataset_cache_hits_total{dataset="hospital"} 1`) {
		t.Errorf("metrics do not show the warm bucketization-cache hit:\n%s", grepMetrics(metrics, "dataset_cache"))
	}
	if strings.Contains(metrics, "ckprivacyd_engine_memo_hits_total 0\n") {
		t.Errorf("engine memo shows no hits after a repeated identical request:\n%s", grepMetrics(metrics, "engine_memo"))
	}

	// (c,k)-safety verdict through /v1/check: the Figure 3 partition is
	// not (0.6,1)-safe (disclosure 2/3) but is (0.7,1)-safe.
	var chk checkResponse
	if code := postJSON(t, ts.URL+"/v1/check",
		map[string]any{"dataset": "hospital", "criterion": "ck", "c": 0.6, "k": 1}, &chk); code != http.StatusOK {
		t.Fatalf("check = %d", code)
	}
	if chk.Safe {
		t.Errorf("(0.6,1)-safety should fail at disclosure 2/3")
	}
	if code := postJSON(t, ts.URL+"/v1/check",
		map[string]any{"dataset": "hospital", "criterion": "ck", "c": 0.7, "k": 1}, &chk); code != http.StatusOK || !chk.Safe {
		t.Errorf("(0.7,1)-safety = %v (code %d), want safe", chk.Safe, 0)
	}

	// Async anonymization: minimal (c,k)-safe generalizations of the
	// hospital lattice, polled to completion.
	var acc anonymizeAccepted
	if code := postJSON(t, ts.URL+"/v1/anonymize",
		map[string]any{"dataset": "hospital", "criterion": "ck", "c": 0.7, "k": 1, "method": "minimal"},
		&acc); code != http.StatusAccepted {
		t.Fatalf("anonymize = %d", code)
	}
	st := pollJob(t, ts.URL, acc.ID)
	if st.State != JobDone || st.Result == nil {
		t.Fatalf("job = %+v", st)
	}

	// The service's answer must match the library's, computed directly.
	b := dataload.Hospital()
	p, err := anonymize.NewProblem(b.Table, b.Hierarchies, b.QI)
	if err != nil {
		t.Fatal(err)
	}
	wantNodes, _, err := p.MinimalSafe(privacy.CKSafety{C: 0.7, K: 1, Engine: core.NewEngine()})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Result.Nodes) != len(wantNodes) {
		t.Fatalf("job found %d nodes, library found %d", len(st.Result.Nodes), len(wantNodes))
	}
	for i, want := range wantNodes {
		got := st.Result.Nodes[i]
		if fmt.Sprint(got) != fmt.Sprint([]int(want)) {
			t.Errorf("node %d = %v, want %v", i, got, want)
		}
	}
	if !st.Result.Exists || st.Result.Best == nil || st.Result.Best.Buckets == 0 {
		t.Errorf("result lacks utility ranking: %+v", st.Result)
	}
}

// grepMetrics keeps the lines mentioning substr, for readable failures.
func grepMetrics(metrics, substr string) string {
	var out []string
	for _, line := range strings.Split(metrics, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

func TestInlineGroupsAndHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// The quickstart bucketization, inline — no registration needed.
	var disc disclosureResponse
	req := map[string]any{
		"groups": [][]string{
			{"flu", "flu", "lung-cancer", "lung-cancer", "mumps"},
			{"flu", "flu", "breast-cancer", "ovarian-cancer", "heart-disease"},
		},
		"k": 1,
	}
	if code := postJSON(t, ts.URL+"/v1/disclosure", req, &disc); code != http.StatusOK {
		t.Fatalf("inline disclosure = %d", code)
	}
	if disc.Disclosure < 0.66 || disc.Disclosure > 0.67 {
		t.Errorf("inline k=1 disclosure = %v, want 2/3", disc.Disclosure)
	}

	var health struct {
		Status   string `json:"status"`
		Datasets int    `json:"datasets"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || health.Status != "ok" {
		t.Errorf("healthz = %d %+v", code, health)
	}
}

func TestDatasetRegistry(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxDatasets: 2})
	registerHospital(t, ts.URL, "hospital")

	// Duplicate names conflict.
	var e errorBody
	if code := postJSON(t, ts.URL+"/v1/datasets",
		map[string]any{"name": "hospital", "builtin": "hospital"}, &e); code != http.StatusConflict {
		t.Errorf("duplicate register = %d (%s)", code, e.Error)
	}

	// Registration via custom spec.
	spec := map[string]any{
		"name": "mini",
		"spec": map[string]any{
			"attributes": []map[string]any{
				{"name": "Zip", "kind": "numeric", "min": 0, "max": 99999},
				{"name": "Illness", "kind": "categorical", "domain": []string{"flu", "cold"}},
			},
			"sensitive": "Illness",
			"hierarchies": []map[string]any{
				{"attribute": "Zip", "kind": "interval", "widths": []int{1, 10, 0}},
			},
			"csv": "Zip,Illness\n14850,flu\n14851,cold\n14852,flu\n14853,cold\n",
		},
	}
	var info datasetInfo
	if code := postJSON(t, ts.URL+"/v1/datasets", spec, &info); code != http.StatusCreated {
		t.Fatalf("spec register = %d", code)
	}
	if info.Rows != 4 || info.Sensitive != "Illness" {
		t.Errorf("spec info = %+v", info)
	}

	// Registry is now full.
	if code := postJSON(t, ts.URL+"/v1/datasets",
		map[string]any{"name": "third", "builtin": "hospital"}, &e); code != http.StatusBadRequest {
		t.Errorf("register over capacity = %d", code)
	}

	var list struct {
		Datasets []datasetInfo `json:"datasets"`
	}
	if code := getJSON(t, ts.URL+"/v1/datasets", &list); code != http.StatusOK || len(list.Datasets) != 2 {
		t.Fatalf("list = %d, %d datasets", code, len(list.Datasets))
	}
	if list.Datasets[0].Name != "hospital" || list.Datasets[1].Name != "mini" {
		t.Errorf("listing order = %q, %q", list.Datasets[0].Name, list.Datasets[1].Name)
	}
	if code := getJSON(t, ts.URL+"/v1/datasets/mini", &info); code != http.StatusOK || info.Name != "mini" {
		t.Errorf("get dataset = %d %+v", code, info)
	}
	if code := getJSON(t, ts.URL+"/v1/datasets/ghost", &e); code != http.StatusNotFound {
		t.Errorf("get unknown dataset = %d", code)
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxK: 4, MaxRows: 100})
	registerHospital(t, ts.URL, "h")

	var e errorBody
	cases := []struct {
		name string
		path string
		body map[string]any
		code int
	}{
		{"k over limit", "/v1/disclosure", map[string]any{"dataset": "h", "k": 5}, 400},
		{"negative k", "/v1/disclosure", map[string]any{"dataset": "h", "k": -1}, 400},
		{"unknown dataset", "/v1/disclosure", map[string]any{"dataset": "ghost", "k": 1}, 404},
		{"dataset and groups", "/v1/disclosure",
			map[string]any{"dataset": "h", "groups": [][]string{{"a"}}, "k": 1}, 400},
		{"groups with levels", "/v1/disclosure",
			map[string]any{"groups": [][]string{{"a", "b"}}, "levels": map[string]int{"Zip": 1}, "k": 1}, 400},
		{"no source", "/v1/disclosure", map[string]any{"k": 1}, 400},
		{"empty group", "/v1/disclosure", map[string]any{"groups": [][]string{{}}, "k": 1}, 400},
		{"bad levels attr", "/v1/disclosure",
			map[string]any{"dataset": "h", "levels": map[string]int{"Bogus": 1}, "k": 1}, 400},
		{"level out of range", "/v1/disclosure",
			map[string]any{"dataset": "h", "levels": map[string]int{"Zip": 9}, "k": 1}, 400},
		{"unknown field", "/v1/disclosure", map[string]any{"dataset": "h", "k": 1, "bogus": true}, 400},
		{"bad criterion", "/v1/check", map[string]any{"dataset": "h", "criterion": "magic"}, 400},
		{"ck without c", "/v1/check", map[string]any{"dataset": "h", "criterion": "ck", "k": 1}, 400},
		{"anonymize without dataset", "/v1/anonymize", map[string]any{"criterion": "ck", "c": 0.7, "k": 1}, 400},
		{"anonymize bad method", "/v1/anonymize",
			map[string]any{"dataset": "h", "c": 0.7, "k": 1, "method": "magic"}, 400},
		{"anonymize bad utility", "/v1/anonymize",
			map[string]any{"dataset": "h", "c": 0.7, "k": 1, "utility": "magic"}, 400},
		{"estimate without target", "/v1/estimate", map[string]any{"dataset": "h"}, 400},
		{"oversized inline groups", "/v1/disclosure",
			map[string]any{"groups": [][]string{bigGroup(101)}, "k": 1}, 400},
	}
	for _, c := range cases {
		if code := postJSON(t, ts.URL+c.path, c.body, &e); code != c.code {
			t.Errorf("%s: code = %d, want %d (%s)", c.name, code, c.code, e.Error)
		}
	}

	// Oversized bodies get 413, not a generic 400.
	_, tsTiny := newTestServer(t, Config{MaxBodyBytes: 64})
	if code := postJSON(t, tsTiny.URL+"/v1/disclosure",
		map[string]any{"groups": [][]string{bigGroup(40)}, "k": 1}, &e); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body = %d, want 413 (%s)", code, e.Error)
	}

	// Unknown job and cancel-unknown-job 404.
	if code := getJSON(t, ts.URL+"/v1/jobs/job-999999", &e); code != http.StatusNotFound {
		t.Errorf("unknown job = %d", code)
	}
	reqDel, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/job-999999", nil)
	resp, err := http.DefaultClient.Do(reqDel)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown job = %d", resp.StatusCode)
	}
}

func bigGroup(n int) []string {
	g := make([]string, n)
	for i := range g {
		g[i] = "v"
	}
	return g
}

// TestEstimateOffsets exercises the Monte-Carlo endpoint and the parser's
// position-carrying 400 bodies.
func TestEstimateOffsets(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerHospital(t, ts.URL, "hospital")

	var est estimateResponse
	req := map[string]any{
		"dataset": "hospital",
		"target":  "t[Ed]=lung-cancer",
		"phi":     "t[Ed]=mumps -> t[Ed]=flu",
		"samples": 20000,
		"seed":    1,
	}
	if code := postJSON(t, ts.URL+"/v1/estimate", req, &est); code != http.StatusOK {
		t.Fatalf("estimate = %d", code)
	}
	// Conditioning Ed away from mumps raises his lung-cancer posterior
	// above the 2/5 prior (the paper's §1 story); Monte-Carlo gives it
	// within a few σ.
	if est.Prob <= 0.4 || est.Prob >= 0.7 {
		t.Errorf("estimate = %v, want ≈ 1/2", est.Prob)
	}

	// A syntax error in phi yields a 400 whose envelope pinpoints the byte.
	var e errorBody
	bad := map[string]any{
		"dataset": "hospital",
		"target":  "t[Ed]=flu",
		"phi":     "t[Ed]=mumps -> junk",
	}
	if code := postJSON(t, ts.URL+"/v1/estimate", bad, &e); code != http.StatusBadRequest {
		t.Fatalf("bad phi = %d", code)
	}
	if e.Code != "syntax_error" {
		t.Errorf("error code = %q, want syntax_error", e.Code)
	}
	if off, ok := detailInt(e, "offset"); !ok || off != 15 {
		t.Errorf("error detail offset = %v, want 15 (start of \"junk\"); body: %+v", e.Detail["offset"], e)
	}
	badTarget := map[string]any{"dataset": "hospital", "target": "t[Ed]flu"}
	if code := postJSON(t, ts.URL+"/v1/estimate", badTarget, &e); code != http.StatusBadRequest || e.Code != "syntax_error" {
		t.Errorf("bad target: code %d, envelope %+v", code, e)
	}
	if _, ok := detailInt(e, "offset"); !ok {
		t.Errorf("bad target envelope carries no offset: %+v", e)
	}

	// Inline groups work too: persons are the 0-based global tuple ids,
	// and Pr(t[0]=flu) in a {flu×2, lung-cancer×2, mumps} bucket is 2/5.
	inline := map[string]any{
		"groups":  [][]string{{"flu", "flu", "lung-cancer", "lung-cancer", "mumps"}},
		"target":  "t[0]=flu",
		"samples": 20000,
		"seed":    1,
	}
	if code := postJSON(t, ts.URL+"/v1/estimate", inline, &est); code != http.StatusOK {
		t.Fatalf("inline estimate = %d", code)
	}
	if est.Prob < 0.35 || est.Prob > 0.45 {
		t.Errorf("inline estimate = %v, want ≈ 2/5", est.Prob)
	}
}

// TestGateSheds saturates the global concurrency gate and expects 503.
func TestGateSheds(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, GateWait: time.Millisecond})
	registerHospital(t, ts.URL, "h")

	// Occupy the only slot from the outside.
	s.gate <- struct{}{}
	defer func() { <-s.gate }()

	var e errorBody
	code := postJSON(t, ts.URL+"/v1/disclosure", map[string]any{"dataset": "h", "k": 1}, &e)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("saturated disclosure = %d (%s)", code, e.Error)
	}
	if !strings.Contains(e.Error, "saturated") {
		t.Errorf("error %q does not mention saturation", e.Error)
	}
}

// TestSearchWorkersConvention pins the library-wide worker convention on
// the server config: values below 1 (the zero value included) mean one
// lattice worker per CPU core, and explicit budgets pass through.
func TestSearchWorkersConvention(t *testing.T) {
	cases := []struct {
		cfg  int
		want int
	}{
		{0, runtime.GOMAXPROCS(0)},
		{-1, runtime.GOMAXPROCS(0)},
		{1, 1},
		{3, 3},
	}
	for _, c := range cases {
		s := New(Config{SearchWorkers: c.cfg})
		if err := s.Register("h", dataload.Hospital()); err != nil {
			t.Fatal(err)
		}
		ds, _ := s.registry.get("h")
		if got := ds.problem.Workers(); got != c.want {
			t.Errorf("SearchWorkers %d: problem runs %d workers, want %d", c.cfg, got, c.want)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := s.Shutdown(ctx); err != nil {
			t.Error(err)
		}
		cancel()
	}
}

func TestMetricsShape(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerHospital(t, ts.URL, "h")
	postJSON(t, ts.URL+"/v1/disclosure", map[string]any{"dataset": "h", "k": 1}, nil)

	metrics := getText(t, ts.URL+"/metrics")
	for _, want := range []string{
		`ckprivacyd_requests_total{route="POST /v1/datasets",code="201"} 1`,
		`ckprivacyd_requests_total{route="POST /v1/disclosure",code="200"} 1`,
		`ckprivacyd_request_seconds_count{route="POST /v1/disclosure"} 1`,
		"ckprivacyd_engine_memo_entries",
		`ckprivacyd_dataset_cache_entries{dataset="h"} 1`,
		"ckprivacyd_datasets_registered 1",
		"ckprivacyd_jobs_queue_depth 0",
		"ckprivacyd_uptime_seconds",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestMetricsPlannerFamilies pins the sweep-planner and arena families: a
// completed anonymize job runs its lattice search as planned sweeps, so
// the dataset's planner counters and the process-wide arena pool counters
// must be live on /metrics.
func TestMetricsPlannerFamilies(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerHospital(t, ts.URL, "h")
	var acc anonymizeAccepted
	if code := postJSON(t, ts.URL+"/v1/anonymize",
		map[string]any{"dataset": "h", "criterion": "ck", "c": 0.7, "k": 1, "method": "minimal"},
		&acc); code != http.StatusAccepted {
		t.Fatalf("anonymize = %d", code)
	}
	if st := pollJob(t, ts.URL, acc.ID); st.State != JobDone {
		t.Fatalf("job = %+v", st)
	}

	metrics := getText(t, ts.URL+"/metrics")
	for _, want := range []string{
		`ckprivacyd_dataset_planned_sweeps_total{dataset="h"}`,
		`ckprivacyd_dataset_planned_nodes_total{dataset="h",path="base_scan"}`,
		`ckprivacyd_dataset_planned_nodes_total{dataset="h",path="coarsened"}`,
		`ckprivacyd_dataset_planned_nodes_total{dataset="h",path="reused"}`,
		`ckprivacyd_dataset_planned_buckets_total{dataset="h",kind="predicted"}`,
		`ckprivacyd_dataset_planned_buckets_total{dataset="h",kind="actual"}`,
		"ckprivacyd_arena_gets_total",
		"ckprivacyd_arena_reuses_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, grepMetrics(metrics, "planned"))
		}
	}
	// The job's search really went through the planner: the level-wise
	// search hands every frontier to it, so at least one sweep with one
	// base-scan root must have been counted.
	if v := metricValue(t, metrics, `ckprivacyd_dataset_planned_sweeps_total{dataset="h"}`); v == 0 {
		t.Errorf("planner recorded no sweeps after a minimal-anonymize job:\n%s", grepMetrics(metrics, "planned"))
	}
	if v := metricValue(t, metrics, `ckprivacyd_dataset_planned_nodes_total{dataset="h",path="base_scan"}`); v == 0 {
		t.Errorf("planner recorded no base scans:\n%s", grepMetrics(metrics, "planned"))
	}
}

// metricValue extracts one sample's value from exposition-format text.
func metricValue(t *testing.T, metrics, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(metrics, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("metric %s has unparsable value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found:\n%s", name, metrics)
	return 0
}

// TestEstimateZeroAcceptance: a well-formed φ that no world satisfies must
// come back as 422 with the sample counts, not a bare 400 — clients need
// accepted/samples to tell "inconsistent knowledge" from "budget too
// small".
func TestEstimateZeroAcceptance(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// One bucket {flu, cold}: person 0 holds exactly one of the two values
	// in every world, so the implication pair below rejects all of them.
	req := map[string]any{
		"groups":  [][]string{{"flu", "cold"}},
		"target":  "t[0]=flu",
		"phi":     "t[0]=flu -> t[0]=cold; t[0]=cold -> t[0]=flu",
		"samples": 500,
		"seed":    1,
	}
	var e errorBody
	if code := postJSON(t, ts.URL+"/v1/estimate", req, &e); code != http.StatusUnprocessableEntity {
		t.Fatalf("estimate with unsatisfiable phi = %d, want 422 (%+v)", code, e)
	}
	if e.Code != "zero_acceptance" {
		t.Errorf("422 code = %q, want zero_acceptance", e.Code)
	}
	if acc, ok := detailInt(e, "accepted"); !ok || acc != 0 {
		t.Errorf("422 detail accepted = %v, want 0", e.Detail["accepted"])
	}
	if n, ok := detailInt(e, "samples"); !ok || n != 500 {
		t.Errorf("422 detail samples = %v, want 500", e.Detail["samples"])
	}
	if e.Error == "" {
		t.Error("422 body has no error message")
	}

	// A satisfiable φ on the same source still succeeds (the 422 path must
	// not swallow good requests).
	ok := map[string]any{
		"groups":  [][]string{{"flu", "cold"}},
		"target":  "t[0]=flu",
		"samples": 500,
		"seed":    1,
	}
	var est estimateResponse
	if code := postJSON(t, ts.URL+"/v1/estimate", ok, &est); code != http.StatusOK {
		t.Fatalf("satisfiable estimate = %d", code)
	}
	if est.Accepted == 0 {
		t.Error("satisfiable estimate accepted no worlds")
	}
}

// TestInlineEngineBoundedAndWarm: inline (client-chosen) bucketizations
// flow through the shared bounded inline engine — warm across requests,
// isolated from the dataset engine, and byte-bounded.
func TestInlineEngineBoundedAndWarm(t *testing.T) {
	s, ts := newTestServer(t, Config{MemoMaxBytes: 1 << 20})

	req := map[string]any{"groups": [][]string{{"a", "a", "b", "c"}, {"a", "b", "b"}}, "k": 2}
	var d1, d2 disclosureResponse
	if code := postJSON(t, ts.URL+"/v1/disclosure", req, &d1); code != http.StatusOK {
		t.Fatalf("inline disclosure = %d", code)
	}
	cold := s.InlineEngine().Stats()
	if cold.Misses == 0 {
		t.Fatal("inline engine saw no traffic; requests are not routed through it")
	}
	if code := postJSON(t, ts.URL+"/v1/disclosure", req, &d2); code != http.StatusOK {
		t.Fatalf("repeat inline disclosure = %d", code)
	}
	warm := s.InlineEngine().Stats()
	if warm.Hits <= cold.Hits {
		t.Errorf("repeat inline request did not hit the warm inline memo: %+v -> %+v", cold, warm)
	}
	if d1.Disclosure != d2.Disclosure {
		t.Errorf("warm inline disclosure %v != cold %v", d2.Disclosure, d1.Disclosure)
	}
	// Inline traffic must never touch the dataset engine.
	if es := s.Engine().Stats(); es.Misses != 0 || es.Hits != 0 {
		t.Errorf("inline traffic leaked into the shared dataset engine: %+v", es)
	}
	// And the inline memo is byte-bounded.
	if warm.Bytes > 1<<20 {
		t.Errorf("inline memo %d bytes exceeds the 1 MiB bound", warm.Bytes)
	}
}

// TestMetricsMemoFamilies pins the new memo gauges: bytes and evictions
// per engine, and the lock-free entries gauge.
func TestMetricsMemoFamilies(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerHospital(t, ts.URL, "h")
	postJSON(t, ts.URL+"/v1/disclosure", map[string]any{"dataset": "h", "k": 1}, nil)
	postJSON(t, ts.URL+"/v1/disclosure", map[string]any{"groups": [][]string{{"x", "y"}}, "k": 1}, nil)

	metrics := getText(t, ts.URL+"/metrics")
	for _, want := range []string{
		`ckprivacyd_engine_memo_bytes{engine="shared"}`,
		`ckprivacyd_engine_memo_bytes{engine="inline"}`,
		`ckprivacyd_engine_memo_evictions_total{engine="shared"} 0`,
		`ckprivacyd_engine_memo_evictions_total{engine="inline"} 0`,
		"ckprivacyd_engine_memo_entries",
		`ckprivacyd_dataset_memo_bytes{dataset="h"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, grepMetrics(metrics, "memo"))
		}
	}
	// The shared engine computed something for the dataset request, so its
	// accounted bytes must be positive.
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, `ckprivacyd_engine_memo_bytes{engine="shared"} `) {
			if strings.HasSuffix(line, " 0") {
				t.Errorf("shared memo bytes still 0 after a dataset disclosure: %s", line)
			}
		}
	}
}
