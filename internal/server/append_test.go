package server

import (
	"net/http"
	"strings"
	"testing"
)

// hospitalRows is a small batch of schema-valid hospital rows, including
// a disease value ("mumps" aside, "heart-disease") already known and one
// zip (14860) the base table never saw, so appends exercise dictionary
// growth.
func hospitalRows() [][]string {
	return [][]string{
		{"14850", "26", "M", "flu"},
		{"14860", "22", "F", "heart-disease"},
		{"14853", "23", "M", "mumps"},
	}
}

// TestAppendRowsEndpoint drives the streaming-ingest flow end to end:
// warm the dataset, append rows, and verify version, row count, warm-state
// patching and the post-append disclosure all reflect the grown table.
func TestAppendRowsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerHospital(t, ts.URL, "h")

	// Warm one lattice node so the append has something to patch.
	var disc disclosureResponse
	if code := postJSON(t, ts.URL+"/v1/disclosure", map[string]any{"dataset": "h", "k": 1}, &disc); code != http.StatusOK {
		t.Fatalf("disclosure = %d", code)
	}
	if disc.Version != 1 || disc.Tuples != 10 {
		t.Fatalf("pre-append disclosure version %d tuples %d", disc.Version, disc.Tuples)
	}

	var app appendRowsResponse
	if code := postJSON(t, ts.URL+"/v1/datasets/h/rows", map[string]any{"rows": hospitalRows()}, &app); code != http.StatusOK {
		t.Fatalf("append = %d", code)
	}
	if app.Version != 2 || app.Rows != 13 || app.Appended != 3 || app.Start != 10 {
		t.Fatalf("append response %+v", app)
	}
	if app.PatchedNodes < 1 {
		t.Fatalf("append patched %d nodes, want >= 1", app.PatchedNodes)
	}
	if app.NewCodes["Zip"] != 1 {
		t.Fatalf("new codes %v, want Zip to gain 14860", app.NewCodes)
	}

	var info datasetInfo
	if code := getJSON(t, ts.URL+"/v1/datasets/h", &info); code != http.StatusOK {
		t.Fatalf("get dataset = %d", code)
	}
	if info.Version != 2 || info.Rows != 13 {
		t.Fatalf("dataset info version %d rows %d, want 2/13", info.Version, info.Rows)
	}
	if info.DictCardinalities["Zip"] != 3 {
		t.Fatalf("Zip cardinality %d, want 3", info.DictCardinalities["Zip"])
	}

	// The same disclosure request now covers the appended rows at the new
	// version — served by the patched warm cache, not a rebuild.
	if code := postJSON(t, ts.URL+"/v1/disclosure", map[string]any{"dataset": "h", "k": 1}, &disc); code != http.StatusOK {
		t.Fatalf("post-append disclosure = %d", code)
	}
	if disc.Version != 2 || disc.Tuples != 13 {
		t.Fatalf("post-append disclosure version %d tuples %d, want 2/13", disc.Version, disc.Tuples)
	}

	// An estimate can target an appended row: the hospital namer only
	// names the paper's ten patients, so appended persons go by row index
	// (id 12 is the third appended row) instead of panicking.
	var est estimateResponse
	ereq := map[string]any{"dataset": "h", "target": "t[12]=mumps", "samples": 2000, "seed": 7}
	if code := postJSON(t, ts.URL+"/v1/estimate", ereq, &est); code != http.StatusOK {
		t.Fatalf("estimate on appended row = %d", code)
	}
	if est.Prob <= 0 || est.Prob > 1 {
		t.Fatalf("estimate prob %v outside (0, 1]", est.Prob)
	}
}

// TestAppendRowsValidation covers the rejection paths: unknown dataset,
// empty batch, schema-invalid rows (atomically — the version must not
// move), and the MaxRows limit.
func TestAppendRowsValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxRows: 12})
	registerHospital(t, ts.URL, "h")

	if code := postJSON(t, ts.URL+"/v1/datasets/nope/rows", map[string]any{"rows": hospitalRows()}, nil); code != http.StatusNotFound {
		t.Fatalf("append to unknown dataset = %d, want 404", code)
	}
	if code := postJSON(t, ts.URL+"/v1/datasets/h/rows", map[string]any{"rows": [][]string{}}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty append = %d, want 400", code)
	}
	var e errorBody
	bad := [][]string{{"14850", "26", "M", "flu"}, {"14850", "not-a-number", "M", "flu"}}
	if code := postJSON(t, ts.URL+"/v1/datasets/h/rows", map[string]any{"rows": bad}, &e); code != http.StatusBadRequest {
		t.Fatalf("invalid append = %d, want 400", code)
	}
	if !strings.Contains(e.Error, "Age") {
		t.Fatalf("invalid-append error %q does not name the attribute", e.Error)
	}
	var info datasetInfo
	getJSON(t, ts.URL+"/v1/datasets/h", &info)
	if info.Version != 1 || info.Rows != 10 {
		t.Fatalf("rejected appends moved the dataset to version %d rows %d", info.Version, info.Rows)
	}
	// 10 + 3 > MaxRows(12): the limit names both numbers.
	if code := postJSON(t, ts.URL+"/v1/datasets/h/rows", map[string]any{"rows": hospitalRows()}, &e); code != http.StatusBadRequest {
		t.Fatalf("over-limit append = %d, want 400", code)
	}
	if !strings.Contains(e.Error, "12-row limit") {
		t.Fatalf("over-limit error %q does not name the limit", e.Error)
	}
}

// TestJobsPinVersion checks anonymize jobs report the dataset version
// their search ran on, across an append.
func TestJobsPinVersion(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerHospital(t, ts.URL, "h")
	runJob := func() *anonymizeResult {
		var acc anonymizeAccepted
		req := map[string]any{"dataset": "h", "criterion": "ck", "c": 0.9, "k": 1, "method": "chain"}
		if code := postJSON(t, ts.URL+"/v1/anonymize", req, &acc); code != http.StatusAccepted {
			t.Fatalf("submit = %d", code)
		}
		st := pollJob(t, ts.URL, acc.ID)
		if st.State != JobDone {
			t.Fatalf("job state %q (%s)", st.State, st.Error)
		}
		return st.Result
	}
	if res := runJob(); res.Version != 1 {
		t.Fatalf("pre-append job version %d, want 1", res.Version)
	}
	if code := postJSON(t, ts.URL+"/v1/datasets/h/rows", map[string]any{"rows": hospitalRows()}, nil); code != http.StatusOK {
		t.Fatalf("append = %d", code)
	}
	if res := runJob(); res.Version != 2 {
		t.Fatalf("post-append job version %d, want 2", res.Version)
	}
}

// TestReleasesAudit drives the sequential-release flow: record a release,
// append, record another, and read the pairwise intersection audit. The
// intersection partition is finer than either release restricted to the
// common persons, so its disclosure must be at least each release's own.
func TestReleasesAudit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerHospital(t, ts.URL, "h")

	var created releaseCreated
	if code := postJSON(t, ts.URL+"/v1/datasets/h/releases", map[string]any{}, &created); code != http.StatusCreated {
		t.Fatalf("release 1 = %d", code)
	}
	if created.Release.Version != 1 || created.Release.Rows != 10 || created.Release.Buckets != 2 {
		t.Fatalf("release 1 = %+v", created.Release)
	}
	if code := postJSON(t, ts.URL+"/v1/datasets/h/rows", map[string]any{"rows": hospitalRows()}, nil); code != http.StatusOK {
		t.Fatalf("append = %d", code)
	}
	req := map[string]any{"levels": map[string]int{"Zip": 2, "Age": 2, "Sex": 1}}
	if code := postJSON(t, ts.URL+"/v1/datasets/h/releases", req, &created); code != http.StatusCreated {
		t.Fatalf("release 2 = %d", code)
	}
	if created.Release.Version != 2 || created.Release.Rows != 13 || created.Retained != 2 {
		t.Fatalf("release 2 = %+v (retained %d)", created.Release, created.Retained)
	}

	var audit releasesResponse
	if code := getJSON(t, ts.URL+"/v1/datasets/h/releases?k=1", &audit); code != http.StatusOK {
		t.Fatalf("audit = %d", code)
	}
	if len(audit.Releases) != 2 || len(audit.Pairs) != 1 {
		t.Fatalf("audit has %d releases / %d pairs", len(audit.Releases), len(audit.Pairs))
	}
	pair := audit.Pairs[0]
	if pair.CommonTuples != 10 {
		t.Fatalf("pair covers %d common tuples, want 10", pair.CommonTuples)
	}
	for _, rel := range audit.Releases {
		if rel.Disclosure == nil {
			t.Fatalf("release %d missing its own disclosure", rel.Index)
		}
	}
	// Release 2 is fully generalized (one bucket over 13 rows); the
	// intersection with release 1 refines back to release 1's partition
	// over the common 10 persons, so the pair's disclosure must be at
	// least release 1's.
	if pair.Disclosure < *audit.Releases[0].Disclosure-1e-12 {
		t.Fatalf("intersection disclosure %v below release 1's %v",
			pair.Disclosure, *audit.Releases[0].Disclosure)
	}
	if audit.MaxPairDisclosure == nil || *audit.MaxPairDisclosure != pair.Disclosure {
		t.Fatalf("max pair disclosure %v, want %v", audit.MaxPairDisclosure, pair.Disclosure)
	}

	// Validation: bad k values.
	if code := getJSON(t, ts.URL+"/v1/datasets/h/releases?k=abc", nil); code != http.StatusBadRequest {
		t.Fatalf("k=abc audit = %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/v1/datasets/h/releases?k=999", nil); code != http.StatusBadRequest {
		t.Fatalf("k=999 audit = %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/v1/datasets/none/releases", nil); code != http.StatusNotFound {
		t.Fatalf("audit of unknown dataset = %d, want 404", code)
	}
}

// TestReleasesBounded checks the release log evicts its oldest entry past
// MaxReleases and reports the eviction.
func TestReleasesBounded(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxReleases: 2})
	registerHospital(t, ts.URL, "h")
	var created releaseCreated
	for i := 0; i < 3; i++ {
		if code := postJSON(t, ts.URL+"/v1/datasets/h/releases", map[string]any{}, &created); code != http.StatusCreated {
			t.Fatalf("release %d = %d", i, code)
		}
	}
	if created.Retained != 2 || created.Evicted != 1 {
		t.Fatalf("retained %d evicted %d, want 2/1", created.Retained, created.Evicted)
	}
	var audit releasesResponse
	if code := getJSON(t, ts.URL+"/v1/datasets/h/releases", &audit); code != http.StatusOK {
		t.Fatalf("audit = %d", code)
	}
	if len(audit.Releases) != 2 || audit.Releases[0].Index != 1 || audit.Evicted != 1 {
		t.Fatalf("audit after eviction: %d releases, first index %d, evicted %d",
			len(audit.Releases), audit.Releases[0].Index, audit.Evicted)
	}
	// Identical retained releases: the intersection is the release itself,
	// so pairwise disclosure equals the per-release disclosure.
	if len(audit.Pairs) != 1 || audit.Pairs[0].Disclosure != *audit.Releases[0].Disclosure {
		t.Fatalf("identical releases: pair %+v vs release disclosure %v",
			audit.Pairs[0], *audit.Releases[0].Disclosure)
	}
}

// TestMetricsDatasetVersionFamilies checks the /metrics families added for
// the streaming substrate.
func TestMetricsDatasetVersionFamilies(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerHospital(t, ts.URL, "h")
	if code := postJSON(t, ts.URL+"/v1/datasets/h/rows", map[string]any{"rows": hospitalRows()}, nil); code != http.StatusOK {
		t.Fatalf("append = %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/datasets/h/releases", map[string]any{}, nil); code != http.StatusCreated {
		t.Fatalf("release = %d", code)
	}
	text := getText(t, ts.URL+"/metrics")
	for _, want := range []string{
		`ckprivacyd_dataset_version{dataset="h"} 2`,
		`ckprivacyd_dataset_rows{dataset="h"} 13`,
		`ckprivacyd_dataset_releases{dataset="h"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// yamlPathMethods parses the served OpenAPI document's paths section with
// a small indentation-based reader (the file's formatting is ours):
// two-space keys under "paths:" are templated paths, four-space keys under
// a path are HTTP methods.
func yamlPathMethods(t *testing.T, doc string) map[string][]string {
	t.Helper()
	out := map[string][]string{}
	inPaths := false
	var current string
	for _, line := range strings.Split(doc, "\n") {
		trimmed := strings.TrimRight(line, " ")
		if trimmed == "paths:" {
			inPaths = true
			continue
		}
		if !inPaths || trimmed == "" || strings.HasPrefix(strings.TrimSpace(trimmed), "#") {
			continue
		}
		if !strings.HasPrefix(trimmed, " ") {
			inPaths = false // a new top-level section ends paths
			continue
		}
		if strings.HasPrefix(trimmed, "  ") && !strings.HasPrefix(trimmed, "   ") && strings.HasSuffix(trimmed, ":") {
			current = strings.TrimSuffix(strings.TrimSpace(trimmed), ":")
			continue
		}
		if strings.HasPrefix(trimmed, "    ") && !strings.HasPrefix(trimmed, "     ") && strings.HasSuffix(trimmed, ":") && current != "" {
			out[current] = append(out[current], strings.TrimSuffix(strings.TrimSpace(trimmed), ":"))
		}
	}
	return out
}

// TestOpenAPICoversEveryRoute serves the spec and asserts every registered
// mux pattern — method and templated path — appears in it, so the spec
// cannot drift from the implementation silently.
func TestOpenAPICoversEveryRoute(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/openapi.yaml")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/openapi.yaml = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "yaml") {
		t.Fatalf("spec served as %q", ct)
	}
	doc := getText(t, ts.URL+"/v1/openapi.yaml")
	if !strings.HasPrefix(strings.TrimLeft(doc, "# \n"), "openapi: 3") &&
		!strings.Contains(doc, "openapi: 3") {
		t.Fatal("served document is not an OpenAPI 3 spec")
	}
	spec := yamlPathMethods(t, doc)
	if len(spec) == 0 {
		t.Fatal("parsed no paths from the spec")
	}
	for _, pattern := range s.Patterns() {
		parts := strings.SplitN(pattern, " ", 2)
		if len(parts) != 2 {
			t.Fatalf("unparseable mux pattern %q", pattern)
		}
		method, path := strings.ToLower(parts[0]), parts[1]
		methods, ok := spec[path]
		if !ok {
			t.Errorf("spec is missing path %q (pattern %q)", path, pattern)
			continue
		}
		found := false
		for _, m := range methods {
			if m == method {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("spec path %q lacks method %q (has %v)", path, method, methods)
		}
	}
	if t.Failed() {
		t.Logf("spec paths: %v", spec)
	}
}
