package server

import (
	"context"
	"runtime"
	"testing"

	"ckprivacy/internal/dataload"
	"ckprivacy/internal/store"
)

// The boot pair measures what the durable store buys on restart: a
// ckprivacyd with -data-dir either finds persisted state (warm) or must
// re-register the dataset from source and persist it (cold). Both
// benchmarks therefore run the full persistent path over the 45k-row
// Adult sample; the boot-seconds/op metric lands in the CI bench artifact
// so the restart-latency ratio is tracked across PRs. Seed 2 deliberately
// bypasses the process-wide default-bundle cache: every cold iteration
// pays the full generate+encode price a cold daemon would, and nothing
// stays pinned in the heap to distort GC between iterations.

// BenchmarkColdBoot: no usable on-disk state; regenerate the bundle from
// source, encode it, build the search problem, write the first snapshot.
func BenchmarkColdBoot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		mgr, err := store.Open(store.Options{Dir: dir, Fsync: false})
		if err != nil {
			b.Fatal(err)
		}
		bundle, err := dataload.Adult("", 0, 2)
		if err != nil {
			b.Fatal(err)
		}
		srv := New(Config{Store: mgr})
		if err := srv.Register("adult", bundle); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		_ = srv.Shutdown(context.Background())
		runtime.GC() // previous iteration's garbage is not this boot's cost
		b.StartTimer()
	}
	b.ReportMetric(b.Elapsed().Seconds()/float64(b.N), "boot-seconds/op")
}

// BenchmarkWarmBoot: reopen the data directory and recover the dataset
// from its columnar snapshot — no generation, no re-encoding, dictionary
// strings shared straight out of the decoded sections.
func BenchmarkWarmBoot(b *testing.B) {
	dir := b.TempDir()
	mgr, err := store.Open(store.Options{Dir: dir, Fsync: false})
	if err != nil {
		b.Fatal(err)
	}
	setup := New(Config{Store: mgr})
	bundle, err := dataload.Adult("", 0, 2)
	if err != nil {
		b.Fatal(err)
	}
	if err := setup.Register("adult", bundle); err != nil {
		b.Fatal(err)
	}
	_ = setup.Shutdown(context.Background())
	setup, bundle, mgr = nil, nil, nil
	runtime.GC()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mgr, err := store.Open(store.Options{Dir: dir, Fsync: false})
		if err != nil {
			b.Fatal(err)
		}
		srv := New(Config{Store: mgr})
		stats, err := srv.RecoverAll()
		if err != nil {
			b.Fatal(err)
		}
		if stats.Datasets != 1 {
			b.Fatalf("recovered %d datasets, want 1", stats.Datasets)
		}
		b.StopTimer()
		_ = srv.Shutdown(context.Background())
		runtime.GC() // previous iteration's garbage is not this boot's cost
		b.StartTimer()
	}
	b.ReportMetric(b.Elapsed().Seconds()/float64(b.N), "boot-seconds/op")
}
