package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestDatasetEncodedAtRegistration pins the serving contract of the
// columnar substrate: registering a dataset encodes it exactly once (the
// problem built at registration carries the view) and /v1/datasets
// reports the per-attribute dictionary cardinalities.
func TestDatasetEncodedAtRegistration(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var info struct {
		Encoded           bool           `json:"encoded"`
		DictCardinalities map[string]int `json:"dictionary_cardinalities"`
	}
	code := postJSON(t, ts.URL+"/v1/datasets",
		map[string]any{"name": "hosp", "builtin": "hospital"}, &info)
	if code != http.StatusCreated {
		t.Fatalf("register = %d, want 201", code)
	}
	if !info.Encoded {
		t.Fatal("dataset not encoded at registration")
	}
	// The hospital example: 2 zips, 9 ages, 2 sexes, 6 diseases.
	want := map[string]int{"Zip": 2, "Age": 9, "Sex": 2, "Disease": 6}
	for attr, n := range want {
		if info.DictCardinalities[attr] != n {
			t.Fatalf("cardinality[%s] = %d, want %d (full: %v)",
				attr, info.DictCardinalities[attr], n, info.DictCardinalities)
		}
	}

	// The GET view reports the same cardinalities (served from the one
	// problem built at registration — nothing re-encodes per request).
	resp, err := http.Get(ts.URL + "/v1/datasets/hosp")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Encoded           bool           `json:"encoded"`
		DictCardinalities map[string]int `json:"dictionary_cardinalities"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !got.Encoded || got.DictCardinalities["Disease"] != 6 {
		t.Fatalf("GET dataset encoded info = %+v, want encoded with Disease=6", got)
	}
}

// TestBadLevelsSurfaceAttributeName pins the bugfix's serving surface:
// level maps naming unknown attributes or out-of-range levels come back
// as HTTP 400 with the offending attribute named in the error.
func TestBadLevelsSurfaceAttributeName(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code := postJSON(t, ts.URL+"/v1/datasets",
		map[string]any{"name": "hosp", "builtin": "hospital"}, nil); code != http.StatusCreated {
		t.Fatalf("register = %d, want 201", code)
	}
	cases := []struct {
		name   string
		levels map[string]int
		frag   string
	}{
		{"typo'd attribute", map[string]int{"Zap": 1}, `"Zap"`},
		{"out-of-range level", map[string]int{"Age": 9}, `"Age"`},
		{"negative level", map[string]int{"Zip": -2}, `"Zip"`},
	}
	endpoints := []string{"/v1/disclosure", "/v1/check"}
	for _, tc := range cases {
		for _, ep := range endpoints {
			t.Run(tc.name+ep, func(t *testing.T) {
				req := map[string]any{"dataset": "hosp", "levels": tc.levels, "k": 1}
				if ep == "/v1/check" {
					req["c"] = 0.7
				}
				var body struct {
					Error string `json:"error"`
				}
				code := postJSON(t, ts.URL+ep, req, &body)
				if code != http.StatusBadRequest {
					t.Fatalf("%s levels %v = %d, want 400 (%+v)", ep, tc.levels, code, body)
				}
				if !strings.Contains(body.Error, tc.frag) {
					t.Fatalf("%s error %q does not name %s", ep, body.Error, tc.frag)
				}
			})
		}
	}

	// Inline groups reject level maps outright (they have no schema to
	// generalize), still as a 400.
	var body struct {
		Error string `json:"error"`
	}
	code := postJSON(t, ts.URL+"/v1/check", map[string]any{
		"groups": [][]string{{"flu", "cold"}}, "levels": map[string]int{"Zap": 1},
		"criterion": "k-anonymity", "k": 1,
	}, &body)
	if code != http.StatusBadRequest {
		t.Fatalf("inline groups with levels = %d, want 400", code)
	}
}
