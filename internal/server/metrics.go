package server

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"ckprivacy/internal/bucket"
)

// metrics collects per-endpoint request counts and latency sums plus job
// counters, and renders them — together with the live cache and queue
// gauges read off the server — in Prometheus text exposition format. Only
// the stdlib is used; the small fixed label space keeps a mutex-protected
// map cheap enough for the request path.
type metrics struct {
	mu sync.Mutex
	// requests counts finished requests by (route pattern, status code).
	requests map[requestKey]uint64
	// latencySum/latencyCount accumulate seconds by route pattern.
	latencySum   map[string]float64
	latencyCount map[string]uint64
	// jobs counts job submissions by terminal state ("queued" counts
	// submissions; "done", "failed", "cancelled" count completions).
	jobs map[string]uint64
}

type requestKey struct {
	pattern string
	code    int
}

func newMetrics() *metrics {
	return &metrics{
		requests:     make(map[requestKey]uint64),
		latencySum:   make(map[string]float64),
		latencyCount: make(map[string]uint64),
		jobs:         make(map[string]uint64),
	}
}

// statusRecorder captures the status code a handler writes.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler to record count and latency under the route
// pattern label.
func (m *metrics) instrument(pattern string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		begin := time.Now()
		h.ServeHTTP(rec, r)
		elapsed := time.Since(begin).Seconds()
		m.mu.Lock()
		m.requests[requestKey{pattern, rec.code}]++
		m.latencySum[pattern] += elapsed
		m.latencyCount[pattern]++
		m.mu.Unlock()
	})
}

// countJob bumps one job-state counter.
func (m *metrics) countJob(state string) {
	m.mu.Lock()
	m.jobs[state]++
	m.mu.Unlock()
}

// writeTo renders the metrics for the /metrics endpoint. Families are
// sorted so the output is deterministic (and therefore testable).
func (m *metrics) writeTo(w io.Writer, s *Server) {
	m.mu.Lock()
	reqKeys := make([]requestKey, 0, len(m.requests))
	for k := range m.requests {
		reqKeys = append(reqKeys, k)
	}
	sort.Slice(reqKeys, func(i, j int) bool {
		if reqKeys[i].pattern != reqKeys[j].pattern {
			return reqKeys[i].pattern < reqKeys[j].pattern
		}
		return reqKeys[i].code < reqKeys[j].code
	})
	latKeys := make([]string, 0, len(m.latencySum))
	for k := range m.latencySum {
		latKeys = append(latKeys, k)
	}
	sort.Strings(latKeys)
	jobKeys := make([]string, 0, len(m.jobs))
	for k := range m.jobs {
		jobKeys = append(jobKeys, k)
	}
	sort.Strings(jobKeys)

	fmt.Fprintln(w, "# HELP ckprivacyd_requests_total Finished HTTP requests by route and status code.")
	fmt.Fprintln(w, "# TYPE ckprivacyd_requests_total counter")
	for _, k := range reqKeys {
		fmt.Fprintf(w, "ckprivacyd_requests_total{route=%q,code=\"%d\"} %d\n", k.pattern, k.code, m.requests[k])
	}
	fmt.Fprintln(w, "# HELP ckprivacyd_request_seconds Summed wall-clock request latency by route.")
	fmt.Fprintln(w, "# TYPE ckprivacyd_request_seconds summary")
	for _, k := range latKeys {
		fmt.Fprintf(w, "ckprivacyd_request_seconds_sum{route=%q} %g\n", k, m.latencySum[k])
		fmt.Fprintf(w, "ckprivacyd_request_seconds_count{route=%q} %d\n", k, m.latencyCount[k])
	}
	fmt.Fprintln(w, "# HELP ckprivacyd_jobs_total Anonymization jobs by lifecycle event.")
	fmt.Fprintln(w, "# TYPE ckprivacyd_jobs_total counter")
	for _, k := range jobKeys {
		fmt.Fprintf(w, "ckprivacyd_jobs_total{event=%q} %d\n", k, m.jobs[k])
	}
	m.mu.Unlock()

	// Live gauges read outside the metrics lock: engine memos, per-dataset
	// bucketization caches, queue depth. Engine stats are per-shard atomic
	// reads — a scrape never takes a memo shard lock, so it cannot stall
	// DP workers mid-request.
	es := s.engine.Stats()
	is := s.inline.Stats()
	fmt.Fprintln(w, "# HELP ckprivacyd_engine_memo_hits_total Disclosure-engine MINIMIZE1 memo hits.")
	fmt.Fprintln(w, "# TYPE ckprivacyd_engine_memo_hits_total counter")
	fmt.Fprintf(w, "ckprivacyd_engine_memo_hits_total %d\n", es.Hits)
	fmt.Fprintln(w, "# HELP ckprivacyd_engine_memo_misses_total Disclosure-engine MINIMIZE1 memo misses.")
	fmt.Fprintln(w, "# TYPE ckprivacyd_engine_memo_misses_total counter")
	fmt.Fprintf(w, "ckprivacyd_engine_memo_misses_total %d\n", es.Misses)
	fmt.Fprintln(w, "# HELP ckprivacyd_engine_memo_entries Distinct memoized (histogram, k) entries.")
	fmt.Fprintln(w, "# TYPE ckprivacyd_engine_memo_entries gauge")
	fmt.Fprintf(w, "ckprivacyd_engine_memo_entries %d\n", es.Entries)
	fmt.Fprintln(w, "# HELP ckprivacyd_engine_memo_bytes Accounted resident bytes of the engine memo, by engine (shared = registered datasets, inline = client-chosen groups).")
	fmt.Fprintln(w, "# TYPE ckprivacyd_engine_memo_bytes gauge")
	fmt.Fprintf(w, "ckprivacyd_engine_memo_bytes{engine=\"shared\"} %d\n", es.Bytes)
	fmt.Fprintf(w, "ckprivacyd_engine_memo_bytes{engine=\"inline\"} %d\n", is.Bytes)
	fmt.Fprintln(w, "# HELP ckprivacyd_engine_memo_evictions_total Memo entries dropped by the CLOCK eviction policy, by engine.")
	fmt.Fprintln(w, "# TYPE ckprivacyd_engine_memo_evictions_total counter")
	fmt.Fprintf(w, "ckprivacyd_engine_memo_evictions_total{engine=\"shared\"} %d\n", es.Evictions)
	fmt.Fprintf(w, "ckprivacyd_engine_memo_evictions_total{engine=\"inline\"} %d\n", is.Evictions)

	fmt.Fprintln(w, "# HELP ckprivacyd_dataset_cache_hits_total Bucketization-cache hits by dataset.")
	fmt.Fprintln(w, "# TYPE ckprivacyd_dataset_cache_hits_total counter")
	infos := s.registry.list()
	for _, info := range infos {
		cs := info.ds.problem.CacheStats()
		fmt.Fprintf(w, "ckprivacyd_dataset_cache_hits_total{dataset=%q} %d\n", info.name, cs.Hits)
	}
	fmt.Fprintln(w, "# HELP ckprivacyd_dataset_cache_misses_total Bucketization-cache misses by dataset.")
	fmt.Fprintln(w, "# TYPE ckprivacyd_dataset_cache_misses_total counter")
	for _, info := range infos {
		cs := info.ds.problem.CacheStats()
		fmt.Fprintf(w, "ckprivacyd_dataset_cache_misses_total{dataset=%q} %d\n", info.name, cs.Misses)
	}
	fmt.Fprintln(w, "# HELP ckprivacyd_dataset_cache_entries Cached bucketizations by dataset.")
	fmt.Fprintln(w, "# TYPE ckprivacyd_dataset_cache_entries gauge")
	for _, info := range infos {
		cs := info.ds.problem.CacheStats()
		fmt.Fprintf(w, "ckprivacyd_dataset_cache_entries{dataset=%q} %d\n", info.name, cs.Entries)
	}
	fmt.Fprintln(w, "# HELP ckprivacyd_dataset_planned_sweeps_total Planned lattice sweeps executed by the dataset's sweep planner.")
	fmt.Fprintln(w, "# TYPE ckprivacyd_dataset_planned_sweeps_total counter")
	for _, info := range infos {
		fmt.Fprintf(w, "ckprivacyd_dataset_planned_sweeps_total{dataset=%q} %d\n", info.name, info.ds.problem.SweepStats().Sweeps)
	}
	fmt.Fprintln(w, "# HELP ckprivacyd_dataset_planned_nodes_total Derivation-DAG nodes scheduled by planned sweeps, by how each was materialized (base_scan = full row scan at a DAG root, coarsened = derived from a parent through a pooled arena, reused = already materialized).")
	fmt.Fprintln(w, "# TYPE ckprivacyd_dataset_planned_nodes_total counter")
	for _, info := range infos {
		ss := info.ds.problem.SweepStats()
		fmt.Fprintf(w, "ckprivacyd_dataset_planned_nodes_total{dataset=%q,path=\"base_scan\"} %d\n", info.name, ss.BaseScans)
		fmt.Fprintf(w, "ckprivacyd_dataset_planned_nodes_total{dataset=%q,path=\"coarsened\"} %d\n", info.name, ss.Coarsened)
		fmt.Fprintf(w, "ckprivacyd_dataset_planned_nodes_total{dataset=%q,path=\"reused\"} %d\n", info.name, ss.Reused)
	}
	fmt.Fprintln(w, "# HELP ckprivacyd_dataset_planned_buckets_total Bucket counts summed over planner-materialized nodes, predicted by the cost model vs actually produced (ratio near 1 means good parent choices).")
	fmt.Fprintln(w, "# TYPE ckprivacyd_dataset_planned_buckets_total counter")
	for _, info := range infos {
		ss := info.ds.problem.SweepStats()
		fmt.Fprintf(w, "ckprivacyd_dataset_planned_buckets_total{dataset=%q,kind=\"predicted\"} %d\n", info.name, ss.PredictedBuckets)
		fmt.Fprintf(w, "ckprivacyd_dataset_planned_buckets_total{dataset=%q,kind=\"actual\"} %d\n", info.name, ss.ActualBuckets)
	}
	arenaGets, arenaReuses := bucket.ArenaStats()
	fmt.Fprintln(w, "# HELP ckprivacyd_arena_gets_total Scratch arenas borrowed from the process-wide coarsening pool.")
	fmt.Fprintln(w, "# TYPE ckprivacyd_arena_gets_total counter")
	fmt.Fprintf(w, "ckprivacyd_arena_gets_total %d\n", arenaGets)
	fmt.Fprintln(w, "# HELP ckprivacyd_arena_reuses_total Arena borrows satisfied without a fresh allocation (gets minus allocs).")
	fmt.Fprintln(w, "# TYPE ckprivacyd_arena_reuses_total counter")
	fmt.Fprintf(w, "ckprivacyd_arena_reuses_total %d\n", arenaReuses)
	fmt.Fprintln(w, "# HELP ckprivacyd_dataset_memo_bytes Accounted bytes of each dataset's problem-scoped engine memo (warmed by anonymize jobs).")
	fmt.Fprintln(w, "# TYPE ckprivacyd_dataset_memo_bytes gauge")
	for _, info := range infos {
		fmt.Fprintf(w, "ckprivacyd_dataset_memo_bytes{dataset=%q} %d\n", info.name, info.ds.problem.Engine().Stats().Bytes)
	}
	fmt.Fprintln(w, "# HELP ckprivacyd_dataset_version Current dataset version (1 at registration, +1 per append).")
	fmt.Fprintln(w, "# TYPE ckprivacyd_dataset_version gauge")
	for _, info := range infos {
		fmt.Fprintf(w, "ckprivacyd_dataset_version{dataset=%q} %d\n", info.name, info.ds.problem.Version())
	}
	fmt.Fprintln(w, "# HELP ckprivacyd_dataset_rows Row count of the current dataset version.")
	fmt.Fprintln(w, "# TYPE ckprivacyd_dataset_rows gauge")
	for _, info := range infos {
		fmt.Fprintf(w, "ckprivacyd_dataset_rows{dataset=%q} %d\n", info.name, info.ds.problem.Rows())
	}
	fmt.Fprintln(w, "# HELP ckprivacyd_dataset_releases Retained recorded releases per dataset.")
	fmt.Fprintln(w, "# TYPE ckprivacyd_dataset_releases gauge")
	for _, info := range infos {
		rs, _ := info.ds.releases.snapshot()
		fmt.Fprintf(w, "ckprivacyd_dataset_releases{dataset=%q} %d\n", info.name, len(rs))
	}

	fmt.Fprintln(w, "# HELP ckprivacyd_dataset_recovered How each dataset entered this process (cold, snapshot or wal_replay); always 1.")
	fmt.Fprintln(w, "# TYPE ckprivacyd_dataset_recovered gauge")
	for _, info := range infos {
		fmt.Fprintf(w, "ckprivacyd_dataset_recovered{dataset=%q,mode=%q} 1\n", info.name, info.ds.recovered)
	}

	// Durability gauges for persisted datasets: live WAL size, compaction
	// recency, boot replay cost and fsync latency.
	persisted := make([]namedDataset, 0, len(infos))
	for _, info := range infos {
		if info.ds.persist != nil {
			persisted = append(persisted, info)
		}
	}
	if len(persisted) > 0 {
		fmt.Fprintln(w, "# HELP ckprivacyd_wal_bytes Bytes in the dataset's live WAL segment (header included).")
		fmt.Fprintln(w, "# TYPE ckprivacyd_wal_bytes gauge")
		for _, info := range persisted {
			fmt.Fprintf(w, "ckprivacyd_wal_bytes{dataset=%q} %d\n", info.name, info.ds.persist.log.Bytes())
		}
		fmt.Fprintln(w, "# HELP ckprivacyd_wal_records Append/release records in the dataset's live WAL segment.")
		fmt.Fprintln(w, "# TYPE ckprivacyd_wal_records gauge")
		for _, info := range persisted {
			fmt.Fprintf(w, "ckprivacyd_wal_records{dataset=%q} %d\n", info.name, info.ds.persist.log.Records())
		}
		fmt.Fprintln(w, "# HELP ckprivacyd_last_compaction_timestamp_seconds Unix time of the dataset's last WAL compaction; 0 if never compacted in this process.")
		fmt.Fprintln(w, "# TYPE ckprivacyd_last_compaction_timestamp_seconds gauge")
		for _, info := range persisted {
			var ts float64
			if lc := info.ds.persist.log.LastCompaction(); !lc.IsZero() {
				ts = float64(lc.UnixNano()) / 1e9
			}
			fmt.Fprintf(w, "ckprivacyd_last_compaction_timestamp_seconds{dataset=%q} %g\n", info.name, ts)
		}
		fmt.Fprintln(w, "# HELP ckprivacyd_replay_seconds Boot recovery time per dataset (snapshot decode + WAL replay); 0 for datasets registered in this process.")
		fmt.Fprintln(w, "# TYPE ckprivacyd_replay_seconds gauge")
		for _, info := range persisted {
			fmt.Fprintf(w, "ckprivacyd_replay_seconds{dataset=%q} %g\n", info.name, info.ds.persist.replaySeconds)
		}
		fmt.Fprintln(w, "# HELP ckprivacyd_wal_fsync_seconds Summed WAL fsync latency per dataset (count is fsyncs performed; both 0 when -wal-fsync is off).")
		fmt.Fprintln(w, "# TYPE ckprivacyd_wal_fsync_seconds summary")
		for _, info := range persisted {
			n, total := info.ds.persist.log.FsyncStats()
			fmt.Fprintf(w, "ckprivacyd_wal_fsync_seconds_sum{dataset=%q} %g\n", info.name, total.Seconds())
			fmt.Fprintf(w, "ckprivacyd_wal_fsync_seconds_count{dataset=%q} %d\n", info.name, n)
		}
	}

	// Replication gauges for follower datasets: applied position, leader
	// position and the resulting lag.
	replicas := make([]namedDataset, 0, len(infos))
	for _, info := range infos {
		if info.ds.repl != nil {
			replicas = append(replicas, info)
		}
	}
	if len(replicas) > 0 {
		type replRow struct {
			name string
			pr   ReplicaProgress
			lag  float64
		}
		rows := make([]replRow, len(replicas))
		for i, info := range replicas {
			pr, lag, _ := info.ds.repl.status()
			rows[i] = replRow{info.name, pr, lag}
		}
		fmt.Fprintln(w, "# HELP ckprivacyd_replica_lag_records WAL records the leader has committed that this follower has not applied.")
		fmt.Fprintln(w, "# TYPE ckprivacyd_replica_lag_records gauge")
		for _, row := range rows {
			fmt.Fprintf(w, "ckprivacyd_replica_lag_records{dataset=%q} %d\n", row.name, row.pr.lagRecords())
		}
		fmt.Fprintln(w, "# HELP ckprivacyd_replica_lag_seconds How long the follower has been behind the leader; 0 when caught up.")
		fmt.Fprintln(w, "# TYPE ckprivacyd_replica_lag_seconds gauge")
		for _, row := range rows {
			fmt.Fprintf(w, "ckprivacyd_replica_lag_seconds{dataset=%q} %g\n", row.name, row.lag)
		}
		fmt.Fprintln(w, "# HELP ckprivacyd_replica_applied_version Dataset version the follower has applied.")
		fmt.Fprintln(w, "# TYPE ckprivacyd_replica_applied_version gauge")
		for _, row := range rows {
			fmt.Fprintf(w, "ckprivacyd_replica_applied_version{dataset=%q} %d\n", row.name, row.pr.AppliedVersion)
		}
		fmt.Fprintln(w, "# HELP ckprivacyd_replica_applied_offset Leader WAL byte offset the follower has applied through.")
		fmt.Fprintln(w, "# TYPE ckprivacyd_replica_applied_offset gauge")
		for _, row := range rows {
			fmt.Fprintf(w, "ckprivacyd_replica_applied_offset{dataset=%q} %d\n", row.name, row.pr.AppliedOffset)
		}
		fmt.Fprintln(w, "# HELP ckprivacyd_replica_leader_offset Leader committed WAL byte size as of the follower's latest fetch.")
		fmt.Fprintln(w, "# TYPE ckprivacyd_replica_leader_offset gauge")
		for _, row := range rows {
			fmt.Fprintf(w, "ckprivacyd_replica_leader_offset{dataset=%q} %d\n", row.name, row.pr.LeaderCommitted)
		}
	}
	if s.cfg.ReadOnly {
		ready := 0
		if s.ready.Load() {
			ready = 1
		}
		fmt.Fprintln(w, "# HELP ckprivacyd_replica_ready Whether the follower has completed initial catch-up (mirrors /readyz).")
		fmt.Fprintln(w, "# TYPE ckprivacyd_replica_ready gauge")
		fmt.Fprintf(w, "ckprivacyd_replica_ready %d\n", ready)
	}

	if boot, ok := s.bootSeconds.Load().(float64); ok {
		fmt.Fprintln(w, "# HELP ckprivacyd_boot_seconds Daemon startup duration (store recovery and preloads included).")
		fmt.Fprintln(w, "# TYPE ckprivacyd_boot_seconds gauge")
		fmt.Fprintf(w, "ckprivacyd_boot_seconds %g\n", boot)
	}

	fmt.Fprintln(w, "# HELP ckprivacyd_datasets_registered Registered datasets.")
	fmt.Fprintln(w, "# TYPE ckprivacyd_datasets_registered gauge")
	fmt.Fprintf(w, "ckprivacyd_datasets_registered %d\n", len(infos))

	fmt.Fprintln(w, "# HELP ckprivacyd_jobs_queue_depth Jobs waiting in the bounded queue.")
	fmt.Fprintln(w, "# TYPE ckprivacyd_jobs_queue_depth gauge")
	fmt.Fprintf(w, "ckprivacyd_jobs_queue_depth %d\n", s.jobs.queueDepth())

	fmt.Fprintln(w, "# HELP ckprivacyd_uptime_seconds Seconds since the server started.")
	fmt.Fprintln(w, "# TYPE ckprivacyd_uptime_seconds gauge")
	fmt.Fprintf(w, "ckprivacyd_uptime_seconds %g\n", time.Since(s.start).Seconds())
}
