package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ckprivacy/docs"
	"ckprivacy/internal/anonymize"
	"ckprivacy/internal/bucket"
	"ckprivacy/internal/core"
	"ckprivacy/internal/dataload"
	"ckprivacy/internal/logic"
	"ckprivacy/internal/privacy"
	"ckprivacy/internal/table"
	"ckprivacy/internal/utility"
	"ckprivacy/internal/worlds"
)

// ---- JSON plumbing ----

// writeJSON serializes v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to salvage
}

// errorBody is the one error envelope every /v1 endpoint returns: a
// human-readable message, a stable machine-readable code, and optional
// structured detail. Codes are fixed strings clients may switch on;
// detail keys are code-specific ("offset" on syntax_error, pointing at
// the offending byte of the formula string; "accepted"/"samples" on
// zero_acceptance, the Monte-Carlo counts behind a 422 estimate).
type errorBody struct {
	Error  string         `json:"error"`
	Code   string         `json:"code"`
	Detail map[string]any `json:"detail,omitempty"`
}

// errorCode maps a response to its stable machine code. Typed errors
// override the status-derived class: a syntax error is "syntax_error"
// whatever handler surfaced it.
func errorCode(status int, err error) string {
	var se *logic.SyntaxError
	var zero *worlds.ZeroAcceptanceError
	var pe *persistError
	switch {
	case errors.As(err, &se):
		return "syntax_error"
	case errors.As(err, &zero):
		return "zero_acceptance"
	case errors.Is(err, ErrAlreadyRegistered):
		return "already_registered"
	case errors.As(err, &pe):
		// Durable-store write failures: "disk_full" when the volume is out
		// of space, "persist_failed" for anything else. Checked before the
		// status switch so the 503 does not read as "overloaded".
		return persistCodeOf(err)
	case errors.Is(err, errReadOnly):
		return "read_only"
	case errors.Is(err, errNotReady):
		return "not_ready"
	case errors.Is(err, errWALSuperseded):
		return "wal_superseded"
	case errors.Is(err, ErrReplicaDiverged):
		// A diverged replica dataset refuses reads; checked before the
		// status switch so the 503 does not read as "overloaded".
		return "replica_diverged"
	}
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusConflict:
		return "conflict"
	case http.StatusRequestEntityTooLarge:
		return "body_too_large"
	case http.StatusUnprocessableEntity:
		return "unprocessable"
	case statusClientClosedRequest:
		return "client_closed_request"
	case http.StatusServiceUnavailable:
		return "overloaded"
	default:
		return "internal"
	}
}

// writeError renders err as the uniform envelope with the given status.
func writeError(w http.ResponseWriter, status int, err error) {
	body := errorBody{Error: err.Error(), Code: errorCode(status, err)}
	var se *logic.SyntaxError
	var zero *worlds.ZeroAcceptanceError
	switch {
	case errors.As(err, &se):
		body.Detail = map[string]any{"offset": se.Offset}
	case errors.As(err, &zero):
		body.Detail = map[string]any{"accepted": zero.Accepted, "samples": zero.Samples}
	}
	writeJSON(w, status, body)
}

// readJSON strictly decodes the request body into v: unknown fields and
// trailing garbage are 400s; a body over MaxBodyBytes is a 413 that names
// the limit.
func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &httpError{http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds the %d-byte limit", s.cfg.MaxBodyBytes)}
		}
		return fmt.Errorf("decoding request body: %w", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return fmt.Errorf("request body has trailing data")
	}
	return nil
}

// ---- dataset registration ----

// syntheticSpec selects the deterministic synthetic Adult table.
type syntheticSpec struct {
	N    int   `json:"n"`
	Seed int64 `json:"seed"`
}

// registerDatasetRequest registers a table + hierarchies under a name.
// Exactly one source must be set.
type registerDatasetRequest struct {
	Name string `json:"name"`
	// Builtin loads a built-in bundle: "hospital" or "adult".
	Builtin string `json:"builtin,omitempty"`
	// AdultCSV is an Adult-schema CSV (with header) as text.
	AdultCSV string `json:"adult_csv,omitempty"`
	// Synthetic generates the synthetic Adult table.
	Synthetic *syntheticSpec `json:"synthetic,omitempty"`
	// Spec declares a custom schema, hierarchies and CSV rows.
	Spec *dataload.Spec `json:"spec,omitempty"`
}

// datasetInfo describes a registered dataset.
type datasetInfo struct {
	Name string `json:"name"`
	// Version is the dataset's monotonically increasing version: 1 at
	// registration, bumped by every append. Rows is the row count at that
	// version.
	Version         int64          `json:"version"`
	Rows            int            `json:"rows"`
	Sensitive       string         `json:"sensitive"`
	QI              []string       `json:"quasi_identifiers"`
	HierarchyLevels map[string]int `json:"hierarchy_levels"`
	DefaultLevels   bucket.Levels  `json:"default_levels"`
	LatticeSize     int            `json:"lattice_size"`
	CacheEntries    int            `json:"cache_entries"`
	// Releases is the number of retained recorded releases.
	Releases int `json:"releases"`
	// Encoded reports whether the dataset was dictionary-encoded at
	// registration (the columnar fast path every request then computes on).
	Encoded bool `json:"encoded"`
	// DictCardinalities is the per-attribute dictionary size — the number
	// of distinct ground values each column was encoded over. Present only
	// when Encoded.
	DictCardinalities map[string]int `json:"dictionary_cardinalities,omitempty"`
	// Persisted reports whether the dataset is backed by the durable store
	// (snapshot + WAL); false when the daemon runs without -data-dir or the
	// dataset has no rebuild source.
	Persisted bool `json:"persisted"`
	// WALRecords is the number of append/release records in the dataset's
	// live WAL segment (records since its last snapshot); 0 when not
	// persisted.
	WALRecords int `json:"wal_records"`
	// Recovered says how the dataset entered this process: "cold"
	// (registered fresh), "snapshot" (loaded from a snapshot with no WAL
	// tail) or "wal_replay" (snapshot plus replayed WAL records).
	Recovered string `json:"recovered"`
	// Replication is the follower-side replication status (lag, applied
	// position, pinned versions); absent on a leader.
	Replication *replicationInfo `json:"replication,omitempty"`
}

func describe(name string, ds *dataset) datasetInfo {
	b := ds.bundle
	levels := make(map[string]int, len(b.QI))
	for _, qi := range b.QI {
		levels[qi] = b.Hierarchies[qi].Levels()
	}
	encoding := ds.problem.Encoding()
	snap := ds.problem.Snapshot()
	rs, _ := ds.releases.snapshot()
	info := datasetInfo{
		Name:              name,
		Version:           snap.Version(),
		Rows:              snap.Rows(),
		Sensitive:         b.Table.Schema.Sensitive().Name,
		QI:                b.QI,
		HierarchyLevels:   levels,
		DefaultLevels:     b.DefaultLevels,
		LatticeSize:       ds.problem.Space().Size(),
		CacheEntries:      ds.problem.CacheStats().Entries,
		Releases:          len(rs),
		Encoded:           encoding.Enabled,
		DictCardinalities: encoding.Cardinalities,
		Recovered:         ds.recovered,
		Replication:       describeReplication(ds),
	}
	if ds.persist != nil {
		info.Persisted = true
		info.WALRecords = ds.persist.log.Records()
	}
	return info
}

func (s *Server) handleRegisterDataset(w http.ResponseWriter, r *http.Request) {
	if s.rejectReadOnly(w) {
		return
	}
	var req registerDatasetRequest
	if err := s.readJSON(w, r, &req); err != nil {
		writeHTTPError(w, err)
		return
	}
	sources := 0
	for _, set := range []bool{req.Builtin != "", req.AdultCSV != "", req.Synthetic != nil, req.Spec != nil} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("exactly one of builtin, adult_csv, synthetic or spec must be set (got %d)", sources))
		return
	}
	var (
		b   *dataload.Bundle
		err error
	)
	switch {
	case req.Builtin != "":
		b, err = dataload.Builtin(req.Builtin, 0, 1)
	case req.AdultCSV != "":
		b, err = dataload.AdultFromReader(strings.NewReader(req.AdultCSV))
	case req.Synthetic != nil:
		if req.Synthetic.N > s.cfg.MaxRows {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("synthetic n %d above the %d-row limit", req.Synthetic.N, s.cfg.MaxRows))
			return
		}
		n := req.Synthetic.N
		if n <= 0 {
			n = 1000
		}
		b, err = dataload.Adult("", n, req.Synthetic.Seed)
	case req.Spec != nil:
		b, err = dataload.FromSpec(req.Name, *req.Spec)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if b.Table.Len() > s.cfg.MaxRows {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("dataset has %d rows, above the %d-row limit", b.Table.Len(), s.cfg.MaxRows))
		return
	}
	ds, err := s.registry.add(req.Name, b, s.cfg.problemOptions(), s.cfg.MaxReleases)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrAlreadyRegistered) {
			code = http.StatusConflict
		}
		writeError(w, code, err)
		return
	}
	if err := s.persistNewDataset(req.Name, ds); err != nil {
		// A dataset that cannot write its initial snapshot is backed out
		// entirely: registration is all-or-nothing so a restart can never
		// silently drop a dataset the client was told exists.
		s.registry.remove(req.Name)
		writePersistFailure(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, describe(req.Name, ds))
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	infos := s.registry.list()
	out := make([]datasetInfo, len(infos))
	for i, info := range infos {
		out[i] = describe(info.name, info.ds)
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": out})
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ds, ok := s.registry.get(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("dataset %q not registered", name))
		return
	}
	writeJSON(w, http.StatusOK, describe(name, ds))
}

// ---- POST /v1/datasets/{name}/rows ----

// appendRowsRequest streams new rows into a registered dataset. Values
// are strings in schema column order (the same order /v1/datasets reports
// the schema in).
type appendRowsRequest struct {
	Rows [][]string `json:"rows"`
}

// appendRowsResponse reports the append's effect: the new dataset version
// and how the warm state was maintained.
type appendRowsResponse struct {
	Dataset  string `json:"dataset"`
	Version  int64  `json:"version"`
	Rows     int    `json:"rows"`
	Appended int    `json:"appended"`
	// Start is the row index (person id) of the first appended row.
	Start int `json:"start"`
	// NewCodes counts new dictionary values per attribute (absent keys saw
	// none); omitted on the legacy string path.
	NewCodes map[string]int `json:"new_codes,omitempty"`
	// PatchedNodes/InvalidatedNodes report warm bucketization-cache
	// maintenance: patched entries were refreshed in O(appended + buckets),
	// invalidated ones will be rebuilt lazily.
	PatchedNodes     int     `json:"patched_nodes"`
	InvalidatedNodes int     `json:"invalidated_nodes"`
	ElapsedMS        float64 `json:"elapsed_ms"`
}

func (s *Server) handleAppendRows(w http.ResponseWriter, r *http.Request) {
	if s.rejectReadOnly(w) {
		return
	}
	name := r.PathValue("name")
	ds, ok := s.registry.get(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("dataset %q not registered", name))
		return
	}
	var req appendRowsRequest
	if err := s.readJSON(w, r, &req); err != nil {
		writeHTTPError(w, err)
		return
	}
	if len(req.Rows) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("rows must be a non-empty array"))
		return
	}
	rows := make([]table.Row, len(req.Rows))
	for i, r := range req.Rows {
		rows[i] = table.Row(r)
	}
	release, ok := s.acquireGate(w, r)
	if !ok {
		return
	}
	defer release()
	begin := time.Now()
	// The limit check, the append and its WAL record are one critical
	// section: racing appends cannot jointly overshoot MaxRows, and the WAL
	// receives append records in the exact order the versions were minted.
	ds.appendMu.Lock()
	if err := s.healIfBrokenLocked(ds); err != nil {
		ds.appendMu.Unlock()
		writePersistFailure(w, err)
		return
	}
	if total := ds.problem.Rows() + len(rows); total > s.cfg.MaxRows {
		ds.appendMu.Unlock()
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("append would grow dataset to %d rows, above the %d-row limit", total, s.cfg.MaxRows))
		return
	}
	res, err := ds.problem.Append(rows)
	var persistErr error
	if err == nil {
		persistErr = s.logAppendLocked(ds, res.Version, req.Rows)
	}
	ds.appendMu.Unlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if persistErr != nil {
		// The rows are live in memory but their WAL record is not on disk;
		// the dataset is marked broken and the next write heals by
		// compacting the current state. The client must treat this append
		// as not durable and retry.
		writePersistFailure(w, persistErr)
		return
	}
	writeJSON(w, http.StatusOK, appendRowsResponse{
		Dataset:          name,
		Version:          res.Version,
		Rows:             res.Rows,
		Appended:         res.Appended,
		Start:            res.Start,
		NewCodes:         res.NewCodes,
		PatchedNodes:     res.PatchedNodes,
		InvalidatedNodes: res.InvalidatedNodes,
		ElapsedMS:        float64(time.Since(begin)) / float64(time.Millisecond),
	})
}

// ---- bucketization resolution shared by disclosure/check/estimate ----

// bucketizationSource selects what to analyze: a registered dataset at
// some generalization levels, or an inline list of per-bucket sensitive
// value groups.
type bucketizationSource struct {
	// Dataset names a registered dataset.
	Dataset string `json:"dataset,omitempty"`
	// Levels generalizes the dataset's quasi-identifiers; empty means the
	// dataset's default levels.
	Levels bucket.Levels `json:"levels,omitempty"`
	// Groups is an inline bucketization: one sensitive-value multiset per
	// bucket. Mutually exclusive with Dataset.
	Groups [][]string `json:"groups,omitempty"`
}

// httpError carries a status code out of resolution helpers.
type httpError struct {
	code int
	err  error
}

func (e *httpError) Error() string { return e.err.Error() }

func badRequest(format string, args ...any) *httpError {
	return &httpError{code: http.StatusBadRequest, err: fmt.Errorf(format, args...)}
}

// writeHTTPError renders an error that may carry its own status code.
func writeHTTPError(w http.ResponseWriter, err error) {
	var he *httpError
	if errors.As(err, &he) {
		writeError(w, he.code, he.err)
		return
	}
	writeError(w, http.StatusBadRequest, err)
}

// resolve materializes the source. For dataset sources the bucketization
// comes out of the dataset's warm cache, pinned to one version whose
// number is returned (responses echo it); ds is nil and version 0 for
// inline groups. pin, when non-zero (?version=), selects a retained
// historical version: on a follower any pinned version, on a leader only
// the current one; an unretained version is a 404.
func (s *Server) resolve(src bucketizationSource, pin int64) (*bucket.Bucketization, *dataset, int64, error) {
	switch {
	case src.Dataset != "" && src.Groups != nil:
		return nil, nil, 0, badRequest("dataset and groups are mutually exclusive")
	case len(src.Groups) > 0 && len(src.Levels) > 0:
		return nil, nil, 0, badRequest("levels only apply to a registered dataset, not inline groups")
	case pin != 0 && src.Dataset == "":
		return nil, nil, 0, badRequest("version pinning requires a registered dataset")
	case src.Dataset != "":
		ds, ok := s.registry.get(src.Dataset)
		if !ok {
			return nil, nil, 0, &httpError{http.StatusNotFound, fmt.Errorf("dataset %q not registered", src.Dataset)}
		}
		if ds.repl != nil {
			if derr := ds.repl.divergedErr(); derr != nil {
				return nil, nil, 0, &httpError{http.StatusServiceUnavailable, derr}
			}
		}
		levels := src.Levels
		if len(levels) == 0 {
			levels = ds.bundle.DefaultLevels
		}
		node, err := ds.problem.NodeForLevels(levels)
		if err != nil {
			return nil, nil, 0, badRequest("%v", err)
		}
		snap := ds.problem.Snapshot()
		if pin != 0 && pin != snap.Version() {
			pinned, ok := (*anonymize.Snapshot)(nil), false
			if ds.pins != nil {
				pinned, ok = ds.pins.get(pin)
			}
			if !ok {
				return nil, nil, 0, &httpError{http.StatusNotFound,
					fmt.Errorf("dataset %q has no pinned version %d (current %d)", src.Dataset, pin, snap.Version())}
			}
			snap = pinned
		}
		bz, err := snap.Bucketize(node)
		if err != nil {
			return nil, nil, 0, err
		}
		return bz, ds, snap.Version(), nil
	case len(src.Groups) > 0:
		total := 0
		for i, g := range src.Groups {
			if len(g) == 0 {
				return nil, nil, 0, badRequest("group %d is empty", i)
			}
			total += len(g)
		}
		if total > s.cfg.MaxRows {
			return nil, nil, 0, badRequest("inline groups hold %d tuples, above the %d-row limit", total, s.cfg.MaxRows)
		}
		return bucket.FromValues(src.Groups...), nil, 0, nil
	default:
		return nil, nil, 0, badRequest("either dataset or groups must be set")
	}
}

// checkK enforces the per-request knowledge bound.
func (s *Server) checkK(k int) error {
	if k < 0 {
		return badRequest("k must be >= 0, got %d", k)
	}
	if k > s.cfg.MaxK {
		return badRequest("k %d above the server's limit %d", k, s.cfg.MaxK)
	}
	return nil
}

// ---- POST /v1/disclosure ----

type disclosureRequest struct {
	bucketizationSource
	// K bounds the attacker's background knowledge (basic implications).
	K int `json:"k"`
	// Negation additionally computes the k-negated-atoms variant.
	Negation bool `json:"negation,omitempty"`
	// CrossBucket restricts antecedents to other buckets (§2.3 variant).
	CrossBucket bool `json:"cross_bucket,omitempty"`
	// Witness reconstructs an explicit worst-case knowledge formula.
	Witness bool `json:"witness,omitempty"`
}

type witnessBody struct {
	Target       string   `json:"target"`
	TargetBucket int      `json:"target_bucket"`
	Implications []string `json:"implications"`
}

type disclosureResponse struct {
	Dataset            string        `json:"dataset,omitempty"`
	Version            int64         `json:"version,omitempty"`
	Levels             bucket.Levels `json:"levels,omitempty"`
	K                  int           `json:"k"`
	Buckets            int           `json:"buckets"`
	Tuples             int           `json:"tuples"`
	MinEntropy         float64       `json:"min_entropy"`
	Disclosure         float64       `json:"disclosure"`
	NegationDisclosure *float64      `json:"negation_disclosure,omitempty"`
	Witness            *witnessBody  `json:"witness,omitempty"`
	ElapsedMS          float64       `json:"elapsed_ms"`
}

func (s *Server) handleDisclosure(w http.ResponseWriter, r *http.Request) {
	var req disclosureRequest
	if err := s.readJSON(w, r, &req); err != nil {
		writeHTTPError(w, err)
		return
	}
	if err := s.checkK(req.K); err != nil {
		writeHTTPError(w, err)
		return
	}
	pin, err := parsePinnedVersion(r)
	if err != nil {
		writeHTTPError(w, err)
		return
	}
	release, ok := s.acquireGate(w, r)
	if !ok {
		return
	}
	defer release()
	// Registered datasets warm the process-wide memo (their histogram
	// space is bounded by their lattices); inline groups are client-chosen,
	// so they go through the separate bounded inline engine: warm across
	// requests, capped in bytes, and unable to evict dataset state.
	eng := s.engine
	if req.Dataset == "" {
		eng = s.inline
	}
	begin := time.Now()
	bz, ds, version, err := s.resolve(req.bucketizationSource, pin)
	if err != nil {
		writeHTTPError(w, err)
		return
	}
	opt := core.Options{ForbidSameBucketAntecedent: req.CrossBucket}
	d, err := eng.MaxDisclosureOpt(bz, req.K, opt)
	if err != nil {
		writeHTTPError(w, err)
		return
	}
	resp := disclosureResponse{
		Dataset:    req.Dataset,
		Version:    version,
		Levels:     req.Levels,
		K:          req.K,
		Buckets:    len(bz.Buckets),
		Tuples:     bz.Size(),
		MinEntropy: bz.MinEntropy(),
		Disclosure: d,
	}
	if req.Negation {
		nd, err := core.NegationMaxDisclosure(bz, req.K)
		if err != nil {
			writeHTTPError(w, err)
			return
		}
		resp.NegationDisclosure = &nd
	}
	if req.Witness {
		var namer func(int) string
		if ds != nil {
			namer = ds.bundle.Namer()
		}
		wit, err := eng.Witness(bz, req.K, opt, namer)
		if err != nil {
			writeHTTPError(w, err)
			return
		}
		body := &witnessBody{
			Target:       wit.Target.String(),
			TargetBucket: wit.TargetBucket,
			Implications: make([]string, len(wit.Implications)),
		}
		for i, imp := range wit.Implications {
			body.Implications[i] = imp.String()
		}
		resp.Witness = body
	}
	resp.ElapsedMS = float64(time.Since(begin)) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, resp)
}

// ---- POST /v1/check ----

// criterionSpec selects and parameterizes a privacy criterion.
type criterionSpec struct {
	// Criterion is "ck" (default), "negation-ck", "k-anonymity",
	// "distinct-l", "entropy-l" or "recursive-cl".
	Criterion string  `json:"criterion,omitempty"`
	C         float64 `json:"c,omitempty"`
	K         int     `json:"k,omitempty"`
	L         int     `json:"l,omitempty"`
}

// buildCriterion validates the spec against the server's limits and wires
// eng into (c,k)-safety checks — the shared warm engine for synchronous
// checks on registered datasets, the bounded inline engine for
// client-chosen inline groups, and the dataset's problem-scoped engine for
// anonymize jobs. All three are byte-bounded.
func (s *Server) buildCriterion(spec criterionSpec, eng *core.Engine) (privacy.Criterion, error) {
	name := spec.Criterion
	if name == "" {
		name = "ck"
	}
	switch name {
	case "ck":
		if err := s.checkK(spec.K); err != nil {
			return nil, err
		}
		if spec.C <= 0 || spec.C > 1 {
			return nil, badRequest("threshold c %v outside (0, 1]", spec.C)
		}
		return privacy.CKSafety{C: spec.C, K: spec.K, Engine: eng}, nil
	case "negation-ck":
		if err := s.checkK(spec.K); err != nil {
			return nil, err
		}
		if spec.C <= 0 || spec.C > 1 {
			return nil, badRequest("threshold c %v outside (0, 1]", spec.C)
		}
		return privacy.NegationCKSafety{C: spec.C, K: spec.K}, nil
	case "k-anonymity":
		if spec.K < 1 {
			return nil, badRequest("k-anonymity needs k >= 1, got %d", spec.K)
		}
		return privacy.KAnonymity{K: spec.K}, nil
	case "distinct-l":
		if spec.L < 1 {
			return nil, badRequest("distinct-l needs l >= 1, got %d", spec.L)
		}
		return privacy.DistinctLDiversity{L: spec.L}, nil
	case "entropy-l":
		if spec.L < 1 {
			return nil, badRequest("entropy-l needs l >= 1, got %d", spec.L)
		}
		return privacy.EntropyLDiversity{L: spec.L}, nil
	case "recursive-cl":
		if spec.L < 2 || spec.C <= 0 {
			return nil, badRequest("recursive-cl needs l >= 2 and c > 0, got l=%d c=%v", spec.L, spec.C)
		}
		return privacy.RecursiveCLDiversity{C: spec.C, L: spec.L}, nil
	default:
		return nil, badRequest("unknown criterion %q (want ck, negation-ck, k-anonymity, distinct-l, entropy-l or recursive-cl)", name)
	}
}

type checkRequest struct {
	bucketizationSource
	criterionSpec
}

type checkResponse struct {
	Dataset   string        `json:"dataset,omitempty"`
	Version   int64         `json:"version,omitempty"`
	Levels    bucket.Levels `json:"levels,omitempty"`
	Criterion string        `json:"criterion"`
	Safe      bool          `json:"safe"`
	Buckets   int           `json:"buckets"`
	ElapsedMS float64       `json:"elapsed_ms"`
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req checkRequest
	if err := s.readJSON(w, r, &req); err != nil {
		writeHTTPError(w, err)
		return
	}
	eng := s.engine
	if req.Dataset == "" {
		eng = s.inline // see handleDisclosure: bounded, isolated warm memo
	}
	crit, err := s.buildCriterion(req.criterionSpec, eng)
	if err != nil {
		writeHTTPError(w, err)
		return
	}
	pin, err := parsePinnedVersion(r)
	if err != nil {
		writeHTTPError(w, err)
		return
	}
	release, ok := s.acquireGate(w, r)
	if !ok {
		return
	}
	defer release()
	begin := time.Now()
	bz, _, version, err := s.resolve(req.bucketizationSource, pin)
	if err != nil {
		writeHTTPError(w, err)
		return
	}
	safe, err := crit.Satisfied(bz)
	if err != nil {
		writeHTTPError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, checkResponse{
		Dataset:   req.Dataset,
		Version:   version,
		Levels:    req.Levels,
		Criterion: crit.Name(),
		Safe:      safe,
		Buckets:   len(bz.Buckets),
		ElapsedMS: float64(time.Since(begin)) / float64(time.Millisecond),
	})
}

// ---- POST /v1/estimate ----

type estimateRequest struct {
	bucketizationSource
	// Target is the atom whose posterior is estimated, e.g. "t[3]=flu"
	// (persons are named by the dataset's namer; row indices by default).
	Target string `json:"target"`
	// Phi is the knowledge formula, ";"-separated implications.
	Phi string `json:"phi,omitempty"`
	// Samples is the Monte-Carlo budget (default 100000, capped by the
	// server's MaxSamples).
	Samples int `json:"samples,omitempty"`
	// Seed makes the estimate reproducible.
	Seed int64 `json:"seed,omitempty"`
}

type estimateResponse struct {
	Dataset   string  `json:"dataset,omitempty"`
	Version   int64   `json:"version,omitempty"`
	Target    string  `json:"target"`
	Prob      float64 `json:"prob"`
	StdErr    float64 `json:"std_err"`
	Accepted  int     `json:"accepted"`
	Samples   int     `json:"samples"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req estimateRequest
	if err := s.readJSON(w, r, &req); err != nil {
		writeHTTPError(w, err)
		return
	}
	if req.Target == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("target is required"))
		return
	}
	// Parse before resolving: syntax errors with byte offsets are the
	// cheapest rejection.
	target, err := logic.ParseAtom(req.Target)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	phi, err := logic.ParseConjunction(req.Phi)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	samples := req.Samples
	if samples <= 0 {
		samples = 100000
	}
	if samples > s.cfg.MaxSamples {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("samples %d above the server's limit %d", samples, s.cfg.MaxSamples))
		return
	}
	pin, err := parsePinnedVersion(r)
	if err != nil {
		writeHTTPError(w, err)
		return
	}
	release, ok := s.acquireGate(w, r)
	if !ok {
		return
	}
	defer release()
	begin := time.Now()
	bz, ds, version, err := s.resolve(req.bucketizationSource, pin)
	if err != nil {
		writeHTTPError(w, err)
		return
	}
	var in worlds.Instance
	if ds != nil {
		in, err = worlds.FromBucketization(bz, ds.bundle.Namer())
	} else {
		// Inline groups carry no source table; build the random-worlds
		// instance straight off the bucketization, so person ids come
		// from the single authority (bucket.FromValues' tuple numbering)
		// and values from each bucket's multiset — per-person assignment
		// within a bucket is irrelevant under random worlds.
		bs := make([]worlds.Bucket, len(bz.Buckets))
		for i, b := range bz.Buckets {
			wb := worlds.Bucket{
				Persons: make([]string, 0, b.Size()),
				Values:  make([]string, 0, b.Size()),
			}
			for _, id := range b.Tuples {
				wb.Persons = append(wb.Persons, strconv.Itoa(id))
			}
			for _, vc := range b.Freq() {
				for n := 0; n < vc.Count; n++ {
					wb.Values = append(wb.Values, vc.Value)
				}
			}
			bs[i] = wb
		}
		in, err = worlds.New(bs...)
	}
	if err != nil {
		writeHTTPError(w, err)
		return
	}
	est, err := in.EstimateCondProbParallel(target, phi, samples, s.cfg.SearchWorkers, req.Seed)
	if err != nil {
		// Zero accepted worlds is not a malformed request: the formula
		// parsed and the sampling ran, but φ is either inconsistent with
		// the bucketization or too rare for the budget. 422 with the
		// sample counts lets clients tell those apart (retry with a larger
		// budget vs. fix the formula) instead of a bare 400.
		var zero *worlds.ZeroAcceptanceError
		if errors.As(err, &zero) {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeHTTPError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, estimateResponse{
		Dataset:   req.Dataset,
		Version:   version,
		Target:    target.String(),
		Prob:      est.Prob,
		StdErr:    est.StdErr,
		Accepted:  est.Accepted,
		Samples:   est.Samples,
		ElapsedMS: float64(time.Since(begin)) / float64(time.Millisecond),
	})
}

// ---- POST /v1/anonymize and the job endpoints ----

type anonymizeRequest struct {
	// Dataset names a registered dataset (inline groups have no lattice
	// to search, so a dataset is required here).
	Dataset string `json:"dataset"`
	criterionSpec
	// Method is "minimal", "incognito" (default) or "chain".
	Method string `json:"method,omitempty"`
	// Utility ranks multi-node results: "discernibility" (default),
	// "avg", "buckets" or "none".
	Utility string `json:"utility,omitempty"`
}

type anonymizeAccepted struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	Poll  string   `json:"poll"`
}

func (s *Server) handleAnonymize(w http.ResponseWriter, r *http.Request) {
	var req anonymizeRequest
	if err := s.readJSON(w, r, &req); err != nil {
		writeHTTPError(w, err)
		return
	}
	if req.Dataset == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("dataset is required"))
		return
	}
	ds, ok := s.registry.get(req.Dataset)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("dataset %q not registered", req.Dataset))
		return
	}
	// Lattice-search jobs are the heaviest memo users; they run on the
	// dataset's problem-scoped bounded engine (built with the server's
	// MemoMaxBytes), co-located with its bucketization cache, so repeated
	// jobs on a hot dataset stay warm without evicting other datasets'
	// entries from the shared engine.
	crit, err := s.buildCriterion(req.criterionSpec, ds.problem.Engine())
	if err != nil {
		writeHTTPError(w, err)
		return
	}
	method := req.Method
	if method == "" {
		method = "incognito"
	}
	switch method {
	case "minimal", "incognito", "chain":
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown method %q (want minimal, incognito or chain)", method))
		return
	}
	var metric utility.Metric
	switch req.Utility {
	case "", "discernibility":
		metric = utility.Discernibility{}
	case "avg":
		metric = utility.AvgClassSize{}
	case "buckets":
		metric = utility.BucketCount{}
	case "none":
		metric = nil
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown utility %q (want discernibility, avg, buckets or none)", req.Utility))
		return
	}
	spec := &jobSpec{
		dataset:   req.Dataset,
		method:    method,
		criterion: crit,
		critName:  crit.Name(),
		utility:   metric,
		problem:   ds.problem,
	}
	j, err := s.jobs.submit(spec)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusAccepted, anonymizeAccepted{
		ID:    j.id,
		State: JobQueued,
		Poll:  "/v1/jobs/" + j.id,
	})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("job %q not found", id))
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.cancelJob(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("job %q not found", id))
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

// ---- GET /v1/openapi.yaml, /healthz and /metrics ----

func (s *Server) handleOpenAPI(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/yaml; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(docs.OpenAPI)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
		"datasets":       len(s.registry.list()),
		"queue_depth":    s.jobs.queueDepth(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.writeTo(w, s)
}
