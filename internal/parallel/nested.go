package parallel

import (
	"sync"
	"sync/atomic"
)

// Pool is a bounded parallelism budget that is safe to share between
// nested layers of work — e.g. lattice-node tasks that each fan out into
// per-shard bucketization tasks. Unlike a classic fixed worker pool,
// submitting to a Pool NEVER blocks waiting for a free worker: the
// submitting goroutine always executes work itself, and extra goroutines
// are recruited only while spare tokens exist. A nested ForEach issued
// from inside a pool task therefore degrades to an inline serial loop
// when the pool is saturated instead of deadlocking on its own tokens,
// and total extra goroutines across all nesting levels never exceed the
// budget.
//
// Determinism matches ForEach: results are written into index-addressed
// slots by the caller, the error of the lowest failing index wins, and a
// pool of size 1 (no spare tokens) runs every loop inline with no
// goroutines at all.
type Pool struct {
	// tokens holds one slot per *extra* worker the pool may run beyond
	// the submitting goroutines. A Pool of size n has n-1 tokens, so n
	// goroutines compute at once when one caller submits, and saturated
	// nested submissions find the channel full and run inline.
	tokens chan struct{}
}

// NewPool returns a pool with a total parallelism budget of n; n < 1
// means one worker per CPU core (GOMAXPROCS). The budget counts the
// submitting goroutine, so NewPool(1) recruits no extra goroutines ever.
func NewPool(n int) *Pool {
	return &Pool{tokens: make(chan struct{}, Workers(n)-1)}
}

// Size returns the pool's total parallelism budget.
func (p *Pool) Size() int { return cap(p.tokens) + 1 }

// ForEach runs fn(i) for every i in [0, n), on the calling goroutine plus
// however many extra workers the pool can lend right now (possibly none).
// Workers pull indices from a shared counter, so uneven items balance.
// If any calls fail, the error of the lowest failing index is returned
// and no new indices are handed out once a failure is observed. A nil
// pool runs the loop inline.
func (p *Pool) ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if p == nil || n == 1 || cap(p.tokens) == 0 {
		return ForEach(1, n, fn)
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		errIdx = -1
		first  error
		wg     sync.WaitGroup
	)
	record := func(i int, err error) {
		failed.Store(true)
		mu.Lock()
		if errIdx < 0 || i < errIdx {
			errIdx, first = i, err
		}
		mu.Unlock()
	}
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n || failed.Load() {
				return
			}
			if err := fn(i); err != nil {
				record(i, err)
				return
			}
		}
	}
	// Recruit extra workers only while tokens are spare: a saturated pool
	// (e.g. this ForEach runs inside another pool task) lends nothing and
	// the loop below runs entirely on the calling goroutine.
	for extra := 0; extra < n-1; extra++ {
		select {
		case p.tokens <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-p.tokens }()
				work()
			}()
			continue
		default:
		}
		break
	}
	work()
	wg.Wait()
	return first
}
