package parallel

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Errorf("Workers(4) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Errorf("Workers(1) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	for _, n := range []int{0, -1, -100} {
		if got := Workers(n); got != want {
			t.Errorf("Workers(%d) = %d, want GOMAXPROCS %d", n, got, want)
		}
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 5, 97} {
			var hits = make([]atomic.Int32, n)
			err := ForEach(workers, n, func(i int) error {
				hits[i].Add(1)
				return nil
			})
			if err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForEachReportsLowestFailingIndex(t *testing.T) {
	// Failing set {3, 7, 11}: the reported error must always be index 3's,
	// regardless of worker count or scheduling.
	fail := map[int]bool{3: true, 7: true, 11: true}
	f := func(w uint8) bool {
		workers := int(w)%8 + 1
		err := ForEach(workers, 50, func(i int) error {
			if fail[i] {
				return fmt.Errorf("boom at %d", i)
			}
			return nil
		})
		return err != nil && err.Error() == "boom at 3"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachSerialStopsAtFirstError(t *testing.T) {
	var calls int
	err := ForEach(1, 10, func(i int) error {
		calls++
		if i == 4 {
			return fmt.Errorf("stop")
		}
		return nil
	})
	if err == nil || calls != 5 {
		t.Errorf("calls = %d, err = %v; want 5 calls and an error", calls, err)
	}
}

func TestForEachStopsDispatchAfterFailure(t *testing.T) {
	// After index 0 fails, the pool must not dispatch unboundedly many new
	// indices. With in-flight work allowed, at most a few extra run; 1e6
	// would mean no early exit at all.
	var calls atomic.Int64
	_ = ForEach(4, 1_000_000, func(i int) error {
		calls.Add(1)
		if i == 0 {
			return fmt.Errorf("fail fast")
		}
		return nil
	})
	if c := calls.Load(); c > 100_000 {
		t.Errorf("ran %d items after early failure", c)
	}
}
