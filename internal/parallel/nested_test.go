package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolNestedSize1NoDeadlock is the regression test for the worker-pool
// nesting hazard: a shard-level ForEach submitted from inside a node-level
// task on the same bounded pool must complete instead of deadlocking on the
// pool's own tokens. With a pool of size 1 there are no spare tokens at
// all, so every level must degrade to an inline loop.
func TestPoolNestedSize1NoDeadlock(t *testing.T) {
	p := NewPool(1)
	done := make(chan error, 1)
	go func() {
		var total atomic.Int64
		done <- p.ForEach(4, func(node int) error {
			// Nested submission on the same pool, as the sharded
			// bucketize path does from inside a lattice-node task.
			return p.ForEach(8, func(shard int) error {
				total.Add(1)
				return nil
			})
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("nested ForEach: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("nested ForEach on a size-1 pool deadlocked")
	}
}

// TestPoolNestedBoundedGoroutines checks that node×shard nesting never
// exceeds the pool's total budget in concurrently running tasks.
func TestPoolNestedBoundedGoroutines(t *testing.T) {
	const budget = 3
	p := NewPool(budget)
	var running, peak atomic.Int64
	err := p.ForEach(6, func(node int) error {
		return p.ForEach(6, func(shard int) error {
			n := running.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			running.Add(-1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	// The outer caller plus budget-1 lent workers is the hard ceiling.
	if got := peak.Load(); got > budget {
		t.Fatalf("peak concurrent tasks %d exceeds pool budget %d", got, budget)
	}
}

// TestPoolForEachCompletesAllAndLowestError mirrors ForEach's contract:
// every index runs exactly once on success, and the lowest failing index's
// error is the one reported.
func TestPoolForEachCompletesAllAndLowestError(t *testing.T) {
	p := NewPool(4)
	const n = 100
	var hits [n]atomic.Int32
	if err := p.ForEach(n, func(i int) error {
		hits[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times, want 1", i, got)
		}
	}

	wantErr := errors.New("boom")
	err := p.ForEach(n, func(i int) error {
		if i == 7 || i == 3 {
			return fmt.Errorf("%w at %d", wantErr, i)
		}
		return nil
	})
	if err == nil || !errors.Is(err, wantErr) {
		t.Fatalf("error = %v, want wrapped %v", err, wantErr)
	}
	if got := err.Error(); got != "boom at 3" {
		t.Fatalf("error = %q, want the lowest failing index's (boom at 3)", got)
	}
}

// TestPoolNilAndZeroItems pins the degenerate cases: a nil pool runs
// inline, and zero items are a no-op.
func TestPoolNilAndZeroItems(t *testing.T) {
	var p *Pool
	ran := 0
	if err := p.ForEach(3, func(i int) error { ran++; return nil }); err != nil {
		t.Fatal(err)
	}
	if ran != 3 {
		t.Fatalf("nil pool ran %d of 3 items", ran)
	}
	if err := NewPool(8).ForEach(0, func(i int) error { t.Fatal("ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestPoolSize pins Size resolution, including the per-core default.
func TestPoolSize(t *testing.T) {
	if got := NewPool(5).Size(); got != 5 {
		t.Fatalf("Size = %d, want 5", got)
	}
	if got := NewPool(0).Size(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Size = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}
