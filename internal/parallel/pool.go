// Package parallel provides the bounded worker pool behind the level-wise
// lattice searches and experiment sweeps.
//
// The pool's contract is determinism: callers write results into index-
// addressed slots, errors are reported for the lowest failing index, and a
// worker budget of 1 (or a single work item) degenerates to a plain serial
// loop with no goroutines at all. This is what lets the parallel searches
// in internal/lattice promise byte-identical results to their serial
// counterparts.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values below 1 mean "use all
// available parallelism" (runtime.GOMAXPROCS). The result is always >= 1.
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) using at most workers
// goroutines. Workers pull indices from a shared counter, so uneven work
// items balance automatically.
//
// Error semantics are deterministic: if any calls fail, ForEach returns the
// error of the lowest failing index, and stops handing out new indices once
// a failure is observed (in-flight calls still finish). With workers <= 1
// the loop runs inline on the calling goroutine and stops at the first
// error, exactly like a hand-written serial loop.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		errIdx = -1
		first  error
		wg     sync.WaitGroup
	)
	record := func(i int, err error) {
		failed.Store(true)
		mu.Lock()
		if errIdx < 0 || i < errIdx {
			errIdx, first = i, err
		}
		mu.Unlock()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}
