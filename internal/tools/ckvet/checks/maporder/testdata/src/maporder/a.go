// Package maporder is analyzer testdata: each case is one function.
package maporder

import (
	"bytes"
	"fmt"
	"sort"
)

// badKeyList leaks map order into a returned key list.
func badKeyList(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `slice keys collects map iteration results but is never sorted`
	}
	return keys
}

// goodKeyList restores order with sort.Strings.
func goodKeyList(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// goodSortSlice restores order with sort.Slice.
func goodSortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// goodLoopLocal appends to a slice scoped inside the loop; map order
// cannot leak out through it.
func goodLoopLocal(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		total += len(doubled)
	}
	return total
}

// badSerialize writes bytes in iteration order; no later sort can fix
// serialized output.
func badSerialize(m map[string]int, buf *bytes.Buffer) {
	for k, v := range m {
		fmt.Fprintf(buf, "%s=%d\n", k, v) // want `fmt.Fprintf inside map iteration serializes in nondeterministic order`
	}
}

// badWriterMethod hits the Write-method sink.
func badWriterMethod(m map[string]int, buf *bytes.Buffer) {
	for k := range m {
		buf.WriteString(k) // want `bytes.Buffer.WriteString inside map iteration serializes in nondeterministic order`
	}
}

// suppressedKeyList shows a justified escape hatch: order is re-imposed
// by the (hypothetical) consumer.
func suppressedKeyList(m map[string]int) []string {
	var keys []string
	for k := range m {
		//ckvet:ignore maporder consumer sorts; covered by the order-free parity test
		keys = append(keys, k)
	}
	return keys
}
