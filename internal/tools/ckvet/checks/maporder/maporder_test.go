package maporder

import (
	"testing"

	"ckprivacy/internal/tools/ckvet/analysis/analysistest"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata/src/maporder", Analyzer)
}
