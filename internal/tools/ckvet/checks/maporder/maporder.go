// Package maporder flags the byte-identity killer: iterating a Go map
// and letting the iteration order reach an ordered output — a key list
// appended to a slice that is never sorted, or bytes serialized directly
// from inside the loop. Every performance layer of this repo (columnar
// bucketization, coarsening, sharded scan-merge, the durable snapshot
// format) is specified as byte-identical to a reference path; one
// unsorted `for range m` in a key writer silently breaks that contract
// on a schedule of the runtime's choosing.
//
// The check: for every `for ... range m` where m is a map,
//
//   - an `append` inside the loop body into a slice declared outside the
//     loop is a finding unless the enclosing function also passes that
//     slice to sort.* / slices.Sort* (order restored after collection);
//   - a serialization call inside the loop body (io.Writer /
//     strings.Builder writes, binary.Append*/Put*, fmt.Fprint*, or a
//     local append*-style byte helper) is always a finding — serialized
//     bytes cannot be re-sorted afterwards.
//
// Writes into other maps, counters and error returns are order-free and
// ignored. Where iteration order is provably free, suppress with
// `//ckvet:ignore maporder <reason citing the parity test>`.
package maporder

import (
	"go/ast"
	"go/types"
	"strings"

	"ckprivacy/internal/tools/ckvet/analysis"
)

// Analyzer is the maporder check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "map iteration order must not reach slices, key lists or serialized bytes unsorted",
	Run:  run,
}

// sortFuncs names the blessed order-restoring calls: target slice passed
// as the first argument.
var sortFuncs = map[string]map[string]bool{
	"sort":   {"Strings": true, "Ints": true, "Float64s": true, "Slice": true, "SliceStable": true, "Sort": true, "Stable": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		analysis.EnclosingFuncs(file, func(name string, body *ast.BlockStmt) {
			checkFunc(pass, body)
		})
	}
	return nil, nil
}

// checkFunc scans one top-level function body. The whole body is the
// sort-search scope: a closure may collect keys that the outer function
// sorts.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !analysis.IsMapType(pass.TypesInfo, rs.X) {
			return true
		}
		checkMapRange(pass, body, rs)
		return true
	})
}

// checkMapRange inspects one map-range loop body for order-sensitive
// sinks.
func checkMapRange(pass *analysis.Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Builtin append into a slice declared outside the loop: a key
		// list; needs a sort somewhere in the enclosing function.
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
			target := call.Args[0]
			if analysis.IsSliceType(pass.TypesInfo, target) &&
				declaredOutside(pass, target, rs) &&
				!sortedInFunc(pass, funcBody, target) {
				pass.Reportf(call.Pos(),
					"slice %s collects map iteration results but is never sorted; sort it (sort.*/slices.Sort*) or justify with //ckvet:ignore maporder",
					exprString(target))
			}
			return true
		}
		if msg := serializationSink(pass, call); msg != "" {
			pass.Reportf(call.Pos(),
				"%s inside map iteration serializes in nondeterministic order; collect and sort keys first", msg)
		}
		return true
	})
}

// declaredOutside reports whether the append target is declared outside
// the range statement (an inside-declared slice is per-iteration state,
// whose order the map cannot leak into).
func declaredOutside(pass *analysis.Pass, target ast.Expr, rs *ast.RangeStmt) bool {
	id, ok := target.(*ast.Ident)
	if !ok {
		// Field selectors and index expressions refer to state that
		// outlives the loop iteration unless their root is loop-local;
		// treat as outside (conservative).
		root := target
		for {
			switch t := root.(type) {
			case *ast.SelectorExpr:
				root = t.X
				continue
			case *ast.IndexExpr:
				root = t.X
				continue
			}
			break
		}
		if rid, ok := root.(*ast.Ident); ok {
			return identDeclaredOutside(pass, rid, rs)
		}
		return true
	}
	return identDeclaredOutside(pass, id, rs)
}

// identDeclaredOutside reports whether id's declaration precedes the
// range statement.
func identDeclaredOutside(pass *analysis.Pass, id *ast.Ident, rs *ast.RangeStmt) bool {
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return true
	}
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

// sortedInFunc reports whether the enclosing function passes target to a
// recognized sort call.
func sortedInFunc(pass *analysis.Pass, funcBody *ast.BlockStmt, target ast.Expr) bool {
	key := analysis.ExprKey(pass.Fset, pass.TypesInfo, target)
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		pkg, name := analysis.PkgFunc(pass.TypesInfo, call)
		if names, ok := sortFuncs[pkg]; !ok || !names[name] {
			return true
		}
		if analysis.ExprKey(pass.Fset, pass.TypesInfo, call.Args[0]) == key {
			found = true
		}
		return true
	})
	return found
}

// serializationSink classifies a call that emits bytes or text in call
// order; the returned message names the sink ("" when the call is not
// one).
func serializationSink(pass *analysis.Pass, call *ast.CallExpr) string {
	if pkg, name := analysis.PkgFunc(pass.TypesInfo, call); pkg != "" {
		switch {
		case pkg == "fmt" && strings.HasPrefix(name, "Fprint"):
			return "fmt." + name
		case pkg == "encoding/binary" && (strings.HasPrefix(name, "Append") || strings.HasPrefix(name, "Put") || name == "Write"):
			return "binary." + name
		case pkg == "io" && name == "WriteString":
			return "io.WriteString"
		}
		return ""
	}
	// Local byte-framing helpers by convention: append*(buf, ...) []byte.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if strings.HasPrefix(id.Name, "append") && id.Name != "append" &&
			len(call.Args) > 0 && isByteSlice(pass, call.Args[0]) {
			return id.Name
		}
		return ""
	}
	// Writer-style methods: strings.Builder, bytes.Buffer, io.Writer,
	// hash.Hash — anything with a Write* method receiving this loop's
	// data in iteration order.
	recv, name := analysis.MethodCall(pass.TypesInfo, call)
	if recv == nil {
		return ""
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		n := analysis.NamedOf(recv)
		if n != nil && n.Obj().Pkg() != nil {
			return n.Obj().Pkg().Name() + "." + n.Obj().Name() + "." + name
		}
		return name
	}
	return ""
}

// isByteSlice reports whether e is a []byte.
func isByteSlice(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// exprString renders an expression for a diagnostic.
func exprString(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return exprString(t.X) + "." + t.Sel.Name
	case *ast.IndexExpr:
		return exprString(t.X) + "[...]"
	}
	return "expression"
}
