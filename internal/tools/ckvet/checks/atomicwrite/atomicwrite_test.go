package atomicwrite

import (
	"testing"

	"ckprivacy/internal/tools/ckvet/analysis/analysistest"
)

func TestAtomicwrite(t *testing.T) {
	analysistest.Run(t, "testdata/src/atomicwrite", Analyzer)
}
