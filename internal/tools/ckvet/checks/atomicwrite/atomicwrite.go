// Package atomicwrite guards the durability layer's crash-safety
// contract: every whole-file replacement in internal/store goes through
// writeSnapshotFile, the one helper that performs the full
// tmp + fsync + rename + parent-dir-sync dance. A bare os.Create or
// os.WriteFile leaves a window where a crash publishes a torn file
// under the final name, and a bare os.Rename publishes bytes that may
// still be in the page cache — both defeat the CKPS recovery invariant
// ("a snapshot that exists is a snapshot that decodes").
//
// Findings: any call to os.Create, os.WriteFile or os.Rename outside
// the atomic helpers: writeSnapshotFile (encode + land) and
// writeFileAtomic (the protocol itself, also used to install raw
// replica snapshot bytes verbatim). os.OpenFile is deliberately not in
// the set — the WAL opens files for append with its own explicit fsync
// schedule, and the tmp file inside writeFileAtomic is created with
// it; neither is a whole-file replacement.
package atomicwrite

import (
	"go/ast"

	"ckprivacy/internal/tools/ckvet/analysis"
)

// Analyzer is the atomicwrite check.
var Analyzer = &analysis.Analyzer{
	Name: "atomicwrite",
	Doc:  "whole-file writes in the store must go through the tmp+fsync+rename helper",
	Run:  run,
}

// atomicHelpers names the functions allowed to call the raw os file
// operations: writeFileAtomic implements the atomic-replace protocol
// and writeSnapshotFile is its encode-then-land wrapper (kept in the
// set so the testdata contract and older store code keep vetting).
var atomicHelpers = map[string]bool{
	"writeSnapshotFile": true,
	"writeFileAtomic":   true,
}

// flagged names the os functions that replace or publish whole files.
var flagged = map[string]bool{
	"Create":    true,
	"WriteFile": true,
	"Rename":    true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		analysis.EnclosingFuncs(file, func(name string, body *ast.BlockStmt) {
			if atomicHelpers[name] {
				return
			}
			ast.Inspect(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				pkg, fn := analysis.PkgFunc(pass.TypesInfo, call)
				if pkg == "os" && flagged[fn] {
					pass.Reportf(call.Pos(),
						"os.%s bypasses the atomic write protocol; route the write through writeFileAtomic (tmp+fsync+rename+dir sync)",
						fn)
				}
				return true
			})
		})
	}
	return nil, nil
}
