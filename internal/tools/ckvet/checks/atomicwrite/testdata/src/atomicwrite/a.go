// Package atomicwrite is analyzer testdata: file publication in and out
// of the atomic-replace protocol.
package atomicwrite

import (
	"os"
	"path/filepath"
)

// writeSnapshotFile stands in for the real helper; the raw calls inside
// it are the protocol implementation and exempt.
func writeSnapshotFile(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// writeFileAtomic stands in for the raw-bytes variant of the protocol
// (replica snapshot installs); equally exempt.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// badWriteFile publishes a whole file with no fsync or rename.
func badWriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `os.WriteFile bypasses the atomic write protocol`
}

// badCreate truncates the final name in place: a crash mid-write leaves
// a torn file published.
func badCreate(path string) (*os.File, error) {
	return os.Create(path) // want `os.Create bypasses the atomic write protocol`
}

// badRename publishes bytes that may still be in the page cache.
func badRename(old, path string) error {
	return os.Rename(old, path) // want `os.Rename bypasses the atomic write protocol`
}

// goodAppendOpen opens for append with an explicit fsync schedule (the
// WAL shape); os.OpenFile is not a whole-file replacement.
func goodAppendOpen(dir string) (*os.File, error) {
	return os.OpenFile(filepath.Join(dir, "wal"), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
}

// goodViaHelper routes the replacement through the protocol.
func goodViaHelper(path string, data []byte) error {
	return writeSnapshotFile(path, data)
}

// goodViaRawHelper routes raw bytes through the protocol.
func goodViaRawHelper(path string, data []byte) error {
	return writeFileAtomic(path, data)
}

// suppressedScratch writes a throwaway file whose loss is harmless.
func suppressedScratch(dir string, data []byte) error {
	//ckvet:ignore atomicwrite debug dump, not part of the recovery surface
	return os.WriteFile(filepath.Join(dir, "debug.out"), data, 0o644)
}
