// Package poolleak keeps the sync.Pool fast paths honest. The hot
// loops (sharded bucket scans, the two minimization passes) reuse
// scratch buffers through sync.Pool; the contract is strictly
// Get → use → Put on every path. Two failure shapes silently turn the
// optimization into a regression:
//
//   - a return path that skips Put — the buffer is garbage-collected
//     instead of reused, so the pool decays to an allocation per call
//     under exactly the error/early-exit conditions load tests rarely
//     hit;
//   - a pooled value escaping through a return value — the caller now
//     holds memory that a later Put hands to a concurrent Get, aliasing
//     two "owners" of one buffer.
//
// Per function body (closures analyzed as their own scopes), for each
// variable bound from a sync.Pool Get:
//
//   - the value appearing in a return statement is an escape finding;
//   - a deferred Put (directly or inside a deferred closure) covers
//     every path and is clean;
//   - no Put at all is a finding;
//   - only non-deferred Puts: any return that precedes the first Put is
//     a path that leaks, and is a finding (prefer defer).
//
// Deliberate ownership transfer (a getScratch helper whose caller
// carries the deferred Put) is suppressible with
// //ckvet:ignore poolleak <who Puts, and where>.
package poolleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"ckprivacy/internal/tools/ckvet/analysis"
)

// Analyzer is the poolleak check.
var Analyzer = &analysis.Analyzer{
	Name: "poolleak",
	Doc:  "sync.Pool Get must be paired with Put on every path and must not escape via return",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		analysis.FuncBodies(file, func(name string, body *ast.BlockStmt) {
			checkScope(pass, body)
		})
	}
	return nil, nil
}

// pooledVar tracks one variable bound from a pool Get within one scope.
type pooledVar struct {
	obj    types.Object
	getPos token.Pos
}

// checkScope analyzes one function body, not descending into nested
// function literals except through defer statements.
func checkScope(pass *analysis.Pass, body *ast.BlockStmt) {
	var vars []pooledVar
	analysis.InspectNoNestedFuncs(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call := unwrapAssert(as.Rhs[0])
		if call == nil || !isPoolCall(pass, call, "Get") {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
			vars = append(vars, pooledVar{obj: obj, getPos: call.Pos()})
		}
		return true
	})
	for _, v := range vars {
		checkVar(pass, body, v)
	}
}

// unwrapAssert returns the call beneath an optional type assertion
// (`pool.Get().(*T)`), or the call itself.
func unwrapAssert(e ast.Expr) *ast.CallExpr {
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ta.X
	}
	call, _ := e.(*ast.CallExpr)
	return call
}

// isPoolCall reports whether call invokes the named method on a
// sync.Pool receiver, or the matching package-level arena wrapper
// (GetArena for "Get", PutArena for "Put"): bucket's pooled-Arena API
// hides its sync.Pool behind those two functions, and the same
// Get → use → Put path contract binds their callers.
func isPoolCall(pass *analysis.Pass, call *ast.CallExpr, method string) bool {
	recv, name := analysis.MethodCall(pass.TypesInfo, call)
	if recv != nil && name == method && analysis.TypeIs(recv, "sync", "Pool") {
		return true
	}
	return isArenaCall(pass, call, method+"Arena")
}

// isArenaCall reports whether call invokes a package-level (receiver-
// less) function of the given name, in any package.
func isArenaCall(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	var id *ast.Ident
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	}
	if id == nil || id.Name != name {
		return false
	}
	fn, ok := pass.TypesInfo.ObjectOf(id).(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// checkVar applies the path rules to one pooled variable.
func checkVar(pass *analysis.Pass, body *ast.BlockStmt, v pooledVar) {
	var (
		deferredPut bool
		firstPut    = token.Pos(-1)
		escapeAt    = token.Pos(-1)
		leakReturn  = token.Pos(-1)
	)
	analysis.InspectNoNestedFuncs(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeferStmt:
			// A deferred Put — direct or wrapped in a closure — covers
			// every return path. ast.Inspect descends into a deferred
			// FuncLit's body, so both shapes are one walk.
			ast.Inspect(st.Call, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok && isPoolCall(pass, c, "Put") && usesVar(pass, c, v.obj) {
					deferredPut = true
				}
				return true
			})
			return false
		case *ast.CallExpr:
			if isPoolCall(pass, st, "Put") && usesVar(pass, st, v.obj) {
				if firstPut == token.Pos(-1) || st.Pos() < firstPut {
					firstPut = st.Pos()
				}
			}
		case *ast.ReturnStmt:
			if st.Pos() <= v.getPos {
				return true
			}
			for _, res := range st.Results {
				if exprUsesVar(pass, res, v.obj) && !basicResult(pass, res) {
					escapeAt = st.Pos()
					return true
				}
			}
			if leakReturn == token.Pos(-1) {
				leakReturn = st.Pos()
			}
		}
		return true
	})
	name := v.obj.Name()
	switch {
	case escapeAt != token.Pos(-1):
		pass.Reportf(escapeAt,
			"pooled value %s escapes via return; the pool may hand the same buffer to a concurrent Get", name)
	case deferredPut:
		// Every path covered.
	case firstPut == token.Pos(-1):
		pass.Reportf(v.getPos,
			"sync.Pool Get of %s has no matching Put in this function; defer the Put next to the Get", name)
	case leakReturn != token.Pos(-1) && leakReturn < firstPut:
		pass.Reportf(leakReturn,
			"return path leaks pooled value %s (Put happens later); use a deferred Put", name)
	}
}

// basicResult reports whether the returned expression's type is a basic
// value (int, string, bool, ...): `return buf.Len()` derives a scalar
// from the pooled buffer but cannot carry the buffer itself out.
func basicResult(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Basic)
	return ok
}

// usesVar reports whether any argument of call references obj.
func usesVar(pass *analysis.Pass, call *ast.CallExpr, obj types.Object) bool {
	for _, a := range call.Args {
		if exprUsesVar(pass, a, obj) {
			return true
		}
	}
	return false
}

// exprUsesVar reports whether obj appears anywhere in e.
func exprUsesVar(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
