package poolleak

import (
	"testing"

	"ckprivacy/internal/tools/ckvet/analysis/analysistest"
)

func TestPoolleak(t *testing.T) {
	analysistest.Run(t, "testdata/src/poolleak", Analyzer)
}
