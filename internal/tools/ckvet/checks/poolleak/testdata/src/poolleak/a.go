// Package poolleak is analyzer testdata: sync.Pool Get/Put pairings in
// every shape the checker distinguishes.
package poolleak

import (
	"bytes"
	"sync"
)

var pool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// goodDeferred is the canonical shape: defer the Put next to the Get.
func goodDeferred(data []byte) int {
	buf := pool.Get().(*bytes.Buffer)
	defer pool.Put(buf)
	buf.Reset()
	buf.Write(data)
	return buf.Len()
}

// goodDeferredClosure defers the Put inside a closure.
func goodDeferredClosure(data []byte) int {
	buf := pool.Get().(*bytes.Buffer)
	defer func() {
		buf.Reset()
		pool.Put(buf)
	}()
	buf.Write(data)
	return buf.Len()
}

// goodImmediate puts before any return.
func goodImmediate() int {
	buf := pool.Get().(*bytes.Buffer)
	n := buf.Cap()
	pool.Put(buf)
	return n
}

// badNoPut never returns the buffer to the pool.
func badNoPut(data []byte) int {
	buf := pool.Get().(*bytes.Buffer) // want `sync.Pool Get of buf has no matching Put`
	buf.Reset()
	buf.Write(data)
	return buf.Len()
}

// badEarlyReturn leaks on the error path: the Put only runs on the
// happy path.
func badEarlyReturn(data []byte) int {
	buf := pool.Get().(*bytes.Buffer)
	buf.Reset()
	if len(data) == 0 {
		return 0 // want `return path leaks pooled value buf`
	}
	buf.Write(data)
	n := buf.Len()
	pool.Put(buf)
	return n
}

// badEscape hands the pooled buffer to the caller while a later Put can
// recycle it underneath them.
func badEscape() *bytes.Buffer {
	buf := pool.Get().(*bytes.Buffer)
	buf.Reset()
	return buf // want `pooled value buf escapes via return`
}

// suppressedEscape is the documented ownership-transfer shape.
//
//ckvet:ignore poolleak ownership transfers to the caller, which defers the Put
func suppressedEscape() *bytes.Buffer {
	buf := pool.Get().(*bytes.Buffer)
	buf.Reset()
	return buf
}

// arena mimics bucket.Arena: a pooled scratch type hidden behind
// package-level GetArena/PutArena wrappers, which the checker treats as
// Get/Put.
type arena struct{ n int }

var arenaPool = sync.Pool{New: func() any { return new(arena) }}

// GetArena is the wrapper shape; the escape via return is the
// deliberate ownership transfer, suppressed like any other.
//
//ckvet:ignore poolleak ownership transfers to the caller, which pairs GetArena with PutArena
func GetArena() *arena {
	return arenaPool.Get().(*arena)
}

// PutArena returns an arena to the pool.
func PutArena(ar *arena) {
	arenaPool.Put(ar)
}

// goodArenaDeferred is the canonical caller shape for the wrappers.
func goodArenaDeferred() int {
	ar := GetArena()
	defer PutArena(ar)
	ar.n++
	return ar.n
}

// goodArenaImmediate puts the arena back before any return.
func goodArenaImmediate(fail bool) (int, bool) {
	ar := GetArena()
	n := ar.n
	PutArena(ar)
	if fail {
		return 0, false
	}
	return n, true
}

// badArenaNoPut never hands the arena back.
func badArenaNoPut() int {
	ar := GetArena() // want `sync.Pool Get of ar has no matching Put`
	return ar.n
}

// badArenaEarlyReturn leaks the arena on the error path.
func badArenaEarlyReturn(fail bool) int {
	ar := GetArena()
	if fail {
		return 0 // want `return path leaks pooled value ar`
	}
	n := ar.n
	PutArena(ar)
	return n
}

// badArenaEscape hands the pooled arena out without a suppression.
func badArenaEscape() *arena {
	ar := GetArena()
	return ar // want `pooled value ar escapes via return`
}
