package snapshotmut

import (
	"testing"

	"ckprivacy/internal/tools/ckvet/analysis/analysistest"
)

func TestSnapshotmut(t *testing.T) {
	// The testdata packages are named "bucket" and "anonymize" so the
	// analyzer's pins — keyed on package name — apply to them.
	analysistest.Run(t, "testdata/src/bucket", Analyzer)
	analysistest.Run(t, "testdata/src/anonymize", Analyzer)
}
