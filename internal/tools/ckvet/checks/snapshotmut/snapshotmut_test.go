package snapshotmut

import (
	"testing"

	"ckprivacy/internal/tools/ckvet/analysis/analysistest"
)

func TestSnapshotmut(t *testing.T) {
	// The testdata package is named "bucket" so the analyzer's
	// bucket.Bucket pin — keyed on package name — applies to it.
	analysistest.Run(t, "testdata/src/bucket", Analyzer)
}
