// Package snapshotmut pins the repo's shared read-only values as
// actually read-only. Three families of values are handed out across
// goroutine and package boundaries with no locks, on the strength of a
// comment that says "immutable after construction":
//
//   - table.Encoded / table.Dict — the append-only master encoding and
//     its dictionary views; Snapshot() returns three-index views into
//     the same backing arrays;
//   - bucket.Bucket — finalized histogram buckets shared by every
//     minimization pass over the same generalization;
//   - anonymize.cacheEntry — cached bucketizations served to all
//     subsequent requests at the same level vector;
//   - anonymize.planNode — sweep derivation-DAG nodes, written while a
//     plan is built and then read by concurrent frontier executors.
//
// A field or element write to one of these outside its owning
// constructor file is a data race with every reader that trusted the
// comment — the kind that -race only catches if the scheduler
// cooperates. This analyzer makes the comment mechanical: each pinned
// type lists the one file allowed to mutate it (the file that defines
// its constructors); writes anywhere else are findings.
//
// A "write" is an assignment (including op-assign and append-back) or
// ++/-- whose left side selects a field of a pinned type, or indexes
// into such a field (slice element, map key). Rebinding a whole
// variable (s = other) is not a write to the pinned object and is not
// flagged.
package snapshotmut

import (
	"go/ast"

	"ckprivacy/internal/tools/ckvet/analysis"
)

// Analyzer is the snapshotmut check.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotmut",
	Doc:  "pinned-immutable types may only be mutated in their owning constructor file",
	Run:  run,
}

// pinned maps "pkgName.TypeName" to the base names of the files allowed
// to mutate that type. Keys use the defining package's name, not its
// import path, so analyzer test packages named like the real ones
// exercise identical rules.
var pinned = map[string]map[string]bool{
	"bucket.Bucket":        {"bucket.go": true},
	"table.Dict":           {"encoded.go": true},
	"table.Encoded":        {"encoded.go": true},
	"anonymize.cacheEntry": {"cache.go": true},
	// The sweep planner's DAG nodes are written only while the plan is
	// built; the executor's concurrent frontier workers read them with
	// no locks.
	"anonymize.planNode": {"plan.go": true},
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		base := baseName(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					checkWrite(pass, base, lhs)
				}
			case *ast.IncDecStmt:
				checkWrite(pass, base, st.X)
			}
			return true
		})
	}
	return nil, nil
}

// baseName returns the file's base name for allowlist matching.
func baseName(pass *analysis.Pass, file *ast.File) string {
	full := pass.Fset.Position(file.Pos()).Filename
	for i := len(full) - 1; i >= 0; i-- {
		if full[i] == '/' {
			return full[i+1:]
		}
	}
	return full
}

// checkWrite walks the write target's selector/index chain and reports
// if any link selects into a pinned type from a disallowed file.
func checkWrite(pass *analysis.Pass, fileBase string, lhs ast.Expr) {
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			if name := pinnedType(pass, e.X); name != "" && !pinned[name][fileBase] {
				pass.Reportf(lhs.Pos(),
					"write to field %s of pinned-immutable %s outside its constructor file; %s is shared read-only after construction",
					e.Sel.Name, name, name)
				return
			}
			lhs = e.X
		default:
			return
		}
	}
}

// pinnedType returns the "pkg.Type" key when the expression's type
// (pointers unwrapped) is pinned, "" otherwise.
func pinnedType(pass *analysis.Pass, e ast.Expr) string {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return ""
	}
	n := analysis.NamedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return ""
	}
	key := n.Obj().Pkg().Name() + "." + n.Obj().Name()
	if _, ok := pinned[key]; ok {
		return key
	}
	return ""
}
