// Package bucket is snapshotmut testdata; it is named after the real
// package so the analyzer's "bucket.Bucket" pin applies. This file is
// the type's owning constructor file: every write here is allowed.
package bucket

// Bucket mirrors the real pinned type: immutable once finalized.
type Bucket struct {
	Key    string
	Tuples []int
	hist   []int
}

// NewBucket builds and may freely mutate the value under construction.
func NewBucket(key string, n int) *Bucket {
	b := &Bucket{Key: key}
	b.hist = make([]int, n)
	for i := 0; i < n; i++ {
		b.Tuples = append(b.Tuples, i)
		b.hist[i] = i
	}
	return b
}

// Finalize is a constructor-file mutation: still allowed.
func (b *Bucket) Finalize() {
	b.Key = b.Key + "/final"
}
