// This file is NOT bucket.go: writes to Bucket here violate the pin.
package bucket

// mutateField writes a field of a pinned type outside its constructor
// file.
func mutateField(b *Bucket) {
	b.Key = "changed" // want `write to field Key of pinned-immutable bucket.Bucket`
}

// mutateElement writes through a pinned type's slice field.
func mutateElement(b *Bucket) {
	b.hist[0] = 9 // want `write to field hist of pinned-immutable bucket.Bucket`
}

// mutateAppend grows a pinned type's slice field.
func mutateAppend(b *Bucket) {
	b.Tuples = append(b.Tuples, 1) // want `write to field Tuples of pinned-immutable bucket.Bucket`
}

// incrementField uses ++ on a pinned field element.
func incrementField(b *Bucket) {
	b.hist[1]++ // want `write to field hist of pinned-immutable bucket.Bucket`
}

// rebindOnly rebinds the variable; the pinned object is untouched.
func rebindOnly(b *Bucket, other *Bucket) *Bucket {
	b = other
	return b
}

// readOnly reads are always fine.
func readOnly(b *Bucket) int {
	total := 0
	for _, t := range b.Tuples {
		total += t
	}
	return total
}

// suppressedMutation documents why this one write is safe.
func suppressedMutation(b *Bucket) {
	//ckvet:ignore snapshotmut b is this goroutine's private copy, cloned above
	b.Key = "private"
}
