// This file is NOT plan.go: writes to planNode here violate the pin.
// The executor must treat a finished plan as read-only — its frontier
// workers share the nodes with no locks.
package anonymize

// executeMutates patches a plan node mid-execution.
func executeMutates(nodes []planNode) {
	nodes[0].parent = 2 // want `write to field parent of pinned-immutable anonymize.planNode`
}

// appendKeys grows a pinned node's key list outside the planner.
func appendKeys(pn *planNode) {
	pn.keys = append(pn.keys, "late") // want `write to field keys of pinned-immutable anonymize.planNode`
}

// readOnly reads are always fine.
func readOnly(nodes []planNode) int {
	total := 0
	for i := range nodes {
		total += nodes[i].predicted + len(nodes[i].vec)
	}
	return total
}
