// Package anonymize is snapshotmut testdata; it is named after the real
// package so the analyzer's "anonymize.planNode" pin applies. This file
// is plan.go, the type's owning constructor file: writes here are
// allowed.
package anonymize

// planNode mirrors the real pinned type: a sweep DAG node, read-only
// once planning finishes.
type planNode struct {
	vec       []int
	keys      []string
	parent    int
	predicted int
}

// buildPlan constructs and may freely mutate nodes under construction.
func buildPlan(vecs [][]int) []planNode {
	nodes := make([]planNode, 0, len(vecs))
	for _, v := range vecs {
		nodes = append(nodes, planNode{vec: v, parent: -1})
	}
	for i := range nodes {
		pn := &nodes[i]
		pn.keys = append(pn.keys, "k")
		pn.predicted++
	}
	return nodes
}
