// Package errenvelope is analyzer testdata: handlers writing error
// responses in and out of the envelope contract.
package errenvelope

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// errorBody mirrors the real server's envelope.
type errorBody struct {
	Error  string `json:"error"`
	Code   string `json:"code"`
	Detail string `json:"detail,omitempty"`
}

// writeError is the envelope helper; its own raw writes are exempt.
func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error(), Code: "internal"})
}

// badHTTPError bypasses the envelope with a text/plain body.
func badHTTPError(w http.ResponseWriter, err error) {
	http.Error(w, err.Error(), http.StatusBadRequest) // want `http.Error writes a text/plain error body`
}

// badFprint hand-writes a response body.
func badFprint(w http.ResponseWriter, err error) {
	fmt.Fprintf(w, "error: %v", err) // want `fmt.Fprintf writes a response body by hand`
}

// badWriteHeader sends an error status with no envelope body.
func badWriteHeader(w http.ResponseWriter) {
	w.WriteHeader(http.StatusInternalServerError) // want `WriteHeader\(500\) sends an error status without the envelope body`
}

// goodEnvelope routes through the helper.
func goodEnvelope(w http.ResponseWriter, err error) {
	writeError(w, http.StatusBadRequest, err)
}

// goodForwardedStatus forwards a status it did not choose (response
// recorder / middleware shape); non-constant statuses are not flagged.
func goodForwardedStatus(w http.ResponseWriter, code int) {
	w.WriteHeader(code)
}

// goodOKHeader sends a success status, which needs no envelope.
func goodOKHeader(w http.ResponseWriter) {
	w.WriteHeader(http.StatusOK)
}

// suppressedExposition is a non-envelope endpoint with its own wire
// contract, carrying the justification in its doc comment.
//
//ckvet:ignore errenvelope Prometheus text exposition format; contract tested elsewhere
func suppressedExposition(w http.ResponseWriter, hits int) {
	fmt.Fprintf(w, "hits_total %d\n", hits)
}
