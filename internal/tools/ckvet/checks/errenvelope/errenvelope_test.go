package errenvelope

import (
	"testing"

	"ckprivacy/internal/tools/ckvet/analysis/analysistest"
)

func TestErrenvelope(t *testing.T) {
	analysistest.Run(t, "testdata/src/errenvelope", Analyzer)
}
