// Package errenvelope enforces the v1 API's single error shape: every
// error response leaving internal/server is the typed JSON envelope
// {error, code, detail}, produced by the package's writeError helper
// (and its sibling writeJSON). Clients key on that contract — the CLI,
// the loadtest harness and the sequential-release audit all parse the
// envelope — so one handler calling http.Error on a stray edge path
// ships a text/plain body that breaks them only under that edge.
//
// Findings, anywhere in internal/server outside the envelope helpers
// themselves:
//
//   - a call to http.Error;
//   - fmt.Fprint* whose destination is an http.ResponseWriter (writing a
//     body by hand);
//   - WriteHeader with a constant status >= 400 (an error status whose
//     body is then hand-rolled or absent).
//
// WriteHeader with a non-constant status is not flagged: response
// recorders and middleware forward statuses they did not choose.
// Non-envelope endpoints with their own wire contract (Prometheus text
// exposition) carry a //ckvet:ignore errenvelope directive naming that
// contract.
package errenvelope

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"ckprivacy/internal/tools/ckvet/analysis"
)

// Analyzer is the errenvelope check.
var Analyzer = &analysis.Analyzer{
	Name: "errenvelope",
	Doc:  "error responses must use the typed {error, code, detail} envelope helper",
	Run:  run,
}

// envelopeHelpers names the functions allowed to touch the response
// writer directly: they ARE the envelope implementation.
var envelopeHelpers = map[string]bool{
	"writeError": true,
	"writeJSON":  true,
}

func run(pass *analysis.Pass) (any, error) {
	rw := responseWriterIface(pass.Pkg)
	if rw == nil {
		// The package never imports net/http; nothing here can write a
		// response.
		return nil, nil
	}
	for _, file := range pass.Files {
		analysis.EnclosingFuncs(file, func(name string, body *ast.BlockStmt) {
			if envelopeHelpers[name] {
				return
			}
			checkBody(pass, rw, body)
		})
	}
	return nil, nil
}

// responseWriterIface digs http.ResponseWriter's interface type out of
// the package's import graph.
func responseWriterIface(pkg *types.Package) *types.Interface {
	for _, imp := range pkg.Imports() {
		if imp.Path() != "net/http" {
			continue
		}
		obj := imp.Scope().Lookup("ResponseWriter")
		if obj == nil {
			return nil
		}
		iface, _ := obj.Type().Underlying().(*types.Interface)
		return iface
	}
	return nil
}

func checkBody(pass *analysis.Pass, rw *types.Interface, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkg, name := analysis.PkgFunc(pass.TypesInfo, call); pkg != "" {
			switch {
			case pkg == "net/http" && name == "Error":
				pass.Reportf(call.Pos(),
					"http.Error writes a text/plain error body; use writeError for the {error, code, detail} envelope")
			case pkg == "fmt" && strings.HasPrefix(name, "Fprint") &&
				len(call.Args) > 0 && isResponseWriter(pass, rw, call.Args[0]):
				pass.Reportf(call.Pos(),
					"fmt.%s writes a response body by hand; use writeJSON/writeError for the typed envelope", name)
			}
			return true
		}
		recv, name := analysis.MethodCall(pass.TypesInfo, call)
		if recv == nil || name != "WriteHeader" || !implementsOrIs(recv, rw) {
			return true
		}
		if len(call.Args) != 1 {
			return true
		}
		if code, ok := constInt(pass, call.Args[0]); ok && code >= 400 {
			pass.Reportf(call.Pos(),
				"WriteHeader(%d) sends an error status without the envelope body; use writeError", code)
		}
		return true
	})
}

// isResponseWriter reports whether the expression's static type is (or
// implements) http.ResponseWriter.
func isResponseWriter(pass *analysis.Pass, rw *types.Interface, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	return implementsOrIs(t, rw)
}

func implementsOrIs(t types.Type, rw *types.Interface) bool {
	return types.Implements(t, rw) || types.Implements(types.NewPointer(t), rw)
}

// constInt extracts an expression's constant integer value, if it has
// one.
func constInt(pass *analysis.Pass, e ast.Expr) (int64, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}
