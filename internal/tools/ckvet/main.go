// Command ckvet runs the repo's invariant analyzers — maporder,
// errenvelope, atomicwrite, snapshotmut, poolleak — over the module.
// It is this repo's vet suite for the contracts ordinary tests cannot
// economically cover: byte-identical outputs under map reordering,
// crash-window-free file publication, envelope-only error responses,
// pinned immutability, and pool hygiene.
//
// Usage:
//
//	go run ./internal/tools/ckvet [-list] [packages]
//
// With no arguments it checks ./... . Findings print as
// file:line:col: [analyzer] message and make the exit status 1.
// Suppress a finding with //ckvet:ignore <analyzer> <reason> on the
// line above it (or in the declaration's doc comment to cover the whole
// declaration); a directive without a reason, or naming no known
// analyzer, is itself a finding.
//
// Each analyzer is scoped to the packages whose invariants it states
// (see scopes below); poolleak runs everywhere. The driver is a
// stand-in for `go vet -vettool`: the framework under ./analysis
// mirrors golang.org/x/tools/go/analysis so the analyzers port
// unchanged once that dependency is available.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ckprivacy/internal/tools/ckvet/analysis"
	"ckprivacy/internal/tools/ckvet/checks/atomicwrite"
	"ckprivacy/internal/tools/ckvet/checks/errenvelope"
	"ckprivacy/internal/tools/ckvet/checks/maporder"
	"ckprivacy/internal/tools/ckvet/checks/poolleak"
	"ckprivacy/internal/tools/ckvet/checks/snapshotmut"
)

// analyzers is the full suite, in report order.
var analyzers = []*analysis.Analyzer{
	maporder.Analyzer,
	errenvelope.Analyzer,
	atomicwrite.Analyzer,
	snapshotmut.Analyzer,
	poolleak.Analyzer,
}

// scopes limits each analyzer to the packages whose invariants it
// enforces, by import-path suffix. An analyzer with no entry runs on
// every loaded package.
var scopes = map[string][]string{
	"maporder":    {"internal/bucket", "internal/table", "internal/store"},
	"errenvelope": {"internal/server"},
	"atomicwrite": {"internal/store"},
	"snapshotmut": {"internal/bucket", "internal/table", "internal/anonymize"},
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	n, err := vet(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ckvet:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "ckvet: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// vet loads the patterns, runs every in-scope analyzer on every package
// and prints the surviving findings; it returns how many.
func vet(patterns []string) (int, error) {
	wd, err := os.Getwd()
	if err != nil {
		return 0, err
	}
	pkgs, err := analysis.Load(wd, patterns...)
	if err != nil {
		return 0, err
	}
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	findings := 0
	for _, pkg := range pkgs {
		// ckvet does not vet itself: its testdata packages deliberately
		// violate every invariant.
		if strings.Contains(pkg.ImportPath, "internal/tools/ckvet") {
			continue
		}
		sup := analysis.NewSuppressor(pkg, known)
		for _, d := range sup.Malformed {
			report(pkg, "ckvet", d)
			findings++
		}
		for _, a := range analyzers {
			if !inScope(a.Name, pkg.ImportPath) {
				continue
			}
			diags, err := analysis.RunAnalyzer(a, pkg)
			if err != nil {
				return findings, err
			}
			for _, d := range sup.Filter(pkg.Fset, a.Name, diags) {
				report(pkg, a.Name, d)
				findings++
			}
		}
	}
	return findings, nil
}

// inScope reports whether the analyzer covers the package.
func inScope(analyzer, importPath string) bool {
	suffixes, ok := scopes[analyzer]
	if !ok {
		return true
	}
	for _, s := range suffixes {
		if strings.HasSuffix(importPath, s) {
			return true
		}
	}
	return false
}

// report prints one finding in the conventional vet format.
func report(pkg *analysis.Package, analyzer string, d analysis.Diagnostic) {
	p := pkg.Fset.Position(d.Pos)
	fmt.Printf("%s: [%s] %s\n", p, analyzer, d.Message)
}
