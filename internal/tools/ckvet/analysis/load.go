package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// This file is ckvet's package loader: a stdlib-only stand-in for
// golang.org/x/tools/go/packages. Targets are resolved and their
// dependencies compiled by shelling out to `go list -deps -export`,
// which leaves export data for every dependency in the build cache;
// each target package is then parsed from source and type-checked with
// a go/importer gc importer whose lookup function serves those export
// files. Dependencies are never re-type-checked from source, which
// keeps a whole-module load in the low seconds.

// Package is one loaded, type-checked target package.
type Package struct {
	// ImportPath is the package's import path as go list reports it.
	ImportPath string
	// Dir is the directory holding the package's sources.
	Dir string
	// Fset maps positions of Files.
	Fset *token.FileSet
	// Files holds the parsed non-test sources, comments included.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// TypesInfo records the type-checker's results for Files.
	TypesInfo *types.Info
}

// listedPkg is the subset of `go list -json` output the loader reads.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]listedPkg, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %v: %v\n%s", args, err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

const listFields = "-json=ImportPath,Name,Dir,Export,GoFiles,Standard"

// Load resolves patterns (e.g. "./...") relative to dir and returns
// every matched package parsed and type-checked. Test files are
// excluded by construction (GoFiles): ckvet enforces invariants on
// production code.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-export", listFields}, patterns...)
	deps, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	exports := exportMap(deps)
	// -deps lists dependencies too; a second plain list names exactly the
	// packages the patterns matched.
	targets, err := goList(dir, append([]string{"list", listFields}, patterns...)...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		p, err := checkPackage(t, exports)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// LoadDir parses every .go file in pkgDir (a directory outside the
// module's package graph, e.g. an analyzer's testdata package) and
// type-checks it against the real imports it names, resolved through
// moduleDir's build context. The package's import path is its package
// name — testdata packages are loaded standalone, so analyzers keyed on
// package base names (snapshotmut) see the same names they see in the
// real tree.
func LoadDir(moduleDir, pkgDir string) (*Package, error) {
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", pkgDir)
	}
	sort.Strings(files)
	fset := token.NewFileSet()
	var asts []*ast.File
	importSet := map[string]bool{}
	for _, f := range files {
		af, err := parser.ParseFile(fset, filepath.Join(pkgDir, f), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, af)
		for _, imp := range af.Imports {
			importSet[importPathOf(imp)] = true
		}
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		paths := make([]string, 0, len(importSet))
		for p := range importSet {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		args := append([]string{"list", "-deps", "-export", listFields}, paths...)
		deps, err := goList(moduleDir, args...)
		if err != nil {
			return nil, err
		}
		exports = exportMap(deps)
	}
	name := asts[0].Name.Name
	pkg := listedPkg{ImportPath: name, Name: name, Dir: pkgDir, GoFiles: files}
	return checkPackageFiles(pkg, fset, asts, exports)
}

// importPathOf unquotes an import spec's path.
func importPathOf(imp *ast.ImportSpec) string {
	p := imp.Path.Value
	return p[1 : len(p)-1]
}

// exportMap indexes the listed packages' export data files by import
// path.
func exportMap(pkgs []listedPkg) map[string]string {
	m := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			m[p.ImportPath] = p.Export
		}
	}
	return m
}

// checkPackage parses one listed package's sources and type-checks them.
func checkPackage(p listedPkg, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var asts []*ast.File
	for _, f := range p.GoFiles {
		af, err := parser.ParseFile(fset, filepath.Join(p.Dir, f), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, af)
	}
	return checkPackageFiles(p, fset, asts, exports)
}

// checkPackageFiles runs the type checker over already-parsed files,
// resolving imports through the export-data map.
func checkPackageFiles(p listedPkg, fset *token.FileSet, asts []*ast.File, exports map[string]string) (*Package, error) {
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (dependency of %s)", path, p.ImportPath)
		}
		return os.Open(e)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	tpkg, err := conf.Check(p.ImportPath, fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
	}
	return &Package{
		ImportPath: p.ImportPath,
		Dir:        p.Dir,
		Fset:       fset,
		Files:      asts,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// RunAnalyzer applies one analyzer to one loaded package and returns its
// raw (unfiltered) diagnostics.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %v", a.Name, err)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
