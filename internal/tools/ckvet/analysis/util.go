package analysis

import (
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// Shared AST/type helpers for ckvet's analyzers. They answer the three
// questions every checker asks: "is this call pkg.Fn?", "is this a
// method call on type T?", and "do these two expressions name the same
// thing?".

// PkgFunc resolves a call to a package-level function and returns the
// defining package's path and the function name ("", "" when the call
// is anything else: a method, a builtin, a conversion, a local func).
func PkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	obj, ok := info.Uses[sel.Sel]
	if !ok || obj.Pkg() == nil {
		return "", ""
	}
	if _, isFunc := obj.(*types.Func); !isFunc {
		return "", ""
	}
	// A method call has a selection recorded; a qualified package
	// function does not.
	if _, isMethod := info.Selections[sel]; isMethod {
		return "", ""
	}
	return obj.Pkg().Path(), obj.Name()
}

// MethodCall resolves a call to a method invocation, returning the
// receiver's type and the method name (nil, "" otherwise).
func MethodCall(info *types.Info, call *ast.CallExpr) (recv types.Type, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil, ""
	}
	return s.Recv(), sel.Sel.Name
}

// NamedOf unwraps pointers and returns the named type beneath t, if any.
func NamedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		case *types.Alias:
			t = types.Unalias(t)
		default:
			return nil
		}
	}
}

// TypeIs reports whether t (pointers unwrapped) is the named type
// pkgPath.name.
func TypeIs(t types.Type, pkgPath, name string) bool {
	n := NamedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// ExprKey renders an expression to a canonical comparison key: the
// types.Object pointer for a plain identifier (robust against shadowing)
// and the printed source otherwise.
func ExprKey(fset *token.FileSet, info *types.Info, e ast.Expr) any {
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.ObjectOf(id); obj != nil {
			return obj
		}
	}
	var sb strings.Builder
	_ = printer.Fprint(&sb, fset, e)
	return sb.String()
}

// EnclosingFuncs calls fn for every top-level function declaration with
// a body. Nested function literals are part of their declaration's body;
// analyzers that must treat each literal as its own scope use
// InspectNoNestedFuncs to walk one body at a time.
func EnclosingFuncs(file *ast.File, fn func(name string, body *ast.BlockStmt)) {
	for _, decl := range file.Decls {
		d, ok := decl.(*ast.FuncDecl)
		if !ok || d.Body == nil {
			continue
		}
		fn(d.Name.Name, d.Body)
	}
}

// FuncBodies calls fn for every function body in the file — top-level
// declarations and every nested function literal — so each body can be
// analyzed as its own scope. name is "" for literals.
func FuncBodies(file *ast.File, fn func(name string, body *ast.BlockStmt)) {
	for _, decl := range file.Decls {
		d, ok := decl.(*ast.FuncDecl)
		if !ok || d.Body == nil {
			continue
		}
		fn(d.Name.Name, d.Body)
		ast.Inspect(d.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				fn("", lit.Body)
			}
			return true
		})
	}
}

// InspectNoNestedFuncs walks body like ast.Inspect but does not descend
// into nested function literals, so statement-ordering analyses stay
// within one scope.
func InspectNoNestedFuncs(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// IsMapType reports whether the expression's type is a map.
func IsMapType(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// IsSliceType reports whether the expression's type is a slice.
func IsSliceType(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}
