package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Suppression: a source comment of the form
//
//	//ckvet:ignore <analyzer> <reason>
//
// silences that analyzer's findings in a bounded region. The reason is
// mandatory — an unexplained suppression is itself a finding — and
// should cite the test or argument that makes the invariant hold anyway
// (e.g. the parity test covering a map-order-free key list). The region
// is:
//
//   - the directive's own line and the line directly below it, when the
//     directive is a trailing or line comment inside a function; or
//   - the whole declaration, when the directive appears in the doc
//     comment of a top-level func/var/const/type declaration.

// ignoreDirective is one parsed //ckvet:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	line     int
	// declEnd is set when the directive sits in a top-level doc comment:
	// it extends the suppressed region to the declaration's last line.
	declEnd int
}

const ignorePrefix = "//ckvet:ignore"

// parseIgnores extracts every directive from a file, returning also a
// list of malformed ones (missing analyzer or reason), which the driver
// reports as errors: a suppression that does not say what it suppresses
// or why is a rot vector, not an escape hatch.
func parseIgnores(fset *token.FileSet, file *ast.File, known map[string]bool) (dirs []ignoreDirective, malformed []Diagnostic) {
	// Map each doc comment's directives to its declaration's extent.
	docRange := map[*ast.CommentGroup]int{}
	for _, decl := range file.Decls {
		var doc *ast.CommentGroup
		switch d := decl.(type) {
		case *ast.FuncDecl:
			doc = d.Doc
		case *ast.GenDecl:
			doc = d.Doc
		}
		if doc != nil {
			docRange[doc] = fset.Position(decl.End()).Line
		}
	}
	for _, cg := range file.Comments {
		declEnd := docRange[cg]
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
			name, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			pos := fset.Position(c.Pos())
			switch {
			case name == "" || reason == "":
				malformed = append(malformed, Diagnostic{Pos: c.Pos(), Message: fmt.Sprintf(
					"malformed %s directive: want %q", ignorePrefix, ignorePrefix+" <analyzer> <reason>")})
			case !known[name]:
				malformed = append(malformed, Diagnostic{Pos: c.Pos(), Message: fmt.Sprintf(
					"%s names unknown analyzer %q", ignorePrefix, name)})
			default:
				dirs = append(dirs, ignoreDirective{
					analyzer: name, reason: reason, line: pos.Line, declEnd: declEnd,
				})
			}
		}
	}
	return dirs, malformed
}

// Suppressor filters diagnostics for one package against its
// //ckvet:ignore directives.
type Suppressor struct {
	// byFile maps file name to that file's directives.
	byFile map[string][]ignoreDirective
	// Malformed holds the package's broken directives; the driver
	// reports them like findings.
	Malformed []Diagnostic
}

// NewSuppressor parses every directive in the package. known names the
// valid analyzer names for directive validation.
func NewSuppressor(pkg *Package, known map[string]bool) *Suppressor {
	s := &Suppressor{byFile: map[string][]ignoreDirective{}}
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		dirs, bad := parseIgnores(pkg.Fset, f, known)
		s.byFile[name] = dirs
		s.Malformed = append(s.Malformed, bad...)
	}
	return s
}

// Suppressed reports whether a diagnostic from the named analyzer at pos
// is covered by a directive.
func (s *Suppressor) Suppressed(fset *token.FileSet, analyzer string, pos token.Pos) bool {
	p := fset.Position(pos)
	for _, d := range s.byFile[p.Filename] {
		if d.analyzer != analyzer {
			continue
		}
		if p.Line == d.line || p.Line == d.line+1 {
			return true
		}
		if d.declEnd > 0 && p.Line > d.line && p.Line <= d.declEnd {
			return true
		}
	}
	return false
}

// Filter returns diags minus the suppressed ones.
func (s *Suppressor) Filter(fset *token.FileSet, analyzer string, diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !s.Suppressed(fset, analyzer, d.Pos) {
			out = append(out, d)
		}
	}
	return out
}
