package analysis

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestParseIgnores(t *testing.T) {
	src := `package p

//ckvet:ignore maporder consumer sorts downstream
var a = 1

//ckvet:ignore maporder
var b = 2

//ckvet:ignore nosuchcheck reason here
var c = 3
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "ignoretest.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{"maporder": true}
	dirs, malformed := parseIgnores(fset, f, known)
	if len(dirs) != 1 {
		t.Fatalf("got %d well-formed directives, want 1: %+v", len(dirs), dirs)
	}
	if dirs[0].analyzer != "maporder" || dirs[0].reason != "consumer sorts downstream" {
		t.Errorf("directive parsed as %+v", dirs[0])
	}
	if len(malformed) != 2 {
		t.Fatalf("got %d malformed directives, want 2: %+v", len(malformed), malformed)
	}
	if !strings.Contains(malformed[0].Message, "malformed") {
		t.Errorf("missing-reason message = %q", malformed[0].Message)
	}
	if !strings.Contains(malformed[1].Message, "unknown analyzer") {
		t.Errorf("unknown-analyzer message = %q", malformed[1].Message)
	}
}

func TestSuppressorRanges(t *testing.T) {
	src := `package p

import "fmt"

//ckvet:ignore maporder whole declaration is covered by a doc directive
func docSuppressed() {
	fmt.Println("line 7")
	fmt.Println("line 8")
}

func lineSuppressed() {
	//ckvet:ignore maporder only the next line is covered
	fmt.Println("line 13")
	fmt.Println("line 14")
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "ignoretest.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	s := &Suppressor{byFile: map[string][]ignoreDirective{}}
	dirs, malformed := parseIgnores(fset, f, map[string]bool{"maporder": true})
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed directives: %+v", malformed)
	}
	s.byFile["ignoretest.go"] = dirs

	// Positions inside the doc-suppressed declaration are covered.
	line := func(n int) token.Pos {
		return fset.File(f.Pos()).LineStart(n)
	}
	for _, n := range []int{7, 8} {
		if !s.Suppressed(fset, "maporder", line(n)) {
			t.Errorf("line %d: want suppressed by doc directive", n)
		}
	}
	// The line directive covers its own line and the next, nothing more.
	if !s.Suppressed(fset, "maporder", line(13)) {
		t.Error("line 13: want suppressed by line directive")
	}
	if s.Suppressed(fset, "maporder", line(14)) {
		t.Error("line 14: must NOT be suppressed")
	}
	// A different analyzer's findings are never covered.
	if s.Suppressed(fset, "poolleak", line(7)) {
		t.Error("other analyzer suppressed by a maporder directive")
	}
}
