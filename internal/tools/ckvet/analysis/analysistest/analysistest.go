// Package analysistest runs a ckvet analyzer over a testdata package
// and checks its diagnostics against expectations written in the
// source, mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	for k := range m {
//		keys = append(keys, k) // want `never sorted`
//	}
//
// Each `// want` comment carries one or more backquoted or quoted
// regexps; every regexp must match exactly one diagnostic reported on
// that line, and every diagnostic must be claimed by a want. The
// harness applies //ckvet:ignore suppression before matching — exactly
// as the driver does — so testdata can assert both that a pattern fires
// and that a justified directive silences it; malformed directives
// surface as diagnostics too.
package analysistest

import (
	"fmt"
	"os/exec"
	"regexp"
	"strings"
	"testing"

	"ckprivacy/internal/tools/ckvet/analysis"
)

// wantRe pulls the quoted expectations out of a want comment.
var wantRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// Run loads the package rooted at pkgDir (relative to the calling
// test's directory), applies the analyzer plus suppression, and
// reports any mismatch between diagnostics and want comments as test
// errors.
func Run(t *testing.T, pkgDir string, a *analysis.Analyzer) {
	t.Helper()
	modDir, err := moduleDir()
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	pkg, err := analysis.LoadDir(modDir, pkgDir)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgDir, err)
	}
	known := map[string]bool{a.Name: true}
	sup := analysis.NewSuppressor(pkg, known)
	diags, err := analysis.RunAnalyzer(a, pkg)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	diags = sup.Filter(pkg.Fset, a.Name, diags)
	diags = append(diags, sup.Malformed...)

	// Index diagnostics by file:line.
	type key struct {
		file string
		line int
	}
	got := map[key][]string{}
	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		k := key{p.Filename, p.Line}
		got[k] = append(got[k], d.Message)
	}

	// Walk every comment looking for wants.
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				k := key{p.Filename, p.Line}
				for _, m := range wantRe.FindAllStringSubmatch(c.Text[idx+len("// want "):], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %q: %v", p.Filename, p.Line, pat, err)
						continue
					}
					if !claim(got, k, re) {
						t.Errorf("%s:%d: no diagnostic matching %q (have %v)", p.Filename, p.Line, pat, got[k])
					}
				}
			}
		}
	}

	// Anything left unclaimed is an unexpected diagnostic.
	for k, msgs := range got {
		for _, m := range msgs {
			t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, m)
		}
	}
}

// claim removes the first diagnostic at k matching re, reporting
// whether one existed.
func claim[K comparable](got map[K][]string, k K, re *regexp.Regexp) bool {
	msgs := got[k]
	for i, m := range msgs {
		if re.MatchString(m) {
			got[k] = append(msgs[:i], msgs[i+1:]...)
			if len(got[k]) == 0 {
				delete(got, k)
			}
			return true
		}
	}
	return false
}

// moduleDir resolves the enclosing module's root directory.
func moduleDir() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", err
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" {
		return "", fmt.Errorf("not inside a module")
	}
	return strings.TrimSuffix(gomod, "/go.mod"), nil
}
