// Package analysis is ckvet's dependency-free analyzer framework: a
// deliberately API-compatible subset of golang.org/x/tools/go/analysis,
// implemented on the standard library only. The build environment pins
// this module to zero external dependencies, so the real framework (and
// its unitchecker, which would let ckvet run under `go vet -vettool`)
// cannot be vendored; every type here mirrors its x/tools namesake
// field-for-field, so swapping the import path is the whole migration
// once x/tools is available.
//
// An Analyzer is one named, documented invariant check. A Pass hands it
// one type-checked package; the analyzer reports Diagnostics through the
// Pass and never mutates what it is given. The driver (the ckvet main
// package) decides which analyzers see which packages and how
// suppression comments are honored.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant check: a stable name (used in
// diagnostics and in //ckvet:ignore directives), user-facing
// documentation, and the Run function that inspects one package.
type Analyzer struct {
	// Name identifies the analyzer in output and suppression comments.
	// It must be a valid Go identifier.
	Name string
	// Doc documents the invariant the analyzer enforces. The first line
	// is the summary shown by the driver's -list flag.
	Doc string
	// Run inspects one package and reports findings via pass.Report. The
	// returned value is ignored by this driver (the x/tools framework
	// threads it to dependent analyzers; ckvet's analyzers are
	// independent).
	Run func(*Pass) (any, error)
}

// Pass is the unit of work handed to an analyzer: one fully
// type-checked, non-test package.
type Pass struct {
	// Analyzer is the check this pass runs.
	Analyzer *Analyzer
	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet
	// Files holds the package's parsed source files, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's expression types, object
	// resolution and selections for Files.
	TypesInfo *types.Info
	// Report delivers one finding. The driver owns collection, ignore
	// filtering and exit status.
	Report func(Diagnostic)
}

// Reportf reports a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position inside the pass's package and a
// human-readable message. Messages state the violated invariant and the
// fix, not just the pattern matched.
type Diagnostic struct {
	// Pos locates the offending syntax.
	Pos token.Pos
	// Message explains the finding.
	Message string
}
